package ir

import (
	"testing"
)

const splitSrc = `
double kernel(double* data, int size) {
    double s = 0.0;
    for (int i = 0; i < size; i++) {
        s = s + data[i] * data[i];
    }
    return s;
}

double other(double x) { return x * 2.0; }
`

func TestSpecializeNowCorrectAndFaster(t *testing.T) {
	sc, err := NewSplitCompiler("k.c", splitSrc)
	if err != nil {
		t.Fatalf("NewSplitCompiler: %v", err)
	}
	buf := make([]float64, 16)
	for i := range buf {
		buf[i] = float64(i)
	}
	var want float64
	for _, v := range buf {
		want += v * v
	}

	// Generic execution cost.
	vmG := NewVM(sc.Mod)
	got, err := vmG.Call("kernel", PtrValue(buf), NumValue(16))
	if err != nil {
		t.Fatal(err)
	}
	if got.Num != want {
		t.Fatalf("generic kernel = %v, want %v", got.Num, want)
	}
	genericCycles := vmG.Cycles

	// Specialize for size=16 and re-run through the SAME public name;
	// variant dispatch must route to the specialized version.
	spName, err := sc.SpecializeNow("kernel", "size", 16)
	if err != nil {
		t.Fatalf("SpecializeNow: %v", err)
	}
	if _, ok := sc.Mod.Funcs[spName]; !ok {
		t.Fatalf("specialized function %q not installed", spName)
	}
	vmS := NewVM(sc.Mod)
	got2, err := vmS.Call("kernel", PtrValue(buf), NumValue(16))
	if err != nil {
		t.Fatal(err)
	}
	if got2.Num != want {
		t.Fatalf("specialized kernel = %v, want %v", got2.Num, want)
	}
	if vmS.Cycles >= genericCycles {
		t.Errorf("specialized (%d cycles) not faster than generic (%d)", vmS.Cycles, genericCycles)
	}

	// A different size must still use the generic path.
	vmO := NewVM(sc.Mod)
	buf8 := buf[:8]
	got3, err := vmO.Call("kernel", PtrValue(buf8), NumValue(8))
	if err != nil {
		t.Fatal(err)
	}
	var want8 float64
	for _, v := range buf8 {
		want8 += v * v
	}
	if got3.Num != want8 {
		t.Fatalf("kernel(8) = %v, want %v", got3.Num, want8)
	}
}

func TestSpecializeNowIdempotent(t *testing.T) {
	sc, err := NewSplitCompiler("k.c", splitSrc)
	if err != nil {
		t.Fatal(err)
	}
	n1, err := sc.SpecializeNow("kernel", "size", 8)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := sc.SpecializeNow("kernel", "size", 8)
	if err != nil {
		t.Fatal(err)
	}
	if n1 != n2 || sc.Specializations != 1 {
		t.Errorf("idempotence: %q %q specializations=%d", n1, n2, sc.Specializations)
	}
}

func TestSpecializeErrors(t *testing.T) {
	sc, err := NewSplitCompiler("k.c", splitSrc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.SpecializeNow("nosuch", "size", 8); err == nil {
		t.Error("expected error for unknown function")
	}
	if _, err := sc.SpecializeNow("kernel", "data", 8); err == nil {
		t.Error("expected error for pointer parameter")
	}
}

func TestAutoSpecializeHook(t *testing.T) {
	sc, err := NewSplitCompiler("k.c", splitSrc)
	if err != nil {
		t.Fatal(err)
	}
	vm := NewVM(sc.Mod)
	vm.AddHook(sc.AutoSpecializeHook("kernel", "size", 4, 64, 3))
	buf := make([]float64, 32)
	for i := range buf {
		buf[i] = 1
	}
	// Below hot threshold: no specialization yet.
	for i := 0; i < 2; i++ {
		if _, err := vm.Call("kernel", PtrValue(buf), NumValue(32)); err != nil {
			t.Fatal(err)
		}
	}
	if sc.Specializations != 0 {
		t.Fatalf("specialized too early: %d", sc.Specializations)
	}
	// Third call crosses hotAfter=3.
	if _, err := vm.Call("kernel", PtrValue(buf), NumValue(32)); err != nil {
		t.Fatal(err)
	}
	if sc.Specializations != 1 {
		t.Fatalf("expected 1 specialization, got %d", sc.Specializations)
	}
	// Out-of-range sizes never specialize.
	big := make([]float64, 100)
	for i := 0; i < 10; i++ {
		if _, err := vm.Call("kernel", PtrValue(big), NumValue(100)); err != nil {
			t.Fatal(err)
		}
	}
	if sc.Specializations != 1 {
		t.Errorf("out-of-range value specialized: %d", sc.Specializations)
	}
	// Variant table actually serves hits.
	vt := sc.Mod.Variants["kernel"]
	if vt == nil || len(vt.Entries) != 1 {
		t.Fatalf("variant table: %+v", vt)
	}
	if vt.Entries[0].Hits == 0 {
		t.Error("variant never dispatched")
	}
}

func TestOfflineOptimizeUnrollsConstantLoops(t *testing.T) {
	src := `
double fixed(double* a) {
    double s = 0.0;
    for (int i = 0; i < 8; i++) {
        s += a[i];
    }
    return s;
}
`
	sc, err := NewSplitCompiler("f.c", src)
	if err != nil {
		t.Fatal(err)
	}
	buf := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	vmBefore := NewVM(sc.Mod)
	v1, err := vmBefore.Call("fixed", PtrValue(buf))
	if err != nil {
		t.Fatal(err)
	}
	before := vmBefore.Cycles

	if err := sc.OfflineOptimize(); err != nil {
		t.Fatal(err)
	}
	vmAfter := NewVM(sc.Mod)
	v2, err := vmAfter.Call("fixed", PtrValue(buf))
	if err != nil {
		t.Fatal(err)
	}
	if v1.Num != v2.Num || v1.Num != 36 {
		t.Fatalf("results differ: %v vs %v", v1.Num, v2.Num)
	}
	if vmAfter.Cycles >= before {
		t.Errorf("offline optimize did not reduce cycles: %d >= %d", vmAfter.Cycles, before)
	}
}

// TestSplitBeatsBothExtremes demonstrates the split-compilation trade-off
// the paper leverages: offline-only cannot exploit runtime values,
// online-only pays full compilation at runtime, split pays a small runtime
// cost and gets the specialized code.
func TestSplitBeatsBothExtremes(t *testing.T) {
	sc, err := NewSplitCompiler("k.c", splitSrc)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, 24)
	for i := range buf {
		buf[i] = 2
	}
	// offline-only: generic code forever.
	vmOff := NewVM(sc.Mod)
	for i := 0; i < 50; i++ {
		if _, err := vmOff.Call("kernel", PtrValue(buf), NumValue(24)); err != nil {
			t.Fatal(err)
		}
	}
	offlineCycles := vmOff.Cycles

	// split: specialize once, then reuse.
	sc2, _ := NewSplitCompiler("k.c", splitSrc)
	if _, err := sc2.SpecializeNow("kernel", "size", 24); err != nil {
		t.Fatal(err)
	}
	vmSplit := NewVM(sc2.Mod)
	for i := 0; i < 50; i++ {
		if _, err := vmSplit.Call("kernel", PtrValue(buf), NumValue(24)); err != nil {
			t.Fatal(err)
		}
	}
	if vmSplit.Cycles >= offlineCycles {
		t.Errorf("split (%d) should beat offline-only (%d) on repeated hot calls", vmSplit.Cycles, offlineCycles)
	}
}
