// Package ir implements the split-compilation pipeline of the ANTAREX
// tool flow (paper §III-B): a compact stack IR, an *offline* compiler and
// optimizer that runs at design/deploy time, and a *runtime* specializer
// that — guided by metadata the offline step ships alongside the code —
// produces value-specialized variants cheaply while the application runs.
//
// The offline step does the expensive work (parsing, analysis, constant
// folding, identifying specializable parameters and unrollable loops) and
// conveys the results to the runtime optimizer, exactly the division of
// labour split compilation prescribes: "split the compilation process in
// two steps — offline, and online — and offload as much of the complexity
// as possible to the offline step".
//
// The bytecode interpreter doubles as the "machine code w/ JIT manager"
// box of Fig. 1: it charges a deterministic cycle cost per instruction, so
// the benefit of unrolling and specialization is measurable both in
// simulated cycles and in wall-clock benchmark time.
package ir

import (
	"fmt"
	"strings"
)

// Opcode enumerates IR instructions. The machine is a simple operand
// stack; locals live in a frame-indexed slot array.
type Opcode int

// Opcodes.
const (
	OpConst      Opcode = iota // push Val
	OpLoadLocal                // push locals[A]
	OpStoreLocal               // locals[A] = pop
	OpLoadIndex                // idx=pop, ptr=pop; push ptr[idx]
	OpStoreIndex               // val=pop, idx=pop, ptr=pop; ptr[idx]=val
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpNeg
	OpNot
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpJmp         // pc = A
	OpJmpZero     // if pop == 0: pc = A
	OpCall        // call Sym with A args (popped right-to-left); pushes result
	OpRet         // return pop
	OpRetVoid     // return 0
	OpPop         // discard top
	OpNewArray    // push new array of length A (zeroed)
	OpLoadGlobal  // push Globals[Sym]
	OpStoreGlobal // Globals[Sym] = pop
)

var opNames = map[Opcode]string{
	OpConst: "const", OpLoadLocal: "load", OpStoreLocal: "store",
	OpLoadIndex: "ldidx", OpStoreIndex: "stidx",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpMod: "mod",
	OpNeg: "neg", OpNot: "not", OpEq: "eq", OpNe: "ne", OpLt: "lt",
	OpLe: "le", OpGt: "gt", OpGe: "ge", OpJmp: "jmp", OpJmpZero: "jz",
	OpCall: "call", OpRet: "ret", OpRetVoid: "retv", OpPop: "pop",
	OpNewArray: "newarr", OpLoadGlobal: "ldg", OpStoreGlobal: "stg",
}

// String returns the mnemonic.
func (o Opcode) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("Opcode(%d)", int(o))
}

// Cost is the deterministic cycle cost charged per opcode by the VM. The
// relative weights follow a classic in-order core: memory and branches
// cost more than ALU; calls pay a frame-setup overhead. These weights are
// what make loop overhead visible, so full unrolling yields a measurable
// simulated speedup.
func (o Opcode) Cost() int64 {
	switch o {
	case OpConst, OpPop:
		return 1
	case OpLoadLocal, OpStoreLocal:
		return 1
	case OpAdd, OpSub, OpNeg, OpNot, OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		return 1
	case OpMul:
		return 3
	case OpDiv, OpMod:
		return 12
	case OpLoadIndex, OpStoreIndex:
		return 4
	case OpJmp:
		return 2
	case OpJmpZero:
		return 3
	case OpCall:
		return 10
	case OpRet, OpRetVoid:
		return 4
	case OpNewArray:
		return 20
	case OpLoadGlobal, OpStoreGlobal:
		return 3
	}
	return 1
}

// ValueKind tags runtime values.
type ValueKind int

// Value kinds.
const (
	KindNum ValueKind = iota // numeric (float64 carries both int and fp)
	KindPtr                  // array reference
	KindStr                  // string (used by instrumentation externs)
)

// Value is a runtime value of the IR machine.
type Value struct {
	Kind ValueKind
	Num  float64
	Arr  []float64
	Str  string
}

// Num returns a numeric value.
func NumValue(f float64) Value { return Value{Kind: KindNum, Num: f} }

// Ptr returns an array-reference value.
func PtrValue(a []float64) Value { return Value{Kind: KindPtr, Arr: a} }

// Str returns a string value.
func StrValue(s string) Value { return Value{Kind: KindStr, Str: s} }

// Bool converts a numeric value to a Go bool (non-zero is true).
func (v Value) Bool() bool { return v.Num != 0 }

// String renders the value for diagnostics.
func (v Value) String() string {
	switch v.Kind {
	case KindNum:
		return fmt.Sprintf("%g", v.Num)
	case KindPtr:
		return fmt.Sprintf("ptr(len=%d)", len(v.Arr))
	case KindStr:
		return fmt.Sprintf("%q", v.Str)
	}
	return "?"
}

// Instr is one IR instruction. A is an integer operand (local slot, jump
// target, argument count, or array length); Val is the constant for
// OpConst; Sym is the callee name for OpCall.
type Instr struct {
	Op  Opcode
	A   int
	Val Value
	Sym string
}

// LoopMeta is offline-computed loop metadata shipped to the runtime
// specializer: which parameter (if any) bounds the loop's trip count.
type LoopMeta struct {
	// BoundParam is the index of the function parameter that appears as
	// the loop bound, or -1 if the bound is already constant/complex.
	BoundParam int
	// Depth is the loop nesting depth.
	Depth int
	// Innermost marks loops with no nested loop.
	Innermost bool
}

// FuncMeta is the per-function metadata block the offline compiler emits —
// the "results conveyed to runtime optimizers" of split compilation.
type FuncMeta struct {
	// SpecializableParams lists parameter indices that are scalar, never
	// written, and bound at least one loop: specializing on them unlocks
	// constant trip counts and unrolling.
	SpecializableParams []int
	// Loops describes the loops found offline.
	Loops []LoopMeta
	// PureScalar reports that the function has no pointer params and no
	// calls, so memoization of results by argument value is sound.
	PureScalar bool
}

// Function is a compiled IR function.
type Function struct {
	Name    string
	NParams int
	NLocals int // includes params (slots [0,NParams) are the arguments)
	Code    []Instr
	Meta    FuncMeta
}

// Disasm renders the function's code for debugging and golden tests.
func (f *Function) Disasm() string {
	var b strings.Builder
	fmt.Fprintf(&b, "func %s (params=%d locals=%d)\n", f.Name, f.NParams, f.NLocals)
	for i, in := range f.Code {
		switch in.Op {
		case OpConst:
			fmt.Fprintf(&b, "  %3d: %-6s %s\n", i, in.Op, in.Val)
		case OpCall:
			fmt.Fprintf(&b, "  %3d: %-6s %s/%d\n", i, in.Op, in.Sym, in.A)
		case OpLoadLocal, OpStoreLocal, OpJmp, OpJmpZero, OpNewArray:
			fmt.Fprintf(&b, "  %3d: %-6s %d\n", i, in.Op, in.A)
		default:
			fmt.Fprintf(&b, "  %3d: %s\n", i, in.Op)
		}
	}
	return b.String()
}

// Module is a set of compiled functions plus the runtime variant
// dispatch table filled in by dynamic weaving (Fig. 4's AddVersion).
type Module struct {
	Funcs map[string]*Function
	// Variants maps a function name to its specialization table.
	Variants map[string]*VariantTable
	// Globals are module-level variables, addressed by name.
	Globals map[string]Value
}

// NewModule returns an empty module.
func NewModule() *Module {
	return &Module{
		Funcs:    make(map[string]*Function),
		Variants: make(map[string]*VariantTable),
		Globals:  make(map[string]Value),
	}
}

// Add registers fn, replacing any previous function of the same name.
func (m *Module) Add(fn *Function) { m.Funcs[fn.Name] = fn }

// VariantTable routes calls of a generic function to value-specialized
// versions: when the argument at ArgIndex equals Match, the Target
// function (which omits that argument) is invoked instead.
type VariantTable struct {
	ArgIndex int
	Entries  []VariantEntry
}

// VariantEntry is one (value → specialized function) mapping.
type VariantEntry struct {
	Match  float64
	Target string
	// Hits counts dispatches, for monitoring and eviction policies.
	Hits int64
}

// AddVersion registers a specialized variant for fn. It implements the
// LARA AddVersion action: subsequent calls with arg[argIndex] == match are
// routed to target.
func (m *Module) AddVersion(fn string, argIndex int, match float64, target string) {
	vt := m.Variants[fn]
	if vt == nil {
		vt = &VariantTable{ArgIndex: argIndex}
		m.Variants[fn] = vt
	}
	for i := range vt.Entries {
		if vt.Entries[i].Match == match {
			vt.Entries[i].Target = target
			return
		}
	}
	vt.Entries = append(vt.Entries, VariantEntry{Match: match, Target: target})
}

// Lookup finds the variant target for a call to fn with the given args,
// returning "" when no variant matches.
func (m *Module) Lookup(fn string, args []Value) string {
	vt := m.Variants[fn]
	if vt == nil || vt.ArgIndex >= len(args) {
		return ""
	}
	a := args[vt.ArgIndex]
	if a.Kind != KindNum {
		return ""
	}
	for i := range vt.Entries {
		if vt.Entries[i].Match == a.Num {
			vt.Entries[i].Hits++
			return vt.Entries[i].Target
		}
	}
	return ""
}
