package ir

import (
	"fmt"

	"repro/internal/srcmodel"
)

// Compile translates a miniC program into an IR module, running the
// offline half of split compilation: code generation, peephole constant
// folding (inherited from srcmodel.FoldConstants), and metadata extraction
// (specializable parameters, loop structure) for the runtime specializer.
func Compile(p *srcmodel.Program) (*Module, error) {
	m := NewModule()
	for _, g := range p.Globals {
		v, err := globalInit(g)
		if err != nil {
			return nil, err
		}
		m.Globals[g.Name] = v
	}
	globals := make(map[string]bool, len(p.Globals))
	for _, g := range p.Globals {
		globals[g.Name] = true
	}
	for _, f := range p.Funcs {
		fn, err := CompileFunc(f, globals)
		if err != nil {
			return nil, err
		}
		m.Add(fn)
	}
	return m, nil
}

func globalInit(g *srcmodel.VarDecl) (Value, error) {
	if g.Type.ArrayLen > 0 {
		return PtrValue(make([]float64, g.Type.ArrayLen)), nil
	}
	switch init := g.Init.(type) {
	case nil:
		return NumValue(0), nil
	case *srcmodel.IntLit:
		return NumValue(float64(init.Value)), nil
	case *srcmodel.FloatLit:
		return NumValue(init.Value), nil
	}
	return Value{}, fmt.Errorf("ir: global %q: only literal initializers supported", g.Name)
}

type compiler struct {
	fn      *Function
	scopes  []map[string]int
	globals map[string]bool
	// breaks/continues hold indices of jump instructions to patch per
	// enclosing loop.
	breaks    [][]int
	continues [][]int
	err       error
}

// CompileFunc compiles one function. globals names module-level variables
// referenced by OpLoadGlobal/OpStoreGlobal.
func CompileFunc(f *srcmodel.FuncDecl, globals map[string]bool) (*Function, error) {
	c := &compiler{
		fn:      &Function{Name: f.Name, NParams: len(f.Params)},
		globals: globals,
	}
	c.push()
	for _, prm := range f.Params {
		c.declare(prm.Name)
	}
	c.stmt(f.Body)
	if c.err != nil {
		return nil, c.err
	}
	c.emit(Instr{Op: OpRetVoid})
	c.fn.Meta = extractMeta(f)
	return c.fn, nil
}

func (c *compiler) fail(pos srcmodel.Pos, format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf("ir: %s: %s", pos, fmt.Sprintf(format, args...))
	}
}

func (c *compiler) push() { c.scopes = append(c.scopes, map[string]int{}) }
func (c *compiler) pop()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *compiler) declare(name string) int {
	slot := c.fn.NLocals
	c.fn.NLocals++
	c.scopes[len(c.scopes)-1][name] = slot
	return slot
}

// resolve returns the slot for name, or -1 if it is a global (or unknown —
// unknown identifiers become globals so instrumentation variables injected
// by weaving resolve without declarations).
func (c *compiler) resolve(name string) int {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, ok := c.scopes[i][name]; ok {
			return s
		}
	}
	return -1
}

func (c *compiler) emit(in Instr) int {
	c.fn.Code = append(c.fn.Code, in)
	return len(c.fn.Code) - 1
}

func (c *compiler) here() int { return len(c.fn.Code) }

func (c *compiler) patch(at, target int) { c.fn.Code[at].A = target }

func (c *compiler) stmt(s srcmodel.Stmt) {
	if c.err != nil {
		return
	}
	switch x := s.(type) {
	case nil:
	case *srcmodel.BlockStmt:
		c.push()
		for _, st := range x.Stmts {
			c.stmt(st)
		}
		c.pop()
	case *srcmodel.VarDecl:
		slot := c.declare(x.Name)
		if x.Type.ArrayLen > 0 {
			c.emit(Instr{Op: OpNewArray, A: x.Type.ArrayLen})
		} else if x.Init != nil {
			c.expr(x.Init)
		} else {
			c.emit(Instr{Op: OpConst, Val: NumValue(0)})
		}
		c.emit(Instr{Op: OpStoreLocal, A: slot})
	case *srcmodel.IfStmt:
		c.expr(x.Cond)
		jz := c.emit(Instr{Op: OpJmpZero})
		c.stmt(x.Then)
		if x.Else != nil {
			jend := c.emit(Instr{Op: OpJmp})
			c.patch(jz, c.here())
			c.stmt(x.Else)
			c.patch(jend, c.here())
		} else {
			c.patch(jz, c.here())
		}
	case *srcmodel.ForStmt:
		c.push()
		c.stmt(x.Init)
		top := c.here()
		var jz int = -1
		if x.Cond != nil {
			c.expr(x.Cond)
			jz = c.emit(Instr{Op: OpJmpZero})
		}
		c.breaks = append(c.breaks, nil)
		c.continues = append(c.continues, nil)
		c.stmt(x.Body)
		contTarget := c.here()
		c.stmt(x.Post)
		c.emit(Instr{Op: OpJmp, A: top})
		end := c.here()
		if jz >= 0 {
			c.patch(jz, end)
		}
		c.patchLoopJumps(end, contTarget)
		c.pop()
	case *srcmodel.WhileStmt:
		top := c.here()
		c.expr(x.Cond)
		jz := c.emit(Instr{Op: OpJmpZero})
		c.breaks = append(c.breaks, nil)
		c.continues = append(c.continues, nil)
		c.stmt(x.Body)
		c.emit(Instr{Op: OpJmp, A: top})
		end := c.here()
		c.patch(jz, end)
		c.patchLoopJumps(end, top)
	case *srcmodel.ReturnStmt:
		if x.Value != nil {
			c.expr(x.Value)
			c.emit(Instr{Op: OpRet})
		} else {
			c.emit(Instr{Op: OpRetVoid})
		}
	case *srcmodel.BreakStmt:
		if len(c.breaks) == 0 {
			c.fail(x.Pos, "break outside loop")
			return
		}
		j := c.emit(Instr{Op: OpJmp})
		c.breaks[len(c.breaks)-1] = append(c.breaks[len(c.breaks)-1], j)
	case *srcmodel.ContinueStmt:
		if len(c.continues) == 0 {
			c.fail(x.Pos, "continue outside loop")
			return
		}
		j := c.emit(Instr{Op: OpJmp})
		c.continues[len(c.continues)-1] = append(c.continues[len(c.continues)-1], j)
	case *srcmodel.ExprStmt:
		c.expr(x.X)
		c.emit(Instr{Op: OpPop})
	default:
		c.fail(s.Position(), "unsupported statement %T", s)
	}
}

func (c *compiler) patchLoopJumps(breakTarget, contTarget int) {
	for _, j := range c.breaks[len(c.breaks)-1] {
		c.patch(j, breakTarget)
	}
	for _, j := range c.continues[len(c.continues)-1] {
		c.patch(j, contTarget)
	}
	c.breaks = c.breaks[:len(c.breaks)-1]
	c.continues = c.continues[:len(c.continues)-1]
}

var binOps = map[srcmodel.TokenKind]Opcode{
	srcmodel.TokPlus: OpAdd, srcmodel.TokMinus: OpSub,
	srcmodel.TokStar: OpMul, srcmodel.TokSlash: OpDiv,
	srcmodel.TokPercent: OpMod, srcmodel.TokEq: OpEq,
	srcmodel.TokNe: OpNe, srcmodel.TokLt: OpLt, srcmodel.TokLe: OpLe,
	srcmodel.TokGt: OpGt, srcmodel.TokGe: OpGe,
}

var compoundOps = map[srcmodel.TokenKind]Opcode{
	srcmodel.TokPlusEq: OpAdd, srcmodel.TokMinusEq: OpSub,
	srcmodel.TokStarEq: OpMul, srcmodel.TokSlashEq: OpDiv,
}

// expr compiles e, leaving exactly one value on the stack.
func (c *compiler) expr(e srcmodel.Expr) {
	if c.err != nil {
		return
	}
	switch x := e.(type) {
	case *srcmodel.Ident:
		if slot := c.resolve(x.Name); slot >= 0 {
			c.emit(Instr{Op: OpLoadLocal, A: slot})
		} else {
			c.emit(Instr{Op: OpLoadGlobal, Sym: x.Name})
		}
	case *srcmodel.IntLit:
		c.emit(Instr{Op: OpConst, Val: NumValue(float64(x.Value))})
	case *srcmodel.FloatLit:
		c.emit(Instr{Op: OpConst, Val: NumValue(x.Value)})
	case *srcmodel.StringLit:
		c.emit(Instr{Op: OpConst, Val: StrValue(x.Value)})
	case *srcmodel.BinaryExpr:
		switch x.Op {
		case srcmodel.TokAndAnd:
			// Short-circuit: L ? (R != 0) : 0
			c.expr(x.L)
			jz := c.emit(Instr{Op: OpJmpZero})
			c.expr(x.R)
			c.emit(Instr{Op: OpConst, Val: NumValue(0)})
			c.emit(Instr{Op: OpNe})
			jend := c.emit(Instr{Op: OpJmp})
			c.patch(jz, c.here())
			c.emit(Instr{Op: OpConst, Val: NumValue(0)})
			c.patch(jend, c.here())
		case srcmodel.TokOrOr:
			// Short-circuit: L ? 1 : (R != 0)
			c.expr(x.L)
			jz := c.emit(Instr{Op: OpJmpZero})
			c.emit(Instr{Op: OpConst, Val: NumValue(1)})
			jend := c.emit(Instr{Op: OpJmp})
			c.patch(jz, c.here())
			c.expr(x.R)
			c.emit(Instr{Op: OpConst, Val: NumValue(0)})
			c.emit(Instr{Op: OpNe})
			c.patch(jend, c.here())
		default:
			op, ok := binOps[x.Op]
			if !ok {
				c.fail(x.Pos, "unsupported binary operator %s", x.Op)
				return
			}
			c.expr(x.L)
			c.expr(x.R)
			c.emit(Instr{Op: op})
		}
	case *srcmodel.UnaryExpr:
		switch x.Op {
		case srcmodel.TokMinus:
			c.expr(x.X)
			c.emit(Instr{Op: OpNeg})
		case srcmodel.TokNot:
			c.expr(x.X)
			c.emit(Instr{Op: OpNot})
		case srcmodel.TokStar:
			// *p compiles as p[0].
			c.expr(x.X)
			c.emit(Instr{Op: OpConst, Val: NumValue(0)})
			c.emit(Instr{Op: OpLoadIndex})
		default:
			c.fail(x.Pos, "unsupported unary operator %s", x.Op)
		}
	case *srcmodel.AssignExpr:
		c.assign(x)
	case *srcmodel.IncDecExpr:
		id, ok := x.X.(*srcmodel.Ident)
		if !ok {
			c.fail(x.Pos, "++/-- supported on plain variables only")
			return
		}
		op := OpAdd
		if x.Op == srcmodel.TokDec {
			op = OpSub
		}
		c.loadIdent(id)
		c.emit(Instr{Op: OpConst, Val: NumValue(1)})
		c.emit(Instr{Op: op})
		c.storeIdent(id)
		c.loadIdent(id) // expression value (post-inc semantics simplified to new value)
	case *srcmodel.CallExpr:
		for _, a := range x.Args {
			c.expr(a)
		}
		c.emit(Instr{Op: OpCall, Sym: x.Callee, A: len(x.Args)})
	case *srcmodel.IndexExpr:
		c.expr(x.Array)
		c.expr(x.Index)
		c.emit(Instr{Op: OpLoadIndex})
	default:
		c.fail(e.Position(), "unsupported expression %T", e)
	}
}

func (c *compiler) loadIdent(id *srcmodel.Ident) {
	if slot := c.resolve(id.Name); slot >= 0 {
		c.emit(Instr{Op: OpLoadLocal, A: slot})
	} else {
		c.emit(Instr{Op: OpLoadGlobal, Sym: id.Name})
	}
}

func (c *compiler) storeIdent(id *srcmodel.Ident) {
	if slot := c.resolve(id.Name); slot >= 0 {
		c.emit(Instr{Op: OpStoreLocal, A: slot})
	} else {
		c.emit(Instr{Op: OpStoreGlobal, Sym: id.Name})
	}
}

func (c *compiler) assign(x *srcmodel.AssignExpr) {
	switch lhs := x.LHS.(type) {
	case *srcmodel.Ident:
		if x.Op == srcmodel.TokAssign {
			c.expr(x.RHS)
		} else {
			c.loadIdent(lhs)
			c.expr(x.RHS)
			c.emit(Instr{Op: compoundOps[x.Op]})
		}
		c.storeIdent(lhs)
		c.loadIdent(lhs) // assignment yields the stored value
	case *srcmodel.IndexExpr:
		c.expr(lhs.Array)
		c.expr(lhs.Index)
		if x.Op == srcmodel.TokAssign {
			c.expr(x.RHS)
		} else {
			// ptr idx → load current, combine, store back. Re-evaluate
			// array/index (safe: no side effects allowed in lvalues here).
			c.expr(lhs.Array)
			c.expr(lhs.Index)
			c.emit(Instr{Op: OpLoadIndex})
			c.expr(x.RHS)
			c.emit(Instr{Op: compoundOps[x.Op]})
		}
		c.emit(Instr{Op: OpStoreIndex})
		// Assignment-as-expression value: reload.
		c.expr(lhs.Array)
		c.expr(lhs.Index)
		c.emit(Instr{Op: OpLoadIndex})
	case *srcmodel.UnaryExpr:
		if lhs.Op != srcmodel.TokStar {
			c.fail(x.Pos, "unsupported assignment target")
			return
		}
		// *p = v compiles as p[0] = v.
		idx := &srcmodel.IndexExpr{Array: lhs.X, Index: &srcmodel.IntLit{Value: 0}, Pos: lhs.Pos}
		c.assign(&srcmodel.AssignExpr{Op: x.Op, LHS: idx, RHS: x.RHS, Pos: x.Pos})
	default:
		c.fail(x.Pos, "unsupported assignment target %T", x.LHS)
	}
}

// extractMeta runs the offline analyses whose results ship with the code:
// which parameters are worth specializing on, and the loop structure.
func extractMeta(f *srcmodel.FuncDecl) FuncMeta {
	var meta FuncMeta
	loops := srcmodel.Loops(f)
	boundCounts := make(map[string]int)
	for _, li := range loops {
		lm := LoopMeta{BoundParam: -1, Depth: li.Depth, Innermost: li.IsInnermost}
		if fs, ok := li.Stmt.(*srcmodel.ForStmt); ok && li.NumIter < 0 {
			if cond, ok := fs.Cond.(*srcmodel.BinaryExpr); ok {
				if bound, ok := cond.R.(*srcmodel.Ident); ok {
					for pi, prm := range f.Params {
						if prm.Name == bound.Name && prm.Type.Pointers == 0 {
							lm.BoundParam = pi
							boundCounts[prm.Name]++
						}
					}
				}
			}
		}
		meta.Loops = append(meta.Loops, lm)
	}
	for pi, prm := range f.Params {
		if prm.Type.Pointers > 0 || boundCounts[prm.Name] == 0 {
			continue
		}
		if srcmodel.WritesTo(f.Body, prm.Name) {
			continue
		}
		meta.SpecializableParams = append(meta.SpecializableParams, pi)
	}
	meta.PureScalar = len(srcmodel.Calls(f, "")) == 0
	for _, prm := range f.Params {
		if prm.Type.Pointers > 0 {
			meta.PureScalar = false
		}
	}
	return meta
}
