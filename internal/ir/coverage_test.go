package ir

import (
	"strings"
	"testing"

	"repro/internal/srcmodel"
)

func TestGlobalInitForms(t *testing.T) {
	m := compileSrc(t, `
int counter = 7;
double rate = 1.5;
double buf[4];
int bare;
int useAll() { buf[0] = rate; return counter + bare; }
`)
	if m.Globals["counter"].Num != 7 || m.Globals["rate"].Num != 1.5 {
		t.Errorf("scalar globals: %+v", m.Globals)
	}
	if g := m.Globals["buf"]; g.Kind != KindPtr || len(g.Arr) != 4 {
		t.Errorf("array global: %+v", g)
	}
	if m.Globals["bare"].Num != 0 {
		t.Errorf("uninitialized global: %+v", m.Globals["bare"])
	}
	if got := run(t, m, "useAll"); got.Num != 7 {
		t.Errorf("useAll: %v", got.Num)
	}
	// Non-literal global initializers are rejected.
	prog, err := srcmodel.Parse("g.c", `int x = f();`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(prog); err == nil || !strings.Contains(err.Error(), "literal initializers") {
		t.Errorf("call initializer: %v", err)
	}
}

func TestValueAndOpcodeStrings(t *testing.T) {
	if NumValue(3).String() != "3" {
		t.Error("num render")
	}
	if PtrValue(make([]float64, 2)).String() != "ptr(len=2)" {
		t.Error("ptr render")
	}
	if StrValue("x").String() != `"x"` {
		t.Error("str render")
	}
	if (Value{Kind: ValueKind(99)}).String() != "?" {
		t.Error("unknown kind render")
	}
	if OpAdd.String() != "add" || Opcode(999).String() == "" {
		t.Error("opcode render")
	}
}

func TestAddVersionReplacesExisting(t *testing.T) {
	m := NewModule()
	m.AddVersion("f", 0, 8, "f_v1")
	m.AddVersion("f", 0, 8, "f_v2") // same match: replace target
	m.AddVersion("f", 0, 16, "f_w")
	vt := m.Variants["f"]
	if len(vt.Entries) != 2 {
		t.Fatalf("entries: %+v", vt.Entries)
	}
	if vt.Entries[0].Target != "f_v2" {
		t.Errorf("replacement: %+v", vt.Entries[0])
	}
	// Lookup misses: wrong arity, non-numeric, unmatched value.
	if m.Lookup("f", nil) != "" {
		t.Error("empty args should miss")
	}
	if m.Lookup("f", []Value{StrValue("x")}) != "" {
		t.Error("string arg should miss")
	}
	if m.Lookup("f", []Value{NumValue(99)}) != "" {
		t.Error("unmatched value should miss")
	}
	if m.Lookup("g", []Value{NumValue(8)}) != "" {
		t.Error("unknown function should miss")
	}
	if m.Lookup("f", []Value{NumValue(16)}) != "f_w" {
		t.Error("matching lookup failed")
	}
}

func TestWhileWithContinueAndLogicalStatements(t *testing.T) {
	m := compileSrc(t, `
int oddsum(int n) {
    int s = 0;
    int i = 0;
    while (i < n) {
        i++;
        if (i % 2 == 0) continue;
        s += i;
    }
    return s;
}
int boolval(int a, int b) { return (a || b) + (a && b); }
`)
	if got := run(t, m, "oddsum", NumValue(10)); got.Num != 1+3+5+7+9 {
		t.Errorf("oddsum = %v", got.Num)
	}
	cases := []struct{ a, b, want float64 }{
		{0, 0, 0}, {1, 0, 1}, {0, 2, 1}, {3, 4, 2},
	}
	for _, c := range cases {
		if got := run(t, m, "boolval", NumValue(c.a), NumValue(c.b)); got.Num != c.want {
			t.Errorf("boolval(%v,%v) = %v, want %v", c.a, c.b, got.Num, c.want)
		}
	}
}

func TestDerefCompilesAsIndexZero(t *testing.T) {
	m := compileSrc(t, `
double first(double* p) { return *p; }
void setFirst(double* p, double v) { *p = v; }
`)
	buf := []float64{3, 4}
	if got := run(t, m, "first", PtrValue(buf)); got.Num != 3 {
		t.Errorf("*p = %v", got.Num)
	}
	run(t, m, "setFirst", PtrValue(buf), NumValue(9))
	if buf[0] != 9 {
		t.Errorf("*p = v: %v", buf)
	}
}

func TestCompoundIndexAssign(t *testing.T) {
	m := compileSrc(t, `
void bump(double* a, int i) { a[i] += 2.5; a[i] *= 2.0; }
`)
	buf := []float64{0, 1}
	run(t, m, "bump", PtrValue(buf), NumValue(1))
	if buf[1] != (1+2.5)*2 {
		t.Errorf("compound index assign: %v", buf[1])
	}
}
