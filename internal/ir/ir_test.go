package ir

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/srcmodel"
)

func compileSrc(t *testing.T, src string) *Module {
	t.Helper()
	prog, err := srcmodel.Parse("test.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	srcmodel.NormalizeBodies(prog)
	m, err := Compile(prog)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return m
}

func run(t *testing.T, m *Module, fn string, args ...Value) Value {
	t.Helper()
	vm := NewVM(m)
	v, err := vm.Call(fn, args...)
	if err != nil {
		t.Fatalf("Call(%s): %v", fn, err)
	}
	return v
}

func TestArithmeticAndControlFlow(t *testing.T) {
	m := compileSrc(t, `
int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}
int gauss(int n) {
    int s = 0;
    for (int i = 1; i <= n; i++) {
        s += i;
    }
    return s;
}
int collatz(int n) {
    int steps = 0;
    while (n != 1) {
        if (n % 2 == 0) n = n / 2;
        else n = 3 * n + 1;
        steps++;
    }
    return steps;
}
`)
	if got := run(t, m, "fib", NumValue(10)); got.Num != 55 {
		t.Errorf("fib(10) = %v, want 55", got.Num)
	}
	if got := run(t, m, "gauss", NumValue(100)); got.Num != 5050 {
		t.Errorf("gauss(100) = %v, want 5050", got.Num)
	}
	if got := run(t, m, "collatz", NumValue(27)); got.Num != 111 {
		t.Errorf("collatz(27) = %v, want 111", got.Num)
	}
}

func TestArraysAndGlobals(t *testing.T) {
	m := compileSrc(t, `
double total = 0.0;
double work() {
    double buf[8];
    for (int i = 0; i < 8; i++) {
        buf[i] = i * 1.5;
    }
    double s = 0.0;
    for (int i = 0; i < 8; i++) {
        s += buf[i];
    }
    total = s;
    return s;
}
`)
	want := 1.5 * (0 + 1 + 2 + 3 + 4 + 5 + 6 + 7)
	if got := run(t, m, "work"); got.Num != want {
		t.Errorf("work() = %v, want %v", got.Num, want)
	}
	if g := m.Globals["total"]; g.Num != want {
		t.Errorf("global total = %v, want %v", g.Num, want)
	}
}

func TestPointerArgsShareMemory(t *testing.T) {
	m := compileSrc(t, `
void scale(double* a, int n, double k) {
    for (int i = 0; i < n; i++) {
        a[i] *= k;
    }
}
`)
	buf := []float64{1, 2, 3, 4}
	run(t, m, "scale", PtrValue(buf), NumValue(4), NumValue(10))
	for i, want := range []float64{10, 20, 30, 40} {
		if buf[i] != want {
			t.Errorf("buf[%d] = %v, want %v", i, buf[i], want)
		}
	}
}

func TestShortCircuit(t *testing.T) {
	m := compileSrc(t, `
int calls = 0;
int bump() { calls += 1; return 1; }
int andTest(int x) { return x && bump(); }
int orTest(int x) { return x || bump(); }
`)
	vmRun := func(fn string, arg float64) (float64, float64) {
		vm := NewVM(m)
		m.Globals["calls"] = NumValue(0)
		v, err := vm.Call(fn, NumValue(arg))
		if err != nil {
			t.Fatalf("%s: %v", fn, err)
		}
		return v.Num, m.Globals["calls"].Num
	}
	if v, calls := vmRun("andTest", 0); v != 0 || calls != 0 {
		t.Errorf("0 && bump(): v=%v calls=%v, want 0,0", v, calls)
	}
	if v, calls := vmRun("andTest", 5); v != 1 || calls != 1 {
		t.Errorf("5 && bump(): v=%v calls=%v, want 1,1", v, calls)
	}
	if v, calls := vmRun("orTest", 5); v != 1 || calls != 0 {
		t.Errorf("5 || bump(): v=%v calls=%v, want 1,0", v, calls)
	}
	if v, calls := vmRun("orTest", 0); v != 1 || calls != 1 {
		t.Errorf("0 || bump(): v=%v calls=%v, want 1,1", v, calls)
	}
}

func TestBreakContinue(t *testing.T) {
	m := compileSrc(t, `
int f() {
    int s = 0;
    for (int i = 0; i < 100; i++) {
        if (i % 2 == 0) continue;
        if (i > 10) break;
        s += i;
    }
    return s;
}
`)
	if got := run(t, m, "f"); got.Num != 1+3+5+7+9 {
		t.Errorf("f() = %v, want 25", got.Num)
	}
}

func TestExterns(t *testing.T) {
	m := compileSrc(t, `
void driver(int n) {
    for (int i = 0; i < n; i++) {
        record("driver", i);
    }
}
`)
	vm := NewVM(m)
	var got []float64
	vm.RegisterExtern("record", func(_ *VM, args []Value) (Value, error) {
		if args[0].Str != "driver" {
			t.Errorf("extern arg 0 = %v", args[0])
		}
		got = append(got, args[1].Num)
		return NumValue(0), nil
	})
	if _, err := vm.Call("driver", NumValue(3)); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Errorf("extern calls: %v", got)
	}
}

func TestRuntimeErrors(t *testing.T) {
	m := compileSrc(t, `
double oob(double* a) { return a[99]; }
double divz(double x) { return x / 0.0; }
int infinite() { while (1) { } return 0; }
int selfcall() { return selfcall(); }
`)
	cases := []struct {
		fn   string
		args []Value
		want string
	}{
		{"oob", []Value{PtrValue(make([]float64, 4))}, "out of range"},
		{"divz", []Value{NumValue(1)}, "division by zero"},
		{"nosuch", nil, "undefined function"},
		{"selfcall", nil, "call depth"},
	}
	for _, c := range cases {
		vm := NewVM(m)
		_, err := vm.Call(c.fn, c.args...)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err=%v, want containing %q", c.fn, err, c.want)
		}
	}
	// Fuel exhaustion.
	vm := NewVM(m)
	vm.Fuel = 10_000
	if _, err := vm.Call("infinite"); err != ErrOutOfFuel {
		t.Errorf("infinite: err=%v, want ErrOutOfFuel", err)
	}
}

func TestCycleAccountingDeterministic(t *testing.T) {
	m := compileSrc(t, `
int g(int n) { int s = 0; for (int i = 0; i < n; i++) { s += i * i; } return s; }
`)
	vm1 := NewVM(m)
	vm2 := NewVM(m)
	if _, err := vm1.Call("g", NumValue(100)); err != nil {
		t.Fatal(err)
	}
	if _, err := vm2.Call("g", NumValue(100)); err != nil {
		t.Fatal(err)
	}
	if vm1.Cycles != vm2.Cycles || vm1.Cycles == 0 {
		t.Errorf("cycles not deterministic: %d vs %d", vm1.Cycles, vm2.Cycles)
	}
	// More work costs more cycles.
	vm3 := NewVM(m)
	if _, err := vm3.Call("g", NumValue(200)); err != nil {
		t.Fatal(err)
	}
	if vm3.Cycles <= vm1.Cycles {
		t.Errorf("200 iterations (%d cycles) should cost more than 100 (%d)", vm3.Cycles, vm1.Cycles)
	}
}

// Property: compiled gauss matches closed form for arbitrary n.
func TestGaussProperty(t *testing.T) {
	m := compileSrc(t, `
int gauss(int n) { int s = 0; for (int i = 1; i <= n; i++) { s += i; } return s; }
`)
	f := func(n uint8) bool {
		vm := NewVM(m)
		v, err := vm.Call("gauss", NumValue(float64(n)))
		if err != nil {
			return false
		}
		want := float64(n) * float64(int(n)+1) / 2
		return v.Num == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMetaExtraction(t *testing.T) {
	m := compileSrc(t, `
double kernel(double* data, int size, int flag) {
    double s = 0.0;
    for (int i = 0; i < size; i++) {
        s += data[i];
    }
    return s;
}
int pure(int a, int b) { return a * b + 1; }
`)
	k := m.Funcs["kernel"]
	if len(k.Meta.SpecializableParams) != 1 || k.Meta.SpecializableParams[0] != 1 {
		t.Errorf("kernel specializable params: %v, want [1]", k.Meta.SpecializableParams)
	}
	if len(k.Meta.Loops) != 1 || k.Meta.Loops[0].BoundParam != 1 || !k.Meta.Loops[0].Innermost {
		t.Errorf("kernel loop meta: %+v", k.Meta.Loops)
	}
	if k.Meta.PureScalar {
		t.Error("kernel has pointer params; must not be PureScalar")
	}
	p := m.Funcs["pure"]
	if !p.Meta.PureScalar {
		t.Error("pure should be PureScalar")
	}
}

func TestDisasmStable(t *testing.T) {
	m := compileSrc(t, `int id(int x) { return x; }`)
	d := m.Funcs["id"].Disasm()
	for _, want := range []string{"func id", "load", "ret"} {
		if !strings.Contains(d, want) {
			t.Errorf("disasm missing %q:\n%s", want, d)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		`int f() { break; }`,
		`int f() { continue; }`,
		`int f(int x) { &x; return 0; }`,
	}
	for _, src := range bad {
		prog, err := srcmodel.Parse("bad.c", src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := Compile(prog); err == nil {
			t.Errorf("Compile(%q): expected error", src)
		}
	}
}
