package ir

import (
	"fmt"

	"repro/internal/srcmodel"
)

// SplitCompiler packages the two halves of split compilation (§III-B).
//
// Offline (construction time): the miniC program is parsed, normalized,
// compiled to IR and analysed; the source AST is retained as the portable
// "bitcode" that the runtime specializer consumes (standing in for the
// paper's SPIR kernels), together with FuncMeta describing where
// specialization pays off.
//
// Online (SpecializeNow / the AutoSpecialize hook): for a hot (function,
// argument value) pair, the specializer clones the retained AST,
// substitutes the constant, folds, unrolls the now-constant innermost
// loops, recompiles just that function, and installs it in the variant
// table — a cheap, local step because all analysis was done offline.
type SplitCompiler struct {
	Source *srcmodel.Program
	Mod    *Module
	// UnrollThreshold bounds full unrolling of specialized loops,
	// mirroring the threshold input of the Fig. 3 aspect.
	UnrollThreshold int64

	globals map[string]bool
	// stats
	Specializations int
}

// NewSplitCompiler runs the offline step over the program source.
func NewSplitCompiler(file, source string) (*SplitCompiler, error) {
	prog, err := srcmodel.Parse(file, source)
	if err != nil {
		return nil, err
	}
	return NewSplitCompilerAST(prog)
}

// NewSplitCompilerAST runs the offline step over an already-parsed (and
// possibly woven) program.
func NewSplitCompilerAST(prog *srcmodel.Program) (*SplitCompiler, error) {
	srcmodel.NormalizeBodies(prog)
	mod, err := Compile(prog)
	if err != nil {
		return nil, err
	}
	globals := make(map[string]bool, len(prog.Globals))
	for _, g := range prog.Globals {
		globals[g.Name] = true
	}
	return &SplitCompiler{
		Source:          prog,
		Mod:             mod,
		UnrollThreshold: 64,
		globals:         globals,
	}, nil
}

// SpecializedName is the naming scheme for generated variants.
func SpecializedName(fn, param string, value int64) string {
	return fmt.Sprintf("%s__%s_%d", fn, param, value)
}

// SpecializeNow generates (or reuses) a variant of fn with paramName fixed
// to value, installs it in the module and variant table, and returns its
// name. This is the online half of split compilation.
func (sc *SplitCompiler) SpecializeNow(fnName, paramName string, value int64) (string, error) {
	f := sc.Source.Func(fnName)
	if f == nil {
		return "", fmt.Errorf("ir: split: no source for function %q", fnName)
	}
	spName := SpecializedName(fnName, paramName, value)
	if _, ok := sc.Mod.Funcs[spName]; ok {
		return spName, nil // already specialized
	}
	sp, err := srcmodel.SpecializeFunc(f, spName, paramName, value)
	if err != nil {
		return "", err
	}
	if _, err := srcmodel.UnrollInnermost(sp, sc.UnrollThreshold); err != nil {
		return "", err
	}
	fn, err := CompileFunc(sp, sc.globals)
	if err != nil {
		return "", err
	}
	sc.Mod.Add(fn)
	argIdx := -1
	for i, prm := range f.Params {
		if prm.Name == paramName {
			argIdx = i
		}
	}
	sc.Mod.AddVersion(fnName, argIdx, float64(value), spName)
	sc.Specializations++
	return spName, nil
}

// AutoSpecializeHook returns a CallHook implementing the dynamic-weaving
// policy of Fig. 4: monitor calls to fnName; when the runtime value of
// paramName falls within [lowT, highT] and has been seen at least
// hotAfter times, specialize the function for that value and register the
// variant. Specialization failures are silently skipped (the generic
// version keeps serving the call).
func (sc *SplitCompiler) AutoSpecializeHook(fnName, paramName string, lowT, highT int64, hotAfter int) CallHook {
	f := sc.Source.Func(fnName)
	argIdx := -1
	if f != nil {
		for i, prm := range f.Params {
			if prm.Name == paramName {
				argIdx = i
			}
		}
	}
	seen := make(map[int64]int)
	return func(vm *VM, callee string, args []Value) {
		if callee != fnName || argIdx < 0 || argIdx >= len(args) {
			return
		}
		a := args[argIdx]
		if a.Kind != KindNum || a.Num != float64(int64(a.Num)) {
			return
		}
		v := int64(a.Num)
		if v < lowT || v > highT {
			return
		}
		seen[v]++
		if seen[v] != hotAfter {
			return
		}
		if _, err := sc.SpecializeNow(fnName, paramName, v); err != nil {
			seen[v] = hotAfter + 1 // do not retry every call
		}
	}
}

// OfflineOptimize applies whole-program offline transformations that do
// not depend on runtime values: constant folding everywhere and full
// unrolling of constant-bound innermost loops up to the threshold. It
// recompiles the module. The work it does here is exactly what the online
// step is spared from repeating.
func (sc *SplitCompiler) OfflineOptimize() error {
	for _, f := range sc.Source.Funcs {
		srcmodel.FoldConstants(f)
		if _, err := srcmodel.UnrollInnermost(f, sc.UnrollThreshold); err != nil {
			return err
		}
	}
	mod, err := Compile(sc.Source)
	if err != nil {
		return err
	}
	// Preserve variants and globals accumulated so far.
	for name, vt := range sc.Mod.Variants {
		mod.Variants[name] = vt
	}
	for name, fn := range sc.Mod.Funcs {
		if _, ok := mod.Funcs[name]; !ok {
			mod.Funcs[name] = fn // keep generated variants
		}
	}
	mod.Globals = sc.Mod.Globals
	sc.Mod = mod
	return nil
}
