package ir

import (
	"fmt"
	"math"
)

// Extern is a host function callable from IR code. Weaving-injected
// instrumentation (profile_args, monitor hooks) is provided as externs.
type Extern func(vm *VM, args []Value) (Value, error)

// CallHook observes every call executed by the VM, before dispatch. The
// DSL's dynamic weaving (Fig. 4 `apply dynamic`) registers a hook that
// inspects runtime argument values and installs specialized variants.
type CallHook func(vm *VM, callee string, args []Value)

// VM executes IR modules with deterministic cycle accounting.
type VM struct {
	Mod     *Module
	Externs map[string]Extern
	Hooks   []CallHook

	// Cycles accumulates the deterministic cost of executed instructions;
	// it is the "time" the simulator substrates consume.
	Cycles int64
	// Fuel bounds execution; 0 means the default budget. Running out
	// returns ErrOutOfFuel, preventing runaway woven programs.
	Fuel int64

	depth int
}

// ErrOutOfFuel is returned when execution exceeds the fuel budget.
var ErrOutOfFuel = fmt.Errorf("ir: execution exceeded fuel budget")

const defaultFuel = 500_000_000

// maxDepth bounds recursion.
const maxDepth = 512

// NewVM returns a VM over mod with no externs registered.
func NewVM(mod *Module) *VM {
	return &VM{Mod: mod, Externs: make(map[string]Extern)}
}

// RegisterExtern installs a host function under name.
func (vm *VM) RegisterExtern(name string, fn Extern) { vm.Externs[name] = fn }

// AddHook appends a call hook.
func (vm *VM) AddHook(h CallHook) { vm.Hooks = append(vm.Hooks, h) }

// Call invokes the named function with args, applying variant dispatch and
// call hooks, and returns its result.
func (vm *VM) Call(name string, args ...Value) (Value, error) {
	if vm.Fuel == 0 {
		vm.Fuel = defaultFuel
	}
	return vm.call(name, args)
}

func (vm *VM) call(name string, args []Value) (Value, error) {
	if vm.depth >= maxDepth {
		return Value{}, fmt.Errorf("ir: call depth exceeded at %q", name)
	}
	for _, h := range vm.Hooks {
		h(vm, name, args)
	}
	// Variant dispatch: a specialized version may shadow the generic one
	// for specific argument values (Fig. 4 AddVersion semantics).
	if target := vm.Mod.Lookup(name, args); target != "" {
		vt := vm.Mod.Variants[name]
		spArgs := make([]Value, 0, len(args)-1)
		spArgs = append(spArgs, args[:vt.ArgIndex]...)
		spArgs = append(spArgs, args[vt.ArgIndex+1:]...)
		name, args = target, spArgs
	}
	if fn, ok := vm.Mod.Funcs[name]; ok {
		vm.depth++
		v, err := vm.exec(fn, args)
		vm.depth--
		return v, err
	}
	if ext, ok := vm.Externs[name]; ok {
		return ext(vm, args)
	}
	return Value{}, fmt.Errorf("ir: undefined function %q", name)
}

func (vm *VM) exec(fn *Function, args []Value) (Value, error) {
	if len(args) != fn.NParams {
		return Value{}, fmt.Errorf("ir: %s expects %d args, got %d", fn.Name, fn.NParams, len(args))
	}
	locals := make([]Value, fn.NLocals)
	copy(locals, args)
	stack := make([]Value, 0, 16)
	pop := func() Value {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return v
	}
	push := func(v Value) { stack = append(stack, v) }

	code := fn.Code
	for pc := 0; pc < len(code); pc++ {
		in := &code[pc]
		cost := in.Op.Cost()
		vm.Cycles += cost
		vm.Fuel -= cost
		if vm.Fuel <= 0 {
			return Value{}, ErrOutOfFuel
		}
		switch in.Op {
		case OpConst:
			push(in.Val)
		case OpLoadLocal:
			push(locals[in.A])
		case OpStoreLocal:
			locals[in.A] = pop()
		case OpLoadGlobal:
			push(vm.Mod.Globals[in.Sym])
		case OpStoreGlobal:
			vm.Mod.Globals[in.Sym] = pop()
		case OpLoadIndex:
			idx := pop()
			ptr := pop()
			if ptr.Kind != KindPtr {
				return Value{}, fmt.Errorf("ir: %s: indexing non-pointer", fn.Name)
			}
			i := int(idx.Num)
			if i < 0 || i >= len(ptr.Arr) {
				return Value{}, fmt.Errorf("ir: %s: index %d out of range [0,%d)", fn.Name, i, len(ptr.Arr))
			}
			push(NumValue(ptr.Arr[i]))
		case OpStoreIndex:
			val := pop()
			idx := pop()
			ptr := pop()
			if ptr.Kind != KindPtr {
				return Value{}, fmt.Errorf("ir: %s: indexing non-pointer", fn.Name)
			}
			i := int(idx.Num)
			if i < 0 || i >= len(ptr.Arr) {
				return Value{}, fmt.Errorf("ir: %s: index %d out of range [0,%d)", fn.Name, i, len(ptr.Arr))
			}
			ptr.Arr[i] = val.Num
		case OpAdd:
			r, l := pop(), pop()
			push(NumValue(l.Num + r.Num))
		case OpSub:
			r, l := pop(), pop()
			push(NumValue(l.Num - r.Num))
		case OpMul:
			r, l := pop(), pop()
			push(NumValue(l.Num * r.Num))
		case OpDiv:
			r, l := pop(), pop()
			if r.Num == 0 {
				return Value{}, fmt.Errorf("ir: %s: division by zero", fn.Name)
			}
			push(NumValue(l.Num / r.Num))
		case OpMod:
			r, l := pop(), pop()
			if r.Num == 0 {
				return Value{}, fmt.Errorf("ir: %s: modulo by zero", fn.Name)
			}
			push(NumValue(math.Mod(l.Num, r.Num)))
		case OpNeg:
			push(NumValue(-pop().Num))
		case OpNot:
			if pop().Bool() {
				push(NumValue(0))
			} else {
				push(NumValue(1))
			}
		case OpEq:
			r, l := pop(), pop()
			push(boolValue(l.Num == r.Num))
		case OpNe:
			r, l := pop(), pop()
			push(boolValue(l.Num != r.Num))
		case OpLt:
			r, l := pop(), pop()
			push(boolValue(l.Num < r.Num))
		case OpLe:
			r, l := pop(), pop()
			push(boolValue(l.Num <= r.Num))
		case OpGt:
			r, l := pop(), pop()
			push(boolValue(l.Num > r.Num))
		case OpGe:
			r, l := pop(), pop()
			push(boolValue(l.Num >= r.Num))
		case OpJmp:
			pc = in.A - 1
		case OpJmpZero:
			if !pop().Bool() {
				pc = in.A - 1
			}
		case OpCall:
			n := in.A
			callArgs := make([]Value, n)
			for i := n - 1; i >= 0; i-- {
				callArgs[i] = pop()
			}
			res, err := vm.call(in.Sym, callArgs)
			if err != nil {
				return Value{}, err
			}
			push(res)
		case OpRet:
			return pop(), nil
		case OpRetVoid:
			return NumValue(0), nil
		case OpPop:
			pop()
		case OpNewArray:
			push(PtrValue(make([]float64, in.A)))
		default:
			return Value{}, fmt.Errorf("ir: %s: unknown opcode %v", fn.Name, in.Op)
		}
	}
	return NumValue(0), nil
}

func boolValue(b bool) Value {
	if b {
		return NumValue(1)
	}
	return NumValue(0)
}
