package precision

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/simhpc"
)

func TestRoundIdentityForRepresentable(t *testing.T) {
	cases := []struct {
		f Format
		v float64
	}{
		{Float64, 1.0 / 3.0},
		{Float32, 0.5},
		{BFloat16, 1.0},
		{BFloat16, 0.5},
		{Fixed16, 1.5},
		{Fixed16, 0.25},
	}
	for _, c := range cases {
		if got := c.f.Round(c.v); got != c.v {
			t.Errorf("%s.Round(%v) = %v, want identity", c.f, c.v, got)
		}
	}
}

func TestRoundErrorOrdering(t *testing.T) {
	// Error for an awkward constant grows as precision shrinks.
	x := math.Pi
	e32 := math.Abs(Float32.Round(x) - x)
	e16 := math.Abs(BFloat16.Round(x) - x)
	if e32 == 0 || e16 <= e32 {
		t.Errorf("error ordering: fp32=%g bf16=%g", e32, e16)
	}
}

func TestFixedSaturation(t *testing.T) {
	if v := Fixed16.Round(1e9); v > 32768 {
		t.Errorf("fixed saturation high: %v", v)
	}
	if v := Fixed16.Round(-1e9); v < -32769 {
		t.Errorf("fixed saturation low: %v", v)
	}
	if v := Fixed16.Round(0.000001); v != 0 {
		t.Errorf("sub-resolution value should flush to 0, got %v", v)
	}
}

// Property: rounding is idempotent for every format.
func TestRoundIdempotentProperty(t *testing.T) {
	f := func(raw int32) bool {
		x := float64(raw) / 1000
		for _, fm := range Formats() {
			once := fm.Round(x)
			if fm.Round(once) != once {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func makeDot(n int, seed uint64) *Dot {
	rng := simhpc.NewRNG(seed)
	d := &Dot{X: make([]float64, n), Y: make([]float64, n)}
	for i := 0; i < n; i++ {
		d.X[i] = rng.Uniform(-1, 1)
		d.Y[i] = rng.Uniform(-1, 1)
	}
	return d
}

func TestEvaluateQualityCostTradeoff(t *testing.T) {
	evals := Evaluate(makeDot(512, 9))
	if len(evals) != 4 {
		t.Fatalf("evals: %d", len(evals))
	}
	if evals[0].Format != Float64 || evals[0].RelError != 0 {
		t.Errorf("reference eval wrong: %+v", evals[0])
	}
	// Energy strictly decreases down the format list; error grows from
	// fp64 to bf16 (fixed-point may beat bf16 in this value range).
	for i := 1; i < len(evals); i++ {
		if evals[i].EnergyAU >= evals[i-1].EnergyAU {
			t.Errorf("energy not decreasing: %+v", evals)
		}
	}
	if evals[1].RelError <= 0 || evals[2].RelError <= evals[1].RelError {
		t.Errorf("error not growing fp64→fp32→bf16: %+v", evals)
	}
}

func TestTuneRespectsBudget(t *testing.T) {
	k := makeDot(512, 13)
	// Loose budget: picks the cheapest qualifying format (not fp64).
	loose := Tune(k, 1e-2)
	if loose.Chosen == Float64 {
		t.Errorf("loose budget should pick a narrow format, got %s", loose.Chosen)
	}
	if loose.EnergySaving <= 0 || loose.TimeSaving <= 0 {
		t.Errorf("savings: %+v", loose)
	}
	if loose.Eval.RelError > 1e-2 {
		t.Errorf("budget violated: %+v", loose.Eval)
	}
	// Tight budget: forces float64.
	tight := Tune(k, 1e-15)
	if tight.Chosen != Float64 || tight.EnergySaving != 0 {
		t.Errorf("tight budget: %+v", tight)
	}
	// Medium budget: float32 qualifies, bf16 does not.
	evals := Evaluate(k)
	var e32, e16 float64
	for _, e := range evals {
		switch e.Format {
		case Float32:
			e32 = e.RelError
		case BFloat16:
			e16 = e.RelError
		}
	}
	if e32 < e16 {
		mid := Tune(k, (e32+e16)/2)
		if mid.Chosen == Float64 || mid.Chosen == BFloat16 {
			t.Errorf("medium budget picked %s (fp32 err=%g bf16 err=%g)", mid.Chosen, e32, e16)
		}
	}
}

func TestStencilStability(t *testing.T) {
	rng := simhpc.NewRNG(21)
	init := make([]float64, 128)
	for i := range init {
		init[i] = rng.Uniform(0, 10)
	}
	s := &Stencil{Init: init, Steps: 50}
	evals := Evaluate(s)
	// The averaging stencil is contractive: float32 stays essentially
	// exact; bfloat16's 8 mantissa bits accumulate ~10 % over 50 steps
	// but remain bounded.
	for _, e := range evals {
		switch e.Format {
		case Float32:
			if e.RelError > 1e-4 {
				t.Errorf("float32 stencil error %.2g too large", e.RelError)
			}
		case BFloat16:
			if e.RelError > 0.2 {
				t.Errorf("bfloat16 stencil error %.4f unbounded", e.RelError)
			}
		}
	}
	ref, ops := s.Run(Float64)
	if ops != 3*128*50 {
		t.Errorf("op count: %d", ops)
	}
	if math.IsNaN(ref) || ref <= 0 {
		t.Errorf("reference checksum: %v", ref)
	}
}

func TestSaxpyKernel(t *testing.T) {
	k := &Saxpy{A: 2, X: []float64{1, 2, 3}, Y: []float64{1, 1, 1}}
	res, ops := k.Run(Float64)
	if res != (2+1)+(4+1)+(6+1) || ops != 9 {
		t.Errorf("saxpy: res=%v ops=%d", res, ops)
	}
	if k.Name() != "saxpy" {
		t.Error("name")
	}
}

func TestFormatMetadata(t *testing.T) {
	for _, f := range Formats() {
		if f.String() == "" || f.Bits() <= 0 {
			t.Errorf("metadata for %d", f)
		}
		if f != Float64 && (f.EnergyPerOp() >= 1 || f.TimePerOp() >= 1) {
			t.Errorf("%s should be cheaper than float64", f)
		}
	}
}
