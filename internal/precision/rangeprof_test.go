package precision

import (
	"math"
	"strings"
	"testing"

	"repro/internal/simhpc"
)

func TestRangeProfilerObserve(t *testing.T) {
	rp := NewRangeProfiler()
	for _, v := range []float64{1.5, -2.25, 0, 100, 0.125} {
		rp.Observe("kernel", "x", v)
	}
	r := rp.Range("kernel", "x")
	if r == nil || r.N != 5 {
		t.Fatalf("range: %+v", r)
	}
	if r.Min != -2.25 || r.Max != 100 {
		t.Errorf("min/max: %v/%v", r.Min, r.Max)
	}
	if r.AbsMinNonzero != 0.125 || r.AbsMax != 100 {
		t.Errorf("abs: %v/%v", r.AbsMinNonzero, r.AbsMax)
	}
	if rp.Range("kernel", "nosuch") != nil {
		t.Error("unknown stream should be nil")
	}
}

func TestRecommendByRange(t *testing.T) {
	// Small-magnitude values with modest accuracy needs → fixed16.
	rp := NewRangeProfiler()
	for _, v := range []float64{1, 2, 3.5, 10, -4} {
		rp.Observe("k", "a", v)
	}
	if got := rp.Recommend("k", "a", 1e-2); got != Fixed16 {
		t.Errorf("small range: %s, want fixed16.16", got)
	}
	// Values exceeding the Q16.16 range → fixed16 unusable, bf16 ok at
	// loose budgets.
	rp2 := NewRangeProfiler()
	rp2.Observe("k", "b", 1e6)
	rp2.Observe("k", "b", 2)
	if got := rp2.Recommend("k", "b", 1e-2); got != BFloat16 {
		t.Errorf("big range loose budget: %s, want bfloat16", got)
	}
	if got := rp2.Recommend("k", "b", 1e-5); got != Float32 {
		t.Errorf("big range tight budget: %s, want float32", got)
	}
	if got := rp2.Recommend("k", "b", 1e-12); got != Float64 {
		t.Errorf("very tight budget: %s, want float64", got)
	}
	// Tiny magnitudes break fixed-point resolution.
	rp3 := NewRangeProfiler()
	rp3.Observe("k", "c", 1e-6)
	if got := rp3.Recommend("k", "c", 1e-2); got == Fixed16 {
		t.Error("sub-resolution values must not recommend fixed16")
	}
	// No observations: conservative.
	if got := rp3.Recommend("k", "never", 1); got != Float64 {
		t.Errorf("unobserved: %s", got)
	}
}

// TestRecommendationIsSound verifies the promise behind Recommend: if it
// returns a format, rounding every observed value to that format keeps
// relative error within budget.
func TestRecommendationIsSound(t *testing.T) {
	rng := simhpc.NewRNG(13)
	rp := NewRangeProfiler()
	var vals []float64
	for i := 0; i < 500; i++ {
		v := rng.Uniform(0.5, 200)
		vals = append(vals, v)
		rp.Observe("f", "p", v)
	}
	for _, budget := range []float64{1e-2, 1e-4, 1e-7} {
		f := rp.Recommend("f", "p", budget)
		for _, v := range vals {
			got := f.Round(v)
			rel := math.Abs(got-v) / math.Abs(v)
			if rel > budget {
				t.Fatalf("budget %g: %s.Round(%v) rel err %g exceeds budget", budget, f, v, rel)
			}
		}
	}
}

func TestProfilerReport(t *testing.T) {
	rp := NewRangeProfiler()
	rp.Observe("kernel", "size", 64)
	rp.Observe("kernel", "scale", 0.5)
	rep := rp.Report(1e-2)
	if !strings.Contains(rep, "kernel/size") || !strings.Contains(rep, "kernel/scale") {
		t.Errorf("report:\n%s", rep)
	}
	if got := rp.Streams(); len(got) != 2 || got[0] != "kernel/scale" {
		t.Errorf("streams: %v", got)
	}
}
