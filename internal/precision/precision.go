// Package precision implements the customized-precision autotuning of
// paper §IV: "customized precision has emerged as a promising approach
// to achieve power/performance trade-offs when an application can
// tolerate some loss of quality."
//
// Numeric formats below float64 are emulated by rounding every
// intermediate result to the target format, which reproduces the error
// propagation a real reduced-precision unit would exhibit. Each format
// carries a relative energy/time cost per operation (narrower datapaths
// and halved memory traffic), so a tuner can trade quality for energy
// under an application error budget.
package precision

import (
	"fmt"
	"math"
)

// Format is an emulated numeric format.
type Format int

// Supported formats, widest first.
const (
	Float64 Format = iota
	Float32
	BFloat16
	Fixed16 // Q16.16 fixed point
)

var formatNames = map[Format]string{
	Float64: "float64", Float32: "float32", BFloat16: "bfloat16",
	Fixed16: "fixed16.16",
}

// String returns the format name.
func (f Format) String() string {
	if s, ok := formatNames[f]; ok {
		return s
	}
	return fmt.Sprintf("Format(%d)", int(f))
}

// Formats lists all supported formats, widest first.
func Formats() []Format { return []Format{Float64, Float32, BFloat16, Fixed16} }

// Round quantizes x to the format.
func (f Format) Round(x float64) float64 {
	switch f {
	case Float64:
		return x
	case Float32:
		return float64(float32(x))
	case BFloat16:
		// bfloat16 = float32 with the low 16 mantissa bits dropped
		// (round-to-nearest on the retained bits).
		bits := math.Float32bits(float32(x))
		// Round to nearest even on bit 16.
		lsb := (bits >> 16) & 1
		bits += 0x7fff + lsb
		bits &= 0xffff0000
		return float64(math.Float32frombits(bits))
	case Fixed16:
		const scale = 65536.0
		v := math.Round(x*scale) / scale
		// Saturate to the Q16.16 range.
		const lim = 32767.99998
		if v > lim {
			return lim
		}
		if v < -lim-1 {
			return -lim - 1
		}
		return v
	}
	return x
}

// EnergyPerOp returns the relative energy cost of one arithmetic
// operation in this format (float64 = 1). The ratios follow the usual
// datapath-width scaling: energy grows roughly quadratically with
// mantissa width, and memory traffic halves with the storage width.
func (f Format) EnergyPerOp() float64 {
	switch f {
	case Float64:
		return 1.0
	case Float32:
		return 0.55
	case BFloat16:
		return 0.30
	case Fixed16:
		return 0.25
	}
	return 1.0
}

// TimePerOp returns the relative latency of one operation (float64 = 1).
func (f Format) TimePerOp() float64 {
	switch f {
	case Float64:
		return 1.0
	case Float32:
		return 0.70
	case BFloat16:
		return 0.50
	case Fixed16:
		return 0.45
	}
	return 1.0
}

// Bits returns the storage width.
func (f Format) Bits() int {
	switch f {
	case Float64:
		return 64
	case Float32:
		return 32
	case BFloat16:
		return 16
	case Fixed16:
		return 32
	}
	return 64
}

// Kernel is a numeric kernel computable at any emulated precision.
// Result returns the kernel output plus the operation count (for cost
// accounting).
type Kernel interface {
	Name() string
	Run(f Format) (result float64, ops int)
}

// Dot is an n-element dot product kernel.
type Dot struct {
	X, Y []float64
}

// Name implements Kernel.
func (d *Dot) Name() string { return "dot" }

// Run implements Kernel: every multiply and accumulate rounds to f.
func (d *Dot) Run(f Format) (float64, int) {
	acc := 0.0
	ops := 0
	for i := range d.X {
		prod := f.Round(f.Round(d.X[i]) * f.Round(d.Y[i]))
		acc = f.Round(acc + prod)
		ops += 2
	}
	return acc, ops
}

// Stencil is a 1-D 3-point Jacobi stencil iterated Steps times.
type Stencil struct {
	Init  []float64
	Steps int
}

// Name implements Kernel.
func (s *Stencil) Name() string { return "stencil" }

// Run implements Kernel.
func (s *Stencil) Run(f Format) (float64, int) {
	cur := make([]float64, len(s.Init))
	for i, v := range s.Init {
		cur[i] = f.Round(v)
	}
	next := make([]float64, len(cur))
	ops := 0
	third := f.Round(1.0 / 3.0)
	for step := 0; step < s.Steps; step++ {
		for i := range cur {
			l, r := i-1, i+1
			if l < 0 {
				l = 0
			}
			if r >= len(cur) {
				r = len(cur) - 1
			}
			sum := f.Round(f.Round(cur[l]+cur[i]) + cur[r])
			next[i] = f.Round(sum * third)
			ops += 3
		}
		cur, next = next, cur
	}
	var checksum float64
	for _, v := range cur {
		checksum += v
	}
	return checksum, ops
}

// Saxpy computes sum(a*x[i] + y[i]) as a reduction.
type Saxpy struct {
	A    float64
	X, Y []float64
}

// Name implements Kernel.
func (s *Saxpy) Name() string { return "saxpy" }

// Run implements Kernel.
func (s *Saxpy) Run(f Format) (float64, int) {
	acc := 0.0
	a := f.Round(s.A)
	ops := 0
	for i := range s.X {
		v := f.Round(f.Round(a*f.Round(s.X[i])) + f.Round(s.Y[i]))
		acc = f.Round(acc + v)
		ops += 3
	}
	return acc, ops
}

// Evaluation is the quality/cost profile of one kernel at one format.
type Evaluation struct {
	Format   Format
	RelError float64 // |result - reference| / |reference|
	EnergyAU float64 // arbitrary units: ops * EnergyPerOp
	TimeAU   float64
}

// Evaluate profiles the kernel at every format against the float64
// reference.
func Evaluate(k Kernel) []Evaluation {
	ref, _ := k.Run(Float64)
	var out []Evaluation
	for _, f := range Formats() {
		res, ops := k.Run(f)
		relErr := 0.0
		if ref != 0 {
			relErr = math.Abs(res-ref) / math.Abs(ref)
		} else {
			relErr = math.Abs(res - ref)
		}
		out = append(out, Evaluation{
			Format:   f,
			RelError: relErr,
			EnergyAU: float64(ops) * f.EnergyPerOp(),
			TimeAU:   float64(ops) * f.TimePerOp(),
		})
	}
	return out
}

// TuneResult is the outcome of precision autotuning.
type TuneResult struct {
	Chosen Format
	Eval   Evaluation
	// Savings vs float64.
	EnergySaving float64
	TimeSaving   float64
}

// Tune selects the cheapest format whose relative error stays within
// budget — the precision-autotuning decision of §IV. It falls back to
// Float64 when nothing narrower qualifies.
func Tune(k Kernel, errBudget float64) TuneResult {
	evals := Evaluate(k)
	ref := evals[0] // Float64
	best := ref
	for _, e := range evals[1:] {
		if e.RelError <= errBudget && e.EnergyAU < best.EnergyAU {
			best = e
		}
	}
	res := TuneResult{Chosen: best.Format, Eval: best}
	if ref.EnergyAU > 0 {
		res.EnergySaving = 1 - best.EnergyAU/ref.EnergyAU
		res.TimeSaving = 1 - best.TimeAU/ref.TimeAU
	}
	return res
}
