package precision

import (
	"fmt"
	"math"
	"sort"
)

// §IV: "We also plan to apply fully automatic dynamic optimizations,
// based on profiling information, and data acquired at runtime, e.g.
// dynamic range of function parameters." RangeProfiler is that
// mechanism: it accumulates the observed dynamic range of each
// (function, parameter) stream — typically fed by the Fig. 2 profiling
// aspect — and recommends the narrowest format whose range and
// resolution cover the observations within an error budget.
type RangeProfiler struct {
	ranges map[string]*ValueRange
}

// ValueRange summarizes one observed value stream.
type ValueRange struct {
	Min, Max float64
	// AbsMinNonzero is the smallest non-zero magnitude seen (sets the
	// resolution requirement for fixed point).
	AbsMinNonzero float64
	// AbsMax is the largest magnitude (sets the range requirement).
	AbsMax float64
	N      int64
}

// NewRangeProfiler returns an empty profiler.
func NewRangeProfiler() *RangeProfiler {
	return &RangeProfiler{ranges: make(map[string]*ValueRange)}
}

func key(fn, param string) string { return fn + "/" + param }

// Observe records one runtime value of fn's parameter param.
func (rp *RangeProfiler) Observe(fn, param string, v float64) {
	r, ok := rp.ranges[key(fn, param)]
	if !ok {
		r = &ValueRange{Min: v, Max: v, AbsMinNonzero: math.Inf(1)}
		rp.ranges[key(fn, param)] = r
	}
	if v < r.Min {
		r.Min = v
	}
	if v > r.Max {
		r.Max = v
	}
	if a := math.Abs(v); a > 0 {
		if a < r.AbsMinNonzero {
			r.AbsMinNonzero = a
		}
		if a > r.AbsMax {
			r.AbsMax = a
		}
	}
	r.N++
}

// Range returns the observed range for (fn, param), or nil.
func (rp *RangeProfiler) Range(fn, param string) *ValueRange {
	return rp.ranges[key(fn, param)]
}

// Streams lists the profiled (function/parameter) keys, sorted.
func (rp *RangeProfiler) Streams() []string {
	out := make([]string, 0, len(rp.ranges))
	for k := range rp.ranges {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// relResolution returns the worst-case relative representation error of
// the format over the observed range.
func relResolution(f Format, r *ValueRange) float64 {
	switch f {
	case Float64:
		return 1.1e-16
	case Float32:
		return 6.0e-8 // 2^-24
	case BFloat16:
		return 3.9e-3 // 2^-8
	case Fixed16:
		// Absolute resolution 2^-16; worst relative error at the
		// smallest observed magnitude. Out of range → unusable.
		if r.AbsMax >= 32768 {
			return math.Inf(1)
		}
		if r.AbsMinNonzero == 0 || math.IsInf(r.AbsMinNonzero, 1) {
			return 1.0 / 131072 // only zeros observed: resolution vs 0.5 ulp
		}
		return (1.0 / 131072) / r.AbsMinNonzero
	}
	return math.Inf(1)
}

// Recommend returns the cheapest format that represents the observed
// range of (fn, param) within the relative error budget. With no
// observations it conservatively returns Float64.
func (rp *RangeProfiler) Recommend(fn, param string, errBudget float64) Format {
	r := rp.Range(fn, param)
	if r == nil || r.N == 0 {
		return Float64
	}
	best := Float64
	bestCost := Float64.EnergyPerOp()
	for _, f := range Formats() {
		if relResolution(f, r) <= errBudget && f.EnergyPerOp() < bestCost {
			best, bestCost = f, f.EnergyPerOp()
		}
	}
	return best
}

// Report renders the profile for diagnostics.
func (rp *RangeProfiler) Report(errBudget float64) string {
	out := ""
	for _, k := range rp.Streams() {
		r := rp.ranges[k]
		parts := splitKey(k)
		rec := rp.Recommend(parts[0], parts[1], errBudget)
		out += fmt.Sprintf("%-24s n=%6d range=[%g, %g] → %s\n", k, r.N, r.Min, r.Max, rec)
	}
	return out
}

func splitKey(k string) [2]string {
	for i := 0; i < len(k); i++ {
		if k[i] == '/' {
			return [2]string{k[:i], k[i+1:]}
		}
	}
	return [2]string{k, ""}
}
