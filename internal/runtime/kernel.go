package runtime

import (
	"context"
	"errors"
	"fmt"
	goruntime "runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rtrm"
	"repro/internal/simhpc"
)

// Typed kernel errors. They are wrapped with context (app name, mode),
// so match with errors.Is; the HTTP control plane maps them to status
// codes (ErrDuplicateApp → 409, ErrUnknownApp → 404, ...).
var (
	// ErrDuplicateApp: Attach of a name that is already attached.
	ErrDuplicateApp = errors.New("duplicate app name")
	// ErrUnknownApp: Detach of a name that is not attached.
	ErrUnknownApp = errors.New("unknown app")
	// ErrEmptyAppName: Attach with an empty AppSpec.Name.
	ErrEmptyAppName = errors.New("empty app name")
	// ErrRunning: an operation that requires the concurrent loops to be
	// stopped (Start while started, RunEpoch while started).
	ErrRunning = errors.New("kernel is running")
	// ErrNoBackends: Start or RunEpoch on a kernel with no backends
	// registered yet (NewKernel() + AddBackend construction).
	ErrNoBackends = errors.New("kernel has no backends")
)

// Kernel drives the adaptation loops of many applications over one or
// more resource-manager Backends. Applications Attach an AppSpec; each
// epoch the kernel ticks every application's Controller (collect-
// analyse-decide-act), materializes the epoch workloads under the
// freshly decided configurations, merges them, partitions the merged
// batch by each app's placed backend, and runs every contributing
// backend's epoch concurrently behind one barrier — the system-wide
// coupling of the paper's two control loops, for N apps over N sites.
//
// Placement is a pluggable policy (see Placement; Pinned, LeastLoaded
// and SLAAware ship in-package). Assignments are computed per
// membership generation: Attach, Detach, AddBackend and a steering
// policy's refresh request all bump the generation, and the new
// placement takes effect at the next epoch boundary with in-flight
// batches drained — an app migrating backends never has work in
// flight on two backends at once. With exactly one backend the kernel
// takes a placement-free fast path identical to the pre-multi-backend
// engine (no partitioning, no per-backend fan-out goroutines, no load
// telemetry).
//
// Two driving modes share the same epoch engine:
//
//   - RunEpoch: synchronous, one epoch per call. Goroutine-safe; used by
//     deterministic simulation drivers and tests. The Tick+workload
//     fan-out runs on a worker pool, so different apps' Workload and
//     Sensor callbacks may run concurrently with each other (the same
//     guarantee the concurrent mode has always given).
//   - Start/Stop: sharded control-loop goroutines feeding a batched
//     epoch scheduler. The scheduler runs a manager epoch when every
//     app has contributed its batch (or after Flush expires, so a
//     stalled app cannot wedge the other loops' epochs — stall
//     isolation is per loop goroutine, see Start). Epochs are
//     pipelined: a loop is released as soon as its batch is merged, so
//     the next round of Tick+Workload runs concurrently with the
//     manager epoch — the serial section every app waits on is the
//     manager alone.
//
// Membership is dynamic: Attach and Detach work while the kernel is
// running. Every membership change bumps the membership epoch (a
// generation counter); the concurrent mode serves one generation at a
// time and rolls to the next at an epoch boundary — in-flight batches
// are drained into a final epoch, the loop topology is rebuilt for the
// new app set (re-sharding when the count crosses 2·GOMAXPROCS), and
// only then do the new generation's loops start. So a newly attached
// app is admitted at the next epoch boundary, and a detaching app's
// already-submitted batch is never dropped.
//
// The epoch fast path is allocation-free in steady state: the merged
// task list and fan-out buffers are kernel-owned scratch reused across
// epochs, and epochMu — the serial section every app waits on — covers
// only the manager epoch itself plus the totals update. Merging,
// ticking and workload materialization all happen outside it. A
// membership change allocates (new shards, channels, goroutines), but
// that cost is paid once per generation, not per epoch.
type Kernel struct {
	mu         sync.Mutex // guards apps, byName, backends, byBackend, placement, protocol, placeGen, running, cancel, memGen, memChanged, detachedTotals, pendingRetire
	apps       []*Controller
	byName     map[string]*Controller
	backends   []*backendSlot // copy-on-write: AddBackend replaces the slice
	byBackend  map[string]int
	placement  Placement
	protocol   EpochProtocol // epoch commit protocol; engine adopts it per generation
	placeGen   int64         // membership epoch the current assignments were computed for
	running    bool
	cancel     context.CancelFunc
	wg         sync.WaitGroup
	memGen     int64         // membership epoch: bumped by every Attach/Detach/AddBackend
	memChanged chan struct{} // closed on membership change; re-armed per generation

	servedGen atomic.Int64 // generation the concurrent loops currently serve

	syncMu  sync.Mutex // serializes whole synchronous RunEpoch calls
	epochMu sync.Mutex // Barrier protocol's global serial section around backend epochs

	// Cumulative per-app offered GFlop lives on each Controller as an
	// atomic (single writer: the epoch engine commits an app's work on
	// exactly one backend per generation). detachedTotals accumulates
	// the totals of retired controllers; pendingRetire holds detached
	// controllers whose final drained epoch may not have committed yet —
	// they fold into detachedTotals at the next quiescent point. Both
	// under k.mu; reads sum all three sources, so totals are never lost
	// or double-counted across detach/re-attach churn.
	detachedTotals map[string]float64
	pendingRetire  []*Controller
	epochs         atomic.Int64

	// protoActive mirrors the protocol the engine currently runs —
	// written at quiescent points, read by status paths to pick their
	// snapshot discipline. Safe to be briefly stale: every protocol's
	// commit path holds the backend commit mutex and republishes the
	// seqlock cell, so either reader discipline is correct at any time;
	// only the CommitLockReads attribution depends on it.
	protoActive atomic.Int32
	// epochProto is the engine's own snapshot of the protocol, written
	// with epochBackends (same quiescent-point discipline).
	epochProto EpochProtocol
	// commitLockReads counts status reads that took a commit lock.
	commitLockReads atomic.Int64

	// loadMu guards the per-backend placement telemetry (backendSlot
	// offered/deferredEWMA/apps). A leaf lock: never held while taking
	// another kernel lock.
	loadMu sync.Mutex

	// Epoch scratch, reused across epochs. Safe without its own lock:
	// execute's callers are already serialized — RunEpoch by syncMu, the
	// concurrent mode by its single per-generation epoch executor (and
	// generations are sequential: the supervisor waits for one to wind
	// down before starting the next) — and the two modes are mutually
	// exclusive.
	mergedTasks []*simhpc.Task
	fanout      []contribution
	// epochBackends is the backend set the current generation (or sync
	// epoch) routes over — snapshotted with the app set, so an epoch
	// never sees assignments pointing past its backend view.
	// epochObserver is the placement policy's steering hook for that
	// snapshot (nil unless multi-backend and the policy observes).
	epochBackends []*backendSlot
	epochObserver EpochObserver
	loadScratch   []BackendLoad // ObserveEpoch view, reused

	// epoch-signal subscribers (EpochSignal); notifyCount caches
	// len(notify) so the zero-subscriber epoch path is one atomic load.
	notifyMu    sync.Mutex
	notify      map[chan struct{}]struct{}
	notifyCount atomic.Int32

	// Failure domain (see health.go). backendTimeout is the per-commit
	// deadline in nanoseconds (0 = disabled); noHealthy the
	// NoHealthyPolicy. parkCtx is the context a parked epoch batch waits
	// under when no backend is schedulable — the serving generation's
	// context in concurrent mode, nil under the sync driver (a sync park
	// then waits for a revive alone). Written only at quiescent points,
	// same discipline as epochBackends.
	backendTimeout atomic.Int64
	noHealthy      atomic.Int32
	parkCtx        context.Context

	// backend-event subscribers (BackendEvents); same shape as the
	// epoch-signal bus.
	eventMu    sync.Mutex
	events     map[chan BackendEvent]struct{}
	eventCount atomic.Int32

	// Many-core wake path (wake.go). wakeOps counts every operation
	// that can wake an epoch-machinery goroutine (channel sends,
	// doorbell rings, park tokens, lane wakes) — K12's wakeups/epoch
	// metric. epochWake is the generation's wake mode, written at the
	// same quiescent points as epochProto.
	wakeOps   atomic.Int64
	epochWake WakeMode

	// Topology snapshot of the serving generation: the GOMAXPROCS it
	// was shaped for, the shard-loop count it chose, and whether a
	// drift-triggered reshape roll has already been requested for it
	// (one per generation). The sync driver also refreshes topoGMP per
	// RunEpoch so commitWorkers sees a current core budget.
	topoGMP    atomic.Int32
	topoShards atomic.Int32
	topoDrift  atomic.Bool

	errMu sync.Mutex
	err   error // first workload error observed by concurrent loops
}

// backendSlot is the kernel's per-backend state: identity, epoch merge
// scratch (owned by the serialized epoch engine) and the placement
// load telemetry (under loadMu).
type backendSlot struct {
	name string
	be   Backend
	// staged is non-nil when the backend also implements EpochStager
	// (rtrm.Manager does): the epoch paths can then pipeline its
	// sub-stages and fan its dispatch loop out across workers.
	staged EpochStager

	// commitMu serializes this backend's epoch commits against status
	// readers (Barrier and PerBackendClock reads) and against each
	// other across protocol switches. Every protocol's commit path
	// holds it around RunEpoch plus the stats republish.
	commitMu sync.Mutex
	// seq is the backend's epoch sequence number: bumped on every
	// commit, under any protocol. The control plane's SSE stream keys
	// its per-backend coalescing on it, so a commit on one backend
	// wakes subscribers even when the global epoch counter has not
	// moved since they last looked.
	seq atomic.Int64
	// cell is the seqlock OptimisticMerge readers snapshot.
	cell statsCell

	// Epoch scratch — same ownership discipline as Kernel.mergedTasks.
	tasks  []*simhpc.Task
	report rtrm.EpochReport
	active bool
	// Stage-pool scratch (stage.go): the backend's progress through the
	// sub-stage pipeline this epoch and whether commitMu is held across
	// stages (for panic cleanup). Only touched by executeStaged.
	stage       int
	stageLocked bool

	// Placement telemetry, under Kernel.loadMu. Only maintained on the
	// multi-backend path; see BackendLoad.
	offered      float64
	deferredEWMA float64
	apps         int

	// Failure domain (see health.go). state is the lifecycle tombstone
	// (slotActive..slotRemoved), health the BackendHealth — both written
	// under k.mu, read lock-free by the epoch paths (schedulable).
	// inflight counts deadline-guarded commits outstanding on the slot;
	// lastErr (under k.mu) is the most recent panic/stall reason.
	// committed is epoch-engine scratch: whether this epoch's bounded
	// commit finished in time (bs.report is only valid when it did).
	state     atomic.Int32
	health    atomic.Int32
	inflight  atomic.Int32
	lastErr   string
	committed bool
}

// deferredEWMAAlpha smooths the per-backend deferred-work fraction the
// SLA-aware steering watches: ~0.25 weights the last few epochs.
const deferredEWMAAlpha = 0.25

// NewKernel builds a kernel over zero or more backends (*rtrm.Manager
// implements Backend). Backends passed here are named "b0", "b1", ...
// in argument order; AddBackend attaches more, under chosen names —
// NewKernel() followed by AddBackend calls builds a fully named
// backend set. The default placement policy is the static partition
// (Pinned); see SetPlacement. Start and RunEpoch error with
// ErrNoBackends until at least one backend is registered.
func NewKernel(backends ...Backend) *Kernel {
	k := &Kernel{
		byName:         make(map[string]*Controller),
		byBackend:      make(map[string]int, len(backends)),
		placement:      Pinned{},
		placeGen:       -1, // first refresh always runs
		detachedTotals: make(map[string]float64),
	}
	for i, be := range backends {
		name := fmt.Sprintf("b%d", i)
		bs := &backendSlot{name: name, be: be}
		bs.staged, _ = be.(EpochStager)
		bs.cell.publishStats(be.Stats()) // seed the seqlock for pre-commit reads
		k.backends = append(k.backends, bs)
		k.byBackend[name] = i
	}
	return k
}

// AddBackend registers another backend under name. Adding while the
// kernel is running is allowed: the backend joins the routing set at
// the next epoch boundary (a membership-generation roll, like Attach),
// at which point the placement policy may start assigning apps to it.
// The inverse is RemoveBackend (drain + delete); a removed backend's
// name is reusable here.
func (k *Kernel) AddBackend(name string, be Backend) error {
	if name == "" {
		return errors.New("runtime: add backend: empty backend name")
	}
	if be == nil {
		return fmt.Errorf("runtime: add backend %q: nil backend", name)
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	if _, dup := k.byBackend[name]; dup {
		return fmt.Errorf("runtime: add backend %q: duplicate backend name", name)
	}
	// Copy-on-write: epoch snapshots of k.backends stay valid.
	bks := make([]*backendSlot, len(k.backends), len(k.backends)+1)
	copy(bks, k.backends)
	bs := &backendSlot{name: name, be: be}
	bs.staged, _ = be.(EpochStager)
	bs.cell.publishStats(be.Stats())
	k.backends = append(bks, bs)
	k.byBackend[name] = len(k.backends) - 1
	k.membershipChangedLocked()
	return nil
}

// SetPlacement swaps the placement policy (nil restores the default
// Pinned static partition). Takes effect at the next epoch boundary;
// every app is re-placed through the new policy then.
func (k *Kernel) SetPlacement(p Placement) {
	if p == nil {
		p = Pinned{}
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	k.placement = p
	k.membershipChangedLocked()
}

// Backends returns the backend names in registration order. Removed
// backends are tombstoned internally (indices stay stable) but do not
// appear here.
func (k *Kernel) Backends() []string {
	k.mu.Lock()
	defer k.mu.Unlock()
	names := make([]string, 0, len(k.backends))
	for _, bs := range k.backends {
		if bs.state.Load() != slotRemoved {
			names = append(names, bs.name)
		}
	}
	return names
}

// NumBackends returns the number of registered (non-removed) backends.
func (k *Kernel) NumBackends() int {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.liveBackendsLocked()
}

// liveBackendsLocked counts non-removed slots. Callers hold k.mu.
func (k *Kernel) liveBackendsLocked() int {
	n := 0
	for _, bs := range k.backends {
		if bs.state.Load() != slotRemoved {
			n++
		}
	}
	return n
}

// HasBackend reports whether a backend is registered under name.
func (k *Kernel) HasBackend(name string) bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	_, ok := k.byBackend[name]
	return ok
}

// AppBackend returns the name of the backend the app is currently
// placed on ("" for an unknown app, or one not yet placed).
func (k *Kernel) AppBackend(name string) string {
	k.mu.Lock()
	defer k.mu.Unlock()
	ctl := k.byName[name]
	if ctl == nil {
		return ""
	}
	idx := int(ctl.backend.Load())
	if idx < 0 || idx >= len(k.backends) || k.backends[idx].state.Load() == slotRemoved {
		return ""
	}
	return k.backends[idx].name
}

// Manager returns the first backend's *rtrm.Manager (nil when that
// backend is not a Manager) — the pre-multi-backend accessor.
//
// Deprecated: reading the manager's telemetry fields while the kernel
// is running races with the epoch executor, and a multi-backend kernel
// has no single manager. Use ManagerStats for the merged snapshot or
// BackendStats for the per-backend view.
func (k *Kernel) Manager() *rtrm.Manager {
	k.mu.Lock()
	defer k.mu.Unlock()
	if len(k.backends) == 0 {
		return nil
	}
	m, _ := k.backends[0].be.(*rtrm.Manager)
	return m
}

// ManagerStats is a consistent snapshot of backend epoch telemetry,
// safe to take while epochs are running. The kernel-level view
// (Kernel.ManagerStats) merges every backend; BackendStats carries one
// backend's own counters.
type ManagerStats struct {
	Epochs        int
	WorkGFlop     float64
	DeferredGFlop float64
	EnergyJ       float64
	ThermalEvents int
	CapDemotions  int
}

// BackendStats is one backend's stats snapshot plus its placement
// state.
type BackendStats struct {
	// Name is the backend's kernel-assigned name.
	Name string
	// Apps is the number of applications placed on the backend at the
	// last placement refresh.
	Apps int
	// Seq is the backend's epoch sequence number: it advances on every
	// commit this backend runs, under any protocol. Unlike the global
	// kernel epoch counter it is per backend, so stream consumers can
	// tell which backend moved (see the control plane's SSE coalescing).
	Seq int64
	// Health is the backend's failure-domain health (see BackendHealth).
	Health BackendHealth
	// State is the backend's lifecycle state ("active", "draining",
	// "drained"; removed backends do not appear).
	State string
	// LastErr is the most recent failure reason — the captured panic of
	// a Failed backend, the deadline message of a Degraded one. Empty
	// while healthy.
	LastErr string
	ManagerStats
}

// fromStats converts a backend's own snapshot.
func fromStats(s rtrm.Stats) ManagerStats {
	return ManagerStats{
		Epochs:        s.Epochs,
		WorkGFlop:     s.WorkGFlop,
		DeferredGFlop: s.DeferredGFlop,
		EnergyJ:       s.EnergyJ,
		ThermalEvents: s.ThermalEvents,
		CapDemotions:  s.CapDemotions,
	}
}

// ManagerStats snapshots every backend's epoch telemetry and merges
// it, so it is safe to call from any goroutine while the kernel runs.
// Numeric counters sum across backends; Epochs is the number of kernel
// epochs (with one backend this equals the backend's own epoch count;
// with several, backends only run epochs when apps placed on them
// contribute). Under Barrier and PerBackendClock the snapshot locks
// each backend's commit mutex in turn; under OptimisticMerge it is a
// lock-free seqlock read (see EpochProtocol, CommitLockReads).
// Removed backends still contribute: the merged cumulative sums never
// step backwards across a RemoveBackend. A backend that is not Healthy
// is always read through its seqlock cell, whatever the protocol — a
// stalled commit holds the commit mutex indefinitely, and status reads
// must not block behind it.
func (k *Kernel) ManagerStats() ManagerStats {
	k.mu.Lock()
	bks := k.backends
	k.mu.Unlock()
	var out ManagerStats
	lockReads := EpochProtocol(k.protoActive.Load()) != OptimisticMerge
	counted := false
	for _, bs := range bks {
		var s rtrm.Stats
		if lockReads && bs.health.Load() == int32(BackendHealthy) {
			if !counted {
				k.commitLockReads.Add(1)
				counted = true
			}
			bs.commitMu.Lock()
			s = bs.be.Stats()
			bs.commitMu.Unlock()
		} else {
			s, _ = bs.cell.snapshot()
		}
		out.WorkGFlop += s.WorkGFlop
		out.DeferredGFlop += s.DeferredGFlop
		out.EnergyJ += s.EnergyJ
		out.ThermalEvents += s.ThermalEvents
		out.CapDemotions += s.CapDemotions
	}
	out.Epochs = int(k.epochs.Load())
	return out
}

// BackendStats snapshots each backend's telemetry in registration
// order, with the same per-protocol read discipline as ManagerStats
// (and the same always-seqlock rule for unhealthy backends). Removed
// backends are omitted; live ones carry their health, lifecycle state
// and last failure reason.
func (k *Kernel) BackendStats() []BackendStats {
	k.mu.Lock()
	bks := make([]*backendSlot, 0, len(k.backends))
	out := make([]BackendStats, 0, len(k.backends))
	for _, bs := range k.backends {
		st := bs.state.Load()
		if st == slotRemoved {
			continue
		}
		bks = append(bks, bs)
		out = append(out, BackendStats{
			Name:    bs.name,
			Seq:     bs.seq.Load(),
			Health:  BackendHealth(bs.health.Load()),
			State:   slotStateName(st),
			LastErr: bs.lastErr,
		})
	}
	k.mu.Unlock()
	optimistic := EpochProtocol(k.protoActive.Load()) == OptimisticMerge
	counted := false
	for i, bs := range bks {
		if optimistic || out[i].Health != BackendHealthy {
			s, apps := bs.cell.snapshot()
			out[i].Apps = apps
			out[i].ManagerStats = fromStats(s)
			continue
		}
		if !counted {
			k.commitLockReads.Add(1)
			counted = true
		}
		bs.commitMu.Lock()
		s := bs.be.Stats()
		bs.commitMu.Unlock()
		out[i].ManagerStats = fromStats(s)
		k.loadMu.Lock()
		out[i].Apps = bs.apps
		k.loadMu.Unlock()
	}
	return out
}

// Attach registers an application and returns its Controller (for
// direct metric pushes and adaptation counters). Attaching while the
// kernel is running is allowed: the app is admitted at the next epoch
// boundary, when the current generation's loops roll over (watch
// ServedGeneration to observe admission).
func (k *Kernel) Attach(spec AppSpec) (*Controller, error) {
	if spec.Name == "" {
		return nil, fmt.Errorf("runtime: attach: %w", ErrEmptyAppName)
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.byName[spec.Name] != nil {
		return nil, fmt.Errorf("runtime: attach %q: %w", spec.Name, ErrDuplicateApp)
	}
	ctl := NewController(spec)
	k.apps = append(k.apps, ctl)
	k.byName[spec.Name] = ctl
	k.membershipChangedLocked()
	return ctl, nil
}

// Detach removes an application by name. Detaching while the kernel is
// running is allowed: the app's control loop stops at the next epoch
// boundary, and a batch it already submitted is drained into the
// generation's final epoch rather than dropped. Cumulative totals for
// the app are retained.
func (k *Kernel) Detach(name string) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	gone := k.byName[name]
	if gone == nil {
		return fmt.Errorf("runtime: detach %q: %w", name, ErrUnknownApp)
	}
	// Copy-on-write: snapshots of k.apps taken by RunEpoch and the
	// supervisor stay valid (Attach only appends, which never rewrites
	// elements below a snapshot's length).
	apps := make([]*Controller, 0, len(k.apps)-1)
	for _, ctl := range k.apps {
		if ctl != gone {
			apps = append(apps, ctl)
		}
	}
	k.apps = apps
	delete(k.byName, name)
	// The controller's drained final epoch may still commit totals; park
	// it until the engine quiesces, then fold into detachedTotals.
	k.pendingRetire = append(k.pendingRetire, gone)
	k.membershipChangedLocked()
	return nil
}

// SwapPolicy hot-swaps a running app's policy (and optionally its
// knob) without detaching it: observations keep flowing, totals and
// adaptation counters are retained, and the detach-drain guarantee is
// untouched because membership does not change. The swap itself is
// serialized against the app's tick by the controller; bumping the
// membership generation afterwards rolls the epoch engine so the new
// policy's first decision lands at a generation boundary, the same
// place attach/detach and placement changes land. Returns the previous
// policy so the caller can release its resources.
func (k *Kernel) SwapPolicy(name string, p Policy, kb Knob) (Policy, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	ctl := k.byName[name]
	if ctl == nil {
		return nil, fmt.Errorf("runtime: swap policy %q: %w", name, ErrUnknownApp)
	}
	old := ctl.SwapPolicy(p, kb)
	k.membershipChangedLocked()
	return old, nil
}

// foldRetiredLocked folds the totals of detached controllers into the
// detachedTotals map. Callers hold k.mu and know the epoch engine is
// quiescent (supervisor between generations, sync driver between
// epochs, Stop after the supervisor exits) — a parked controller can
// commit nothing further, so its total is final.
func (k *Kernel) foldRetiredLocked() {
	if len(k.pendingRetire) == 0 {
		return
	}
	for _, ctl := range k.pendingRetire {
		k.detachedTotals[ctl.Name()] += ctl.totalGFlop()
	}
	clear(k.pendingRetire)
	k.pendingRetire = k.pendingRetire[:0]
}

// membershipChangedLocked bumps the membership epoch and wakes the
// supervisor. Callers hold k.mu.
func (k *Kernel) membershipChangedLocked() {
	k.memGen++
	if k.memChanged != nil {
		close(k.memChanged)
		k.memChanged = nil
	}
}

// requestPlacementRefresh rolls a placement generation with an
// unchanged app set — how a steering policy's migration lands at an
// epoch boundary, exactly like a membership change.
func (k *Kernel) requestPlacementRefresh() {
	k.mu.Lock()
	k.membershipChangedLocked()
	k.mu.Unlock()
}

// refreshPlacementLocked recomputes app→backend assignments when the
// membership epoch moved past the last placement. Callers hold k.mu;
// the epoch engine is quiescent (the supervisor refreshes between
// generations, the sync driver before its epoch), so assignment writes
// cannot tear an in-flight epoch.
// The placement policy only ever sees the schedulable backends:
// draining, drained, removed, Degraded and Failed slots are excluded
// from the view, and an app currently on an unschedulable slot appears
// with Current == -1 — forcing the policy (or the clamp) to evacuate
// it. That is the whole evacuation mechanism: a health or lifecycle
// transition rolls a generation, and this refresh re-places the
// affected apps exactly like a live migration. With no schedulable
// backend at all, assignments are left as they are; the epoch paths
// apply the no-healthy-backends policy instead.
func (k *Kernel) refreshPlacementLocked() {
	if k.placeGen == k.memGen {
		return
	}
	k.placeGen = k.memGen
	n := len(k.backends)
	if n == 0 {
		return // nothing to place on yet; apps stay unplaced
	}
	if n == 1 && k.backends[0].schedulable() {
		for _, ctl := range k.apps {
			ctl.backend.Store(0)
		}
		k.loadMu.Lock()
		k.backends[0].apps = len(k.apps)
		k.loadMu.Unlock()
		k.backends[0].cell.publishApps(len(k.apps))
		return
	}
	sched := make([]int, 0, n) // schedulable view index → real slot index
	pos := make([]int, n)      // real slot index → view index, -1 if out
	for i := range pos {
		pos[i] = -1
	}
	schedSlots := make([]*backendSlot, 0, n)
	for i, bs := range k.backends {
		if bs.schedulable() {
			pos[i] = len(sched)
			sched = append(sched, i)
			schedSlots = append(schedSlots, bs)
		}
	}
	if len(sched) == 0 {
		return // total outage: keep assignments, let the epoch paths park
	}
	counts := make([]int, n)
	if len(sched) == 1 {
		ri := sched[0]
		for _, ctl := range k.apps {
			ctl.backend.Store(int32(ri))
		}
		counts[ri] = len(k.apps)
	} else {
		apps := make([]AppPlacement, len(k.apps))
		for i, ctl := range k.apps {
			cur := int(ctl.backend.Load())
			viewCur := -1
			if cur >= 0 && cur < n {
				viewCur = pos[cur] // -1 when the current slot left the view
			}
			apps[i] = AppPlacement{Name: ctl.Name(), Hint: ctl.spec.Backend, Current: viewCur}
		}
		placed := k.placement.Place(apps, k.backendLoads(schedSlots))
		for i, ctl := range k.apps {
			vi := -1
			if i < len(placed) {
				vi = placed[i]
			}
			ri := sched[clampBackend(vi, apps[i].Current, len(sched))]
			ctl.backend.Store(int32(ri))
			counts[ri]++
		}
	}
	k.loadMu.Lock()
	for i, bs := range k.backends {
		bs.apps = counts[i]
	}
	k.loadMu.Unlock()
	for i, bs := range k.backends {
		bs.cell.publishApps(counts[i])
	}
}

// backendLoads snapshots the placement view of bks into the kernel's
// reused scratch. Callers are the serialized epoch engine and the
// placement refresh (which runs only while the engine is quiescent),
// so the scratch needs no lock of its own.
func (k *Kernel) backendLoads(bks []*backendSlot) []BackendLoad {
	out := k.loadScratch[:0]
	k.loadMu.Lock()
	for _, bs := range bks {
		out = append(out, BackendLoad{
			Name:         bs.name,
			Apps:         bs.apps,
			OfferedGFlop: bs.offered,
			DeferredFrac: bs.deferredEWMA,
		})
	}
	k.loadMu.Unlock()
	k.loadScratch = out
	return out
}

// EpochSignal subscribes to epoch completions: the returned channel
// receives a coalesced wakeup after every kernel epoch — and, under a
// barrier-free protocol, after every individual backend commit, so a
// late backend waking after the global epoch counter already moved
// still wakes subscribers (buffered one deep — a slow consumer sees
// one pending signal, not a backlog). cancel releases the
// subscription. With no subscribers the epoch path pays a single
// atomic load. Consumers that must distinguish which backend moved
// key on BackendStats.Seq rather than the global epoch counter.
func (k *Kernel) EpochSignal() (ch <-chan struct{}, cancel func()) {
	c := make(chan struct{}, 1)
	k.notifyMu.Lock()
	if k.notify == nil {
		k.notify = make(map[chan struct{}]struct{})
	}
	k.notify[c] = struct{}{}
	k.notifyCount.Store(int32(len(k.notify)))
	k.notifyMu.Unlock()
	return c, func() {
		k.notifyMu.Lock()
		delete(k.notify, c)
		k.notifyCount.Store(int32(len(k.notify)))
		k.notifyMu.Unlock()
	}
}

// signalEpoch wakes every epoch-signal subscriber (non-blocking).
func (k *Kernel) signalEpoch() {
	if k.notifyCount.Load() == 0 {
		return
	}
	k.notifyMu.Lock()
	for c := range k.notify {
		select {
		case c <- struct{}{}:
		default:
		}
	}
	k.notifyMu.Unlock()
}

// Apps returns the attached controllers in attach order.
func (k *Kernel) Apps() []*Controller {
	k.mu.Lock()
	defer k.mu.Unlock()
	return append([]*Controller(nil), k.apps...)
}

// App returns the controller attached under name, or nil.
func (k *Kernel) App(name string) *Controller {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.byName[name]
}

// Running reports whether the concurrent loops are active.
func (k *Kernel) Running() bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.running
}

// Generation returns the membership epoch: the number of Attach/Detach
// calls accepted so far. It advances immediately on a membership
// change, before the concurrent loops have rolled over to the new set.
func (k *Kernel) Generation() int64 {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.memGen
}

// ServedGeneration returns the membership epoch the concurrent loops
// are currently serving. After an Attach or Detach while running,
// ServedGeneration catching up to Generation means the change has taken
// effect at an epoch boundary. Zero before the first Start; stale after
// Stop.
func (k *Kernel) ServedGeneration() int64 { return k.servedGen.Load() }

// Epochs returns the number of manager epochs run so far.
func (k *Kernel) Epochs() int64 { return k.epochs.Load() }

// NumApps returns the current number of attached applications without
// copying the controller slice.
func (k *Kernel) NumApps() int {
	k.mu.Lock()
	defer k.mu.Unlock()
	return len(k.apps)
}

// TotalFor returns one application's cumulative offered GFlop — the
// O(1) read for per-app status endpoints, where TotalsPerApp's full
// map copy would be per-request O(apps). The total lives on the
// controller as an atomic, so the read never touches a commit lock.
func (k *Kernel) TotalFor(name string) float64 {
	k.mu.Lock()
	defer k.mu.Unlock()
	g := k.detachedTotals[name]
	for _, ctl := range k.pendingRetire {
		if ctl.Name() == name {
			g += ctl.totalGFlop()
		}
	}
	if ctl := k.byName[name]; ctl != nil {
		g += ctl.totalGFlop()
	}
	return g
}

// TotalsPerApp returns the cumulative GFlop each application has
// offered to the manager (the manager's own telemetry tracks how much
// was executed vs deferred). Detached apps keep their entries; an app
// detached and re-attached under the same name sums both lifetimes.
func (k *Kernel) TotalsPerApp() map[string]float64 {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make(map[string]float64, len(k.detachedTotals)+len(k.apps))
	for n, g := range k.detachedTotals {
		out[n] = g
	}
	for _, ctl := range k.pendingRetire {
		out[ctl.Name()] += ctl.totalGFlop()
	}
	for _, ctl := range k.apps {
		out[ctl.Name()] += ctl.totalGFlop()
	}
	return out
}

// Err returns the first workload error observed by the concurrent
// loops since the last Start (nil if none). Synchronous RunEpoch
// returns errors directly instead.
func (k *Kernel) Err() error {
	k.errMu.Lock()
	defer k.errMu.Unlock()
	return k.err
}

func (k *Kernel) noteErr(err error) {
	k.errMu.Lock()
	if k.err == nil {
		k.err = err
	}
	k.errMu.Unlock()
}

// EpochResult summarizes one kernel epoch.
type EpochResult struct {
	// Epoch is the 1-based epoch sequence number.
	Epoch int64
	// Report is the backends' account of the epoch. With one backend it
	// is that backend's report verbatim; with several it is the merged
	// aggregate — numeric fields summed, while Plan and Cap (per-site
	// concepts with no meaningful merge) stay zero; read Backends for
	// them.
	Report rtrm.EpochReport
	// Backends holds each contributing backend's own report, in
	// registration order. Nil on the single-backend fast path, where
	// Report already is the sole backend's account.
	Backends []BackendEpoch
	// PerApp is the GFlop each contributing app offered this epoch.
	PerApp map[string]float64
}

// BackendEpoch is one backend's share of a kernel epoch.
type BackendEpoch struct {
	// Name is the backend's kernel-assigned name.
	Name string
	// Report is the backend's own account of its epoch.
	Report rtrm.EpochReport
}

// contribution is one app's share of an epoch.
type contribution struct {
	ctl   *Controller
	tasks []*simhpc.Task
}

// execute runs one kernel epoch over the merged contributions. It is
// the single funnel for the synchronous driver, the degenerate
// single-shard concurrent mode and the Barrier-protocol executor; the
// barrier-free protocols' concurrent mode dispatches to per-backend
// commit goroutines instead (see dispatchEpochs). Its callers are
// serialized (see the scratch-field comment); merging stays outside
// any lock, and the commit locks cover only the backend epochs
// themselves. OnEpoch callbacks run here: on the caller's goroutine
// in sync mode, on the kernel's epoch-executor goroutine in
// concurrent mode.
func (k *Kernel) execute(dt float64, contribs []contribution) EpochResult {
	var res EpochResult
	if bks := k.epochBackends; len(bks) == 1 {
		res = k.executeSingle(dt, contribs, bks[0])
	} else {
		res = k.executeRouted(dt, contribs, bks, k.epochProto == Barrier)
	}
	for _, c := range contribs {
		if c.ctl.spec.OnEpoch != nil {
			c.ctl.spec.OnEpoch(res)
		}
	}
	k.signalEpoch()
	return res
}

// executeSingle is the single-backend fast path: the pre-multi-backend
// epoch, with no placement routing, no per-backend fan-out and no load
// telemetry — one merge, one backend epoch, allocation-free on kernel
// scratch. With one backend there is nothing for a barrier to order,
// so every protocol takes this same path; the backend's commit mutex
// is the whole serial section. The commit deadline never applies here
// either — with a single backend there is nowhere to reroute a stalled
// lane, so the commit stays synchronous and timer-free (the panic
// guard still applies).
func (k *Kernel) executeSingle(dt float64, contribs []contribution, bs *backendSlot) EpochResult {
	all := k.mergedTasks[:0]
	// PerApp escapes to OnEpoch observers and RunEpoch callers, who may
	// hold it across epochs, so it is the one per-epoch allocation that
	// cannot come from scratch.
	perApp := make(map[string]float64, len(contribs))
	for _, c := range contribs {
		sum := 0.0
		for _, t := range c.tasks {
			sum += t.GFlop
		}
		perApp[c.ctl.Name()] += sum // every contributor appears, even with zero work
		c.ctl.addTotal(sum)
		all = append(all, c.tasks...)
	}
	// Zero the reused buffer's tail so one burst epoch's task pointers
	// are not pinned for the kernel's lifetime by smaller later epochs.
	clear(all[len(all):cap(all)])
	k.mergedTasks = all

	if !bs.schedulable() {
		// The sole backend failed (a panic last epoch). Park or write
		// off per policy; a revive heals in place, so a parked batch
		// commits on the same slot.
		if _, ok := k.awaitSchedulable(k.parkCtx, []*backendSlot{bs}); !ok {
			k.writeOff(contribs)
			return EpochResult{Epoch: k.epochs.Add(1), PerApp: perApp}
		}
	}
	rep, ok := k.commitOnce(bs, dt, all, k.commitWorkers(1))
	epoch := k.epochs.Add(1)
	if !ok {
		// The backend panicked mid-commit: the slot is Failed and the
		// report void. The offered totals above stand — the ledger
		// records what apps offered (chaos exactness depends on it);
		// what actually ran is the manager's own telemetry.
		return EpochResult{Epoch: epoch, PerApp: perApp}
	}
	return EpochResult{Epoch: epoch, Report: rep, PerApp: perApp}
}

// executeRouted is the multi-backend epoch: partition the merged
// acceptance batch by each contributing app's placed backend, then run
// every contributing backend's epoch concurrently; backends without
// contributors this epoch do not run. Under the Barrier protocol
// (global=true) the fan-out runs inside the global epochMu serial
// section — the pre-protocol design, one batch-merged epoch at a time.
// Under the per-backend-clock protocols (global=false) each backend
// commits under only its own mutex; the call still waits for every
// backend before returning, because its callers (the sync driver and
// the degenerate single-shard loop) need the merged result — the
// fully pipelined form lives in dispatchEpochs. Afterwards the
// per-backend load telemetry feeds the placement policy, and an
// EpochObserver policy may request the generation roll that migrates
// an app.
func (k *Kernel) executeRouted(dt float64, contribs []contribution, bks []*backendSlot, global bool) EpochResult {
	perApp := make(map[string]float64, len(contribs))
	for _, bs := range bks {
		bs.tasks = bs.tasks[:0]
		bs.active = false
		bs.committed = false
	}
	// Resolve the fallback target before merging: every contribution
	// whose placed backend is unschedulable (failed, degraded, draining,
	// mid-roll) reroutes here. With no schedulable backend at all the
	// no-healthy policy decides between parking and writing the batch
	// off — either way the merge below runs first, because the offered
	// totals are accounted per contribution exactly once, always.
	fallback := firstSchedulable(bks)
	if fallback < 0 {
		fallback, _ = k.awaitSchedulable(k.parkCtx, bks)
	}
	for _, c := range contribs {
		sum := 0.0
		for _, t := range c.tasks {
			sum += t.GFlop
		}
		perApp[c.ctl.Name()] += sum
		c.ctl.addTotal(sum)
		if fallback < 0 {
			continue // write-off epoch: account, don't route
		}
		idx := int(c.ctl.backend.Load())
		if idx < 0 || idx >= len(bks) || !bks[idx].schedulable() {
			idx = fallback // unplaced mid-roll or unhealthy target: reroute
		}
		bs := bks[idx]
		bs.active = true
		bs.tasks = append(bs.tasks, c.tasks...)
	}
	if fallback < 0 {
		k.writeOff(contribs)
		return EpochResult{Epoch: k.epochs.Add(1), PerApp: perApp}
	}
	nActive := 0
	for _, bs := range bks {
		clear(bs.tasks[len(bs.tasks):cap(bs.tasks)]) // no pinned stale tasks
		if bs.active {
			nActive++
		}
	}

	if global {
		k.epochMu.Lock()
	}
	if nActive == 1 {
		for _, bs := range bks {
			if bs.active {
				bs.report, bs.committed, _ = k.commitBounded(bs, dt, bs.tasks, k.commitWorkers(1))
			}
		}
	} else if nActive > 1 {
		cw := k.commitWorkers(nActive)
		if k.backendTimeout.Load() == 0 && allStaged(bks) {
			// Deadline-free and every backend staged: run the sub-stage
			// pipeline — a slow cap on b0 no longer delays b2's dispatch.
			k.executeStaged(dt, bks, nActive, cw)
		} else {
			var wg sync.WaitGroup
			for _, bs := range bks {
				if !bs.active {
					continue
				}
				wg.Add(1)
				go func(bs *backendSlot) {
					defer wg.Done()
					rep, ok, done := k.commitBounded(bs, dt, bs.tasks, cw)
					if done {
						bs.report, bs.committed = rep, ok
					}
					// Abandoned (done=false): the stalled commit still runs
					// and must not race this epoch's scratch — leave
					// bs.report alone; committed stays false.
				}(bs)
			}
			wg.Wait()
		}
	}
	epoch := k.epochs.Add(1)
	if global {
		k.epochMu.Unlock()
	}

	res := EpochResult{Epoch: epoch, PerApp: perApp}
	if nActive > 0 {
		res.Backends = make([]BackendEpoch, 0, nActive)
	}
	for _, bs := range bks {
		if !bs.active || !bs.committed {
			continue // panicked or abandoned: no report to aggregate
		}
		res.Report.EnergyJ += bs.report.EnergyJ
		res.Report.DoneGFlop += bs.report.DoneGFlop
		res.Report.DeferredGFlop += bs.report.DeferredGFlop
		res.Report.HotNodes += bs.report.HotNodes
		res.Backends = append(res.Backends, BackendEpoch{Name: bs.name, Report: bs.report})
	}

	// Per-backend load telemetry for placement decisions.
	k.loadMu.Lock()
	for _, bs := range bks {
		if !bs.active || !bs.committed {
			continue
		}
		offered := bs.report.DoneGFlop + bs.report.DeferredGFlop
		bs.offered = offered
		frac := 0.0
		if offered > 0 {
			frac = bs.report.DeferredGFlop / offered
		}
		bs.deferredEWMA += deferredEWMAAlpha * (frac - bs.deferredEWMA)
	}
	k.loadMu.Unlock()

	if obs := k.epochObserver; obs != nil {
		if obs.ObserveEpoch(k.backendLoads(bks)) {
			k.requestPlacementRefresh()
		}
	}
	return res
}

// executor drains merged epochs off the scheduler, keeping the manager
// busy while the scheduler collects and releases the next round of
// batches. The handoff channel is unbuffered, so a send completing
// proves the executor is done reading the previous epoch's
// contribution buffer (Barrier: the epoch ran; barrier-free: the
// tasks were copied into per-backend lanes) and it is free for reuse —
// the scheduler double-buffers on that guarantee. Under a barrier-free
// protocol with several backends the executor becomes a dispatcher
// over per-backend commit goroutines; it winds those down (and waits
// for them) when execCh closes, so the generation-roll drain guarantee
// covers every lane.
func (k *Kernel) executor(execCh <-chan []contribution, dt float64, wg *sync.WaitGroup) {
	defer wg.Done()
	if bks := k.epochBackends; k.epochProto != Barrier && len(bks) > 1 {
		k.dispatchEpochs(execCh, dt, bks)
		return
	}
	for contribs := range execCh {
		k.execute(dt, contribs)
	}
}

// RunEpoch synchronously runs one adaptation epoch across every
// attached application: tick each controller, materialize workloads,
// run the manager over the merged task list. Safe for concurrent use
// (calls serialize fully, so no app's Workload ever runs twice at
// once), but mutually exclusive with the concurrent mode: it errors
// while Start's loops are running.
//
// The per-app Tick+workload stage fans out over a worker pool, so two
// different apps' callbacks may run concurrently (each app's own
// callbacks never do). On a workload error the epoch is abandoned —
// no manager epoch runs — but other apps may already have ticked.
func (k *Kernel) RunEpoch(dt float64) (EpochResult, error) {
	k.syncMu.Lock()
	defer k.syncMu.Unlock()
	k.mu.Lock()
	if k.running {
		k.mu.Unlock()
		return EpochResult{}, fmt.Errorf("runtime: RunEpoch: %w", ErrRunning)
	}
	if len(k.backends) == 0 {
		k.mu.Unlock()
		return EpochResult{}, fmt.Errorf("runtime: RunEpoch: %w", ErrNoBackends)
	}
	k.foldRetiredLocked()
	k.refreshPlacementLocked()
	// Safe to share the slice headers: Attach/AddBackend only append,
	// and Detach replaces the app slice (copy-on-write) instead of
	// rewriting elements.
	apps := k.apps
	k.epochBackends = k.backends
	k.epochObserver = nil
	if len(k.backends) > 1 {
		k.epochObserver, _ = k.placement.(EpochObserver)
	}
	k.epochProto = k.protocol
	k.protoActive.Store(int32(k.protocol))
	// Sync parks (no healthy backends under ParkAndRetry) have no
	// generation context to watch — they wait for a revive alone.
	k.parkCtx = nil
	k.mu.Unlock()

	n := len(apps)
	if cap(k.fanout) < n {
		k.fanout = make([]contribution, n)
	}
	contribs := k.fanout[:n]

	var firstErr error
	workers := goruntime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < 4 {
		// Few apps: the fan-out costs less than spawning workers.
		for i, ctl := range apps {
			tasks, err, live := k.tickApp(ctl)
			if err != nil {
				return EpochResult{}, fmt.Errorf("runtime: %s: %w", ctl.Name(), err)
			}
			if !live {
				contribs[i] = contribution{} // quarantined: no contribution
				continue
			}
			contribs[i] = contribution{ctl: ctl, tasks: tasks}
		}
	} else {
		var next atomic.Int64
		var errMu sync.Mutex
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					ctl := apps[i]
					tasks, err, live := k.tickApp(ctl)
					if err != nil {
						errMu.Lock()
						if firstErr == nil {
							firstErr = fmt.Errorf("runtime: %s: %w", ctl.Name(), err)
						}
						errMu.Unlock()
						tasks = nil
					}
					if !live {
						contribs[i] = contribution{}
						continue
					}
					contribs[i] = contribution{ctl: ctl, tasks: tasks}
				}
			}()
		}
		wg.Wait()
		if firstErr != nil {
			return EpochResult{}, firstErr
		}
	}
	// Compact out quarantined apps' empty slots; clear the displaced
	// tail so stale contributions are not pinned in the reused scratch.
	live := contribs[:0]
	for _, c := range contribs {
		if c.ctl != nil {
			live = append(live, c)
		}
	}
	for i := len(live); i < n; i++ {
		contribs[i] = contribution{}
	}
	return k.execute(dt, live), nil
}

// workload materializes the controller's epoch tasks (nil Workload → no
// tasks).
func (c *Controller) workload() ([]*simhpc.Task, error) {
	if c.spec.Workload == nil {
		return nil, nil
	}
	return c.spec.Workload()
}

// Options configures the concurrent driving mode.
type Options struct {
	// EpochDt is the simulated seconds each manager epoch covers
	// (default 60).
	EpochDt float64
	// Interval paces each application loop between epochs (default 0:
	// back-to-back, throttled only by the epoch barrier).
	Interval time.Duration
	// Flush bounds how long the scheduler waits for straggler apps
	// before running an epoch with the batches at hand (default 100ms).
	Flush time.Duration
	// Wake selects the shard/lane wake handshake (default WakeNotify;
	// WakeChannel keeps the legacy channel handshake as a measurable
	// baseline). See WakeMode.
	Wake WakeMode
}

func (o Options) withDefaults() Options {
	if o.EpochDt <= 0 {
		o.EpochDt = 60
	}
	if o.Flush <= 0 {
		o.Flush = 100 * time.Millisecond
	}
	return o
}

// shard is one loop worker's slice of the attached applications. The
// concurrent mode keeps one goroutine per app only while nApps ≤
// 2·GOMAXPROCS; past that it collapses to GOMAXPROCS shard loops. At
// 64+ apps the per-app model spends its time waking 2 goroutines per
// app per epoch (most of them landing on idle Ps), while a shard wakes
// once, ticks its apps back-to-back and submits one combined batch —
// the event-driven-core shape of the non-threaded CCP argument, with
// wakeups per epoch dropping from O(apps) to O(cores).
type shard struct {
	apps     []*Controller
	contribs []contribution // this epoch's batch, reused every round

	// Notify-mode wake state (wake.go). submitted counts batches
	// handed to the scheduler (loop-local); accepted is the
	// scheduler-published merge counter the shard spins-then-parks on;
	// parked + park are the futex-style park/unpark pair (park buffered
	// 1, allocation-free in steady state); next is the intrusive submit
	// stack link. Acceptance is published before the manager epoch
	// runs, so the shard's next round of ticks overlaps it — epoch
	// results reach apps through OnEpoch instead.
	submitted int64
	accepted  atomic.Int64
	parked    atomic.Bool
	park      chan struct{}
	next      *shard

	// acceptedCh is the channel-mode equivalent (buffered 1; a shard
	// never has two batches in flight).
	acceptedCh chan struct{}
}

// Start launches the concurrent kernel: a supervisor goroutine that
// serves the attached app set one membership generation at a time —
// sharded control-loop workers, the batched epoch scheduler and the
// epoch executor per generation — and rebuilds the loop topology
// whenever Attach or Detach changes membership. Starting with zero
// apps is allowed: the supervisor idles until the first Attach. Start
// returns immediately; the loops run until ctx is cancelled or Stop is
// called. Call Stop even after an external ctx cancellation — it reaps
// the goroutines and returns the kernel to the restartable state
// (until then Start and RunEpoch keep erroring).
//
// Apps sharing a shard share a loop goroutine, so one app's stalled
// Workload delays its shard-mates' next batch; the scheduler's Flush
// bound keeps running epochs for the OTHER shards' apps. With nApps ≤
// 2·GOMAXPROCS every app keeps its own goroutine and stall isolation
// is per app, as in PR 1; in the single-worker degenerate case there
// are no other loops, so a blocked Workload blocks all epochs until
// it returns — callers with blocking workloads on single-core hosts
// should keep them non-blocking or bound them themselves. A membership
// change also waits for in-flight Workload calls to return before the
// new generation starts (the drain guarantee), so a stalled workload
// delays admission of newly attached apps.
func (k *Kernel) Start(ctx context.Context, opts Options) error {
	opts = opts.withDefaults()
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.running {
		return fmt.Errorf("runtime: start: %w", ErrRunning)
	}
	if len(k.backends) == 0 {
		return fmt.Errorf("runtime: start: %w", ErrNoBackends)
	}
	k.errMu.Lock()
	k.err = nil // previous runs' workload errors do not outlive a restart
	k.errMu.Unlock()
	ctx, cancel := context.WithCancel(ctx)
	k.cancel = cancel
	k.running = true
	k.wg.Add(1)
	go k.supervise(ctx, opts)
	return nil
}

// supervise is the generation loop: snapshot membership, serve it until
// it changes (or ctx ends), repeat. The snapshot and the change-signal
// channel are installed under one lock acquisition, so a membership
// change is either visible in the snapshot or closes the channel —
// never silently missed.
func (k *Kernel) supervise(ctx context.Context, opts Options) {
	defer k.wg.Done()
	for {
		k.mu.Lock()
		k.foldRetiredLocked()
		k.refreshPlacementLocked()
		apps := k.apps
		bks := k.backends
		var obs EpochObserver
		if len(bks) > 1 {
			obs, _ = k.placement.(EpochObserver)
		}
		proto := k.protocol
		gen := k.memGen
		changed := make(chan struct{})
		k.memChanged = changed
		k.mu.Unlock()
		// Safe plain writes: the previous generation's epoch executor is
		// fully quiesced before the supervisor loops back here.
		k.epochBackends = bks
		k.epochObserver = obs
		k.epochProto = proto
		k.epochWake = opts.Wake
		k.protoActive.Store(int32(proto))
		k.servedGen.Store(gen)
		if ctx.Err() != nil {
			return
		}
		if len(apps) == 0 {
			// Nothing to serve yet: idle until the first Attach.
			select {
			case <-ctx.Done():
				return
			case <-changed:
				continue
			}
		}
		k.serveGeneration(ctx, changed, apps, opts)
		if ctx.Err() != nil {
			return
		}
	}
}

// serveGeneration runs the concurrent epoch machinery over one fixed
// app set until membership changes or ctx ends, then winds it down:
// loops park at their next ctx check, the scheduler drains every
// already-submitted batch into a final epoch (no accepted work is
// dropped — the detach-drain guarantee), and the executor finishes.
// Only after the generation is fully quiesced does the supervisor move
// on, so generations never overlap and the epoch scratch buffers stay
// single-writer.
func (k *Kernel) serveGeneration(ctx context.Context, changed <-chan struct{}, apps []*Controller, opts Options) {
	gctx, cancel := context.WithCancel(ctx)
	defer cancel()
	// Parked epoch batches (no healthy backends) unpark when this
	// generation winds down, so a roll or Stop never hangs on an
	// outage. Safe plain write: the previous generation quiesced.
	k.parkCtx = gctx

	// Per-app loops while they are affordable (strongest straggler
	// isolation); collapse to one shard per core once the app count
	// would make per-app wakeups the epoch's critical path. The
	// GOMAXPROCS read is per generation, and the loops watch for drift
	// (maybeReshape), so a live GOMAXPROCS change re-shapes the
	// topology at the next roll instead of serving it stale.
	gmp := goruntime.GOMAXPROCS(0)
	nShards := len(apps)
	if maxLoops := 2 * gmp; nShards > maxLoops {
		nShards = gmp
	}
	k.topoGMP.Store(int32(gmp))
	k.topoShards.Store(int32(nShards))
	k.topoDrift.Store(false)
	shards := make([]*shard, nShards)
	for i := range shards {
		shards[i] = &shard{
			park:       make(chan struct{}, 1),
			acceptedCh: make(chan struct{}, 1),
		}
	}
	for i, ctl := range apps {
		sh := shards[i%nShards]
		sh.apps = append(sh.apps, ctl)
	}
	for _, sh := range shards {
		sh.contribs = make([]contribution, 0, len(sh.apps))
	}

	var loopsWG, genWG sync.WaitGroup
	if nShards == 1 {
		// One worker covers every app (single-core host, or a single
		// app): scheduler, executor and epoch barrier would only add
		// handoffs between goroutines that cannot run in parallel
		// anyway. Degenerate to one uncontended control-loop driver —
		// the non-threaded event-driven core, with telemetry producers
		// still feeding the lock-free inboxes from outside.
		loopsWG.Add(1)
		go k.singleLoop(gctx, shards[0], opts, &loopsWG)
	} else {
		hub := newWakeHub(opts.Wake, nShards)
		genWG.Add(1)
		go k.scheduler(gctx, opts, len(apps), hub, &loopsWG, &genWG)
		for _, sh := range shards {
			loopsWG.Add(1)
			go k.shardLoop(gctx, sh, opts, hub, &loopsWG)
		}
	}

	select {
	case <-ctx.Done():
	case <-changed:
	}
	cancel()
	loopsWG.Wait()
	genWG.Wait()
}

// singleLoop is the degenerate concurrent mode for one shard: tick,
// materialize, execute, repeat — no batching machinery, because there
// is nothing to batch against.
func (k *Kernel) singleLoop(ctx context.Context, sh *shard, opts Options, wg *sync.WaitGroup) {
	defer wg.Done()
	for rounds := 0; ; rounds++ {
		if ctx.Err() != nil {
			return
		}
		if rounds&63 == 63 {
			// A live GOMAXPROCS raise deserves real shard loops; roll
			// the generation when the topology has gone stale.
			k.maybeReshape()
		}
		sh.contribs = sh.contribs[:0]
		for _, ctl := range sh.apps {
			tasks, err, live := k.tickApp(ctl)
			if err != nil {
				k.noteErr(fmt.Errorf("runtime: %s: %w", ctl.Name(), err))
				tasks = nil
			}
			if !live {
				continue // quarantined by a panic: contributes nothing
			}
			sh.contribs = append(sh.contribs, contribution{ctl: ctl, tasks: tasks})
		}
		k.execute(opts.EpochDt, sh.contribs)
		if opts.Interval > 0 {
			t := time.NewTimer(opts.Interval)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return
			}
		} else {
			// Unpaced epochs on a single P would otherwise starve the
			// telemetry producers until async preemption kicks in; the
			// epoch boundary is the fair point to let them run.
			goruntime.Gosched()
		}
	}
}

// Stop cancels the concurrent loops and waits for them to exit. The
// kernel can be restarted (or driven synchronously) afterwards.
func (k *Kernel) Stop() {
	k.mu.Lock()
	cancel := k.cancel
	k.mu.Unlock()
	if cancel == nil {
		return
	}
	cancel()
	k.wg.Wait()
	k.mu.Lock()
	k.cancel = nil
	k.running = false
	k.memChanged = nil // the supervisor that armed it is gone
	k.foldRetiredLocked()
	k.mu.Unlock()
}

// shardLoop drives the control loops of one shard of applications:
// tick each app, materialize its epoch workload, submit the combined
// batch to the scheduler, wait for it to be merged into an epoch,
// repeat. Because acceptance is signalled before the manager epoch
// runs, the shard's next round of ticks overlaps it. (Ticking ahead of
// acceptance was tried and measured slower: with the epoch barrier the
// slowest shard sets the pace, and eager next-round ticks steal cores
// from the current round's stragglers.)
func (k *Kernel) shardLoop(ctx context.Context, sh *shard, opts Options, hub *wakeHub, wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		if ctx.Err() != nil {
			return
		}
		sh.contribs = sh.contribs[:0]
		for _, ctl := range sh.apps {
			tasks, err, live := k.tickApp(ctl)
			if err != nil {
				k.noteErr(fmt.Errorf("runtime: %s: %w", ctl.Name(), err))
				tasks = nil
			}
			if !live {
				continue // quarantined by a panic: contributes nothing
			}
			sh.contribs = append(sh.contribs, contribution{ctl: ctl, tasks: tasks})
		}
		// The submission never blocks — channel mode has one slot per
		// shard, notify mode is a lock-free push — even during
		// generation wind-down, which is what guarantees a parked
		// shard's last batch is still queued for the scheduler's drain
		// pass. A shard never has two batches in flight.
		k.submitShard(hub, sh)
		if hub.mode == WakeChannel {
			select {
			case <-sh.acceptedCh:
			default:
				select {
				case <-sh.acceptedCh:
				case <-ctx.Done():
					return
				}
			}
		} else if !k.waitAccepted(ctx, sh) {
			return
		}
		if opts.Interval > 0 {
			t := time.NewTimer(opts.Interval)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return
			}
		}
	}
}

// scheduler batches app submissions into manager epochs: it runs an
// epoch as soon as every live app has contributed, or when Flush
// expires with a partial batch (stragglers then catch the next epoch).
//
// Flushing is pipelined two deep. Contributors are released the moment
// their batches are merged into the epoch's contribution list, so
// every released app loop ticks, collects telemetry and materializes
// its next workload while the manager is still executing the epoch
// they just joined. The manager itself runs on the executor goroutine:
// the scheduler hands a merged epoch over and immediately goes back to
// collecting, so releasing N apps and running the manager overlap too.
// The unbuffered handoff is the depth bound — a second merged epoch
// blocks until the first finishes, which also guarantees the epoch's
// double-buffered contribution slices are never written while read.
//
// On wind-down (ctx cancelled — membership change or Stop) the
// scheduler waits for the shard loops to park, drains any batches
// still queued in submit, and executes one final epoch over them, so
// work an app already handed over is never dropped.
func (k *Kernel) scheduler(ctx context.Context, opts Options, nApps int, hub *wakeHub, loopsWG, wg *sync.WaitGroup) {
	defer wg.Done()
	// An epoch can never contain two batches from one shard: each shard
	// loop waits for its acceptance — published only at flush — before
	// submitting again.
	var pending []*shard
	pendingApps := 0
	execCh := make(chan []contribution)
	wg.Add(1)
	go k.executor(execCh, opts.EpochDt, wg)
	defer close(execCh)
	// Two merge buffers: while the executor reads one, the scheduler
	// merges the next epoch into the other.
	var buffers [2][]contribution
	cur := 0
	flushes := 0
	timer := time.NewTimer(opts.Flush)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	armed := false

	disarm := func() {
		if armed && !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		armed = false
	}
	// take adds one shard's batch to the pending epoch.
	take := func(sh *shard) {
		pending = append(pending, sh)
		pendingApps += len(sh.apps)
	}
	// drainStack empties the notify-mode submit list (one swap takes
	// every queued shard — later pushers piggyback on one doorbell).
	drainStack := func() {
		for sh := hub.stack.popAll(); sh != nil; {
			next := sh.next
			take(sh)
			sh = next
		}
	}
	// flush merges the pending batches, releases their shards, and hands
	// the epoch to the executor. The send is unconditional: the executor
	// consumes until execCh closes and never blocks on anything but the
	// manager epoch itself, so the send waits at most one epoch — and an
	// accepted batch is executed even when ctx is already cancelled.
	flush := func() {
		contribs := buffers[cur][:0]
		for _, sh := range pending {
			contribs = append(contribs, sh.contribs...)
		}
		clear(contribs[len(contribs):cap(contribs)]) // no stale task pointers in the tail
		buffers[cur] = contribs
		cur = 1 - cur
		k.releaseShards(hub, pending)
		clear(pending)
		pending = pending[:0]
		pendingApps = 0
		disarm()
		if flushes++; flushes&63 == 0 {
			k.maybeReshape() // cheap periodic GOMAXPROCS drift check
		}
		execCh <- contribs
	}
	// drain is the wind-down path: once the shard loops have parked,
	// whatever they already submitted (received or still queued) joins
	// one final epoch.
	drain := func() {
		loopsWG.Wait()
		if hub.mode != WakeChannel {
			drainStack()
			if len(pending) > 0 {
				flush()
			}
			return
		}
		for {
			select {
			case sh := <-hub.submit:
				take(sh)
			default:
				if len(pending) > 0 {
					flush()
				}
				return
			}
		}
	}
	defer drain()

	for {
		select {
		case <-ctx.Done():
			return
		case sh := <-hub.submit: // nil (blocks forever) in notify mode
			take(sh)
			// Greedily drain whatever else has queued: non-blocking
			// receives skip the full select machinery.
		greedy:
			for pendingApps < nApps {
				select {
				case sh := <-hub.submit:
					take(sh)
				default:
					break greedy
				}
			}
		case <-hub.sig: // nil (blocks forever) in channel mode
			drainStack()
		case <-timer.C:
			armed = false
			k.maybeReshape() // paced loops flush by timer; check here too
			if len(pending) > 0 {
				flush()
			}
			continue
		}
		if pendingApps >= nApps {
			flush()
		} else if len(pending) > 0 && !armed {
			timer.Reset(opts.Flush)
			armed = true
		}
	}
}
