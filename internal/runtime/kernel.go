package runtime

import (
	"context"
	"fmt"
	goruntime "runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rtrm"
	"repro/internal/simhpc"
)

// Kernel drives the adaptation loops of many applications over one
// shared rtrm.Manager. Applications Attach an AppSpec; each epoch the
// kernel ticks every application's Controller (collect-analyse-decide-
// act), materializes the epoch workloads under the freshly decided
// configurations, merges them, and hands the batch to the manager — the
// system-wide coupling of the paper's two control loops, for N apps.
//
// Two driving modes share the same epoch engine:
//
//   - RunEpoch: synchronous, one epoch per call. Goroutine-safe; used by
//     deterministic simulation drivers and tests. The Tick+workload
//     fan-out runs on a worker pool, so different apps' Workload and
//     Sensor callbacks may run concurrently with each other (the same
//     guarantee the concurrent mode has always given).
//   - Start/Stop: sharded control-loop goroutines feeding a batched
//     epoch scheduler. The scheduler runs a manager epoch when every
//     app has contributed its batch (or after Flush expires, so a
//     stalled app cannot wedge the other loops' epochs — stall
//     isolation is per loop goroutine, see Start). Epochs are
//     pipelined: a loop is released as soon as its batch is merged, so
//     the next round of Tick+Workload runs concurrently with the
//     manager epoch — the serial section every app waits on is the
//     manager alone.
//
// The epoch fast path is allocation-free in steady state: the merged
// task list and fan-out buffers are kernel-owned scratch reused across
// epochs, and epochMu — the serial section every app waits on — covers
// only the manager epoch itself plus the totals update. Merging,
// ticking and workload materialization all happen outside it.
type Kernel struct {
	mgr *rtrm.Manager

	mu      sync.Mutex // guards apps, running, cancel
	apps    []*Controller
	byName  map[string]bool
	running bool
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	submit  chan *shard

	syncMu  sync.Mutex // serializes whole synchronous RunEpoch calls
	epochMu sync.Mutex // serializes manager epochs and totals
	totals  map[string]float64
	epochs  atomic.Int64

	// Epoch scratch, reused across epochs. Safe without its own lock:
	// execute's callers are already serialized — RunEpoch by syncMu, the
	// concurrent mode by its single epoch-executor goroutine, and the
	// two modes are mutually exclusive.
	mergedTasks []*simhpc.Task
	fanout      []contribution

	errMu sync.Mutex
	err   error // first workload error observed by concurrent loops
}

// NewKernel builds a kernel over a manager.
func NewKernel(mgr *rtrm.Manager) *Kernel {
	return &Kernel{
		mgr:    mgr,
		byName: make(map[string]bool),
		totals: make(map[string]float64),
	}
}

// Manager exposes the shared resource manager (telemetry, cluster).
func (k *Kernel) Manager() *rtrm.Manager { return k.mgr }

// Attach registers an application and returns its Controller (for
// direct metric pushes and adaptation counters). Attaching while the
// kernel is running is an error.
func (k *Kernel) Attach(spec AppSpec) (*Controller, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.running {
		return nil, fmt.Errorf("runtime: attach %q: kernel is running", spec.Name)
	}
	if spec.Name == "" {
		return nil, fmt.Errorf("runtime: attach: empty app name")
	}
	if k.byName[spec.Name] {
		return nil, fmt.Errorf("runtime: attach %q: duplicate app name", spec.Name)
	}
	ctl := NewController(spec)
	k.apps = append(k.apps, ctl)
	k.byName[spec.Name] = true
	return ctl, nil
}

// Apps returns the attached controllers in attach order.
func (k *Kernel) Apps() []*Controller {
	k.mu.Lock()
	defer k.mu.Unlock()
	return append([]*Controller(nil), k.apps...)
}

// Epochs returns the number of manager epochs run so far.
func (k *Kernel) Epochs() int64 { return k.epochs.Load() }

// TotalsPerApp returns the cumulative GFlop each application has
// offered to the manager (the manager's own telemetry tracks how much
// was executed vs deferred).
func (k *Kernel) TotalsPerApp() map[string]float64 {
	k.epochMu.Lock()
	defer k.epochMu.Unlock()
	out := make(map[string]float64, len(k.totals))
	for n, g := range k.totals {
		out[n] = g
	}
	return out
}

// Err returns the first workload error observed by the concurrent
// loops since the last Start (nil if none). Synchronous RunEpoch
// returns errors directly instead.
func (k *Kernel) Err() error {
	k.errMu.Lock()
	defer k.errMu.Unlock()
	return k.err
}

func (k *Kernel) noteErr(err error) {
	k.errMu.Lock()
	if k.err == nil {
		k.err = err
	}
	k.errMu.Unlock()
}

// EpochResult summarizes one kernel epoch.
type EpochResult struct {
	// Epoch is the 1-based epoch sequence number.
	Epoch int64
	// Report is the manager's account of the epoch.
	Report rtrm.EpochReport
	// PerApp is the GFlop each contributing app offered this epoch.
	PerApp map[string]float64
}

// contribution is one app's share of an epoch.
type contribution struct {
	ctl   *Controller
	tasks []*simhpc.Task
}

// execute runs one manager epoch over the merged contributions. It is
// the single funnel both driving modes go through; its callers are
// serialized (see the scratch-field comment), so only the manager epoch
// and the totals update need epochMu — merging stays outside the lock
// where concurrent TotalsPerApp readers cannot stall an epoch on it.
// OnEpoch callbacks run here: on the caller's goroutine in sync mode,
// on the kernel's epoch-executor goroutine in concurrent mode.
func (k *Kernel) execute(dt float64, contribs []contribution) EpochResult {
	all := k.mergedTasks[:0]
	// PerApp escapes to OnEpoch observers and RunEpoch callers, who may
	// hold it across epochs, so it is the one per-epoch allocation that
	// cannot come from scratch.
	perApp := make(map[string]float64, len(contribs))
	for _, c := range contribs {
		name := c.ctl.Name()
		if _, ok := perApp[name]; !ok {
			perApp[name] = 0 // every contributor appears, even with zero work
		}
		for _, t := range c.tasks {
			perApp[name] += t.GFlop
		}
		all = append(all, c.tasks...)
	}
	// Zero the reused buffer's tail so one burst epoch's task pointers
	// are not pinned for the kernel's lifetime by smaller later epochs.
	clear(all[len(all):cap(all)])
	k.mergedTasks = all

	k.epochMu.Lock()
	rep := k.mgr.RunEpoch(dt, all)
	for name, g := range perApp {
		k.totals[name] += g
	}
	epoch := k.epochs.Add(1)
	k.epochMu.Unlock()

	res := EpochResult{Epoch: epoch, Report: rep, PerApp: perApp}
	for _, c := range contribs {
		if c.ctl.spec.OnEpoch != nil {
			c.ctl.spec.OnEpoch(res)
		}
	}
	return res
}

// executor drains merged epochs off the scheduler, keeping the manager
// busy while the scheduler collects and releases the next round of
// batches. The handoff channel is unbuffered, so a send completing
// proves the previous epoch finished and its contribution buffer is
// free for reuse — the scheduler double-buffers on that guarantee.
func (k *Kernel) executor(execCh <-chan []contribution, dt float64) {
	defer k.wg.Done()
	for contribs := range execCh {
		k.execute(dt, contribs)
	}
}

// RunEpoch synchronously runs one adaptation epoch across every
// attached application: tick each controller, materialize workloads,
// run the manager over the merged task list. Safe for concurrent use
// (calls serialize fully, so no app's Workload ever runs twice at
// once), but mutually exclusive with the concurrent mode: it errors
// while Start's loops are running.
//
// The per-app Tick+workload stage fans out over a worker pool, so two
// different apps' callbacks may run concurrently (each app's own
// callbacks never do). On a workload error the epoch is abandoned —
// no manager epoch runs — but other apps may already have ticked.
func (k *Kernel) RunEpoch(dt float64) (EpochResult, error) {
	k.syncMu.Lock()
	defer k.syncMu.Unlock()
	k.mu.Lock()
	if k.running {
		k.mu.Unlock()
		return EpochResult{}, fmt.Errorf("runtime: RunEpoch while the concurrent kernel is running")
	}
	// Safe to share the slice header: Attach only appends, and the
	// elements below len are never rewritten.
	apps := k.apps
	k.mu.Unlock()

	n := len(apps)
	if cap(k.fanout) < n {
		k.fanout = make([]contribution, n)
	}
	contribs := k.fanout[:n]

	var firstErr error
	workers := goruntime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < 4 {
		// Few apps: the fan-out costs less than spawning workers.
		for i, ctl := range apps {
			ctl.Tick()
			tasks, err := ctl.workload()
			if err != nil {
				return EpochResult{}, fmt.Errorf("runtime: %s: %w", ctl.Name(), err)
			}
			contribs[i] = contribution{ctl: ctl, tasks: tasks}
		}
	} else {
		var next atomic.Int64
		var errMu sync.Mutex
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					ctl := apps[i]
					ctl.Tick()
					tasks, err := ctl.workload()
					if err != nil {
						errMu.Lock()
						if firstErr == nil {
							firstErr = fmt.Errorf("runtime: %s: %w", ctl.Name(), err)
						}
						errMu.Unlock()
						tasks = nil
					}
					contribs[i] = contribution{ctl: ctl, tasks: tasks}
				}
			}()
		}
		wg.Wait()
		if firstErr != nil {
			return EpochResult{}, firstErr
		}
	}
	return k.execute(dt, contribs), nil
}

// workload materializes the controller's epoch tasks (nil Workload → no
// tasks).
func (c *Controller) workload() ([]*simhpc.Task, error) {
	if c.spec.Workload == nil {
		return nil, nil
	}
	return c.spec.Workload()
}

// Options configures the concurrent driving mode.
type Options struct {
	// EpochDt is the simulated seconds each manager epoch covers
	// (default 60).
	EpochDt float64
	// Interval paces each application loop between epochs (default 0:
	// back-to-back, throttled only by the epoch barrier).
	Interval time.Duration
	// Flush bounds how long the scheduler waits for straggler apps
	// before running an epoch with the batches at hand (default 100ms).
	Flush time.Duration
}

func (o Options) withDefaults() Options {
	if o.EpochDt <= 0 {
		o.EpochDt = 60
	}
	if o.Flush <= 0 {
		o.Flush = 100 * time.Millisecond
	}
	return o
}

// shard is one loop worker's slice of the attached applications. The
// concurrent mode keeps one goroutine per app only while nApps ≤
// 2·GOMAXPROCS; past that it collapses to GOMAXPROCS shard loops. At
// 64+ apps the per-app model spends its time waking 2 goroutines per
// app per epoch (most of them landing on idle Ps), while a shard wakes
// once, ticks its apps back-to-back and submits one combined batch —
// the event-driven-core shape of the non-threaded CCP argument, with
// wakeups per epoch dropping from O(apps) to O(cores).
type shard struct {
	apps     []*Controller
	contribs []contribution // this epoch's batch, reused every round
	// accepted is signalled when the shard's batch is merged into an
	// epoch (buffered 1; a shard never has two batches in flight). The
	// signal arrives before the manager epoch runs, so the shard's next
	// round of ticks overlaps it — epoch results reach apps through
	// OnEpoch instead.
	accepted chan struct{}
}

// Start launches the concurrent kernel: sharded control-loop workers
// covering every attached application, the batched epoch scheduler,
// and the epoch executor. It returns immediately; the loops run until
// ctx is cancelled or Stop is called. Call Stop even after an external
// ctx cancellation — it reaps the goroutines and returns the kernel to
// the attachable/restartable state (until then Attach, Start and
// RunEpoch keep erroring).
//
// Apps sharing a shard share a loop goroutine, so one app's stalled
// Workload delays its shard-mates' next batch; the scheduler's Flush
// bound keeps running epochs for the OTHER shards' apps. With nApps ≤
// 2·GOMAXPROCS every app keeps its own goroutine and stall isolation
// is per app, as in PR 1; in the single-worker degenerate case there
// are no other loops, so a blocked Workload blocks all epochs until
// it returns — callers with blocking workloads on single-core hosts
// should keep them non-blocking or bound them themselves.
func (k *Kernel) Start(ctx context.Context, opts Options) error {
	opts = opts.withDefaults()
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.running {
		return fmt.Errorf("runtime: kernel already running")
	}
	if len(k.apps) == 0 {
		return fmt.Errorf("runtime: no applications attached")
	}
	k.errMu.Lock()
	k.err = nil // previous runs' workload errors do not outlive a restart
	k.errMu.Unlock()
	ctx, cancel := context.WithCancel(ctx)
	k.cancel = cancel
	k.running = true

	// Per-app loops while they are affordable (strongest straggler
	// isolation); collapse to one shard per core once the app count
	// would make per-app wakeups the epoch's critical path.
	nShards := len(k.apps)
	if maxLoops := 2 * goruntime.GOMAXPROCS(0); nShards > maxLoops {
		nShards = goruntime.GOMAXPROCS(0)
	}
	shards := make([]*shard, nShards)
	for i := range shards {
		shards[i] = &shard{accepted: make(chan struct{}, 1)}
	}
	for i, ctl := range k.apps {
		sh := shards[i%nShards]
		sh.apps = append(sh.apps, ctl)
	}
	for _, sh := range shards {
		sh.contribs = make([]contribution, 0, len(sh.apps))
	}
	if nShards == 1 {
		// One worker covers every app (single-core host, or a single
		// app): scheduler, executor and epoch barrier would only add
		// handoffs between goroutines that cannot run in parallel
		// anyway. Degenerate to one uncontended control-loop driver —
		// the non-threaded event-driven core, with telemetry producers
		// still feeding the lock-free inboxes from outside.
		k.wg.Add(1)
		go k.singleLoop(ctx, shards[0], opts)
		return nil
	}
	k.submit = make(chan *shard, nShards)

	k.wg.Add(1)
	go k.scheduler(ctx, opts, len(k.apps))
	for _, sh := range shards {
		k.wg.Add(1)
		go k.shardLoop(ctx, sh, opts)
	}
	return nil
}

// singleLoop is the degenerate concurrent mode for one shard: tick,
// materialize, execute, repeat — no batching machinery, because there
// is nothing to batch against.
func (k *Kernel) singleLoop(ctx context.Context, sh *shard, opts Options) {
	defer k.wg.Done()
	for {
		if ctx.Err() != nil {
			return
		}
		sh.contribs = sh.contribs[:0]
		for _, ctl := range sh.apps {
			ctl.Tick()
			tasks, err := ctl.workload()
			if err != nil {
				k.noteErr(fmt.Errorf("runtime: %s: %w", ctl.Name(), err))
				tasks = nil
			}
			sh.contribs = append(sh.contribs, contribution{ctl: ctl, tasks: tasks})
		}
		k.execute(opts.EpochDt, sh.contribs)
		if opts.Interval > 0 {
			t := time.NewTimer(opts.Interval)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return
			}
		} else {
			// Unpaced epochs on a single P would otherwise starve the
			// telemetry producers until async preemption kicks in; the
			// epoch boundary is the fair point to let them run.
			goruntime.Gosched()
		}
	}
}

// Stop cancels the concurrent loops and waits for them to exit. The
// kernel can be restarted (or driven synchronously) afterwards.
func (k *Kernel) Stop() {
	k.mu.Lock()
	cancel := k.cancel
	k.mu.Unlock()
	if cancel == nil {
		return
	}
	cancel()
	k.wg.Wait()
	k.mu.Lock()
	k.cancel = nil
	k.running = false
	k.mu.Unlock()
}

// shardLoop drives the control loops of one shard of applications:
// tick each app, materialize its epoch workload, submit the combined
// batch to the scheduler, wait for it to be merged into an epoch,
// repeat. Because acceptance is signalled before the manager epoch
// runs, the shard's next round of ticks overlaps it. (Ticking ahead of
// acceptance was tried and measured slower: with the epoch barrier the
// slowest shard sets the pace, and eager next-round ticks steal cores
// from the current round's stragglers.)
func (k *Kernel) shardLoop(ctx context.Context, sh *shard, opts Options) {
	defer k.wg.Done()
	for {
		if ctx.Err() != nil {
			return
		}
		sh.contribs = sh.contribs[:0]
		for _, ctl := range sh.apps {
			ctl.Tick()
			tasks, err := ctl.workload()
			if err != nil {
				k.noteErr(fmt.Errorf("runtime: %s: %w", ctl.Name(), err))
				tasks = nil
			}
			sh.contribs = append(sh.contribs, contribution{ctl: ctl, tasks: tasks})
		}
		// Non-blocking fast paths first: submit has one slot per shard
		// so the send nearly always lands immediately, and a two-case
		// select costs an order of magnitude more than a failed
		// non-blocking attempt.
		select {
		case k.submit <- sh:
		default:
			select {
			case k.submit <- sh:
			case <-ctx.Done():
				return
			}
		}
		select {
		case <-sh.accepted:
		default:
			select {
			case <-sh.accepted:
			case <-ctx.Done():
				return
			}
		}
		if opts.Interval > 0 {
			t := time.NewTimer(opts.Interval)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return
			}
		}
	}
}

// scheduler batches app submissions into manager epochs: it runs an
// epoch as soon as every live app has contributed, or when Flush
// expires with a partial batch (stragglers then catch the next epoch).
//
// Flushing is pipelined two deep. Contributors are released the moment
// their batches are merged into the epoch's contribution list, so
// every released app loop ticks, collects telemetry and materializes
// its next workload while the manager is still executing the epoch
// they just joined. The manager itself runs on the executor goroutine:
// the scheduler hands a merged epoch over and immediately goes back to
// collecting, so releasing N apps and running the manager overlap too.
// The unbuffered handoff is the depth bound — a second merged epoch
// blocks until the first finishes, which also guarantees the epoch's
// double-buffered contribution slices are never written while read.
func (k *Kernel) scheduler(ctx context.Context, opts Options, nApps int) {
	defer k.wg.Done()
	// An epoch can never contain two batches from one shard: each shard
	// loop waits for its accepted signal — sent only at flush — before
	// submitting again.
	var pending []*shard
	pendingApps := 0
	execCh := make(chan []contribution)
	k.wg.Add(1)
	go k.executor(execCh, opts.EpochDt)
	defer close(execCh)
	// Two merge buffers: while the executor reads one, the scheduler
	// merges the next epoch into the other.
	var buffers [2][]contribution
	cur := 0
	timer := time.NewTimer(opts.Flush)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	armed := false

	disarm := func() {
		if armed && !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		armed = false
	}
	flush := func() bool {
		contribs := buffers[cur][:0]
		for _, sh := range pending {
			contribs = append(contribs, sh.contribs...)
		}
		clear(contribs[len(contribs):cap(contribs)]) // no stale task pointers in the tail
		buffers[cur] = contribs
		cur = 1 - cur
		for _, sh := range pending {
			sh.accepted <- struct{}{}
		}
		clear(pending)
		pending = pending[:0]
		pendingApps = 0
		disarm()
		select {
		case execCh <- contribs:
			return true
		case <-ctx.Done():
			return false
		}
	}

	for {
		select {
		case <-ctx.Done():
			return
		case sh := <-k.submit:
			pending = append(pending, sh)
			pendingApps += len(sh.apps)
			// Greedily drain whatever else has queued: non-blocking
			// receives skip the full select machinery.
		drain:
			for pendingApps < nApps {
				select {
				case sh := <-k.submit:
					pending = append(pending, sh)
					pendingApps += len(sh.apps)
				default:
					break drain
				}
			}
			if pendingApps >= nApps {
				if !flush() {
					return
				}
			} else if !armed {
				timer.Reset(opts.Flush)
				armed = true
			}
		case <-timer.C:
			armed = false
			if len(pending) > 0 {
				if !flush() {
					return
				}
			}
		}
	}
}
