package runtime

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rtrm"
	"repro/internal/simhpc"
)

// Kernel drives the adaptation loops of many applications over one
// shared rtrm.Manager. Applications Attach an AppSpec; each epoch the
// kernel ticks every application's Controller (collect-analyse-decide-
// act), materializes the epoch workloads under the freshly decided
// configurations, merges them, and hands the batch to the manager — the
// system-wide coupling of the paper's two control loops, for N apps.
//
// Two driving modes share the same epoch engine:
//
//   - RunEpoch: synchronous, one epoch per call. Goroutine-safe; used by
//     deterministic simulation drivers and tests.
//   - Start/Stop: one control-loop goroutine per application feeding a
//     batched epoch scheduler. The scheduler runs a manager epoch when
//     every app has contributed its batch (or after Flush expires, so a
//     stalled app cannot wedge the cluster).
type Kernel struct {
	mgr *rtrm.Manager

	mu      sync.Mutex // guards apps, running, cancel
	apps    []*Controller
	byName  map[string]bool
	running bool
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	submit  chan batch

	syncMu  sync.Mutex // serializes whole synchronous RunEpoch calls
	epochMu sync.Mutex // serializes manager epochs and totals
	totals  map[string]float64
	epochs  atomic.Int64

	errMu sync.Mutex
	err   error // first workload error observed by concurrent loops
}

// NewKernel builds a kernel over a manager.
func NewKernel(mgr *rtrm.Manager) *Kernel {
	return &Kernel{
		mgr:    mgr,
		byName: make(map[string]bool),
		totals: make(map[string]float64),
	}
}

// Manager exposes the shared resource manager (telemetry, cluster).
func (k *Kernel) Manager() *rtrm.Manager { return k.mgr }

// Attach registers an application and returns its Controller (for
// direct metric pushes and adaptation counters). Attaching while the
// kernel is running is an error.
func (k *Kernel) Attach(spec AppSpec) (*Controller, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.running {
		return nil, fmt.Errorf("runtime: attach %q: kernel is running", spec.Name)
	}
	if spec.Name == "" {
		return nil, fmt.Errorf("runtime: attach: empty app name")
	}
	if k.byName[spec.Name] {
		return nil, fmt.Errorf("runtime: attach %q: duplicate app name", spec.Name)
	}
	ctl := NewController(spec)
	k.apps = append(k.apps, ctl)
	k.byName[spec.Name] = true
	return ctl, nil
}

// Apps returns the attached controllers in attach order.
func (k *Kernel) Apps() []*Controller {
	k.mu.Lock()
	defer k.mu.Unlock()
	return append([]*Controller(nil), k.apps...)
}

// Epochs returns the number of manager epochs run so far.
func (k *Kernel) Epochs() int64 { return k.epochs.Load() }

// TotalsPerApp returns the cumulative GFlop each application has
// offered to the manager (the manager's own telemetry tracks how much
// was executed vs deferred).
func (k *Kernel) TotalsPerApp() map[string]float64 {
	k.epochMu.Lock()
	defer k.epochMu.Unlock()
	out := make(map[string]float64, len(k.totals))
	for n, g := range k.totals {
		out[n] = g
	}
	return out
}

// Err returns the first workload error observed by the concurrent
// loops since the last Start (nil if none). Synchronous RunEpoch
// returns errors directly instead.
func (k *Kernel) Err() error {
	k.errMu.Lock()
	defer k.errMu.Unlock()
	return k.err
}

func (k *Kernel) noteErr(err error) {
	k.errMu.Lock()
	if k.err == nil {
		k.err = err
	}
	k.errMu.Unlock()
}

// EpochResult summarizes one kernel epoch.
type EpochResult struct {
	// Epoch is the 1-based epoch sequence number.
	Epoch int64
	// Report is the manager's account of the epoch.
	Report rtrm.EpochReport
	// PerApp is the GFlop each contributing app offered this epoch.
	PerApp map[string]float64
}

// contribution is one app's share of an epoch.
type contribution struct {
	ctl   *Controller
	tasks []*simhpc.Task
}

// execute runs one manager epoch over the merged contributions. It is
// the single funnel both driving modes go through, so epochs serialize
// on epochMu no matter who calls.
func (k *Kernel) execute(dt float64, contribs []contribution) EpochResult {
	k.epochMu.Lock()
	var all []*simhpc.Task
	perApp := make(map[string]float64, len(contribs))
	for _, c := range contribs {
		name := c.ctl.Name()
		if _, ok := perApp[name]; !ok {
			perApp[name] = 0 // every contributor appears, even with zero work
		}
		for _, t := range c.tasks {
			perApp[name] += t.GFlop
		}
		all = append(all, c.tasks...)
	}
	rep := k.mgr.RunEpoch(dt, all)
	for name, g := range perApp {
		k.totals[name] += g
	}
	res := EpochResult{Epoch: k.epochs.Add(1), Report: rep, PerApp: perApp}
	k.epochMu.Unlock()

	for _, c := range contribs {
		if c.ctl.spec.OnEpoch != nil {
			c.ctl.spec.OnEpoch(res)
		}
	}
	return res
}

// RunEpoch synchronously runs one adaptation epoch across every
// attached application: tick each controller, materialize workloads,
// run the manager over the merged task list. Safe for concurrent use
// (calls serialize fully, so no app's Workload ever runs twice at
// once), but mutually exclusive with the concurrent mode: it errors
// while Start's loops are running.
func (k *Kernel) RunEpoch(dt float64) (EpochResult, error) {
	k.syncMu.Lock()
	defer k.syncMu.Unlock()
	k.mu.Lock()
	if k.running {
		k.mu.Unlock()
		return EpochResult{}, fmt.Errorf("runtime: RunEpoch while the concurrent kernel is running")
	}
	apps := append([]*Controller(nil), k.apps...)
	k.mu.Unlock()

	contribs := make([]contribution, 0, len(apps))
	for _, ctl := range apps {
		ctl.Tick()
		tasks, err := ctl.workload()
		if err != nil {
			return EpochResult{}, fmt.Errorf("runtime: %s: %w", ctl.Name(), err)
		}
		contribs = append(contribs, contribution{ctl: ctl, tasks: tasks})
	}
	return k.execute(dt, contribs), nil
}

// workload materializes the controller's epoch tasks (nil Workload → no
// tasks).
func (c *Controller) workload() ([]*simhpc.Task, error) {
	if c.spec.Workload == nil {
		return nil, nil
	}
	return c.spec.Workload()
}

// Options configures the concurrent driving mode.
type Options struct {
	// EpochDt is the simulated seconds each manager epoch covers
	// (default 60).
	EpochDt float64
	// Interval paces each application loop between epochs (default 0:
	// back-to-back, throttled only by the epoch barrier).
	Interval time.Duration
	// Flush bounds how long the scheduler waits for straggler apps
	// before running an epoch with the batches at hand (default 100ms).
	Flush time.Duration
}

func (o Options) withDefaults() Options {
	if o.EpochDt <= 0 {
		o.EpochDt = 60
	}
	if o.Flush <= 0 {
		o.Flush = 100 * time.Millisecond
	}
	return o
}

// batch is one app loop's submission to the epoch scheduler.
type batch struct {
	ctl   *Controller
	tasks []*simhpc.Task
	done  chan EpochResult // buffered(1); receives the epoch this batch joined
}

// Start launches the concurrent kernel: one control-loop goroutine per
// attached application plus the batched epoch scheduler. It returns
// immediately; the loops run until ctx is cancelled or Stop is called.
// Call Stop even after an external ctx cancellation — it reaps the
// goroutines and returns the kernel to the attachable/restartable
// state (until then Attach, Start and RunEpoch keep erroring).
func (k *Kernel) Start(ctx context.Context, opts Options) error {
	opts = opts.withDefaults()
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.running {
		return fmt.Errorf("runtime: kernel already running")
	}
	if len(k.apps) == 0 {
		return fmt.Errorf("runtime: no applications attached")
	}
	k.errMu.Lock()
	k.err = nil // previous runs' workload errors do not outlive a restart
	k.errMu.Unlock()
	ctx, cancel := context.WithCancel(ctx)
	k.cancel = cancel
	k.running = true
	k.submit = make(chan batch, len(k.apps))

	k.wg.Add(1)
	go k.scheduler(ctx, opts, len(k.apps))
	for _, ctl := range k.apps {
		k.wg.Add(1)
		go k.appLoop(ctx, ctl, opts)
	}
	return nil
}

// Stop cancels the concurrent loops and waits for them to exit. The
// kernel can be restarted (or driven synchronously) afterwards.
func (k *Kernel) Stop() {
	k.mu.Lock()
	cancel := k.cancel
	k.mu.Unlock()
	if cancel == nil {
		return
	}
	cancel()
	k.wg.Wait()
	k.mu.Lock()
	k.cancel = nil
	k.running = false
	k.mu.Unlock()
}

// appLoop is one application's control loop: tick, materialize the
// epoch workload, submit it to the scheduler, wait for the epoch to
// land, repeat.
func (k *Kernel) appLoop(ctx context.Context, ctl *Controller, opts Options) {
	defer k.wg.Done()
	for {
		if ctx.Err() != nil {
			return
		}
		ctl.Tick()
		tasks, err := ctl.workload()
		if err != nil {
			k.noteErr(fmt.Errorf("runtime: %s: %w", ctl.Name(), err))
			tasks = nil
		}
		b := batch{ctl: ctl, tasks: tasks, done: make(chan EpochResult, 1)}
		select {
		case k.submit <- b:
		case <-ctx.Done():
			return
		}
		select {
		case <-b.done:
		case <-ctx.Done():
			return
		}
		if opts.Interval > 0 {
			t := time.NewTimer(opts.Interval)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return
			}
		}
	}
}

// scheduler batches app submissions into manager epochs: it runs an
// epoch as soon as every live app has contributed, or when Flush
// expires with a partial batch (stragglers then catch the next epoch).
func (k *Kernel) scheduler(ctx context.Context, opts Options, nApps int) {
	defer k.wg.Done()
	// An epoch can never contain two batches from one app: each app loop
	// waits for its batch's done signal — delivered only at flush —
	// before submitting again.
	pending := make([]batch, 0, nApps)
	timer := time.NewTimer(opts.Flush)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	armed := false

	disarm := func() {
		if armed && !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		armed = false
	}
	flush := func() {
		contribs := make([]contribution, len(pending))
		for i, b := range pending {
			contribs[i] = contribution{ctl: b.ctl, tasks: b.tasks}
		}
		res := k.execute(opts.EpochDt, contribs)
		for _, b := range pending {
			b.done <- res
		}
		pending = pending[:0]
		disarm()
	}

	for {
		select {
		case <-ctx.Done():
			return
		case b := <-k.submit:
			pending = append(pending, b)
			if len(pending) >= nApps {
				flush()
			} else if !armed {
				timer.Reset(opts.Flush)
				armed = true
			}
		case <-timer.C:
			armed = false
			if len(pending) > 0 {
				flush()
			}
		}
	}
}
