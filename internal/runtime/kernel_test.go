package runtime

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/autotune"
	"repro/internal/monitor"
	"repro/internal/rtrm"
	"repro/internal/simhpc"
)

func testManager(nodes int) *rtrm.Manager {
	rng := simhpc.NewRNG(101)
	cluster := simhpc.NewCluster(nodes, 22, func(i int) *simhpc.Node {
		return simhpc.HomogeneousNode(fmt.Sprintf("n%d", i), 0.15, rng)
	})
	return rtrm.NewManager(cluster, cluster.FacilityPowerW(1)*0.9)
}

// simpleSpec is an app that offers a fixed workload each epoch.
func simpleSpec(name string, gen *simhpc.WorkloadGen, tasks int) AppSpec {
	return AppSpec{
		Name: name,
		Workload: func() ([]*simhpc.Task, error) {
			return gen.Mix(tasks, 1, 1, 1, 8), nil
		},
	}
}

func TestKernelAttachValidation(t *testing.T) {
	k := NewKernel(testManager(2))
	if _, err := k.Attach(AppSpec{}); !errors.Is(err, ErrEmptyAppName) {
		t.Errorf("empty name: %v, want ErrEmptyAppName", err)
	}
	if _, err := k.Attach(AppSpec{Name: "a"}); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Attach(AppSpec{Name: "a"}); !errors.Is(err, ErrDuplicateApp) {
		t.Errorf("duplicate name: %v, want ErrDuplicateApp", err)
	}
	if err := k.Detach("nope"); !errors.Is(err, ErrUnknownApp) {
		t.Errorf("unknown detach: %v, want ErrUnknownApp", err)
	}
	if err := k.Start(context.Background(), Options{}); err != nil {
		t.Fatal(err)
	}
	defer k.Stop()
	// Live attach is allowed since the membership epoch landed; the
	// duplicate check still applies while running.
	if _, err := k.Attach(AppSpec{Name: "b"}); err != nil {
		t.Errorf("attach while running: %v, want success", err)
	}
	if _, err := k.Attach(AppSpec{Name: "b"}); !errors.Is(err, ErrDuplicateApp) {
		t.Errorf("duplicate live attach: %v, want ErrDuplicateApp", err)
	}
	if err := k.Start(context.Background(), Options{}); !errors.Is(err, ErrRunning) {
		t.Errorf("double start: %v, want ErrRunning", err)
	}
	if _, err := k.RunEpoch(60); !errors.Is(err, ErrRunning) {
		t.Errorf("synchronous RunEpoch while running: %v, want ErrRunning", err)
	}
}

// TestKernelErrClearedOnRestart: a previous run's workload error must
// not outlive a Stop/Start restart.
func TestKernelErrClearedOnRestart(t *testing.T) {
	k := NewKernel(testManager(2))
	var failing atomic.Bool
	failing.Store(true)
	if _, err := k.Attach(AppSpec{
		Name: "flaky",
		Workload: func() ([]*simhpc.Task, error) {
			if failing.Load() {
				return nil, fmt.Errorf("transient")
			}
			return nil, nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := k.Start(context.Background(), Options{Flush: 5 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for k.Err() == nil && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	k.Stop()
	if k.Err() == nil {
		t.Fatal("workload error was not recorded")
	}
	failing.Store(false)
	if err := k.Start(context.Background(), Options{Flush: 5 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	want := k.Epochs() + 2
	deadline = time.Now().Add(5 * time.Second)
	for k.Epochs() < want && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	k.Stop()
	if err := k.Err(); err != nil {
		t.Errorf("stale error after healthy restart: %v", err)
	}
}

// TestKernelStartEmptyThenAttach: starting with zero apps parks the
// supervisor until the first attach — the serving-system shape, where
// the kernel is up before any tenant registers.
func TestKernelStartEmptyThenAttach(t *testing.T) {
	k := NewKernel(testManager(2))
	if err := k.Start(context.Background(), Options{Flush: 5 * time.Millisecond}); err != nil {
		t.Fatalf("start with no apps: %v", err)
	}
	defer k.Stop()
	if got := k.Epochs(); got != 0 {
		t.Fatalf("epochs before any app: %d", got)
	}
	gen := simhpc.NewWorkloadGen(3)
	if _, err := k.Attach(simpleSpec("late", gen, 2)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for k.Epochs() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if k.Epochs() < 3 {
		t.Fatalf("late-attached app never drove epochs: %d", k.Epochs())
	}
	if k.TotalsPerApp()["late"] <= 0 {
		t.Error("late app contributed no work")
	}
}

// TestKernelSynchronousEpochs covers the deterministic driving mode:
// the old core.System behaviour, now multiplexing several apps.
func TestKernelSynchronousEpochs(t *testing.T) {
	k := NewKernel(testManager(4))
	// One generator per app: RunEpoch fans Tick+Workload out over a
	// worker pool, so different apps' workloads may run concurrently.
	for i := 0; i < 3; i++ {
		gen := simhpc.NewWorkloadGen(uint64(5 + i))
		if _, err := k.Attach(simpleSpec(fmt.Sprintf("app%d", i), gen, 4)); err != nil {
			t.Fatal(err)
		}
	}
	for e := 0; e < 5; e++ {
		res, err := k.RunEpoch(60)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.PerApp) != 3 {
			t.Fatalf("epoch %d contributors: %v", e, res.PerApp)
		}
		for name, g := range res.PerApp {
			if g <= 0 {
				t.Errorf("epoch %d: app %s offered no work", e, name)
			}
		}
	}
	if stats := k.ManagerStats(); k.Epochs() != 5 || stats.Epochs != 5 {
		t.Errorf("epochs: kernel=%d manager=%d", k.Epochs(), stats.Epochs)
	}
	if k.ManagerStats().WorkGFlop <= 0 {
		t.Error("no work recorded")
	}
}

// TestKernelWorkloadError verifies error propagation in sync mode.
func TestKernelWorkloadError(t *testing.T) {
	k := NewKernel(testManager(2))
	boom := fmt.Errorf("not tuned")
	if _, err := k.Attach(AppSpec{
		Name:     "bad",
		Workload: func() ([]*simhpc.Task, error) { return nil, boom },
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := k.RunEpoch(60); err == nil {
		t.Fatal("workload error should propagate")
	}
}

// TestKernelAdaptationLoop runs a full collect-analyse-decide-act cycle
// through the kernel: a sensor reports SLA-violating latency, the policy
// picks a cheaper configuration, the knob applies it, and the workload
// shrinks accordingly.
func TestKernelAdaptationLoop(t *testing.T) {
	k := NewKernel(testManager(2))
	gen := simhpc.NewWorkloadGen(9)
	inbox := &Inbox{}
	var mu sync.Mutex
	level := 4.0 // work level; policy halves it under violation

	ctl, err := k.Attach(AppSpec{
		Name: "adaptive",
		SLA: monitor.SLA{Goals: []monitor.Goal{
			{Metric: monitor.MetricLatency, Relation: monitor.AtMost, Target: 1.0},
		}},
		Window:   8,
		Debounce: 2,
		Sensor:   inbox,
		Policy: PolicyFunc(func(d monitor.Decision, _ map[string]monitor.Summary) (autotune.Config, bool) {
			mu.Lock()
			defer mu.Unlock()
			if level <= 1 {
				return nil, false
			}
			return autotune.Config{"level": level / 2}, true
		}),
		Knob: KnobFunc(func(cfg autotune.Config) {
			mu.Lock()
			level = cfg["level"]
			mu.Unlock()
		}),
		Workload: func() ([]*simhpc.Task, error) {
			mu.Lock()
			n := int(level)
			mu.Unlock()
			return gen.Mix(n, 1, 1, 1, 5), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Healthy epochs: no adaptation.
	inbox.Push(monitor.MetricLatency, 0.5)
	if _, err := k.RunEpoch(60); err != nil {
		t.Fatal(err)
	}
	if ctl.Adaptations() != 0 {
		t.Fatal("adapted while healthy")
	}
	// Sustained violation: adapts after the debounce.
	for e := 0; e < 3; e++ {
		inbox.Push(monitor.MetricLatency, 3.0)
		if _, err := k.RunEpoch(60); err != nil {
			t.Fatal(err)
		}
	}
	if ctl.Adaptations() != 1 {
		t.Fatalf("adaptations: %d, want 1", ctl.Adaptations())
	}
	mu.Lock()
	got := level
	mu.Unlock()
	if got != 2 {
		t.Errorf("level after adaptation: %v, want 2", got)
	}
	// The firing decision reset the windows; only the sample collected
	// after the adaptation remains.
	if n := ctl.Metrics().Window(monitor.MetricLatency).Len(); n != 1 {
		t.Errorf("window has %d samples after reset+1 push, want 1", n)
	}
}

// TestKernelConcurrentApps is the acceptance-criterion test: the kernel
// drives many apps at once through one shared manager, with producer
// goroutines pushing telemetry the whole time. Run under -race in CI.
func TestKernelConcurrentApps(t *testing.T) {
	const nApps = 8
	k := NewKernel(testManager(8))
	gen := simhpc.NewWorkloadGen(13)
	var genMu sync.Mutex
	inboxes := make([]*Inbox, nApps)
	ctls := make([]*Controller, nApps)
	for i := 0; i < nApps; i++ {
		inbox := &Inbox{}
		inboxes[i] = inbox
		ctl, err := k.Attach(AppSpec{
			Name: fmt.Sprintf("app%d", i),
			SLA: monitor.SLA{Goals: []monitor.Goal{
				{Metric: monitor.MetricLatency, Relation: monitor.AtMost, Target: 1.0},
			}},
			Window:   16,
			Debounce: 2,
			Sensor:   inbox,
			Policy: PolicyFunc(func(monitor.Decision, map[string]monitor.Summary) (autotune.Config, bool) {
				return autotune.Config{"x": 1}, true
			}),
			Knob: KnobFunc(func(autotune.Config) {}),
			Workload: func() ([]*simhpc.Task, error) {
				genMu.Lock()
				defer genMu.Unlock()
				return gen.Mix(2, 1, 1, 1, 4), nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		ctls[i] = ctl
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Telemetry producers run concurrently with the kernel loops; half
	// the apps see violating latency and must adapt.
	var prodWG sync.WaitGroup
	for i := 0; i < nApps; i++ {
		prodWG.Add(1)
		go func(i int) {
			defer prodWG.Done()
			lat := 0.2
			if i%2 == 0 {
				lat = 5.0
			}
			for ctx.Err() == nil {
				inboxes[i].Push(monitor.MetricLatency, lat)
				time.Sleep(time.Millisecond)
			}
		}(i)
	}

	if err := k.Start(ctx, Options{EpochDt: 60, Flush: 20 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for k.Epochs() < 20 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	k.Stop()
	cancel()
	prodWG.Wait()

	if k.Epochs() < 20 {
		t.Fatalf("only %d epochs ran", k.Epochs())
	}
	if err := k.Err(); err != nil {
		t.Fatal(err)
	}
	totals := k.TotalsPerApp()
	for i := 0; i < nApps; i++ {
		name := fmt.Sprintf("app%d", i)
		if totals[name] <= 0 {
			t.Errorf("%s contributed no work (totals %v)", name, totals)
		}
		if ctls[i].Ticks() == 0 {
			t.Errorf("%s never ticked", name)
		}
	}
	// The violating half adapted; the healthy half did not.
	for i := 0; i < nApps; i++ {
		adapted := ctls[i].Adaptations() > 0
		if i%2 == 0 && !adapted {
			t.Errorf("app%d saw violations but never adapted", i)
		}
		if i%2 == 1 && adapted {
			t.Errorf("app%d was healthy but adapted", i)
		}
	}
	if stats := k.ManagerStats(); stats.Epochs != int(k.Epochs()) {
		t.Errorf("manager epochs %d != kernel epochs %d", stats.Epochs, k.Epochs())
	}
}

// TestKernelFlushToleratesStragglers: a stalled app must not wedge the
// other apps' epochs.
func TestKernelFlushToleratesStragglers(t *testing.T) {
	k := NewKernel(testManager(2))
	gen := simhpc.NewWorkloadGen(17)
	var genMu sync.Mutex
	mkWorkload := func(delay time.Duration) Workload {
		return func() ([]*simhpc.Task, error) {
			if delay > 0 {
				time.Sleep(delay)
			}
			genMu.Lock()
			defer genMu.Unlock()
			return gen.Mix(1, 1, 1, 1, 4), nil
		}
	}
	if _, err := k.Attach(AppSpec{Name: "fast", Workload: mkWorkload(0)}); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Attach(AppSpec{Name: "slow", Workload: mkWorkload(400 * time.Millisecond)}); err != nil {
		t.Fatal(err)
	}
	if err := k.Start(context.Background(), Options{Flush: 10 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for k.Epochs() < 6 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	k.Stop()
	if k.Epochs() < 6 {
		t.Fatalf("stalled app wedged the kernel: %d epochs", k.Epochs())
	}
	totals := k.TotalsPerApp()
	if totals["fast"] <= totals["slow"] {
		t.Errorf("fast app should outpace slow: %v", totals)
	}
}

// TestKernelRestart: Stop then Start again reuses the kernel.
func TestKernelRestart(t *testing.T) {
	k := NewKernel(testManager(2))
	gen := simhpc.NewWorkloadGen(23)
	if _, err := k.Attach(simpleSpec("a", gen, 2)); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		if err := k.Start(context.Background(), Options{Flush: 10 * time.Millisecond}); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		want := k.Epochs() + 3
		deadline := time.Now().Add(5 * time.Second)
		for k.Epochs() < want && time.Now().Before(deadline) {
			time.Sleep(2 * time.Millisecond)
		}
		k.Stop()
		if k.Epochs() < want {
			t.Fatalf("round %d: epochs %d < %d", round, k.Epochs(), want)
		}
	}
	// Synchronous driving still works after concurrent rounds.
	if _, err := k.RunEpoch(60); err != nil {
		t.Fatal(err)
	}
}

// TestKernelScratchReuseAcrossRestarts: the epoch engine's reused
// scratch buffers (merged-task slice, fan-out contributions, per-app
// done channels) must not leak state across Start/Stop cycles or
// between the two driving modes, and a published EpochResult must stay
// immutable once later epochs run.
func TestKernelScratchReuseAcrossRestarts(t *testing.T) {
	k := NewKernel(testManager(4))
	const nApps = 6 // above the parallel fan-out threshold
	for i := 0; i < nApps; i++ {
		gen := simhpc.NewWorkloadGen(uint64(31 + i))
		if _, err := k.Attach(simpleSpec(fmt.Sprintf("app%d", i), gen, 1+i%3)); err != nil {
			t.Fatal(err)
		}
	}

	// Sync epochs before, between and after concurrent rounds.
	prev, err := k.RunEpoch(60)
	if err != nil {
		t.Fatal(err)
	}
	snapshot := make(map[string]float64, len(prev.PerApp))
	for name, g := range prev.PerApp {
		snapshot[name] = g
	}
	for round := 0; round < 2; round++ {
		if err := k.Start(context.Background(), Options{Flush: 5 * time.Millisecond}); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		want := k.Epochs() + 4
		deadline := time.Now().Add(5 * time.Second)
		for k.Epochs() < want && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		k.Stop()
		if k.Epochs() < want {
			t.Fatalf("round %d: epochs %d < %d", round, k.Epochs(), want)
		}
		res, err := k.RunEpoch(60)
		if err != nil {
			t.Fatalf("round %d: sync after concurrent: %v", round, err)
		}
		if len(res.PerApp) != nApps {
			t.Fatalf("round %d: %d contributors, want %d (stale scratch?)", round, len(res.PerApp), nApps)
		}
		for name, g := range res.PerApp {
			if g <= 0 {
				t.Errorf("round %d: %s offered no work", round, name)
			}
		}
	}
	// The first epoch's result must not have been clobbered by any of
	// the later epochs reusing kernel scratch.
	if len(prev.PerApp) != len(snapshot) {
		t.Fatalf("published PerApp mutated: %v vs %v", prev.PerApp, snapshot)
	}
	for name, g := range snapshot {
		if prev.PerApp[name] != g {
			t.Errorf("published PerApp[%s] changed: %v -> %v", name, g, prev.PerApp[name])
		}
	}
	totals := k.TotalsPerApp()
	for i := 0; i < nApps; i++ {
		if totals[fmt.Sprintf("app%d", i)] <= 0 {
			t.Errorf("app%d lost its totals across restarts: %v", i, totals)
		}
	}
}

// TestKernelSyncEpochAllocs pins the tentpole property: a synchronous
// epoch's kernel-side overhead stays within a small constant allocation
// budget regardless of app count (the workloads themselves still
// allocate their tasks).
func TestKernelSyncEpochAllocs(t *testing.T) {
	const nApps = 16
	k := NewKernel(testManager(4))
	for i := 0; i < nApps; i++ {
		name := fmt.Sprintf("app%d", i)
		if _, err := k.Attach(AppSpec{Name: name}); err != nil { // no Workload: kernel overhead only
			t.Fatal(err)
		}
	}
	if _, err := k.RunEpoch(60); err != nil { // warm scratch buffers
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := k.RunEpoch(60); err != nil {
			t.Fatal(err)
		}
	})
	// Fan-out workers + the escaping PerApp map + the manager's cap
	// plan are the only per-epoch allocations; anything growing with
	// nApps would land far above this budget.
	if allocs > 24 {
		t.Errorf("sync epoch allocates %.0f objects for %d apps, want <= 24", allocs, nApps)
	}
}
