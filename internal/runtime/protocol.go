package runtime

import (
	"fmt"
	"math"
	goruntime "runtime"
	"sync/atomic"

	"repro/internal/rtrm"
)

// EpochProtocol selects how the kernel commits backend epochs and how
// status readers synchronize with those commits — the CCBench-style
// axis of this package: several concurrency-control protocols under
// one harness, switchable per kernel so they can be compared on the
// same workload (benchmark K8).
//
// All three protocols share the same commit invariant: every backend
// epoch runs under that backend's own commit mutex and republishes the
// backend's stats seqlock cell before releasing it. They differ in how
// much cross-backend synchronization surrounds that commit and in how
// readers take their snapshots:
//
//   - Barrier: the pre-protocol design, kept as the baseline. All
//     contributing backends commit inside one global serial section
//     (epochMu) per kernel epoch — backends run concurrently inside
//     the barrier, but epoch N+1 on any backend waits for epoch N on
//     every backend. Status readers lock each backend's commit mutex.
//   - PerBackendClock: each backend advances its own epoch clock. The
//     concurrent mode dispatches every backend's share of a kernel
//     epoch to a per-backend commit goroutine with a bounded run-ahead
//     of two epochs, so epochs on b0 never wait on b2; membership
//     generations remain the only global synchronization point (a
//     generation roll quiesces all clocks, which is also the forced
//     Barrier fallback while a placement migration is in flight).
//     Status readers still lock each backend's commit mutex.
//   - OptimisticMerge: commits exactly as PerBackendClock, but status
//     readers (ManagerStats, BackendStats — the control plane's
//     /v1/epochs and SSE path) take Silo-style optimistic snapshots
//     from the per-backend seqlock cells: read the version, read the
//     fields, retry if the version was odd or moved. Readers touch no
//     commit lock at all (see Kernel.CommitLockReads).
type EpochProtocol int32

const (
	// Barrier is the global epoch barrier — the default.
	Barrier EpochProtocol = iota
	// PerBackendClock gives each backend an independent epoch clock.
	PerBackendClock
	// OptimisticMerge is PerBackendClock plus lock-free seqlock reads.
	OptimisticMerge
)

// String returns the flag-friendly protocol name.
func (p EpochProtocol) String() string {
	switch p {
	case Barrier:
		return "barrier"
	case PerBackendClock:
		return "clock"
	case OptimisticMerge:
		return "optimistic"
	}
	return fmt.Sprintf("EpochProtocol(%d)", int32(p))
}

// ParseEpochProtocol parses a protocol name as accepted by the
// antarex-serve -protocol flag.
func ParseEpochProtocol(s string) (EpochProtocol, error) {
	switch s {
	case "barrier", "":
		return Barrier, nil
	case "clock", "per-backend-clock":
		return PerBackendClock, nil
	case "optimistic", "optimistic-merge":
		return OptimisticMerge, nil
	}
	return Barrier, fmt.Errorf("runtime: unknown epoch protocol %q (want barrier, clock or optimistic)", s)
}

// SetProtocol selects the epoch commit protocol. Safe to call while
// the kernel is running: like a placement change, the new protocol
// takes effect at the next membership-generation roll, with the
// current generation's in-flight epochs drained first. Synchronous
// RunEpoch picks up the protocol on its next call.
func (k *Kernel) SetProtocol(p EpochProtocol) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.protocol = p
	if !k.running {
		// No engine to roll: readers may adopt the new discipline now.
		k.protoActive.Store(int32(p))
	}
	k.membershipChangedLocked()
}

// Protocol returns the configured epoch commit protocol.
func (k *Kernel) Protocol() EpochProtocol {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.protocol
}

// CommitLockReads counts status reads (ManagerStats, BackendStats)
// that acquired a commit lock to take their snapshot. Under Barrier
// and PerBackendClock every status read increments it once; under
// OptimisticMerge status reads go through the seqlock cells and the
// counter stays put — the property benchmark K8 trades on and the
// control-plane test asserts.
func (k *Kernel) CommitLockReads() int64 { return k.commitLockReads.Load() }

// statsCell is a per-backend seqlock publishing the backend's
// cumulative stats and placement app count to lock-free readers. The
// writer is the (per-backend serialized) commit path plus the
// quiescent-only placement refresh, so writes never race each other;
// ver is odd while a write is in progress. Fields are atomics so the
// race detector sees the reader/writer overlap as synchronized — the
// version protocol is what makes the multi-field snapshot consistent.
// The cell's eight words fill exactly one 64-byte cache line; the pads
// keep neighbouring backendSlot fields (seq, the commit mutex) off that
// line, so OptimisticMerge readers polling ver do not ping-pong the
// line the commit path is writing through unrelated fields.
type statsCell struct {
	_         [64]byte
	ver       atomic.Uint64
	epochs    atomic.Int64
	work      atomic.Uint64 // math.Float64bits
	deferred  atomic.Uint64
	energy    atomic.Uint64
	thermal   atomic.Int64
	demotions atomic.Int64
	apps      atomic.Int64
	_         [64]byte
}

// publishStats republishes the backend's cumulative counters. Called
// under the backend's commit mutex.
func (c *statsCell) publishStats(s rtrm.Stats) {
	c.ver.Add(1) // odd: write in progress
	c.epochs.Store(int64(s.Epochs))
	c.work.Store(math.Float64bits(s.WorkGFlop))
	c.deferred.Store(math.Float64bits(s.DeferredGFlop))
	c.energy.Store(math.Float64bits(s.EnergyJ))
	c.thermal.Store(int64(s.ThermalEvents))
	c.demotions.Store(int64(s.CapDemotions))
	c.ver.Add(1)
}

// publishApps republishes the placement app count. Called only while
// the epoch engine is quiescent (placement refresh), so it cannot
// interleave with publishStats.
func (c *statsCell) publishApps(n int) {
	c.ver.Add(1)
	c.apps.Store(int64(n))
	c.ver.Add(1)
}

// snapshot returns a consistent (stats, apps) pair, retrying while a
// write is in progress or completed mid-read.
func (c *statsCell) snapshot() (rtrm.Stats, int) {
	for {
		v1 := c.ver.Load()
		if v1&1 != 0 {
			goruntime.Gosched() // writer mid-publish: give it the P
			continue
		}
		s := rtrm.Stats{
			Epochs:        int(c.epochs.Load()),
			WorkGFlop:     math.Float64frombits(c.work.Load()),
			DeferredGFlop: math.Float64frombits(c.deferred.Load()),
			EnergyJ:       math.Float64frombits(c.energy.Load()),
			ThermalEvents: int(c.thermal.Load()),
			CapDemotions:  int(c.demotions.Load()),
		}
		apps := int(c.apps.Load())
		if c.ver.Load() == v1 {
			return s, apps
		}
	}
}
