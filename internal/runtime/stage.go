package runtime

import (
	"fmt"
	"runtime/debug"
	"sync"

	goruntime "runtime"

	"repro/internal/rtrm"
	"repro/internal/simhpc"
)

// Sub-stage pipelining: instead of running each backend's epoch as one
// opaque RunEpoch call on its own goroutine, the multi-backend barrier
// path decomposes the epoch into the manager's three sub-stages
// (begin+sweep / dispatch / commit) and runs them on a small worker
// pool. A worker finishing b0's sweep can pick up b2's dispatch while
// another worker commits b1 — a slow power-cap fit on one backend no
// longer delays another backend's dispatch, and the goroutine count is
// min(GOMAXPROCS, active backends) instead of one per backend.

// EpochStager is the staged form of a Backend's epoch: the kernel
// drives the sub-stages itself when the backend supports it.
// *rtrm.Manager implements it. The contract: stages run in order, all
// between the kernel's acquisition and release of the backend's commit
// mutex; only DispatchEpoch may use internal parallelism (bounded by
// workers); the committed report must equal what RunEpoch returns for
// the same inputs.
type EpochStager interface {
	BeginEpoch(dt float64, offered []*simhpc.Task)
	SweepEpoch()
	DispatchEpoch(workers int)
	CommitEpoch() rtrm.EpochReport
}

// allStaged reports whether every active slot can run the sub-stage
// pipeline.
func allStaged(bks []*backendSlot) bool {
	for _, bs := range bks {
		if bs.active && bs.staged == nil {
			return false
		}
	}
	return true
}

// executeStaged runs the active backends' epochs through the sub-stage
// pool. Slots cycle through the jobs channel once per stage: a worker
// pops a slot, advances it one stage, and re-enqueues it (the channel
// handoff publishes the stage's writes to whichever worker runs the
// next one). The per-slot commit mutex is locked in the first stage and
// unlocked in the last — by design across goroutines, which sync.Mutex
// permits. Panics anywhere in a stage fail the slot exactly like
// runCommit's guard: health → Failed, mutex released, committed stays
// false, and the pool moves on. On return every active slot has either
// committed (report + seq bump + stats published) or failed.
func (k *Kernel) executeStaged(dt float64, bks []*backendSlot, nActive, dispatchWorkers int) {
	workers := int(k.topoGMP.Load())
	if workers <= 0 {
		workers = goruntime.GOMAXPROCS(0)
	}
	if workers > nActive {
		workers = nActive
	}
	// Each slot is in the channel or held by a worker, never both, so
	// cap nActive means re-enqueues cannot block.
	jobs := make(chan *backendSlot, nActive)
	var pending sync.WaitGroup
	pending.Add(nActive)
	for _, bs := range bks {
		if bs.active {
			bs.stage = 0
			bs.stageLocked = false
			jobs <- bs
		}
	}
	var pool sync.WaitGroup
	for w := 0; w < workers; w++ {
		pool.Add(1)
		go func() {
			defer pool.Done()
			for bs := range jobs {
				if k.runStage(bs, dt, dispatchWorkers) {
					pending.Done()
				} else {
					jobs <- bs
				}
			}
		}()
	}
	pending.Wait()
	close(jobs)
	pool.Wait()
}

// runStage advances one slot one sub-stage; finished=true retires the
// slot from the pool (committed or failed).
func (k *Kernel) runStage(bs *backendSlot, dt float64, dispatchWorkers int) (finished bool) {
	defer func() {
		if r := recover(); r != nil {
			if bs.stageLocked {
				bs.stageLocked = false
				bs.commitMu.Unlock()
			}
			finished = true
			k.setBackendHealth(bs, BackendFailed, fmt.Sprintf("backend panic: %v\n%s", r, debug.Stack()))
		}
	}()
	switch bs.stage {
	case 0:
		bs.commitMu.Lock()
		bs.stageLocked = true
		bs.staged.BeginEpoch(dt, bs.tasks)
		bs.staged.SweepEpoch()
	case 1:
		bs.staged.DispatchEpoch(dispatchWorkers)
	default:
		bs.report = bs.staged.CommitEpoch()
		bs.cell.publishStats(bs.be.Stats())
		bs.committed = true
		bs.stageLocked = false
		bs.commitMu.Unlock()
		bs.seq.Add(1)
		return true
	}
	bs.stage++
	return false
}
