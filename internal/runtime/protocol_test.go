package runtime

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/monitor"
	"repro/internal/rtrm"
	"repro/internal/simhpc"
)

func TestParseEpochProtocol(t *testing.T) {
	for in, want := range map[string]EpochProtocol{
		"":                  Barrier,
		"barrier":           Barrier,
		"clock":             PerBackendClock,
		"per-backend-clock": PerBackendClock,
		"optimistic":        OptimisticMerge,
		"optimistic-merge":  OptimisticMerge,
	} {
		got, err := ParseEpochProtocol(in)
		if err != nil || got != want {
			t.Errorf("ParseEpochProtocol(%q) = %v, %v; want %v", in, got, err, want)
		}
		if got.String() == "" {
			t.Errorf("%v has no name", got)
		}
	}
	if _, err := ParseEpochProtocol("2PL"); err == nil {
		t.Error("unknown protocol accepted")
	}
}

// TestStatsCellTornSnapshot: a reader that arrives while the seqlock
// version is odd (write in progress) must not return the half-written
// fields — it spins until the writer finishes, then returns the
// post-write values.
func TestStatsCellTornSnapshot(t *testing.T) {
	var c statsCell
	c.publishStats(rtrm.Stats{Epochs: 1, WorkGFlop: 10})
	c.publishApps(3)

	// Open a write by hand: version goes odd, then the fields change
	// one at a time — the torn state snapshot must never expose.
	c.ver.Add(1)
	c.epochs.Store(2)

	got := make(chan rtrm.Stats, 1)
	go func() {
		s, _ := c.snapshot()
		got <- s
	}()
	select {
	case s := <-got:
		t.Fatalf("snapshot returned mid-write: %+v", s)
	case <-time.After(50 * time.Millisecond):
	}

	// Complete the write; the parked reader must come back with the
	// finished values, not the torn ones.
	c.work.Store(math.Float64bits(20))
	c.ver.Add(1)
	select {
	case s := <-got:
		if s.Epochs != 2 || s.WorkGFlop != 20 {
			t.Errorf("post-write snapshot: %+v, want epochs=2 work=20", s)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("snapshot never returned after write completed")
	}
}

// TestStatsCellConsistency is the seqlock stress: one writer publishes
// correlated fields (work = 2×epochs, thermal = 3×epochs) as fast as it
// can while readers snapshot concurrently — any snapshot mixing two
// publishes breaks the correlation.
func TestStatsCellConsistency(t *testing.T) {
	var c statsCell
	done := make(chan struct{})
	var wrote atomic.Int64
	go func() {
		defer close(done)
		for n := int64(1); n <= 20000; n++ {
			c.publishStats(rtrm.Stats{
				Epochs:        int(n),
				WorkGFlop:     float64(2 * n),
				ThermalEvents: int(3 * n),
			})
			wrote.Store(n)
		}
	}()
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				s, _ := c.snapshot()
				n := int64(s.Epochs)
				if s.WorkGFlop != float64(2*n) || s.ThermalEvents != int(3*n) {
					t.Errorf("torn snapshot: %+v", s)
					return
				}
				select {
				case <-done:
					return
				default:
				}
			}
		}()
	}
	wg.Wait()
	<-done
	if s, _ := c.snapshot(); int64(s.Epochs) != wrote.Load() {
		t.Errorf("final snapshot epochs %d, want %d", s.Epochs, wrote.Load())
	}
}

// protocolKernel builds a 2-backend kernel with two pinned apps and
// the given protocol selected.
func protocolKernel(t *testing.T, proto EpochProtocol) *Kernel {
	t.Helper()
	k := NewKernel(testManagerAt(2, 15), testManagerAt(2, 15))
	k.SetProtocol(proto)
	for i := 0; i < 2; i++ {
		spec := pinnedSpec(fmt.Sprintf("app%d", i), fmt.Sprintf("b%d", i), simhpc.NewWorkloadGen(uint64(7+i)), 2)
		if _, err := k.Attach(spec); err != nil {
			t.Fatal(err)
		}
	}
	return k
}

// TestOptimisticReadsTakeNoCommitLocks asserts the property K8 trades
// on: under OptimisticMerge, status reads (ManagerStats, BackendStats —
// the /v1/epochs path) acquire zero commit locks; under Barrier and
// PerBackendClock every status read takes one.
func TestOptimisticReadsTakeNoCommitLocks(t *testing.T) {
	k := protocolKernel(t, OptimisticMerge)
	for e := 0; e < 3; e++ {
		if _, err := k.RunEpoch(60); err != nil {
			t.Fatal(err)
		}
	}
	base := k.CommitLockReads()
	var work float64
	for i := 0; i < 50; i++ {
		work = k.ManagerStats().WorkGFlop
		_ = k.BackendStats()
	}
	if work <= 0 {
		t.Error("optimistic reads saw no committed work")
	}
	if got := k.CommitLockReads() - base; got != 0 {
		t.Errorf("optimistic status reads took %d commit locks, want 0", got)
	}
	for _, proto := range []EpochProtocol{Barrier, PerBackendClock} {
		k.SetProtocol(proto)
		base = k.CommitLockReads()
		_ = k.ManagerStats()
		_ = k.BackendStats()
		if got := k.CommitLockReads() - base; got != 2 {
			t.Errorf("%s: status reads took %d commit locks, want 2", proto, got)
		}
	}
}

// TestBackendSeqAdvancesPerCommit: every backend commit bumps that
// backend's sequence number, under every protocol — the counter the
// control plane's SSE coalescing keys on.
func TestBackendSeqAdvancesPerCommit(t *testing.T) {
	for _, proto := range []EpochProtocol{Barrier, PerBackendClock, OptimisticMerge} {
		t.Run(proto.String(), func(t *testing.T) {
			k := protocolKernel(t, proto)
			const epochs = 4
			for e := 0; e < epochs; e++ {
				if _, err := k.RunEpoch(60); err != nil {
					t.Fatal(err)
				}
			}
			for _, st := range k.BackendStats() {
				if st.Seq != epochs {
					t.Errorf("%s: seq %d, want %d (one per commit)", st.Name, st.Seq, epochs)
				}
			}
		})
	}
}

// gatedBackend wraps a Backend so a test can hold one backend's commit
// open: once armed, the next RunEpoch announces itself on entered and
// blocks until gate closes.
type gatedBackend struct {
	Backend
	armed   atomic.Bool
	entered chan struct{}
	gate    chan struct{}
}

func (g *gatedBackend) RunEpoch(dt float64, offered []*simhpc.Task) rtrm.EpochReport {
	if g.armed.CompareAndSwap(true, false) {
		g.entered <- struct{}{}
		<-g.gate
	}
	return g.Backend.RunEpoch(dt, offered)
}

// TestEpochSignalPerBackendCommit is the missed-wakeup regression test
// for the barrier-free signal path. Under a per-backend-clock engine
// the dispatcher advances the global epoch counter when it hands a
// batch to a backend lane, possibly epochs before that backend commits.
// If epoch signals fired from the dispatcher (keyed to the global
// counter), a subscriber that drained its channel while a backend's
// commit was stalled would never learn about that commit — the counter
// already moved. The fix is that only backend workers signal, once per
// commit. The test stalls b0's commit until the pipeline is quiet,
// drains every signal, then releases the commit and requires a fresh
// wakeup plus a b0 sequence advance. OptimisticMerge keeps the status
// reads lock-free so the test can observe Seq while b0's commit mutex
// is held.
func TestEpochSignalPerBackendCommit(t *testing.T) {
	gated := &gatedBackend{
		Backend: testManagerAt(2, 15),
		entered: make(chan struct{}, 1),
		gate:    make(chan struct{}),
	}
	k := NewKernel()
	if err := k.AddBackend("b0", gated); err != nil {
		t.Fatal(err)
	}
	if err := k.AddBackend("b1", testManagerAt(2, 15)); err != nil {
		t.Fatal(err)
	}
	k.SetProtocol(OptimisticMerge)
	for i := 0; i < 2; i++ {
		spec := pinnedSpec(fmt.Sprintf("app%d", i), fmt.Sprintf("b%d", i), simhpc.NewWorkloadGen(uint64(7+i)), 2)
		if _, err := k.Attach(spec); err != nil {
			t.Fatal(err)
		}
	}
	var release sync.Once
	open := func() { release.Do(func() { close(gated.gate) }) }
	defer open()

	if err := k.Start(context.Background(), Options{Flush: 2 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	defer k.Stop()
	waitFor(t, "warm-up epochs", func() bool { return k.Epochs() >= 3 })

	ch, cancel := k.EpochSignal()
	defer cancel()
	gated.armed.Store(true)
	select {
	case <-gated.entered:
	case <-time.After(10 * time.Second):
		t.Fatal("b0 never entered its gated commit")
	}
	// b0's worker is inside RunEpoch holding b0's commit mutex. The
	// dispatcher runs ahead a bounded number of epochs, b1 drains what
	// it was handed, then the pipeline is still. Drain every signal
	// from that tail.
	for quiet := false; !quiet; {
		select {
		case <-ch:
		case <-time.After(300 * time.Millisecond):
			quiet = true
		}
	}
	seqStalled := int64(-1)
	for _, st := range k.BackendStats() {
		if st.Name == "b0" {
			seqStalled = st.Seq
		}
	}
	epochsStalled := k.Epochs()

	open() // b0 commits now
	select {
	case <-ch:
	case <-time.After(10 * time.Second):
		t.Fatalf("missed wakeup: b0's commit after the stall produced no signal (epochs %d)", k.Epochs())
	}
	waitFor(t, "b0 seq advance", func() bool {
		for _, st := range k.BackendStats() {
			if st.Name == "b0" {
				return st.Seq > seqStalled
			}
		}
		return false
	})
	// Sanity: the global counter had indeed run ahead of b0's commit
	// while it was stalled, so the wakeup cannot be attributed to an
	// epoch-counter edge.
	if epochsStalled <= seqStalled {
		t.Errorf("global epochs %d did not run ahead of b0 seq %d: stall never decoupled them", epochsStalled, seqStalled)
	}
	if err := k.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestProtocolMembershipChurnRace is the membership × protocol -race
// matrix: per protocol, four churners attach/detach pinned and
// unhinted apps against a 2-backend kernel while telemetry flows and a
// fifth goroutine flips the kernel between all three protocols — every
// flip rolls a generation, which is exactly the forced-Barrier
// quiesce/migration path.
func TestProtocolMembershipChurnRace(t *testing.T) {
	for _, proto := range []EpochProtocol{Barrier, PerBackendClock, OptimisticMerge} {
		t.Run(proto.String(), func(t *testing.T) {
			k := NewKernel(testManagerAt(2, 15), testManagerAt(2, 15))
			k.SetProtocol(proto)
			baseInbox := &Inbox{}
			baseSpec := simpleSpec("base", simhpc.NewWorkloadGen(51), 2)
			baseSpec.Sensor = baseInbox
			if _, err := k.Attach(baseSpec); err != nil {
				t.Fatal(err)
			}
			if err := k.Start(context.Background(), Options{Flush: 2 * time.Millisecond}); err != nil {
				t.Fatal(err)
			}
			defer k.Stop()
			// The helpers get their own context: canceling it stops the
			// producer, reader and flipper without tearing the kernel down.
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()

			go func() {
				for ctx.Err() == nil {
					baseInbox.Push(monitor.MetricLatency, 0.2)
					time.Sleep(200 * time.Microsecond)
				}
			}()
			readerDone := make(chan struct{})
			go func() {
				defer close(readerDone)
				for ctx.Err() == nil {
					_ = k.ManagerStats()
					_ = k.BackendStats()
					_ = k.TotalsPerApp()
					time.Sleep(500 * time.Microsecond)
				}
			}()
			flipDone := make(chan struct{})
			go func() {
				defer close(flipDone)
				protos := []EpochProtocol{Barrier, PerBackendClock, OptimisticMerge}
				for i := 0; ctx.Err() == nil; i++ {
					k.SetProtocol(protos[i%len(protos)])
					time.Sleep(3 * time.Millisecond)
				}
			}()

			const churners = 4
			const cycles = 10
			var wg sync.WaitGroup
			for c := 0; c < churners; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					name := fmt.Sprintf("churn%d", c)
					hint := ""
					if c%2 == 0 {
						hint = fmt.Sprintf("b%d", c/2)
					}
					gen := simhpc.NewWorkloadGen(uint64(60 + c))
					for i := 0; i < cycles; i++ {
						if _, err := k.Attach(pinnedSpec(name, hint, gen, 1)); err != nil {
							t.Errorf("churn attach %s: %v", name, err)
							return
						}
						time.Sleep(time.Duration(c+1) * time.Millisecond)
						if err := k.Detach(name); err != nil {
							t.Errorf("churn detach %s: %v", name, err)
							return
						}
					}
				}(c)
			}
			wg.Wait()
			cancel()
			<-flipDone
			<-readerDone
			k.SetProtocol(proto) // settle back to the subtest's protocol
			waitServed(t, k)
			epochs := k.Epochs()
			waitFor(t, "epochs after churn", func() bool { return k.Epochs() > epochs })
			if err := k.Err(); err != nil {
				t.Fatal(err)
			}
			if apps := k.Apps(); len(apps) != 1 || apps[0].Name() != "base" {
				t.Errorf("leftover membership after churn: %d apps", len(apps))
			}
			totals := k.TotalsPerApp()
			for c := 0; c < churners; c++ {
				if totals[fmt.Sprintf("churn%d", c)] <= 0 {
					t.Errorf("churn%d's drained work was lost across detach", c)
				}
			}
		})
	}
}

// TestKernelDetachDrainPerBackendProtocols re-runs the per-backend
// detach-drain guarantee (an app detached with its workload mid-flight
// on one backend drains into that backend's final epoch) under the
// barrier-free protocols — the drain path is the generation wind-down,
// which is the protocols' one global synchronization point.
func TestKernelDetachDrainPerBackendProtocols(t *testing.T) {
	for _, proto := range []EpochProtocol{PerBackendClock, OptimisticMerge} {
		t.Run(proto.String(), func(t *testing.T) {
			k := NewKernel(testManagerAt(2, 15), testManagerAt(2, 15))
			k.SetProtocol(proto)
			gen := simhpc.NewWorkloadGen(29)
			var genMu sync.Mutex
			started := make(chan struct{}, 64)
			slow := AppSpec{
				Name:    "slow",
				Backend: "b1",
				Workload: func() ([]*simhpc.Task, error) {
					select {
					case started <- struct{}{}:
					default:
					}
					time.Sleep(50 * time.Millisecond)
					genMu.Lock()
					defer genMu.Unlock()
					return gen.Mix(1, 1, 1, 1, 4), nil
				},
			}
			if _, err := k.Attach(slow); err != nil {
				t.Fatal(err)
			}
			fast := AppSpec{
				Name:    "fast",
				Backend: "b0",
				Workload: func() ([]*simhpc.Task, error) {
					genMu.Lock()
					defer genMu.Unlock()
					return gen.Mix(1, 1, 1, 1, 4), nil
				},
			}
			if _, err := k.Attach(fast); err != nil {
				t.Fatal(err)
			}
			if err := k.Start(context.Background(), Options{Flush: 5 * time.Millisecond}); err != nil {
				t.Fatal(err)
			}
			defer k.Stop()
			<-started
			if err := k.Detach("slow"); err != nil {
				t.Fatal(err)
			}
			waitServed(t, k)
			epochs := k.Epochs()
			waitFor(t, "survivor epochs", func() bool { return k.Epochs() >= epochs+5 })
			if k.TotalsPerApp()["slow"] <= 0 {
				t.Error("detached app's drained work was dropped")
			}
			var b1 BackendStats
			for _, st := range k.BackendStats() {
				if st.Name == "b1" {
					b1 = st
				}
			}
			if b1.WorkGFlop <= 0 {
				t.Errorf("b1 never ran the detaching app's drained batch: %+v", b1)
			}
			if k.TotalsPerApp()["fast"] <= 0 {
				t.Error("survivor contributed no work")
			}
			if err := k.Err(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestProtocolsAgreeOnTotals: the same deterministic workload run
// under each protocol lands the same cumulative work — protocol choice
// affects synchronization, never accounting.
func TestProtocolsAgreeOnTotals(t *testing.T) {
	totals := map[EpochProtocol]float64{}
	for _, proto := range []EpochProtocol{Barrier, PerBackendClock, OptimisticMerge} {
		k := protocolKernel(t, proto)
		for e := 0; e < 5; e++ {
			if _, err := k.RunEpoch(60); err != nil {
				t.Fatal(err)
			}
		}
		var sum float64
		for _, v := range k.TotalsPerApp() {
			sum += v
		}
		totals[proto] = sum
		if sum <= 0 {
			t.Fatalf("%s: no work accounted", proto)
		}
	}
	if totals[PerBackendClock] != totals[Barrier] || totals[OptimisticMerge] != totals[Barrier] {
		t.Errorf("protocols disagree on totals: %v", totals)
	}
}
