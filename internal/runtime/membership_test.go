package runtime

import (
	"context"
	"fmt"
	goruntime "runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/simhpc"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// waitServed waits until the concurrent loops serve the current
// membership epoch — the observable admission point of a live
// attach/detach.
func waitServed(t *testing.T, k *Kernel) {
	t.Helper()
	gen := k.Generation()
	waitFor(t, fmt.Sprintf("served generation %d", gen), func() bool {
		return k.ServedGeneration() >= gen
	})
}

// TestKernelLiveAttach: an app attached after Start is admitted at the
// next epoch boundary and starts contributing work, without stalling
// the apps that were already running.
func TestKernelLiveAttach(t *testing.T) {
	k := NewKernel(testManager(4))
	if _, err := k.Attach(simpleSpec("base", simhpc.NewWorkloadGen(7), 2)); err != nil {
		t.Fatal(err)
	}
	if err := k.Start(context.Background(), Options{Flush: 5 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	defer k.Stop()
	waitFor(t, "base epochs", func() bool { return k.Epochs() >= 3 })

	ctl, err := k.Attach(simpleSpec("late", simhpc.NewWorkloadGen(11), 2))
	if err != nil {
		t.Fatalf("live attach: %v", err)
	}
	waitServed(t, k)
	waitFor(t, "late app work", func() bool { return k.TotalsPerApp()["late"] > 0 })
	if ctl.Ticks() == 0 {
		t.Error("late app never ticked")
	}
	// The incumbent keeps making progress after the membership change.
	before := k.TotalsPerApp()["base"]
	waitFor(t, "base app progress", func() bool { return k.TotalsPerApp()["base"] > before })
	if err := k.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestKernelLiveDetach: detaching a running app stops its control loop
// at the generation boundary; the survivors keep their epochs, and the
// detached app's cumulative totals are retained.
func TestKernelLiveDetach(t *testing.T) {
	k := NewKernel(testManager(4))
	for _, name := range []string{"keep", "drop"} {
		if _, err := k.Attach(simpleSpec(name, simhpc.NewWorkloadGen(uint64(len(name))), 2)); err != nil {
			t.Fatal(err)
		}
	}
	dropCtl := k.App("drop")
	if err := k.Start(context.Background(), Options{Flush: 5 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	defer k.Stop()
	waitFor(t, "both apps working", func() bool {
		tp := k.TotalsPerApp()
		return tp["keep"] > 0 && tp["drop"] > 0
	})

	if err := k.Detach("drop"); err != nil {
		t.Fatalf("live detach: %v", err)
	}
	waitServed(t, k)
	// Once the new generation is served, the old loops are fully
	// quiesced: the detached controller's tick counter must freeze.
	ticksAtDetach := dropCtl.Ticks()
	epochsAtDetach := k.Epochs()
	waitFor(t, "post-detach epochs", func() bool { return k.Epochs() >= epochsAtDetach+5 })
	if got := dropCtl.Ticks(); got != ticksAtDetach {
		t.Errorf("detached app still ticking: %d -> %d", ticksAtDetach, got)
	}
	if k.App("drop") != nil {
		t.Error("detached app still attached")
	}
	if k.TotalsPerApp()["drop"] <= 0 {
		t.Error("detached app's totals were discarded")
	}
	if err := k.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestKernelDetachDuringDrain: detaching an app whose Workload is
// mid-flight must not deadlock or drop the batch it already submitted;
// the wind-down waits for the straggler, drains, and the next
// generation serves the survivors.
func TestKernelDetachDuringDrain(t *testing.T) {
	k := NewKernel(testManager(2))
	gen := simhpc.NewWorkloadGen(29)
	var genMu sync.Mutex
	started := make(chan struct{}, 64)
	slow := AppSpec{
		Name: "slow",
		Workload: func() ([]*simhpc.Task, error) {
			select {
			case started <- struct{}{}:
			default:
			}
			time.Sleep(50 * time.Millisecond)
			genMu.Lock()
			defer genMu.Unlock()
			return gen.Mix(1, 1, 1, 1, 4), nil
		},
	}
	if _, err := k.Attach(slow); err != nil {
		t.Fatal(err)
	}
	fast := AppSpec{
		Name: "fast",
		Workload: func() ([]*simhpc.Task, error) {
			genMu.Lock()
			defer genMu.Unlock()
			return gen.Mix(1, 1, 1, 1, 4), nil
		},
	}
	if _, err := k.Attach(fast); err != nil {
		t.Fatal(err)
	}
	if err := k.Start(context.Background(), Options{Flush: 5 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	defer k.Stop()
	<-started // the slow workload is in flight right now
	if err := k.Detach("slow"); err != nil {
		t.Fatal(err)
	}
	waitServed(t, k) // wind-down waited out the straggler without deadlock
	epochs := k.Epochs()
	waitFor(t, "survivor epochs", func() bool { return k.Epochs() >= epochs+5 })
	if k.TotalsPerApp()["fast"] <= 0 {
		t.Error("survivor contributed no work")
	}
	if err := k.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestKernelAttachCrossesShardThreshold: growing the live app set past
// 2·GOMAXPROCS forces the generation rebuild to collapse from per-app
// loops to shard loops; every app, old and new, must keep contributing
// across that re-balance.
func TestKernelAttachCrossesShardThreshold(t *testing.T) {
	k := NewKernel(testManager(4))
	nApps := 2*goruntime.GOMAXPROCS(0) + 2 // strictly past the per-app regime
	if _, err := k.Attach(simpleSpec("app0", simhpc.NewWorkloadGen(40), 1)); err != nil {
		t.Fatal(err)
	}
	if err := k.Start(context.Background(), Options{Flush: 5 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	defer k.Stop()
	for i := 1; i < nApps; i++ {
		if _, err := k.Attach(simpleSpec(fmt.Sprintf("app%d", i), simhpc.NewWorkloadGen(uint64(40+i)), 1)); err != nil {
			t.Fatalf("attach %d: %v", i, err)
		}
	}
	waitServed(t, k)
	waitFor(t, "all apps contributing", func() bool {
		tp := k.TotalsPerApp()
		for i := 0; i < nApps; i++ {
			if tp[fmt.Sprintf("app%d", i)] <= 0 {
				return false
			}
		}
		return true
	})
	if err := k.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestKernelMembershipChurnRace is the -race stress: several goroutines
// attach and detach their own apps while the kernel runs, telemetry
// producers push the whole time, and a base app must keep its epochs.
func TestKernelMembershipChurnRace(t *testing.T) {
	k := NewKernel(testManager(4))
	if _, err := k.Attach(simpleSpec("base", simhpc.NewWorkloadGen(51), 2)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := k.Start(ctx, Options{Flush: 2 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	defer k.Stop()

	const churners = 4
	const cycles = 15
	var wg sync.WaitGroup
	for c := 0; c < churners; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			name := fmt.Sprintf("churn%d", c)
			gen := simhpc.NewWorkloadGen(uint64(60 + c))
			for i := 0; i < cycles; i++ {
				ctl, err := k.Attach(simpleSpec(name, gen, 1))
				if err != nil {
					t.Errorf("churn attach %s: %v", name, err)
					return
				}
				ctl.Push("latency", 0.1) // poke the controller from outside its loop
				time.Sleep(time.Duration(c+1) * time.Millisecond)
				if err := k.Detach(name); err != nil {
					t.Errorf("churn detach %s: %v", name, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	waitServed(t, k)
	epochs := k.Epochs()
	waitFor(t, "epochs after churn", func() bool { return k.Epochs() > epochs })
	if err := k.Err(); err != nil {
		t.Fatal(err)
	}
	apps := k.Apps()
	if len(apps) != 1 || apps[0].Name() != "base" {
		names := make([]string, len(apps))
		for i, a := range apps {
			names[i] = a.Name()
		}
		t.Errorf("leftover membership after churn: %v", names)
	}
	if g, s := k.Generation(), k.ServedGeneration(); g != s {
		t.Errorf("generation %d not served (served %d) after quiesce", g, s)
	}
}

// TestKernelDetachSyncMode: membership ops also work against the
// synchronous driver — a detached app disappears from the next
// RunEpoch's contributors.
func TestKernelDetachSyncMode(t *testing.T) {
	k := NewKernel(testManager(2))
	for i := 0; i < 3; i++ {
		if _, err := k.Attach(simpleSpec(fmt.Sprintf("app%d", i), simhpc.NewWorkloadGen(uint64(70+i)), 2)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := k.RunEpoch(60)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerApp) != 3 {
		t.Fatalf("contributors before detach: %v", res.PerApp)
	}
	if err := k.Detach("app1"); err != nil {
		t.Fatal(err)
	}
	res, err = k.RunEpoch(60)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerApp) != 2 {
		t.Fatalf("contributors after detach: %v", res.PerApp)
	}
	if _, ok := res.PerApp["app1"]; ok {
		t.Error("detached app still contributing")
	}
}
