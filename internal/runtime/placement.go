package runtime

import (
	"sync"

	"repro/internal/rtrm"
	"repro/internal/simhpc"
)

// Backend is one resource-management domain the kernel can route epoch
// batches to — a per-partition or per-site rtrm.Manager, or anything
// else that can run a control epoch over an offered task list. The
// kernel serializes RunEpoch and Stats calls per backend (they run
// inside the epoch barrier), so implementations need no internal
// locking against the kernel; *rtrm.Manager implements Backend as-is.
type Backend interface {
	// RunEpoch executes one control epoch of dt simulated seconds over
	// the offered tasks and reports what happened.
	RunEpoch(dt float64, offered []*simhpc.Task) rtrm.EpochReport
	// Stats snapshots the backend's cumulative telemetry.
	Stats() rtrm.Stats
}

// AppPlacement describes one application to a placement policy.
type AppPlacement struct {
	// Name is the application name.
	Name string
	// Hint is the app's AppSpec.Backend placement hint ("" if none).
	Hint string
	// Current is the app's current backend index, or -1 before its
	// first placement.
	Current int
}

// BackendLoad is the placement-time view of one backend.
type BackendLoad struct {
	// Name is the backend's kernel-assigned name.
	Name string
	// Apps is the number of applications assigned to the backend at the
	// last placement refresh.
	Apps int
	// OfferedGFlop is the work offered to the backend in the most
	// recent epoch it ran (0 until the kernel has ≥ 2 backends: the
	// single-backend fast path does not maintain load telemetry).
	OfferedGFlop float64
	// DeferredFrac is an EWMA of the fraction of offered work the
	// backend deferred in recent epochs — the signal SLA-aware steering
	// watches.
	DeferredFrac float64
}

// Placement routes applications onto backends. Place is called with
// the full app set whenever placement must be (re)computed — at every
// membership generation roll in concurrent mode, and lazily before a
// synchronous epoch — and returns one backend index per app, in order.
// Out-of-range indices are clamped to the app's current backend (or
// backend 0). Place runs under the kernel's membership lock: it must
// not call back into the Kernel.
//
// An assignment holds for the whole generation: migrations land at
// generation boundaries only, with in-flight batches drained first, so
// an app never has epoch batches in flight on two backends at once.
type Placement interface {
	Place(apps []AppPlacement, backends []BackendLoad) []int
}

// EpochObserver is an optional Placement extension. When the kernel
// runs ≥ 2 backends, ObserveEpoch is called after every epoch with the
// fresh per-backend loads; returning true asks the kernel to roll a
// placement generation (a membership-epoch bump with an unchanged app
// set), at which point Place runs again and may migrate apps.
// ObserveEpoch calls are serialized by the epoch engine but may run
// concurrently with Place; stateful observers must lock.
type EpochObserver interface {
	ObserveEpoch(backends []BackendLoad) (refresh bool)
}

// clampBackend makes an arbitrary policy result safe to route on.
func clampBackend(idx, current, n int) int {
	if idx >= 0 && idx < n {
		return idx
	}
	if current >= 0 && current < n {
		return current
	}
	return 0
}

// backendIndex resolves a placement hint against the load view.
func backendIndex(backends []BackendLoad, name string) int {
	if name == "" {
		return -1
	}
	for i := range backends {
		if backends[i].Name == name {
			return i
		}
	}
	return -1
}

// fnv1a is the stable string hash behind the static partition: an
// app's home backend survives restarts and attach-order changes.
func fnv1a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// Pinned is the static partition policy: an app with a matching
// placement hint is pinned to that backend; every other app hashes to
// a stable home backend by name. Pinned never migrates — an app keeps
// its backend for life (even through backend additions, unless it was
// hash-placed and has never run: assignments stick once made).
type Pinned struct{}

// Place implements Placement.
func (Pinned) Place(apps []AppPlacement, backends []BackendLoad) []int {
	out := make([]int, len(apps))
	for i, a := range apps {
		switch {
		case backendIndex(backends, a.Hint) >= 0:
			out[i] = backendIndex(backends, a.Hint)
		case a.Current >= 0 && a.Current < len(backends):
			out[i] = a.Current // sticky: never migrate a placed app
		default:
			out[i] = int(fnv1a(a.Name) % uint32(len(backends)))
		}
	}
	return out
}

// LeastLoaded places each new app on the backend with the least
// pending work — the work offered in the backend's most recent epoch,
// projected forward for apps assigned earlier in the same refresh so a
// burst of registrations spreads instead of piling onto one backend.
// Placed apps stay put (no migration); hints win over load.
type LeastLoaded struct{}

// Place implements Placement.
func (LeastLoaded) Place(apps []AppPlacement, backends []BackendLoad) []int {
	out := make([]int, len(apps))
	load := make([]float64, len(backends))
	count := make([]int, len(backends))
	var totalLoad float64
	totalApps := 0
	for i, b := range backends {
		load[i] = b.OfferedGFlop
		count[i] = 0 // recount below: Current is the authority on assignment
		totalLoad += b.OfferedGFlop
		totalApps += b.Apps
	}
	// A new app's demand is unknown until it runs; charge it the fleet's
	// mean per-app load (1 GFlop when there is no history yet) so
	// projections move.
	meanLoad := 1.0
	if totalApps > 0 && totalLoad > 0 {
		meanLoad = totalLoad / float64(totalApps)
	}
	for _, a := range apps {
		if a.Current >= 0 && a.Current < len(backends) {
			count[a.Current]++
		}
	}
	for i, a := range apps {
		if j := backendIndex(backends, a.Hint); j >= 0 {
			out[i] = j
			continue
		}
		if a.Current >= 0 && a.Current < len(backends) {
			out[i] = a.Current // sticky
			continue
		}
		best := 0
		for j := 1; j < len(backends); j++ {
			if load[j] < load[best] || (load[j] == load[best] && count[j] < count[best]) {
				best = j
			}
		}
		out[i] = best
		load[best] += meanLoad
		count[best]++
	}
	return out
}

// SLAAware steers applications off backends whose epochs blow their
// service goal: a backend whose deferred-work fraction (EWMA, see
// BackendLoad.DeferredFrac) stays above MaxDeferredFrac for Patience
// consecutive epochs is over its goal, and at the next placement
// refresh one unpinned app is migrated from it to the healthiest
// backend. ObserveEpoch requests that refresh, so the migration rolls
// in at a membership generation boundary — in-flight batches drain
// first, and the app's controller (inbox, windows, counters) moves
// wholesale, dropping nothing. Cooldown epochs must pass between
// migrations, bounding steering churn.
//
// New apps place like LeastLoaded; hinted apps are pinned and never
// steered.
type SLAAware struct {
	// MaxDeferredFrac is the per-backend goal: the deferred-work EWMA a
	// backend may sustain before apps are steered off it (default 0.1).
	MaxDeferredFrac float64
	// Patience is how many consecutive over-goal epochs arm a
	// migration (default 4).
	Patience int
	// Cooldown is the minimum number of epochs between migrations
	// (default 8).
	Cooldown int

	mu       sync.Mutex
	over     map[string]int // backend → consecutive over-goal epochs
	cooldown int            // epochs until the next migration is allowed
	armed    string         // backend flagged for offload at next Place
}

// NewSLAAware returns an SLA-aware steering policy with the default
// patience and cooldown. maxDeferredFrac ≤ 0 selects the default goal.
func NewSLAAware(maxDeferredFrac float64) *SLAAware {
	return &SLAAware{MaxDeferredFrac: maxDeferredFrac}
}

func (s *SLAAware) defaults() (goal float64, patience, cooldown int) {
	goal = s.MaxDeferredFrac
	if goal <= 0 {
		goal = 0.1
	}
	patience = s.Patience
	if patience <= 0 {
		patience = 4
	}
	cooldown = s.Cooldown
	if cooldown <= 0 {
		cooldown = 8
	}
	return goal, patience, cooldown
}

// ObserveEpoch implements EpochObserver: it tracks per-backend goal
// violations and arms a migration when one persists past Patience.
func (s *SLAAware) ObserveEpoch(backends []BackendLoad) bool {
	goal, patience, cooldown := s.defaults()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.over == nil {
		s.over = make(map[string]int)
	}
	if s.cooldown > 0 {
		s.cooldown--
	}
	worst, worstFrac := "", goal
	for _, b := range backends {
		if b.DeferredFrac > goal {
			s.over[b.Name]++
			if s.over[b.Name] >= patience && b.Apps > 0 && b.DeferredFrac >= worstFrac {
				worst, worstFrac = b.Name, b.DeferredFrac
			}
		} else {
			delete(s.over, b.Name)
		}
	}
	if worst == "" || s.cooldown > 0 || s.armed != "" {
		return false
	}
	s.armed = worst
	s.cooldown = cooldown
	return true
}

// Place implements Placement: keep every placed app where it is,
// except that an armed over-goal backend sheds its first unpinned app
// to the backend with the lowest deferred fraction (ties: least
// offered work). Unplaced apps go least-loaded.
func (s *SLAAware) Place(apps []AppPlacement, backends []BackendLoad) []int {
	s.mu.Lock()
	armed := s.armed
	s.armed = ""
	s.mu.Unlock()

	out := LeastLoaded{}.Place(apps, backends)
	from := backendIndex(backends, armed)
	if from < 0 {
		return out
	}
	// Pick the healthiest destination: lowest deferred fraction, then
	// least offered work. If the over-goal backend is itself the
	// healthiest (all are worse), no migration happens.
	to := -1
	for j := range backends {
		if j == from {
			continue
		}
		if to < 0 || backends[j].DeferredFrac < backends[to].DeferredFrac ||
			(backends[j].DeferredFrac == backends[to].DeferredFrac && backends[j].OfferedGFlop < backends[to].OfferedGFlop) {
			to = j
		}
	}
	if to < 0 || backends[to].DeferredFrac >= backends[from].DeferredFrac {
		return out
	}
	for i, a := range apps {
		if out[i] == from && backendIndex(backends, a.Hint) < 0 {
			out[i] = to // migrate exactly one app per refresh
			break
		}
	}
	return out
}
