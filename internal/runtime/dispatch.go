package runtime

import (
	"sync"
	"sync/atomic"

	"repro/internal/simhpc"
)

// This file is the barrier-free concurrent epoch engine: under
// PerBackendClock and OptimisticMerge the per-generation executor
// stops running epochs itself and instead partitions each merged
// kernel epoch into per-backend batches, handing every backend's share
// to that backend's own commit goroutine. Each backend then advances
// its epoch clock independently — b0 committing epoch N+2 while b2 is
// still inside epoch N — bounded only by the lanes' run-ahead window.
// Membership generations stay the single global synchronization
// point: a generation roll closes every lane and waits for its worker,
// which both preserves the detach-drain guarantee per backend and is
// the forced Barrier fallback while a placement migration is in
// flight (migrations only land at generation rolls).

// backendBatch is one backend's share of one dispatched kernel epoch.
// Batches are lane-owned scratch, reused in rotation (see lane.bufs).
type backendBatch struct {
	epoch int64 // global epoch number this batch belongs to
	tasks []*simhpc.Task
	ctls  []*Controller // contributing controllers, for totals + OnEpoch
	gflop []float64     // offered GFlop per contributing controller
}

// lane is the dispatch path to one backend's commit goroutine. The
// run-ahead bound is two epochs in either mode — enough to pipeline,
// bounded enough that stats and steering stay fresh. Three rotating
// buffers make the reuse safe: batch n is only filled once the worker
// has finished batch n-2, so the buffer of batch n-3 — the one the
// fill reuses — is no longer referenced by anyone.
//
// In channel mode the handshake is the one-slot channel: the
// dispatcher blocks sending a second batch. In notify mode (wake.go
// treatment) the handshake is a published dispatch counter the worker
// spins-then-parks on, and a completion counter the dispatcher parks
// on for backpressure — per-epoch cost is one atomic publish per
// active lane plus tokens only for sides that actually parked, instead
// of a channel send (lock + wakeup) per lane per epoch.
type lane struct {
	ch   chan *backendBatch // channel mode only
	bufs [3]*backendBatch
	n    uint64 // batches filled/dispatched on this lane

	// Notify mode: dispatched is published by the dispatcher (equals
	// l.n), completed by the worker; closed + the parked/park pair
	// mirror the shard wake path's futex-style contract.
	dispatched atomic.Int64
	completed  atomic.Int64
	closed     atomic.Bool
	parked     atomic.Bool
	park       chan struct{}
}

// dispatchHub is the dispatcher's own park state in notify mode: any
// lane worker completing a batch hands the dispatcher a token when it
// is parked on backpressure.
type dispatchHub struct {
	parked atomic.Bool
	park   chan struct{}
}

// dispatchEpochs is the barrier-free executor body: consume merged
// epochs from the scheduler, partition each by the contributing apps'
// placed backends, and dispatch every active backend's batch to its
// lane. Task slices are copied out of the contribution buffer before
// returning to the channel receive, so the scheduler's double-buffer
// contract ("send completed ⇒ previous buffer free") still holds.
// When execCh closes (generation wind-down) the lanes close and the
// workers drain — no dispatched batch is ever dropped.
func (k *Kernel) dispatchEpochs(execCh <-chan []contribution, dt float64, bks []*backendSlot) {
	notify := k.epochWake != WakeChannel
	// Every lane commits concurrently, so each backend's manager gets
	// an equal share of the core budget for its dispatch fan-out.
	cw := k.commitWorkers(len(bks))
	hub := &dispatchHub{park: make(chan struct{}, 1)}
	lanes := make([]*lane, len(bks))
	var workers sync.WaitGroup
	for i, bs := range bks {
		l := &lane{}
		for j := range l.bufs {
			l.bufs[j] = &backendBatch{}
		}
		lanes[i] = l
		workers.Add(1)
		if notify {
			l.park = make(chan struct{}, 1)
			go k.laneWorker(bs, dt, l, hub, cw, &workers)
		} else {
			l.ch = make(chan *backendBatch, 1)
			go k.backendWorker(bs, dt, l.ch, cw, &workers)
		}
	}
	for contribs := range execCh {
		epoch := k.epochs.Add(1)
		// Resolve the reroute target for contributions whose placed
		// backend is unschedulable (failed, degraded, draining,
		// mid-roll). With no schedulable backend at all the no-healthy
		// policy decides: park until one heals or the generation winds
		// down, else write the epoch off — accounting the offered
		// totals either way, exactly once per contribution.
		fallback := firstSchedulable(bks)
		if fallback < 0 {
			fallback, _ = k.awaitSchedulable(k.parkCtx, bks)
		}
		if fallback < 0 {
			for _, c := range contribs {
				sum := 0.0
				for _, t := range c.tasks {
					sum += t.GFlop
				}
				c.ctl.addTotal(sum)
			}
			k.writeOff(contribs)
			k.signalEpoch()
			continue
		}
		for _, c := range contribs {
			idx := int(c.ctl.backend.Load())
			if idx < 0 || idx >= len(bks) || !bks[idx].schedulable() {
				idx = fallback // unplaced mid-roll or unhealthy target: reroute
			}
			l := lanes[idx]
			b := l.bufs[l.n%3]
			if b.epoch != epoch { // first contribution this epoch: reset the buffer
				if notify {
					// Filling batch n reuses the buffer of batch n-3:
					// safe once the worker finished batch n-2. Park on
					// the hub until this lane's clock catches up — the
					// same two-epoch run-ahead the channel send enforces.
					awaitLane(l, hub)
				}
				b.epoch = epoch
				b.tasks = b.tasks[:0]
				b.ctls = b.ctls[:0]
				b.gflop = b.gflop[:0]
			}
			sum := 0.0
			for _, t := range c.tasks {
				sum += t.GFlop
			}
			b.tasks = append(b.tasks, c.tasks...)
			b.ctls = append(b.ctls, c.ctl)
			b.gflop = append(b.gflop, sum)
		}
		for _, l := range lanes {
			b := l.bufs[l.n%3]
			if b.epoch != epoch {
				continue // no contributors on this backend this epoch
			}
			clear(b.tasks[len(b.tasks):cap(b.tasks)]) // no pinned stale tasks
			l.n++
			if notify {
				// One atomic publish; a token only if the worker parked.
				l.dispatched.Store(int64(l.n))
				if l.parked.Swap(false) {
					k.wakeOps.Add(1)
					select {
					case l.park <- struct{}{}:
					default:
					}
				}
			} else {
				// Blocks only while this backend is two epochs behind —
				// the run-ahead bound; every other backend keeps
				// committing.
				k.wakeOps.Add(1)
				l.ch <- b
			}
		}
		// Steering sees whatever the workers have committed so far: at
		// most two epochs stale, which the EWMA-based policies tolerate.
		// ObserveEpoch stays serialized — it runs only here.
		if obs := k.epochObserver; obs != nil {
			if obs.ObserveEpoch(k.backendLoads(bks)) {
				k.requestPlacementRefresh()
			}
		}
	}
	for _, l := range lanes {
		if notify {
			l.closed.Store(true)
			if l.parked.Swap(false) {
				select {
				case l.park <- struct{}{}:
				default:
				}
			}
		} else {
			close(l.ch)
		}
	}
	workers.Wait()
}

// awaitLane blocks the dispatcher until the lane's worker is within
// the two-epoch run-ahead window: arm the hub's parked flag, re-check,
// park on the token channel. Completing workers hand the token over.
func awaitLane(l *lane, hub *dispatchHub) {
	// Filling batch n reuses buffer n%3, last used by batch n-3: safe
	// once the worker has finished n-3, i.e. n-completed ≤ 2 — the same
	// window the one-slot channel enforces in channel mode.
	for int64(l.n)-l.completed.Load() > 2 {
		hub.parked.Store(true)
		if int64(l.n)-l.completed.Load() <= 2 {
			if !hub.parked.Swap(false) {
				select {
				case <-hub.park:
				default:
				}
			}
			return
		}
		<-hub.park
	}
}

// laneWorker is the notify-mode backend clock: commit every published
// batch in order, publish completion, and wake the dispatcher when it
// parked on this lane's backpressure.
func (k *Kernel) laneWorker(bs *backendSlot, dt float64, l *lane, hub *dispatchHub, commitWorkers int, wg *sync.WaitGroup) {
	defer wg.Done()
	next := int64(0)
	for {
		for l.dispatched.Load() <= next {
			if l.closed.Load() && l.dispatched.Load() <= next {
				return
			}
			l.parked.Store(true)
			if l.dispatched.Load() > next || l.closed.Load() {
				if !l.parked.Swap(false) {
					select {
					case <-l.park:
					default:
					}
				}
				continue
			}
			<-l.park
		}
		b := l.bufs[next%3]
		k.commitLaneBatch(bs, dt, b, commitWorkers)
		next++
		l.completed.Store(next)
		if hub.parked.Swap(false) {
			k.wakeOps.Add(1)
			select {
			case hub.park <- struct{}{}:
			default:
			}
		}
	}
}

// backendWorker is the channel-mode backend clock: it commits every
// batch dispatched on its lane, in order, under the backend's own
// commit mutex — no cross-backend barrier.
func (k *Kernel) backendWorker(bs *backendSlot, dt float64, ch <-chan *backendBatch, commitWorkers int, wg *sync.WaitGroup) {
	defer wg.Done()
	for b := range ch {
		k.commitLaneBatch(bs, dt, b, commitWorkers)
	}
}

// commitLaneBatch commits one lane batch under the backend's own
// clock. After each commit it updates the backend's placement
// telemetry, fires the contributing apps' OnEpoch callbacks with the
// per-backend result, and signals epoch subscribers, so a late
// backend's commit still wakes the SSE stream even when the global
// epoch counter moved long before.
func (k *Kernel) commitLaneBatch(bs *backendSlot, dt float64, b *backendBatch, commitWorkers int) {
	rep, ok, done := k.commitBounded(bs, dt, b.tasks, commitWorkers)

	// The contributions were merged into this batch, so their
	// offered totals are accounted here exactly once — whether the
	// commit landed, panicked (ok=false) or overran its deadline
	// (done=false; the abandoned commit still runs in background).
	for i, ctl := range b.ctls {
		ctl.addTotal(b.gflop[i])
	}
	if !done || !ok {
		// No report to fold into telemetry, and no per-backend
		// OnEpoch: the slot went Degraded/Failed and its apps are
		// being evacuated at the next generation roll.
		k.signalEpoch()
		return
	}

	offered := rep.DoneGFlop + rep.DeferredGFlop
	frac := 0.0
	if offered > 0 {
		frac = rep.DeferredGFlop / offered
	}
	k.loadMu.Lock()
	bs.offered = offered
	bs.deferredEWMA += deferredEWMAAlpha * (frac - bs.deferredEWMA)
	k.loadMu.Unlock()

	// Per-backend OnEpoch delivery: the result covers this backend's
	// share of the kernel epoch, not the merged whole — under an
	// independent clock there is no merged whole to report. Built
	// lazily: most apps have no OnEpoch observer.
	var res EpochResult
	built := false
	for _, ctl := range b.ctls {
		if ctl.spec.OnEpoch == nil {
			continue
		}
		if !built {
			built = true
			perApp := make(map[string]float64, len(b.ctls))
			for j, c := range b.ctls {
				perApp[c.Name()] += b.gflop[j]
			}
			res = EpochResult{
				Epoch:    b.epoch,
				Report:   rep,
				Backends: []BackendEpoch{{Name: bs.name, Report: rep}},
				PerApp:   perApp,
			}
		}
		ctl.spec.OnEpoch(res)
	}

	k.signalEpoch()
}
