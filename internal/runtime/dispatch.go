package runtime

import (
	"sync"

	"repro/internal/simhpc"
)

// This file is the barrier-free concurrent epoch engine: under
// PerBackendClock and OptimisticMerge the per-generation executor
// stops running epochs itself and instead partitions each merged
// kernel epoch into per-backend batches, handing every backend's share
// to that backend's own commit goroutine. Each backend then advances
// its epoch clock independently — b0 committing epoch N+2 while b2 is
// still inside epoch N — bounded only by the lanes' run-ahead window.
// Membership generations stay the single global synchronization
// point: a generation roll closes every lane and waits for its worker,
// which both preserves the detach-drain guarantee per backend and is
// the forced Barrier fallback while a placement migration is in
// flight (migrations only land at generation rolls).

// backendBatch is one backend's share of one dispatched kernel epoch.
// Batches are lane-owned scratch, reused in rotation (see lane.bufs).
type backendBatch struct {
	epoch int64 // global epoch number this batch belongs to
	tasks []*simhpc.Task
	ctls  []*Controller // contributing controllers, for totals + OnEpoch
	gflop []float64     // offered GFlop per contributing controller
}

// lane is the dispatch channel to one backend's commit goroutine. The
// channel holds one batch and the dispatcher blocks sending a second,
// so a backend runs at most two epochs behind the dispatch frontier —
// enough to pipeline, bounded enough that stats and steering stay
// fresh. Three rotating buffers make the reuse safe: when the send of
// batch n completes, the worker has received batch n-1 and therefore
// finished batch n-2, so the buffer of batch n-3 — the one the next
// fill uses — is no longer referenced by anyone.
type lane struct {
	ch   chan *backendBatch
	bufs [3]*backendBatch
	n    uint64 // batches dispatched on this lane
}

// dispatchEpochs is the barrier-free executor body: consume merged
// epochs from the scheduler, partition each by the contributing apps'
// placed backends, and dispatch every active backend's batch to its
// lane. Task slices are copied out of the contribution buffer before
// returning to the channel receive, so the scheduler's double-buffer
// contract ("send completed ⇒ previous buffer free") still holds.
// When execCh closes (generation wind-down) the lanes close and the
// workers drain — no dispatched batch is ever dropped.
func (k *Kernel) dispatchEpochs(execCh <-chan []contribution, dt float64, bks []*backendSlot) {
	lanes := make([]*lane, len(bks))
	var workers sync.WaitGroup
	for i, bs := range bks {
		l := &lane{ch: make(chan *backendBatch, 1)}
		for j := range l.bufs {
			l.bufs[j] = &backendBatch{}
		}
		lanes[i] = l
		workers.Add(1)
		go k.backendWorker(bs, dt, l.ch, &workers)
	}
	for contribs := range execCh {
		epoch := k.epochs.Add(1)
		// Resolve the reroute target for contributions whose placed
		// backend is unschedulable (failed, degraded, draining,
		// mid-roll). With no schedulable backend at all the no-healthy
		// policy decides: park until one heals or the generation winds
		// down, else write the epoch off — accounting the offered
		// totals either way, exactly once per contribution.
		fallback := firstSchedulable(bks)
		if fallback < 0 {
			fallback, _ = k.awaitSchedulable(k.parkCtx, bks)
		}
		if fallback < 0 {
			for _, c := range contribs {
				sum := 0.0
				for _, t := range c.tasks {
					sum += t.GFlop
				}
				c.ctl.addTotal(sum)
			}
			k.writeOff(contribs)
			k.signalEpoch()
			continue
		}
		for _, c := range contribs {
			idx := int(c.ctl.backend.Load())
			if idx < 0 || idx >= len(bks) || !bks[idx].schedulable() {
				idx = fallback // unplaced mid-roll or unhealthy target: reroute
			}
			l := lanes[idx]
			b := l.bufs[l.n%3]
			if b.epoch != epoch { // first contribution this epoch: reset the buffer
				b.epoch = epoch
				b.tasks = b.tasks[:0]
				b.ctls = b.ctls[:0]
				b.gflop = b.gflop[:0]
			}
			sum := 0.0
			for _, t := range c.tasks {
				sum += t.GFlop
			}
			b.tasks = append(b.tasks, c.tasks...)
			b.ctls = append(b.ctls, c.ctl)
			b.gflop = append(b.gflop, sum)
		}
		for _, l := range lanes {
			b := l.bufs[l.n%3]
			if b.epoch != epoch {
				continue // no contributors on this backend this epoch
			}
			clear(b.tasks[len(b.tasks):cap(b.tasks)]) // no pinned stale tasks
			// Blocks only while this backend is two epochs behind — the
			// run-ahead bound; every other backend keeps committing.
			l.ch <- b
			l.n++
		}
		// Steering sees whatever the workers have committed so far: at
		// most two epochs stale, which the EWMA-based policies tolerate.
		// ObserveEpoch stays serialized — it runs only here.
		if obs := k.epochObserver; obs != nil {
			if obs.ObserveEpoch(k.backendLoads(bks)) {
				k.requestPlacementRefresh()
			}
		}
	}
	for _, l := range lanes {
		close(l.ch)
	}
	workers.Wait()
}

// backendWorker is one backend's epoch clock: it commits every batch
// dispatched on its lane, in order, under the backend's own commit
// mutex — no cross-backend barrier. After each commit it updates the
// backend's placement telemetry, fires the contributing apps' OnEpoch
// callbacks with the per-backend result, and signals epoch
// subscribers, so a late backend's commit still wakes the SSE stream
// even when the global epoch counter moved long before.
func (k *Kernel) backendWorker(bs *backendSlot, dt float64, ch <-chan *backendBatch, wg *sync.WaitGroup) {
	defer wg.Done()
	for b := range ch {
		rep, ok, done := k.commitBounded(bs, dt, b.tasks)

		// The contributions were merged into this batch, so their
		// offered totals are accounted here exactly once — whether the
		// commit landed, panicked (ok=false) or overran its deadline
		// (done=false; the abandoned commit still runs in background).
		for i, ctl := range b.ctls {
			ctl.addTotal(b.gflop[i])
		}
		if !done || !ok {
			// No report to fold into telemetry, and no per-backend
			// OnEpoch: the slot went Degraded/Failed and its apps are
			// being evacuated at the next generation roll.
			k.signalEpoch()
			continue
		}

		offered := rep.DoneGFlop + rep.DeferredGFlop
		frac := 0.0
		if offered > 0 {
			frac = rep.DeferredGFlop / offered
		}
		k.loadMu.Lock()
		bs.offered = offered
		bs.deferredEWMA += deferredEWMAAlpha * (frac - bs.deferredEWMA)
		k.loadMu.Unlock()

		// Per-backend OnEpoch delivery: the result covers this backend's
		// share of the kernel epoch, not the merged whole — under an
		// independent clock there is no merged whole to report. Built
		// lazily: most apps have no OnEpoch observer.
		var res EpochResult
		built := false
		for _, ctl := range b.ctls {
			if ctl.spec.OnEpoch == nil {
				continue
			}
			if !built {
				built = true
				perApp := make(map[string]float64, len(b.ctls))
				for j, c := range b.ctls {
					perApp[c.Name()] += b.gflop[j]
				}
				res = EpochResult{
					Epoch:    b.epoch,
					Report:   rep,
					Backends: []BackendEpoch{{Name: bs.name, Report: rep}},
					PerApp:   perApp,
				}
			}
			ctl.spec.OnEpoch(res)
		}

		k.signalEpoch()
	}
}
