package runtime

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync/atomic"
	"time"

	"repro/internal/rtrm"
	"repro/internal/simhpc"
)

// This file is the backend failure domain: per-backend health driven by
// panic recovery and commit deadlines, drain/remove lifecycle with
// evacuation at generation boundaries, and the no-healthy-backends
// policy the epoch paths apply when every slot is out. The design
// follows the non-threaded CCP argument the rest of the kernel is built
// on — failures are detected event-driven on the epoch path itself
// (a recover around the commit, a deadline on its wait), never by
// background health-checker threads.

// Failure-domain errors, wrapped with context; match with errors.Is.
// The HTTP control plane maps them onto statuses (ErrUnknownBackend →
// 404, ErrBackendDraining and ErrLastBackend → 409).
var (
	// ErrUnknownBackend: a lifecycle call names no registered backend
	// (removed backends forget their name — it is reusable).
	ErrUnknownBackend = errors.New("unknown backend")
	// ErrBackendDraining: a drain or remove raced an in-progress drain
	// of the same backend.
	ErrBackendDraining = errors.New("backend is draining")
	// ErrLastBackend: draining the backend would leave the kernel with
	// no schedulable slot to evacuate onto.
	ErrLastBackend = errors.New("cannot drain the last schedulable backend")
	// ErrNoHealthyBackends: an epoch batch was written off because no
	// backend could take it (FailFast policy, or a generation wind-down
	// during a total outage).
	ErrNoHealthyBackends = errors.New("no healthy backends")
)

// BackendHealth is a backend slot's health state.
type BackendHealth int32

const (
	// BackendHealthy: the backend commits epochs normally.
	BackendHealthy BackendHealth = iota
	// BackendDegraded: a commit overran the kernel's BackendTimeout.
	// The slot's lane is rerouted and its apps evacuate; the stalled
	// commit keeps running, and its eventual completion heals the slot.
	BackendDegraded
	// BackendFailed: the backend panicked inside a commit. The slot
	// takes no further work until ReviveBackend.
	BackendFailed
)

// String returns the wire-friendly health name.
func (h BackendHealth) String() string {
	switch h {
	case BackendHealthy:
		return "healthy"
	case BackendDegraded:
		return "degraded"
	case BackendFailed:
		return "failed"
	}
	return fmt.Sprintf("BackendHealth(%d)", int32(h))
}

// Slot lifecycle states. Slots are tombstoned, never compacted:
// controllers hold backend indices, so indices must stay stable across
// removals. Writes happen under k.mu; the epoch paths read the atomic.
const (
	slotActive int32 = iota
	slotDraining
	slotDrained
	slotRemoved
)

// slotStateName returns the wire-friendly lifecycle name.
func slotStateName(s int32) string {
	switch s {
	case slotActive:
		return "active"
	case slotDraining:
		return "draining"
	case slotDrained:
		return "drained"
	case slotRemoved:
		return "removed"
	}
	return fmt.Sprintf("state(%d)", s)
}

// schedulable reports whether the slot may take new epoch work: live in
// the lifecycle and healthy. Epoch paths call it per contribution, so
// it is two atomic loads.
func (bs *backendSlot) schedulable() bool {
	return bs.state.Load() == slotActive && bs.health.Load() == int32(BackendHealthy)
}

// firstSchedulable returns the index of the first schedulable slot in
// bks, or -1.
func firstSchedulable(bks []*backendSlot) int {
	for i, bs := range bks {
		if bs.schedulable() {
			return i
		}
	}
	return -1
}

// NoHealthyPolicy selects what an epoch batch does when no backend is
// schedulable (see SetNoHealthyPolicy).
type NoHealthyPolicy int32

const (
	// ParkAndRetry (the default) parks the batch and retries with
	// capped exponential backoff until a backend heals or the serving
	// generation winds down; a parked batch commits the moment a
	// backend is revived, so a total outage delays work instead of
	// dropping it.
	ParkAndRetry NoHealthyPolicy = iota
	// FailFast writes the batch off immediately: the contributing apps
	// get ErrNoHealthyBackends on their status and the epoch moves on.
	// The offered work still counts in the per-app totals (the totals
	// ledger records what apps offered, the managers record what ran).
	FailFast
)

// String returns the flag-friendly policy name.
func (p NoHealthyPolicy) String() string {
	if p == FailFast {
		return "fail-fast"
	}
	return "park"
}

// SetNoHealthyPolicy configures the no-healthy-backends behavior.
// Takes effect on the next epoch batch. Note that under ParkAndRetry a
// synchronous RunEpoch with every backend down blocks until a
// ReviveBackend heals one — the concurrent mode additionally unparks
// on generation wind-down (Stop, membership change).
func (k *Kernel) SetNoHealthyPolicy(p NoHealthyPolicy) { k.noHealthy.Store(int32(p)) }

// SetBackendTimeout arms the per-commit deadline: a backend epoch
// running longer than d marks the slot Degraded, reroutes its lane and
// evacuates its apps, while the stalled commit finishes on its own
// goroutine (healing the slot when it completes). Zero (the default)
// disables the deadline — commits are then synchronous on the epoch
// path with no timer or goroutine cost, which is what the
// single-backend fast path always uses. Applies to multi-backend
// epochs from the next commit on.
func (k *Kernel) SetBackendTimeout(d time.Duration) {
	if d < 0 {
		d = 0
	}
	k.backendTimeout.Store(int64(d))
}

// BackendTimeout returns the configured commit deadline (0 = disabled).
func (k *Kernel) BackendTimeout() time.Duration {
	return time.Duration(k.backendTimeout.Load())
}

// BackendEvent is one backend state transition (health change or
// lifecycle move), delivered to BackendEvents subscribers.
type BackendEvent struct {
	// Backend is the backend's kernel-assigned name.
	Backend string
	// Health is the slot's health after the transition.
	Health BackendHealth
	// State is the slot's lifecycle state after the transition
	// ("active", "draining", "drained", "removed").
	State string
	// Reason describes what moved the slot (panic message, deadline,
	// "drain requested", "revived", ...).
	Reason string
}

// BackendEvents subscribes to backend state transitions: health moves
// (panic → failed, stall → degraded, completion/revive → healthy) and
// lifecycle moves (draining, drained, removed). Delivery is
// non-blocking on a buffered channel — a slow consumer loses old
// events, not the kernel's time; consumers needing exact current state
// re-read BackendStats on wake. cancel releases the subscription.
func (k *Kernel) BackendEvents() (ch <-chan BackendEvent, cancel func()) {
	c := make(chan BackendEvent, 16)
	k.eventMu.Lock()
	if k.events == nil {
		k.events = make(map[chan BackendEvent]struct{})
	}
	k.events[c] = struct{}{}
	k.eventCount.Store(int32(len(k.events)))
	k.eventMu.Unlock()
	return c, func() {
		k.eventMu.Lock()
		delete(k.events, c)
		k.eventCount.Store(int32(len(k.events)))
		k.eventMu.Unlock()
	}
}

// emitBackendEvent publishes a transition to subscribers and nudges the
// epoch-signal subscribers (the SSE stream re-reads health on wake).
func (k *Kernel) emitBackendEvent(bs *backendSlot, reason string) {
	if k.eventCount.Load() > 0 {
		ev := BackendEvent{
			Backend: bs.name,
			Health:  BackendHealth(bs.health.Load()),
			State:   slotStateName(bs.state.Load()),
			Reason:  reason,
		}
		k.eventMu.Lock()
		for c := range k.events {
			select {
			case c <- ev:
			default:
			}
		}
		k.eventMu.Unlock()
	}
	k.signalEpoch()
}

// setBackendHealth moves a slot's health under k.mu, records the
// reason, and — when the slot is live — rolls a generation so the
// placement refresh evacuates (or, on heal, re-admits) its apps at the
// next epoch boundary.
func (k *Kernel) setBackendHealth(bs *backendSlot, h BackendHealth, reason string) {
	k.mu.Lock()
	if BackendHealth(bs.health.Load()) == h {
		k.mu.Unlock()
		return
	}
	bs.health.Store(int32(h))
	bs.lastErr = reason
	if bs.state.Load() == slotActive {
		k.membershipChangedLocked()
	}
	k.mu.Unlock()
	k.emitBackendEvent(bs, reason)
}

// healStalledBackend clears a Degraded slot when its abandoned commit
// finally lands. A slot that failed (panicked) or left the active state
// while stalled stays where the stronger transition put it.
func (k *Kernel) healStalledBackend(bs *backendSlot) {
	k.mu.Lock()
	if BackendHealth(bs.health.Load()) != BackendDegraded {
		k.mu.Unlock()
		return
	}
	bs.health.Store(int32(BackendHealthy))
	bs.lastErr = ""
	if bs.state.Load() == slotActive {
		k.membershipChangedLocked()
	}
	k.mu.Unlock()
	k.emitBackendEvent(bs, "stalled commit completed")
}

// ReviveBackend clears a Failed or Degraded backend back to Healthy —
// the operator's (or chaos harness's) resurrection hook. It refuses
// while a commit is still in flight on the slot (an abandoned stall has
// not returned yet: reviving under it would let a new commit pile onto
// the stuck one) and on non-active slots. Reviving a healthy backend is
// a no-op.
func (k *Kernel) ReviveBackend(name string) error {
	k.mu.Lock()
	idx, ok := k.byBackend[name]
	if !ok {
		k.mu.Unlock()
		return fmt.Errorf("runtime: revive %q: %w", name, ErrUnknownBackend)
	}
	bs := k.backends[idx]
	if st := bs.state.Load(); st != slotActive {
		k.mu.Unlock()
		return fmt.Errorf("runtime: revive %q: backend is %s", name, slotStateName(st))
	}
	if bs.inflight.Load() > 0 {
		k.mu.Unlock()
		return fmt.Errorf("runtime: revive %q: a commit is still in flight", name)
	}
	if bs.health.Load() == int32(BackendHealthy) {
		k.mu.Unlock()
		return nil
	}
	bs.health.Store(int32(BackendHealthy))
	bs.lastErr = ""
	k.membershipChangedLocked()
	k.mu.Unlock()
	k.emitBackendEvent(bs, "revived")
	return nil
}

// BackendState reports a backend's lifecycle state and health ("", 0,
// false for unknown or removed names).
func (k *Kernel) BackendState(name string) (state string, health BackendHealth, ok bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	idx, found := k.byBackend[name]
	if !found {
		return "", 0, false
	}
	bs := k.backends[idx]
	return slotStateName(bs.state.Load()), BackendHealth(bs.health.Load()), true
}

// HealthyBackends counts the currently schedulable backends — what
// /healthz reports to distinguish a degraded plane from a dead one.
func (k *Kernel) HealthyBackends() int {
	k.mu.Lock()
	defer k.mu.Unlock()
	n := 0
	for _, bs := range k.backends {
		if bs.schedulable() {
			n++
		}
	}
	return n
}

// DrainBackend evacuates every app placed on the named backend onto the
// remaining schedulable slots and retires the slot. The evacuation is
// the same generation-boundary placement move live migration uses
// (PR 5): the drain rolls a generation, the refresh re-places the apps
// (their assignments stop resolving to the draining slot), and the roll
// itself drains in-flight batches — zero observation loss, no work on
// two backends at once. Blocks until the evacuation has landed and any
// abandoned commit on the slot has returned. Idempotent once drained;
// a concurrent drain of the same backend gets ErrBackendDraining, and
// draining the last schedulable backend is refused (ErrLastBackend).
func (k *Kernel) DrainBackend(name string) error {
	bs, gen, done, err := k.admitDrain(name)
	if err != nil || done {
		return err
	}
	k.completeDrain(bs, gen)
	return nil
}

// RemoveBackend is DrainBackend plus deletion: after the drain the
// slot leaves listings and telemetry and its name becomes reusable by
// AddBackend. The slot itself is tombstoned, not compacted, so backend
// indices stay stable.
func (k *Kernel) RemoveBackend(name string) error {
	bs, gen, done, err := k.admitDrain(name)
	if err != nil {
		return err
	}
	if !done {
		k.completeDrain(bs, gen)
	}
	k.finalizeRemove(name, bs)
	return nil
}

// RemoveBackendAsync validates the removal synchronously (unknown name,
// concurrent drain, last schedulable backend) and performs the drain in
// the background; the returned channel closes when the backend is gone.
// The control plane's DELETE /v1/backends/{id} is built on it: admission
// errors map to statuses, the drain itself outlives the request.
func (k *Kernel) RemoveBackendAsync(name string) (<-chan struct{}, error) {
	bs, gen, done, err := k.admitDrain(name)
	if err != nil {
		return nil, err
	}
	ch := make(chan struct{})
	go func() {
		defer close(ch)
		if !done {
			k.completeDrain(bs, gen)
		}
		k.finalizeRemove(name, bs)
	}()
	return ch, nil
}

// admitDrain is the drain admission check: resolve the name, refuse
// concurrent drains and last-backend drains, mark the slot draining and
// roll the generation. done=true means the slot was already drained
// (idempotent path). The generation returned is the one whose serving
// proves the evacuation landed.
func (k *Kernel) admitDrain(name string) (bs *backendSlot, gen int64, done bool, err error) {
	k.mu.Lock()
	idx, ok := k.byBackend[name]
	if !ok {
		k.mu.Unlock()
		return nil, 0, false, fmt.Errorf("runtime: drain %q: %w", name, ErrUnknownBackend)
	}
	bs = k.backends[idx]
	switch bs.state.Load() {
	case slotDraining:
		k.mu.Unlock()
		return nil, 0, false, fmt.Errorf("runtime: drain %q: %w", name, ErrBackendDraining)
	case slotDrained, slotRemoved:
		k.mu.Unlock()
		return bs, 0, true, nil
	}
	// The evacuated apps need somewhere to go — and even an app-less
	// kernel keeps one schedulable slot, so Attach always has a home.
	other := false
	for i, b := range k.backends {
		if i != idx && b.schedulable() {
			other = true
			break
		}
	}
	if !other {
		k.mu.Unlock()
		return nil, 0, false, fmt.Errorf("runtime: drain %q: %w", name, ErrLastBackend)
	}
	bs.state.Store(slotDraining)
	k.membershipChangedLocked()
	gen = k.memGen
	k.mu.Unlock()
	k.emitBackendEvent(bs, "drain requested")
	return bs, gen, false, nil
}

// completeDrain waits for the drain's generation to be served (running
// kernel) or lands the placement refresh synchronously (stopped or
// sync-driven kernel), then waits out in-flight commits and marks the
// slot drained.
func (k *Kernel) completeDrain(bs *backendSlot, gen int64) {
	for {
		k.mu.Lock()
		running := k.running
		k.mu.Unlock()
		if !running {
			// No serving loops: serialize against sync epochs and land
			// the evacuation refresh here.
			k.syncMu.Lock()
			k.mu.Lock()
			k.foldRetiredLocked()
			k.refreshPlacementLocked()
			k.mu.Unlock()
			k.syncMu.Unlock()
			break
		}
		if k.servedGen.Load() >= gen {
			// The generation rolled: the old engine quiesced and the new
			// placement (without this slot) is live.
			break
		}
		time.Sleep(200 * time.Microsecond)
	}
	// An abandoned (stalled) commit may still hold the slot's backend;
	// retire only after it returns.
	for bs.inflight.Load() > 0 {
		time.Sleep(200 * time.Microsecond)
	}
	k.mu.Lock()
	if bs.state.Load() == slotDraining {
		bs.state.Store(slotDrained)
	}
	k.mu.Unlock()
	k.emitBackendEvent(bs, "drained")
}

// finalizeRemove tombstones a drained slot and frees its name.
func (k *Kernel) finalizeRemove(name string, bs *backendSlot) {
	k.mu.Lock()
	if bs.state.Load() == slotRemoved {
		k.mu.Unlock()
		return
	}
	bs.state.Store(slotRemoved)
	if idx, ok := k.byBackend[name]; ok && k.backends[idx] == bs {
		delete(k.byBackend, name)
	}
	k.membershipChangedLocked()
	k.mu.Unlock()
	k.emitBackendEvent(bs, "removed")
}

// commitResult carries a guarded commit's outcome to its waiter.
type commitResult struct {
	rep rtrm.EpochReport
	ok  bool
}

// runCommit executes one backend epoch under the backend's commit mutex
// with panic containment: a panicking backend becomes a Failed slot
// with the panic recorded on its stats (and its apps evacuated by the
// health roll), never a dead kernel. Stats republish only on success,
// so readers never see a panicked epoch's partial state. ok=false means
// the commit panicked; the report is then zero.
//
// workers is the commit's core budget: with a staged backend
// (EpochStager) and workers > 1 the dispatch sub-stage fans out across
// that many goroutines; otherwise the epoch runs as the classic opaque
// call. The staged report is bit-identical to the serial one (per-node
// partials merged in node order), so the two paths agree exactly.
func (k *Kernel) runCommit(bs *backendSlot, dt float64, tasks []*simhpc.Task, workers int) (rep rtrm.EpochReport, ok bool) {
	defer func() {
		if r := recover(); r != nil {
			k.setBackendHealth(bs, BackendFailed, fmt.Sprintf("backend panic: %v\n%s", r, debug.Stack()))
		}
	}()
	bs.commitMu.Lock()
	defer bs.commitMu.Unlock()
	if st := bs.staged; st != nil && workers > 1 {
		st.BeginEpoch(dt, tasks)
		st.SweepEpoch()
		st.DispatchEpoch(workers)
		rep = st.CommitEpoch()
	} else {
		rep = bs.be.RunEpoch(dt, tasks)
	}
	bs.cell.publishStats(bs.be.Stats())
	ok = true
	return rep, ok
}

// commitOnce is runCommit plus the sequence bump every successful
// commit performs — the commit invariant all protocols share.
func (k *Kernel) commitOnce(bs *backendSlot, dt float64, tasks []*simhpc.Task, workers int) (rtrm.EpochReport, bool) {
	rep, ok := k.runCommit(bs, dt, tasks, workers)
	if ok {
		bs.seq.Add(1)
	}
	return rep, ok
}

// commitBounded is the deadline-guarded commit the multi-backend epoch
// paths use. Without a configured BackendTimeout it is commitOnce —
// synchronous, no timer, no goroutine. With one, the commit runs on its
// own goroutine and the waiter gives up at the deadline: the slot goes
// Degraded (evacuating its apps), the epoch moves on without this
// backend's report, and the abandoned commit finishes in the
// background — publishing its stats under the commit mutex as usual and
// healing the slot once no commits remain in flight. done=false means
// abandoned: the caller must not read the slot's report scratch, and
// per-app accounting for the batch is the caller's to settle (the work
// was offered; whether the stalled manager eventually ran it shows up
// in manager telemetry, not the offered-totals ledger).
func (k *Kernel) commitBounded(bs *backendSlot, dt float64, tasks []*simhpc.Task, workers int) (rep rtrm.EpochReport, ok, done bool) {
	d := time.Duration(k.backendTimeout.Load())
	if d <= 0 {
		rep, ok = k.commitOnce(bs, dt, tasks, workers)
		return rep, ok, true
	}
	bs.inflight.Add(1)
	var claimed atomic.Bool
	res := make(chan commitResult, 1)
	// The commit goroutine can outlive this call (abandonment), while
	// every epoch path recycles its batch scratch across epochs — so the
	// goroutine gets its own copy of the slice, never the caller's
	// buffer. Task objects themselves are epoch-fresh, not recycled.
	batch := make([]*simhpc.Task, len(tasks))
	copy(batch, tasks)
	go func() {
		r, cok := k.commitOnce(bs, dt, batch, workers)
		if claimed.CompareAndSwap(false, true) {
			bs.inflight.Add(-1)
			res <- commitResult{r, cok}
			return
		}
		// Abandoned: the waiter is gone. Settle the slot — heal a
		// stall-degraded slot once the last in-flight commit returns
		// (queued lane batches behind the stall each pass through here).
		idle := bs.inflight.Add(-1) == 0
		if cok && idle {
			k.healStalledBackend(bs)
		}
		k.signalEpoch() // late stats published: wake stream consumers
	}()
	t := time.NewTimer(d)
	select {
	case r := <-res:
		t.Stop()
		return r.rep, r.ok, true
	case <-t.C:
		if claimed.CompareAndSwap(false, true) {
			k.setBackendHealth(bs, BackendDegraded,
				fmt.Sprintf("commit exceeded the %v backend timeout", d))
			return rtrm.EpochReport{}, false, false
		}
		// The commit landed as the timer fired; take it.
		r := <-res
		return r.rep, r.ok, true
	}
}

// awaitSchedulable resolves the epoch paths' fallback backend. With a
// schedulable slot available it returns immediately; with none it
// applies the no-healthy-backends policy: FailFast gives up at once,
// ParkAndRetry polls with capped exponential backoff until a slot heals
// or ctx (the serving generation's context; nil under the sync driver)
// ends — with one final look after cancellation, so a revive racing the
// wind-down still lands the batch.
func (k *Kernel) awaitSchedulable(ctx context.Context, bks []*backendSlot) (int, bool) {
	if i := firstSchedulable(bks); i >= 0 {
		return i, true
	}
	if NoHealthyPolicy(k.noHealthy.Load()) == FailFast {
		return -1, false
	}
	const maxBackoff = 50 * time.Millisecond
	backoff := 500 * time.Microsecond
	for {
		if ctx != nil && ctx.Err() != nil {
			i := firstSchedulable(bks)
			return i, i >= 0
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
		if i := firstSchedulable(bks); i >= 0 {
			return i, true
		}
	}
}

// writeOff records a dropped epoch batch: the contributing apps carry
// the error on their status and the kernel notes it once. The dropped
// contributions stay in the per-app offered totals — the ledger records
// what apps offered, and zero-observation-loss accounting (the chaos
// harness's exactness assertion) depends on every merged contribution
// being counted exactly once, committed or not.
func (k *Kernel) writeOff(contribs []contribution) {
	for _, c := range contribs {
		if c.ctl != nil {
			c.ctl.setLastErr("epoch batch dropped: no healthy backends")
		}
	}
	k.noteErr(fmt.Errorf("runtime: %w: epoch batch dropped", ErrNoHealthyBackends))
}

// tickApp runs one app's Tick + workload materialization with panic
// containment: a panic in tenant-supplied Sensor/Policy/Knob/Workload
// code quarantines that app — skipped by every later epoch, the panic
// surfaced on its status — and never crashes the kernel or its
// shard-mates. live=false means the app contributed nothing (already
// quarantined, or quarantined by this very tick). A plain workload
// error is not a panic: it propagates for the caller's existing
// handling (sync RunEpoch aborts the epoch, concurrent loops note it).
func (k *Kernel) tickApp(ctl *Controller) (tasks []*simhpc.Task, err error, live bool) {
	if ctl.quarantined.Load() {
		return nil, nil, false
	}
	defer func() {
		if r := recover(); r != nil {
			msg := fmt.Sprintf("app panic: %v", r)
			ctl.quarantine(msg)
			k.noteErr(fmt.Errorf("runtime: %s: %s", ctl.Name(), msg))
			tasks, err, live = nil, nil, false
		}
	}()
	ctl.Tick()
	tasks, err = ctl.workload()
	return tasks, err, true
}
