package runtime

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/monitor"
)

// Controller is one application's collect–analyse–decide–act loop: the
// successor of the old monitor.Loop, with the decide and act stages
// factored out behind Policy and Knob. It is safe for concurrent use:
// producers Push (or feed the Sensor) from serving goroutines while
// Tick runs on the control-loop goroutine; Ticks themselves serialize.
//
// The tick path is allocation-free in steady state: sensor samples are
// drained straight into cached window handles (no per-sample map
// lookup), and the summary map handed to SLA.Check and Policy.Decide is
// scratch reused across ticks.
type Controller struct {
	spec    AppSpec
	metrics *monitor.Set
	trigger *monitor.Trigger

	tickMu  sync.Mutex
	sums    map[string]monitor.Summary // analyse scratch, under tickMu
	handles map[string]*monitor.Window // metric → window cache, under tickMu
	drainFn func(metric string, v float64)

	// lastMetric/lastWindow memoize the previous drained sample's
	// window (under tickMu): batched ingest delivers runs of one metric
	// — the wire protocol's frame shape — so consecutive samples skip
	// even the handle map's hash, usually via pointer-equal interned
	// strings.
	lastMetric string
	lastWindow *monitor.Window

	ticks       atomic.Int64
	fires       atomic.Int64
	adaptations atomic.Int64

	// backend is the index of the kernel backend this app's epoch
	// batches route to; -1 until the first placement refresh. Written
	// only at generation boundaries (the kernel's placement refresh),
	// read by the epoch engine.
	backend atomic.Int32

	// total is the app's cumulative offered GFlop as float bits. Within
	// a generation one epoch-commit goroutine carries this app's batches
	// (its placed backend's lane), but a backend failure can race that
	// lane's accounting against the dispatcher writing an epoch off, so
	// updates go through a CAS loop; status readers load it lock-free.
	total atomic.Uint64

	// quarantined marks an app whose user-supplied Sensor/Policy/Knob/
	// Workload panicked: the kernel skips it every later epoch and the
	// panic is surfaced on AppStatus. Sticky — only a re-attach or a
	// SwapPolicy (installing a replacement for the component that
	// crashed) clears it. failMu guards lastErr (the panic message, or
	// the most recent dropped-epoch note).
	quarantined atomic.Bool
	failMu      sync.Mutex
	lastErr     string
}

// addTotal accumulates offered work (see the total field for the
// concurrency contract).
func (c *Controller) addTotal(g float64) {
	for {
		old := c.total.Load()
		next := math.Float64bits(math.Float64frombits(old) + g)
		if c.total.CompareAndSwap(old, next) {
			return
		}
	}
}

// quarantine marks the app failed with the given panic message.
func (c *Controller) quarantine(msg string) {
	c.setLastErr(msg)
	c.quarantined.Store(true)
}

// setLastErr records the most recent app-level failure note.
func (c *Controller) setLastErr(msg string) {
	c.failMu.Lock()
	c.lastErr = msg
	c.failMu.Unlock()
}

// LastError returns the app's most recent failure note: the captured
// panic of a quarantined app, or the drop note of an epoch written off
// with no healthy backends. Empty while clean.
func (c *Controller) LastError() string {
	c.failMu.Lock()
	defer c.failMu.Unlock()
	return c.lastErr
}

// Quarantined reports whether a panic in user-supplied code has
// permanently sidelined this app (see Kernel.tickApp).
func (c *Controller) Quarantined() bool { return c.quarantined.Load() }

// totalGFlop reads the cumulative offered work.
func (c *Controller) totalGFlop() float64 {
	return math.Float64frombits(c.total.Load())
}

// NewController assembles a controller from an AppSpec, applying the
// window/debounce defaults.
func NewController(spec AppSpec) *Controller {
	if spec.Window <= 0 {
		spec.Window = 32
	}
	if spec.Debounce <= 0 {
		spec.Debounce = 2
	}
	c := &Controller{
		spec:    spec,
		metrics: monitor.NewSet(spec.Window),
		trigger: monitor.NewTrigger(spec.Debounce),
		sums:    make(map[string]monitor.Summary),
		handles: make(map[string]*monitor.Window),
	}
	c.drainFn = c.pushCached // bind once so Tick never allocates a closure
	c.backend.Store(-1)      // unplaced until the kernel's first refresh
	return c
}

// Name returns the application name.
func (c *Controller) Name() string { return c.spec.Name }

// Metrics exposes the controller's metric windows for direct pushes —
// the collect path for applications without a dedicated Sensor.
func (c *Controller) Metrics() *monitor.Set { return c.metrics }

// Push records a sample directly into the metric windows. Safe from any
// goroutine.
func (c *Controller) Push(metric string, v float64) { c.metrics.Push(metric, v) }

// pushCached records a sample through the per-metric handle cache,
// skipping the set's lock and map lookup after the first sample of each
// metric — and skipping the map entirely inside a same-metric run.
// Only called under tickMu.
func (c *Controller) pushCached(metric string, v float64) {
	if metric == c.lastMetric && c.lastWindow != nil {
		c.lastWindow.Push(v)
		return
	}
	w := c.handles[metric]
	if w == nil {
		w = c.metrics.Acquire(metric)
		c.handles[metric] = w
	}
	c.lastMetric, c.lastWindow = metric, w
	w.Push(v)
}

// Tick runs one collect-analyse-decide-act cycle and returns the
// decision. Concurrent Ticks serialize; producers may keep pushing.
func (c *Controller) Tick() monitor.Decision {
	c.tickMu.Lock()
	defer c.tickMu.Unlock()
	c.ticks.Add(1)

	// Collect: drain the sensor into the windows, without allocating
	// when the sensor supports streaming.
	if c.spec.Sensor != nil {
		if d, ok := c.spec.Sensor.(SampleDrainer); ok {
			d.Drain(c.drainFn)
		} else {
			for _, s := range c.spec.Sensor.Collect() {
				c.pushCached(s.Metric, s.Value)
			}
		}
	}

	// Analyse: snapshot into the reused summary scratch and check the
	// SLA. The map is only lent to the policy for the call.
	c.metrics.SummariesInto(c.sums)
	ok, goalIdx, violation := c.spec.SLA.Check(c.sums)
	fire := c.trigger.Observe(!ok)
	d := monitor.Decision{}
	if !fire {
		return d
	}
	d.Adapt = true
	d.Violation = violation
	if goalIdx >= 0 {
		d.Reason = c.spec.SLA.Goals[goalIdx].String()
	}
	c.fires.Add(1)

	// Decide and act.
	if c.spec.Policy != nil {
		if cfg, changed := c.spec.Policy.Decide(d, c.sums); changed {
			if c.spec.Knob != nil {
				c.spec.Knob.Apply(cfg)
			}
			c.adaptations.Add(1)
		}
	}
	// Fresh windows after a firing decision, so stale samples from the
	// previous operating point do not pollute the next one.
	c.metrics.Reset()
	return d
}

// SwapPolicy installs a replacement policy (and, when kb is non-nil, a
// replacement knob) and returns the previous policy so the caller can
// release its resources. The swap serializes against Tick via tickMu,
// so a decision is computed entirely by the old policy or entirely by
// the new one — never a mix. Swapping also clears quarantine: the
// component that crashed is being replaced, so the app gets a fresh
// chance without a detach/re-attach cycle (which would reset totals).
func (c *Controller) SwapPolicy(p Policy, kb Knob) Policy {
	c.tickMu.Lock()
	old := c.spec.Policy
	c.spec.Policy = p
	if kb != nil {
		c.spec.Knob = kb
	}
	c.tickMu.Unlock()
	c.setLastErr("")
	c.quarantined.Store(false)
	return old
}

// Ticks returns the number of cycles run.
func (c *Controller) Ticks() int64 { return c.ticks.Load() }

// Fires returns how many ticks produced a firing (Adapt) decision.
func (c *Controller) Fires() int64 { return c.fires.Load() }

// Adaptations returns how many times the policy actually changed the
// configuration (a fire whose Decide returned ok).
func (c *Controller) Adaptations() int64 { return c.adaptations.Load() }
