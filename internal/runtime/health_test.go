package runtime

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/autotune"
	"repro/internal/monitor"
	"repro/internal/rtrm"
	"repro/internal/simhpc"
)

// faultBackend wraps a backend with one-shot fault injection: arm
// panicNext to blow up the next commit, or store a duration in stallNS
// to delay it.
type faultBackend struct {
	inner     Backend
	panicNext atomic.Bool
	stallNS   atomic.Int64
}

func (f *faultBackend) RunEpoch(dt float64, offered []*simhpc.Task) rtrm.EpochReport {
	if d := f.stallNS.Swap(0); d > 0 {
		time.Sleep(time.Duration(d))
	}
	if f.panicNext.CompareAndSwap(true, false) {
		panic("injected fault")
	}
	return f.inner.RunEpoch(dt, offered)
}

func (f *faultBackend) Stats() rtrm.Stats { return f.inner.Stats() }

// allProtocols is the failure-domain test matrix: the guarantees hold
// under every epoch commit protocol.
var allProtocols = []EpochProtocol{Barrier, PerBackendClock, OptimisticMerge}

// waitHealth polls the non-blocking BackendState atomics (BackendStats
// would block on the commit lock of a mid-stall healthy slot).
func waitHealth(t *testing.T, k *Kernel, name string, h BackendHealth) {
	t.Helper()
	waitFor(t, fmt.Sprintf("backend %s %s", name, h), func() bool {
		_, got, ok := k.BackendState(name)
		return ok && got == h
	})
}

// TestDrainRemoveLifecycleSync exercises the admission state machine on
// a stopped kernel, where drains complete inline: idempotency, error
// taxonomy and name reuse after removal.
func TestDrainRemoveLifecycleSync(t *testing.T) {
	k := NewKernel(testManager(2), testManager(2))
	if err := k.DrainBackend("nope"); !errors.Is(err, ErrUnknownBackend) {
		t.Errorf("unknown drain: %v, want ErrUnknownBackend", err)
	}
	if err := k.DrainBackend("b1"); err != nil {
		t.Fatalf("drain b1: %v", err)
	}
	if st, _, ok := k.BackendState("b1"); !ok || st != "drained" {
		t.Errorf("b1 state = %q, want drained", st)
	}
	// Draining an already-drained backend is a completed no-op.
	if err := k.DrainBackend("b1"); err != nil {
		t.Errorf("re-drain drained: %v, want nil", err)
	}
	// A drained backend no longer counts as schedulable, so b0 is last.
	if err := k.DrainBackend("b0"); !errors.Is(err, ErrLastBackend) {
		t.Errorf("drain last: %v, want ErrLastBackend", err)
	}
	if err := k.RemoveBackend("b1"); err != nil {
		t.Fatalf("remove b1: %v", err)
	}
	if _, _, ok := k.BackendState("b1"); ok {
		t.Error("b1 still visible after remove")
	}
	if got := k.Backends(); len(got) != 1 || got[0] != "b0" {
		t.Errorf("Backends() = %v, want [b0]", got)
	}
	// Removed names return to the pool.
	if err := k.AddBackend("b1", testManager(2)); err != nil {
		t.Fatalf("re-add removed name: %v", err)
	}
	if err := k.RemoveBackend("nope"); !errors.Is(err, ErrUnknownBackend) {
		t.Errorf("unknown remove: %v, want ErrUnknownBackend", err)
	}
}

// TestDrainBackendEvacuatesLive: draining a backend on a running kernel
// migrates its apps to the survivors at a generation boundary and work
// continues; the drained backend is removable and its name reusable.
func TestDrainBackendEvacuatesLive(t *testing.T) {
	for _, proto := range allProtocols {
		t.Run(proto.String(), func(t *testing.T) {
			k := protocolKernel(t, proto)
			if err := k.Start(context.Background(), Options{Flush: 2 * time.Millisecond}); err != nil {
				t.Fatal(err)
			}
			defer k.Stop()
			waitFor(t, "both apps working", func() bool {
				tot := k.TotalsPerApp()
				return tot["app0"] > 0 && tot["app1"] > 0
			})

			if err := k.DrainBackend("b1"); err != nil {
				t.Fatalf("drain b1: %v", err)
			}
			if st, _, ok := k.BackendState("b1"); !ok || st != "drained" {
				t.Errorf("b1 state = %q, want drained", st)
			}
			// app1 was pinned to b1; the pin no longer resolves, so it
			// lands on b0 and keeps contributing.
			waitFor(t, "app1 evacuated to b0", func() bool {
				return k.AppBackend("app1") == "b0"
			})
			before := k.TotalsPerApp()["app1"]
			waitFor(t, "app1 progress after evacuation", func() bool {
				return k.TotalsPerApp()["app1"] > before
			})

			if err := k.RemoveBackend("b1"); err != nil {
				t.Fatalf("remove drained b1: %v", err)
			}
			if err := k.AddBackend("b1", testManagerAt(2, 15)); err != nil {
				t.Fatalf("re-add b1: %v", err)
			}
			// The pin resolves again: app1 migrates home.
			waitFor(t, "app1 back on b1", func() bool {
				return k.AppBackend("app1") == "b1"
			})
			if err := k.Err(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDrainBackendWhileDraining: a second drain of an in-flight drain
// reports ErrBackendDraining. The first drain is wedged deterministically
// by an app whose workload blocks, which keeps the drain's generation
// from being served.
func TestDrainBackendWhileDraining(t *testing.T) {
	k := NewKernel(testManager(2), testManager(2))
	var block, blocked sync.Mutex
	gen := simhpc.NewWorkloadGen(3)
	hold := atomic.Bool{}
	if _, err := k.Attach(AppSpec{
		Name: "a",
		Workload: func() ([]*simhpc.Task, error) {
			if hold.Load() {
				blocked.Unlock() // signal: the loop is wedged
				block.Lock()     // parked until the test releases it
				block.Unlock()
			}
			return gen.Mix(2, 1, 1, 1, 8), nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := k.Start(context.Background(), Options{Flush: 2 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	defer k.Stop()
	waitFor(t, "first epochs", func() bool { return k.Epochs() >= 2 })

	block.Lock()
	blocked.Lock()
	hold.Store(true)
	blocked.Lock() // acquired once the workload is parked inside block.Lock
	hold.Store(false)

	done, err := k.RemoveBackendAsync("b1")
	if err != nil {
		t.Fatalf("async remove: %v", err)
	}
	if err := k.DrainBackend("b1"); !errors.Is(err, ErrBackendDraining) {
		t.Errorf("drain while draining: %v, want ErrBackendDraining", err)
	}
	block.Unlock()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("drain never completed after unblocking")
	}
	if _, _, ok := k.BackendState("b1"); ok {
		t.Error("b1 still visible after async remove")
	}
}

// TestBackendPanicContained: a backend panic mid-commit fails the slot
// and evacuates its apps; the kernel stays alive, the panic is captured
// on the slot's stats, and ReviveBackend restores service. Holds under
// every protocol.
func TestBackendPanicContained(t *testing.T) {
	for _, proto := range allProtocols {
		t.Run(proto.String(), func(t *testing.T) {
			fb := &faultBackend{inner: testManagerAt(2, 15)}
			k := NewKernel(testManagerAt(2, 15))
			if err := k.AddBackend("b1", fb); err != nil {
				t.Fatal(err)
			}
			k.SetProtocol(proto)
			for i := 0; i < 2; i++ {
				spec := pinnedSpec(fmt.Sprintf("app%d", i), fmt.Sprintf("b%d", i), simhpc.NewWorkloadGen(uint64(7+i)), 2)
				if _, err := k.Attach(spec); err != nil {
					t.Fatal(err)
				}
			}
			if err := k.Start(context.Background(), Options{Flush: 2 * time.Millisecond}); err != nil {
				t.Fatal(err)
			}
			defer k.Stop()
			waitFor(t, "b1 commits", func() bool { return k.TotalsPerApp()["app1"] > 0 })

			fb.panicNext.Store(true)
			waitHealth(t, k, "b1", BackendFailed)

			// Kernel alive: epochs keep advancing and the failed slot's
			// app keeps contributing from a healthy backend.
			e0 := k.Epochs()
			waitFor(t, "epochs advance past failure", func() bool { return k.Epochs() >= e0+5 })
			waitFor(t, "app1 evacuated", func() bool { return k.AppBackend("app1") == "b0" })
			before := k.TotalsPerApp()["app1"]
			waitFor(t, "app1 progress after failure", func() bool {
				return k.TotalsPerApp()["app1"] > before
			})
			var failed BackendStats
			for _, st := range k.BackendStats() {
				if st.Name == "b1" {
					failed = st
				}
			}
			if !strings.Contains(failed.LastErr, "injected fault") {
				t.Errorf("captured panic missing from LastErr: %q", failed.LastErr)
			}

			if err := k.ReviveBackend("b1"); err != nil {
				t.Fatalf("revive: %v", err)
			}
			waitHealth(t, k, "b1", BackendHealthy)
			waitFor(t, "app1 back on b1", func() bool { return k.AppBackend("app1") == "b1" })
			if err := k.Err(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestBackendStallDegradesThenHeals: a commit overrunning the backend
// timeout degrades the slot (evacuating it) without blocking the epoch;
// when the stalled commit finally lands, the slot self-heals.
func TestBackendStallDegradesThenHeals(t *testing.T) {
	for _, proto := range allProtocols {
		t.Run(proto.String(), func(t *testing.T) {
			fb := &faultBackend{inner: testManagerAt(2, 15)}
			k := NewKernel(testManagerAt(2, 15))
			if err := k.AddBackend("b1", fb); err != nil {
				t.Fatal(err)
			}
			k.SetProtocol(proto)
			k.SetBackendTimeout(10 * time.Millisecond)
			for i := 0; i < 2; i++ {
				spec := pinnedSpec(fmt.Sprintf("app%d", i), fmt.Sprintf("b%d", i), simhpc.NewWorkloadGen(uint64(7+i)), 2)
				if _, err := k.Attach(spec); err != nil {
					t.Fatal(err)
				}
			}
			if err := k.Start(context.Background(), Options{Flush: 2 * time.Millisecond}); err != nil {
				t.Fatal(err)
			}
			defer k.Stop()
			waitFor(t, "b1 commits", func() bool { return k.TotalsPerApp()["app1"] > 0 })

			fb.stallNS.Store(int64(150 * time.Millisecond))
			waitHealth(t, k, "b1", BackendDegraded)
			// The stalled commit completes in the background and heals
			// the slot; no revive needed.
			waitHealth(t, k, "b1", BackendHealthy)
			if err := k.Err(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestReviveBackendSemantics: revive refuses unknown and non-idle slots
// and is a no-op on healthy ones.
func TestReviveBackendSemantics(t *testing.T) {
	k := NewKernel(testManager(2), testManager(2))
	if err := k.ReviveBackend("nope"); !errors.Is(err, ErrUnknownBackend) {
		t.Errorf("unknown revive: %v, want ErrUnknownBackend", err)
	}
	if err := k.ReviveBackend("b0"); err != nil {
		t.Errorf("revive healthy: %v, want nil no-op", err)
	}
	if err := k.DrainBackend("b1"); err != nil {
		t.Fatal(err)
	}
	if err := k.ReviveBackend("b1"); err == nil {
		t.Error("revive drained slot succeeded, want refusal")
	}
}

// appPanicCase arms one stage of the control loop to panic.
type appPanicCase struct {
	name string
	spec func(arm *atomic.Bool, gen *simhpc.WorkloadGen) AppSpec
}

var appPanicCases = []appPanicCase{
	{"workload", func(arm *atomic.Bool, gen *simhpc.WorkloadGen) AppSpec {
		return AppSpec{
			Name: "victim",
			Workload: func() ([]*simhpc.Task, error) {
				if arm.Load() {
					panic("workload exploded")
				}
				return gen.Mix(2, 1, 1, 1, 8), nil
			},
		}
	}},
	{"policy", func(arm *atomic.Bool, gen *simhpc.WorkloadGen) AppSpec {
		return AppSpec{
			Name: "victim",
			SLA: monitor.SLA{Goals: []monitor.Goal{
				{Metric: monitor.MetricLatency, Relation: monitor.AtMost, Target: 1.0},
			}},
			Debounce: 1,
			Policy: PolicyFunc(func(monitor.Decision, map[string]monitor.Summary) (autotune.Config, bool) {
				panic("policy exploded")
			}),
			Workload: func() ([]*simhpc.Task, error) {
				if arm.Load() {
					// Feed a violating sample so the SLA fires and the
					// policy runs on an upcoming tick.
					return gen.Mix(1, 1, 1, 1, 8), nil
				}
				return gen.Mix(2, 1, 1, 1, 8), nil
			},
		}
	}},
	{"knob", func(arm *atomic.Bool, gen *simhpc.WorkloadGen) AppSpec {
		return AppSpec{
			Name: "victim",
			SLA: monitor.SLA{Goals: []monitor.Goal{
				{Metric: monitor.MetricLatency, Relation: monitor.AtMost, Target: 1.0},
			}},
			Debounce: 1,
			Policy: PolicyFunc(func(monitor.Decision, map[string]monitor.Summary) (autotune.Config, bool) {
				return autotune.Config{"level": 0}, true
			}),
			Knob: KnobFunc(func(autotune.Config) {
				panic("knob exploded")
			}),
			Workload: func() ([]*simhpc.Task, error) {
				return gen.Mix(2, 1, 1, 1, 8), nil
			},
		}
	}},
}

// TestAppPanicQuarantined: a panic in any user-supplied stage (workload,
// policy, knob) quarantines that app — captured on its status, excluded
// from future epochs — and never takes down the kernel or its tenants.
// Holds under every protocol, with -race.
func TestAppPanicQuarantined(t *testing.T) {
	for _, proto := range allProtocols {
		for _, tc := range appPanicCases {
			t.Run(fmt.Sprintf("%s/%s", proto, tc.name), func(t *testing.T) {
				k := NewKernel(testManager(2), testManager(2))
				k.SetProtocol(proto)
				var arm atomic.Bool
				victim, err := k.Attach(tc.spec(&arm, simhpc.NewWorkloadGen(5)))
				if err != nil {
					t.Fatal(err)
				}
				if _, err := k.Attach(simpleSpec("bystander", simhpc.NewWorkloadGen(9), 2)); err != nil {
					t.Fatal(err)
				}
				if err := k.Start(context.Background(), Options{Flush: 2 * time.Millisecond}); err != nil {
					t.Fatal(err)
				}
				defer k.Stop()
				waitFor(t, "victim working", func() bool { return victim.Ticks() > 2 })

				arm.Store(true)
				if tc.name != "workload" {
					// Violating samples make the SLA fire, reaching the
					// panicking policy/knob.
					go func() {
						for !victim.Quarantined() && k.Err() == nil {
							victim.Push(monitor.MetricLatency, 9)
							time.Sleep(200 * time.Microsecond)
						}
					}()
				}
				waitFor(t, "victim quarantined", func() bool { return victim.Quarantined() })
				if !strings.Contains(victim.LastError(), "exploded") {
					t.Errorf("LastError = %q, want captured panic", victim.LastError())
				}

				// Kernel and bystander unaffected.
				e0 := k.Epochs()
				waitFor(t, "epochs advance past quarantine", func() bool { return k.Epochs() >= e0+5 })
				before := k.TotalsPerApp()["bystander"]
				waitFor(t, "bystander progress", func() bool {
					return k.TotalsPerApp()["bystander"] > before
				})
				// The quarantined app stops ticking.
				ticks := victim.Ticks()
				waitFor(t, "a few more epochs", func() bool { return k.Epochs() >= e0+10 })
				if victim.Ticks() > ticks+1 {
					t.Errorf("quarantined app kept ticking: %d -> %d", ticks, victim.Ticks())
				}
				// The kernel error ledger records the tenant fault (the
				// same convention workload errors use) — and nothing worse.
				if err := k.Err(); err == nil || !strings.Contains(err.Error(), "exploded") {
					t.Errorf("kernel Err = %v, want the recorded app panic", err)
				}
			})
		}
	}
}

// TestNoHealthyBackendsParkAndRetry: with every backend failed under the
// default policy, epochs park rather than drop; a revive releases them
// with the parked batches intact — the totals ledger never skips a beat.
func TestNoHealthyBackendsParkAndRetry(t *testing.T) {
	fb := &faultBackend{inner: testManager(2)}
	k := NewKernel()
	if err := k.AddBackend("b0", fb); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Attach(simpleSpec("a", simhpc.NewWorkloadGen(7), 2)); err != nil {
		t.Fatal(err)
	}
	if err := k.Start(context.Background(), Options{Flush: 2 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	defer k.Stop()
	waitFor(t, "first work", func() bool { return k.TotalsPerApp()["a"] > 0 })

	fb.panicNext.Store(true)
	waitHealth(t, k, "b0", BackendFailed)
	if got := k.HealthyBackends(); got != 0 {
		t.Errorf("HealthyBackends = %d, want 0", got)
	}

	// Parked: totals freeze while no backend is schedulable.
	frozen := k.TotalsPerApp()["a"]
	time.Sleep(30 * time.Millisecond)
	if got := k.TotalsPerApp()["a"]; got != frozen {
		t.Errorf("totals advanced while parked: %v -> %v", frozen, got)
	}

	if err := k.ReviveBackend("b0"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "work resumes after revive", func() bool {
		return k.TotalsPerApp()["a"] > frozen
	})
	if err := k.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestNoHealthyBackendsFailFast: under FailFast the kernel writes the
// batch off instead of parking — epochs keep advancing, the loss is
// still accounted in the totals ledger (offered work), and the app's
// status carries the drop note.
func TestNoHealthyBackendsFailFast(t *testing.T) {
	fb := &faultBackend{inner: testManager(2)}
	k := NewKernel()
	if err := k.AddBackend("b0", fb); err != nil {
		t.Fatal(err)
	}
	k.SetNoHealthyPolicy(FailFast)
	ctl, err := k.Attach(simpleSpec("a", simhpc.NewWorkloadGen(7), 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Start(context.Background(), Options{Flush: 2 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	defer k.Stop()
	waitFor(t, "first work", func() bool { return k.TotalsPerApp()["a"] > 0 })

	fb.panicNext.Store(true)
	waitHealth(t, k, "b0", BackendFailed)

	// Write-offs: epochs and the offered-work ledger keep advancing.
	e0, t0 := k.Epochs(), k.TotalsPerApp()["a"]
	waitFor(t, "epochs advance while failed", func() bool { return k.Epochs() >= e0+5 })
	waitFor(t, "offered totals advance while failed", func() bool {
		return k.TotalsPerApp()["a"] > t0
	})
	waitFor(t, "drop note on app status", func() bool {
		return strings.Contains(ctl.LastError(), "no healthy backends")
	})
	// Write-offs are recorded on the kernel error ledger too.
	if err := k.Err(); !errors.Is(err, ErrNoHealthyBackends) {
		t.Errorf("kernel Err = %v, want ErrNoHealthyBackends", err)
	}
}

// TestBackendEventsLifecycle: subscribers see failure and lifecycle
// transitions in order, and cancel detaches the feed.
func TestBackendEventsLifecycle(t *testing.T) {
	k := NewKernel(testManager(2), testManager(2))
	events, cancel := k.BackendEvents()
	defer cancel()
	if err := k.DrainBackend("b1"); err != nil {
		t.Fatal(err)
	}
	if err := k.RemoveBackend("b1"); err != nil {
		t.Fatal(err)
	}
	var got []string
	deadline := time.After(5 * time.Second)
	for len(got) < 3 {
		select {
		case ev := <-events:
			got = append(got, ev.Backend+":"+ev.State)
		case <-deadline:
			t.Fatalf("events so far: %v, want 3", got)
		}
	}
	want := []string{"b1:draining", "b1:drained", "b1:removed"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event[%d] = %q, want %q (all: %v)", i, got[i], want[i], got)
		}
	}
}

// TestTotalsExactUnderBackendFailure is the in-tree version of the
// chaos exactness assertion: kill and revive a backend mid-run and the
// kernel's offered ledger still equals — bit for bit — what the
// workload closures produced.
func TestTotalsExactUnderBackendFailure(t *testing.T) {
	for _, proto := range allProtocols {
		t.Run(proto.String(), func(t *testing.T) {
			fb := &faultBackend{inner: testManagerAt(2, 15)}
			k := NewKernel(testManagerAt(2, 15))
			if err := k.AddBackend("b1", fb); err != nil {
				t.Fatal(err)
			}
			k.SetProtocol(proto)
			k.SetBackendTimeout(10 * time.Millisecond)

			var mu sync.Mutex
			expected := map[string]float64{}
			gen := simhpc.NewWorkloadGen(11)
			var genMu sync.Mutex
			for i := 0; i < 4; i++ {
				name := fmt.Sprintf("app%d", i)
				hint := fmt.Sprintf("b%d", i%2)
				if _, err := k.Attach(AppSpec{
					Name:    name,
					Backend: hint,
					Workload: func() ([]*simhpc.Task, error) {
						genMu.Lock()
						tasks := gen.Mix(2, 1, 1, 1, 8)
						genMu.Unlock()
						sum := 0.0
						for _, task := range tasks {
							sum += task.GFlop
						}
						mu.Lock()
						expected[name] += sum
						mu.Unlock()
						return tasks, nil
					},
				}); err != nil {
					t.Fatal(err)
				}
			}
			if err := k.Start(context.Background(), Options{Flush: 2 * time.Millisecond}); err != nil {
				t.Fatal(err)
			}
			defer k.Stop()
			waitFor(t, "all apps working", func() bool {
				tot := k.TotalsPerApp()
				return tot["app0"] > 0 && tot["app1"] > 0 && tot["app2"] > 0 && tot["app3"] > 0
			})

			fb.panicNext.Store(true)
			waitHealth(t, k, "b1", BackendFailed)
			e0 := k.Epochs()
			waitFor(t, "epochs after failure", func() bool { return k.Epochs() >= e0+10 })
			if err := k.ReviveBackend("b1"); err != nil {
				t.Fatal(err)
			}
			waitHealth(t, k, "b1", BackendHealthy)
			waitFor(t, "epochs after revive", func() bool { return k.Epochs() >= e0+30 })
			k.Stop()
			if err := k.Err(); err != nil {
				t.Fatal(err)
			}

			totals := k.TotalsPerApp()
			mu.Lock()
			defer mu.Unlock()
			for name, want := range expected {
				if got := totals[name]; got != want {
					t.Errorf("%s: ledger %v, workload produced %v", name, got, want)
				}
			}
		})
	}
}
