package runtime

import (
	"context"
	goruntime "runtime"
	"sync/atomic"
)

// WakeMode selects the handshake between the shard loops (and the
// clock protocol's dispatch lanes) and the epoch scheduler. The notify
// path exists because the channel handshake's cost is O(shards) of
// scheduler work per epoch — one channel send per shard on the submit
// side and one more per shard on the release side, each a lock acquire
// plus a potential goroutine wakeup. At 1–2 cores that tax hides
// behind the manager epoch; at 8–16 cores it IS the serial section
// (the non-threaded-CCP argument inverted: plentiful cores make the
// wake path the tax, not the loops). The notify path replaces both
// sides with atomics — a lock-free submit list the scheduler drains
// with one swap, and a published per-shard acceptance counter that
// shards spin-then-park on — so the scheduler's per-epoch wake work is
// one pass of atomic stores plus tokens only for the shards that
// actually parked.
type WakeMode int32

const (
	// WakeNotify is the default: lock-free submit list + published
	// acceptance counters, parking only as a last resort.
	WakeNotify WakeMode = iota
	// WakeChannel is the PR-2 channel handshake (submit channel +
	// per-shard accepted channel), kept selectable as the K12 baseline
	// the notify path is measured against — the LockedInbox convention.
	WakeChannel
)

func (m WakeMode) String() string {
	if m == WakeChannel {
		return "channel"
	}
	return "notify"
}

// submitStack is the notify path's intrusive Treiber stack of shards
// with batches ready to merge. A shard is in the stack at most once
// (it never has two batches in flight), so the intrusive next link is
// safe. push is lock-free and allocation-free; the scheduler takes the
// whole list with one swap.
type submitStack struct {
	head atomic.Pointer[shard]
}

// push links sh into the stack and reports whether the stack was empty
// — the pusher that turns it non-empty owns waking the scheduler.
func (s *submitStack) push(sh *shard) (wasEmpty bool) {
	for {
		old := s.head.Load()
		sh.next = old
		if s.head.CompareAndSwap(old, sh) {
			return old == nil
		}
	}
}

// popAll detaches the whole submit list. Order is reversed submission
// order, which the scheduler does not care about — batches merge into
// one epoch regardless.
func (s *submitStack) popAll() *shard {
	return s.head.Swap(nil)
}

// wakeHub is one generation's wake-path state, shared by the shard
// loops and the scheduler. Exactly one of {submit} / {stack, sig} is
// live, per mode.
type wakeHub struct {
	mode WakeMode
	// Channel mode: one slot per shard, so a submit never blocks.
	submit chan *shard
	// Notify mode: the lock-free submit list plus a one-slot doorbell
	// the first pusher rings; the scheduler drains the list on each
	// ring, so later pushers piggyback without another wake.
	stack submitStack
	sig   chan struct{}
}

func newWakeHub(mode WakeMode, nShards int) *wakeHub {
	w := &wakeHub{mode: mode}
	if mode == WakeChannel {
		w.submit = make(chan *shard, nShards)
	} else {
		w.sig = make(chan struct{}, 1)
	}
	return w
}

// submitShard hands a shard's batch to the scheduler: a channel send
// in channel mode, a stack push plus (only when the stack was idle) a
// doorbell ring in notify mode. Every operation that can wake the
// scheduler counts against wakeOps.
func (k *Kernel) submitShard(w *wakeHub, sh *shard) {
	if w.mode == WakeChannel {
		k.wakeOps.Add(1)
		w.submit <- sh
		return
	}
	sh.submitted++
	if w.stack.push(sh) {
		k.wakeOps.Add(1)
		select {
		case w.sig <- struct{}{}:
		default: // doorbell already rung; the scheduler will drain us too
		}
	}
}

// waitAccepted blocks a notify-mode shard until the scheduler has
// merged its batch: check the published counter, yield once (on a busy
// host acceptance usually lands within the yield), then park on the
// shard's one-slot token channel. The parked flag is the futex-style
// contract with the scheduler: a shard arms it before parking and
// re-checks the counter afterwards, the scheduler publishes the
// counter before testing the flag — so a wake is never lost, and a
// token is only ever sent to a shard that actually parked. Returns
// false when the generation wound down instead. Allocation-free.
func (k *Kernel) waitAccepted(ctx context.Context, sh *shard) bool {
	target := sh.submitted
	if sh.accepted.Load() >= target {
		return true
	}
	goruntime.Gosched()
	for sh.accepted.Load() < target {
		sh.parked.Store(true)
		if sh.accepted.Load() >= target {
			if !sh.parked.Swap(false) {
				// The scheduler claimed the flag: a wake token is in
				// flight (or landed); clear it so the next park does not
				// wake spuriously.
				select {
				case <-sh.park:
				default:
				}
			}
			return true
		}
		select {
		case <-sh.park:
			// Woken: re-check the counter. A stale token (from a race
			// the self-unpark path lost) just re-arms and parks again.
		case <-ctx.Done():
			return false
		}
	}
	return true
}

// releaseShards is the scheduler's single wake pass at flush: publish
// each pending shard's acceptance, then hand a token only to the
// shards that parked. In channel mode it is the legacy per-shard send.
func (k *Kernel) releaseShards(w *wakeHub, pending []*shard) {
	if w.mode == WakeChannel {
		for _, sh := range pending {
			k.wakeOps.Add(1)
			sh.acceptedCh <- struct{}{}
		}
		return
	}
	for _, sh := range pending {
		sh.accepted.Add(1)
		if sh.parked.Swap(false) {
			k.wakeOps.Add(1)
			select {
			case sh.park <- struct{}{}:
			default: // stale token already buffered; the shard will eat it
			}
		}
	}
}

// WakeOps reports the cumulative count of wake operations the epoch
// machinery has performed — channel sends in channel mode; doorbell
// rings, park tokens and lane wakes in notify mode. K12 reports the
// per-epoch rate: the channel handshake costs ~2·shards/epoch, the
// notify path O(1) plus one token per shard that actually parked.
func (k *Kernel) WakeOps() int64 { return k.wakeOps.Load() }

// LoopShards reports how many control-loop workers the currently
// served generation runs (0 before the first generation is up). It
// exists so tests and operators can observe a topology reshape after a
// live GOMAXPROCS change.
func (k *Kernel) LoopShards() int { return int(k.topoShards.Load()) }

// maybeReshape rolls the serving generation once when GOMAXPROCS has
// drifted from the value the topology was shaped for (live
// runtime.GOMAXPROCS call or cgroup resize). Called from the epoch
// loops at low frequency — GOMAXPROCS(0) takes the scheduler lock, so
// it must not run per epoch. The CAS bounds it to one roll per
// generation; the new generation re-reads GOMAXPROCS and re-shapes
// shards, workers and commit fan-out.
func (k *Kernel) maybeReshape() {
	if int32(goruntime.GOMAXPROCS(0)) != k.topoGMP.Load() && k.topoDrift.CompareAndSwap(false, true) {
		k.requestPlacementRefresh()
	}
}

// commitWorkers splits the generation's GOMAXPROCS budget across
// concurrent backend commits: with n backends committing at once each
// gets its share of the cores for its manager's dispatch fan-out.
func (k *Kernel) commitWorkers(concurrent int) int {
	gmp := int(k.topoGMP.Load())
	if gmp <= 0 {
		gmp = goruntime.GOMAXPROCS(0)
	}
	if concurrent < 1 {
		concurrent = 1
	}
	w := gmp / concurrent
	if w < 1 {
		w = 1
	}
	return w
}
