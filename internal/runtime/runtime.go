// Package runtime is the concurrent adaptation kernel of the
// reproduction: it owns the collect–analyse–decide–act loop of paper §II
// for many applications at once and multiplexes their epoch workloads
// into a single shared rtrm.Manager — the two coupled control loops of
// Fig. 1 (application autotuning, cluster resource management) lifted
// out of per-example wiring into one goroutine-safe engine.
//
// The building blocks are three small interfaces extracted from the old
// monitor.Loop + autotune.Tuner + core.App tangle:
//
//   - Sensor — the collect stage: surrenders the telemetry samples
//     accumulated since the last epoch;
//   - Policy — the decide stage: picks the next configuration when the
//     SLA trigger fires;
//   - Knob — the act stage: actuates the chosen configuration.
//
// A Controller runs one application's loop over these stages; a Kernel
// runs many Controllers — either synchronously (RunEpoch, for
// deterministic simulation drivers) or concurrently (Start/Stop, one
// goroutine per application feeding a batched epoch scheduler).
package runtime

import (
	"repro/internal/autotune"
	"repro/internal/monitor"
	"repro/internal/simhpc"
)

// Sample is one telemetry observation.
type Sample struct {
	Metric string
	Value  float64
}

// Sensor is the collect stage: Collect returns (and forgets) the samples
// produced since the last call. Implementations must be safe for
// concurrent use with their producers.
type Sensor interface {
	Collect() []Sample
}

// SensorFunc adapts a function to the Sensor interface.
type SensorFunc func() []Sample

// Collect implements Sensor.
func (f SensorFunc) Collect() []Sample { return f() }

// SampleDrainer is an optional Sensor fast path: instead of returning a
// freshly allocated slice, the sensor streams its pending samples into
// fn. The control loop prefers this path when available, keeping the
// collect stage allocation-free (Inbox implements it).
type SampleDrainer interface {
	Drain(fn func(metric string, v float64))
}

// Policy is the decide stage: when the debounced SLA trigger fires,
// Decide picks the configuration to switch to. ok=false keeps the
// current configuration (e.g. the knowledge base knows nothing better).
// The sums map is scratch the control loop reuses across ticks: it is
// only valid for the duration of the call and must not be retained.
type Policy interface {
	Decide(d monitor.Decision, sums map[string]monitor.Summary) (cfg autotune.Config, ok bool)
}

// PolicyFunc adapts a function to the Policy interface.
type PolicyFunc func(monitor.Decision, map[string]monitor.Summary) (autotune.Config, bool)

// Decide implements Policy.
func (f PolicyFunc) Decide(d monitor.Decision, sums map[string]monitor.Summary) (autotune.Config, bool) {
	return f(d, sums)
}

// Knob is the act stage: Apply actuates a configuration chosen by the
// policy. Implementations must tolerate calls from the control-loop
// goroutine while the application is serving.
type Knob interface {
	Apply(cfg autotune.Config)
}

// KnobFunc adapts a function to the Knob interface.
type KnobFunc func(autotune.Config)

// Apply implements Knob.
func (f KnobFunc) Apply(cfg autotune.Config) { f(cfg) }

// Workload materializes the application's next-epoch tasks for the
// cluster under its currently applied configuration. The returned
// tasks are handed to the manager, which may still be reading them
// while the kernel's pipelined epochs invoke Workload again — so each
// call must return freshly built tasks and never retain or mutate
// previously returned ones.
type Workload func() ([]*simhpc.Task, error)

// AppSpec declares one adaptive application to a Controller or Kernel.
// Sensor, Policy, Knob and Workload are all optional: a pure compute app
// may only have a Workload; a pure serving app may have no Workload.
type AppSpec struct {
	Name string
	// SLA is checked against the windowed metric summaries each tick.
	SLA monitor.SLA
	// Window is the samples-per-metric window size (default 32).
	Window int
	// Debounce is the consecutive-violation count required before the
	// policy is consulted (default 2).
	Debounce int

	// Backend optionally names the kernel backend this app prefers —
	// the placement hint. All shipped placement policies pin an app
	// whose hint matches a registered backend; an unmatched hint is
	// ignored (the policy places the app as if unhinted).
	Backend string

	Sensor   Sensor
	Policy   Policy
	Knob     Knob
	Workload Workload

	// OnEpoch, when set, receives every kernel epoch result this app
	// contributed to. In concurrent mode it is called from the kernel's
	// epoch-executor goroutine, possibly while this app's control loop
	// is already ticking the next epoch.
	OnEpoch func(EpochResult)
}
