package runtime

import (
	"sync"
	"testing"

	"repro/internal/autotune"
	"repro/internal/monitor"
)

// TestControllerAdaptsOnSustainedViolation is the old monitor.Loop
// contract, restated over the extracted Sensor/Policy/Knob stages.
func TestControllerAdaptsOnSustainedViolation(t *testing.T) {
	var applied []autotune.Config
	var decisions []monitor.Decision
	c := NewController(AppSpec{
		Name: "demo",
		SLA: monitor.SLA{Goals: []monitor.Goal{
			{Metric: monitor.MetricLatency, Relation: monitor.AtMost, Target: 1.0},
		}},
		Window:   4,
		Debounce: 2,
		Policy: PolicyFunc(func(d monitor.Decision, _ map[string]monitor.Summary) (autotune.Config, bool) {
			decisions = append(decisions, d)
			return autotune.Config{"knob": 1}, true
		}),
		Knob: KnobFunc(func(cfg autotune.Config) { applied = append(applied, cfg) }),
	})
	// Healthy phase: no adaptations.
	for i := 0; i < 5; i++ {
		c.Push(monitor.MetricLatency, 0.5)
		c.Tick()
	}
	if c.Adaptations() != 0 {
		t.Fatalf("healthy phase adapted %d times", c.Adaptations())
	}
	// Degraded phase: fires after debounce, applies via the knob.
	for i := 0; i < 3; i++ {
		c.Push(monitor.MetricLatency, 2.0)
		c.Tick()
	}
	if c.Adaptations() != 1 || len(applied) != 1 {
		t.Fatalf("adaptations=%d applied=%v", c.Adaptations(), applied)
	}
	if !decisions[0].Adapt || decisions[0].Violation <= 0 || decisions[0].Reason == "" {
		t.Errorf("decision: %+v", decisions[0])
	}
	if c.Metrics().Window(monitor.MetricLatency).Len() != 0 {
		t.Error("windows should reset after adaptation")
	}
	if c.Ticks() != 8 || c.Fires() != 1 {
		t.Errorf("counters: ticks=%d fires=%d", c.Ticks(), c.Fires())
	}
}

// TestControllerPolicyDecline: a fire whose policy declines (nothing
// better known) still resets windows but does not count as adaptation.
func TestControllerPolicyDecline(t *testing.T) {
	c := NewController(AppSpec{
		Name: "stuck",
		SLA: monitor.SLA{Goals: []monitor.Goal{
			{Metric: monitor.MetricLatency, Relation: monitor.AtMost, Target: 1.0},
		}},
		Window:   4,
		Debounce: 1,
		Policy: PolicyFunc(func(monitor.Decision, map[string]monitor.Summary) (autotune.Config, bool) {
			return nil, false
		}),
	})
	c.Push(monitor.MetricLatency, 9)
	d := c.Tick()
	if !d.Adapt {
		t.Fatal("should fire")
	}
	if c.Fires() != 1 || c.Adaptations() != 0 {
		t.Errorf("fires=%d adaptations=%d", c.Fires(), c.Adaptations())
	}
}

// TestControllerSensorCollect: samples flow from a concurrent Inbox
// through Collect into the windows.
func TestControllerSensorCollect(t *testing.T) {
	inbox := &Inbox{}
	c := NewController(AppSpec{Name: "sensed", Sensor: inbox, Window: 8})
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				inbox.Push("m", 2)
			}
		}()
	}
	wg.Wait()
	if inbox.Len() != 200 {
		t.Fatalf("inbox len %d", inbox.Len())
	}
	c.Tick()
	if got := c.Metrics().Window("m").Total(); got != 200 {
		t.Errorf("collected %d samples, want 200", got)
	}
	if inbox.Len() != 0 {
		t.Error("collect should drain the inbox")
	}
}

func TestLadderPolicy(t *testing.T) {
	p := &LadderPolicy{Knob: "fidelity", Rungs: []float64{0, 1, 2, 3}}
	if p.Level() != 0 {
		t.Fatalf("initial level %v", p.Level())
	}
	for want := 1.0; want <= 3; want++ {
		cfg, ok := p.Decide(monitor.Decision{}, nil)
		if !ok || cfg["fidelity"] != want {
			t.Fatalf("step to %v: %v %v", want, cfg, ok)
		}
	}
	if _, ok := p.Decide(monitor.Decision{}, nil); ok {
		t.Error("bottom rung should decline")
	}
	cfg, ok := p.Raise()
	if !ok || cfg["fidelity"] != 2 {
		t.Errorf("raise: %v %v", cfg, ok)
	}
}

// TestTunerPolicy wires the policy to a real tuner under drift.
func TestTunerPolicy(t *testing.T) {
	space := autotune.NewSpace(autotune.VariantKnob("variant", "A", "B"))
	phase := 0.0
	cost := func(cfg autotune.Config) autotune.Measurement {
		if cfg["variant"] == phase {
			return autotune.Measurement{Cost: 1}
		}
		return autotune.Measurement{Cost: 3}
	}
	tu := autotune.NewTuner(space, &autotune.Exhaustive{}, cost)
	if _, _, err := tu.Run(0); err != nil {
		t.Fatal(err)
	}
	p := &TunerPolicy{Tuner: tu}
	if _, ok := p.Decide(monitor.Decision{}, nil); ok {
		t.Fatal("no drift: policy should decline")
	}
	// Drift: deployed variant A degrades past B's stale estimate.
	phase = 1
	for i := 0; i < 40; i++ {
		tu.Observe(4.0)
	}
	cfg, ok := p.Decide(monitor.Decision{}, nil)
	if !ok || cfg["variant"] != 1 {
		t.Errorf("policy under drift: %v %v", cfg, ok)
	}
}
