package runtime

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// inboxLike covers both ingestion buffers so the stress tests run
// against the lock-free ring and the mutexed baseline alike.
type inboxLike interface {
	Push(metric string, v float64)
	Collect() []Sample
	Len() int
}

// TestInboxStress is the ring's correctness gauntlet (run under -race
// in CI): N producers push tagged samples while a collector drains
// concurrently; afterwards every sample must have arrived exactly once.
func TestInboxStress(t *testing.T) {
	for _, impl := range []struct {
		name string
		mk   func() inboxLike
	}{
		{"ring", func() inboxLike { return &Inbox{} }},
		{"locked", func() inboxLike { return &LockedInbox{} }},
	} {
		t.Run(impl.name, func(t *testing.T) {
			const producers = 8
			// Enough samples per producer to force many chunk handoffs.
			const per = 4 * inboxChunkSize
			in := impl.mk()

			var wg sync.WaitGroup
			var producing atomic.Int32
			producing.Store(producers)
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					defer producing.Add(-1)
					metric := fmt.Sprintf("m%d", p)
					for i := 0; i < per; i++ {
						in.Push(metric, float64(i))
					}
				}(p)
			}

			// Collector races the producers, then drains the remainder.
			seen := make(map[string][]bool)
			record := func(batch []Sample) {
				for _, s := range batch {
					marks := seen[s.Metric]
					if marks == nil {
						marks = make([]bool, per)
						seen[s.Metric] = marks
					}
					i := int(s.Value)
					if i < 0 || i >= per {
						t.Errorf("%s: impossible sample %v", s.Metric, s.Value)
						continue
					}
					if marks[i] {
						t.Errorf("%s: sample %d delivered twice", s.Metric, i)
					}
					marks[i] = true
				}
			}
			for producing.Load() > 0 {
				record(in.Collect())
			}
			wg.Wait()
			record(in.Collect())

			for p := 0; p < producers; p++ {
				metric := fmt.Sprintf("m%d", p)
				marks := seen[metric]
				if marks == nil {
					t.Fatalf("%s: no samples arrived", metric)
				}
				for i, ok := range marks {
					if !ok {
						t.Fatalf("%s: sample %d lost", metric, i)
					}
				}
			}
			if n := in.Len(); n != 0 {
				t.Errorf("Len after full drain: %d", n)
			}
		})
	}
}

// TestInboxOrderPerProducer: the ring must preserve each producer's
// push order (claims are monotonic within a chunk and chunks are
// chained in claim order).
func TestInboxOrderPerProducer(t *testing.T) {
	in := &Inbox{}
	const producers, per = 4, 3 * inboxChunkSize
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			metric := fmt.Sprintf("m%d", p)
			for i := 0; i < per; i++ {
				in.Push(metric, float64(i))
			}
		}(p)
	}
	wg.Wait()
	next := make(map[string]int)
	in.Drain(func(metric string, v float64) {
		if int(v) != next[metric] {
			t.Fatalf("%s: got %v, want %d", metric, v, next[metric])
		}
		next[metric]++
	})
	for p := 0; p < producers; p++ {
		if n := next[fmt.Sprintf("m%d", p)]; n != per {
			t.Errorf("m%d: drained %d of %d", p, n, per)
		}
	}
}

// TestInboxReleasesDrainedChunks pins the anti-leak property: once the
// collector has taken over the chain, the first-chunk anchor is
// dropped, so drained chunks become unreachable instead of being
// retained forever through the next-pointer chain.
func TestInboxReleasesDrainedChunks(t *testing.T) {
	in := &Inbox{}
	sink := func(string, float64) {}
	for round := 0; round < 8; round++ {
		for i := 0; i < 2*inboxChunkSize; i++ {
			in.Push("m", float64(i))
		}
		in.Drain(sink)
		if in.first.Load() != nil {
			t.Fatal("first anchor still set after a drain; drained chunks stay reachable")
		}
	}
	// The live chain from head must be short (current chunk plus at
	// most the freshly installed successor), not the full history.
	n := 0
	for c := in.head; c != nil; c = c.next.Load() {
		n++
	}
	if n > 2 {
		t.Errorf("%d chunks still chained from head after full drains, want <= 2", n)
	}
}

// TestInboxPushBatchStress mixes bulk and single-sample producers with
// a concurrent collector: every sample must arrive exactly once, with
// batch sizes chosen to straddle chunk boundaries (run under -race).
func TestInboxPushBatchStress(t *testing.T) {
	const producers = 8
	const batches = 64
	// Batch sizes around the chunk size exercise the overhang path:
	// claims that run past a chunk boundary mid-batch.
	sizes := []int{1, 7, inboxChunkSize - 1, inboxChunkSize, inboxChunkSize + 3, 3 * inboxChunkSize}
	in := &Inbox{}

	var wg sync.WaitGroup
	var producing atomic.Int32
	producing.Store(producers)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			defer producing.Add(-1)
			metric := fmt.Sprintf("m%d", p)
			seq := 0
			for b := 0; b < batches; b++ {
				sz := sizes[b%len(sizes)]
				batch := make([]Sample, sz)
				for i := range batch {
					batch[i] = Sample{Metric: metric, Value: float64(seq)}
					seq++
				}
				if p%2 == 0 {
					in.PushBatch(batch)
				} else {
					for _, s := range batch {
						in.Push(s.Metric, s.Value)
					}
				}
			}
		}(p)
	}

	seen := make(map[string][]bool)
	record := func(batch []Sample) {
		for _, s := range batch {
			marks := seen[s.Metric]
			if marks == nil {
				marks = make([]bool, batches*3*inboxChunkSize)
				seen[s.Metric] = marks
			}
			i := int(s.Value)
			if i < 0 || i >= len(marks) {
				t.Errorf("%s: impossible sample %v", s.Metric, s.Value)
				continue
			}
			if marks[i] {
				t.Errorf("%s: sample %d delivered twice", s.Metric, i)
			}
			marks[i] = true
		}
	}
	for producing.Load() > 0 {
		record(in.Collect())
	}
	wg.Wait()
	record(in.Collect())

	for p := 0; p < producers; p++ {
		metric := fmt.Sprintf("m%d", p)
		marks := seen[metric]
		count := 0
		for _, ok := range marks {
			if ok {
				count++
			}
		}
		want := 0
		for b := 0; b < batches; b++ {
			want += sizes[b%len(sizes)]
		}
		if count != want {
			t.Errorf("%s: %d of %d samples arrived", metric, count, want)
		}
	}
	if n := in.Len(); n != 0 {
		t.Errorf("Len after full drain: %d", n)
	}
}

// TestInboxPushBatchOrder: a bulk push must preserve batch order, and
// interleave with other producers' batches without tearing its own.
func TestInboxPushBatchOrder(t *testing.T) {
	in := &Inbox{}
	const producers, per = 4, 2 * inboxChunkSize
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			metric := fmt.Sprintf("m%d", p)
			batch := make([]Sample, 0, 37)
			for i := 0; i < per; {
				batch = batch[:0]
				for j := 0; j < 37 && i < per; j++ {
					batch = append(batch, Sample{Metric: metric, Value: float64(i)})
					i++
				}
				in.PushBatch(batch)
			}
		}(p)
	}
	wg.Wait()
	next := make(map[string]int)
	in.Drain(func(metric string, v float64) {
		if int(v) != next[metric] {
			t.Fatalf("%s: got %v, want %d", metric, v, next[metric])
		}
		next[metric]++
	})
	for p := 0; p < producers; p++ {
		if n := next[fmt.Sprintf("m%d", p)]; n != per {
			t.Errorf("m%d: drained %d of %d", p, n, per)
		}
	}
}

// TestInboxPushBatchNoAlloc pins the bulk ingest fast path: pushing a
// reused batch must not allocate beyond amortized chunk turnover.
func TestInboxPushBatchNoAlloc(t *testing.T) {
	in := &Inbox{}
	var sink float64
	fn := func(_ string, v float64) { sink += v }
	batch := make([]Sample, 64)
	for i := range batch {
		batch[i] = Sample{Metric: "m", Value: float64(i)}
	}
	in.PushBatch(batch)
	in.Drain(fn)
	allocs := testing.AllocsPerRun(50, func() {
		in.PushBatch(batch)
		in.Drain(fn)
	})
	// 64 samples per cycle cross a 256-slot chunk boundary every 4th
	// cycle, so chunk turnover contributes a fractional amortized
	// allocation; one object or more per cycle means the path regressed.
	if allocs >= 1 {
		t.Errorf("PushBatch+Drain allocates %.2f objects per cycle, want < 1", allocs)
	}
}

// TestInboxZeroValue: the zero Inbox must be usable directly (core.App
// embeds one by value) and an empty collect must not allocate chunks.
func TestInboxZeroValue(t *testing.T) {
	var in Inbox
	if got := in.Collect(); len(got) != 0 {
		t.Errorf("fresh inbox returned %v", got)
	}
	if in.Len() != 0 {
		t.Errorf("fresh Len = %d", in.Len())
	}
	in.Push("m", 1)
	in.Push("m", 2)
	if in.Len() != 2 {
		t.Errorf("Len = %d, want 2", in.Len())
	}
	got := in.Collect()
	if len(got) != 2 || got[0].Value != 1 || got[1].Value != 2 {
		t.Errorf("collected %v", got)
	}
}

// TestInboxDrainNoAlloc pins the kernel's collect fast path: draining
// buffered samples through a pre-bound function must not allocate.
func TestInboxDrainNoAlloc(t *testing.T) {
	in := &Inbox{}
	var sink float64
	fn := func(_ string, v float64) { sink += v }
	// Warm the first chunk so init allocations are out of the measured
	// window, then measure push+drain cycles inside one chunk.
	in.Push("m", 0)
	in.Drain(fn)
	allocs := testing.AllocsPerRun(50, func() {
		in.Push("m", 1)
		in.Push("m", 2)
		in.Drain(fn)
	})
	// Chunk turnover (every inboxChunkSize samples) may contribute a
	// fractional amortized allocation; anything at or above one object
	// per cycle means the fast path regressed.
	if allocs >= 1 {
		t.Errorf("push+drain allocates %.2f objects per cycle, want < 1", allocs)
	}
}
