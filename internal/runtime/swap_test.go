package runtime

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/autotune"
	"repro/internal/monitor"
)

func TestSwapPolicyUnknownApp(t *testing.T) {
	k := NewKernel(testManager(2))
	_, err := k.SwapPolicy("ghost", PolicyFunc(func(monitor.Decision, map[string]monitor.Summary) (autotune.Config, bool) {
		return nil, false
	}), nil)
	if !errors.Is(err, ErrUnknownApp) {
		t.Fatalf("err = %v, want ErrUnknownApp", err)
	}
}

// TestSwapPolicyLive swaps the policy of an app between synchronous
// epochs: decisions switch to the new policy, counters and totals are
// retained, and the old policy is handed back.
func TestSwapPolicyLive(t *testing.T) {
	k := NewKernel(testManager(2))
	inbox := &Inbox{}
	var applied atomic.Value // last cfg "who" marker
	oldPolicy := PolicyFunc(func(monitor.Decision, map[string]monitor.Summary) (autotune.Config, bool) {
		return autotune.Config{"who": 1}, true
	})
	ctl, err := k.Attach(AppSpec{
		Name: "swappable",
		SLA: monitor.SLA{Goals: []monitor.Goal{
			{Metric: monitor.MetricLatency, Relation: monitor.AtMost, Target: 1.0},
		}},
		Window:   4,
		Debounce: 1,
		Sensor:   inbox,
		Policy:   oldPolicy,
		Knob:     KnobFunc(func(cfg autotune.Config) { applied.Store(cfg["who"]) }),
	})
	if err != nil {
		t.Fatal(err)
	}
	inbox.Push(monitor.MetricLatency, 3.0)
	if _, err := k.RunEpoch(60); err != nil {
		t.Fatal(err)
	}
	if got := applied.Load(); got != 1.0 {
		t.Fatalf("pre-swap knob = %v, want 1", got)
	}
	ticksBefore, adaptsBefore := ctl.Ticks(), ctl.Adaptations()

	prev, err := k.SwapPolicy("swappable",
		PolicyFunc(func(monitor.Decision, map[string]monitor.Summary) (autotune.Config, bool) {
			return autotune.Config{"who": 2}, true
		}), nil)
	if err != nil {
		t.Fatal(err)
	}
	if prev == nil {
		t.Fatal("SwapPolicy returned no previous policy")
	}
	if cfg, _ := prev.Decide(monitor.Decision{}, nil); cfg["who"] != 1 {
		t.Fatalf("previous policy is not the original: %v", cfg)
	}

	inbox.Push(monitor.MetricLatency, 3.0)
	if _, err := k.RunEpoch(60); err != nil {
		t.Fatal(err)
	}
	if got := applied.Load(); got != 2.0 {
		t.Fatalf("post-swap knob = %v, want 2", got)
	}
	if ctl.Ticks() <= ticksBefore || ctl.Adaptations() <= adaptsBefore {
		t.Fatalf("counters reset by swap: ticks %d→%d adapts %d→%d",
			ticksBefore, ctl.Ticks(), adaptsBefore, ctl.Adaptations())
	}
}

// TestSwapPolicyClearsQuarantine: a panicking policy quarantines the
// app via the tick-path recover; swapping in a working replacement
// clears the quarantine without a detach (totals survive).
func TestSwapPolicyClearsQuarantine(t *testing.T) {
	k := NewKernel(testManager(2))
	inbox := &Inbox{}
	ctl, err := k.Attach(AppSpec{
		Name: "crashy",
		SLA: monitor.SLA{Goals: []monitor.Goal{
			{Metric: monitor.MetricLatency, Relation: monitor.AtMost, Target: 1.0},
		}},
		Window:   4,
		Debounce: 1,
		Sensor:   inbox,
		Policy: PolicyFunc(func(monitor.Decision, map[string]monitor.Summary) (autotune.Config, bool) {
			panic("bad tenant policy")
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	inbox.Push(monitor.MetricLatency, 3.0)
	if _, err := k.RunEpoch(60); err != nil {
		t.Fatal(err)
	}
	if !ctl.Quarantined() {
		t.Fatal("panicking policy did not quarantine the app")
	}

	if _, err := k.SwapPolicy("crashy",
		PolicyFunc(func(monitor.Decision, map[string]monitor.Summary) (autotune.Config, bool) {
			return autotune.Config{"level": 1}, true
		}), nil); err != nil {
		t.Fatal(err)
	}
	if ctl.Quarantined() {
		t.Fatal("swap did not clear quarantine")
	}
	if ctl.LastError() != "" {
		t.Fatalf("lastErr survived swap: %q", ctl.LastError())
	}
	inbox.Push(monitor.MetricLatency, 3.0)
	if _, err := k.RunEpoch(60); err != nil {
		t.Fatal(err)
	}
	if ctl.Adaptations() == 0 {
		t.Fatal("replacement policy never adapted")
	}
}

// TestSwapPolicyUnderChurn hot-swaps one app's policy continuously
// while other apps attach and detach, across all three epoch
// protocols. Run with -race: the swap path must not tear a decision or
// race the epoch engine's snapshots.
func TestSwapPolicyUnderChurn(t *testing.T) {
	for _, proto := range []EpochProtocol{Barrier, PerBackendClock, OptimisticMerge} {
		t.Run(proto.String(), func(t *testing.T) {
			k := NewKernel(testManager(4))
			k.SetProtocol(proto)
			inbox := &Inbox{}
			var decisions atomic.Int64
			mkPolicy := func(id float64) Policy {
				return PolicyFunc(func(monitor.Decision, map[string]monitor.Summary) (autotune.Config, bool) {
					decisions.Add(1)
					return autotune.Config{"level": id}, true
				})
			}
			_, err := k.Attach(AppSpec{
				Name: "stable",
				SLA: monitor.SLA{Goals: []monitor.Goal{
					{Metric: monitor.MetricLatency, Relation: monitor.AtMost, Target: 1.0},
				}},
				Window:   4,
				Debounce: 1,
				Sensor:   inbox,
				Policy:   mkPolicy(0),
				Knob:     KnobFunc(func(autotune.Config) {}),
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := k.Start(context.Background(), Options{Flush: 2 * time.Millisecond}); err != nil {
				t.Fatal(err)
			}
			defer k.Stop()

			stop := make(chan struct{})
			var wg sync.WaitGroup
			// Membership churn.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					name := fmt.Sprintf("churn-%d", i%8)
					if _, err := k.Attach(AppSpec{Name: name}); err == nil {
						time.Sleep(500 * time.Microsecond)
						_ = k.Detach(name)
					}
				}
			}()
			// Continuous violation so the stable app's policy fires.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
						inbox.Push(monitor.MetricLatency, 3.0)
						time.Sleep(200 * time.Microsecond)
					}
				}
			}()
			// Hot-swap loop.
			deadline := time.Now().Add(400 * time.Millisecond)
			for i := 1; time.Now().Before(deadline); i++ {
				if _, err := k.SwapPolicy("stable", mkPolicy(float64(i)), nil); err != nil {
					t.Errorf("swap %d: %v", i, err)
					break
				}
				time.Sleep(time.Millisecond)
			}
			close(stop)
			wg.Wait()
			if decisions.Load() == 0 {
				t.Fatal("no policy decisions fired during the churn run")
			}
		})
	}
}
