package runtime

import (
	goruntime "runtime"
	"sync"
	"sync/atomic"
)

// inboxChunkSize is the slot count of one ingestion chunk. 256 samples
// amortize one chunk allocation over ~6 KB of telemetry, keeping the
// steady-state push path allocation-free.
const inboxChunkSize = 256

// inboxChunk is one fixed-size segment of the ingestion ring. Producers
// claim slots with a single atomic add; a slot's ready flag publishes
// the written sample to the collector (store-release / load-acquire).
type inboxChunk struct {
	// reserve counts claimed slots; values >= inboxChunkSize mean the
	// chunk is exhausted and the claimant must move to next. Every
	// producer hammers this word with an atomic add, so it gets a cache
	// line to itself — sharing one with next (read on every push to test
	// for overflow) or the first ready flags would false-share the
	// hottest line in the ingress path. The pads cost ~2 % of the chunk.
	reserve atomic.Int64
	_       [56]byte
	next    atomic.Pointer[inboxChunk]
	_       [56]byte
	ready   [inboxChunkSize]atomic.Uint32
	slots   [inboxChunkSize]Sample
}

// Inbox is a concurrent sample buffer implementing Sensor: any number
// of producer goroutines Push while the control loop drains via Collect
// (or the allocation-free Drain). The zero value is ready to use.
//
// Internally it is a chunked lock-free ring (the ROADMAP's "async
// telemetry ingestion" item, after the non-threaded-CCP argument for a
// lock-free ingress): Push claims a slot with one atomic add and never
// takes a lock, so producers never contend with Collect or with a
// slower producer holding a mutex. Collect walks the chunk chain behind
// a consumer-side mutex that producers never touch. LockedInbox is the
// retained mutex-guarded baseline (benchmark K3 compares the two).
type Inbox struct {
	first atomic.Pointer[inboxChunk] // anchor for the collector, set once
	tail  atomic.Pointer[inboxChunk] // where producers claim slots

	pending atomic.Int64 // pushed minus collected (Len)

	collectMu sync.Mutex // serializes collectors only
	head      *inboxChunk
	headPos   int
}

// Push records a sample. It is lock-free: one atomic add to claim a
// slot, one atomic store to publish it; a chunk allocation every
// inboxChunkSize samples.
func (in *Inbox) Push(metric string, v float64) {
	c := in.tail.Load()
	if c == nil {
		c = in.initTail()
	}
	for {
		i := c.reserve.Add(1) - 1
		if i < inboxChunkSize {
			c.slots[i] = Sample{Metric: metric, Value: v}
			c.ready[i].Store(1)
			in.pending.Add(1)
			return
		}
		c = in.advance(c)
	}
}

// PushBatch records a batch of samples with one atomic slot-range
// claim per chunk touched — amortized one claim per inboxChunkSize
// samples — instead of one claim per sample: the bulk ingest path the
// control plane's observation batches land on. Batch order is
// preserved (the claimed ranges are contiguous and chunks are chained
// in claim order), the samples are copied, and the caller may reuse
// the slice immediately. Like Push it is lock-free and never contends
// with Collect.
func (in *Inbox) PushBatch(samples []Sample) {
	if len(samples) == 0 {
		return
	}
	c := in.tail.Load()
	if c == nil {
		c = in.initTail()
	}
	rest := samples
	for len(rest) > 0 {
		want := int64(len(rest))
		if want > inboxChunkSize {
			want = inboxChunkSize
		}
		end := c.reserve.Add(want)
		start := end - want
		if start >= inboxChunkSize {
			c = in.advance(c)
			continue
		}
		// The claim may run past the chunk: slots below the boundary
		// are filled, the overhang is abandoned (exactly what Push
		// does with a claim that lands past the end) and the remainder
		// of the batch moves to the successor chunk. The collector
		// never waits on abandoned slots — it caps the claim count at
		// the chunk size, and every slot below that cap is published
		// here before the overhang redirects.
		n := inboxChunkSize - start
		if n > want {
			n = want
		}
		copy(c.slots[start:start+n], rest[:n])
		for i := start; i < start+n; i++ {
			c.ready[i].Store(1)
		}
		rest = rest[n:]
		if end >= inboxChunkSize {
			c = in.advance(c)
		}
	}
	in.pending.Add(int64(len(samples)))
}

// initTail installs the first chunk. The first pointer is published
// before tail so the collector's anchor always reaches every sample.
func (in *Inbox) initTail() *inboxChunk {
	in.first.CompareAndSwap(nil, &inboxChunk{})
	c := in.first.Load()
	in.tail.CompareAndSwap(nil, c)
	return in.tail.Load()
}

// advance returns the successor of exhausted chunk c, installing it if
// needed, and helps swing the producer tail forward.
func (in *Inbox) advance(c *inboxChunk) *inboxChunk {
	next := c.next.Load()
	if next == nil {
		n := &inboxChunk{}
		if c.next.CompareAndSwap(nil, n) {
			next = n
		} else {
			next = c.next.Load()
		}
	}
	in.tail.CompareAndSwap(c, next)
	return next
}

// Drain streams every buffered sample into fn in push-claim order and
// removes them — the allocation-free collect path (SampleDrainer).
func (in *Inbox) Drain(fn func(metric string, v float64)) {
	in.collectMu.Lock()
	defer in.collectMu.Unlock()
	in.drainLocked(fn)
}

func (in *Inbox) drainLocked(fn func(metric string, v float64)) {
	c := in.head
	if c == nil {
		if c = in.first.Load(); c == nil {
			return // nothing ever pushed
		}
		in.head = c
	}
	// Drop the anchor once the producer side can no longer need it:
	// initTail reads `first` only while `tail` is nil and `tail` is
	// never reset, so after `tail` is published the anchor's only
	// effect is retaining every drained chunk via the next chain.
	// Clearing it any earlier races the first Push's two-step install
	// (first set, tail not yet) into a nil-chunk dereference.
	if in.first.Load() != nil && in.tail.Load() != nil {
		in.first.Store(nil)
	}
	for {
		claimed := c.reserve.Load()
		if claimed > inboxChunkSize {
			claimed = inboxChunkSize
		}
		for i := in.headPos; i < int(claimed); i++ {
			// A producer claimed this slot but may not have published it
			// yet; the window between its Add and Store is a few
			// instructions, so spin briefly.
			for c.ready[i].Load() == 0 {
				goruntime.Gosched()
			}
			s := &c.slots[i]
			fn(s.Metric, s.Value)
			in.pending.Add(-1)
		}
		in.headPos = int(claimed)
		if claimed < inboxChunkSize {
			return // chunk still filling: stay on it
		}
		next := c.next.Load()
		if next == nil {
			return // exhausted, successor not installed yet
		}
		c, in.head, in.headPos = next, next, 0
	}
}

// Collect drains and returns the buffered samples (Sensor).
func (in *Inbox) Collect() []Sample {
	in.collectMu.Lock()
	defer in.collectMu.Unlock()
	var out []Sample
	if n := in.pending.Load(); n > 0 {
		out = make([]Sample, 0, n)
	}
	in.drainLocked(func(metric string, v float64) {
		out = append(out, Sample{Metric: metric, Value: v})
	})
	return out
}

// Len returns the number of buffered samples (approximate while
// producers and collectors are active, exact at rest).
func (in *Inbox) Len() int { return int(in.pending.Load()) }

// LockedInbox is the PR-1 mutex-guarded sample buffer, retained as the
// CCBench-style contention baseline for the K3 ingestion benchmark
// (BenchmarkInboxIngest): every Push contends with every other producer
// and with Collect on one mutex. New code should use Inbox.
type LockedInbox struct {
	mu  sync.Mutex
	buf []Sample
}

// Push records a sample.
func (in *LockedInbox) Push(metric string, v float64) {
	in.mu.Lock()
	in.buf = append(in.buf, Sample{Metric: metric, Value: v})
	in.mu.Unlock()
}

// Collect drains and returns the buffered samples.
func (in *LockedInbox) Collect() []Sample {
	in.mu.Lock()
	out := in.buf
	in.buf = nil
	in.mu.Unlock()
	return out
}

// Len returns the number of buffered samples.
func (in *LockedInbox) Len() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.buf)
}
