package runtime

import (
	"sync"

	"repro/internal/autotune"
	"repro/internal/monitor"
)

// TunerPolicy is the mARGOt-style decide stage: on a firing decision it
// asks the autotuner to retune from its online knowledge base and, when
// the tuner switches points, returns the newly applied configuration.
type TunerPolicy struct {
	Tuner *autotune.Tuner
	// Margin is the fractional improvement the knowledge-base best must
	// offer over the applied point (default 0.05).
	Margin float64
}

// Decide implements Policy.
func (p *TunerPolicy) Decide(monitor.Decision, map[string]monitor.Summary) (autotune.Config, bool) {
	margin := p.Margin
	if margin == 0 {
		margin = 0.05
	}
	if !p.Tuner.Retune(margin) {
		return nil, false
	}
	return p.Tuner.Space.At(p.Tuner.Applied()), true
}

// LadderPolicy walks a single named knob down an ordered ladder of
// values, one rung per firing decision — the shape of the navigation
// server's fidelity controller (§VII-b): degrade under violation, and
// let the application Raise back when headroom returns.
type LadderPolicy struct {
	// Knob is the configuration key the ladder controls.
	Knob string
	// Rungs are the knob values, best quality (most expensive) first.
	Rungs []float64

	mu  sync.Mutex
	cur int
}

// Decide implements Policy: step one rung down (cheaper) if possible.
func (p *LadderPolicy) Decide(monitor.Decision, map[string]monitor.Summary) (autotune.Config, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cur >= len(p.Rungs)-1 {
		return nil, false
	}
	p.cur++
	return autotune.Config{p.Knob: p.Rungs[p.cur]}, true
}

// Raise steps one rung up (better quality) if possible, returning the
// configuration to apply.
func (p *LadderPolicy) Raise() (autotune.Config, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cur <= 0 {
		return nil, false
	}
	p.cur--
	return autotune.Config{p.Knob: p.Rungs[p.cur]}, true
}

// Level returns the current rung's value.
func (p *LadderPolicy) Level() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.Rungs[p.cur]
}
