package runtime

import (
	"context"
	"fmt"
	"math"
	goruntime "runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/rtrm"
	"repro/internal/simhpc"
)

// TestReshardOnGOMAXPROCSChange: a live GOMAXPROCS change (or cgroup
// resize) must re-shape the serving topology instead of running stale
// shards forever — the drift check rolls one generation, and the new
// generation re-reads GOMAXPROCS. 24 apps cross the 2·GOMAXPROCS
// saturation threshold in both directions: at 8 procs 24 > 16 saturates
// to 8 shards, at 16 procs 24 ≤ 32 goes back to one shard per app.
func TestReshardOnGOMAXPROCSChange(t *testing.T) {
	prev := goruntime.GOMAXPROCS(8)
	defer goruntime.GOMAXPROCS(prev)

	k := NewKernel(testManager(4))
	for i := 0; i < 24; i++ {
		if _, err := k.Attach(AppSpec{Name: fmt.Sprintf("app%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := k.Start(context.Background(), Options{Flush: 200 * time.Microsecond}); err != nil {
		t.Fatal(err)
	}
	defer k.Stop()

	waitShards := func(want int) {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for k.LoopShards() != want {
			if time.Now().After(deadline) {
				t.Fatalf("LoopShards() = %d, want %d (no reshape)", k.LoopShards(), want)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitShards(8) // 24 apps > 2·8: saturate at GOMAXPROCS

	// Shrink: 24 > 2·2 still saturates, now at 2 shards. The running
	// loops must notice the drift and roll.
	goruntime.GOMAXPROCS(2)
	waitShards(2)

	// Grow past the threshold the other way: 24 ≤ 2·16 de-saturates to
	// one shard per app.
	goruntime.GOMAXPROCS(16)
	waitShards(24)

	if err := k.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestDetachDrainManyCore: the detach-drain guarantee (a returned
// Detach means no in-flight batch still carries the app) must hold on
// the saturated many-core topology with the notify wake path — shards
// parking on counters instead of channels must still quiesce at the
// generation roll.
func TestDetachDrainManyCore(t *testing.T) {
	prev := goruntime.GOMAXPROCS(8)
	defer goruntime.GOMAXPROCS(prev)

	k := NewKernel(testManager(4))
	for i := 0; i < 32; i++ {
		if _, err := k.Attach(simpleSpec(fmt.Sprintf("app%d", i), simhpc.NewWorkloadGen(uint64(7+i)), 2)); err != nil {
			t.Fatal(err)
		}
	}
	if err := k.Start(context.Background(), Options{EpochDt: 60, Flush: 200 * time.Microsecond}); err != nil {
		t.Fatal(err)
	}
	defer k.Stop()

	// Let epochs flow, then detach half the apps while the loops run.
	start := k.Epochs()
	for k.Epochs() < start+3 {
		time.Sleep(time.Millisecond)
	}
	var wg sync.WaitGroup
	for i := 0; i < 32; i += 2 {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			if err := k.Detach(name); err != nil {
				t.Errorf("detach %s: %v", name, err)
			}
		}(fmt.Sprintf("app%d", i))
	}
	wg.Wait()

	// The survivors keep committing epochs on the re-shaped topology.
	after := k.Epochs()
	deadline := time.Now().Add(10 * time.Second)
	for k.Epochs() < after+3 {
		if time.Now().After(deadline) {
			t.Fatal("epochs stalled after concurrent detach burst")
		}
		time.Sleep(time.Millisecond)
	}
	k.Stop()
	if err := k.Err(); err != nil {
		t.Fatal(err)
	}
	// Zero observation loss: every offered GFlop is in the ledger —
	// detached apps' totals fold into the detached ledger, survivors
	// keep theirs.
	totals := k.TotalsPerApp()
	for i := 0; i < 32; i++ {
		name := fmt.Sprintf("app%d", i)
		if _, ok := totals[name]; !ok {
			t.Errorf("app %s missing from the totals ledger after drain", name)
		}
	}
}

// TestSeqlockEightReaders: the statsCell seqlock must serve consistent
// snapshots to eight concurrent readers — the many-core shape of the
// torn-read test, sized past the old 4-reader coverage.
func TestSeqlockEightReaders(t *testing.T) {
	prev := goruntime.GOMAXPROCS(8)
	defer goruntime.GOMAXPROCS(prev)

	var c statsCell
	done := make(chan struct{})
	go func() {
		defer close(done)
		for n := int64(1); n <= 30000; n++ {
			c.publishStats(rtrm.Stats{
				Epochs:        int(n),
				WorkGFlop:     float64(2 * n),
				EnergyJ:       float64(5 * n),
				ThermalEvents: int(3 * n),
			})
		}
	}()
	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				s, _ := c.snapshot()
				n := int64(s.Epochs)
				if s.WorkGFlop != float64(2*n) || s.EnergyJ != float64(5*n) || s.ThermalEvents != int(3*n) {
					t.Errorf("torn snapshot: %+v", s)
					return
				}
				select {
				case <-done:
					return
				default:
				}
			}
		}()
	}
	wg.Wait()
}

// TestWakePathNoAlloc: one full notify-mode epoch handshake — submit,
// doorbell drain, release, accept — allocates nothing. The park
// channels are per-generation allocations; steady state is atomics
// only.
func TestWakePathNoAlloc(t *testing.T) {
	k := &Kernel{}
	hub := newWakeHub(WakeNotify, 4)
	shards := make([]*shard, 4)
	for i := range shards {
		shards[i] = &shard{park: make(chan struct{}, 1), acceptedCh: make(chan struct{}, 1)}
	}
	pending := make([]*shard, 0, 4)
	ctx := context.Background()
	allocs := testing.AllocsPerRun(200, func() {
		for _, sh := range shards {
			k.submitShard(hub, sh)
		}
		select {
		case <-hub.sig:
		default:
		}
		for sh := hub.stack.popAll(); sh != nil; {
			next := sh.next
			pending = append(pending, sh)
			sh = next
		}
		k.releaseShards(hub, pending)
		for _, sh := range shards {
			if !k.waitAccepted(ctx, sh) {
				t.Fatal("waitAccepted returned false without cancellation")
			}
		}
		pending = pending[:0]
	})
	if allocs != 0 {
		t.Errorf("notify wake path allocates %.1f per epoch, want 0", allocs)
	}
	if math.IsNaN(allocs) {
		t.Error("AllocsPerRun returned NaN")
	}
}
