package runtime

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/monitor"
	"repro/internal/rtrm"
	"repro/internal/simhpc"
)

// testManagerAt builds a manager over a small homogeneous cluster at
// the given ambient temperature (hot sites defer work through MS3 —
// the signal SLA-aware steering watches).
func testManagerAt(nodes int, ambientC float64) *rtrm.Manager {
	rng := simhpc.NewRNG(101)
	cluster := simhpc.NewCluster(nodes, ambientC, func(i int) *simhpc.Node {
		return simhpc.HomogeneousNode(fmt.Sprintf("n%d", i), 0.15, rng)
	})
	return rtrm.NewManager(cluster, cluster.FacilityPowerW(1)*0.9)
}

// pinnedSpec is simpleSpec with a placement hint.
func pinnedSpec(name, backend string, gen *simhpc.WorkloadGen, tasks int) AppSpec {
	spec := simpleSpec(name, gen, tasks)
	spec.Backend = backend
	return spec
}

// TestKernelRoutesByPinnedHint: the sync driver partitions each epoch's
// merged batch by placement hint, runs both backends behind the one
// barrier, and reports per-backend plus merged telemetry.
func TestKernelRoutesByPinnedHint(t *testing.T) {
	k := NewKernel(testManagerAt(2, 22), testManagerAt(2, 22))
	if got := k.Backends(); len(got) != 2 || got[0] != "b0" || got[1] != "b1" {
		t.Fatalf("backend names: %v", got)
	}
	if _, err := k.Attach(pinnedSpec("left", "b0", simhpc.NewWorkloadGen(7), 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Attach(pinnedSpec("right", "b1", simhpc.NewWorkloadGen(9), 3)); err != nil {
		t.Fatal(err)
	}
	var res EpochResult
	var err error
	for e := 0; e < 4; e++ {
		if res, err = k.RunEpoch(60); err != nil {
			t.Fatal(err)
		}
	}
	if got := k.AppBackend("left"); got != "b0" {
		t.Errorf("left placed on %q, want b0", got)
	}
	if got := k.AppBackend("right"); got != "b1" {
		t.Errorf("right placed on %q, want b1", got)
	}
	if len(res.Backends) != 2 {
		t.Fatalf("per-backend reports: %d, want 2", len(res.Backends))
	}
	var sum float64
	for _, be := range res.Backends {
		sum += be.Report.DoneGFlop + be.Report.DeferredGFlop
	}
	if merged := res.Report.DoneGFlop + res.Report.DeferredGFlop; merged != sum {
		t.Errorf("merged report %.3f != per-backend sum %.3f", merged, sum)
	}
	stats := k.BackendStats()
	if len(stats) != 2 {
		t.Fatalf("backend stats: %d entries", len(stats))
	}
	for i, st := range stats {
		if st.WorkGFlop <= 0 {
			t.Errorf("backend %s ran no work: %+v", st.Name, st)
		}
		if st.Epochs != 4 {
			t.Errorf("backend %s epochs %d, want 4", st.Name, st.Epochs)
		}
		if st.Apps != 1 {
			t.Errorf("backend %s apps %d, want 1", st.Name, st.Apps)
		}
		if i == 0 && st.Name != "b0" || i == 1 && st.Name != "b1" {
			t.Errorf("backend order: %d = %s", i, st.Name)
		}
	}
	merged := k.ManagerStats()
	if got, want := merged.WorkGFlop, stats[0].WorkGFlop+stats[1].WorkGFlop; got != want {
		t.Errorf("merged WorkGFlop %.3f, want %.3f", got, want)
	}
	if merged.Epochs != 4 {
		t.Errorf("merged epochs %d, want kernel epochs 4", merged.Epochs)
	}
}

// TestPinnedPolicy: hints win, placed apps stick, unhinted apps hash to
// a stable home — independent of attach order.
func TestPinnedPolicy(t *testing.T) {
	view := []BackendLoad{{Name: "b0"}, {Name: "b1"}, {Name: "b2"}}
	apps := []AppPlacement{
		{Name: "pinned", Hint: "b2", Current: 0},
		{Name: "sticky", Current: 1},
		{Name: "fresh", Current: -1},
		{Name: "badhint", Hint: "nope", Current: -1},
	}
	got := Pinned{}.Place(apps, view)
	if got[0] != 2 {
		t.Errorf("hinted app placed on %d, want 2", got[0])
	}
	if got[1] != 1 {
		t.Errorf("placed app moved: %d, want 1", got[1])
	}
	if h := int(fnv1a("fresh") % 3); got[2] != h {
		t.Errorf("fresh app on %d, want hash home %d", got[2], h)
	}
	if h := int(fnv1a("badhint") % 3); got[3] != h {
		t.Errorf("unmatched hint should hash: %d, want %d", got[3], h)
	}
	// Stability: same inputs, same answer.
	again := Pinned{}.Place(apps, view)
	for i := range got {
		if got[i] != again[i] {
			t.Fatalf("Pinned not deterministic: %v vs %v", got, again)
		}
	}
}

// TestLeastLoadedPolicy: new apps spread toward the least pending
// work, bursts don't pile onto one backend, hints still pin.
func TestLeastLoadedPolicy(t *testing.T) {
	// A burst of four fresh apps over two idle backends splits 2/2.
	view := []BackendLoad{{Name: "b0"}, {Name: "b1"}}
	apps := make([]AppPlacement, 4)
	for i := range apps {
		apps[i] = AppPlacement{Name: fmt.Sprintf("app%d", i), Current: -1}
	}
	got := LeastLoaded{}.Place(apps, view)
	counts := make([]int, 2)
	for _, idx := range got {
		counts[idx]++
	}
	if counts[0] != 2 || counts[1] != 2 {
		t.Errorf("burst split %v, want [2 2] (placements %v)", counts, got)
	}
	// A loaded b0 pushes the next new app to b1; placed apps stay.
	view = []BackendLoad{
		{Name: "b0", Apps: 2, OfferedGFlop: 100},
		{Name: "b1", Apps: 1, OfferedGFlop: 10},
	}
	apps = []AppPlacement{
		{Name: "old", Current: 0},
		{Name: "new", Current: -1},
		{Name: "pin", Hint: "b0", Current: -1},
	}
	got = LeastLoaded{}.Place(apps, view)
	if got[0] != 0 {
		t.Errorf("placed app migrated: %d", got[0])
	}
	if got[1] != 1 {
		t.Errorf("new app on %d, want least-loaded 1", got[1])
	}
	if got[2] != 0 {
		t.Errorf("hinted app on %d, want 0", got[2])
	}
}

// TestSLAAwareMigratesSync: with a cool and a hot backend (the hot one
// defers ~35% of offered work through MS3), SLA-aware steering moves
// the app off the over-goal backend. Sync mode makes it deterministic:
// the policy's refresh request lands as a membership-epoch bump and
// the next RunEpoch re-places.
func TestSLAAwareMigratesSync(t *testing.T) {
	k := NewKernel(testManagerAt(2, 15), testManagerAt(2, 40))
	k.SetPlacement(&SLAAware{MaxDeferredFrac: 0.05, Patience: 2, Cooldown: 2})
	// Two unhinted apps: least-loaded initial placement puts one on
	// each backend, so exactly one starts on the hot site.
	for i := 0; i < 2; i++ {
		if _, err := k.Attach(simpleSpec(fmt.Sprintf("app%d", i), simhpc.NewWorkloadGen(uint64(7+i)), 2)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := k.RunEpoch(60); err != nil {
		t.Fatal(err)
	}
	onHot := ""
	for _, name := range []string{"app0", "app1"} {
		if k.AppBackend(name) == "b1" {
			onHot = name
		}
	}
	if onHot == "" {
		t.Fatalf("no app started on the hot backend: app0=%s app1=%s",
			k.AppBackend("app0"), k.AppBackend("app1"))
	}
	genBefore := k.Generation()
	migrated := false
	for e := 0; e < 40 && !migrated; e++ {
		if _, err := k.RunEpoch(60); err != nil {
			t.Fatal(err)
		}
		migrated = k.AppBackend(onHot) == "b0"
	}
	if !migrated {
		t.Fatalf("%s never migrated off the hot backend (deferred EWMA never steered?)", onHot)
	}
	if k.Generation() == genBefore {
		t.Error("migration did not roll a membership generation")
	}
	// Post-migration epochs route everything to the cool backend.
	before := k.BackendStats()
	for e := 0; e < 3; e++ {
		if _, err := k.RunEpoch(60); err != nil {
			t.Fatal(err)
		}
	}
	after := k.BackendStats()
	if after[0].WorkGFlop <= before[0].WorkGFlop {
		t.Error("cool backend gained no work after migration")
	}
	if after[1].Epochs != before[1].Epochs {
		t.Errorf("hot backend kept running epochs with no apps: %d -> %d",
			before[1].Epochs, after[1].Epochs)
	}
}

// TestSLAAwareMigratesLive: the concurrent-mode migration guarantee —
// the app moves backends at a generation boundary while telemetry
// producers keep pushing, and not one observation is dropped across
// the move (the controller, its inbox and its windows travel whole).
func TestSLAAwareMigratesLive(t *testing.T) {
	k := NewKernel(testManagerAt(2, 15), testManagerAt(2, 40))
	k.SetPlacement(&SLAAware{MaxDeferredFrac: 0.05, Patience: 2, Cooldown: 2})
	inboxes := map[string]*Inbox{}
	ctls := map[string]*Controller{}
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("app%d", i)
		inbox := &Inbox{}
		inboxes[name] = inbox
		spec := simpleSpec(name, simhpc.NewWorkloadGen(uint64(11+i)), 2)
		spec.Sensor = inbox
		ctl, err := k.Attach(spec)
		if err != nil {
			t.Fatal(err)
		}
		ctls[name] = ctl
	}
	// The initial least-loaded placement is deterministic: app0 → b0,
	// app1 → b1 (the hot site). Producer pushes observations at the
	// to-be-migrated app from before Start, so the stream provably
	// spans the migration.
	const onHot = "app1"
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var pushed int64
	prodDone := make(chan struct{})
	go func() {
		defer close(prodDone)
		for ctx.Err() == nil {
			inboxes[onHot].Push(monitor.MetricLatency, 0.2)
			pushed++ // only read after prodDone closes
			time.Sleep(200 * time.Microsecond)
		}
	}()
	genBefore := k.Generation()
	if err := k.Start(ctx, Options{Flush: 2 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	defer k.Stop()

	waitFor(t, "migration off the hot backend", func() bool {
		return k.AppBackend(onHot) == "b0"
	})
	waitServed(t, k)
	epochs := k.Epochs()
	waitFor(t, "post-migration epochs", func() bool { return k.Epochs() >= epochs+5 })
	if err := k.Err(); err != nil {
		t.Fatal(err)
	}
	if k.Generation() == genBefore {
		t.Error("migration did not roll a membership generation")
	}
	// The hot backend really served the app before steering moved it.
	for _, st := range k.BackendStats() {
		if st.Name == "b1" && st.WorkGFlop+st.DeferredGFlop <= 0 {
			t.Errorf("hot backend never ran the migrated app's work: %+v", st)
		}
	}
	cancel()
	<-prodDone
	k.Stop()
	// Drain whatever the last generation left in the inbox; every
	// pushed observation must have landed in the app's windows.
	ctls[onHot].Tick()
	if got := ctls[onHot].Metrics().Window(monitor.MetricLatency).Total(); got != pushed {
		t.Errorf("observations dropped across migration: window total %d, pushed %d", got, pushed)
	}
}

// TestKernelAddBackendLive: a backend added while the kernel runs joins
// the routing set at the next generation boundary and serves newly
// hinted apps.
func TestKernelAddBackendLive(t *testing.T) {
	k := NewKernel(testManagerAt(2, 22))
	if err := k.AddBackend("b0", testManagerAt(2, 22)); err == nil {
		t.Error("duplicate backend name accepted")
	}
	if _, err := k.Attach(simpleSpec("base", simhpc.NewWorkloadGen(3), 2)); err != nil {
		t.Fatal(err)
	}
	if err := k.Start(context.Background(), Options{Flush: 2 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	defer k.Stop()
	waitFor(t, "base epochs", func() bool { return k.Epochs() >= 3 })

	if err := k.AddBackend("site-b", testManagerAt(2, 22)); err != nil {
		t.Fatalf("live add backend: %v", err)
	}
	if _, err := k.Attach(pinnedSpec("tenant", "site-b", simhpc.NewWorkloadGen(5), 2)); err != nil {
		t.Fatal(err)
	}
	waitServed(t, k)
	waitFor(t, "tenant work on site-b", func() bool {
		for _, st := range k.BackendStats() {
			if st.Name == "site-b" && st.WorkGFlop > 0 {
				return true
			}
		}
		return false
	})
	if got := k.AppBackend("tenant"); got != "site-b" {
		t.Errorf("tenant placed on %q, want site-b", got)
	}
	if err := k.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestKernelDetachDrainPerBackend: detaching an app whose workload is
// mid-flight on one backend drains its submitted batch into that
// backend's final epoch; the other backend's app keeps running.
func TestKernelDetachDrainPerBackend(t *testing.T) {
	// Ambient 15 < the MS3 comfort knee, so nothing is deferred and a
	// one-task drain epoch shows up as executed work, not deferral.
	k := NewKernel(testManagerAt(2, 15), testManagerAt(2, 15))
	gen := simhpc.NewWorkloadGen(29)
	var genMu sync.Mutex
	started := make(chan struct{}, 64)
	slow := AppSpec{
		Name:    "slow",
		Backend: "b1",
		Workload: func() ([]*simhpc.Task, error) {
			select {
			case started <- struct{}{}:
			default:
			}
			time.Sleep(50 * time.Millisecond)
			genMu.Lock()
			defer genMu.Unlock()
			return gen.Mix(1, 1, 1, 1, 4), nil
		},
	}
	if _, err := k.Attach(slow); err != nil {
		t.Fatal(err)
	}
	fast := AppSpec{
		Name:    "fast",
		Backend: "b0",
		Workload: func() ([]*simhpc.Task, error) {
			genMu.Lock()
			defer genMu.Unlock()
			return gen.Mix(1, 1, 1, 1, 4), nil
		},
	}
	if _, err := k.Attach(fast); err != nil {
		t.Fatal(err)
	}
	if err := k.Start(context.Background(), Options{Flush: 5 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	defer k.Stop()
	<-started // the slow workload is in flight on b1 right now
	if err := k.Detach("slow"); err != nil {
		t.Fatal(err)
	}
	waitServed(t, k) // wind-down waited out the straggler without deadlock
	epochs := k.Epochs()
	waitFor(t, "survivor epochs", func() bool { return k.Epochs() >= epochs+5 })
	if k.TotalsPerApp()["slow"] <= 0 {
		t.Error("detached app's drained work was dropped")
	}
	var b1 BackendStats
	for _, st := range k.BackendStats() {
		if st.Name == "b1" {
			b1 = st
		}
	}
	if b1.WorkGFlop <= 0 {
		t.Errorf("b1 never ran the detaching app's drained batch: %+v", b1)
	}
	if k.TotalsPerApp()["fast"] <= 0 {
		t.Error("survivor contributed no work")
	}
	if err := k.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestPlacementMembershipChurnRace is the -race stress for placement ×
// membership: churners attach and detach hinted and unhinted apps
// while SLA-aware steering migrates against a hot backend, telemetry
// producers push the whole time, and a base app keeps its epochs.
func TestPlacementMembershipChurnRace(t *testing.T) {
	k := NewKernel(testManagerAt(2, 15), testManagerAt(2, 40))
	k.SetPlacement(&SLAAware{MaxDeferredFrac: 0.05, Patience: 2, Cooldown: 2})
	baseInbox := &Inbox{}
	baseSpec := simpleSpec("base", simhpc.NewWorkloadGen(51), 2)
	baseSpec.Sensor = baseInbox
	if _, err := k.Attach(baseSpec); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := k.Start(ctx, Options{Flush: 2 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	defer k.Stop()

	go func() {
		for ctx.Err() == nil {
			baseInbox.Push(monitor.MetricLatency, 0.2)
			time.Sleep(200 * time.Microsecond)
		}
	}()

	const churners = 4
	const cycles = 10
	var wg sync.WaitGroup
	for c := 0; c < churners; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			name := fmt.Sprintf("churn%d", c)
			hint := ""
			if c%2 == 0 {
				hint = fmt.Sprintf("b%d", c%2) // half the churners pin
			}
			gen := simhpc.NewWorkloadGen(uint64(60 + c))
			for i := 0; i < cycles; i++ {
				if _, err := k.Attach(pinnedSpec(name, hint, gen, 1)); err != nil {
					t.Errorf("churn attach %s: %v", name, err)
					return
				}
				time.Sleep(time.Duration(c+1) * time.Millisecond)
				if err := k.Detach(name); err != nil {
					t.Errorf("churn detach %s: %v", name, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	waitServed(t, k)
	epochs := k.Epochs()
	waitFor(t, "epochs after churn", func() bool { return k.Epochs() > epochs })
	if err := k.Err(); err != nil {
		t.Fatal(err)
	}
	if apps := k.Apps(); len(apps) != 1 || apps[0].Name() != "base" {
		t.Errorf("leftover membership after churn: %d apps", len(apps))
	}
	if g, s := k.Generation(), k.ServedGeneration(); g != s {
		t.Errorf("generation %d not served (served %d) after quiesce", g, s)
	}
}
