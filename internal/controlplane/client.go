package controlplane

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// Client is the Go client of the v1 control-plane API. Zero-value-safe
// construction via NewClient; safe for concurrent use (it only wraps an
// http.Client).
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for a control plane at base (e.g.
// "http://127.0.0.1:8077"). Pass nil to use a default http.Client with
// a 10 s timeout.
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = &http.Client{Timeout: 10 * time.Second}
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: hc}
}

// APIError is a non-2xx control-plane response.
type APIError struct {
	Status int    // HTTP status code
	Msg    string // server-side error string
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("controlplane: %d %s: %s", e.Status, http.StatusText(e.Status), e.Msg)
}

// IsNotFound reports whether err is an APIError with status 404 — the
// wire-side analogue of runtime.ErrUnknownApp.
func IsNotFound(err error) bool {
	var api *APIError
	return errors.As(err, &api) && api.Status == http.StatusNotFound
}

// do runs one request: in (when non-nil) is marshalled as the JSON
// body, out (when non-nil) receives the decoded 2xx response.
func (c *Client) do(method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("controlplane: marshal %s %s: %w", method, path, err)
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, c.base+path, body)
	if err != nil {
		return fmt.Errorf("controlplane: %s %s: %w", method, path, err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("controlplane: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var eb ErrorBody
		_ = json.NewDecoder(io.LimitReader(resp.Body, maxSpecBody)).Decode(&eb)
		return &APIError{Status: resp.StatusCode, Msg: eb.Error}
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return fmt.Errorf("controlplane: decode %s %s: %w", method, path, err)
		}
	}
	return nil
}

// Register attaches an application (POST /v1/apps).
func (c *Client) Register(spec AppSpec) (AppStatus, error) {
	var st AppStatus
	err := c.do(http.MethodPost, "/v1/apps", spec, &st)
	return st, err
}

// Detach removes an application (DELETE /v1/apps/{id}). The kernel
// drains it at the next epoch boundary.
func (c *Client) Detach(name string) error {
	return c.do(http.MethodDelete, "/v1/apps/"+url.PathEscape(name), nil, nil)
}

// Observe streams a batch of telemetry samples into the app's inbox
// (POST /v1/apps/{id}/observations) and returns the accepted count.
func (c *Client) Observe(name string, samples []Observation) (int, error) {
	var ack ObservationAck
	err := c.do(http.MethodPost, "/v1/apps/"+url.PathEscape(name)+"/observations",
		ObservationBatch{Samples: samples}, &ack)
	return ack.Accepted, err
}

// App reads one app's status (GET /v1/apps/{id}).
func (c *Client) App(name string) (AppStatus, error) {
	var st AppStatus
	err := c.do(http.MethodGet, "/v1/apps/"+url.PathEscape(name), nil, &st)
	return st, err
}

// Apps lists the HTTP-registered apps (GET /v1/apps).
func (c *Client) Apps() ([]AppStatus, error) {
	var out []AppStatus
	err := c.do(http.MethodGet, "/v1/apps", nil, &out)
	return out, err
}

// Epochs reads kernel-wide epoch telemetry (GET /v1/epochs).
func (c *Client) Epochs() (EpochsStatus, error) {
	var st EpochsStatus
	err := c.do(http.MethodGet, "/v1/epochs", nil, &st)
	return st, err
}

// Health reads the liveness probe (GET /healthz).
func (c *Client) Health() (Health, error) {
	var h Health
	err := c.do(http.MethodGet, "/healthz", nil, &h)
	return h, err
}
