package controlplane

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/controlplane/wire"
	"repro/internal/policyc"
	"repro/internal/runtime"
)

// Client is the Go client of the v1 control-plane API. Zero-value-safe
// construction via NewClient; safe for concurrent use (it only wraps an
// http.Client) once configured — SetAuthToken before sharing.
type Client struct {
	base  string
	hc    *http.Client
	token string
}

// NewClient returns a client for a control plane at base (e.g.
// "http://127.0.0.1:8077"). Pass nil to use a default http.Client with
// a 10 s timeout.
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = &http.Client{Timeout: 10 * time.Second}
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: hc}
}

// SetAuthToken arms the bearer token sent with every request — the
// client side of the server's -auth-token ingress auth. Call before
// sharing the client across goroutines.
func (c *Client) SetAuthToken(token string) { c.token = token }

// authorize attaches the bearer token, when configured.
func (c *Client) authorize(req *http.Request) {
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
}

// APIError is a non-2xx control-plane response: the HTTP status plus
// the decoded error envelope ({"error": {"code", "message", "detail"}}).
type APIError struct {
	Status int             // HTTP status code
	Code   string          // machine-readable envelope code (Code* constants)
	Msg    string          // server-side error message
	Detail json.RawMessage // code-specific payload (compile diagnostics, ...)
	// RetryAfter is the server's requested back-off (the Retry-After
	// header a quota-exceeded 429 carries); zero when absent.
	RetryAfter time.Duration
}

// Error implements error.
func (e *APIError) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("controlplane: %d %s (%s): %s", e.Status, http.StatusText(e.Status), e.Code, e.Msg)
	}
	return fmt.Sprintf("controlplane: %d %s: %s", e.Status, http.StatusText(e.Status), e.Msg)
}

// CompileDiags returns the positioned policy-compile diagnostics a
// compile_error response carried in its detail payload, or nil for any
// other error.
func (e *APIError) CompileDiags() []policyc.Diag {
	if e.Code != CodeCompileError || len(e.Detail) == 0 {
		return nil
	}
	var diags []policyc.Diag
	if err := json.Unmarshal(e.Detail, &diags); err != nil {
		return nil
	}
	return diags
}

// IsNotFound reports whether err is an APIError with status 404 — the
// wire-side analogue of runtime.ErrUnknownApp.
func IsNotFound(err error) bool {
	var api *APIError
	return errors.As(err, &api) && api.Status == http.StatusNotFound
}

// IsCompileError reports whether err is a policy-DSL admission failure
// (code "compile_error"); CompileDiags on the APIError has the
// positioned diagnostics.
func IsCompileError(err error) bool {
	var api *APIError
	return errors.As(err, &api) && api.Code == CodeCompileError
}

// apiError reads a non-2xx response's JSON error envelope into an
// APIError. ErrorBody's decoder also accepts the legacy flat shape
// ({"error": "msg"}), so a client pointed at an older plane still gets
// the message (with an empty code).
func apiError(resp *http.Response) error {
	var eb ErrorBody
	_ = json.NewDecoder(io.LimitReader(resp.Body, maxSpecBody)).Decode(&eb)
	var retryAfter time.Duration
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
			retryAfter = time.Duration(secs) * time.Second
		}
	}
	return &APIError{
		Status:     resp.StatusCode,
		Code:       eb.Error.Code,
		Msg:        eb.Error.Message,
		Detail:     eb.Error.Detail,
		RetryAfter: retryAfter,
	}
}

// Retry policy for idempotent requests: a plane mid-restart or a
// draining backend answers with connection-refused or 429/502/503 for
// a moment, and a read-only caller should ride that out instead of
// surfacing an instant error. Writes are never retried here — only the
// stream's Flush re-dials, where the client owns delivery accounting.
const (
	retryAttempts = 4 // 1 initial + 3 retries
	retryBase     = 50 * time.Millisecond
	retryCap      = 500 * time.Millisecond
)

// retryable reports whether an attempt's failure is worth retrying:
// any transport error (connection refused, reset — the request never
// ran or its response was lost) or a 429/502/503 (explicit back-off
// statuses). 4xx correctness errors and 5xx other than 502/503 stand.
func retryable(err error) bool {
	var api *APIError
	if errors.As(err, &api) {
		return api.Status == http.StatusTooManyRequests ||
			api.Status == http.StatusBadGateway ||
			api.Status == http.StatusServiceUnavailable
	}
	return err != nil
}

// retrySleep sleeps the n-th (0-based) backoff step: exponential from
// retryBase, capped at retryCap, with ±25% jitter so synchronized
// clients spread out.
func retrySleep(n int) {
	d := retryBase << n
	if d > retryCap {
		d = retryCap
	}
	jitter := time.Duration(rand.Int64N(int64(d) / 2))
	time.Sleep(d*3/4 + jitter)
}

// do runs one request: in (when non-nil) is marshalled as the JSON
// body, out (when non-nil) receives the decoded 2xx response. GETs are
// retried with capped exponential backoff + jitter on transport errors
// and 429/502/503 (see retryable); mutating requests run exactly once.
func (c *Client) do(method, path string, in, out any) error {
	var data []byte
	if in != nil {
		var err error
		data, err = json.Marshal(in)
		if err != nil {
			return fmt.Errorf("controlplane: marshal %s %s: %w", method, path, err)
		}
	}
	attempts := 1
	if method == http.MethodGet {
		attempts = retryAttempts
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			retrySleep(attempt - 1)
		}
		var body io.Reader
		if in != nil {
			body = bytes.NewReader(data)
		}
		req, err := http.NewRequest(method, c.base+path, body)
		if err != nil {
			return fmt.Errorf("controlplane: %s %s: %w", method, path, err)
		}
		if in != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		c.authorize(req)
		resp, err := c.hc.Do(req)
		if err != nil {
			lastErr = fmt.Errorf("controlplane: %s %s: %w", method, path, err)
			continue
		}
		if resp.StatusCode >= 300 {
			lastErr = apiError(resp)
			resp.Body.Close()
			if !retryable(lastErr) {
				return lastErr
			}
			continue
		}
		if out != nil {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				resp.Body.Close()
				return fmt.Errorf("controlplane: decode %s %s: %w", method, path, err)
			}
		}
		resp.Body.Close()
		return nil
	}
	return lastErr
}

// Register attaches an application (POST /v1/apps).
func (c *Client) Register(spec AppSpec) (AppStatus, error) {
	var st AppStatus
	err := c.do(http.MethodPost, "/v1/apps", spec, &st)
	return st, err
}

// PutPolicy hot-swaps an application's policy
// (PUT /v1/apps/{id}/policy): the replacement lands at a generation
// boundary without dropping the app's pending observations, metric
// windows or totals. A DSL policy that fails to compile returns an
// APIError with code "compile_error" — see IsCompileError and
// APIError.CompileDiags for the positioned diagnostics.
func (c *Client) PutPolicy(name string, p PolicySpec) (AppStatus, error) {
	var st AppStatus
	err := c.do(http.MethodPut, "/v1/apps/"+url.PathEscape(name)+"/policy", p, &st)
	return st, err
}

// Detach removes an application (DELETE /v1/apps/{id}). The kernel
// drains it at the next epoch boundary.
func (c *Client) Detach(name string) error {
	return c.do(http.MethodDelete, "/v1/apps/"+url.PathEscape(name), nil, nil)
}

// Observe streams a batch of telemetry samples into the app's inbox
// (POST /v1/apps/{id}/observations) and returns the accepted count.
func (c *Client) Observe(name string, samples []Observation) (int, error) {
	var ack ObservationAck
	err := c.do(http.MethodPost, "/v1/apps/"+url.PathEscape(name)+"/observations",
		ObservationBatch{Samples: samples}, &ack)
	return ack.Accepted, err
}

// ObserveBinary sends a batch through the one-shot binary endpoint
// (POST /v1/apps/{id}/observations:binary) — the JSON Observe's wire
// format swapped for one encoded frame. For sustained telemetry use
// Stream, which amortizes the per-request round trip away.
func (c *Client) ObserveBinary(name string, samples []runtime.Sample) (int, error) {
	frame, err := wire.NewEncoder().AppendFrame(nil, name, samples)
	if err != nil {
		return 0, err
	}
	path := "/v1/apps/" + url.PathEscape(name) + "/observations:binary"
	req, err := http.NewRequest(http.MethodPost, c.base+path, bytes.NewReader(frame))
	if err != nil {
		return 0, fmt.Errorf("controlplane: POST %s: %w", path, err)
	}
	req.Header.Set("Content-Type", wireContentType)
	c.authorize(req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, fmt.Errorf("controlplane: POST %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return 0, apiError(resp)
	}
	var ack ObservationAck
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		return 0, fmt.Errorf("controlplane: decode POST %s: %w", path, err)
	}
	return ack.Accepted, nil
}

// wireContentType labels binary observation bodies.
const wireContentType = "application/x-antarex-wire"

// Stream opens the persistent binary ingest connection
// (POST /v1/stream) and returns a buffered ObservationWriter over it.
// The request stays open — observations are chunked up the same
// connection on every Flush — until Close, which also collects the
// server's terminal ack. The writer multiplexes any number of
// registered apps over one stream.
//
// A Flush that fails on a transport error or a 429/502/503 re-dials
// the stream (bounded retries, capped backoff) and re-sends the
// still-buffered samples — a plane restart mid-stream costs a pause,
// not the agent. Samples of earlier, already-written flushes are NOT
// re-sent: the stream acks only at Close, so delivery of a flushed
// frame on a stream that later died is at-most-once (the Close error
// reports the loss); the failed flush's own samples are retried and
// may, in the worst case of a connection dying mid-write, arrive
// twice.
func (c *Client) Stream() (*ObservationWriter, error) {
	w := &ObservationWriter{
		idx: make(map[string]int),
	}
	w.dial = func() (*io.PipeWriter, chan streamResponse, error) {
		pr, pw := io.Pipe()
		req, err := http.NewRequest(http.MethodPost, c.base+"/v1/stream", pr)
		if err != nil {
			pw.Close()
			return nil, nil, fmt.Errorf("controlplane: POST /v1/stream: %w", err)
		}
		req.Header.Set("Content-Type", wireContentType)
		c.authorize(req)
		// The configured client's overall timeout would sever a
		// long-lived stream mid-flight; strip it for this one request
		// (dial and TLS setup still bound by the transport).
		hc := *c.hc
		hc.Timeout = 0
		resp := make(chan streamResponse, 1)
		go func() {
			r, err := hc.Do(req)
			if err != nil {
				// Unblock any in-flight Flush write before reporting.
				pr.CloseWithError(err)
				resp <- streamResponse{err: fmt.Errorf("controlplane: POST /v1/stream: %w", err)}
				return
			}
			resp <- streamResponse{resp: r}
		}()
		return pw, resp, nil
	}
	pw, resp, err := w.dial()
	if err != nil {
		return nil, err
	}
	w.pw = pw
	w.resp = resp
	w.enc = wire.NewEncoder()
	return w, nil
}

// streamResponse carries the stream's terminal HTTP response (or
// transport error) from the request goroutine to Close.
type streamResponse struct {
	resp *http.Response
	err  error
}

// ObservationWriter buffers observations for a binary ingest stream.
// Observe appends to an in-memory batch; Flush encodes the batch as
// one frame per app and writes it up the connection; Close flushes,
// ends the stream and returns the server's ack. Safe for concurrent
// use; writes are not durable until Flush returns.
//
// Buffering is bounded: once the pending batch reaches the auto-flush
// threshold, the next Observe flushes inline, so an agent that never
// calls Flush still cannot grow the buffer without bound (at the cost
// of that Observe blocking on the network).
type ObservationWriter struct {
	pw   *io.PipeWriter
	resp chan streamResponse
	// dial re-opens the stream after a redialable failure (see Stream).
	dial func() (*io.PipeWriter, chan streamResponse, error)

	mu      sync.Mutex
	enc     *wire.Encoder
	pending []appBatch
	idx     map[string]int // app → index into pending
	total   int            // buffered samples across apps
	frames  []byte         // Flush encode scratch, reused
	err     error          // sticky stream error
	closed  bool
	done    bool // terminal response already consumed (body closed)
}

// appBatch is one app's buffered samples, in observation order.
type appBatch struct {
	app     string
	samples []runtime.Sample
}

// autoFlushSamples bounds the buffered batch; see ObservationWriter.
const autoFlushSamples = 8192

// Observe buffers one sample for app. The returned error is the
// stream's sticky error — once the stream has failed every call
// reports it.
func (w *ObservationWriter) Observe(app, metric string, v float64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return errors.New("controlplane: observation stream is closed")
	}
	i, ok := w.idx[app]
	if !ok {
		i = len(w.pending)
		w.pending = append(w.pending, appBatch{app: app})
		w.idx[app] = i
	}
	w.pending[i].samples = append(w.pending[i].samples, runtime.Sample{Metric: metric, Value: v})
	w.total++
	if w.total >= autoFlushSamples {
		return w.flushLocked()
	}
	return nil
}

// Flush encodes and writes every buffered sample. A Flush that
// returns nil means the frames were handed to the HTTP transport, not
// that the server has acked them — the ack arrives at Close.
func (w *ObservationWriter) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	return w.flushLocked()
}

func (w *ObservationWriter) flushLocked() error {
	if w.total == 0 {
		return nil
	}
	for attempt := 0; ; attempt++ {
		// Encode every buffered batch, keeping the samples: they are only
		// dropped once the transport write succeeds, so a failed write
		// can re-encode them for a fresh stream (whose decoder starts
		// with empty per-stream name dictionaries — hence the fresh
		// wire.Encoder on re-dial).
		frames := w.frames[:0]
		for i := range w.pending {
			b := &w.pending[i]
			if len(b.samples) == 0 {
				continue
			}
			var err error
			frames, err = w.enc.AppendFrame(frames, b.app, b.samples)
			if err != nil {
				// Encode errors (oversized name/frame) are client bugs; the
				// stream is dead — nothing partially encoded was written, so
				// the receiver's dictionaries stay consistent.
				w.err = err
				return w.err
			}
		}
		w.frames = frames
		_, err := w.pw.Write(frames)
		if err == nil {
			for i := range w.pending {
				w.pending[i].samples = w.pending[i].samples[:0]
			}
			w.total = 0
			return nil
		}
		err = w.terminalError(err)
		if !retryable(err) || attempt >= retryAttempts-1 {
			w.err = err
			return w.err
		}
		retrySleep(attempt)
		if rerr := w.redialLocked(); rerr != nil {
			w.err = err // surface the stream failure, not the dial's
			return w.err
		}
	}
}

// redialLocked replaces the dead stream with a fresh one: new pipe and
// request, and a new encoder — frame name dictionaries are per stream,
// so the old encoder's interned names would be garbage to the new
// decoder. Callers hold w.mu and have consumed the old stream's
// terminal response (terminalError marks done).
func (w *ObservationWriter) redialLocked() error {
	w.pw.Close()
	if !w.done {
		// The old request goroutine may still be waiting on its response;
		// reap it so nothing leaks.
		if sr := <-w.resp; sr.resp != nil {
			sr.resp.Body.Close()
		}
	}
	pw, resp, err := w.dial()
	if err != nil {
		return err
	}
	w.pw = pw
	w.resp = resp
	w.enc = wire.NewEncoder()
	w.done = false
	return nil
}

// terminalError upgrades a pipe write error to the server's response
// if it already arrived (e.g. a 400/404/429 that ended the stream);
// otherwise the transport error stands. Consuming the response here
// marks the stream done so Close does not wait for it again.
func (w *ObservationWriter) terminalError(err error) error {
	select {
	case sr := <-w.resp:
		w.done = true
		if sr.err != nil {
			return sr.err
		}
		defer sr.resp.Body.Close()
		return apiError(sr.resp)
	default:
		return fmt.Errorf("controlplane: stream write: %w", err)
	}
}

// Close flushes buffered samples, ends the stream and returns the
// server's terminal ack. Safe to call after a stream error (the
// sticky error is returned).
func (w *ObservationWriter) Close() (StreamAck, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return StreamAck{}, errors.New("controlplane: observation stream is closed")
	}
	w.closed = true
	flushErr := w.err
	if flushErr == nil {
		flushErr = w.flushLocked()
	}
	w.pw.Close()
	if w.done {
		// The stream already terminated and its response was consumed
		// while surfacing the sticky error.
		return StreamAck{}, flushErr
	}
	sr := <-w.resp
	w.done = true
	if sr.err != nil {
		return StreamAck{}, sr.err
	}
	defer sr.resp.Body.Close()
	if sr.resp.StatusCode >= 300 {
		return StreamAck{}, apiError(sr.resp)
	}
	if flushErr != nil {
		return StreamAck{}, flushErr
	}
	var ack StreamAck
	if err := json.NewDecoder(sr.resp.Body).Decode(&ack); err != nil {
		return StreamAck{}, fmt.Errorf("controlplane: decode stream ack: %w", err)
	}
	return ack, nil
}

// App reads one app's status (GET /v1/apps/{id}).
func (c *Client) App(name string) (AppStatus, error) {
	var st AppStatus
	err := c.do(http.MethodGet, "/v1/apps/"+url.PathEscape(name), nil, &st)
	return st, err
}

// Apps lists the HTTP-registered apps (GET /v1/apps).
func (c *Client) Apps() ([]AppStatus, error) {
	var out []AppStatus
	err := c.do(http.MethodGet, "/v1/apps", nil, &out)
	return out, err
}

// Epochs reads kernel-wide epoch telemetry (GET /v1/epochs).
func (c *Client) Epochs() (EpochsStatus, error) {
	var st EpochsStatus
	err := c.do(http.MethodGet, "/v1/epochs", nil, &st)
	return st, err
}

// Backends lists the kernel's backends with per-backend telemetry
// (GET /v1/backends).
func (c *Client) Backends() ([]BackendStatus, error) {
	var out []BackendStatus
	err := c.do(http.MethodGet, "/v1/backends", nil, &out)
	return out, err
}

// AddBackend declares a new backend (POST /v1/backends). It joins the
// kernel's routing set at the next epoch boundary.
func (c *Client) AddBackend(spec BackendSpec) (BackendStatus, error) {
	var st BackendStatus
	err := c.do(http.MethodPost, "/v1/backends", spec, &st)
	return st, err
}

// RemoveBackend drains and deletes a backend
// (DELETE /v1/backends/{id}). The returned status is "removed" when
// the drain completed within the request, or "draining" (202) when the
// evacuation is still in flight — watch Backends or the SSE stream for
// completion. 404 for unknown names, 409 while another drain of the
// same backend is in flight or when the backend is the last
// schedulable one.
func (c *Client) RemoveBackend(name string) (BackendStatus, error) {
	var st BackendStatus
	err := c.do(http.MethodDelete, "/v1/backends/"+url.PathEscape(name), nil, &st)
	return st, err
}

// StreamEpochs subscribes to the server-sent epoch event feed
// (GET /v1/epochs/stream) and calls fn for every event — the
// push-based replacement for polling Epochs. interval throttles the
// server to at most one event per interval (0 = one event per epoch
// signal); the server accepts [0, 60s], so the client clamps the
// requested interval into that range before sending. StreamEpochs
// returns when fn returns false (nil error), ctx ends (ctx.Err()), or
// the stream fails.
func (c *Client) StreamEpochs(ctx context.Context, interval time.Duration, fn func(EpochsStatus) bool) error {
	ms := interval.Milliseconds()
	if ms < 0 {
		ms = 0
	}
	if ms > 60_000 {
		ms = 60_000
	}
	path := "/v1/epochs/stream?interval_ms=" + fmt.Sprint(ms)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return fmt.Errorf("controlplane: GET %s: %w", path, err)
	}
	c.authorize(req)
	// A long-lived subscription must outlive the client's request
	// timeout, like Stream does.
	hc := *c.hc
	hc.Timeout = 0
	resp, err := hc.Do(req)
	if err != nil {
		return fmt.Errorf("controlplane: GET %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return apiError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		data, ok := strings.CutPrefix(line, "data: ")
		if !ok {
			continue // event: / blank separator lines
		}
		var st EpochsStatus
		if err := json.Unmarshal([]byte(data), &st); err != nil {
			return fmt.Errorf("controlplane: epoch stream event: %w", err)
		}
		if !fn(st) {
			return nil
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("controlplane: epoch stream: %w", err)
	}
	return io.ErrUnexpectedEOF // server never ends the stream first
}

// Health reads the liveness probe (GET /healthz).
func (c *Client) Health() (Health, error) {
	var h Health
	err := c.do(http.MethodGet, "/healthz", nil, &h)
	return h, err
}
