package controlplane

import (
	"context"
	"testing"
	"time"

	"repro/internal/runtime"
)

// TestEpochsOptimisticLockFree is the acceptance test for the
// OptimisticMerge read path end to end: /v1/epochs (and the repeated
// status reads behind it) must take zero commit locks while the kernel
// commits epochs, and the payload must carry the protocol name and a
// live per-backend seq vector.
func TestEpochsOptimisticLockFree(t *testing.T) {
	k, c := newMultiPlane(t, nil)
	k.SetProtocol(runtime.OptimisticMerge)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := k.Start(ctx, runtime.Options{Flush: 2 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	defer k.Stop()
	for _, reg := range []AppSpec{
		{Name: "left", Placement: "b0", Workload: WorkloadSpec{Tasks: 1, GFlop: 2}},
		{Name: "right", Placement: "hot", Workload: WorkloadSpec{Tasks: 1, GFlop: 2}},
	} {
		if _, err := c.Register(reg); err != nil {
			t.Fatal(err)
		}
	}
	waitKernelEpochs(t, k, 5)

	base := k.CommitLockReads()
	var last EpochsStatus
	for i := 0; i < 20; i++ {
		ep, err := c.Epochs()
		if err != nil {
			t.Fatal(err)
		}
		last = ep
	}
	if got := k.CommitLockReads() - base; got != 0 {
		t.Errorf("optimistic /v1/epochs took %d commit locks across 20 reads, want 0", got)
	}
	if last.Protocol != "optimistic" {
		t.Errorf("protocol %q, want optimistic", last.Protocol)
	}
	if len(last.Backends) != 2 {
		t.Fatalf("backends: %+v", last.Backends)
	}
	for _, bs := range last.Backends {
		if bs.Seq <= 0 {
			t.Errorf("backend %s seq %d, want > 0 (both serve a pinned app)", bs.Name, bs.Seq)
		}
	}
	if last.WorkGFlop <= 0 {
		t.Errorf("lock-free merge saw no work: %+v", last)
	}
}

// TestEpochsLockedProtocolsCount: under Barrier and PerBackendClock the
// same read path goes through commit locks and says so on the counter —
// the contrast that makes the zero above meaningful.
func TestEpochsLockedProtocolsCount(t *testing.T) {
	for _, proto := range []runtime.EpochProtocol{runtime.Barrier, runtime.PerBackendClock} {
		t.Run(proto.String(), func(t *testing.T) {
			k, c := newMultiPlane(t, nil)
			k.SetProtocol(proto)
			base := k.CommitLockReads()
			ep, err := c.Epochs()
			if err != nil {
				t.Fatal(err)
			}
			if ep.Protocol != proto.String() {
				t.Errorf("protocol %q, want %s", ep.Protocol, proto)
			}
			if got := k.CommitLockReads() - base; got <= 0 {
				t.Errorf("locked-protocol /v1/epochs took %d commit locks, want > 0", got)
			}
		})
	}
}

// TestEpochStreamCoalescesPerBackend: the SSE feed coalesces on the
// per-backend seq vector, not the global epoch counter — consecutive
// events always differ somewhere in (epochs, seqs), and seqs are
// monotone per backend.
func TestEpochStreamCoalescesPerBackend(t *testing.T) {
	k, c := newMultiPlane(t, nil)
	k.SetProtocol(runtime.PerBackendClock)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := k.Start(ctx, runtime.Options{Flush: 2 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	defer k.Stop()
	for _, reg := range []AppSpec{
		{Name: "left", Placement: "b0", Workload: WorkloadSpec{Tasks: 1, GFlop: 2}},
		{Name: "right", Placement: "hot", Workload: WorkloadSpec{Tasks: 1, GFlop: 2}},
	} {
		if _, err := c.Register(reg); err != nil {
			t.Fatal(err)
		}
	}

	var events []EpochsStatus
	err := c.StreamEpochs(ctx, time.Millisecond, func(st EpochsStatus) bool {
		events = append(events, st)
		return len(events) < 6
	})
	if err != nil {
		t.Fatalf("epoch stream: %v", err)
	}
	for i := 1; i < len(events); i++ {
		prev, cur := events[i-1], events[i]
		changed := cur.Epochs != prev.Epochs || len(cur.Backends) != len(prev.Backends)
		for j := range cur.Backends {
			if !changed && cur.Backends[j].Seq != prev.Backends[j].Seq {
				changed = true
			}
			if j < len(prev.Backends) && cur.Backends[j].Seq < prev.Backends[j].Seq {
				t.Errorf("event %d: backend %s seq went backwards: %d -> %d",
					i, cur.Backends[j].Name, prev.Backends[j].Seq, cur.Backends[j].Seq)
			}
		}
		if !changed {
			t.Errorf("event %d is a duplicate of event %d: coalescing on the seq vector failed (%+v)", i, i-1, cur)
		}
	}
}

// waitKernelEpochs waits until the kernel has run at least n epochs.
func waitKernelEpochs(t *testing.T, k *runtime.Kernel, n int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for k.Epochs() < n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d kernel epochs (at %d)", n, k.Epochs())
		}
		time.Sleep(time.Millisecond)
	}
}
