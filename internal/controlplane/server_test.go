package controlplane

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/monitor"
	"repro/internal/rtrm"
	"repro/internal/runtime"
	"repro/internal/simhpc"
)

func newTestPlane(t *testing.T) (*runtime.Kernel, *Client) {
	t.Helper()
	rng := simhpc.NewRNG(101)
	cluster := simhpc.NewCluster(4, 22, func(i int) *simhpc.Node {
		return simhpc.HomogeneousNode(fmt.Sprintf("n%d", i), 0.15, rng)
	})
	k := runtime.NewKernel(rtrm.NewManager(cluster, cluster.FacilityPowerW(1)*0.9))
	srv := httptest.NewServer(NewServer(k))
	t.Cleanup(srv.Close)
	return k, NewClient(srv.URL, srv.Client())
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestServerLifecycle is the end-to-end acceptance path: the kernel is
// started empty as a service, two tenants register over HTTP, stream
// observations, one adapts down its level ladder under a violated SLA,
// one detaches live — all while epochs keep flowing for the survivor.
func TestServerLifecycle(t *testing.T) {
	k, c := newTestPlane(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := k.Start(ctx, runtime.Options{Flush: 5 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	defer k.Stop()

	if h, err := c.Health(); err != nil || h.Status != "ok" || !h.Running {
		t.Fatalf("health before tenants: %+v, %v", h, err)
	}

	// Tenant A: healthy SLA. Tenant B: violated SLA with a level ladder.
	if _, err := c.Register(AppSpec{
		Name:     "healthy",
		Goals:    []GoalSpec{{Metric: monitor.MetricLatency, Target: 1.0}},
		Workload: WorkloadSpec{Tasks: 2, GFlop: 4},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Register(AppSpec{
		Name:     "overloaded",
		Window:   8,
		Debounce: 2,
		Goals:    []GoalSpec{{Metric: monitor.MetricLatency, Target: 1.0}},
		Workload: WorkloadSpec{Tasks: 2, GFlop: 4},
		Policy:   &PolicySpec{Type: PolicyLadder, Levels: []float64{1, 0.5, 0.25}},
	}); err != nil {
		t.Fatal(err)
	}

	// Stream observations until the test winds down.
	streamCtx, stopStreams := context.WithCancel(context.Background())
	defer stopStreams()
	var streams sync.WaitGroup
	for name, lat := range map[string]float64{"healthy": 0.2, "overloaded": 5.0} {
		streams.Add(1)
		go func(name string, lat float64) {
			defer streams.Done()
			for streamCtx.Err() == nil {
				if _, err := c.Observe(name, []Observation{
					{Metric: monitor.MetricLatency, Value: lat},
					{Metric: monitor.MetricLatency, Value: lat},
				}); err != nil {
					return // app detached or server closing
				}
				time.Sleep(time.Millisecond)
			}
		}(name, lat)
	}

	// Both tenants get admitted and contribute; the overloaded one walks
	// its ladder down.
	waitFor(t, "both tenants contributing", func() bool {
		ep, err := c.Epochs()
		return err == nil && ep.TotalsPerApp["healthy"] > 0 && ep.TotalsPerApp["overloaded"] > 0
	})
	waitFor(t, "overloaded tenant adapting", func() bool {
		st, err := c.App("overloaded")
		return err == nil && st.Adaptations > 0 && st.Level < 1
	})
	if st, err := c.App("healthy"); err != nil || st.Adaptations != 0 {
		t.Errorf("healthy tenant adapted: %+v, %v", st, err)
	}

	// Live detach: the healthy tenant leaves; the overloaded one keeps
	// its epochs.
	if err := c.Detach("healthy"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "membership served after detach", func() bool {
		h, err := c.Health()
		return err == nil && h.Generation == h.ServedGeneration && h.Apps == 1
	})
	if _, err := c.App("healthy"); !IsNotFound(err) {
		t.Errorf("detached app lookup: %v, want 404", err)
	}
	ep0, err := c.Epochs()
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "survivor epochs after detach", func() bool {
		ep, err := c.Epochs()
		return err == nil && ep.Epochs >= ep0.Epochs+5 &&
			ep.TotalsPerApp["overloaded"] > ep0.TotalsPerApp["overloaded"]
	})
	// Detached tenants keep their cumulative totals in /v1/epochs.
	if ep, _ := c.Epochs(); ep.TotalsPerApp["healthy"] <= 0 {
		t.Error("detached tenant's totals were dropped")
	}

	stopStreams()
	streams.Wait()
	if err := k.Err(); err != nil {
		t.Fatal(err)
	}
	st, err := c.App("overloaded")
	if err != nil {
		t.Fatal(err)
	}
	if st.Samples == 0 || st.Ticks == 0 || st.TotalGFlop <= 0 {
		t.Errorf("overloaded status not populated: %+v", st)
	}
}

// TestServerValidation covers the error mapping: 400 for malformed
// specs, 409 for duplicates, 404 for unknown tenants.
func TestServerValidation(t *testing.T) {
	k, c := newTestPlane(t)
	_ = k
	if _, err := c.Register(AppSpec{Name: "a"}); err != nil {
		t.Fatal(err)
	}
	var api *APIError
	if _, err := c.Register(AppSpec{Name: "a"}); !asAPI(err, &api) || api.Status != http.StatusConflict {
		t.Errorf("duplicate register: %v, want 409", err)
	}
	if _, err := c.Register(AppSpec{}); !asAPI(err, &api) || api.Status != http.StatusBadRequest {
		t.Errorf("empty name: %v, want 400", err)
	}
	if _, err := c.Register(AppSpec{Name: "b", Goals: []GoalSpec{{Metric: "x", Relation: "sideways"}}}); !asAPI(err, &api) || api.Status != http.StatusBadRequest {
		t.Errorf("bad relation: %v, want 400", err)
	}
	if _, err := c.Register(AppSpec{Name: "b", Goals: []GoalSpec{{Target: 1}}}); !asAPI(err, &api) || api.Status != http.StatusBadRequest {
		t.Errorf("goal without metric: %v, want 400", err)
	}
	// Magnitude ceilings: numbers a 64 KiB body can carry must not be
	// able to make the kernel allocate gigabytes or feed the simulator
	// negative work.
	if _, err := c.Register(AppSpec{Name: "huge", Workload: WorkloadSpec{Tasks: 1 << 30}}); !asAPI(err, &api) || api.Status != http.StatusBadRequest {
		t.Errorf("oversized task count: %v, want 400", err)
	}
	if _, err := c.Register(AppSpec{Name: "wide", Window: 1 << 30}); !asAPI(err, &api) || api.Status != http.StatusBadRequest {
		t.Errorf("oversized window: %v, want 400", err)
	}
	if _, err := c.Register(AppSpec{Name: "neg", Policy: &PolicySpec{Type: PolicyLadder, Levels: []float64{1, -0.5}}}); !asAPI(err, &api) || api.Status != http.StatusBadRequest {
		t.Errorf("negative level: %v, want 400", err)
	}
	// Names must stay addressable as a URL path segment — "..", "." and
	// slashes would 201 on register but 404 on every per-app route.
	for _, name := range []string{"..", ".", "a/b", "a b", "é"} {
		if _, err := c.Register(AppSpec{Name: name}); !asAPI(err, &api) || api.Status != http.StatusBadRequest {
			t.Errorf("unaddressable name %q: %v, want 400", name, err)
		}
	}
	// Metric cardinality: each distinct name permanently allocates a
	// window, so the per-app cap must hold across batches.
	if _, err := c.Register(AppSpec{Name: "cardinal"}); err != nil {
		t.Fatal(err)
	}
	wide := make([]Observation, maxMetricsPerApp)
	for i := range wide {
		wide[i] = Observation{Metric: fmt.Sprintf("m%d", i), Value: 1}
	}
	// A rejected over-cap batch must be all-or-nothing: its leading
	// names may not burn slots the next well-formed batch needs.
	over := append(append([]Observation(nil), wide...), Observation{Metric: "m-over", Value: 1})
	if _, err := c.Observe("cardinal", append(over, over...)); !asAPI(err, &api) || api.Status != http.StatusBadRequest {
		t.Fatalf("over-cap batch: %v, want 400", err)
	}
	if n, err := c.Observe("cardinal", wide); err != nil || n != maxMetricsPerApp {
		t.Fatalf("at-cap batch after rejected one: %d, %v (cardinality slots burned?)", n, err)
	}
	if _, err := c.Observe("cardinal", wide[:1]); err != nil {
		t.Errorf("known metric after cap: %v", err)
	}
	if _, err := c.Observe("cardinal", []Observation{{Metric: "fresh", Value: 1}}); !asAPI(err, &api) || api.Status != http.StatusBadRequest {
		t.Errorf("metric past cap: %v, want 400", err)
	}
	if err := c.Detach("ghost"); !IsNotFound(err) {
		t.Errorf("unknown detach: %v, want 404", err)
	}
	if _, err := c.App("ghost"); !IsNotFound(err) {
		t.Errorf("unknown app: %v, want 404", err)
	}
	if _, err := c.Observe("ghost", []Observation{{Metric: "m", Value: 1}}); !IsNotFound(err) {
		t.Errorf("unknown observe: %v, want 404", err)
	}
	// Malformed JSON body straight at the handler.
	resp, err := http.Post(c.base+"/v1/apps", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: %d, want 400", resp.StatusCode)
	}
	// Unknown fields are rejected, so spec typos fail loudly.
	resp, err = http.Post(c.base+"/v1/apps", "application/json", strings.NewReader(`{"name":"c","debouce":3}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: %d, want 400", resp.StatusCode)
	}
}

// TestServerIngressBackpressure: with the kernel not draining, the
// inbox's pending bound must turn into 429s instead of unbounded
// buffering.
func TestServerIngressBackpressure(t *testing.T) {
	rng := simhpc.NewRNG(101)
	cluster := simhpc.NewCluster(2, 22, func(i int) *simhpc.Node {
		return simhpc.HomogeneousNode(fmt.Sprintf("n%d", i), 0.15, rng)
	})
	k := runtime.NewKernel(rtrm.NewManager(cluster, cluster.FacilityPowerW(1)*0.9))
	s := NewServer(k)
	srv := httptest.NewServer(s)
	defer srv.Close()
	c := NewClient(srv.URL, srv.Client())
	if _, err := c.Register(AppSpec{Name: "firehose"}); err != nil {
		t.Fatal(err)
	}
	// Fill the inbox from inside (the kernel is stopped, nothing drains).
	ra := s.apps["firehose"]
	for i := 0; i < maxPendingSamples; i++ {
		ra.inbox.Push(monitor.MetricLatency, 1)
	}
	var api *APIError
	if _, err := c.Observe("firehose", []Observation{{Metric: monitor.MetricLatency, Value: 1}}); !asAPI(err, &api) || api.Status != http.StatusTooManyRequests {
		t.Fatalf("observe at pending cap: %v, want 429", err)
	}
	// Draining the backlog re-opens the ingress.
	ra.ctl.Tick()
	if _, err := c.Observe("firehose", []Observation{{Metric: monitor.MetricLatency, Value: 1}}); err != nil {
		t.Fatalf("observe after drain: %v", err)
	}
}

func asAPI(err error, target **APIError) bool {
	if err == nil {
		return false
	}
	e, ok := err.(*APIError)
	if ok {
		*target = e
	}
	return ok
}

// TestServerConcurrentIngress is the -race stress for the HTTP funnel:
// many producers stream batches at two tenants while a churner
// registers and detaches a third and readers poll every endpoint.
func TestServerConcurrentIngress(t *testing.T) {
	k, c := newTestPlane(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := k.Start(ctx, runtime.Options{Flush: 2 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	defer k.Stop()
	for _, name := range []string{"t0", "t1"} {
		if _, err := c.Register(AppSpec{Name: name, Workload: WorkloadSpec{Tasks: 1, GFlop: 2}}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			name := fmt.Sprintf("t%d", p%2)
			batch := []Observation{{Metric: monitor.MetricLatency, Value: 0.5}, {Metric: monitor.MetricPower, Value: 80}}
			for i := 0; i < 40; i++ {
				if _, err := c.Observe(name, batch); err != nil {
					t.Errorf("observe %s: %v", name, err)
					return
				}
			}
		}(p)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if _, err := c.Register(AppSpec{Name: "churn"}); err != nil {
				t.Errorf("churn register: %v", err)
				return
			}
			if err := c.Detach("churn"); err != nil {
				t.Errorf("churn detach: %v", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			if _, err := c.Health(); err != nil {
				t.Errorf("health: %v", err)
				return
			}
			if _, err := c.Epochs(); err != nil {
				t.Errorf("epochs: %v", err)
				return
			}
			if _, err := c.Apps(); err != nil {
				t.Errorf("apps: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	waitFor(t, "tenants contributing", func() bool {
		tp := k.TotalsPerApp()
		return tp["t0"] > 0 && tp["t1"] > 0
	})
	if err := k.Err(); err != nil {
		t.Fatal(err)
	}
	st0, err := c.App("t0")
	if err != nil {
		t.Fatal(err)
	}
	st1, err := c.App("t1")
	if err != nil {
		t.Fatal(err)
	}
	if st0.Samples+st1.Samples != 4*40*2 {
		t.Errorf("accepted samples %d+%d, want %d", st0.Samples, st1.Samples, 4*40*2)
	}
}
