// Package controlplane turns the adaptation kernel into a multi-tenant
// service: an HTTP/JSON API (stdlib net/http only) through which remote
// applications register (POST /v1/apps), stream telemetry observations
// into their lock-free runtime.Inbox (POST /v1/apps/{id}/observations),
// and detach live (DELETE /v1/apps/{id}) — the kernel's membership
// epoch admits and drains them at epoch boundaries while the sharded
// control loops keep serving everyone else. Read-side telemetry is
// GET /v1/apps[/{id}], GET /v1/epochs and GET /healthz.
//
// The ingress funnel deliberately ends at the lock-free inbox: an HTTP
// handler goroutine is just another telemetry producer, so the
// CCBench-style contention argument that chose the lock-free ring
// (PR 2, K3) carries over to remote producers unchanged — handlers
// never contend with the control loops' Collect; beyond the
// batch-claim atomics the only shared state on the warm path is a
// read-locked metric-cardinality check and a pending-sample bound
// (backpressure when the kernel is not draining).
//
// Telemetry has two wire formats over that funnel. JSON
// (POST /v1/apps/{id}/observations) stays for debuggability — curl a
// batch in by hand. The binary observation protocol
// (internal/controlplane/wire) is the throughput path:
// POST /v1/apps/{id}/observations:binary takes one-shot frame bodies,
// and POST /v1/stream holds a long-lived request body open and decodes
// frames off it in a loop — any registered app per frame, name
// dictionaries scoped to the stream, each batch landing in the app's
// inbox via one bulk slot-range claim (Inbox.PushBatch). Both paths
// run on pooled scratch (zero steady-state allocations for binary
// decode) and enforce the same hardening caps as JSON: metric
// cardinality, name bounds, pending-sample backpressure, and finite
// values (JSON cannot carry NaN/Inf, so the binary path rejects them).
package controlplane

import (
	"bufio"
	"bytes"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/controlplane/wire"
	"repro/internal/monitor"
	"repro/internal/policyc"
	"repro/internal/rtrm"
	"repro/internal/runtime"
	"repro/internal/simhpc"
)

// Body-size ceilings, defensive bounds for a public ingress.
const (
	maxSpecBody        = 64 << 10
	maxObservationBody = 1 << 20
)

// remoteApp is the server-side state of one HTTP-registered tenant:
// the kernel controller, the inbox HTTP observations feed, and the
// active policy (ladder position or compiled DSL program).
type remoteApp struct {
	spec    AppSpec
	inbox   *runtime.Inbox
	ctl     *runtime.Controller
	samples atomic.Int64

	// quota is the spec's ingress token bucket; nil admits everything.
	quota *tokenBucket

	// pol is the active policy arm. Swapped atomically by
	// PUT /v1/apps/{id}/policy while the workload closure and status
	// readers load it lock-free; nil means no policy (level 1).
	pol atomic.Pointer[appPolicy]

	// levelIdx is the ladder arm's position; dslLevel is the DSL arm's
	// knob value as float bits (the compiled policy writes "level"
	// through a KnobFunc into it). Each swap re-seeds the incoming
	// arm's state. swaps counts completed hot-swaps for AppStatus.
	levelIdx atomic.Int64
	dslLevel atomic.Uint64
	swaps    atomic.Int64

	// metrics tracks the distinct metric names this tenant has streamed.
	// Every new name permanently allocates a monitor.Window in the
	// controller, so cardinality is capped (maxMetricsPerApp) — without
	// it a hostile tenant could grow server memory one fresh name at a
	// time, under the body-size ceilings. Once the set is warm the
	// check is a shared RLock, so concurrent producers to one app do
	// not serialize on it.
	metricsMu sync.RWMutex
	metrics   map[string]struct{}
}

// admitMetrics checks a batch's metric names against the cardinality
// cap. All-or-nothing: a rejected batch admits no names, so it cannot
// burn cardinality slots a later well-formed batch would need. It
// takes the kernel's sample type so the JSON and binary ingest paths
// share it without converting.
func (a *remoteApp) admitMetrics(samples []runtime.Sample) error {
	a.metricsMu.RLock()
	known := true
	for i := range samples {
		if _, ok := a.metrics[samples[i].Metric]; !ok {
			known = false
			break
		}
	}
	a.metricsMu.RUnlock()
	if known {
		return nil // warm path: no write lock on the ingest funnel
	}
	a.metricsMu.Lock()
	defer a.metricsMu.Unlock()
	var added []string
	for i := range samples {
		m := samples[i].Metric
		if _, ok := a.metrics[m]; ok {
			continue
		}
		if len(a.metrics) >= maxMetricsPerApp {
			for _, rollback := range added {
				delete(a.metrics, rollback) // roll back: the batch is rejected whole
			}
			return fmt.Errorf("metric %q would exceed the %d distinct metrics per app", m, maxMetricsPerApp)
		}
		a.metrics[m] = struct{}{}
		added = append(added, m)
	}
	return nil
}

// level returns the active workload multiplier (1 without a policy).
// The ladder arm indexes its levels; the DSL arm reads the knob value
// the compiled policy last wrote.
func (a *remoteApp) level() float64 {
	ap := a.pol.Load()
	if ap == nil {
		return 1
	}
	switch ap.spec.Type {
	case PolicyLadder:
		idx := a.levelIdx.Load()
		if idx < 0 || int(idx) >= len(ap.spec.Levels) {
			return 1
		}
		return ap.spec.Levels[idx]
	case PolicyDSL:
		return math.Float64frombits(a.dslLevel.Load())
	}
	return 1
}

// Server exposes a runtime.Kernel over HTTP. It implements
// http.Handler; the caller owns the kernel's lifecycle (Start/Stop) and
// the http.Server wrapping.
type Server struct {
	kernel    *runtime.Kernel
	mux       *http.ServeMux
	authToken string

	mu   sync.RWMutex // guards apps and backends; held across Attach/Detach so map and membership agree
	apps map[string]*remoteApp
	// backends retains the declared spec of every live backend — the
	// kernel holds only the built manager, but snapshots and Restore
	// need the declaration that built it.
	backends []BackendSpec

	// journal is the durability arm (nil = memory-only, no behaviour
	// change); jmu are the lockEntity stripes ordering same-name
	// mutations against their journal records.
	journal *planeJournal
	jmu     [journalStripes]sync.Mutex
}

// ServerOption configures NewServer.
type ServerOption func(*Server)

// WithAuthToken arms static bearer-token ingress auth: every mutating
// route (POST and DELETE — registration, detach, observations, the
// stream, backend creation) requires "Authorization: Bearer <token>"
// and answers 401 without it. Read-side routes (GET) stay open, as
// liveness probes must. An empty token leaves auth off.
func WithAuthToken(token string) ServerOption {
	return func(s *Server) { s.authToken = token }
}

// NewServer builds the control plane over a kernel. Apps attached to
// the kernel directly (in-process) are visible in /v1/epochs but are
// not addressable under /v1/apps, which serves HTTP-registered tenants.
func NewServer(k *runtime.Kernel, opts ...ServerOption) *Server {
	s := &Server{
		kernel: k,
		mux:    http.NewServeMux(),
		apps:   make(map[string]*remoteApp),
	}
	for _, opt := range opts {
		opt(s)
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/epochs", s.handleEpochs)
	s.mux.HandleFunc("GET /v1/epochs/stream", s.handleEpochStream)
	s.mux.HandleFunc("GET /v1/backends", s.handleBackends)
	s.mux.HandleFunc("POST /v1/backends", s.auth(s.handleAddBackend))
	s.mux.HandleFunc("DELETE /v1/backends/{id}", s.auth(s.handleRemoveBackend))
	s.mux.HandleFunc("POST /v1/apps", s.auth(s.handleRegister))
	s.mux.HandleFunc("GET /v1/apps", s.handleApps)
	s.mux.HandleFunc("GET /v1/apps/{id}", s.handleApp)
	s.mux.HandleFunc("DELETE /v1/apps/{id}", s.auth(s.handleDetach))
	s.mux.HandleFunc("PUT /v1/apps/{id}/policy", s.auth(s.handlePutPolicy))
	s.mux.HandleFunc("POST /v1/apps/{id}/observations", s.auth(s.handleObserve))
	s.mux.HandleFunc("POST /v1/apps/{id}/observations:binary", s.auth(s.handleObserveBinary))
	s.mux.HandleFunc("POST /v1/stream", s.auth(s.handleStream))
	return s
}

// auth wraps a mutating handler with the bearer-token check.
func (s *Server) auth(h http.HandlerFunc) http.HandlerFunc {
	if s.authToken == "" {
		return h
	}
	want := []byte("Bearer " + s.authToken)
	return func(w http.ResponseWriter, r *http.Request) {
		got := []byte(r.Header.Get("Authorization"))
		if subtle.ConstantTimeCompare(got, want) != 1 {
			w.Header().Set("WWW-Authenticate", `Bearer realm="antarex"`)
			writeError(w, http.StatusUnauthorized, CodeUnauthorized, "missing or invalid bearer token")
			return
		}
		h(w, r)
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError emits the unified error envelope:
// {"error": {"code", "message", "detail"}}. Every error path in the
// API funnels through here (or writeCompileErr, which adds a detail
// payload), so clients can switch on one machine-readable code space.
func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, ErrorBody{Error: ErrorInfo{
		Code:    code,
		Message: fmt.Sprintf(format, args...),
	}})
}

// writeCompileErr renders a DSL admission failure: 400 with code
// "compile_error" and the positioned diagnostics marshalled into
// detail, so a client can map them back onto policy source lines.
func writeCompileErr(w http.ResponseWriter, ce *policyc.CompileError) {
	detail, err := json.Marshal(ce.Diags)
	if err != nil {
		detail = nil
	}
	writeJSON(w, http.StatusBadRequest, ErrorBody{Error: ErrorInfo{
		Code:    CodeCompileError,
		Message: ce.Error(),
		Detail:  detail,
	}})
}

// errCode maps an HTTP status onto its envelope code.
func errCode(status int) string {
	switch status {
	case http.StatusBadRequest:
		return CodeBadRequest
	case http.StatusUnauthorized:
		return CodeUnauthorized
	case http.StatusNotFound:
		return CodeNotFound
	case http.StatusConflict:
		return CodeConflict
	case http.StatusTooManyRequests:
		return CodeBackpressure
	}
	return CodeInternal
}

// writeErr maps kernel errors onto HTTP statuses.
func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, runtime.ErrDuplicateApp):
		status = http.StatusConflict
	case errors.Is(err, runtime.ErrUnknownApp):
		status = http.StatusNotFound
	case errors.Is(err, runtime.ErrEmptyAppName):
		status = http.StatusBadRequest
	case errors.Is(err, runtime.ErrUnknownBackend):
		status = http.StatusNotFound
	case errors.Is(err, runtime.ErrBackendDraining), errors.Is(err, runtime.ErrLastBackend):
		status = http.StatusConflict
	}
	writeError(w, status, errCode(status), "%s", err.Error())
}

func badRequest(w http.ResponseWriter, format string, args ...any) {
	writeError(w, http.StatusBadRequest, CodeBadRequest, format, args...)
}

// Spec magnitude ceilings: the body-size caps bound the JSON, these
// bound what the numbers inside it can make the kernel allocate or
// feed into the simulator. Generous for any real tenant, fatal for a
// hostile one.
const (
	maxTasksPerEpoch = 4096
	maxWindow        = 1 << 16
	maxDebounce      = 1024
	maxLevels        = 64
	maxMetricsPerApp = 64
	maxNameLen       = 128
	maxMagnitude     = 1e9 // gflop, mem_gb, level, goal target
	// maxPendingSamples bounds one tenant's uncollected inbox. The
	// inbox chain is otherwise unbounded, and it only drains while the
	// kernel ticks the app — without this cap, observations streamed at
	// a stopped (or slow) kernel would grow server memory without
	// limit. ~6 MB of samples per tenant at the default chunk layout.
	maxPendingSamples = 1 << 18
)

// validMag reports whether v is a finite value in [0, maxMagnitude]
// (NaN rejected by the double negation).
func validMag(v float64) bool {
	return v >= 0 && v <= maxMagnitude
}

// validName reports whether a tenant name is addressable as one URL
// path segment under /v1/apps/{id}: [A-Za-z0-9._-]+, not "." or "..".
// Anything looser (slashes, dot segments) registers fine but then
// path-cleans into a 404 on every per-app route — a tenant that can
// never be observed or detached over HTTP.
func validName(name string) bool {
	if name == "" || len(name) > maxNameLen || name == "." || name == ".." {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return false
		}
	}
	return true
}

// validateSpec bounds a remote AppSpec's magnitudes.
func validateSpec(spec AppSpec) error {
	switch {
	case !validName(spec.Name):
		return fmt.Errorf("name %q must be 1-%d characters of [A-Za-z0-9._-] and not a dot segment", spec.Name, maxNameLen)
	case spec.Workload.Tasks < 0 || spec.Workload.Tasks > maxTasksPerEpoch:
		return fmt.Errorf("workload.tasks %d out of range [0, %d]", spec.Workload.Tasks, maxTasksPerEpoch)
	case spec.Window < 0 || spec.Window > maxWindow:
		return fmt.Errorf("window %d out of range [0, %d]", spec.Window, maxWindow)
	case spec.Debounce < 0 || spec.Debounce > maxDebounce:
		return fmt.Errorf("debounce %d out of range [0, %d]", spec.Debounce, maxDebounce)
	case !validMag(spec.Workload.GFlop) || !validMag(spec.Workload.MemGB):
		return fmt.Errorf("workload gflop/mem_gb must be finite in [0, %g]", float64(maxMagnitude))
	}
	for _, g := range spec.Goals {
		if !validMag(g.Target) {
			return fmt.Errorf("goal %s: target %g must be finite in [0, %g]", g.Metric, g.Target, float64(maxMagnitude))
		}
	}
	if spec.Placement != "" && !validName(spec.Placement) {
		return fmt.Errorf("placement %q must be 1-%d characters of [A-Za-z0-9._-]", spec.Placement, maxNameLen)
	}
	return nil
}

// Backend-spec ceilings: a POST /v1/backends allocates a simulated
// cluster, so its dimensions are bounded like an AppSpec's magnitudes.
const (
	maxBackendNodes = 256
	minAmbientC     = -40
	maxAmbientC     = 60
)

// withBackendDefaults fills a BackendSpec's zero values.
func withBackendDefaults(spec BackendSpec) BackendSpec {
	if spec.Nodes <= 0 {
		spec.Nodes = 8
	}
	if spec.AmbientC == 0 {
		spec.AmbientC = 22
	}
	if spec.CapFrac <= 0 {
		spec.CapFrac = 0.9
	}
	if spec.Vary <= 0 {
		spec.Vary = 0.15
	}
	if spec.Seed == 0 {
		spec.Seed = 1
	}
	return spec
}

// ValidateBackendSpec bounds a backend declaration. Zero values are
// the unset sentinels (see BackendSpec) and always pass; explicit
// negatives are rejected rather than silently defaulted.
func ValidateBackendSpec(spec BackendSpec) error {
	switch {
	case !validName(spec.Name):
		return fmt.Errorf("name %q must be 1-%d characters of [A-Za-z0-9._-] and not a dot segment", spec.Name, maxNameLen)
	case spec.Nodes < 0 || spec.Nodes > maxBackendNodes:
		return fmt.Errorf("nodes %d out of range [1, %d] (0 = default)", spec.Nodes, maxBackendNodes)
	case math.IsNaN(spec.AmbientC) || spec.AmbientC < minAmbientC || spec.AmbientC > maxAmbientC:
		return fmt.Errorf("ambient_c %g out of range [%d, %d] (0 = default 22)", spec.AmbientC, minAmbientC, maxAmbientC)
	case math.IsNaN(spec.CapFrac) || spec.CapFrac < 0 || spec.CapFrac > 1:
		return fmt.Errorf("cap_frac %g out of range (0, 1] (0 = default 0.9)", spec.CapFrac)
	case math.IsNaN(spec.Vary) || spec.Vary < 0 || spec.Vary >= 1:
		return fmt.Errorf("vary %g out of range [0, 1) (0 = default 0.15)", spec.Vary)
	}
	return nil
}

// BuildBackend materializes a backend declaration: a simulated cluster
// of the declared shape under its own rtrm.Manager. Shared by the
// POST /v1/backends handler and cmd/antarex-serve's startup flags.
func BuildBackend(spec BackendSpec) *rtrm.Manager {
	spec = withBackendDefaults(spec)
	rng := simhpc.NewRNG(spec.Seed)
	cluster := simhpc.NewCluster(spec.Nodes, spec.AmbientC, func(i int) *simhpc.Node {
		if spec.Hetero && i%2 == 0 {
			return simhpc.HeterogeneousNode(fmt.Sprintf("%s-n%d", spec.Name, i), spec.Vary, rng)
		}
		return simhpc.HomogeneousNode(fmt.Sprintf("%s-n%d", spec.Name, i), spec.Vary, rng)
	})
	return rtrm.NewManager(cluster, cluster.FacilityPowerW(1)*spec.CapFrac)
}

// parseGoals converts wire goals to monitor goals.
func parseGoals(specs []GoalSpec) ([]monitor.Goal, error) {
	goals := make([]monitor.Goal, 0, len(specs))
	for _, g := range specs {
		if g.Metric == "" {
			return nil, fmt.Errorf("goal missing metric")
		}
		rel := monitor.AtMost
		switch g.Relation {
		case "", "at_most", "<=":
		case "at_least", ">=":
			rel = monitor.AtLeast
		default:
			return nil, fmt.Errorf("goal %s: unknown relation %q", g.Metric, g.Relation)
		}
		switch g.Stat {
		case "", "mean", "p95", "max":
		default:
			return nil, fmt.Errorf("goal %s: unknown stat %q", g.Metric, g.Stat)
		}
		goals = append(goals, monitor.Goal{Metric: g.Metric, Stat: g.Stat, Relation: rel, Target: g.Target})
	}
	return goals, nil
}

// kernelSpec lowers a wire AppSpec into a runtime.AppSpec wired to the
// remoteApp's inbox, synthetic workload and built policy arm.
func (s *Server) kernelSpec(ra *remoteApp, goals []monitor.Goal, pol runtime.Policy, knob runtime.Knob) runtime.AppSpec {
	w := ra.spec.Workload
	if w.Tasks <= 0 {
		w.Tasks = 1
	}
	if w.GFlop <= 0 {
		w.GFlop = 1
	}
	if w.MemGB <= 0 {
		w.MemGB = w.GFlop / 8
	}
	return runtime.AppSpec{
		Name:     ra.spec.Name,
		SLA:      monitor.SLA{Name: ra.spec.Name, Goals: goals},
		Window:   ra.spec.Window,
		Debounce: ra.spec.Debounce,
		Backend:  ra.spec.Placement,
		Sensor:   ra.inbox,
		Policy:   pol,
		Knob:     knob,
		Workload: func() ([]*simhpc.Task, error) {
			// Fresh tasks every call: the pipelined executor may still
			// be reading the previous epoch's slice.
			lvl := ra.level()
			tasks := make([]*simhpc.Task, w.Tasks)
			for i := range tasks {
				tasks[i] = &simhpc.Task{GFlop: w.GFlop * lvl, MemGB: w.MemGB * lvl, Tag: ra.spec.Name}
			}
			return tasks, nil
		},
	}
}

// specError marks an admission failure caused by the spec's contents —
// the handler maps it to 400 where an unwrapped kernel or journal error
// maps by its own kind.
type specError struct{ err error }

func (e *specError) Error() string { return e.err.Error() }
func (e *specError) Unwrap() error { return e.err }

// admitApp builds and attaches one pre-validated tenant: goals parsed,
// quota bucket built, policy compiled and installed, kernel Attach
// under s.mu, and — when journal is true — the registration journaled
// before the caller acks. Restore passes journal=false: the records
// that produced the recovered state are already durable. The caller
// holds the entity lock (or is single-threaded recovery).
func (s *Server) admitApp(spec AppSpec, journal bool) (*remoteApp, error) {
	goals, err := parseGoals(spec.Goals)
	if err != nil {
		return nil, &specError{err}
	}
	ra := &remoteApp{
		spec:    spec,
		inbox:   &runtime.Inbox{},
		metrics: make(map[string]struct{}),
		quota:   newTokenBucket(spec.Quota, time.Now()),
	}
	ap, pol, knob, err := buildPolicy(ra, spec.Policy)
	if err != nil {
		return nil, &specError{err}
	}
	installPolicy(ra, ap)
	s.mu.Lock()
	ctl, err := s.kernel.Attach(s.kernelSpec(ra, goals, pol, knob))
	if err == nil {
		ra.ctl = ctl
		s.apps[spec.Name] = ra
	}
	s.mu.Unlock()
	if err != nil {
		if ap != nil {
			ap.close()
		}
		return nil, err
	}
	if journal {
		// Journal outside s.mu (concurrent tenants' fsyncs batch into
		// one group commit) but inside the caller's entity lock. On
		// failure the app stays live but unacked: write-ahead promises
		// nothing about unacknowledged ops, and the log's sticky error
		// has already degraded the plane to read-only.
		if err := s.journalAppend(opRegister, spec); err != nil {
			return nil, err
		}
	}
	return ra, nil
}

// writeAdmitErr maps an admitApp failure: compile diagnostics, then
// spec errors (400), then kernel/journal errors by their own kind.
func writeAdmitErr(w http.ResponseWriter, err error) {
	var ce *policyc.CompileError
	if errors.As(err, &ce) {
		writeCompileErr(w, ce)
		return
	}
	var se *specError
	if errors.As(err, &se) {
		badRequest(w, "bad app spec: %v", se.err)
		return
	}
	writeErr(w, err)
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var spec AppSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		badRequest(w, "bad app spec: %v", err)
		return
	}
	if err := rejectLegacyLevels(&spec); err != nil {
		badRequest(w, "bad app spec: %v", err)
		return
	}
	if err := validateSpec(spec); err != nil {
		badRequest(w, "bad app spec: %v", err)
		return
	}
	if err := validatePolicy(spec.Policy); err != nil {
		badRequest(w, "bad app spec: %v", err)
		return
	}
	if err := validateQuota(spec.Quota); err != nil {
		badRequest(w, "bad app spec: %v", err)
		return
	}
	if spec.Placement != "" && !s.kernel.HasBackend(spec.Placement) {
		badRequest(w, "bad app spec: placement %q names no registered backend (see GET /v1/backends)", spec.Placement)
		return
	}
	unlock := s.lockEntity(spec.Name)
	defer unlock()
	ra, err := s.admitApp(spec, true)
	if err != nil {
		writeAdmitErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, s.status(ra, nil))
}

func (s *Server) handleDetach(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("id")
	unlock := s.lockEntity(name)
	defer unlock()
	s.mu.Lock()
	ra, known := s.apps[name]
	var err error
	if !known {
		err = fmt.Errorf("controlplane: %q: %w", name, runtime.ErrUnknownApp)
	} else if err = s.kernel.Detach(name); err == nil {
		delete(s.apps, name)
	}
	s.mu.Unlock()
	if err != nil {
		writeErr(w, err)
		return
	}
	// Release the policy's resources (an isolated DSL policy owns a
	// worker goroutine) after membership is updated: the kernel drains
	// the app at the next boundary, and Close serializes against any
	// in-flight Decide.
	if ap := ra.pol.Load(); ap != nil {
		ap.close()
	}
	// Journal before the 204: an acked detach must survive a crash
	// (replaying a restart that resurrects a detached tenant would be a
	// durability lie in the other direction).
	if err := s.journalAppend(opDetach, nameRecord{Name: name}); err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, "%s", err.Error())
		return
	}
	// The kernel drains the app at the next epoch boundary; membership
	// is already updated, so 204 without waiting for the drain.
	w.WriteHeader(http.StatusNoContent)
}

// backpressureError is a full-inbox rejection (HTTP 429): the inbox
// only drains while the kernel ticks the app, so past the pending cap
// the server refuses new batches instead of buffering without bound.
type backpressureError struct {
	name    string
	pending int
}

func (e *backpressureError) Error() string {
	return fmt.Sprintf("controlplane: %s: %d samples pending and not being collected; retry later", e.name, e.pending)
}

// writeIngestErr maps ingest-funnel errors onto HTTP statuses. The two
// 429 causes — full inbox and exhausted quota — share the same
// envelope code ("backpressure"): to a client both mean "slow down,
// retry later"; the quota case additionally says when, via Retry-After.
func writeIngestErr(w http.ResponseWriter, err error) {
	var qe *quotaError
	if errors.As(err, &qe) {
		w.Header().Set("Retry-After", strconv.Itoa(qe.retryAfterSeconds()))
		writeError(w, http.StatusTooManyRequests, CodeBackpressure, "%s", err.Error())
		return
	}
	var bp *backpressureError
	if errors.As(err, &bp) {
		writeError(w, http.StatusTooManyRequests, CodeBackpressure, "%s", err.Error())
		return
	}
	badRequest(w, "%v", err)
}

// ingest is the funnel every observation path ends in — JSON, binary
// one-shot and streaming alike: backpressure bound, cardinality
// admission, then one bulk slot-range claim into the app's lock-free
// inbox. Past admission nothing can fail: the batch lands even if the
// app is detached concurrently (its inbox just never gets collected
// again).
func (s *Server) ingest(ra *remoteApp, samples []runtime.Sample) error {
	if ra.inbox.Len() >= maxPendingSamples {
		return &backpressureError{name: ra.spec.Name, pending: ra.inbox.Len()}
	}
	// The quota charges after the inbox bound (a full inbox should not
	// burn tokens) and before cardinality admission: a refused batch is
	// rejected whole and charges nothing — take is all-or-nothing.
	if ok, wait := ra.quota.take(len(samples), time.Now()); !ok {
		return &quotaError{name: ra.spec.Name, retryAfter: wait}
	}
	if err := ra.admitMetrics(samples); err != nil {
		return err
	}
	ra.inbox.PushBatch(samples)
	ra.samples.Add(int64(len(samples)))
	return nil
}

// checkFinite rejects non-finite sample values on the binary paths:
// RFC 8259 JSON cannot carry NaN or ±Inf, so enforcing the caps
// "identically" means raw float64 frames must not smuggle them into
// metric windows either.
func checkFinite(samples []runtime.Sample) error {
	for i := range samples {
		if v := samples[i].Value; math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("sample %d (metric %q): non-finite value", i, samples[i].Metric)
		}
	}
	return nil
}

// jsonIngest is the pooled per-request scratch of the JSON observation
// path: the body buffer, the decoded batch (json.Unmarshal reuses the
// samples slice capacity) and the kernel-sample conversion buffer.
type jsonIngest struct {
	body    bytes.Buffer
	batch   ObservationBatch
	samples []runtime.Sample
}

var jsonIngestPool = sync.Pool{New: func() any { return new(jsonIngest) }}

// binaryIngest is the pooled per-request scratch of the binary paths:
// a buffered reader over the request body, the frame decoder with its
// stream dictionaries, and the one-shot endpoint's whole-body
// accumulation buffer.
type binaryIngest struct {
	br    *bufio.Reader
	dec   wire.Decoder
	batch []runtime.Sample
}

var binaryIngestPool = sync.Pool{New: func() any {
	return &binaryIngest{br: bufio.NewReaderSize(nil, 32<<10)}
}}

func (s *Server) lookupApp(name string) *remoteApp {
	s.mu.RLock()
	ra := s.apps[name]
	s.mu.RUnlock()
	return ra
}

func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("id")
	ra := s.lookupApp(name)
	if ra == nil {
		writeErr(w, fmt.Errorf("controlplane: %q: %w", name, runtime.ErrUnknownApp))
		return
	}
	// Cheap early backpressure check before reading the body: an
	// over-cap tenant is refused without the server paying for a 1 MB
	// read + decode on the very path the bound exists to shed. ingest
	// re-checks, covering the decode-window race.
	if ra.inbox.Len() >= maxPendingSamples {
		writeIngestErr(w, &backpressureError{name: name, pending: ra.inbox.Len()})
		return
	}
	sc := jsonIngestPool.Get().(*jsonIngest)
	defer jsonIngestPool.Put(sc)
	sc.body.Reset()
	if _, err := sc.body.ReadFrom(http.MaxBytesReader(w, r.Body, maxObservationBody)); err != nil {
		badRequest(w, "bad observation batch: %v", err)
		return
	}
	// Zero the whole reused backing array, not just truncate:
	// json.Unmarshal merges into existing slice elements, so a field a
	// request omits would otherwise inherit the previous request's
	// value — a cross-tenant leak through the pool.
	sc.batch.Samples = sc.batch.Samples[:cap(sc.batch.Samples)]
	clear(sc.batch.Samples)
	sc.batch.Samples = sc.batch.Samples[:0]
	if err := json.Unmarshal(sc.body.Bytes(), &sc.batch); err != nil {
		badRequest(w, "bad observation batch: %v", err)
		return
	}
	sc.samples = sc.samples[:0]
	for _, o := range sc.batch.Samples {
		if o.Metric == "" {
			badRequest(w, "observation missing metric")
			return
		}
		sc.samples = append(sc.samples, runtime.Sample{Metric: o.Metric, Value: o.Value})
	}
	if err := s.ingest(ra, sc.samples); err != nil {
		writeIngestErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ObservationAck{Accepted: len(sc.samples)})
}

// handleObserveBinary is the one-shot binary batch endpoint
// (POST /v1/apps/{id}/observations:binary): the body is a short wire
// stream — one or more frames, all addressed to the URL's app — under
// the same body-size ceiling as the JSON path. The body is one batch:
// every frame is decoded and validated before anything is ingested,
// so a rejected body admits nothing (the JSON path's all-or-nothing
// semantics; a client may blindly retry the whole body without
// duplicating samples).
func (s *Server) handleObserveBinary(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("id")
	ra := s.lookupApp(name)
	if ra == nil {
		writeErr(w, fmt.Errorf("controlplane: %q: %w", name, runtime.ErrUnknownApp))
		return
	}
	// Same cheap pre-read backpressure refusal as the JSON handler.
	if ra.inbox.Len() >= maxPendingSamples {
		writeIngestErr(w, &backpressureError{name: name, pending: ra.inbox.Len()})
		return
	}
	sc := binaryIngestPool.Get().(*binaryIngest)
	defer binaryIngestPool.Put(sc)
	sc.br.Reset(http.MaxBytesReader(w, r.Body, maxObservationBody))
	sc.dec.Reset()
	sc.batch = sc.batch[:0]
	for {
		app, samples, err := sc.dec.ReadFrame(sc.br)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			badRequest(w, "bad observation frame: %v", err)
			return
		}
		if app != name {
			badRequest(w, "frame addressed to %q on the %q endpoint", app, name)
			return
		}
		if err := checkFinite(samples); err != nil {
			badRequest(w, "bad observation frame: %v", err)
			return
		}
		// The decoder's sample scratch is reused by the next ReadFrame,
		// so accumulate a copy (metric strings stay interned).
		sc.batch = append(sc.batch, samples...)
	}
	if err := s.ingest(ra, sc.batch); err != nil {
		writeIngestErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ObservationAck{Accepted: len(sc.batch)})
}

// handleStream is the persistent ingest endpoint (POST /v1/stream): it
// reads binary frames off the request body in a loop until the client
// closes the stream, pushing each frame's batch into its app's inbox
// as it arrives. Any registered app may appear in any frame (the name
// dictionaries are scoped to the stream), so one connection can carry
// a whole agent's fleet of tenants. The response — an ack with totals,
// or the error that terminated the stream — is written when the stream
// ends; an unknown app, a malformed frame or a cardinality violation
// each end the stream (the client sees the HTTP status once its send
// side closes).
//
// Backpressure differs from the one-shot endpoints: a persistent
// stream has a transport to push back on, so a full inbox stalls the
// frame loop instead of rejecting — the server stops reading, the TCP
// window and the client's pipe fill, and the producer self-paces at
// the kernel's drain rate. Only a stall that outlives
// streamStallLimit (a stopped or wedged kernel, not a busy one) turns
// into the 429 the one-shot paths return immediately.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	sc := binaryIngestPool.Get().(*binaryIngest)
	defer binaryIngestPool.Put(sc)
	sc.br.Reset(r.Body)
	sc.dec.Reset()
	var ack StreamAck
	for {
		app, samples, err := sc.dec.ReadFrame(sc.br)
		if errors.Is(err, io.EOF) {
			writeJSON(w, http.StatusOK, ack)
			return
		}
		if err != nil {
			badRequest(w, "bad stream frame: %v", err)
			return
		}
		ra := s.lookupApp(app)
		if ra == nil {
			writeErr(w, fmt.Errorf("controlplane: %q: %w", app, runtime.ErrUnknownApp))
			return
		}
		if err := checkFinite(samples); err != nil {
			badRequest(w, "bad stream frame: %v", err)
			return
		}
		if err := s.ingestStream(r, ra, samples); err != nil {
			writeIngestErr(w, err)
			return
		}
		ack.Accepted += int64(len(samples))
		ack.Frames++
	}
}

// streamStallLimit bounds how long one stream frame may wait out
// backpressure before the stream fails with 429. Generous against a
// busy kernel (drains run every epoch, microseconds apart), short
// against a stopped one. A var so tests can shorten the stall.
var streamStallLimit = 5 * time.Second

// ingestStream is ingest with stream flow control: backpressure waits
// for the kernel to drain instead of failing, bounded by
// streamStallLimit and the client hanging up.
func (s *Server) ingestStream(r *http.Request, ra *remoteApp, samples []runtime.Sample) error {
	err := s.ingest(ra, samples)
	if err == nil {
		return nil
	}
	var bp *backpressureError
	if !errors.As(err, &bp) {
		return err
	}
	deadline := time.Now().Add(streamStallLimit)
	for {
		// Plain sleep, not a select on time.After: this loop can spin
		// thousands of times per second per stalled stream, and each
		// time.After would allocate a runtime timer. The client hanging
		// up is noticed on the next iteration instead of mid-sleep.
		time.Sleep(200 * time.Microsecond)
		if r.Context().Err() != nil {
			return err // client hung up; surface the last state
		}
		if err = s.ingest(ra, samples); err == nil {
			return nil
		}
		if !errors.As(err, &bp) || time.Now().After(deadline) {
			return err
		}
	}
}

// status renders one tenant. totals is an optional snapshot for list
// endpoints (TotalsPerApp copies the whole map under the kernel's
// epoch lock, so a list re-fetching per app would put an O(N²) load on
// the epoch serial section); nil means the O(1) single-app read.
func (s *Server) status(ra *remoteApp, totals map[string]float64) AppStatus {
	total, ok := totals[ra.spec.Name]
	if !ok && totals == nil {
		total = s.kernel.TotalFor(ra.spec.Name)
	}
	st := AppStatus{
		Name:        ra.spec.Name,
		Ticks:       ra.ctl.Ticks(),
		Fires:       ra.ctl.Fires(),
		Adaptations: ra.ctl.Adaptations(),
		TotalGFlop:  total,
		Samples:     ra.samples.Load(),
		Level:       ra.level(),
		Backend:     s.kernel.AppBackend(ra.spec.Name),
		Placement:   ra.spec.Placement,
		Error:       ra.ctl.LastError(),
	}
	if q := ra.spec.Quota; q != nil {
		qc := *q
		st.Quota = &qc
	}
	if ap := ra.pol.Load(); ap != nil {
		ps := &PolicyStatus{
			Type:   ap.spec.Type,
			Levels: ap.spec.Levels,
			Swaps:  ra.swaps.Load(),
		}
		if ap.prog != nil {
			ps.SourceHash = ap.prog.SourceHash
			ps.Class = ap.prog.Class.String()
			ps.ClassReason = ap.prog.ClassReason
		}
		if ap.kp != nil {
			m := ap.kp.Metrics()
			ps.Decisions = m.Decisions
			ps.FuelBudget = m.FuelBudget
			ps.FuelUsedLast = m.FuelUsedLast
			ps.FuelUsedMax = m.FuelUsedMax
			ps.DeadlineDrops = m.DeadlineDrops
			ps.DecisionDeadlineMS = m.DecisionDeadline.Milliseconds()
		}
		st.Policy = ps
	}
	return st
}

func (s *Server) handleApp(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("id")
	s.mu.RLock()
	ra := s.apps[name]
	s.mu.RUnlock()
	if ra == nil {
		writeErr(w, fmt.Errorf("controlplane: %q: %w", name, runtime.ErrUnknownApp))
		return
	}
	writeJSON(w, http.StatusOK, s.status(ra, nil))
}

func (s *Server) handleApps(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	apps := make([]*remoteApp, 0, len(s.apps))
	for _, ra := range s.apps {
		apps = append(apps, ra)
	}
	s.mu.RUnlock()
	totals := s.kernel.TotalsPerApp()
	out := make([]AppStatus, 0, len(apps))
	for _, ra := range apps {
		out = append(out, s.status(ra, totals))
	}
	writeJSON(w, http.StatusOK, out)
}

// backendStatuses converts the kernel's per-backend snapshot to wire
// form.
func (s *Server) backendStatuses() []BackendStatus {
	stats := s.kernel.BackendStats()
	out := make([]BackendStatus, len(stats))
	for i, st := range stats {
		out[i] = BackendStatus{
			Name:          st.Name,
			Apps:          st.Apps,
			Seq:           st.Seq,
			Health:        st.Health.String(),
			State:         st.State,
			LastError:     st.LastErr,
			Epochs:        st.Epochs,
			WorkGFlop:     st.WorkGFlop,
			DeferredGFlop: st.DeferredGFlop,
			EnergyJ:       st.EnergyJ,
			ThermalEvents: st.ThermalEvents,
			CapDemotions:  st.CapDemotions,
		}
	}
	return out
}

// epochsStatus assembles the /v1/epochs payload (also the SSE event
// body).
func (s *Server) epochsStatus() EpochsStatus {
	k := s.kernel
	ms := k.ManagerStats()
	return EpochsStatus{
		Epochs:           k.Epochs(),
		Protocol:         k.Protocol().String(),
		Generation:       k.Generation(),
		ServedGeneration: k.ServedGeneration(),
		Apps:             k.NumApps(),
		TotalsPerApp:     k.TotalsPerApp(),
		WorkGFlop:        ms.WorkGFlop,
		DeferredGFlop:    ms.DeferredGFlop,
		EnergyJ:          ms.EnergyJ,
		Backends:         s.backendStatuses(),
	}
}

func (s *Server) handleEpochs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.epochsStatus())
}

// handleEpochStream is the server-sent-events feed of /v1/epochs
// (GET /v1/epochs/stream): one "epochs" event per epoch advance,
// throttled to at most one event per interval (?interval_ms, default
// 250, 0 = every epoch signal) so a kernel running epochs at
// microsecond pace cannot flood the connection. Clients watch the
// stream instead of polling /v1/epochs; the subscription costs the
// epoch hot path a single atomic load. Backend state transitions
// (failed, degraded, healed, draining, removed) arrive as separate
// "backend" events, immediately — a failure bypasses the interval
// throttle, because the throttle exists for epoch cadence, not for
// rare state changes an operator is waiting on. The stream ends only
// when the client disconnects.
func (s *Server) handleEpochStream(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, CodeInternal, "streaming unsupported by this connection")
		return
	}
	interval := 250 * time.Millisecond
	if q := r.URL.Query().Get("interval_ms"); q != "" {
		ms, err := strconv.Atoi(q)
		if err != nil || ms < 0 || ms > 60_000 {
			badRequest(w, "interval_ms %q out of range [0, 60000]", q)
			return
		}
		interval = time.Duration(ms) * time.Millisecond
	}
	sig, cancel := s.kernel.EpochSignal()
	defer cancel()
	bev, bcancel := s.kernel.BackendEvents()
	defer bcancel()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	enc := json.NewEncoder(w)
	// Coalescing is per backend, not per global epoch counter: under a
	// barrier-free protocol each backend advances its own sequence
	// number, and a late backend's commit must produce an event even
	// when the global counter moved (and was streamed) long before. An
	// event is suppressed only when the epoch counter AND every
	// backend's seq are unchanged since the last one.
	lastEpoch := int64(-1)
	var lastSeqs []int64
	fresh := func(st EpochsStatus) bool {
		if st.Epochs != lastEpoch || len(st.Backends) != len(lastSeqs) {
			return true
		}
		for i, b := range st.Backends {
			if b.Seq != lastSeqs[i] {
				return true
			}
		}
		return false
	}
	send := func() error {
		st := s.epochsStatus()
		if !fresh(st) {
			return nil // woken but nothing new (coalesced signals)
		}
		lastEpoch = st.Epochs
		lastSeqs = lastSeqs[:0]
		for _, b := range st.Backends {
			lastSeqs = append(lastSeqs, b.Seq)
		}
		if _, err := io.WriteString(w, "event: epochs\ndata: "); err != nil {
			return err
		}
		if err := enc.Encode(st); err != nil { // Encode appends one \n
			return err
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
		fl.Flush()
		return nil
	}
	sendBackend := func(ev runtime.BackendEvent) error {
		body := BackendEventBody{
			Backend: ev.Backend,
			Health:  ev.Health.String(),
			State:   ev.State,
			Reason:  ev.Reason,
		}
		if _, err := io.WriteString(w, "event: backend\ndata: "); err != nil {
			return err
		}
		if err := enc.Encode(body); err != nil {
			return err
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
		fl.Flush()
		return nil
	}
	if err := send(); err != nil { // initial snapshot, before any epoch
		return
	}
	done := r.Context().Done()
	for {
		select {
		case <-done:
			return
		case ev := <-bev:
			if err := sendBackend(ev); err != nil {
				return
			}
			continue
		case <-sig:
		}
		if interval > 0 {
			// Throttle: coalesce the epochs that land inside the window.
			// Backend transitions still cut through mid-window.
			t := time.NewTimer(interval)
		throttle:
			for {
				select {
				case <-done:
					t.Stop()
					return
				case ev := <-bev:
					if err := sendBackend(ev); err != nil {
						t.Stop()
						return
					}
				case <-t.C:
					break throttle
				}
			}
		}
		if err := send(); err != nil {
			return
		}
	}
}

func (s *Server) handleBackends(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.backendStatuses())
}

// handleAddBackend declares a new backend (POST /v1/backends): a
// simulated cluster under its own manager joins the kernel's routing
// set at the next epoch boundary. Names must be unique among live
// backends (409 on duplicate); a removed backend's name is reusable.
func (s *Server) handleAddBackend(w http.ResponseWriter, r *http.Request) {
	var spec BackendSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		badRequest(w, "bad backend spec: %v", err)
		return
	}
	if err := ValidateBackendSpec(spec); err != nil {
		badRequest(w, "bad backend spec: %v", err)
		return
	}
	if err := s.AdmitBackend(spec); err != nil {
		var je *journalError
		if errors.As(err, &je) {
			writeError(w, http.StatusInternalServerError, CodeInternal, "%s", err.Error())
			return
		}
		writeError(w, http.StatusConflict, CodeConflict, "%s", err.Error())
		return
	}
	for _, st := range s.backendStatuses() {
		if st.Name == spec.Name {
			writeJSON(w, http.StatusCreated, st)
			return
		}
	}
	writeJSON(w, http.StatusCreated, BackendStatus{Name: spec.Name})
}

// handleRemoveBackend drains and deletes a backend
// (DELETE /v1/backends/{id}). Admission is synchronous — unknown names
// 404, a concurrent drain or the last schedulable backend 409 — while
// the drain itself (evacuating the placed apps at a generation
// boundary) runs in the background: the response is 202 with the
// backend's draining status, and the SSE stream's "backend" events
// report the drained/removed transitions. Deleting an already-removed
// name is a 404, which makes the call safely retryable: a retry after
// a lost response gets the 404 and knows the backend is gone.
func (s *Server) handleRemoveBackend(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("id")
	unlock := s.lockEntity(name)
	done, err := s.kernel.RemoveBackendAsync(name)
	if err != nil {
		unlock()
		writeErr(w, err)
		return
	}
	// The remove is admitted: journal it before any ack (202 included —
	// the client treats 202 as "will complete", so a crash mid-drain
	// must not resurrect the backend). The retained spec goes first so
	// a concurrent snapshot cannot capture the doomed backend after its
	// remove record was journaled.
	s.dropBackendSpec(name)
	jerr := s.journalAppend(opRemoveBackend, nameRecord{Name: name})
	unlock()
	if jerr != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, "%s", jerr.Error())
		return
	}
	// Give a fast drain (idle kernel) a moment to finish, so callers of
	// a quiesced plane observe the remove synchronously.
	select {
	case <-done:
		writeJSON(w, http.StatusOK, BackendStatus{Name: name, State: "removed"})
		return
	case <-time.After(50 * time.Millisecond):
	}
	for _, st := range s.backendStatuses() {
		if st.Name == name {
			writeJSON(w, http.StatusAccepted, st)
			return
		}
	}
	writeJSON(w, http.StatusOK, BackendStatus{Name: name, State: "removed"})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	k := s.kernel
	healthy := k.HealthyBackends()
	status := "ok"
	if healthy == 0 {
		// No schedulable backend: epochs are parked or being written
		// off; the plane is up but degraded.
		status = "degraded"
	}
	writeJSON(w, http.StatusOK, Health{
		Status:           status,
		Running:          k.Running(),
		Apps:             k.NumApps(),
		Backends:         k.NumBackends(),
		BackendsHealthy:  healthy,
		Epochs:           k.Epochs(),
		Generation:       k.Generation(),
		ServedGeneration: k.ServedGeneration(),
	})
}
