package controlplane

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// Per-tenant ingress quotas: a token bucket charged one token per
// sample, shared by every observation path — JSON, binary one-shot and
// the persistent stream. The stream is the important case: its normal
// backpressure is flow control (stop reading, let TCP push back), which
// a hostile producer on a fat pipe can ride for a long time before the
// inbox cap finally trips. The quota turns that into an immediate,
// uniform 429 with a Retry-After, identical to what the one-shot paths
// return, so a well-behaved client needs exactly one throttling code
// path.

// validateQuota bounds a QuotaSpec. nil (no quota) is valid.
func validateQuota(q *QuotaSpec) error {
	if q == nil {
		return nil
	}
	if math.IsNaN(q.Rate) || q.Rate <= 0 || q.Rate > maxMagnitude {
		return fmt.Errorf("quota rate %g must be finite in (0, %g]", q.Rate, float64(maxMagnitude))
	}
	if math.IsNaN(q.Burst) || q.Burst < 0 || q.Burst > maxMagnitude {
		return fmt.Errorf("quota burst %g must be finite in [0, %g] (0 = default)", q.Burst, float64(maxMagnitude))
	}
	return nil
}

// newTokenBucket builds the bucket for a validated spec; nil spec means
// no quota and returns nil (a nil bucket admits everything).
func newTokenBucket(q *QuotaSpec, now time.Time) *tokenBucket {
	if q == nil {
		return nil
	}
	burst := q.Burst
	if burst <= 0 {
		burst = math.Max(q.Rate, 1) // ~one second of headroom
	}
	return &tokenBucket{rate: q.Rate, burst: burst, tokens: burst, last: now}
}

// tokenBucket is a standard refill-on-demand token bucket with one
// twist: a batch larger than the whole bucket is still admitted when
// the bucket is full, going negative. Without that rule a burst-10
// quota would reject a 64-sample batch forever — the bucket can never
// hold 64 — and "forever" is a liveness bug, not a limit. Going
// negative self-corrects: the debt refills at rate, so sustained
// throughput still converges to the quota.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens (samples) per second
	burst  float64 // bucket depth
	tokens float64 // may go negative after an oversized admit
	last   time.Time
}

// take charges need tokens. On refusal it returns how long the caller
// should wait before retrying the same batch.
func (tb *tokenBucket) take(need int, now time.Time) (ok bool, retryAfter time.Duration) {
	if tb == nil {
		return true, 0
	}
	tb.mu.Lock()
	defer tb.mu.Unlock()
	if dt := now.Sub(tb.last).Seconds(); dt > 0 {
		tb.tokens = math.Min(tb.burst, tb.tokens+dt*tb.rate)
		tb.last = now
	}
	n := float64(need)
	if tb.tokens >= n || tb.tokens >= tb.burst {
		tb.tokens -= n
		return true, 0
	}
	// Refusal: wait until the bucket can cover the batch (or is full,
	// whichever comes first — the oversized-batch rule above).
	short := math.Min(n, tb.burst) - tb.tokens
	return false, time.Duration(short / tb.rate * float64(time.Second))
}

// quotaError is an over-quota rejection. It maps onto the same 429 +
// "backpressure" envelope as a full inbox — to a client both mean
// "slow down, retry later" — but additionally carries the bucket's
// computed wait, surfaced as a Retry-After header.
type quotaError struct {
	name       string
	retryAfter time.Duration
}

func (e *quotaError) Error() string {
	return fmt.Sprintf("controlplane: %s: ingress quota exceeded; retry in %v", e.name, e.retryAfter)
}

// retryAfterSeconds renders the wait for the Retry-After header:
// integer seconds, rounded up, at least 1 (RFC 9110 allows 0 but a 0
// invites an immediate retry of a batch that was just refused).
func (e *quotaError) retryAfterSeconds() int {
	s := int(math.Ceil(e.retryAfter.Seconds()))
	if s < 1 {
		s = 1
	}
	return s
}
