package controlplane

import (
	"bufio"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/rtrm"
	"repro/internal/runtime"
	"repro/internal/simhpc"
)

// faultManager wraps a backend so a test can make its next commit
// panic, exercising the failure domain over the wire.
type faultManager struct {
	inner     runtime.Backend
	panicNext atomic.Bool
}

func (f *faultManager) RunEpoch(dt float64, offered []*simhpc.Task) rtrm.EpochReport {
	if f.panicNext.CompareAndSwap(true, false) {
		panic("injected fault")
	}
	return f.inner.RunEpoch(dt, offered)
}

func (f *faultManager) Stats() rtrm.Stats { return f.inner.Stats() }

func testBackend(seed uint64) runtime.Backend {
	rng := simhpc.NewRNG(seed)
	cluster := simhpc.NewCluster(4, 22, func(i int) *simhpc.Node {
		return simhpc.HomogeneousNode(fmt.Sprintf("n%d", i), 0.15, rng)
	})
	return rtrm.NewManager(cluster, cluster.FacilityPowerW(1)*0.9)
}

// newMultiPlane builds a started 2-backend plane with one registered
// app, returning the kernel, the client and the fault injector wrapped
// around b1.
func newFaultPlane(t *testing.T) (*runtime.Kernel, *Client, *faultManager) {
	t.Helper()
	fm := &faultManager{inner: testBackend(202)}
	k := runtime.NewKernel(testBackend(101))
	if err := k.AddBackend("b1", fm); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(k))
	t.Cleanup(srv.Close)
	c := NewClient(srv.URL, srv.Client())
	if err := k.Start(context.Background(), runtime.Options{Flush: 2 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(k.Stop)
	if _, err := c.Register(AppSpec{
		Name: "app",
		// Pinned to the injector-wrapped backend so faults actually fire.
		Placement: "b1",
		Workload:  WorkloadSpec{Tasks: 2, GFlop: 4},
	}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first work", func() bool {
		ep, err := c.Epochs()
		return err == nil && ep.TotalsPerApp["app"] > 0
	})
	return k, c, fm
}

// TestRemoveBackendAPI: DELETE /v1/backends/{id} drains and removes a
// live backend; unknown names 404, the last backend 409.
func TestRemoveBackendAPI(t *testing.T) {
	_, c, _ := newFaultPlane(t)

	if _, err := c.RemoveBackend("nope"); !IsNotFound(err) {
		t.Errorf("remove unknown: %v, want 404", err)
	}
	st, err := c.RemoveBackend("b1")
	if err != nil {
		t.Fatalf("remove b1: %v", err)
	}
	// Sync path (drain settled within the handler's wait) reports the
	// terminal state; the async path reports the in-flight one.
	if st.State != "removed" && st.State != "draining" && st.State != "drained" {
		t.Errorf("remove state = %q", st.State)
	}
	waitFor(t, "b1 gone from listings", func() bool {
		bks, err := c.Backends()
		return err == nil && len(bks) == 1 && bks[0].Name == "b0"
	})
	var api *APIError
	if _, err := c.RemoveBackend("b0"); err == nil {
		t.Error("removing the last backend succeeded, want 409")
	} else if !asAPIError(err, &api) || api.Status != http.StatusConflict {
		t.Errorf("remove last: %v, want 409", err)
	}
}

func asAPIError(err error, target **APIError) bool {
	api, ok := err.(*APIError)
	if ok {
		*target = api
	}
	return ok
}

// TestBackendHealthOverWire: a backend panic shows up in /v1/backends
// (health, last_error) and, once no backend is healthy, flips /healthz
// to "degraded" with backends_healthy 0.
func TestBackendHealthOverWire(t *testing.T) {
	k, c, fm := newFaultPlane(t)

	fm.panicNext.Store(true)
	waitFor(t, "b1 failed over wire", func() bool {
		bks, err := c.Backends()
		if err != nil {
			return false
		}
		for _, b := range bks {
			if b.Name == "b1" {
				return b.Health == "failed" && strings.Contains(b.LastError, "injected fault")
			}
		}
		return false
	})
	h, err := c.Health()
	if err != nil || h.Status != "ok" || h.BackendsHealthy != 1 {
		t.Fatalf("health with one survivor: %+v, %v", h, err)
	}

	// The failed backend no longer counts as schedulable, so the
	// survivor is now the last one — and undrainable.
	if err := k.DrainBackend("b0"); err == nil {
		t.Fatal("draining the last schedulable backend should refuse")
	}
	if err := k.ReviveBackend("b1"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "b1 healthy again over wire", func() bool {
		h, err := c.Health()
		return err == nil && h.BackendsHealthy == 2
	})
}

// TestHealthzDegraded: with every backend failed, /healthz reports
// "degraded" while the plane keeps answering.
func TestHealthzDegraded(t *testing.T) {
	fm := &faultManager{inner: testBackend(202)}
	k := runtime.NewKernel()
	if err := k.AddBackend("b0", fm); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(k))
	t.Cleanup(srv.Close)
	c := NewClient(srv.URL, srv.Client())
	if err := k.Start(context.Background(), runtime.Options{Flush: 2 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(k.Stop)
	if _, err := c.Register(AppSpec{Name: "app", Workload: WorkloadSpec{Tasks: 1, GFlop: 2}}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first work", func() bool {
		ep, err := c.Epochs()
		return err == nil && ep.TotalsPerApp["app"] > 0
	})

	fm.panicNext.Store(true)
	waitFor(t, "healthz degraded", func() bool {
		h, err := c.Health()
		return err == nil && h.Status == "degraded" && h.BackendsHealthy == 0
	})
	if err := k.ReviveBackend("b0"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "healthz ok again", func() bool {
		h, err := c.Health()
		return err == nil && h.Status == "ok"
	})
}

// TestAppStatusCarriesDropNote: under FailFast with no healthy backend,
// the app's wire status carries the write-off note in its error field.
func TestAppStatusCarriesDropNote(t *testing.T) {
	fm := &faultManager{inner: testBackend(202)}
	k := runtime.NewKernel()
	if err := k.AddBackend("b0", fm); err != nil {
		t.Fatal(err)
	}
	k.SetNoHealthyPolicy(runtime.FailFast)
	srv := httptest.NewServer(NewServer(k))
	t.Cleanup(srv.Close)
	c := NewClient(srv.URL, srv.Client())
	if err := k.Start(context.Background(), runtime.Options{Flush: 2 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(k.Stop)
	if _, err := c.Register(AppSpec{Name: "app", Workload: WorkloadSpec{Tasks: 1, GFlop: 2}}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first work", func() bool {
		ep, err := c.Epochs()
		return err == nil && ep.TotalsPerApp["app"] > 0
	})

	fm.panicNext.Store(true)
	waitFor(t, "drop note on wire status", func() bool {
		st, err := c.App("app")
		return err == nil && strings.Contains(st.Error, "no healthy backends")
	})
}

// TestSSEBackendEvents: backend state transitions arrive as dedicated
// "backend" SSE frames on the epoch stream, outside the epoch throttle.
func TestSSEBackendEvents(t *testing.T) {
	k, c, _ := newFaultPlane(t)

	req, err := http.NewRequest(http.MethodGet, c.base+"/v1/epochs/stream?interval=1s", nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	resp, err := http.DefaultClient.Do(req.WithContext(ctx))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// Give the stream a beat to subscribe, then drive a transition.
	time.Sleep(50 * time.Millisecond)
	go func() {
		_ = k.RemoveBackend("b1")
	}()

	scanner := bufio.NewScanner(resp.Body)
	sawBackendEvent := false
	var data string
	for scanner.Scan() {
		line := scanner.Text()
		if line == "event: backend" {
			sawBackendEvent = true
		}
		if sawBackendEvent && strings.HasPrefix(line, "data: ") {
			data = strings.TrimPrefix(line, "data: ")
			break
		}
	}
	if !sawBackendEvent {
		t.Fatalf("no backend SSE frame before stream end (scan err %v)", scanner.Err())
	}
	if !strings.Contains(data, `"backend":"b1"`) || !strings.Contains(data, `"state":"draining"`) {
		t.Errorf("backend event payload = %s", data)
	}
}

// TestClientRetriesIdempotent: GETs ride out transient 503s with
// backoff; mutating requests surface them at once.
func TestClientRetriesIdempotent(t *testing.T) {
	var gets, posts atomic.Int32
	backendJSON := `{"status":"ok","running":true,"apps":0,"backends":1,"backends_healthy":1,"epochs":0,"generation":0,"served_generation":0}`
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			if gets.Add(1) <= 2 {
				http.Error(w, `{"error":"warming up"}`, http.StatusServiceUnavailable)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprint(w, backendJSON)
		default:
			posts.Add(1)
			http.Error(w, `{"error":"busy"}`, http.StatusServiceUnavailable)
		}
	}))
	t.Cleanup(srv.Close)
	c := NewClient(srv.URL, srv.Client())

	h, err := c.Health()
	if err != nil {
		t.Fatalf("health after transient 503s: %v", err)
	}
	if h.Status != "ok" || gets.Load() != 3 {
		t.Errorf("status %q after %d attempts, want ok after 3", h.Status, gets.Load())
	}

	// Writes run exactly once: the 503 surfaces immediately.
	if _, err := c.Register(AppSpec{Name: "x"}); err == nil {
		t.Error("mutating request swallowed a 503")
	}
	if posts.Load() != 1 {
		t.Errorf("mutating request ran %d times, want 1", posts.Load())
	}
}

// TestStreamFlushRedials: a broken stream connection does not lose the
// buffered samples — Flush re-dials and re-sends them, and the totals
// land on the app.
func TestStreamFlushRedials(t *testing.T) {
	_, c, _ := newFaultPlane(t)

	var killFirst atomic.Bool
	killFirst.Store(true)
	// Proxy in front of the real plane: the first stream POST is
	// rejected before the plane sees a frame, simulating a dropped
	// connection mid-stream.
	inner := c.hc.Transport
	if inner == nil {
		inner = http.DefaultTransport
	}
	c.hc = &http.Client{Transport: roundTripFunc(func(r *http.Request) (*http.Response, error) {
		if strings.HasSuffix(r.URL.Path, "/v1/stream") && killFirst.CompareAndSwap(true, false) {
			r.Body.Close()
			return nil, fmt.Errorf("proxy: connection reset")
		}
		return inner.RoundTrip(r)
	})}

	w, err := c.Stream()
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	for i := 0; i < 5; i++ {
		if err := w.Observe("app", "latency", float64(i)); err != nil {
			t.Fatalf("observe: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("flush after reset: %v", err)
	}
	ack, err := w.Close()
	if err != nil {
		t.Fatalf("close: %v", err)
	}
	if ack.Accepted != 5 {
		t.Errorf("accepted %d samples, want 5", ack.Accepted)
	}
	waitFor(t, "samples on app status", func() bool {
		st, err := c.App("app")
		return err == nil && st.Samples == 5
	})
}

type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }
