package controlplane

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"

	"repro/internal/autotune"
	"repro/internal/monitor"
	"repro/internal/policyc"
	"repro/internal/runtime"
)

// DSL-policy admission ceilings, in the spirit of the spec magnitude
// bounds: the compiler is fuel-bounded at run time, but admission still
// caps what one tenant can make it chew on.
const (
	maxPolicySource = 16 << 10
	maxPolicyParams = 32
)

// appPolicy is the server-side record of one installed policy arm:
// the canonical wire spec (what GET reports), and for the DSL arm the
// compiled program plus its live VM-backed instance (closed on swap or
// detach — an isolation-classified policy owns a worker goroutine).
type appPolicy struct {
	spec PolicySpec
	prog *policyc.Program     // nil for ladder
	kp   policyc.KernelPolicy // nil for ladder
}

// close releases the policy instance's resources. Safe on the ladder
// arm (nothing to release).
func (ap *appPolicy) close() {
	if ap != nil && ap.kp != nil {
		_ = ap.kp.Close()
	}
}

// rejectLegacyLevels refuses the removed top-level "levels" alias. It
// was accepted (and canonicalized) for one release; now it is a 400
// that tells the caller exactly where the field moved, which beats the
// generic unknown-field error a dropped declaration would produce.
func rejectLegacyLevels(spec *AppSpec) error {
	if len(spec.Levels) == 0 {
		return nil
	}
	return errors.New(`top-level "levels" was removed; use {"policy": {"type": "ladder", "levels": [...]}} (policy.levels)`)
}

// validatePolicy bounds a canonical PolicySpec. nil (no policy) is
// valid: the app runs open-loop at level 1.
func validatePolicy(p *PolicySpec) error {
	if p == nil {
		return nil
	}
	switch p.Type {
	case PolicyLadder:
		if p.Source != "" || len(p.Params) > 0 {
			return errors.New("ladder policy takes levels only (source/params are dsl fields)")
		}
		if len(p.Levels) == 0 {
			return errors.New("ladder policy needs at least one level")
		}
		if len(p.Levels) > maxLevels {
			return fmt.Errorf("%d levels, at most %d", len(p.Levels), maxLevels)
		}
		for _, l := range p.Levels {
			if !validMag(l) {
				return fmt.Errorf("level %g must be finite in [0, %g]", l, float64(maxMagnitude))
			}
		}
	case PolicyDSL:
		if len(p.Levels) > 0 {
			return errors.New("dsl policy takes source/params, not levels")
		}
		if p.Source == "" {
			return errors.New("dsl policy needs source")
		}
		if len(p.Source) > maxPolicySource {
			return fmt.Errorf("policy source %d bytes, at most %d", len(p.Source), maxPolicySource)
		}
		if len(p.Params) > maxPolicyParams {
			return fmt.Errorf("%d params, at most %d", len(p.Params), maxPolicyParams)
		}
		for name, v := range p.Params {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > maxMagnitude {
				return fmt.Errorf("param %q = %g must be finite in [-%g, %g]",
					name, v, float64(maxMagnitude), float64(maxMagnitude))
			}
		}
	default:
		return fmt.Errorf("policy type %q must be %q or %q", p.Type, PolicyLadder, PolicyDSL)
	}
	return nil
}

// buildPolicy materializes a canonical PolicySpec into the kernel-side
// policy and knob for this tenant. The ladder arm reproduces the
// built-in step-down behaviour over ra.levelIdx; the DSL arm compiles
// the source (positioned diagnostics surface as *policyc.CompileError),
// checks it only touches the "level" knob, and instantiates a VM-backed
// policy whose knob writes land in ra.dslLevel. A nil spec builds
// nothing: the app runs open-loop.
func buildPolicy(ra *remoteApp, p *PolicySpec) (*appPolicy, runtime.Policy, runtime.Knob, error) {
	if p == nil {
		return nil, nil, nil, nil
	}
	switch p.Type {
	case PolicyLadder:
		levels := p.Levels
		pol := runtime.PolicyFunc(func(monitor.Decision, map[string]monitor.Summary) (autotune.Config, bool) {
			next := ra.levelIdx.Load() + 1
			if int(next) >= len(levels) {
				return nil, false // bottom of the ladder: nothing to shed
			}
			return autotune.Config{"level_idx": float64(next)}, true
		})
		knob := runtime.KnobFunc(func(cfg autotune.Config) {
			if v, ok := cfg["level_idx"]; ok && int(v) < len(levels) {
				ra.levelIdx.Store(int64(v))
			}
		})
		return &appPolicy{spec: *p}, pol, knob, nil
	case PolicyDSL:
		prog, err := policyc.Compile(p.Source)
		if err != nil {
			return nil, nil, nil, err
		}
		if ce := prog.CheckKnobs("level"); ce != nil {
			return nil, nil, nil, ce
		}
		kp, err := policyc.New(prog, policyc.Options{
			Params: p.Params,
			KnobValue: func(name string) float64 {
				if name == "level" {
					return ra.level()
				}
				return 0
			},
		})
		if err != nil {
			return nil, nil, nil, err
		}
		knob := runtime.KnobFunc(func(cfg autotune.Config) {
			v, ok := cfg["level"]
			if !ok {
				return
			}
			// Clamp into the same range validMag enforces on ladder
			// levels: the policy steers the workload multiplier, it
			// does not get to turn it into a magnitude attack.
			if v < 0 {
				v = 0
			}
			if v > maxMagnitude {
				v = maxMagnitude
			}
			ra.dslLevel.Store(math.Float64bits(v))
		})
		return &appPolicy{spec: *p, prog: prog, kp: kp}, kp, knob, nil
	}
	return nil, nil, nil, fmt.Errorf("policy type %q must be %q or %q", p.Type, PolicyLadder, PolicyDSL)
}

// installPolicy seeds the incoming arm's state and publishes the new
// policy record. Seeding reads ra.level() before the store, so it sees
// the outgoing arm: a DSL policy starts from the level the ladder (or
// default 1) left the workload at, instead of a discontinuity.
func installPolicy(ra *remoteApp, ap *appPolicy) {
	if ap == nil {
		return
	}
	switch ap.spec.Type {
	case PolicyLadder:
		ra.levelIdx.Store(0)
	case PolicyDSL:
		ra.dslLevel.Store(math.Float64bits(ra.level()))
	}
	ra.pol.Store(ap)
}

// handlePutPolicy hot-swaps a tenant's policy (PUT /v1/apps/{id}/policy):
// the replacement is validated and compiled up front, then installed
// through Kernel.SwapPolicy so it lands at a generation boundary — the
// app keeps its inbox, metric windows, totals and tick counters, and no
// decision is computed half by the old policy and half by the new one.
// Swapping also clears a quarantine: replacing the crashed component is
// the recovery path. The outgoing policy instance is closed after the
// swap. Responds 200 with the app's status (policy block included).
func (s *Server) handlePutPolicy(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("id")
	var p PolicySpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		badRequest(w, "bad policy spec: %v", err)
		return
	}
	if err := validatePolicy(&p); err != nil {
		badRequest(w, "bad policy spec: %v", err)
		return
	}
	// Entity lock before s.mu: the swap and its journal record must be
	// ordered against any concurrent register/detach of the same name
	// (the journal fold is last-writer-wins per name, so same-name
	// record order must match memory order).
	unlock := s.lockEntity(name)
	defer unlock()
	s.mu.Lock()
	ra := s.apps[name]
	if ra == nil {
		s.mu.Unlock()
		writeErr(w, fmt.Errorf("controlplane: %q: %w", name, runtime.ErrUnknownApp))
		return
	}
	ap, pol, knob, err := buildPolicy(ra, &p)
	if err != nil {
		s.mu.Unlock()
		var ce *policyc.CompileError
		if errors.As(err, &ce) {
			writeCompileErr(w, ce)
			return
		}
		badRequest(w, "bad policy spec: %v", err)
		return
	}
	old := ra.pol.Load()
	installPolicy(ra, ap)
	if _, err := s.kernel.SwapPolicy(name, pol, knob); err != nil {
		ra.pol.Store(old) // roll back the record; the kernel rejected the swap
		s.mu.Unlock()
		ap.close()
		writeErr(w, err)
		return
	}
	ra.swaps.Add(1)
	s.mu.Unlock()
	old.close()
	// Journal after the swap is live, before the ack: an acked swap
	// must survive a crash. On journal failure the swap stays live but
	// unacked — write-ahead promises nothing about unacknowledged ops.
	if err := s.journalAppend(opPutPolicy, policyRecord{Name: name, Policy: p}); err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, "%s", err.Error())
		return
	}
	writeJSON(w, http.StatusOK, s.status(ra, nil))
}
