// Package wire is the control plane's binary observation protocol: a
// compact length-prefixed frame codec that closes the ~20× gap K5
// measured between JSON HTTP ingest and the in-process lock-free inbox
// (EXPERIMENTS.md) by shrinking per-sample protocol overhead until the
// contention-free data structure is the bottleneck again.
//
// A stream is a sequence of frames. Both ends keep two append-only
// string dictionaries scoped to the stream — application names and
// metric names — so each name crosses the wire once and every later
// reference is a small varint id. Sample values are raw little-endian
// float64s grouped into per-metric runs. The grammar (all integers are
// unsigned varints, encoding/binary.Uvarint):
//
//	stream  := frame*
//	frame   := payloadLen payload            payloadLen ≤ MaxFrame
//	payload := version                       1 byte, Version
//	           nNewApps    { nameLen name }*   appended to the app table
//	           appID                           index into the app table
//	           nNewMetrics { nameLen name }*   appended to the metric table
//	           nRuns { metricID nValues value* }*
//	value   := 8-byte little-endian IEEE-754 float64
//
// Every count is validated against the bytes remaining in the frame
// before anything is allocated, names are bounded by MaxNameLen and
// must be non-empty, dictionaries are bounded by MaxDictEntries, and a
// truncated or corrupt frame is an error, never a panic — the codec
// fronts a public ingress.
//
// Encoder and Decoder reuse internal scratch across frames: after the
// dictionaries are warm, encoding appends to a caller-owned buffer and
// decoding returns samples backed by a reused slice whose metric
// strings are the interned dictionary entries — zero allocations per
// steady-state frame on either side.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/runtime"
)

// Version is the payload version byte every frame starts with.
const Version = 0x01

// Protocol bounds, enforced by the Decoder.
const (
	// MaxFrame bounds one frame's payload (matches the control plane's
	// JSON observation-body ceiling).
	MaxFrame = 1 << 20
	// MaxNameLen bounds one dictionary name (matches the control
	// plane's app/metric name cap).
	MaxNameLen = 128
	// MaxDictEntries bounds each of the two per-stream dictionaries;
	// at MaxNameLen bytes per entry a hostile stream can pin at most a
	// few MB of interned names.
	MaxDictEntries = 1 << 16
)

// ErrFrameTooLarge rejects a frame whose declared payload exceeds
// MaxFrame.
var ErrFrameTooLarge = errors.New("wire: frame exceeds size bound")

// Encoder builds frames for one stream. Not safe for concurrent use;
// the zero value is not ready — use NewEncoder.
type Encoder struct {
	apps    map[string]uint64
	metrics map[string]uint64
	scratch []byte   // payload assembly buffer, reused across frames
	added   []string // metrics interned by the in-flight frame, for rollback
}

// NewEncoder returns an encoder with empty dictionaries (a new stream).
func NewEncoder() *Encoder {
	return &Encoder{
		apps:    make(map[string]uint64),
		metrics: make(map[string]uint64),
	}
}

// AppendFrame encodes one frame carrying samples for app and appends
// it to dst, returning the extended buffer. Consecutive samples with
// the same metric are folded into one run, so pre-grouped batches
// encode densest; order is preserved either way. New app/metric names
// are added to the stream's dictionaries in this frame.
//
// The encoder enforces the same bounds the decoder rejects — name
// lengths, dictionary capacity, MaxFrame — so an invalid frame fails
// here, before a whole body ships only to earn an opaque 400 (or kill
// a persistent stream). On error dst is returned unchanged and every
// dictionary entry the failed frame interned is rolled back, keeping
// the encoder's tables in lockstep with what the receiver has actually
// seen.
func (e *Encoder) AppendFrame(dst []byte, app string, samples []runtime.Sample) ([]byte, error) {
	if len(app) == 0 || len(app) > MaxNameLen {
		return dst, fmt.Errorf("wire: app name length %d out of range [1, %d]", len(app), MaxNameLen)
	}
	p := e.scratch[:0]
	p = append(p, Version)

	// App section: define the name on first use, then reference it.
	id, known := e.apps[app]
	addedApp := false
	if known {
		p = append(p, 0) // no new apps
	} else {
		if len(e.apps) >= MaxDictEntries {
			return dst, fmt.Errorf("wire: app dictionary full (%d entries)", MaxDictEntries)
		}
		id = uint64(len(e.apps))
		e.apps[app] = id
		addedApp = true
		p = append(p, 1)
		p = binary.AppendUvarint(p, uint64(len(app)))
		p = append(p, app...)
	}
	p = binary.AppendUvarint(p, id)

	// rollback undoes this frame's dictionary additions so a failed
	// frame cannot leave the encoder referencing ids the receiver
	// never learned.
	rollback := func() {
		if addedApp {
			delete(e.apps, app)
		}
		for _, m := range e.added {
			delete(e.metrics, m)
		}
		e.added = e.added[:0]
	}

	// Metric section: collect the names this frame introduces.
	e.added = e.added[:0]
	newAt := len(p)
	p = append(p, 0) // placeholder when ≤ 0x7f new metrics (patched below)
	newCount := uint64(0)
	for i := range samples {
		m := samples[i].Metric
		if _, ok := e.metrics[m]; ok {
			continue
		}
		if len(m) == 0 || len(m) > MaxNameLen {
			rollback()
			return dst, fmt.Errorf("wire: metric name length %d out of range [1, %d]", len(m), MaxNameLen)
		}
		if len(e.metrics) >= MaxDictEntries {
			rollback()
			return dst, fmt.Errorf("wire: metric dictionary full (%d entries)", MaxDictEntries)
		}
		e.metrics[m] = uint64(len(e.metrics))
		e.added = append(e.added, m)
		newCount++
		p = binary.AppendUvarint(p, uint64(len(m)))
		p = append(p, m...)
	}
	if newCount < 0x80 {
		p[newAt] = byte(newCount)
	} else {
		// Rare (a frame introducing ≥128 metrics): re-splice with the
		// full varint.
		var tmp [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(tmp[:], newCount)
		p = append(p[:newAt], append(tmp[:n], p[newAt+1:]...)...)
	}

	// Runs: fold consecutive same-metric samples together.
	runsAt := len(p)
	p = append(p, 0) // run-count placeholder, same patching scheme
	runCount := uint64(0)
	for i := 0; i < len(samples); {
		j := i + 1
		for j < len(samples) && samples[j].Metric == samples[i].Metric {
			j++
		}
		p = binary.AppendUvarint(p, e.metrics[samples[i].Metric])
		p = binary.AppendUvarint(p, uint64(j-i))
		for ; i < j; i++ {
			p = binary.LittleEndian.AppendUint64(p, math.Float64bits(samples[i].Value))
		}
		runCount++
	}
	if runCount < 0x80 {
		p[runsAt] = byte(runCount)
	} else {
		var tmp [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(tmp[:], runCount)
		p = append(p[:runsAt], append(tmp[:n], p[runsAt+1:]...)...)
	}

	e.scratch = p[:0] // keep the grown buffer for the next frame
	if len(p) > MaxFrame {
		rollback()
		return dst, fmt.Errorf("%w: %d > %d bytes (flush smaller batches)", ErrFrameTooLarge, len(p), MaxFrame)
	}
	e.added = e.added[:0]
	dst = binary.AppendUvarint(dst, uint64(len(p)))
	return append(dst, p...), nil
}

// reader is what ReadFrame consumes: *bufio.Reader satisfies it.
type reader interface {
	io.Reader
	io.ByteReader
}

// Decoder decodes one stream's frames. Not safe for concurrent use;
// the zero value is ready (empty dictionaries).
type Decoder struct {
	apps    []string
	metrics []string
	payload []byte           // frame read buffer, reused
	samples []runtime.Sample // decode output, reused
}

// Reset clears the dictionaries and returns the decoder to the start
// of a new stream, keeping the allocated scratch. The entries are
// zeroed, not just truncated, so a pooled decoder does not pin a
// previous stream's interned names (up to ~8 MB at the dictionary
// caps) through the backing array.
func (d *Decoder) Reset() {
	clear(d.apps)
	clear(d.metrics)
	d.apps = d.apps[:0]
	d.metrics = d.metrics[:0]
}

// ReadFrame reads one length-prefixed frame from r and decodes it,
// returning the application name and its samples. The samples slice
// (and its metric strings, interned per stream) is only valid until
// the next ReadFrame. A clean end of stream at a frame boundary
// returns io.EOF; truncation inside a frame returns
// io.ErrUnexpectedEOF.
func (d *Decoder) ReadFrame(r reader) (app string, samples []runtime.Sample, err error) {
	size, err := readLength(r)
	if err != nil {
		if err == io.EOF {
			return "", nil, io.EOF
		}
		return "", nil, fmt.Errorf("wire: frame length: %w", err)
	}
	if size > MaxFrame {
		return "", nil, fmt.Errorf("%w: %d > %d bytes", ErrFrameTooLarge, size, MaxFrame)
	}
	if cap(d.payload) < int(size) {
		d.payload = make([]byte, size)
	}
	d.payload = d.payload[:size]
	if _, err := io.ReadFull(r, d.payload); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return "", nil, fmt.Errorf("wire: frame body: %w", err)
	}
	return d.Decode(d.payload)
}

// Decode decodes one frame payload (the bytes after the length
// prefix), updating the stream dictionaries. See ReadFrame for the
// lifetime of the returned slice.
func (d *Decoder) Decode(payload []byte) (app string, samples []runtime.Sample, err error) {
	p := payload
	if len(p) < 1 {
		return "", nil, fmt.Errorf("wire: empty frame")
	}
	if p[0] != Version {
		return "", nil, fmt.Errorf("wire: unknown frame version 0x%02x", p[0])
	}
	p = p[1:]

	if p, err = d.readDefs(p, &d.apps, "app", "app definition count"); err != nil {
		return "", nil, err
	}
	appID, p, err := readUvarint(p, "app id")
	if err != nil {
		return "", nil, err
	}
	if appID >= uint64(len(d.apps)) {
		return "", nil, fmt.Errorf("wire: app id %d out of range (%d defined)", appID, len(d.apps))
	}
	app = d.apps[appID]

	if p, err = d.readDefs(p, &d.metrics, "metric", "metric definition count"); err != nil {
		return "", nil, err
	}

	nRuns, p, err := readUvarint(p, "run count")
	if err != nil {
		return "", nil, err
	}
	// Each run needs at least 2 bytes (metric id + count) before its
	// values; reject counts the remaining bytes cannot hold.
	if nRuns > uint64(len(p)) {
		return "", nil, fmt.Errorf("wire: %d runs in a %d-byte remainder", nRuns, len(p))
	}
	out := d.samples[:0]
	for run := uint64(0); run < nRuns; run++ {
		metricID, rest, err := readUvarint(p, "metric id")
		if err != nil {
			return "", nil, err
		}
		if metricID >= uint64(len(d.metrics)) {
			return "", nil, fmt.Errorf("wire: metric id %d out of range (%d defined)", metricID, len(d.metrics))
		}
		metric := d.metrics[metricID]
		nValues, rest, err := readUvarint(rest, "value count")
		if err != nil {
			return "", nil, err
		}
		// Division, not nValues*8, so a hostile count cannot wrap the
		// bound check around uint64.
		if nValues > uint64(len(rest))/8 {
			return "", nil, fmt.Errorf("wire: run of %d values in a %d-byte remainder", nValues, len(rest))
		}
		for i := uint64(0); i < nValues; i++ {
			v := math.Float64frombits(binary.LittleEndian.Uint64(rest[i*8:]))
			out = append(out, runtime.Sample{Metric: metric, Value: v})
		}
		p = rest[nValues*8:]
	}
	if len(p) != 0 {
		return "", nil, fmt.Errorf("wire: %d trailing bytes after the last run", len(p))
	}
	d.samples = out
	return app, out, nil
}

// readDefs consumes one dictionary-definition section, appending the
// new names to the table. countLabel is passed pre-built (not
// concatenated from kind here) so the common zero-definition path
// stays allocation-free.
func (d *Decoder) readDefs(p []byte, table *[]string, kind, countLabel string) ([]byte, error) {
	n, p, err := readUvarint(p, countLabel)
	if err != nil {
		return nil, err
	}
	// A definition is at least 2 bytes (length + one character).
	if n > uint64(len(p)) {
		return nil, fmt.Errorf("wire: %d %s definitions in a %d-byte remainder", n, kind, len(p))
	}
	for i := uint64(0); i < n; i++ {
		nameLen, rest, err := readUvarint(p, kind+" name length")
		if err != nil {
			return nil, err
		}
		if nameLen == 0 || nameLen > MaxNameLen {
			return nil, fmt.Errorf("wire: %s name length %d out of range [1, %d]", kind, nameLen, MaxNameLen)
		}
		if nameLen > uint64(len(rest)) {
			return nil, fmt.Errorf("wire: truncated %s name (%d of %d bytes)", kind, len(rest), nameLen)
		}
		if len(*table) >= MaxDictEntries {
			return nil, fmt.Errorf("wire: %s dictionary full (%d entries)", kind, MaxDictEntries)
		}
		*table = append(*table, string(rest[:nameLen]))
		p = rest[nameLen:]
	}
	return p, nil
}

// readLength reads the frame-length varint. Only a stream ending
// before its first byte is a clean io.EOF; running dry mid-varint is
// io.ErrUnexpectedEOF, so a truncated prefix cannot masquerade as a
// frame boundary (binary.ReadUvarint would conflate the two).
func readLength(r io.ByteReader) (uint64, error) {
	var v uint64
	for shift := 0; shift < 64; shift += 7 {
		b, err := r.ReadByte()
		if err != nil {
			if shift > 0 && errors.Is(err, io.EOF) {
				return 0, io.ErrUnexpectedEOF
			}
			return 0, err
		}
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, nil
		}
	}
	return 0, errors.New("wire: frame length varint overflows uint64")
}

// readUvarint decodes a varint from the head of p.
func readUvarint(p []byte, what string) (uint64, []byte, error) {
	v, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, fmt.Errorf("wire: bad %s varint", what)
	}
	return v, p[n:], nil
}
