package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"testing"

	"repro/internal/runtime"
)

// mustFrame is AppendFrame with encode errors fatal to the test.
func mustFrame(tb testing.TB, enc *Encoder, dst []byte, app string, samples []runtime.Sample) []byte {
	tb.Helper()
	out, err := enc.AppendFrame(dst, app, samples)
	if err != nil {
		tb.Fatal(err)
	}
	return out
}

func samplesEqual(a, b []runtime.Sample) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Metric != b[i].Metric {
			return false
		}
		av, bv := a[i].Value, b[i].Value
		if av != bv && !(math.IsNaN(av) && math.IsNaN(bv)) {
			return false
		}
	}
	return true
}

// TestRoundTrip drives a multi-frame stream through encoder and
// decoder: multiple apps, dictionary reuse across frames, runs of
// mixed metrics, and edge-case values.
func TestRoundTrip(t *testing.T) {
	type frame struct {
		app     string
		samples []runtime.Sample
	}
	frames := []frame{
		{"web", []runtime.Sample{{Metric: "latency", Value: 0.25}, {Metric: "latency", Value: 0.5}, {Metric: "power", Value: 180}}},
		{"batch", []runtime.Sample{{Metric: "latency", Value: 3}}},
		{"web", []runtime.Sample{{Metric: "power", Value: 175}, {Metric: "latency", Value: 0.75}, {Metric: "power", Value: -0}}},
		{"web", nil}, // an empty frame is legal (keeps a stream alive)
		{"batch", []runtime.Sample{{Metric: "qps", Value: math.Inf(1)}, {Metric: "qps", Value: math.NaN()}}},
	}
	enc := NewEncoder()
	var stream []byte
	for _, f := range frames {
		stream = mustFrame(t, enc, stream, f.app, f.samples)
	}

	var dec Decoder
	br := bufio.NewReader(bytes.NewReader(stream))
	for i, f := range frames {
		app, samples, err := dec.ReadFrame(br)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if app != f.app {
			t.Errorf("frame %d: app %q, want %q", i, app, f.app)
		}
		if !samplesEqual(samples, f.samples) {
			t.Errorf("frame %d: samples %v, want %v", i, samples, f.samples)
		}
	}
	if _, _, err := dec.ReadFrame(br); err != io.EOF {
		t.Errorf("after last frame: %v, want io.EOF", err)
	}
}

// TestRoundTripManyMetrics crosses the single-byte varint patch point:
// a frame defining ≥128 new metrics (and ≥128 runs) must still decode.
func TestRoundTripManyMetrics(t *testing.T) {
	var samples []runtime.Sample
	for i := 0; i < 200; i++ {
		samples = append(samples, runtime.Sample{Metric: fmt.Sprintf("metric-%03d", i), Value: float64(i)})
	}
	enc := NewEncoder()
	stream := mustFrame(t, enc, nil, "app", samples)
	var dec Decoder
	app, got, err := decodeOne(&dec, stream)
	if err != nil {
		t.Fatal(err)
	}
	if app != "app" || !samplesEqual(got, samples) {
		t.Errorf("round trip lost samples: got %d for app %q", len(got), app)
	}
}

func decodeOne(dec *Decoder, stream []byte) (string, []runtime.Sample, error) {
	return dec.ReadFrame(bufio.NewReader(bytes.NewReader(stream)))
}

// TestDecodeRejectsCorruption hand-corrupts valid frames field by
// field: every mutation must produce an error, never a panic, and
// never a silently wrong decode.
func TestDecodeRejectsCorruption(t *testing.T) {
	enc := NewEncoder()
	valid := mustFrame(t, enc, nil, "app", []runtime.Sample{
		{Metric: "m0", Value: 1}, {Metric: "m1", Value: 2},
	})

	t.Run("truncated", func(t *testing.T) {
		// Every strict prefix of the stream must fail cleanly (io.EOF
		// only at the zero-byte boundary).
		for cut := 1; cut < len(valid); cut++ {
			var dec Decoder
			_, _, err := decodeOne(&dec, valid[:cut])
			if err == nil {
				t.Fatalf("prefix of %d/%d bytes decoded", cut, len(valid))
			}
		}
	})
	t.Run("bad version", func(t *testing.T) {
		bad := bytes.Clone(valid)
		bad[1] ^= 0xff // first payload byte
		var dec Decoder
		if _, _, err := decodeOne(&dec, bad); err == nil {
			t.Fatal("corrupt version accepted")
		}
	})
	t.Run("oversized frame", func(t *testing.T) {
		huge := binary.AppendUvarint(nil, MaxFrame+1)
		var dec Decoder
		_, _, err := decodeOne(&dec, huge)
		if !errors.Is(err, ErrFrameTooLarge) {
			t.Fatalf("oversized frame: %v", err)
		}
	})
	t.Run("app id out of range", func(t *testing.T) {
		// payload: version, 0 new apps, app id 7 → no table entry.
		payload := []byte{Version, 0, 7}
		frame := append(binary.AppendUvarint(nil, uint64(len(payload))), payload...)
		var dec Decoder
		if _, _, err := decodeOne(&dec, frame); err == nil {
			t.Fatal("undefined app id accepted")
		}
	})
	t.Run("metric id out of range", func(t *testing.T) {
		// version, 1 app "a", id 0, 0 new metrics, 1 run on metric 3.
		payload := []byte{Version, 1, 1, 'a', 0, 0, 1, 3, 0}
		frame := append(binary.AppendUvarint(nil, uint64(len(payload))), payload...)
		var dec Decoder
		if _, _, err := decodeOne(&dec, frame); err == nil {
			t.Fatal("undefined metric id accepted")
		}
	})
	t.Run("run count beyond frame", func(t *testing.T) {
		payload := []byte{Version, 1, 1, 'a', 0, 0, 0xff}
		frame := append(binary.AppendUvarint(nil, uint64(len(payload))), payload...)
		var dec Decoder
		if _, _, err := decodeOne(&dec, frame); err == nil {
			t.Fatal("impossible run count accepted")
		}
	})
	t.Run("value count overflow", func(t *testing.T) {
		// A value count near 2^61 whose ×8 wraps uint64: must be
		// rejected by the division-based bound, not loop.
		payload := []byte{Version, 1, 1, 'a', 0, 1, 1, 'm', 1, 0}
		payload = binary.AppendUvarint(payload, 1<<61)
		frame := append(binary.AppendUvarint(nil, uint64(len(payload))), payload...)
		var dec Decoder
		if _, _, err := decodeOne(&dec, frame); err == nil {
			t.Fatal("wrapping value count accepted")
		}
	})
	t.Run("empty name", func(t *testing.T) {
		payload := []byte{Version, 1, 0}
		frame := append(binary.AppendUvarint(nil, uint64(len(payload))), payload...)
		var dec Decoder
		if _, _, err := decodeOne(&dec, frame); err == nil {
			t.Fatal("empty dictionary name accepted")
		}
	})
	t.Run("trailing garbage", func(t *testing.T) {
		// A valid empty frame with junk appended inside the declared
		// payload length.
		payload := []byte{Version, 1, 1, 'a', 0, 0, 0, 0xAB}
		frame := append(binary.AppendUvarint(nil, uint64(len(payload))), payload...)
		var dec Decoder
		if _, _, err := decodeOne(&dec, frame); err == nil {
			t.Fatal("trailing bytes accepted")
		}
	})
}

// TestEncoderBounds: the encoder rejects what the decoder would —
// fail fast at encode time instead of shipping a doomed body — and a
// rejected frame rolls its dictionary additions back, so the next
// valid frame still decodes against a receiver that never saw the
// failed one.
func TestEncoderBounds(t *testing.T) {
	t.Run("app name too long", func(t *testing.T) {
		enc := NewEncoder()
		if _, err := enc.AppendFrame(nil, string(make([]byte, MaxNameLen+1)), nil); err == nil {
			t.Fatal("oversized app name encoded")
		}
		if _, err := enc.AppendFrame(nil, "", nil); err == nil {
			t.Fatal("empty app name encoded")
		}
	})
	t.Run("metric name too long rolls back", func(t *testing.T) {
		enc := NewEncoder()
		bad := []runtime.Sample{
			{Metric: "fine", Value: 1},
			{Metric: string(make([]byte, MaxNameLen+1)), Value: 2},
		}
		if _, err := enc.AppendFrame(nil, "app", bad); err == nil {
			t.Fatal("oversized metric name encoded")
		}
		// After the rollback a fresh decoder must be able to follow the
		// stream: "fine" (and "app") must be re-defined, not referenced
		// as ids the failed frame never delivered.
		stream, err := enc.AppendFrame(nil, "app", []runtime.Sample{{Metric: "fine", Value: 3}})
		if err != nil {
			t.Fatal(err)
		}
		var dec Decoder
		app, samples, err := decodeOne(&dec, stream)
		if err != nil {
			t.Fatalf("post-rollback frame does not decode standalone: %v", err)
		}
		if app != "app" || len(samples) != 1 || samples[0].Metric != "fine" || samples[0].Value != 3 {
			t.Errorf("post-rollback frame decoded as %q %v", app, samples)
		}
	})
	t.Run("frame too large", func(t *testing.T) {
		enc := NewEncoder()
		huge := make([]runtime.Sample, MaxFrame/8+64)
		for i := range huge {
			huge[i] = runtime.Sample{Metric: "m", Value: float64(i)}
		}
		dst, err := enc.AppendFrame(nil, "app", huge)
		if !errors.Is(err, ErrFrameTooLarge) {
			t.Fatalf("oversized frame: %v", err)
		}
		if len(dst) != 0 {
			t.Errorf("dst mutated on error: %d bytes", len(dst))
		}
		// The rolled-back encoder still works for sendable batches.
		stream, err := enc.AppendFrame(nil, "app", huge[:64])
		if err != nil {
			t.Fatal(err)
		}
		var dec Decoder
		if _, samples, err := decodeOne(&dec, stream); err != nil || len(samples) != 64 {
			t.Fatalf("post-rollback encode: %d samples, %v", len(samples), err)
		}
	})
}

// TestDecoderReset: after Reset the dictionaries are empty, so ids
// from the previous stream no longer resolve.
func TestDecoderReset(t *testing.T) {
	enc := NewEncoder()
	first := mustFrame(t, enc, nil, "app", []runtime.Sample{{Metric: "m", Value: 1}})
	// Second frame references dictionary ids defined in the first.
	second := mustFrame(t, enc, nil, "app", []runtime.Sample{{Metric: "m", Value: 2}})

	var dec Decoder
	if _, _, err := decodeOne(&dec, first); err != nil {
		t.Fatal(err)
	}
	if _, _, err := decodeOne(&dec, second); err != nil {
		t.Fatalf("warm-dictionary frame: %v", err)
	}
	dec.Reset()
	if _, _, err := decodeOne(&dec, second); err == nil {
		t.Fatal("dictionary survived Reset")
	}
}

// TestDecodeNoAlloc pins the tentpole property: once the stream's
// dictionaries are warm, decoding a frame allocates nothing — the
// payload buffer, the sample slice and the metric strings are all
// reused.
func TestDecodeNoAlloc(t *testing.T) {
	enc := NewEncoder()
	samples := make([]runtime.Sample, 64)
	for i := range samples {
		samples[i] = runtime.Sample{Metric: "latency", Value: float64(i)}
	}
	warm := mustFrame(t, enc, nil, "app", samples)
	steady := mustFrame(t, enc, nil, "app", samples)

	var dec Decoder
	if _, _, err := decodeOne(&dec, warm); err != nil {
		t.Fatal(err)
	}
	r := bytes.NewReader(steady)
	br := bufio.NewReader(r)
	allocs := testing.AllocsPerRun(100, func() {
		r.Reset(steady)
		br.Reset(r)
		if _, _, err := dec.ReadFrame(br); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state decode allocates %.1f objects/frame, want 0", allocs)
	}
}

// TestEncodeNoAlloc: steady-state encoding onto a reused destination
// buffer must not allocate either (the client's Flush path).
func TestEncodeNoAlloc(t *testing.T) {
	enc := NewEncoder()
	samples := make([]runtime.Sample, 64)
	for i := range samples {
		samples[i] = runtime.Sample{Metric: "latency", Value: float64(i)}
	}
	dst := mustFrame(t, enc, nil, "app", samples) // warm dictionaries + scratch
	allocs := testing.AllocsPerRun(100, func() {
		var err error
		dst, err = enc.AppendFrame(dst[:0], "app", samples)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state encode allocates %.1f objects/frame, want 0", allocs)
	}
}

// BenchmarkWireDecode is the allocation-budget benchmark the ingest
// acceptance criterion points at: ns and allocs per steady-state
// 64-sample frame (dictionaries warm).
func BenchmarkWireDecode(b *testing.B) {
	enc := NewEncoder()
	samples := make([]runtime.Sample, 64)
	for i := range samples {
		samples[i] = runtime.Sample{Metric: "latency", Value: float64(i)}
	}
	warm := mustFrame(b, enc, nil, "app", samples)
	steady := mustFrame(b, enc, nil, "app", samples)
	var dec Decoder
	if _, _, err := decodeOne(&dec, warm); err != nil {
		b.Fatal(err)
	}
	r := bytes.NewReader(steady)
	br := bufio.NewReader(r)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(steady)
		br.Reset(r)
		if _, _, err := dec.ReadFrame(br); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(samples)), "samples/frame")
}

// FuzzDecode feeds arbitrary bytes through a whole-stream decode loop:
// the decoder must never panic, and everything it accepts must
// re-encode and decode back to the same samples (a full round-trip
// through fresh dictionaries).
func FuzzDecode(f *testing.F) {
	enc := NewEncoder()
	seed := mustFrame(f, enc, nil, "app", []runtime.Sample{
		{Metric: "latency", Value: 0.25}, {Metric: "latency", Value: 4}, {Metric: "power", Value: 180},
	})
	seed = mustFrame(f, enc, seed, "other", []runtime.Sample{{Metric: "power", Value: -1}})
	f.Add(seed)
	f.Add(seed[:len(seed)/2])                  // truncated mid-frame
	f.Add([]byte{0})                           // zero-length frame payload
	f.Add([]byte{2, Version, 0})               // truncated header fields
	f.Add([]byte{3, Version, 0, 7})            // app id with empty table
	f.Add([]byte{5, Version, 1, 1, 'a', 0xff}) // bad varint tail

	f.Fuzz(func(t *testing.T, data []byte) {
		var dec Decoder
		br := bufio.NewReader(bytes.NewReader(data))
		re := NewEncoder()
		var restream []byte
		type decoded struct {
			app     string
			samples []runtime.Sample
		}
		var accepted []decoded
		for {
			app, samples, err := dec.ReadFrame(br)
			if err != nil {
				break // io.EOF or rejection — either is fine, panics are not
			}
			cp := make([]runtime.Sample, len(samples))
			copy(cp, samples)
			accepted = append(accepted, decoded{app, cp})
			var encErr error
			restream, encErr = re.AppendFrame(restream, app, cp)
			if encErr != nil {
				// Anything the decoder accepted is within the bounds
				// the encoder enforces.
				t.Fatalf("re-encode accepted frame: %v", encErr)
			}
		}
		// Round-trip property: whatever was accepted survives
		// re-encoding byte-for-byte at the sample level.
		var dec2 Decoder
		br2 := bufio.NewReader(bytes.NewReader(restream))
		for i, want := range accepted {
			app, samples, err := dec2.ReadFrame(br2)
			if err != nil {
				t.Fatalf("re-decode frame %d: %v", i, err)
			}
			if app != want.app || !samplesEqual(samples, want.samples) {
				t.Fatalf("frame %d mutated in round trip", i)
			}
		}
	})
}
