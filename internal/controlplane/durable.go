package controlplane

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"slices"
	"sort"
	"sync"

	"repro/internal/durable"
	"repro/internal/runtime"
)

// Durability wiring: the control plane journals every mutating route
// into a durable.Log before acknowledging it, so a restarted
// antarex-serve re-admits every tenant, re-adds every backend and
// restores placement and protocol before the listener opens.
//
// The division of labour with internal/durable: durable owns the
// mechanics (framing, CRC, group-committed fsync, snapshots, torn-tail
// recovery), this file owns the state machine — the op codes below,
// the fold of a record stream into a PlaneState, and the replay that
// turns a PlaneState back into live kernel membership.
//
// Ordering discipline: a mutation is applied to the kernel under s.mu,
// then journaled OUTSIDE s.mu so concurrent tenants' fsyncs batch into
// one group commit instead of serializing behind the membership lock.
// That makes the journal's record order a race between unrelated
// tenants — which is safe because the fold below is last-writer-wins
// per name: replay order between different names cannot change the
// folded state. Order between ops on the SAME name must match memory
// order, so apply+append run under a name-striped mutex (lockEntity).
// The client-visible guarantee is exactly write-ahead: the HTTP ack is
// sent only after the record is fsync-durable, so an acked mutation
// survives any crash; an unacked one may or may not.

// Journal op codes. The record payloads are JSON — membership changes
// are control-rate, not data-rate, and reusing the wire types keeps
// the journal format aligned with the API format for free.
const (
	opRegister      byte = 1 // AppSpec (canonical)
	opDetach        byte = 2 // nameRecord
	opPutPolicy     byte = 3 // policyRecord
	opAddBackend    byte = 4 // BackendSpec (defaults applied)
	opRemoveBackend byte = 5 // nameRecord
	opSetProtocol   byte = 6 // protocolRecord
)

type nameRecord struct {
	Name string `json:"name"`
}

type policyRecord struct {
	Name   string     `json:"name"`
	Policy PolicySpec `json:"policy"`
}

type protocolRecord struct {
	Protocol string `json:"protocol"`
}

// PlaneState is the net control-plane membership a journal folds down
// to: the epoch protocol, the live backends in add order, and the live
// apps with their current (post-swap) policies. It is both the
// snapshot blob format and the input to Server.Restore.
type PlaneState struct {
	Protocol string        `json:"protocol,omitempty"`
	Backends []BackendSpec `json:"backends,omitempty"`
	Apps     []AppSpec     `json:"apps,omitempty"`
}

// Empty reports whether the state restores nothing — a first boot.
func (st PlaneState) Empty() bool {
	return st.Protocol == "" && len(st.Backends) == 0 && len(st.Apps) == 0
}

// RecoverPlane folds an opened journal — snapshot blob plus replayed
// WAL records — into the net PlaneState to restore. Corruption inside
// records that durable's CRC framing cannot see (bad JSON, an unknown
// op) is reported as an error; the caller refuses to serve rather
// than guess at membership.
func RecoverPlane(log *durable.Log) (PlaneState, error) {
	var st PlaneState
	if _, blob := log.Snapshot(); blob != nil {
		if err := json.Unmarshal(blob, &st); err != nil {
			return PlaneState{}, fmt.Errorf("controlplane: decode snapshot: %w", err)
		}
	}
	for _, rec := range log.Entries() {
		if err := applyRecord(&st, rec); err != nil {
			return PlaneState{}, err
		}
	}
	return st, nil
}

// applyRecord folds one journal record into the state. Upserts and
// deletes are idempotent (register twice = replace, detach an absent
// app = no-op): a snapshot may already include a mutation whose record
// then replays on top of it, and replaying the same journal twice must
// yield the same state.
func applyRecord(st *PlaneState, rec durable.Record) error {
	appIdx := func(name string) int {
		return slices.IndexFunc(st.Apps, func(a AppSpec) bool { return a.Name == name })
	}
	backendIdx := func(name string) int {
		return slices.IndexFunc(st.Backends, func(b BackendSpec) bool { return b.Name == name })
	}
	switch rec.Op {
	case opRegister:
		var spec AppSpec
		if err := json.Unmarshal(rec.Data, &spec); err != nil {
			return fmt.Errorf("controlplane: journal seq %d: decode register: %w", rec.Seq, err)
		}
		if i := appIdx(spec.Name); i >= 0 {
			st.Apps[i] = spec
		} else {
			st.Apps = append(st.Apps, spec)
		}
	case opDetach:
		var nr nameRecord
		if err := json.Unmarshal(rec.Data, &nr); err != nil {
			return fmt.Errorf("controlplane: journal seq %d: decode detach: %w", rec.Seq, err)
		}
		if i := appIdx(nr.Name); i >= 0 {
			st.Apps = slices.Delete(st.Apps, i, i+1)
		}
	case opPutPolicy:
		var pr policyRecord
		if err := json.Unmarshal(rec.Data, &pr); err != nil {
			return fmt.Errorf("controlplane: journal seq %d: decode policy swap: %w", rec.Seq, err)
		}
		if i := appIdx(pr.Name); i >= 0 {
			p := pr.Policy
			st.Apps[i].Policy = &p
		}
	case opAddBackend:
		var spec BackendSpec
		if err := json.Unmarshal(rec.Data, &spec); err != nil {
			return fmt.Errorf("controlplane: journal seq %d: decode add backend: %w", rec.Seq, err)
		}
		if i := backendIdx(spec.Name); i >= 0 {
			st.Backends[i] = spec
		} else {
			st.Backends = append(st.Backends, spec)
		}
	case opRemoveBackend:
		var nr nameRecord
		if err := json.Unmarshal(rec.Data, &nr); err != nil {
			return fmt.Errorf("controlplane: journal seq %d: decode remove backend: %w", rec.Seq, err)
		}
		if i := backendIdx(nr.Name); i >= 0 {
			st.Backends = slices.Delete(st.Backends, i, i+1)
		}
	case opSetProtocol:
		var pr protocolRecord
		if err := json.Unmarshal(rec.Data, &pr); err != nil {
			return fmt.Errorf("controlplane: journal seq %d: decode protocol: %w", rec.Seq, err)
		}
		st.Protocol = pr.Protocol
	default:
		return fmt.Errorf("controlplane: journal seq %d: unknown op %d", rec.Seq, rec.Op)
	}
	return nil
}

// defaultSnapshotEvery is the snapshot cadence: a snapshot + WAL
// truncation every N journaled records bounds both replay time and
// WAL growth under sustained churn.
const defaultSnapshotEvery = 256

// planeJournal is the server's journaling state.
type planeJournal struct {
	log   *durable.Log
	every int
	// snapMu orders appends against snapshots: appends hold the read
	// side, a snapshot the write side — durable.WriteSnapshot requires
	// no concurrent Append, and the blob must cover every record
	// appended before the truncation.
	snapMu sync.RWMutex
}

// WithJournal arms durability: every mutating route is journaled into
// log before it is acknowledged, and a snapshot + WAL truncation runs
// every snapshotEvery records (<= 0 selects the default, 256). The
// caller recovers prior state with RecoverPlane + Restore before
// serving traffic.
func WithJournal(log *durable.Log, snapshotEvery int) ServerOption {
	return func(s *Server) {
		if snapshotEvery <= 0 {
			snapshotEvery = defaultSnapshotEvery
		}
		s.journal = &planeJournal{log: log, every: snapshotEvery}
	}
}

// journalStripes is the lockEntity stripe count: enough that unrelated
// tenants rarely share a stripe, few enough to embed in the Server.
const journalStripes = 32

// lockEntity serializes the apply+journal window for one entity name
// and returns the unlock. Ops on the same app (register, swap, detach)
// must reach the journal in their memory order; ops on different names
// may interleave freely (the fold is name-independent), which is what
// lets their fsyncs share group commits. A no-op without a journal.
func (s *Server) lockEntity(name string) func() {
	if s.journal == nil {
		return func() {}
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(name))
	m := &s.jmu[h.Sum32()%journalStripes]
	m.Lock()
	return m.Unlock
}

// journalError marks a mutation that applied in memory but could not
// be made durable — always a 500, never a client fault, regardless of
// which handler it surfaces from.
type journalError struct{ err error }

func (e *journalError) Error() string { return fmt.Sprintf("controlplane: journal: %v", e.err) }
func (e *journalError) Unwrap() error { return e.err }

// journalAppend journals one applied mutation and blocks until it is
// fsync-durable; the caller acknowledges its client only on nil. A
// failed append leaves the mutation live in memory but unacked —
// write-ahead semantics make no promise about unacknowledged ops —
// and the durable.Log's sticky error fails every later mutation, so
// a plane with a dead disk degrades to read-only instead of silently
// diverging from its journal.
func (s *Server) journalAppend(op byte, v any) error {
	j := s.journal
	if j == nil {
		return nil
	}
	data, err := json.Marshal(v)
	if err != nil {
		return &journalError{err}
	}
	j.snapMu.RLock()
	_, err = j.log.Append(op, data)
	j.snapMu.RUnlock()
	if err != nil {
		return &journalError{err}
	}
	if j.log.SinceSnapshot() >= j.every {
		s.snapshotPlane()
	}
	return nil
}

// snapshotPlane writes the current membership as the recovery baseline
// and truncates the WAL. Failure is deliberately swallowed: the
// records a snapshot would have truncated are still durable, so a
// failed snapshot costs replay time, not correctness.
func (s *Server) snapshotPlane() {
	j := s.journal
	j.snapMu.Lock()
	defer j.snapMu.Unlock()
	if j.log.SinceSnapshot() < j.every {
		return // a concurrent writer got here first
	}
	blob, err := json.Marshal(s.planeState())
	if err != nil {
		return
	}
	_ = j.log.WriteSnapshot(blob)
}

// planeState snapshots live membership in canonical form: current
// backends, current protocol, and every app's spec with its ACTIVE
// policy (a swapped policy replaces the registration-time one). Apps
// are sorted by name for deterministic blobs.
func (s *Server) planeState() PlaneState {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := PlaneState{
		Protocol: s.kernel.Protocol().String(),
		Backends: slices.Clone(s.backends),
	}
	names := make([]string, 0, len(s.apps))
	for name := range s.apps {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ra := s.apps[name]
		spec := ra.spec
		if ap := ra.pol.Load(); ap != nil {
			p := ap.spec
			spec.Policy = &p
		}
		st.Apps = append(st.Apps, spec)
	}
	return st
}

// Restore replays a recovered PlaneState into the server: protocol
// first, then every backend, then every app — DSL policies recompile
// through policyc exactly as they did at admission. Call once, before
// the kernel starts serving and before the listener opens; nothing is
// re-journaled (the records that produced st are already durable).
//
// A restored app may carry a placement hint naming a backend that was
// later removed: admission-time validation rejected dangling hints,
// but a journaled remove legitimately strands them, and the kernel
// treats an unresolvable hint as "no preference until the backend
// returns" — so Restore admits them instead of refusing to boot.
func (s *Server) Restore(st PlaneState) error {
	if st.Protocol != "" {
		proto, err := runtime.ParseEpochProtocol(st.Protocol)
		if err != nil {
			return fmt.Errorf("controlplane: restore: %w", err)
		}
		s.kernel.SetProtocol(proto)
	}
	for _, bs := range st.Backends {
		if err := ValidateBackendSpec(bs); err != nil {
			return fmt.Errorf("controlplane: restore backend %q: %w", bs.Name, err)
		}
		spec := withBackendDefaults(bs)
		if err := s.kernel.AddBackend(spec.Name, BuildBackend(spec)); err != nil {
			return fmt.Errorf("controlplane: restore backend %q: %w", bs.Name, err)
		}
		s.mu.Lock()
		s.backends = append(s.backends, spec)
		s.mu.Unlock()
	}
	for _, spec := range st.Apps {
		if err := validateSpec(spec); err != nil {
			return fmt.Errorf("controlplane: restore app %q: %w", spec.Name, err)
		}
		if err := validatePolicy(spec.Policy); err != nil {
			return fmt.Errorf("controlplane: restore app %q: %w", spec.Name, err)
		}
		if _, err := s.admitApp(spec, false); err != nil {
			return fmt.Errorf("controlplane: restore app %q: %w", spec.Name, err)
		}
	}
	return nil
}

// AdmitBackend validates, builds and adds a backend through the
// journaled path — the programmatic form of POST /v1/backends, also
// used by antarex-serve to journal its bootstrap flags on first boot.
func (s *Server) AdmitBackend(spec BackendSpec) error {
	if err := ValidateBackendSpec(spec); err != nil {
		return err
	}
	spec = withBackendDefaults(spec)
	unlock := s.lockEntity(spec.Name)
	defer unlock()
	if err := s.kernel.AddBackend(spec.Name, BuildBackend(spec)); err != nil {
		return err
	}
	s.mu.Lock()
	s.backends = append(s.backends, spec)
	s.mu.Unlock()
	return s.journalAppend(opAddBackend, spec)
}

// UseProtocol parses, applies and journals the epoch protocol — the
// journaled form of Kernel.SetProtocol, used at bootstrap so the
// choice survives restarts.
func (s *Server) UseProtocol(name string) error {
	proto, err := runtime.ParseEpochProtocol(name)
	if err != nil {
		return err
	}
	unlock := s.lockEntity("")
	defer unlock()
	s.kernel.SetProtocol(proto)
	return s.journalAppend(opSetProtocol, protocolRecord{Protocol: proto.String()})
}

// dropBackendSpec removes a backend's retained spec once its removal
// is admitted (the drain may still be evacuating, but the journal and
// any snapshot must already exclude it — an acked remove survives a
// crash even when the crash lands mid-drain).
func (s *Server) dropBackendSpec(name string) {
	s.mu.Lock()
	s.backends = slices.DeleteFunc(s.backends, func(b BackendSpec) bool { return b.Name == name })
	s.mu.Unlock()
}
