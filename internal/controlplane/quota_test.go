package controlplane

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"testing"
	"time"

	"repro/internal/controlplane/wire"
	"repro/internal/monitor"
	"repro/internal/runtime"
)

func TestTokenBucket(t *testing.T) {
	t0 := time.Unix(0, 0)
	tb := newTokenBucket(&QuotaSpec{Rate: 10, Burst: 5}, t0)

	if ok, _ := tb.take(5, t0); !ok {
		t.Fatal("full bucket refused a burst-sized batch")
	}
	ok, wait := tb.take(1, t0)
	if ok {
		t.Fatal("empty bucket admitted")
	}
	if wait <= 0 || wait > time.Second {
		t.Fatalf("retry hint %v, want (0, 1s] for 1 token at rate 10", wait)
	}
	// Refill: 0.5 s at rate 10 = 5 tokens.
	if ok, _ := tb.take(5, t0.Add(500*time.Millisecond)); !ok {
		t.Fatal("refilled bucket refused")
	}

	// Oversized batch: need > burst is admitted from a FULL bucket
	// (going negative) — rejecting it forever would be a liveness bug.
	tb = newTokenBucket(&QuotaSpec{Rate: 10, Burst: 5}, t0)
	if ok, _ := tb.take(64, t0); !ok {
		t.Fatal("oversized batch refused from a full bucket")
	}
	if ok, wait := tb.take(1, t0); ok || wait <= 0 {
		t.Fatalf("bucket in debt admitted (wait %v)", wait)
	}
	// The debt drains at rate: 59 tokens short for the next 1-token
	// take at min(1, burst)=1 target → (1-(-59))/10 = 6 s.
	if _, wait := tb.take(1, t0); wait < 5*time.Second {
		t.Fatalf("debt retry hint %v, want ~6s", wait)
	}

	// Default burst = max(rate, 1).
	tb = newTokenBucket(&QuotaSpec{Rate: 40}, t0)
	if tb.burst != 40 {
		t.Fatalf("default burst = %g, want rate", tb.burst)
	}
	if nb := newTokenBucket(nil, t0); nb != nil {
		t.Fatal("nil quota built a bucket")
	}
	var nilTB *tokenBucket
	if ok, _ := nilTB.take(1000, t0); !ok {
		t.Fatal("nil bucket must admit everything")
	}
}

func TestQuotaValidation(t *testing.T) {
	_, c := newTestPlane(t)
	var api *APIError
	for _, q := range []QuotaSpec{
		{Rate: 0},
		{Rate: -5},
		{Rate: 1e12},
		{Rate: 10, Burst: -1},
	} {
		_, err := c.Register(AppSpec{Name: "q", Quota: &q})
		if !asAPI(err, &api) || api.Status != http.StatusBadRequest {
			t.Errorf("quota %+v: %v, want 400", q, err)
		}
	}
}

// quotaPlane registers one tenant with a tiny quota on a plane whose
// kernel is NOT running — nothing drains, so only the quota (not the
// inbox cap) shapes the outcome at these batch sizes.
func quotaPlane(t *testing.T) (*Server, *Client, string) {
	t.Helper()
	_, s, c := newBinaryPlane(t)
	if _, err := c.Register(AppSpec{
		Name:  "metered",
		Quota: &QuotaSpec{Rate: 1, Burst: 4},
	}); err != nil {
		t.Fatal(err)
	}
	return s, c, "metered"
}

// drainBucket spends the tenant's burst allowance directly so each
// path's test starts from an empty bucket without racing the clock.
func drainBucket(t *testing.T, s *Server, name string) {
	t.Helper()
	ra := s.lookupApp(name)
	if ra == nil || ra.quota == nil {
		t.Fatal("metered app has no bucket")
	}
	ra.quota.mu.Lock()
	ra.quota.tokens = 0
	ra.quota.last = time.Now()
	ra.quota.mu.Unlock()
}

// checkQuota429 asserts the uniform rejection shape: HTTP 429, the
// same "backpressure" envelope code every path uses, and a positive
// Retry-After the client surfaces as APIError.RetryAfter.
func checkQuota429(t *testing.T, path string, err error) {
	t.Helper()
	var api *APIError
	if !errors.As(err, &api) {
		t.Fatalf("%s: error %v is not an APIError", path, err)
	}
	if api.Status != http.StatusTooManyRequests {
		t.Fatalf("%s: status %d, want 429", path, api.Status)
	}
	if api.Code != CodeBackpressure {
		t.Fatalf("%s: code %q, want %q", path, api.Code, CodeBackpressure)
	}
	if api.RetryAfter < time.Second {
		t.Fatalf("%s: Retry-After %v, want >= 1s", path, api.RetryAfter)
	}
}

// TestQuotaParityAcrossIngestPaths: all three observation paths charge
// the same bucket and refuse with the identical envelope — JSON,
// binary one-shot, and the persistent stream (which must 429
// immediately instead of stalling on its flow-control loop).
func TestQuotaParityAcrossIngestPaths(t *testing.T) {
	s, c, name := quotaPlane(t)
	samples := []Observation{{Metric: monitor.MetricLatency, Value: 1}}
	binSamples := []runtime.Sample{{Metric: monitor.MetricLatency, Value: 1}}

	// Within burst: all three paths admit.
	if n, err := c.Observe(name, samples); err != nil || n != 1 {
		t.Fatalf("JSON within quota: %d, %v", n, err)
	}
	if n, err := c.ObserveBinary(name, binSamples); err != nil || n != 1 {
		t.Fatalf("binary within quota: %d, %v", n, err)
	}

	drainBucket(t, s, name)
	_, err := c.Observe(name, samples)
	checkQuota429(t, "JSON", err)

	drainBucket(t, s, name)
	_, err = c.ObserveBinary(name, binSamples)
	checkQuota429(t, "binary", err)

	// The stream: post a raw frame body so the server's terminal error
	// is observed without the client's retry machinery. The 429 must be
	// immediate — a stalling stream would hold this request for
	// streamStallLimit (5s), so the elapsed bound is also the assertion
	// that the quota bypasses the flow-control stall.
	drainBucket(t, s, name)
	start := time.Now()
	err = postRawStream(t, c, name, binSamples)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("stream 429 took %v — the quota stalled instead of failing fast", elapsed)
	}
	checkQuota429(t, "stream", err)
}

// postRawStream sends one encoded frame to POST /v1/stream and decodes
// the terminal response like the client's error path would.
func postRawStream(t *testing.T, c *Client, app string, samples []runtime.Sample) error {
	t.Helper()
	frame, err := wire.NewEncoder().AppendFrame(nil, app, samples)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, c.base+"/v1/stream", bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", wireContentType)
	resp, err := c.hc.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return apiError(resp)
	}
	var ack StreamAck
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	return nil
}

// TestQuotaStreamResumes: a stream refused with 429 succeeds when the
// client comes back after Retry-After — the throttle is a pause, not a
// ban.
func TestQuotaStreamResumes(t *testing.T) {
	_, s, c := newBinaryPlane(t)
	if _, err := c.Register(AppSpec{
		Name:  "resumer",
		Quota: &QuotaSpec{Rate: 5000, Burst: 8},
	}); err != nil {
		t.Fatal(err)
	}
	batch := make([]runtime.Sample, 8)
	for i := range batch {
		batch[i] = runtime.Sample{Metric: monitor.MetricLatency, Value: 1}
	}
	if err := postRawStream(t, c, "resumer", batch); err != nil {
		t.Fatalf("first stream within burst: %v", err)
	}
	err := postRawStream(t, c, "resumer", batch)
	var api *APIError
	if !errors.As(err, &api) || api.Status != http.StatusTooManyRequests {
		t.Fatalf("over-quota stream: %v, want 429", err)
	}
	// At rate 5000 the 8-token shortfall refills in ~2ms; the header
	// still floors at 1s, but the test shortcuts via the bucket clock
	// rather than sleeping the full second.
	ra := s.lookupApp("resumer")
	ra.quota.mu.Lock()
	ra.quota.last = ra.quota.last.Add(-time.Second)
	ra.quota.mu.Unlock()
	if err := postRawStream(t, c, "resumer", batch); err != nil {
		t.Fatalf("stream after Retry-After: %v", err)
	}
}

// TestQuotaOversizedBatchLiveness: a batch larger than the entire
// bucket is admitted from a full bucket (going negative) — otherwise
// it could never be ingested at all — and sustained throughput still
// converges on the configured rate because the debt must drain first.
func TestQuotaOversizedBatchLiveness(t *testing.T) {
	_, s, c := newBinaryPlane(t)
	if _, err := c.Register(AppSpec{
		Name:  "bulk",
		Quota: &QuotaSpec{Rate: 10, Burst: 4},
	}); err != nil {
		t.Fatal(err)
	}
	big := make([]Observation, 64)
	for i := range big {
		big[i] = Observation{Metric: monitor.MetricLatency, Value: 1}
	}
	if n, err := c.Observe("bulk", big); err != nil || n != 64 {
		t.Fatalf("oversized batch from full bucket: %d, %v", n, err)
	}
	// Deep in debt now: even one sample is refused, with a hint long
	// enough to cover the debt.
	_, err := c.Observe("bulk", big[:1])
	var api *APIError
	if !errors.As(err, &api) || api.Status != http.StatusTooManyRequests {
		t.Fatalf("in-debt observe: %v, want 429", err)
	}
	if api.RetryAfter < 5*time.Second {
		t.Fatalf("debt Retry-After %v, want >= 5s (60 tokens at rate 10)", api.RetryAfter)
	}
	if got := s.lookupApp("bulk").samples.Load(); got != 64 {
		t.Fatalf("accepted %d samples, want exactly the oversized batch", got)
	}
}
