package controlplane

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/monitor"
	"repro/internal/rtrm"
	"repro/internal/runtime"
	"repro/internal/simhpc"
)

// steerPolicy sheds load proportionally to the violation: each firing
// decision multiplies the current level down. Inline-classifiable —
// straight-line arithmetic over one knob and the violation input.
const steerPolicy = `
aspectdef Steer
	input gain end
	apply
		do Scale('level', gain);
	end
	condition violation > 0 end
end
`

// recursivePolicy has an aspect-call cycle: statically unbounded, so
// admission must classify it isolation-required rather than reject it.
const recursivePolicy = `
aspectdef Ping
	call Pong();
	apply
		do Hold();
	end
end
aspectdef Pong
	call Ping();
end
`

// TestPolicyDSLEndToEnd is the tentpole acceptance path: a tenant
// POSTs a DSL policy, the compiled program steers the level knob under
// a violated SLA, GET round-trips the compiled-policy status, and a
// PUT hot-swap replaces the program without dropping the app's
// observations or counters.
func TestPolicyDSLEndToEnd(t *testing.T) {
	k, c := newTestPlane(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := k.Start(ctx, runtime.Options{Flush: 5 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	defer k.Stop()

	st, err := c.Register(AppSpec{
		Name:     "steered",
		Window:   8,
		Debounce: 1,
		Goals:    []GoalSpec{{Metric: monitor.MetricLatency, Target: 1.0}},
		Workload: WorkloadSpec{Tasks: 2, GFlop: 4},
		Policy: &PolicySpec{
			Type:   PolicyDSL,
			Source: steerPolicy,
			Params: map[string]float64{"gain": 0.5},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Policy == nil || st.Policy.Type != PolicyDSL {
		t.Fatalf("register status policy = %+v, want dsl", st.Policy)
	}
	if st.Level != 1 {
		t.Fatalf("initial level = %g, want 1", st.Level)
	}

	// GET round-trips the compiled policy: source hash and class.
	st, err = c.App("steered")
	if err != nil {
		t.Fatal(err)
	}
	if st.Policy == nil {
		t.Fatal("GET reports no policy")
	}
	if !strings.HasPrefix(st.Policy.SourceHash, "sha256:") {
		t.Errorf("source hash = %q, want sha256:...", st.Policy.SourceHash)
	}
	if st.Policy.Class != "inline" {
		t.Errorf("class = %q (%s), want inline", st.Policy.Class, st.Policy.ClassReason)
	}
	if st.Policy.Swaps != 0 {
		t.Errorf("swaps = %d before any PUT", st.Policy.Swaps)
	}

	// Violate the SLA until the compiled policy halves the level.
	streamCtx, stopStream := context.WithCancel(context.Background())
	defer stopStream()
	go func() {
		for streamCtx.Err() == nil {
			_, _ = c.Observe("steered", []Observation{
				{Metric: monitor.MetricLatency, Value: 5},
				{Metric: monitor.MetricLatency, Value: 5},
			})
			time.Sleep(time.Millisecond)
		}
	}()
	waitFor(t, "dsl policy steering the level down", func() bool {
		st, err := c.App("steered")
		return err == nil && st.Adaptations > 0 && st.Level <= 0.5
	})

	// Hot-swap to a recovery policy that pins the level back up. The
	// app keeps its identity: samples and ticks never reset.
	before, err := c.App("steered")
	if err != nil {
		t.Fatal(err)
	}
	st, err = c.PutPolicy("steered", PolicySpec{
		Type: PolicyDSL,
		Source: `
aspectdef Recover
	apply
		do Set('level', 1);
	end
	condition violation > 0 end
end
`,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Policy == nil || st.Policy.Swaps != 1 {
		t.Fatalf("post-swap policy status = %+v, want swaps 1", st.Policy)
	}
	if st.Samples < before.Samples || st.Ticks < before.Ticks {
		t.Fatalf("swap dropped history: samples %d→%d ticks %d→%d",
			before.Samples, st.Samples, before.Ticks, st.Ticks)
	}
	waitFor(t, "replacement policy restoring the level", func() bool {
		st, err := c.App("steered")
		return err == nil && st.Level == 1
	})

	// Swap to the ladder arm: the discriminated API covers both.
	st, err = c.PutPolicy("steered", PolicySpec{Type: PolicyLadder, Levels: []float64{1, 0.25}})
	if err != nil {
		t.Fatal(err)
	}
	if st.Policy == nil || st.Policy.Type != PolicyLadder || st.Policy.Swaps != 2 {
		t.Fatalf("ladder swap status = %+v", st.Policy)
	}
	waitFor(t, "ladder stepping down", func() bool {
		st, err := c.App("steered")
		return err == nil && st.Level == 0.25
	})
}

// TestPolicyCompileErrorEnvelope: a DSL policy that fails admission
// answers 400 with code "compile_error" and positioned diagnostics in
// the detail payload — both through the typed client and on the raw
// wire shape.
func TestPolicyCompileErrorEnvelope(t *testing.T) {
	_, c := newTestPlane(t)
	_, err := c.Register(AppSpec{
		Name:   "broken",
		Policy: &PolicySpec{Type: PolicyDSL, Source: "aspectdef A\n\tapply\n\t\tdo Nonsense(1);\n\tend\nend\n"},
	})
	if !IsCompileError(err) {
		t.Fatalf("register with bad policy: %v, want compile_error", err)
	}
	var api *APIError
	if !asAPI(err, &api) || api.Status != http.StatusBadRequest {
		t.Fatalf("compile error status: %v, want 400", err)
	}
	diags := api.CompileDiags()
	if len(diags) == 0 {
		t.Fatal("no diagnostics in detail payload")
	}
	if diags[0].Line != 3 || !strings.Contains(diags[0].Msg, "Nonsense") {
		t.Errorf("diag = %+v, want line 3 mentioning Nonsense", diags[0])
	}

	// A policy touching a knob the app does not expose is a compile
	// error too (the knob checker runs at admission).
	_, err = c.Register(AppSpec{
		Name:   "wrongknob",
		Policy: &PolicySpec{Type: PolicyDSL, Source: "aspectdef A\n\tapply\n\t\tdo Set('levle', 2);\n\tend\nend\n"},
	})
	if !IsCompileError(err) {
		t.Fatalf("unknown knob: %v, want compile_error", err)
	}

	// Raw wire shape: {"error": {"code", "message", "detail"}}.
	resp, err := http.Post(c.base+"/v1/apps", "application/json",
		strings.NewReader(`{"name":"raw","policy":{"type":"dsl","source":"aspectdef A\n\tselect x\nend\n"}}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("raw status = %d, want 400", resp.StatusCode)
	}
	var envelope struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
			Detail  []struct {
				Line int    `json:"line"`
				Col  int    `json:"col"`
				Msg  string `json:"msg"`
			} `json:"detail"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatal(err)
	}
	if envelope.Error.Code != CodeCompileError || envelope.Error.Message == "" {
		t.Fatalf("envelope = %+v", envelope.Error)
	}
	if len(envelope.Error.Detail) == 0 || envelope.Error.Detail[0].Line == 0 {
		t.Fatalf("detail diagnostics = %+v, want positioned entries", envelope.Error.Detail)
	}
}

// TestPolicyLevelsAlias: the removed top-level levels field is a 400
// whose message points at the canonical location (policy.levels) —
// with or without a policy object alongside it.
func TestPolicyLevelsAlias(t *testing.T) {
	_, c := newTestPlane(t)
	var api *APIError
	_, err := c.Register(AppSpec{Name: "legacy", Levels: []float64{1, 0.5}})
	if !asAPI(err, &api) || api.Status != http.StatusBadRequest || api.Code != CodeBadRequest {
		t.Fatalf("legacy levels: %v, want 400 bad_request", err)
	}
	if !strings.Contains(api.Msg, "policy.levels") {
		t.Fatalf("rejection %q does not point at policy.levels", api.Msg)
	}
	_, err = c.Register(AppSpec{
		Name:   "both",
		Levels: []float64{1},
		Policy: &PolicySpec{Type: PolicyLadder, Levels: []float64{1}},
	})
	if !asAPI(err, &api) || api.Status != http.StatusBadRequest || api.Code != CodeBadRequest {
		t.Fatalf("levels+policy: %v, want 400 bad_request", err)
	}
	// The canonical spelling registers fine.
	st, err := c.Register(AppSpec{
		Name:   "canonical",
		Policy: &PolicySpec{Type: PolicyLadder, Levels: []float64{1, 0.5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Policy == nil || st.Policy.Type != PolicyLadder || len(st.Policy.Levels) != 2 {
		t.Fatalf("canonical policy = %+v", st.Policy)
	}
}

// TestPolicyValidation covers the discriminated-spec admission bounds.
func TestPolicyValidation(t *testing.T) {
	_, c := newTestPlane(t)
	cases := []struct {
		name string
		p    PolicySpec
	}{
		{"unknown type", PolicySpec{Type: "pid"}},
		{"empty type", PolicySpec{}},
		{"ladder without levels", PolicySpec{Type: PolicyLadder}},
		{"ladder with source", PolicySpec{Type: PolicyLadder, Levels: []float64{1}, Source: "x"}},
		{"ladder negative level", PolicySpec{Type: PolicyLadder, Levels: []float64{1, -2}}},
		{"dsl without source", PolicySpec{Type: PolicyDSL}},
		{"dsl with levels", PolicySpec{Type: PolicyDSL, Source: steerPolicy, Levels: []float64{1}}},
		{"dsl oversized source", PolicySpec{Type: PolicyDSL, Source: strings.Repeat("x", maxPolicySource+1)}},
		{"dsl non-finite param", PolicySpec{Type: PolicyDSL, Source: steerPolicy,
			Params: map[string]float64{"gain": 1e300}}},
	}
	var api *APIError
	for _, tc := range cases {
		p := tc.p
		if _, err := c.Register(AppSpec{Name: "v", Policy: &p}); !asAPI(err, &api) || api.Status != http.StatusBadRequest {
			t.Errorf("%s: %v, want 400", tc.name, err)
		}
	}
}

// TestPolicyIsolatedOverAPI: a statically unbounded policy (aspect
// recursion) is admitted but classified isolation-required, and the
// classification is visible on the status.
func TestPolicyIsolatedOverAPI(t *testing.T) {
	_, c := newTestPlane(t)
	st, err := c.Register(AppSpec{
		Name:   "runaway",
		Policy: &PolicySpec{Type: PolicyDSL, Source: recursivePolicy},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Policy == nil || st.Policy.Class != "isolated" {
		t.Fatalf("policy status = %+v, want isolated class", st.Policy)
	}
	if !strings.Contains(st.Policy.ClassReason, "cycle") {
		t.Errorf("class reason = %q, want a cycle mention", st.Policy.ClassReason)
	}
	if err := c.Detach("runaway"); err != nil {
		t.Fatal(err) // detach must close the isolation worker cleanly
	}
}

// TestErrorEnvelopeCodes audits the envelope's machine-readable code on
// every error family the API answers with: 400, 401, 404, 409, 429.
func TestErrorEnvelopeCodes(t *testing.T) {
	rng := simhpc.NewRNG(7)
	cluster := simhpc.NewCluster(2, 22, func(i int) *simhpc.Node {
		return simhpc.HomogeneousNode(fmt.Sprintf("n%d", i), 0.15, rng)
	})
	k := runtime.NewKernel(rtrm.NewManager(cluster, cluster.FacilityPowerW(1)*0.9))
	s := NewServer(k, WithAuthToken("sesame"))
	srv := httptest.NewServer(s)
	defer srv.Close()

	unauth := NewClient(srv.URL, srv.Client())
	var api *APIError
	if _, err := unauth.Register(AppSpec{Name: "a"}); !asAPI(err, &api) ||
		api.Status != http.StatusUnauthorized || api.Code != CodeUnauthorized {
		t.Errorf("no token: %v, want 401 unauthorized", err)
	}

	c := NewClient(srv.URL, srv.Client())
	c.SetAuthToken("sesame")
	if _, err := c.Register(AppSpec{Name: "a"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Register(AppSpec{Name: "a"}); !asAPI(err, &api) ||
		api.Status != http.StatusConflict || api.Code != CodeConflict {
		t.Errorf("duplicate: %v, want 409 conflict", err)
	}
	if _, err := c.Register(AppSpec{Name: ""}); !asAPI(err, &api) ||
		api.Status != http.StatusBadRequest || api.Code != CodeBadRequest {
		t.Errorf("empty name: %v, want 400 bad_request", err)
	}
	if _, err := c.App("ghost"); !asAPI(err, &api) ||
		api.Status != http.StatusNotFound || api.Code != CodeNotFound {
		t.Errorf("unknown app: %v, want 404 not_found", err)
	}
	if _, err := c.PutPolicy("ghost", PolicySpec{Type: PolicyLadder, Levels: []float64{1}}); !asAPI(err, &api) ||
		api.Status != http.StatusNotFound || api.Code != CodeNotFound {
		t.Errorf("put policy on unknown app: %v, want 404 not_found", err)
	}
	// Backpressure: fill the inbox with the kernel stopped.
	ra := s.apps["a"]
	for i := 0; i < maxPendingSamples; i++ {
		ra.inbox.Push(monitor.MetricLatency, 1)
	}
	if _, err := c.Observe("a", []Observation{{Metric: monitor.MetricLatency, Value: 1}}); !asAPI(err, &api) ||
		api.Status != http.StatusTooManyRequests || api.Code != CodeBackpressure {
		t.Errorf("full inbox: %v, want 429 backpressure", err)
	}
}

// TestPolicyFuelMetrics: GET /v1/apps/{id} surfaces the compiled
// policy's execution accounting — decisions, fuel budget and the
// last/max per-decision fuel spends — once the kernel has ticked the
// policy a few times. The fuel counters are the near-quarantine early
// warning (FuelUsedMax creeping toward FuelBudget).
func TestPolicyFuelMetrics(t *testing.T) {
	k, c := newTestPlane(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := k.Start(ctx, runtime.Options{Flush: 5 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	defer k.Stop()

	if _, err := c.Register(AppSpec{
		Name:     "fueled",
		Window:   8,
		Debounce: 1,
		Goals:    []GoalSpec{{Metric: monitor.MetricLatency, Target: 1.0}},
		Policy: &PolicySpec{
			Type:   PolicyDSL,
			Source: steerPolicy,
			Params: map[string]float64{"gain": 0.5},
		},
	}); err != nil {
		t.Fatal(err)
	}
	// The decide loop only runs on arriving samples: keep violating the
	// SLA until a few decisions have been accounted.
	streamCtx, stopStream := context.WithCancel(context.Background())
	defer stopStream()
	go func() {
		for streamCtx.Err() == nil {
			_, _ = c.Observe("fueled", []Observation{
				{Metric: monitor.MetricLatency, Value: 5},
				{Metric: monitor.MetricLatency, Value: 5},
			})
			time.Sleep(time.Millisecond)
		}
	}()
	var st AppStatus
	waitFor(t, "policy decisions accumulating", func() bool {
		var err error
		st, err = c.App("fueled")
		return err == nil && st.Policy != nil && st.Policy.Decisions > 2
	})
	stopStream()
	p := st.Policy
	if p.FuelBudget <= 0 {
		t.Errorf("fuel_budget = %d, want > 0", p.FuelBudget)
	}
	if p.FuelUsedLast <= 0 || p.FuelUsedLast > p.FuelBudget {
		t.Errorf("fuel_used_last = %d, want in (0, %d]", p.FuelUsedLast, p.FuelBudget)
	}
	if p.FuelUsedMax < p.FuelUsedLast {
		t.Errorf("fuel_used_max %d < fuel_used_last %d", p.FuelUsedMax, p.FuelUsedLast)
	}
	// An inline policy reports no isolation accounting.
	if p.Class == "inline" && (p.DeadlineDrops != 0 || p.DecisionDeadlineMS != 0) {
		t.Errorf("inline policy reports isolation metrics: %+v", p)
	}
	// The ladder arm reports no fuel accounting at all.
	lst, err := c.Register(AppSpec{
		Name:   "laddered",
		Policy: &PolicySpec{Type: PolicyLadder, Levels: []float64{1, 0.5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if lp := lst.Policy; lp.FuelBudget != 0 || lp.Decisions != 0 {
		t.Errorf("ladder policy reports fuel accounting: %+v", lp)
	}
}

// TestPolicyDeadlineMetrics: an isolation-classified policy reports
// its decision deadline through the status endpoint.
func TestPolicyDeadlineMetrics(t *testing.T) {
	_, c := newTestPlane(t)
	st, err := c.Register(AppSpec{
		Name:   "isolated",
		Policy: &PolicySpec{Type: PolicyDSL, Source: recursivePolicy},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Policy == nil || st.Policy.Class != "isolated" {
		t.Fatalf("policy = %+v, want isolated class", st.Policy)
	}
	if st.Policy.DecisionDeadlineMS <= 0 {
		t.Errorf("decision_deadline_ms = %d, want the default deadline surfaced", st.Policy.DecisionDeadlineMS)
	}
}
