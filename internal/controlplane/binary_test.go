package controlplane

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/controlplane/wire"
	"repro/internal/monitor"
	"repro/internal/rtrm"
	"repro/internal/runtime"
	"repro/internal/simhpc"
)

// newBinaryPlane is newTestPlane with the server handle exposed, for
// tests that reach into tenant state.
func newBinaryPlane(t *testing.T) (*runtime.Kernel, *Server, *Client) {
	t.Helper()
	rng := simhpc.NewRNG(101)
	cluster := simhpc.NewCluster(4, 22, func(i int) *simhpc.Node {
		return simhpc.HomogeneousNode(fmt.Sprintf("n%d", i), 0.15, rng)
	})
	k := runtime.NewKernel(rtrm.NewManager(cluster, cluster.FacilityPowerW(1)*0.9))
	s := NewServer(k)
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	return k, s, NewClient(srv.URL, srv.Client())
}

// TestObserveBinary covers the one-shot binary endpoint: accepted
// batches land in the tenant's inbox with JSON-identical accounting,
// and the JSON path's error statuses carry over.
func TestObserveBinary(t *testing.T) {
	_, s, c := newBinaryPlane(t)
	if _, err := c.Register(AppSpec{Name: "bin"}); err != nil {
		t.Fatal(err)
	}
	batch := []runtime.Sample{
		{Metric: monitor.MetricLatency, Value: 0.5},
		{Metric: monitor.MetricLatency, Value: 0.7},
		{Metric: monitor.MetricPower, Value: 120},
	}
	n, err := c.ObserveBinary("bin", batch)
	if err != nil || n != len(batch) {
		t.Fatalf("ObserveBinary: %d, %v", n, err)
	}
	ra := s.apps["bin"]
	if got := ra.inbox.Len(); got != len(batch) {
		t.Errorf("inbox holds %d samples, want %d", got, len(batch))
	}
	if got := ra.samples.Load(); got != int64(len(batch)) {
		t.Errorf("accepted counter %d, want %d", got, len(batch))
	}

	var api *APIError
	if _, err := c.ObserveBinary("ghost", batch); !asAPI(err, &api) || api.Status != http.StatusNotFound {
		t.Errorf("unknown app: %v, want 404", err)
	}

	// A frame addressed to a different app than the URL names is a 400,
	// not a silent cross-tenant write.
	if _, err := c.Register(AppSpec{Name: "other"}); err != nil {
		t.Fatal(err)
	}
	frame, err := wire.NewEncoder().AppendFrame(nil, "other", batch)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(c.base+"/v1/apps/bin/observations:binary", wireContentType, bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("cross-addressed frame: %d, want 400", resp.StatusCode)
	}
	if got := s.apps["other"].inbox.Len(); got != 0 {
		t.Errorf("cross-addressed frame landed %d samples", got)
	}

	// Corrupt bytes are a 400, never a panic.
	resp, err = http.Post(c.base+"/v1/apps/bin/observations:binary", wireContentType, strings.NewReader("\x07garbage"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("corrupt frame: %d, want 400", resp.StatusCode)
	}

	// Non-finite values: JSON cannot carry them, so binary must reject
	// them — identically enforced caps.
	if _, err := c.ObserveBinary("bin", []runtime.Sample{{Metric: "m", Value: math.NaN()}}); !asAPI(err, &api) || api.Status != http.StatusBadRequest {
		t.Errorf("NaN sample: %v, want 400", err)
	}
	if _, err := c.ObserveBinary("bin", []runtime.Sample{{Metric: "m", Value: math.Inf(-1)}}); !asAPI(err, &api) || api.Status != http.StatusBadRequest {
		t.Errorf("-Inf sample: %v, want 400", err)
	}
}

// TestObservePooledScratchIsolation: the JSON ingest scratch is pooled
// across requests and tenants, so a request that omits fields must see
// zero values, never a previous request's — json.Unmarshal merges into
// reused slice elements unless they are cleared.
func TestObservePooledScratchIsolation(t *testing.T) {
	_, s, c := newBinaryPlane(t)
	if _, err := c.Register(AppSpec{Name: "tenant"}); err != nil {
		t.Fatal(err)
	}
	ra := s.apps["tenant"]
	post := func(body string) *http.Response {
		t.Helper()
		resp, err := http.Post(c.base+"/v1/apps/tenant/observations", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	// Prime the pooled scratch with a distinctive value, then send a
	// sample omitting "value": it must ingest as 0. Loop to make pool
	// reuse overwhelmingly likely regardless of scheduling.
	for i := 0; i < 8; i++ {
		if resp := post(`{"samples":[{"metric":"secret","value":99.5}]}`); resp.StatusCode != http.StatusOK {
			t.Fatalf("prime: %d", resp.StatusCode)
		}
		ra.inbox.Drain(func(string, float64) {})
		if resp := post(`{"samples":[{"metric":"plain"}]}`); resp.StatusCode != http.StatusOK {
			t.Fatalf("probe: %d", resp.StatusCode)
		}
		leaked := false
		ra.inbox.Drain(func(metric string, v float64) {
			if metric != "plain" || v != 0 {
				leaked = true
			}
		})
		if leaked {
			t.Fatal("omitted fields inherited a previous request's values through the pool")
		}
		// A sample omitting "metric" must still be rejected even when
		// the pooled element previously held a valid name.
		if resp := post(`{"samples":[{"value":1}]}`); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("metric-less sample: %d, want 400", resp.StatusCode)
		}
	}
}

// TestObserveBinaryAllOrNothing: a multi-frame one-shot body that
// fails on a later frame admits nothing — the JSON batch semantics, so
// clients can retry the whole body without duplicating samples.
func TestObserveBinaryAllOrNothing(t *testing.T) {
	_, s, c := newBinaryPlane(t)
	if _, err := c.Register(AppSpec{Name: "atomic"}); err != nil {
		t.Fatal(err)
	}
	enc := wire.NewEncoder()
	body, err := enc.AppendFrame(nil, "atomic", []runtime.Sample{{Metric: "m", Value: 1}, {Metric: "m", Value: 2}})
	if err != nil {
		t.Fatal(err)
	}
	body, err = enc.AppendFrame(body, "atomic", []runtime.Sample{{Metric: "m", Value: math.NaN()}})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(c.base+"/v1/apps/atomic/observations:binary", wireContentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("body with a bad trailing frame: %d, want 400", resp.StatusCode)
	}
	ra := s.apps["atomic"]
	if got := ra.inbox.Len(); got != 0 {
		t.Errorf("rejected body still admitted %d samples", got)
	}
	if got := ra.samples.Load(); got != 0 {
		t.Errorf("rejected body bumped the accepted counter to %d", got)
	}
}

// TestObserveBinaryCardinality: the per-app distinct-metric cap holds
// on the binary path exactly as on JSON, including all-or-nothing
// rejection.
func TestObserveBinaryCardinality(t *testing.T) {
	_, _, c := newBinaryPlane(t)
	if _, err := c.Register(AppSpec{Name: "cardinal"}); err != nil {
		t.Fatal(err)
	}
	over := make([]runtime.Sample, maxMetricsPerApp+1)
	for i := range over {
		over[i] = runtime.Sample{Metric: fmt.Sprintf("m%d", i), Value: 1}
	}
	var api *APIError
	if _, err := c.ObserveBinary("cardinal", over); !asAPI(err, &api) || api.Status != http.StatusBadRequest {
		t.Fatalf("over-cap binary batch: %v, want 400", err)
	}
	if n, err := c.ObserveBinary("cardinal", over[:maxMetricsPerApp]); err != nil || n != maxMetricsPerApp {
		t.Fatalf("at-cap binary batch after rejected one: %d, %v (cardinality slots burned?)", n, err)
	}
}

// TestStreamIngest drives the persistent endpoint end to end: one
// stream multiplexes two tenants, flushes several times, and the
// terminal ack accounts for every sample and frame.
func TestStreamIngest(t *testing.T) {
	k, s, c := newBinaryPlane(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := k.Start(ctx, runtime.Options{Flush: 5 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	defer k.Stop()
	for _, name := range []string{"s0", "s1"} {
		if _, err := c.Register(AppSpec{Name: name, Workload: WorkloadSpec{Tasks: 1, GFlop: 2}}); err != nil {
			t.Fatal(err)
		}
	}
	w, err := c.Stream()
	if err != nil {
		t.Fatal(err)
	}
	const flushes, perFlush = 20, 8
	for f := 0; f < flushes; f++ {
		for i := 0; i < perFlush; i++ {
			app := fmt.Sprintf("s%d", i%2)
			if err := w.Observe(app, monitor.MetricLatency, 0.5); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	ack, err := w.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ack.Accepted != flushes*perFlush {
		t.Errorf("ack.Accepted = %d, want %d", ack.Accepted, flushes*perFlush)
	}
	// Two apps per flush → two frames per flush.
	if ack.Frames != flushes*2 {
		t.Errorf("ack.Frames = %d, want %d", ack.Frames, flushes*2)
	}
	ra0, ra1 := s.apps["s0"], s.apps["s1"]
	if got := ra0.samples.Load() + ra1.samples.Load(); got != flushes*perFlush {
		t.Errorf("accepted counters sum to %d, want %d", got, flushes*perFlush)
	}
	// The kernel actually collects what the stream pushed.
	waitFor(t, "streamed samples collected", func() bool {
		return ra0.inbox.Len() == 0 && ra1.inbox.Len() == 0
	})
}

// TestStreamUnknownApp: a frame for an unregistered app terminates the
// stream and the client surfaces the 404.
func TestStreamUnknownApp(t *testing.T) {
	_, _, c := newBinaryPlane(t)
	if _, err := c.Register(AppSpec{Name: "known"}); err != nil {
		t.Fatal(err)
	}
	w, err := c.Stream()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Observe("nobody", monitor.MetricLatency, 1); err != nil {
		t.Fatal(err)
	}
	// The server kills the stream on the bad frame; the write or the
	// close must surface the 404.
	flushErr := w.Flush()
	_, closeErr := w.Close()
	err = flushErr
	if err == nil {
		err = closeErr
	}
	var api *APIError
	if !asAPI(err, &api) || api.Status != http.StatusNotFound {
		t.Errorf("unknown app over stream: flush=%v close=%v, want 404", flushErr, closeErr)
	}
}

// TestStreamBackpressure: with nothing draining, the pending-sample
// bound stalls the stream (flow control) and then terminates it with
// 429 once the stall outlives the limit — same cap as the JSON path,
// different enforcement for a transport that can push back.
func TestStreamBackpressure(t *testing.T) {
	old := streamStallLimit
	streamStallLimit = 50 * time.Millisecond // stopped kernel: fail fast
	defer func() { streamStallLimit = old }()
	_, s, c := newBinaryPlane(t)
	if _, err := c.Register(AppSpec{Name: "firehose"}); err != nil {
		t.Fatal(err)
	}
	ra := s.apps["firehose"]
	for i := 0; i < maxPendingSamples; i++ {
		ra.inbox.Push(monitor.MetricLatency, 1)
	}
	w, err := c.Stream()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Observe("firehose", monitor.MetricLatency, 1); err != nil {
		t.Fatal(err)
	}
	flushErr := w.Flush()
	_, closeErr := w.Close()
	err = flushErr
	if err == nil {
		err = closeErr
	}
	var api *APIError
	if !asAPI(err, &api) || api.Status != http.StatusTooManyRequests {
		t.Errorf("stream at pending cap: flush=%v close=%v, want 429", flushErr, closeErr)
	}
}

// TestStreamFlowControlRecovers: a stream stalled on a full inbox
// resumes without error once the kernel drains — backpressure on the
// persistent path is flow control, not failure.
func TestStreamFlowControlRecovers(t *testing.T) {
	_, s, c := newBinaryPlane(t)
	if _, err := c.Register(AppSpec{Name: "paced"}); err != nil {
		t.Fatal(err)
	}
	ra := s.apps["paced"]
	for i := 0; i < maxPendingSamples; i++ {
		ra.inbox.Push(monitor.MetricLatency, 1)
	}
	// Drain arrives while the stream frame is waiting out the stall.
	go func() {
		time.Sleep(30 * time.Millisecond)
		ra.ctl.Tick()
	}()
	w, err := c.Stream()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Observe("paced", monitor.MetricLatency, 1); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	ack, err := w.Close()
	if err != nil {
		t.Fatalf("stalled stream did not recover: %v", err)
	}
	if ack.Accepted != 1 {
		t.Errorf("ack.Accepted = %d, want 1", ack.Accepted)
	}
}

// TestStreamConcurrentWriters is the -race check for one
// ObservationWriter shared by several goroutines while a collector
// drains — the agent-process shape (one stream, many sensors).
func TestStreamConcurrentWriters(t *testing.T) {
	k, _, c := newBinaryPlane(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := k.Start(ctx, runtime.Options{Flush: 2 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	defer k.Stop()
	if _, err := c.Register(AppSpec{Name: "shared", Workload: WorkloadSpec{Tasks: 1, GFlop: 2}}); err != nil {
		t.Fatal(err)
	}
	w, err := c.Stream()
	if err != nil {
		t.Fatal(err)
	}
	const writers, per = 4, 200
	var wg sync.WaitGroup
	for p := 0; p < writers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := w.Observe("shared", monitor.MetricLatency, 0.5); err != nil {
					t.Errorf("observe: %v", err)
					return
				}
				if i%50 == 0 {
					if err := w.Flush(); err != nil {
						t.Errorf("flush: %v", err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	ack, err := w.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ack.Accepted != writers*per {
		t.Errorf("ack.Accepted = %d, want %d", ack.Accepted, writers*per)
	}
}

// TestBinaryIngestNoAlloc pins the server-side funnel the acceptance
// criterion names: steady-state binary frames decode and land in the
// inbox with (amortized) zero allocations per frame — the pooled
// decoder scratch, the interned metric strings and the bulk slot
// claim together.
func TestBinaryIngestNoAlloc(t *testing.T) {
	_, s, c := newBinaryPlane(t)
	if _, err := c.Register(AppSpec{Name: "hot"}); err != nil {
		t.Fatal(err)
	}
	ra := s.apps["hot"]

	enc := wire.NewEncoder()
	samples := make([]runtime.Sample, 64)
	for i := range samples {
		samples[i] = runtime.Sample{Metric: monitor.MetricLatency, Value: float64(i)}
	}
	warm, err := enc.AppendFrame(nil, "hot", samples)
	if err != nil {
		t.Fatal(err)
	}
	steady, err := enc.AppendFrame(nil, "hot", samples)
	if err != nil {
		t.Fatal(err)
	}

	var dec wire.Decoder
	r := bytes.NewReader(warm)
	br := bufio.NewReader(r)
	ingestOne := func(stream []byte) {
		r.Reset(stream)
		br.Reset(r)
		app, batch, err := dec.ReadFrame(br)
		if err != nil || app != "hot" {
			t.Fatalf("frame: %q, %v", app, err)
		}
		if err := checkFinite(batch); err != nil {
			t.Fatal(err)
		}
		if err := s.ingest(ra, batch); err != nil {
			t.Fatal(err)
		}
	}
	ingestOne(warm)
	drain := func(string, float64) {}
	ra.inbox.Drain(drain)
	allocs := testing.AllocsPerRun(100, func() {
		ingestOne(steady)
		ra.inbox.Drain(drain)
	})
	// 64-sample frames cross a 256-slot inbox chunk every 4th frame;
	// that amortized chunk is the only permitted allocation.
	if allocs >= 1 {
		t.Errorf("binary ingest allocates %.2f objects/frame, want < 1", allocs)
	}
}

// BenchmarkBinaryIngestFunnel is the allocs/op assertion benchmark for
// one binary-ingested batch: frame decode → hardening checks → bulk
// inbox claim, measured without the HTTP stack (BenchmarkStreamIngest
// in the repo root covers the full network path as K6).
func BenchmarkBinaryIngestFunnel(b *testing.B) {
	rng := simhpc.NewRNG(101)
	cluster := simhpc.NewCluster(4, 22, func(i int) *simhpc.Node {
		return simhpc.HomogeneousNode(fmt.Sprintf("n%d", i), 0.15, rng)
	})
	k := runtime.NewKernel(rtrm.NewManager(cluster, cluster.FacilityPowerW(1)*0.9))
	s := NewServer(k)
	srv := httptest.NewServer(s)
	defer srv.Close()
	c := NewClient(srv.URL, srv.Client())
	if _, err := c.Register(AppSpec{Name: "hot"}); err != nil {
		b.Fatal(err)
	}
	ra := s.apps["hot"]

	enc := wire.NewEncoder()
	samples := make([]runtime.Sample, 64)
	for i := range samples {
		samples[i] = runtime.Sample{Metric: monitor.MetricLatency, Value: float64(i)}
	}
	warm, err := enc.AppendFrame(nil, "hot", samples) // defines the dictionaries
	if err != nil {
		b.Fatal(err)
	}
	steady, err := enc.AppendFrame(nil, "hot", samples)
	if err != nil {
		b.Fatal(err)
	}
	var dec wire.Decoder
	r := bytes.NewReader(warm)
	br := bufio.NewReader(r)
	if _, _, err := dec.ReadFrame(br); err != nil {
		b.Fatal(err)
	}
	drain := func(string, float64) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(steady)
		br.Reset(r)
		app, batch, err := dec.ReadFrame(br)
		if err != nil || app != "hot" {
			b.Fatalf("frame: %q, %v", app, err)
		}
		if err := checkFinite(batch); err != nil {
			b.Fatal(err)
		}
		if err := s.ingest(ra, batch); err != nil {
			b.Fatal(err)
		}
		if i%1024 == 0 {
			ra.inbox.Drain(drain) // keep the pending bound from tripping
		}
	}
	b.ReportMetric(64, "samples/op")
}
