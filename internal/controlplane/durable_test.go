package controlplane

import (
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/durable"
	"repro/internal/runtime"
)

// newDurablePlane builds a journaled control plane over dir: an empty
// kernel (backends come from the journaled paths), the server armed
// with WithJournal, and an httptest listener. The caller owns the
// log's lifecycle across simulated restarts, so Close is not deferred.
func newDurablePlane(t *testing.T, dir string, every int) (*runtime.Kernel, *Server, *Client, *durable.Log) {
	t.Helper()
	log, err := durable.Open(dir, durable.Options{})
	if err != nil {
		t.Fatalf("Open journal: %v", err)
	}
	k := runtime.NewKernel()
	s := NewServer(k, WithJournal(log, every))
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	return k, s, NewClient(srv.URL, srv.Client()), log
}

// recoverPlane simulates the restart: reopen the journal, fold it, and
// restore into a fresh kernel + server.
func recoverPlane(t *testing.T, dir string, every int) (*runtime.Kernel, *Server, *Client, *durable.Log) {
	t.Helper()
	k, s, c, log := newDurablePlane(t, dir, every)
	st, err := RecoverPlane(log)
	if err != nil {
		t.Fatalf("RecoverPlane: %v", err)
	}
	if err := s.Restore(st); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	return k, s, c, log
}

func testBackendSpec(name string) BackendSpec {
	return BackendSpec{Name: name, Nodes: 2, AmbientC: 22, CapFrac: 0.9, Vary: 0.05, Seed: 7}
}

// TestJournalRecoveryRoundTrip drives every journaled mutation through
// the HTTP API, "crashes" (drops the server without closing anything
// gracefully beyond the log handle), recovers into a fresh plane, and
// verifies the membership that was acked — and only that — came back:
// apps with quotas, placement hints and policies (DSL recompiled, the
// SWAPPED policy, not the registered one), backends minus the removed
// one, and the protocol.
func TestJournalRecoveryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	_, _, c, log := newDurablePlane(t, dir, 0)

	if _, err := c.AddBackend(testBackendSpec("site-a")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddBackend(testBackendSpec("site-b")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Register(AppSpec{
		Name:      "pinned",
		Placement: "site-b",
		Quota:     &QuotaSpec{Rate: 50, Burst: 10},
		Policy:    &PolicySpec{Type: PolicyLadder, Levels: []float64{1, 0.5, 0.25}},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Register(AppSpec{
		Name:   "compiled",
		Goals:  []GoalSpec{{Metric: "latency", Target: 1}},
		Policy: &PolicySpec{Type: PolicyDSL, Source: steerPolicy, Params: map[string]float64{"gain": 0.5}},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Register(AppSpec{Name: "doomed"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Detach("doomed"); err != nil {
		t.Fatal(err)
	}
	// Swap the ladder app's policy: recovery must restore the swap, not
	// the registration-time ladder.
	if _, err := c.PutPolicy("pinned", PolicySpec{Type: PolicyLadder, Levels: []float64{1, 0.9}}); err != nil {
		t.Fatal(err)
	}

	// Crash: no snapshot, no graceful close of the plane — only the log
	// handle is released so the test process can reopen the files.
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	k2, _, c2, log2 := recoverPlane(t, dir, 0)
	defer log2.Close()

	apps, err := c2.Apps()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]AppStatus{}
	for _, a := range apps {
		byName[a.Name] = a
	}
	if len(byName) != 2 {
		t.Fatalf("recovered %d apps (%v), want 2", len(byName), byName)
	}
	if _, ok := byName["doomed"]; ok {
		t.Fatal("acked detach did not survive: doomed came back")
	}
	pinned := byName["pinned"]
	if pinned.Placement != "site-b" {
		t.Errorf("placement hint = %q, want site-b", pinned.Placement)
	}
	if pinned.Quota == nil || pinned.Quota.Rate != 50 || pinned.Quota.Burst != 10 {
		t.Errorf("quota = %+v, want rate 50 burst 10", pinned.Quota)
	}
	if pinned.Policy == nil || len(pinned.Policy.Levels) != 2 || pinned.Policy.Levels[1] != 0.9 {
		t.Errorf("policy = %+v, want the swapped 2-level ladder", pinned.Policy)
	}
	compiled := byName["compiled"]
	if compiled.Policy == nil || compiled.Policy.Type != PolicyDSL {
		t.Fatalf("dsl policy = %+v", compiled.Policy)
	}
	if compiled.Policy.SourceHash == "" || compiled.Policy.Class != "inline" {
		t.Errorf("dsl policy not recompiled: %+v", compiled.Policy)
	}
	if n := k2.NumBackends(); n != 2 {
		t.Errorf("recovered %d backends, want 2", n)
	}

	// A removed backend must stay removed across the NEXT crash too.
	if _, err := c2.RemoveBackend("site-a"); err != nil {
		t.Fatal(err)
	}
	if err := log2.Close(); err != nil {
		t.Fatal(err)
	}
	k3, _, _, log3 := recoverPlane(t, dir, 0)
	defer log3.Close()
	if n := k3.NumBackends(); n != 1 {
		t.Errorf("after journaled remove: %d backends, want 1", n)
	}
	if k3.HasBackend("site-a") {
		t.Error("removed backend site-a came back")
	}
}

// TestJournalProtocolSurvives: UseProtocol journals the epoch protocol
// choice.
func TestJournalProtocolSurvives(t *testing.T) {
	dir := t.TempDir()
	_, s, _, log := newDurablePlane(t, dir, 0)
	if err := s.AdmitBackend(testBackendSpec("b0")); err != nil {
		t.Fatal(err)
	}
	if err := s.UseProtocol("clock"); err != nil {
		t.Fatal(err)
	}
	log.Close()
	k2, _, _, log2 := recoverPlane(t, dir, 0)
	defer log2.Close()
	if got := k2.Protocol().String(); got != "clock" {
		t.Fatalf("recovered protocol %q, want clock", got)
	}
}

// TestJournalSnapshotCadence: sustained churn triggers snapshots that
// truncate the WAL, and recovery over snapshot+tail equals recovery
// over the full record stream — including a second replay (idempotence).
func TestJournalSnapshotCadence(t *testing.T) {
	dir := t.TempDir()
	_, s, c, log := newDurablePlane(t, dir, 8)
	if err := s.AdmitBackend(testBackendSpec("b0")); err != nil {
		t.Fatal(err)
	}
	// Churn: 20 registers, 10 detaches → 31 records at cadence 8.
	for i := 0; i < 20; i++ {
		if _, err := c.Register(AppSpec{Name: fmt.Sprintf("app-%02d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if err := c.Detach(fmt.Sprintf("app-%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if n := log.SinceSnapshot(); n >= 8 {
		t.Fatalf("WAL holds %d records, snapshot cadence 8 never fired", n)
	}
	log.Close()

	verify := func(c *Client) {
		t.Helper()
		apps, err := c.Apps()
		if err != nil {
			t.Fatal(err)
		}
		if len(apps) != 10 {
			t.Fatalf("recovered %d apps, want 10", len(apps))
		}
		for _, a := range apps {
			var i int
			if _, err := fmt.Sscanf(a.Name, "app-%d", &i); err != nil || i < 10 {
				t.Fatalf("unexpected survivor %q", a.Name)
			}
		}
	}
	_, _, c2, log2 := recoverPlane(t, dir, 8)
	verify(c2)
	log2.Close()
	// Idempotence: replaying the same snapshot+tail again converges to
	// the identical membership.
	_, _, c3, log3 := recoverPlane(t, dir, 8)
	defer log3.Close()
	verify(c3)
}

// TestJournalUnackedRegisterMayVanish documents the write-ahead
// contract's other half via the API surface: a mutation the client
// never got an ack for is allowed to vanish — but one it DID get an
// ack for must not. (The positive half is the round-trip test; this
// one pins that recovery does not invent state: an empty journal
// restores an empty plane.)
func TestJournalEmptyBoot(t *testing.T) {
	dir := t.TempDir()
	_, _, _, log := newDurablePlane(t, dir, 0)
	log.Close()
	_, _, c, log2 := recoverPlane(t, dir, 0)
	defer log2.Close()
	apps, err := c.Apps()
	if err != nil {
		t.Fatal(err)
	}
	if len(apps) != 0 {
		t.Fatalf("empty journal recovered %d apps", len(apps))
	}
}

// TestJournaledMutationsUnderConcurrency: concurrent registers and
// detaches against the journaled plane all recover — the out-of-mutex
// append design must not lose or misorder same-name records.
func TestJournaledMutationsUnderConcurrency(t *testing.T) {
	dir := t.TempDir()
	_, s, c, log := newDurablePlane(t, dir, 64)
	if err := s.AdmitBackend(testBackendSpec("b0")); err != nil {
		t.Fatal(err)
	}
	const tenants = 24
	errs := make(chan error, tenants)
	for i := 0; i < tenants; i++ {
		go func(i int) {
			name := fmt.Sprintf("t%02d", i)
			if _, err := c.Register(AppSpec{Name: name}); err != nil {
				errs <- err
				return
			}
			if i%3 == 0 {
				errs <- c.Detach(name)
				return
			}
			errs <- nil
		}(i)
	}
	deadline := time.After(30 * time.Second)
	for i := 0; i < tenants; i++ {
		select {
		case err := <-errs:
			if err != nil {
				t.Fatal(err)
			}
		case <-deadline:
			t.Fatal("concurrent mutations timed out")
		}
	}
	log.Close()
	_, _, c2, log2 := recoverPlane(t, dir, 64)
	defer log2.Close()
	apps, err := c2.Apps()
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := 0; i < tenants; i++ {
		if i%3 != 0 {
			want++
		}
	}
	if len(apps) != want {
		t.Fatalf("recovered %d apps, want %d", len(apps), want)
	}
}
