package controlplane

import "encoding/json"

// Wire types of the v1 HTTP/JSON control-plane API. Remote applications
// cannot ship Go callbacks, so the adaptation policy an AppSpec carries
// is declarative: a discriminated PolicySpec that is either a level
// ladder (the built-in step-down policy) or DSL aspect source the
// server compiles to a VM-backed kernel policy at admission
// (internal/policyc). SLA goals over streamed observations and a
// synthetic epoch workload (task count × roofline coordinates) round
// out the spec.

// GoalSpec is one SLA clause (monitor.Goal over the wire).
type GoalSpec struct {
	Metric string `json:"metric"`
	// Stat selects the windowed statistic the bound applies to: "mean"
	// (default), "p95" or "max".
	Stat string `json:"stat,omitempty"`
	// Relation is "at_most" (default) or "at_least".
	Relation string  `json:"relation,omitempty"`
	Target   float64 `json:"target"`
}

// WorkloadSpec declares the synthetic workload the app offers the
// shared manager each epoch.
type WorkloadSpec struct {
	// Tasks is the number of tasks per epoch (default 1).
	Tasks int `json:"tasks,omitempty"`
	// GFlop is each task's compute volume (default 1).
	GFlop float64 `json:"gflop,omitempty"`
	// MemGB is each task's memory traffic (default GFlop/8).
	MemGB float64 `json:"mem_gb,omitempty"`
}

// AppSpec registers one remote application (POST /v1/apps).
type AppSpec struct {
	// Name must be addressable as a URL path segment: 1-128 characters
	// of [A-Za-z0-9._-], not "." or "..".
	Name string `json:"name"`
	// Window is the samples-per-metric window size (default 32).
	Window int `json:"window,omitempty"`
	// Debounce is the consecutive-violation count before the policy
	// fires (default 2).
	Debounce int          `json:"debounce,omitempty"`
	Goals    []GoalSpec   `json:"goals,omitempty"`
	Workload WorkloadSpec `json:"workload,omitempty"`
	// Policy is the app's adaptation policy, a discriminated object:
	// {"type":"ladder","levels":[...]} or
	// {"type":"dsl","source":"aspectdef ...","params":{...}}.
	// Omitted means no policy (the app never adapts).
	Policy *PolicySpec `json:"policy,omitempty"`
	// Levels was the pre-redesign spelling of
	// {"policy":{"type":"ladder","levels":[...]}}. The alias shipped for
	// one release and is now rejected: setting it is a 400 pointing at
	// policy.levels. The field stays declared so the rejection is a
	// deliberate message instead of DisallowUnknownFields noise.
	Levels []float64 `json:"levels,omitempty"`
	// Quota is the app's ingress rate limit. Omitted means unlimited.
	Quota *QuotaSpec `json:"quota,omitempty"`
	// Placement optionally names the backend this app prefers — the
	// kernel's placement hint. Must name a registered backend (400
	// otherwise); all shipped placement policies pin a hinted app to
	// its backend and never steer it away.
	Placement string `json:"placement,omitempty"`
}

// QuotaSpec is a per-tenant ingress token bucket: a sustained
// samples-per-second rate plus a burst allowance. Every observation
// path — JSON, binary one-shot and the stream — charges the same
// bucket one token per sample; an over-quota batch is refused whole
// with 429 ("backpressure") and a Retry-After header, never admitted
// partially. The quota is part of the AppSpec, so it is journaled and
// survives restarts with the rest of the registration.
type QuotaSpec struct {
	// Rate is the sustained refill rate in samples per second.
	Rate float64 `json:"rate"`
	// Burst is the bucket depth in samples (0 selects max(Rate, 1):
	// roughly one second of headroom).
	Burst float64 `json:"burst,omitempty"`
}

// Policy type discriminators (PolicySpec.Type).
const (
	// PolicyLadder is the built-in step-down policy: the app starts at
	// Levels[0]; every debounced SLA firing moves one level to the
	// right; the active level scales each task's compute volume AND
	// memory traffic together (the task's roofline intensity is
	// preserved — less work, not different work). A descending ladder
	// (e.g. [1, 0.5, 0.25]) sheds work under violation, like the
	// navigation server's fidelity ladder.
	PolicyLadder = "ladder"
	// PolicyDSL compiles LARA-style aspect source into a VM-backed
	// policy at admission. The compiled policy reads metric summaries
	// (<metric>.<stat>) and the SLA violation magnitude, and writes the
	// "level" knob (the workload multiplier the ladder also drives) via
	// do Set/Scale. Compile errors are a 400 whose error detail carries
	// line/col diagnostics.
	PolicyDSL = "dsl"
)

// PolicySpec is the discriminated adaptation-policy object, one arm
// per Type. It is both the AppSpec field and the body of
// PUT /v1/apps/{id}/policy (hot swap at a generation boundary).
type PolicySpec struct {
	// Type is "ladder" or "dsl".
	Type string `json:"type"`
	// Levels is the ladder arm: the workload-multiplier ladder, most
	// expensive first.
	Levels []float64 `json:"levels,omitempty"`
	// Source is the dsl arm: DSL aspect source (aspectdef ... end). The
	// first aspect is the policy entry point; its inputs are bound from
	// Params.
	Source string `json:"source,omitempty"`
	// Params bind the entry aspect's inputs (dsl arm only). Missing
	// inputs bind to 0.
	Params map[string]float64 `json:"params,omitempty"`
}

// PolicyStatus reports the active policy on AppStatus — the read-side
// shape of the spec plus the compile verdict for dsl policies.
type PolicyStatus struct {
	Type   string    `json:"type"`
	Levels []float64 `json:"levels,omitempty"`
	// SourceHash is "sha256:<hex>" over the dsl source, so a tenant can
	// confirm which revision is live without the server echoing the
	// program back.
	SourceHash string `json:"source_hash,omitempty"`
	// Class is the static-analysis verdict for dsl policies: "inline"
	// (pure and bounded, runs on the epoch tick path) or "isolated"
	// (runs on its own goroutine with a decision deadline).
	Class string `json:"class,omitempty"`
	// ClassReason explains the classification.
	ClassReason string `json:"class_reason,omitempty"`
	// Swaps counts successful PUT /v1/apps/{id}/policy calls.
	Swaps int64 `json:"swaps,omitempty"`
	// Execution accounting for dsl policies (zero/omitted for ladder):
	// Decisions counts completed VM runs; FuelUsedLast/FuelUsedMax are
	// the most recent and worst per-decision fuel spends against
	// FuelBudget — a FuelUsedMax near the budget is the early warning
	// before a quarantine trip.
	Decisions    int64 `json:"decisions,omitempty"`
	FuelBudget   int64 `json:"fuel_budget,omitempty"`
	FuelUsedLast int64 `json:"fuel_used_last,omitempty"`
	FuelUsedMax  int64 `json:"fuel_used_max,omitempty"`
	// DeadlineDrops counts decisions an isolated policy discarded as
	// staler than DecisionDeadlineMS when the tick collected them.
	DeadlineDrops      int64 `json:"deadline_drops,omitempty"`
	DecisionDeadlineMS int64 `json:"decision_deadline_ms,omitempty"`
}

// BackendSpec declares one resource-manager backend — a simulated
// cluster under its own rtrm.Manager — to a running kernel
// (POST /v1/backends). Backends join the routing set at the next epoch
// boundary; DELETE /v1/backends/{id} drains and removes one.
type BackendSpec struct {
	// Name must be addressable like an app name: 1-128 characters of
	// [A-Za-z0-9._-], not "." or "..".
	Name string `json:"name"`
	// Nodes is the cluster size (0 selects the default, 8).
	Nodes int `json:"nodes,omitempty"`
	// Hetero alternates heterogeneous/homogeneous nodes when true;
	// false builds an all-homogeneous site.
	Hetero bool `json:"hetero,omitempty"`
	// AmbientC is the site's ambient temperature in [-40, 60].
	// 0 is the unset sentinel and selects the default (22); a site at
	// exactly 0C is not expressible — declare 0.01 instead.
	AmbientC float64 `json:"ambient_c,omitempty"`
	// CapFrac is the facility power cap as a fraction of peak, in
	// (0, 1]. 0 selects the default (0.9); negative values are
	// rejected.
	CapFrac float64 `json:"cap_frac,omitempty"`
	// Vary is the component manufacturing variability, in (0, 1).
	// 0 is the unset sentinel and selects the default (0.15); declare
	// a tiny positive value for a variability-free site. Negative
	// values are rejected.
	Vary float64 `json:"vary,omitempty"`
	// Seed seeds the site's RNG (0 selects the default, 1).
	Seed uint64 `json:"seed,omitempty"`
}

// BackendStatus is the read side of one backend (GET /v1/backends,
// and embedded per-backend in GET /v1/epochs).
type BackendStatus struct {
	Name string `json:"name"`
	// Apps is the number of applications placed on the backend.
	Apps int `json:"apps"`
	// Seq is the backend's epoch sequence number: it advances on every
	// commit this backend runs. Under a barrier-free kernel protocol
	// backends advance independently, so stream consumers key change
	// detection on the seq vector, not on the global epoch counter.
	Seq int64 `json:"seq"`
	// Health is the backend's failure-domain health: "healthy",
	// "degraded" (a commit overran the kernel's backend timeout) or
	// "failed" (the backend panicked mid-commit). Degraded and failed
	// backends take no new work; their apps evacuate to healthy ones.
	Health string `json:"health,omitempty"`
	// State is the backend's lifecycle state: "active", "draining"
	// (DELETE in progress, apps evacuating) or "drained". Removed
	// backends disappear from listings entirely.
	State string `json:"state,omitempty"`
	// LastError carries the most recent failure reason (captured panic,
	// deadline overrun). Empty while healthy.
	LastError string `json:"last_error,omitempty"`
	// Epochs is the number of control epochs this backend has run
	// (backends only run when apps placed on them contribute).
	Epochs        int     `json:"epochs"`
	WorkGFlop     float64 `json:"work_gflop"`
	DeferredGFlop float64 `json:"deferred_gflop"`
	EnergyJ       float64 `json:"energy_j"`
	ThermalEvents int     `json:"thermal_events"`
	CapDemotions  int     `json:"cap_demotions"`
}

// Observation is one streamed telemetry sample.
type Observation struct {
	Metric string  `json:"metric"`
	Value  float64 `json:"value"`
}

// ObservationBatch is the body of POST /v1/apps/{id}/observations.
type ObservationBatch struct {
	Samples []Observation `json:"samples"`
}

// ObservationAck acknowledges an accepted batch.
type ObservationAck struct {
	Accepted int `json:"accepted"`
}

// StreamAck is the terminal response of POST /v1/stream: totals for
// the whole stream, written when the client closes its send side.
type StreamAck struct {
	Accepted int64 `json:"accepted"`
	Frames   int64 `json:"frames"`
}

// AppStatus is the read side of one app (GET /v1/apps/{id}).
type AppStatus struct {
	Name        string  `json:"name"`
	Ticks       int64   `json:"ticks"`
	Fires       int64   `json:"fires"`
	Adaptations int64   `json:"adaptations"`
	TotalGFlop  float64 `json:"total_gflop"`
	// Samples counts observations accepted over HTTP for this app.
	Samples int64 `json:"samples"`
	// Level is the app's active workload level (1 when no ladder).
	Level float64 `json:"level"`
	// Backend is the backend the app is currently placed on ("" until
	// the first placement, i.e. before the app's first epoch boundary).
	Backend string `json:"backend,omitempty"`
	// Placement echoes the spec's placement hint (the backend the app
	// asked for; Backend is where it actually runs right now).
	Placement string `json:"placement,omitempty"`
	// Quota echoes the spec's ingress quota. Omitted means unlimited.
	Quota *QuotaSpec `json:"quota,omitempty"`
	// Policy is the active adaptation policy in canonical shape (also
	// for apps registered through the deprecated levels alias). Omitted
	// when the app has no policy.
	Policy *PolicyStatus `json:"policy,omitempty"`
	// Error is the app's most recent failure note: the captured panic of
	// a quarantined app (a tenant panic is contained to its app, never
	// the kernel), or a dropped-epoch note from a no-healthy-backends
	// write-off. Empty while clean.
	Error string `json:"error,omitempty"`
}

// BackendEventBody is the payload of one SSE "backend" event on
// GET /v1/epochs/stream: a backend state transition (health change or
// lifecycle move), delivered immediately, outside the epoch throttle.
type BackendEventBody struct {
	Backend string `json:"backend"`
	Health  string `json:"health"`
	State   string `json:"state"`
	Reason  string `json:"reason,omitempty"`
}

// EpochsStatus is the kernel-wide epoch telemetry (GET /v1/epochs).
type EpochsStatus struct {
	// Epochs counts manager epochs run since the kernel was built.
	Epochs int64 `json:"epochs"`
	// Protocol is the kernel's epoch commit protocol ("barrier",
	// "clock" or "optimistic" — see the serve command's -protocol flag).
	Protocol string `json:"protocol,omitempty"`
	// Generation is the membership epoch: attach/detach count so far.
	Generation int64 `json:"generation"`
	// ServedGeneration is the membership epoch the concurrent loops
	// currently serve; it trails Generation briefly after a change.
	ServedGeneration int64 `json:"served_generation"`
	// Apps is the current number of attached applications.
	Apps int `json:"apps"`
	// TotalsPerApp is cumulative offered GFlop per app (detached apps
	// keep their entries).
	TotalsPerApp map[string]float64 `json:"totals_per_app"`
	// Manager aggregates, merged across every backend.
	WorkGFlop     float64 `json:"work_gflop"`
	DeferredGFlop float64 `json:"deferred_gflop"`
	EnergyJ       float64 `json:"energy_j"`
	// Backends is the per-backend breakdown, in registration order.
	Backends []BackendStatus `json:"backends"`
}

// Health is the liveness probe (GET /healthz). Status is "ok" while at
// least one backend is schedulable and "degraded" otherwise — the
// plane still answers, but epochs are parked or being written off.
type Health struct {
	Status           string `json:"status"`
	Running          bool   `json:"running"`
	Apps             int    `json:"apps"`
	Backends         int    `json:"backends"`
	BackendsHealthy  int    `json:"backends_healthy"`
	Epochs           int64  `json:"epochs"`
	Generation       int64  `json:"generation"`
	ServedGeneration int64  `json:"served_generation"`
}

// Error codes carried in the error envelope. They partition the HTTP
// statuses the API uses, so clients branch on a stable string instead
// of parsing messages.
const (
	// CodeBadRequest: malformed body, spec validation failure (400).
	CodeBadRequest = "bad_request"
	// CodeCompileError: DSL policy source failed to compile (400); the
	// envelope detail is an array of {line, col, msg} diagnostics.
	CodeCompileError = "compile_error"
	// CodeUnauthorized: missing or invalid bearer token (401).
	CodeUnauthorized = "unauthorized"
	// CodeNotFound: unknown app or backend (404).
	CodeNotFound = "not_found"
	// CodeConflict: duplicate app, draining or last backend (409).
	CodeConflict = "conflict"
	// CodeBackpressure: inbox pending cap reached, retry later (429).
	CodeBackpressure = "backpressure"
	// CodeInternal: everything else (5xx).
	CodeInternal = "internal"
)

// ErrorInfo is the typed error payload: a stable machine-readable
// code, a human-readable message, and optional structured detail
// (compile diagnostics ride here as [{line, col, msg}, ...]).
type ErrorInfo struct {
	Code    string          `json:"code"`
	Message string          `json:"message"`
	Detail  json.RawMessage `json:"detail,omitempty"`
}

// ErrorBody is the JSON error envelope every non-2xx response carries:
// {"error": {"code", "message", "detail"}}.
type ErrorBody struct {
	Error ErrorInfo `json:"error"`
}

// UnmarshalJSON accepts both the envelope and the pre-redesign flat
// shape {"error": "message"}, so a new client talking to an old plane
// (one release of skew) still surfaces the message.
func (b *ErrorBody) UnmarshalJSON(data []byte) error {
	var env struct {
		Error ErrorInfo `json:"error"`
	}
	if err := json.Unmarshal(data, &env); err == nil {
		b.Error = env.Error
		return nil
	}
	var legacy struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(data, &legacy); err != nil {
		return err
	}
	b.Error = ErrorInfo{Message: legacy.Error}
	return nil
}
