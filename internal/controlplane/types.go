package controlplane

// Wire types of the v1 HTTP/JSON control-plane API. Remote applications
// cannot ship Go callbacks, so the declarative subset an AppSpec can
// express over the wire is: SLA goals over streamed observations, a
// synthetic epoch workload (task count × roofline coordinates), and an
// optional level ladder the server turns into a built-in step-down
// policy (each SLA firing steps one level down; each level scales the
// workload's compute volume).

// GoalSpec is one SLA clause (monitor.Goal over the wire).
type GoalSpec struct {
	Metric string `json:"metric"`
	// Stat selects the windowed statistic the bound applies to: "mean"
	// (default), "p95" or "max".
	Stat string `json:"stat,omitempty"`
	// Relation is "at_most" (default) or "at_least".
	Relation string  `json:"relation,omitempty"`
	Target   float64 `json:"target"`
}

// WorkloadSpec declares the synthetic workload the app offers the
// shared manager each epoch.
type WorkloadSpec struct {
	// Tasks is the number of tasks per epoch (default 1).
	Tasks int `json:"tasks,omitempty"`
	// GFlop is each task's compute volume (default 1).
	GFlop float64 `json:"gflop,omitempty"`
	// MemGB is each task's memory traffic (default GFlop/8).
	MemGB float64 `json:"mem_gb,omitempty"`
}

// AppSpec registers one remote application (POST /v1/apps).
type AppSpec struct {
	// Name must be addressable as a URL path segment: 1-128 characters
	// of [A-Za-z0-9._-], not "." or "..".
	Name string `json:"name"`
	// Window is the samples-per-metric window size (default 32).
	Window int `json:"window,omitempty"`
	// Debounce is the consecutive-violation count before the policy
	// fires (default 2).
	Debounce int          `json:"debounce,omitempty"`
	Goals    []GoalSpec   `json:"goals,omitempty"`
	Workload WorkloadSpec `json:"workload,omitempty"`
	// Levels, when non-empty, arms the built-in step-down policy:
	// the app starts at Levels[0]; every debounced SLA firing moves one
	// level to the right; the active level scales each task's compute
	// volume AND memory traffic together (the task's roofline intensity
	// is preserved — less work, not different work). A descending
	// ladder (e.g. [1, 0.5, 0.25]) sheds work under violation, like
	// the navigation server's fidelity ladder.
	Levels []float64 `json:"levels,omitempty"`
}

// Observation is one streamed telemetry sample.
type Observation struct {
	Metric string  `json:"metric"`
	Value  float64 `json:"value"`
}

// ObservationBatch is the body of POST /v1/apps/{id}/observations.
type ObservationBatch struct {
	Samples []Observation `json:"samples"`
}

// ObservationAck acknowledges an accepted batch.
type ObservationAck struct {
	Accepted int `json:"accepted"`
}

// StreamAck is the terminal response of POST /v1/stream: totals for
// the whole stream, written when the client closes its send side.
type StreamAck struct {
	Accepted int64 `json:"accepted"`
	Frames   int64 `json:"frames"`
}

// AppStatus is the read side of one app (GET /v1/apps/{id}).
type AppStatus struct {
	Name        string  `json:"name"`
	Ticks       int64   `json:"ticks"`
	Fires       int64   `json:"fires"`
	Adaptations int64   `json:"adaptations"`
	TotalGFlop  float64 `json:"total_gflop"`
	// Samples counts observations accepted over HTTP for this app.
	Samples int64 `json:"samples"`
	// Level is the app's active workload level (1 when no ladder).
	Level float64 `json:"level"`
}

// EpochsStatus is the kernel-wide epoch telemetry (GET /v1/epochs).
type EpochsStatus struct {
	// Epochs counts manager epochs run since the kernel was built.
	Epochs int64 `json:"epochs"`
	// Generation is the membership epoch: attach/detach count so far.
	Generation int64 `json:"generation"`
	// ServedGeneration is the membership epoch the concurrent loops
	// currently serve; it trails Generation briefly after a change.
	ServedGeneration int64 `json:"served_generation"`
	// Apps is the current number of attached applications.
	Apps int `json:"apps"`
	// TotalsPerApp is cumulative offered GFlop per app (detached apps
	// keep their entries).
	TotalsPerApp map[string]float64 `json:"totals_per_app"`
	// Manager aggregates from the shared rtrm.Manager.
	WorkGFlop     float64 `json:"work_gflop"`
	DeferredGFlop float64 `json:"deferred_gflop"`
	EnergyJ       float64 `json:"energy_j"`
}

// Health is the liveness probe (GET /healthz).
type Health struct {
	Status           string `json:"status"`
	Running          bool   `json:"running"`
	Apps             int    `json:"apps"`
	Epochs           int64  `json:"epochs"`
	Generation       int64  `json:"generation"`
	ServedGeneration int64  `json:"served_generation"`
}

// ErrorBody is the JSON error envelope every non-2xx response carries.
type ErrorBody struct {
	Error string `json:"error"`
}
