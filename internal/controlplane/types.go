package controlplane

// Wire types of the v1 HTTP/JSON control-plane API. Remote applications
// cannot ship Go callbacks, so the declarative subset an AppSpec can
// express over the wire is: SLA goals over streamed observations, a
// synthetic epoch workload (task count × roofline coordinates), and an
// optional level ladder the server turns into a built-in step-down
// policy (each SLA firing steps one level down; each level scales the
// workload's compute volume).

// GoalSpec is one SLA clause (monitor.Goal over the wire).
type GoalSpec struct {
	Metric string `json:"metric"`
	// Stat selects the windowed statistic the bound applies to: "mean"
	// (default), "p95" or "max".
	Stat string `json:"stat,omitempty"`
	// Relation is "at_most" (default) or "at_least".
	Relation string  `json:"relation,omitempty"`
	Target   float64 `json:"target"`
}

// WorkloadSpec declares the synthetic workload the app offers the
// shared manager each epoch.
type WorkloadSpec struct {
	// Tasks is the number of tasks per epoch (default 1).
	Tasks int `json:"tasks,omitempty"`
	// GFlop is each task's compute volume (default 1).
	GFlop float64 `json:"gflop,omitempty"`
	// MemGB is each task's memory traffic (default GFlop/8).
	MemGB float64 `json:"mem_gb,omitempty"`
}

// AppSpec registers one remote application (POST /v1/apps).
type AppSpec struct {
	// Name must be addressable as a URL path segment: 1-128 characters
	// of [A-Za-z0-9._-], not "." or "..".
	Name string `json:"name"`
	// Window is the samples-per-metric window size (default 32).
	Window int `json:"window,omitempty"`
	// Debounce is the consecutive-violation count before the policy
	// fires (default 2).
	Debounce int          `json:"debounce,omitempty"`
	Goals    []GoalSpec   `json:"goals,omitempty"`
	Workload WorkloadSpec `json:"workload,omitempty"`
	// Levels, when non-empty, arms the built-in step-down policy:
	// the app starts at Levels[0]; every debounced SLA firing moves one
	// level to the right; the active level scales each task's compute
	// volume AND memory traffic together (the task's roofline intensity
	// is preserved — less work, not different work). A descending
	// ladder (e.g. [1, 0.5, 0.25]) sheds work under violation, like
	// the navigation server's fidelity ladder.
	Levels []float64 `json:"levels,omitempty"`
	// Placement optionally names the backend this app prefers — the
	// kernel's placement hint. Must name a registered backend (400
	// otherwise); all shipped placement policies pin a hinted app to
	// its backend and never steer it away.
	Placement string `json:"placement,omitempty"`
}

// BackendSpec declares one resource-manager backend — a simulated
// cluster under its own rtrm.Manager — to a running kernel
// (POST /v1/backends). Backends join the routing set at the next epoch
// boundary; DELETE /v1/backends/{id} drains and removes one.
type BackendSpec struct {
	// Name must be addressable like an app name: 1-128 characters of
	// [A-Za-z0-9._-], not "." or "..".
	Name string `json:"name"`
	// Nodes is the cluster size (0 selects the default, 8).
	Nodes int `json:"nodes,omitempty"`
	// Hetero alternates heterogeneous/homogeneous nodes when true;
	// false builds an all-homogeneous site.
	Hetero bool `json:"hetero,omitempty"`
	// AmbientC is the site's ambient temperature in [-40, 60].
	// 0 is the unset sentinel and selects the default (22); a site at
	// exactly 0C is not expressible — declare 0.01 instead.
	AmbientC float64 `json:"ambient_c,omitempty"`
	// CapFrac is the facility power cap as a fraction of peak, in
	// (0, 1]. 0 selects the default (0.9); negative values are
	// rejected.
	CapFrac float64 `json:"cap_frac,omitempty"`
	// Vary is the component manufacturing variability, in (0, 1).
	// 0 is the unset sentinel and selects the default (0.15); declare
	// a tiny positive value for a variability-free site. Negative
	// values are rejected.
	Vary float64 `json:"vary,omitempty"`
	// Seed seeds the site's RNG (0 selects the default, 1).
	Seed uint64 `json:"seed,omitempty"`
}

// BackendStatus is the read side of one backend (GET /v1/backends,
// and embedded per-backend in GET /v1/epochs).
type BackendStatus struct {
	Name string `json:"name"`
	// Apps is the number of applications placed on the backend.
	Apps int `json:"apps"`
	// Seq is the backend's epoch sequence number: it advances on every
	// commit this backend runs. Under a barrier-free kernel protocol
	// backends advance independently, so stream consumers key change
	// detection on the seq vector, not on the global epoch counter.
	Seq int64 `json:"seq"`
	// Health is the backend's failure-domain health: "healthy",
	// "degraded" (a commit overran the kernel's backend timeout) or
	// "failed" (the backend panicked mid-commit). Degraded and failed
	// backends take no new work; their apps evacuate to healthy ones.
	Health string `json:"health,omitempty"`
	// State is the backend's lifecycle state: "active", "draining"
	// (DELETE in progress, apps evacuating) or "drained". Removed
	// backends disappear from listings entirely.
	State string `json:"state,omitempty"`
	// LastError carries the most recent failure reason (captured panic,
	// deadline overrun). Empty while healthy.
	LastError string `json:"last_error,omitempty"`
	// Epochs is the number of control epochs this backend has run
	// (backends only run when apps placed on them contribute).
	Epochs        int     `json:"epochs"`
	WorkGFlop     float64 `json:"work_gflop"`
	DeferredGFlop float64 `json:"deferred_gflop"`
	EnergyJ       float64 `json:"energy_j"`
	ThermalEvents int     `json:"thermal_events"`
	CapDemotions  int     `json:"cap_demotions"`
}

// Observation is one streamed telemetry sample.
type Observation struct {
	Metric string  `json:"metric"`
	Value  float64 `json:"value"`
}

// ObservationBatch is the body of POST /v1/apps/{id}/observations.
type ObservationBatch struct {
	Samples []Observation `json:"samples"`
}

// ObservationAck acknowledges an accepted batch.
type ObservationAck struct {
	Accepted int `json:"accepted"`
}

// StreamAck is the terminal response of POST /v1/stream: totals for
// the whole stream, written when the client closes its send side.
type StreamAck struct {
	Accepted int64 `json:"accepted"`
	Frames   int64 `json:"frames"`
}

// AppStatus is the read side of one app (GET /v1/apps/{id}).
type AppStatus struct {
	Name        string  `json:"name"`
	Ticks       int64   `json:"ticks"`
	Fires       int64   `json:"fires"`
	Adaptations int64   `json:"adaptations"`
	TotalGFlop  float64 `json:"total_gflop"`
	// Samples counts observations accepted over HTTP for this app.
	Samples int64 `json:"samples"`
	// Level is the app's active workload level (1 when no ladder).
	Level float64 `json:"level"`
	// Backend is the backend the app is currently placed on ("" until
	// the first placement, i.e. before the app's first epoch boundary).
	Backend string `json:"backend,omitempty"`
	// Error is the app's most recent failure note: the captured panic of
	// a quarantined app (a tenant panic is contained to its app, never
	// the kernel), or a dropped-epoch note from a no-healthy-backends
	// write-off. Empty while clean.
	Error string `json:"error,omitempty"`
}

// BackendEventBody is the payload of one SSE "backend" event on
// GET /v1/epochs/stream: a backend state transition (health change or
// lifecycle move), delivered immediately, outside the epoch throttle.
type BackendEventBody struct {
	Backend string `json:"backend"`
	Health  string `json:"health"`
	State   string `json:"state"`
	Reason  string `json:"reason,omitempty"`
}

// EpochsStatus is the kernel-wide epoch telemetry (GET /v1/epochs).
type EpochsStatus struct {
	// Epochs counts manager epochs run since the kernel was built.
	Epochs int64 `json:"epochs"`
	// Protocol is the kernel's epoch commit protocol ("barrier",
	// "clock" or "optimistic" — see the serve command's -protocol flag).
	Protocol string `json:"protocol,omitempty"`
	// Generation is the membership epoch: attach/detach count so far.
	Generation int64 `json:"generation"`
	// ServedGeneration is the membership epoch the concurrent loops
	// currently serve; it trails Generation briefly after a change.
	ServedGeneration int64 `json:"served_generation"`
	// Apps is the current number of attached applications.
	Apps int `json:"apps"`
	// TotalsPerApp is cumulative offered GFlop per app (detached apps
	// keep their entries).
	TotalsPerApp map[string]float64 `json:"totals_per_app"`
	// Manager aggregates, merged across every backend.
	WorkGFlop     float64 `json:"work_gflop"`
	DeferredGFlop float64 `json:"deferred_gflop"`
	EnergyJ       float64 `json:"energy_j"`
	// Backends is the per-backend breakdown, in registration order.
	Backends []BackendStatus `json:"backends"`
}

// Health is the liveness probe (GET /healthz). Status is "ok" while at
// least one backend is schedulable and "degraded" otherwise — the
// plane still answers, but epochs are parked or being written off.
type Health struct {
	Status           string `json:"status"`
	Running          bool   `json:"running"`
	Apps             int    `json:"apps"`
	Backends         int    `json:"backends"`
	BackendsHealthy  int    `json:"backends_healthy"`
	Epochs           int64  `json:"epochs"`
	Generation       int64  `json:"generation"`
	ServedGeneration int64  `json:"served_generation"`
}

// ErrorBody is the JSON error envelope every non-2xx response carries.
type ErrorBody struct {
	Error string `json:"error"`
}
