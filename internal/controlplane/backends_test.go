package controlplane

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/monitor"
	"repro/internal/runtime"
)

// newMultiPlane spins a control plane over a kernel with two declared
// backends ("cool" at 15C deferring nothing, "hot" at 40C deferring
// ~35% through MS3) and the given placement policy.
func newMultiPlane(t *testing.T, placement runtime.Placement, opts ...ServerOption) (*runtime.Kernel, *Client) {
	t.Helper()
	k := runtime.NewKernel(
		BuildBackend(BackendSpec{Name: "cool", Nodes: 4, AmbientC: 15}),
	)
	if err := k.AddBackend("hot", BuildBackend(BackendSpec{Name: "hot", Nodes: 4, AmbientC: 40})); err != nil {
		t.Fatal(err)
	}
	if placement != nil {
		k.SetPlacement(placement)
	}
	srv := httptest.NewServer(NewServer(k, opts...))
	t.Cleanup(srv.Close)
	return k, NewClient(srv.URL, srv.Client())
}

// TestBackendsAPI covers the backend surface: listing, live creation,
// the placement hint round-trip, per-backend stats in /v1/epochs, and
// the validation failures.
func TestBackendsAPI(t *testing.T) {
	k, c := newMultiPlane(t, nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := k.Start(ctx, runtime.Options{Flush: 5 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	defer k.Stop()

	bks, err := c.Backends()
	if err != nil {
		t.Fatal(err)
	}
	if len(bks) != 2 || bks[0].Name != "b0" || bks[1].Name != "hot" {
		t.Fatalf("backends: %+v", bks)
	}
	if h, err := c.Health(); err != nil || h.Backends != 2 {
		t.Fatalf("health backends: %+v, %v", h, err)
	}

	// A tenant pinned to the hot site reports its backend once placed.
	if _, err := c.Register(AppSpec{
		Name:      "pinned",
		Placement: "hot",
		Workload:  WorkloadSpec{Tasks: 2, GFlop: 4},
	}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "pinned tenant placed", func() bool {
		st, err := c.App("pinned")
		return err == nil && st.Backend == "hot"
	})
	waitFor(t, "hot backend worked", func() bool {
		ep, err := c.Epochs()
		if err != nil || len(ep.Backends) != 2 {
			return false
		}
		hot := ep.Backends[1]
		return hot.Name == "hot" && hot.Apps == 1 && hot.WorkGFlop+hot.DeferredGFlop > 0
	})

	// Live backend creation joins the routing set and serves new pins.
	st, err := c.AddBackend(BackendSpec{Name: "edge", Nodes: 2, AmbientC: 20})
	if err != nil {
		t.Fatal(err)
	}
	if st.Name != "edge" {
		t.Fatalf("created backend: %+v", st)
	}
	if _, err := c.AddBackend(BackendSpec{Name: "edge"}); err == nil {
		t.Error("duplicate backend name accepted")
	} else if api := err.(*APIError); api.Status != http.StatusConflict {
		t.Errorf("duplicate backend status %d, want 409", api.Status)
	}
	if _, err := c.Register(AppSpec{Name: "edgy", Placement: "edge"}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "edge tenant placed", func() bool {
		st, err := c.App("edgy")
		return err == nil && st.Backend == "edge"
	})

	// Validation: unknown placement hints and hostile backend specs.
	for _, tc := range []struct {
		name string
		spec AppSpec
	}{
		{"unknown placement", AppSpec{Name: "x", Placement: "nowhere"}},
		{"bad placement name", AppSpec{Name: "x", Placement: "a/b"}},
	} {
		if _, err := c.Register(tc.spec); err == nil {
			t.Errorf("%s accepted", tc.name)
		} else if api := err.(*APIError); api.Status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, api.Status)
		}
	}
	for _, spec := range []BackendSpec{
		{Name: ""},
		{Name: "ok", Nodes: 100000},
		{Name: "ok", Nodes: -1},
		{Name: "ok", AmbientC: 500},
		{Name: "ok", CapFrac: 2},
		{Name: "ok", CapFrac: -0.5},
		{Name: "ok", Vary: 1.5},
		{Name: "ok", Vary: -0.1},
	} {
		if _, err := c.AddBackend(spec); err == nil {
			t.Errorf("backend spec %+v accepted", spec)
		} else if api := err.(*APIError); api.Status != http.StatusBadRequest {
			t.Errorf("backend spec %+v: status %d, want 400", spec, api.Status)
		}
	}
}

// TestSLAAwareSteeringOverHTTP: the full multi-backend story through
// the API — least-loaded placement puts one tenant on the hot site,
// SLA-aware steering migrates it off at a generation boundary, and the
// move is visible in the tenant's reported backend.
func TestSLAAwareSteeringOverHTTP(t *testing.T) {
	k, c := newMultiPlane(t, &runtime.SLAAware{MaxDeferredFrac: 0.05, Patience: 2, Cooldown: 2})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := k.Start(ctx, runtime.Options{Flush: 2 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	defer k.Stop()

	for _, name := range []string{"t0", "t1"} {
		if _, err := c.Register(AppSpec{Name: name, Workload: WorkloadSpec{Tasks: 2, GFlop: 4}}); err != nil {
			t.Fatal(err)
		}
	}
	// Least-loaded spreads t0/t1 across cool+hot; steering then drains
	// the hot site. End state: both tenants report the cool backend.
	waitFor(t, "steering drained the hot site", func() bool {
		for _, name := range []string{"t0", "t1"} {
			st, err := c.App(name)
			if err != nil || st.Backend != "b0" {
				return false
			}
		}
		return true
	})
	// The hot backend really served work before the migration.
	ep, err := c.Epochs()
	if err != nil {
		t.Fatal(err)
	}
	hot := ep.Backends[1]
	if hot.WorkGFlop+hot.DeferredGFlop <= 0 {
		t.Errorf("hot backend never ran: %+v", hot)
	}
	if err := k.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestEpochStream: the SSE feed replaces polling — events arrive as
// epochs advance, carry the full EpochsStatus payload, and the stream
// ends cleanly when the consumer stops.
func TestEpochStream(t *testing.T) {
	k, c := newMultiPlane(t, nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := k.Start(ctx, runtime.Options{Flush: 5 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	defer k.Stop()
	if _, err := c.Register(AppSpec{Name: "ticker", Workload: WorkloadSpec{Tasks: 1, GFlop: 2}}); err != nil {
		t.Fatal(err)
	}

	var events []EpochsStatus
	err := c.StreamEpochs(ctx, 5*time.Millisecond, func(st EpochsStatus) bool {
		events = append(events, st)
		return len(events) < 3
	})
	if err != nil {
		t.Fatalf("epoch stream: %v", err)
	}
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].Epochs <= events[i-1].Epochs {
			t.Errorf("event %d did not advance: %d -> %d", i, events[i-1].Epochs, events[i].Epochs)
		}
	}
	last := events[len(events)-1]
	if len(last.Backends) != 2 || last.Apps != 1 {
		t.Errorf("event payload incomplete: %+v", last)
	}

	// A cancelled consumer surfaces ctx.Err, not a decode error.
	cctx, ccancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- c.StreamEpochs(cctx, time.Millisecond, func(EpochsStatus) bool { return true })
	}()
	time.Sleep(20 * time.Millisecond)
	ccancel()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "context canceled") {
			t.Errorf("cancelled stream returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled stream never returned")
	}

	// Bad throttle values are rejected.
	resp, err := http.Get(strings.TrimRight(c.base, "/") + "/v1/epochs/stream?interval_ms=notanumber")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad interval_ms: status %d, want 400", resp.StatusCode)
	}
}

// TestIngressAuth: with -auth-token armed, every mutating route 401s
// without the bearer token, read routes stay open, and an authorized
// client works end to end (JSON, binary and the persistent stream).
func TestIngressAuth(t *testing.T) {
	const token = "s3cret"
	k, c := newMultiPlane(t, nil, WithAuthToken(token))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := k.Start(ctx, runtime.Options{Flush: 5 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	defer k.Stop()

	// Reads are open without a token.
	if _, err := c.Health(); err != nil {
		t.Fatalf("unauthenticated health: %v", err)
	}
	if _, err := c.Backends(); err != nil {
		t.Fatalf("unauthenticated backends list: %v", err)
	}

	// Every mutating call 401s without (or with a wrong) token.
	wants401 := func(what string, err error) {
		t.Helper()
		if err == nil {
			t.Fatalf("%s succeeded without token", what)
			return
		}
		api, ok := err.(*APIError)
		if !ok || api.Status != http.StatusUnauthorized {
			t.Fatalf("%s: %v, want 401", what, err)
		}
	}
	_, err := c.Register(AppSpec{Name: "t"})
	wants401("register", err)
	wants401("detach", c.Detach("t"))
	_, err = c.Observe("t", []Observation{{Metric: monitor.MetricLatency, Value: 1}})
	wants401("observe", err)
	_, err = c.ObserveBinary("t", []runtime.Sample{{Metric: monitor.MetricLatency, Value: 1}})
	wants401("observe binary", err)
	_, err = c.AddBackend(BackendSpec{Name: "x"})
	wants401("add backend", err)
	c.SetAuthToken("wrong-" + token)
	_, err = c.Register(AppSpec{Name: "t"})
	wants401("register with wrong token", err)

	// The authorized client exercises the full lifecycle.
	c.SetAuthToken(token)
	if _, err := c.Register(AppSpec{Name: "t", Placement: "hot"}); err != nil {
		t.Fatalf("authorized register: %v", err)
	}
	if _, err := c.Observe("t", []Observation{{Metric: monitor.MetricLatency, Value: 1}}); err != nil {
		t.Fatalf("authorized observe: %v", err)
	}
	if _, err := c.ObserveBinary("t", []runtime.Sample{{Metric: monitor.MetricLatency, Value: 1}}); err != nil {
		t.Fatalf("authorized binary observe: %v", err)
	}
	w, err := c.Stream()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Observe("t", monitor.MetricLatency, 0.5); err != nil {
		t.Fatal(err)
	}
	if ack, err := w.Close(); err != nil || ack.Accepted != 1 {
		t.Fatalf("authorized stream: ack %+v, %v", ack, err)
	}
	if err := c.Detach("t"); err != nil {
		t.Fatalf("authorized detach: %v", err)
	}

	// An unauthorized persistent stream dies with 401 too.
	c.SetAuthToken("")
	w, err = c.Stream()
	if err != nil {
		t.Fatal(err)
	}
	_, err = w.Close()
	if err == nil {
		t.Fatal("unauthenticated stream accepted")
	}
	if api, ok := err.(*APIError); !ok || api.Status != http.StatusUnauthorized {
		t.Errorf("unauthenticated stream: %v, want 401", err)
	}
}
