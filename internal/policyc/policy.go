package policyc

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/autotune"
	"repro/internal/ir"
	"repro/internal/monitor"
)

// KernelPolicy is what New returns. Decide matches runtime.Policy
// structurally — the kernel accepts these without policyc importing
// the runtime package. Close releases any isolation goroutine; it is
// idempotent and must be called when the policy is swapped out or the
// app detaches. Metrics is a lock-free snapshot of the instance's
// execution counters, safe to call concurrently with Decide.
type KernelPolicy interface {
	Decide(d monitor.Decision, sums map[string]monitor.Summary) (autotune.Config, bool)
	Metrics() Metrics
	Close() error
}

// Metrics is a point-in-time view of one policy instance's execution
// accounting — the observability needed to see a near-quarantine
// program (fuel creeping toward the budget, decisions going stale)
// before it trips.
type Metrics struct {
	// Decisions counts completed VM executions (a crashed execution
	// quarantines the app instead of counting).
	Decisions int64
	// FuelBudget is the per-decision budget; FuelUsedLast/FuelUsedMax
	// are the most recent and worst observed spends against it. A
	// FuelUsedMax near FuelBudget is the early warning.
	FuelBudget   int64
	FuelUsedLast int64
	FuelUsedMax  int64
	// DeadlineDrops counts completed decisions an isolated policy
	// discarded because they were older than DecisionDeadline when the
	// tick came to collect them. Zero for inline policies, whose
	// decisions run on the tick path itself.
	DeadlineDrops    int64
	DecisionDeadline time.Duration
}

// Options configures policy instantiation.
type Options struct {
	// Params bind the entry aspect's inputs. Missing inputs bind to 0.
	Params map[string]float64
	// KnobValue supplies the current value of a knob for bare-name
	// reads and Scale. Nil reads as 0.
	KnobValue func(name string) float64
	// DecisionDeadline bounds how stale an isolated policy's decision
	// may be before it is dropped. Zero means 50ms. Ignored for inline
	// policies.
	DecisionDeadline time.Duration
}

const defaultDecisionDeadline = 50 * time.Millisecond

// New instantiates a compiled program as a kernel policy: a VMPolicy
// for inline-classified programs, an IsolatedPolicy otherwise. Each
// instance gets its own globals namespace, so one Program can back
// many apps.
func New(p *Program, opts Options) (KernelPolicy, error) {
	if p == nil || p.Module == nil || p.Module.Funcs[p.Entry] == nil {
		return nil, fmt.Errorf("policyc: program has no entry function")
	}
	vp := newVMPolicy(p, opts)
	if p.Class == Isolated {
		deadline := opts.DecisionDeadline
		if deadline <= 0 {
			deadline = defaultDecisionDeadline
		}
		return newIsolatedPolicy(vp, deadline), nil
	}
	return vp, nil
}

// VMPolicy runs compiled bytecode synchronously on the tick path. Any
// VM error — out of fuel, division by zero, NaN knob write — panics
// out of Decide; the kernel's tick-path recover turns that into
// per-app quarantine, exactly like a panicking Go policy.
type VMPolicy struct {
	mu   sync.Mutex
	prog *Program
	vm   *ir.VM
	args []ir.Value

	knobValue func(string) float64
	scratch   map[string]float64
	hold      bool

	// Execution counters. decide() runs serialized (under mu, or on
	// the isolated worker goroutine), so plain load-then-store updates
	// are safe; atomics let Metrics read without taking mu — a status
	// endpoint must never queue behind a running decision.
	decisions atomic.Int64
	fuelLast  atomic.Int64
	fuelMax   atomic.Int64
}

func newVMPolicy(p *Program, opts Options) *VMPolicy {
	// Share the read-only code, own the mutable globals.
	mod := &ir.Module{
		Funcs:    p.Module.Funcs,
		Variants: p.Module.Variants,
		Globals:  make(map[string]ir.Value, len(p.Refs)+len(p.Knobs)+1),
	}
	vp := &VMPolicy{
		prog:      p,
		vm:        ir.NewVM(mod),
		knobValue: opts.KnobValue,
		scratch:   make(map[string]float64, 2),
	}
	vp.args = make([]ir.Value, len(p.Inputs))
	for i, name := range p.Inputs {
		vp.args[i] = ir.NumValue(opts.Params[name])
	}
	vp.vm.RegisterExtern(externSet, func(_ *ir.VM, args []ir.Value) (ir.Value, error) {
		return vp.externWrite(args, false)
	})
	vp.vm.RegisterExtern(externScale, func(_ *ir.VM, args []ir.Value) (ir.Value, error) {
		return vp.externWrite(args, true)
	})
	vp.vm.RegisterExtern(externHold, func(_ *ir.VM, _ []ir.Value) (ir.Value, error) {
		vp.hold = true
		for k := range vp.scratch {
			delete(vp.scratch, k)
		}
		return ir.NumValue(0), nil
	})
	return vp
}

func (vp *VMPolicy) externWrite(args []ir.Value, scale bool) (ir.Value, error) {
	if len(args) != 2 || args[0].Kind != ir.KindStr {
		return ir.Value{}, fmt.Errorf("policy extern: want (name, value)")
	}
	name, v := args[0].Str, args[1].Num
	if scale {
		base, staged := vp.scratch[name]
		if !staged {
			base = vp.readKnob(name)
		}
		v = base * v
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return ir.Value{}, fmt.Errorf("policy wrote non-finite value %g to knob %q", v, name)
	}
	vp.scratch[name] = v
	return ir.NumValue(0), nil
}

func (vp *VMPolicy) readKnob(name string) float64 {
	if vp.knobValue == nil {
		return 0
	}
	return vp.knobValue(name)
}

// Decide implements runtime.Policy (structurally).
func (vp *VMPolicy) Decide(d monitor.Decision, sums map[string]monitor.Summary) (autotune.Config, bool) {
	vp.mu.Lock()
	defer vp.mu.Unlock()
	cfg, ok, err := vp.decide(d, sums)
	if err != nil {
		// Degrade to quarantine via the tick-path recover, never
		// stall a commit.
		panic(fmt.Sprintf("policyc: policy %s: %v", vp.prog.AspectName, err))
	}
	return cfg, ok
}

func (vp *VMPolicy) decide(d monitor.Decision, sums map[string]monitor.Summary) (autotune.Config, bool, error) {
	vp.marshalIn(d, sums)
	vp.hold = false
	for k := range vp.scratch {
		delete(vp.scratch, k)
	}
	vp.vm.Fuel = vp.prog.Fuel
	if _, err := vp.vm.Call(vp.prog.Entry, vp.args...); err != nil {
		return nil, false, err
	}
	used := vp.prog.Fuel - vp.vm.Fuel
	vp.decisions.Add(1)
	vp.fuelLast.Store(used)
	if used > vp.fuelMax.Load() {
		vp.fuelMax.Store(used)
	}
	if vp.hold || len(vp.scratch) == 0 {
		return nil, false, nil
	}
	cfg := make(autotune.Config, len(vp.scratch))
	for k, v := range vp.scratch {
		cfg[k] = v
	}
	return cfg, true, nil
}

// marshalIn publishes only the globals the bytecode actually reads —
// the compile-time Refs/Knobs lists keep the per-decision marshalling
// proportional to the policy, not the app's metric count.
func (vp *VMPolicy) marshalIn(d monitor.Decision, sums map[string]monitor.Summary) {
	g := vp.vm.Mod.Globals
	if vp.prog.ReadsViolation {
		g["in:violation"] = ir.NumValue(d.Violation)
	}
	for _, ref := range vp.prog.Refs {
		s := sums[ref.Metric] // missing metric reads as a zero summary
		var v float64
		switch ref.Stat {
		case "count":
			v = float64(s.Count)
		case "mean":
			v = s.Mean
		case "stddev":
			v = s.StdDev
		case "min":
			v = s.Min
		case "max":
			v = s.Max
		case "p95":
			v = s.P95
		}
		g[ref.global()] = ir.NumValue(v)
	}
	for _, k := range vp.prog.Knobs {
		if !k.Write {
			g["k:"+k.Name] = ir.NumValue(vp.readKnob(k.Name))
		}
	}
}

// Metrics implements KernelPolicy.
func (vp *VMPolicy) Metrics() Metrics {
	return Metrics{
		Decisions:    vp.decisions.Load(),
		FuelBudget:   vp.prog.Fuel,
		FuelUsedLast: vp.fuelLast.Load(),
		FuelUsedMax:  vp.fuelMax.Load(),
	}
}

// Close implements KernelPolicy; inline policies hold no resources.
func (vp *VMPolicy) Close() error { return nil }

// IsolatedPolicy runs the VM on its own goroutine so an expensive or
// dynamic policy never executes inside the epoch commit window. Decide
// submits a snapshot without blocking and picks up the most recent
// completed decision, dropping it if it is older than the deadline.
// A policy that crashes on its goroutine fails sticky: the next Decide
// panics with the original error, routing the app to quarantine.
type IsolatedPolicy struct {
	inner    *VMPolicy
	deadline time.Duration

	req    chan isoReq
	res    atomic.Pointer[isoRes]
	failed atomic.Pointer[string]
	closed atomic.Bool
	once   sync.Once
	done   chan struct{}
	drops  atomic.Int64
}

type isoReq struct {
	d    monitor.Decision
	sums map[string]monitor.Summary
	at   time.Time
}

type isoRes struct {
	cfg autotune.Config
	ok  bool
	at  time.Time
}

func newIsolatedPolicy(inner *VMPolicy, deadline time.Duration) *IsolatedPolicy {
	ip := &IsolatedPolicy{
		inner:    inner,
		deadline: deadline,
		req:      make(chan isoReq, 1),
		done:     make(chan struct{}),
	}
	go ip.run()
	return ip
}

func (ip *IsolatedPolicy) run() {
	defer close(ip.done)
	for r := range ip.req {
		cfg, ok, err := ip.inner.decide(r.d, r.sums)
		if err != nil {
			msg := fmt.Sprintf("policyc: isolated policy %s: %v", ip.inner.prog.AspectName, err)
			ip.failed.Store(&msg)
			return
		}
		ip.res.Store(&isoRes{cfg: cfg, ok: ok, at: r.at})
	}
}

// Decide implements runtime.Policy (structurally). It never blocks on
// the worker: if the worker is busy the snapshot is dropped, and a
// completed decision is only honoured while it is fresher than the
// deadline.
func (ip *IsolatedPolicy) Decide(d monitor.Decision, sums map[string]monitor.Summary) (autotune.Config, bool) {
	if msg := ip.failed.Load(); msg != nil {
		panic(*msg)
	}
	if ip.closed.Load() {
		return nil, false
	}
	snap := make(map[string]monitor.Summary, len(sums))
	for k, v := range sums {
		snap[k] = v
	}
	select {
	case ip.req <- isoReq{d: d, sums: snap, at: time.Now()}:
	default: // worker busy: drop this snapshot
	}
	r := ip.res.Swap(nil)
	if r == nil {
		return nil, false // no completed decision to collect yet
	}
	if time.Since(r.at) > ip.deadline {
		ip.drops.Add(1)
		return nil, false // stale decision dropped
	}
	return r.cfg, r.ok
}

// Metrics implements KernelPolicy: the inner VM's counters plus the
// isolation layer's deadline accounting.
func (ip *IsolatedPolicy) Metrics() Metrics {
	m := ip.inner.Metrics()
	m.DeadlineDrops = ip.drops.Load()
	m.DecisionDeadline = ip.deadline
	return m
}

// Close stops the worker goroutine and waits for it to exit.
func (ip *IsolatedPolicy) Close() error {
	ip.once.Do(func() {
		ip.closed.Store(true)
		close(ip.req)
	})
	<-ip.done
	return nil
}
