package policyc

import (
	"fmt"

	"repro/internal/ir"
)

// inlineCostBudget is the worst-case cycle cost above which a policy
// is pushed off the epoch tick path. The bar is deliberately low: an
// inline decision runs inside the commit window the epoch protocols
// fight to keep short, so only small, loop-free strategies qualify.
const inlineCostBudget = 4096

// isolatedFuel is the per-decision fuel budget for isolated policies,
// whose worst-case cost is unbounded (call cycles) or over budget. Big
// enough for any sane strategy, small enough that a runaway policy
// dies in microseconds.
const isolatedFuel = 1 << 20

// externCost is the budgeted cost of one set/scale/hold extern body,
// on top of the OpCall dispatch cost the VM already charges.
const externCost = 20

// analyze is the gopherjs-style classification pass (see the
// blocking/flattening analysis in compiler/internal/analysis): walk
// the aspect call graph from the entry, propagate the "needs
// isolation" colour (dynamic applies, recursion), and bound the
// worst-case cycle cost of one decision. Compiled policies are
// structurally loop-free (all jumps are forward), so a straight sum
// over instruction costs with callees inlined is a true upper bound.
func analyze(p *Program) {
	a := &analyzer{prog: p, cost: make(map[string]int64), state: make(map[string]int)}
	cost, cyclic := a.aspectCost(p.AspectName)

	switch {
	case cyclic != "":
		p.Class = Isolated
		p.ClassReason = fmt.Sprintf("aspect call cycle through %s: unbounded decision cost", cyclic)
		p.WorstCost = 0
		p.Fuel = isolatedFuel
	case a.dynamicReachable(p.AspectName, make(map[string]bool)):
		p.Class = Isolated
		p.ClassReason = "apply dynamic requires runtime isolation"
		p.WorstCost = cost
		p.Fuel = isolatedFuel
	case cost > inlineCostBudget:
		p.Class = Isolated
		p.ClassReason = fmt.Sprintf("worst-case %d cycles exceeds inline budget %d", cost, inlineCostBudget)
		p.WorstCost = cost
		p.Fuel = isolatedFuel
	default:
		p.Class = Inline
		p.ClassReason = fmt.Sprintf("pure and bounded: worst-case %d cycles", cost)
		p.WorstCost = cost
		// Double the bound plus slack: the fuel check is a backstop,
		// not a second copy of the analysis.
		p.Fuel = cost*2 + 256
	}
}

type analyzer struct {
	prog  *Program
	cost  map[string]int64
	state map[string]int // 0 unvisited, 1 on stack, 2 done
}

// aspectCost returns the worst-case cycle cost of one invocation of
// the named aspect, with callees inlined. The second return names an
// aspect on a call cycle, or "" when the graph is acyclic from here.
func (a *analyzer) aspectCost(name string) (int64, string) {
	switch a.state[name] {
	case 1:
		return 0, name // back edge: recursion
	case 2:
		return a.cost[name], ""
	}
	a.state[name] = 1
	defer func() { a.state[name] = 2 }()

	fn := a.prog.Module.Funcs[entryPrefix+name]
	if fn == nil {
		return 0, ""
	}
	var total int64
	for _, in := range fn.Code {
		total += in.Op.Cost()
		if in.Op == ir.OpCall {
			switch in.Sym {
			case externSet, externScale, externHold:
				total += externCost
			}
		}
	}
	for _, e := range a.prog.calls[name] {
		c, cyc := a.aspectCost(e.callee)
		if cyc != "" {
			a.cost[name] = total
			return total, cyc
		}
		total += c
	}
	a.cost[name] = total
	return total, ""
}

// dynamicReachable reports whether any aspect reachable from name
// contains an `apply dynamic`.
func (a *analyzer) dynamicReachable(name string, seen map[string]bool) bool {
	if seen[name] {
		return false
	}
	seen[name] = true
	if a.prog.dynamic[name] {
		return true
	}
	for _, e := range a.prog.calls[name] {
		if a.dynamicReachable(e.callee, seen) {
			return true
		}
	}
	return false
}
