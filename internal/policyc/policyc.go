// Package policyc compiles DSL adaptation strategies (internal/dsl)
// through the stack IR (internal/ir) into VM-backed kernel policies.
//
// This is the missing arc of the paper's tool flow: the DSL front end
// and the split-compilation IR existed since the seed, but policies the
// kernel actually ran were hand-written Go ladders. policyc closes the
// loop — a tenant posts LARA-style aspect source, Compile lowers it to
// IR bytecode, a static-analysis pass classifies it as inline-safe or
// isolation-required, and New wraps it in a fuel-bounded policy whose
// Decide signature matches runtime.Policy structurally (no runtime
// import; the interfaces match by shape).
//
// The policy dialect is the DSL grammar minus source weaving: no
// select (there is no program to select join points from), no insert
// templates, no weaver actions. An aspect's inputs are bound from
// per-app parameters; metric summaries and the SLA decision are
// marshalled in as IR globals; knob writes come back out through the
// set/scale/hold externs. A runaway or crashing policy burns its fuel
// budget and panics out of Decide, which the kernel's tick-path
// recover converts to per-app quarantine — it can never stall a
// commit.
package policyc

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"

	"repro/internal/dsl"
	"repro/internal/ir"
)

// Class is the static-analysis verdict for a compiled policy.
type Class int

// Classification outcomes.
const (
	// Inline policies are pure and bounded: they run synchronously on
	// the epoch tick path.
	Inline Class = iota
	// Isolated policies (dynamic applies, call cycles, or worst-case
	// cost over budget) run on their own goroutine with a decision
	// deadline; stale decisions are dropped.
	Isolated
)

// String renders the class for status APIs.
func (c Class) String() string {
	if c == Isolated {
		return "isolated"
	}
	return "inline"
}

// Diag is one compile diagnostic with a 1-based source position. The
// JSON shape is what the control plane returns in the error envelope's
// detail field, so tenants get machine-readable line/col.
type Diag struct {
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Msg  string `json:"msg"`
}

func (d Diag) String() string { return fmt.Sprintf("%d:%d: %s", d.Line, d.Col, d.Msg) }

// CompileError carries all diagnostics from a failed compile.
type CompileError struct {
	Diags []Diag
}

// Error implements error: first diagnostic plus a count.
func (e *CompileError) Error() string {
	if len(e.Diags) == 0 {
		return "policyc: compile failed"
	}
	if len(e.Diags) == 1 {
		return fmt.Sprintf("policyc: %s", e.Diags[0])
	}
	return fmt.Sprintf("policyc: %s (and %d more)", e.Diags[0], len(e.Diags)-1)
}

// maxDiags caps how many diagnostics a single compile accumulates, so
// hostile source cannot balloon the error response.
const maxDiags = 20

// MetricRef is one metric summary the policy reads, discovered at
// compile time so Decide marshals only what the bytecode touches.
type MetricRef struct {
	Metric string // metric name, e.g. "latency"
	Stat   string // one of count, mean, stddev, min, max, p95
}

func (r MetricRef) global() string { return "m:" + r.Metric + ":" + r.Stat }

// KnobRef is one knob the policy reads or writes, with the source
// position for CheckKnobs diagnostics.
type KnobRef struct {
	Name  string
	Write bool
	Line  int
	Col   int
}

// Program is a compiled policy: IR bytecode plus the interface
// metadata (metric reads, knob writes, classification) the runtime
// marshalling layer and the control plane status API need.
type Program struct {
	Module *ir.Module
	// Entry is the module function name of the entry aspect.
	Entry string
	// AspectName is the DSL-level name of the entry aspect.
	AspectName string
	// Inputs are the entry aspect's declared inputs, bound from
	// Options.Params at instantiation.
	Inputs []string
	// Refs are the metric summaries the bytecode reads.
	Refs []MetricRef
	// Knobs are the knob reads and writes the bytecode performs.
	Knobs []KnobRef
	// ReadsViolation reports whether the policy reads the SLA
	// decision's violation magnitude.
	ReadsViolation bool
	// Class and ClassReason are the static-analysis verdict.
	Class       Class
	ClassReason string
	// WorstCost is the worst-case cycle cost of one decision (upper
	// bound; exact for inline policies, which are loop-free). Zero for
	// policies whose cost is unbounded (call cycles).
	WorstCost int64
	// Fuel is the per-decision fuel budget New installs in the VM.
	Fuel int64
	// SourceHash is "sha256:<hex>" over the source text, reported by
	// the status API so tenants can confirm which revision is live.
	SourceHash string

	// dynamic marks aspects containing `apply dynamic`, and calls maps
	// caller aspect name to callees; both feed the analysis pass.
	dynamic map[string]bool
	calls   map[string][]callEdge
}

type callEdge struct {
	callee string
	pos    dsl.Pos
}

// Compile parses, lowers, and classifies DSL policy source. Errors are
// always *CompileError with 1-based line/col diagnostics.
func Compile(src string) (*Program, error) {
	f, err := dsl.Parse(src)
	if err != nil {
		var de *dsl.Error
		if errors.As(err, &de) {
			return nil, &CompileError{Diags: []Diag{{Line: de.Pos.Line, Col: de.Pos.Col, Msg: de.Msg}}}
		}
		return nil, &CompileError{Diags: []Diag{{Line: 1, Col: 1, Msg: err.Error()}}}
	}
	l := newLowerer(f)
	prog := l.lower()
	if len(l.diags) > 0 {
		if len(l.diags) > maxDiags {
			l.diags = l.diags[:maxDiags]
		}
		return nil, &CompileError{Diags: l.diags}
	}
	analyze(prog)
	sum := sha256.Sum256([]byte(src))
	prog.SourceHash = "sha256:" + hex.EncodeToString(sum[:])
	return prog, nil
}

// CheckKnobs verifies every knob the program touches is in the allowed
// set, returning positioned diagnostics otherwise. The control plane
// calls this at admission with the knobs the app actually exposes, so
// a typo'd knob name is a 400 instead of a silent no-op.
func (p *Program) CheckKnobs(allowed ...string) *CompileError {
	ok := make(map[string]bool, len(allowed))
	for _, a := range allowed {
		ok[a] = true
	}
	var diags []Diag
	for _, k := range p.Knobs {
		if !ok[k.Name] {
			verb := "reads"
			if k.Write {
				verb = "writes"
			}
			diags = append(diags, Diag{Line: k.Line, Col: k.Col,
				Msg: fmt.Sprintf("policy %s unknown knob %q (app exposes: %v)", verb, k.Name, allowed)})
		}
		if len(diags) >= maxDiags {
			break
		}
	}
	if len(diags) > 0 {
		return &CompileError{Diags: diags}
	}
	return nil
}
