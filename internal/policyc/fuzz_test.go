package policyc

import (
	"strings"
	"testing"

	"repro/internal/monitor"
)

// FuzzCompile is the front door for hostile tenant source: whatever
// bytes arrive over POST /v1/apps, Compile must return a program or a
// *CompileError — never panic, never hang. When compilation succeeds,
// the program must also instantiate and survive one decision without
// panicking (inline policies) so fuzz coverage reaches the VM
// marshalling layer too.
func FuzzCompile(f *testing.F) {
	f.Add(steerSrc)
	f.Add("aspectdef A\nend")
	f.Add("aspectdef A\n\tapply dynamic\n\t\tdo Set('level', 1);\n\tend\nend")
	f.Add("aspectdef A\n\tcall A();\nend")
	f.Add("aspectdef A\n\tapply\n\t\tdo Set('level', latency.p95 && x || !y - 2);\n\tend\nend")
	f.Add("aspectdef A\n\tselect fCall end\nend")
	f.Add("aspectdef A\n\tapply\n\t\tinsert before %{x();}%;\n\tend\nend")
	f.Add("aspectdef")
	f.Add("")
	f.Add("\x00\xff'unterminated")
	f.Add("aspectdef A\n\tinput " + strings.Repeat("x,", 100) + "y end\nend")

	f.Fuzz(func(t *testing.T, src string) {
		p, err := Compile(src)
		if err != nil {
			if _, ok := err.(*CompileError); !ok {
				t.Fatalf("Compile error is %T, want *CompileError", err)
			}
			return
		}
		if p.Class == Isolated {
			// Skip instantiation: isolated workers are async and a
			// fuzz iteration should not leave goroutines behind.
			return
		}
		pol, err := New(p, Options{})
		if err != nil {
			t.Fatalf("New on compiled program: %v", err)
		}
		defer pol.Close()
		defer func() {
			// A quarantine panic (fuel, depth) is valid runtime
			// behaviour, not a compile front-door bug.
			recover()
		}()
		pol.Decide(monitor.Decision{Adapt: true, Violation: 1}, map[string]monitor.Summary{
			"latency": {Count: 1, Mean: 1, P95: 1},
		})
	})
}
