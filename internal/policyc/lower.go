package policyc

import (
	"fmt"

	"repro/internal/dsl"
	"repro/internal/ir"
	"repro/internal/weaver"
)

// entryPrefix namespaces aspect functions inside the IR module.
const entryPrefix = "aspect:"

// Extern names the policy runtime registers on every policy VM. They
// are the only side channel out of a decision: set/scale stage knob
// writes in a scratch config, hold discards them.
const (
	externSet   = "set"
	externScale = "scale"
	externHold  = "hold"
)

// lowerer translates a parsed DSL file into an ir.Module, one function
// per aspect, accumulating diagnostics instead of stopping at the
// first error so a tenant sees every problem in one 400.
type lowerer struct {
	file    *dsl.File
	aspects map[string]*dsl.Aspect
	prog    *Program
	diags   []Diag

	// per-aspect state
	fn    *ir.Function
	cur   string         // aspect being lowered
	slots map[string]int // input/output/call-label name → local slot

	metricSeen map[MetricRef]bool
	knobSeen   map[string]bool // "r:name" / "w:name"
}

func newLowerer(f *dsl.File) *lowerer {
	l := &lowerer{
		file:       f,
		aspects:    make(map[string]*dsl.Aspect, len(f.Aspects)),
		metricSeen: make(map[MetricRef]bool),
		knobSeen:   make(map[string]bool),
	}
	l.prog = &Program{
		Module:  ir.NewModule(),
		dynamic: make(map[string]bool),
		calls:   make(map[string][]callEdge),
	}
	return l
}

func (l *lowerer) errorf(pos dsl.Pos, format string, args ...any) {
	if len(l.diags) >= maxDiags {
		return
	}
	l.diags = append(l.diags, Diag{Line: pos.Line, Col: pos.Col, Msg: fmt.Sprintf(format, args...)})
}

// lower translates every aspect. The first aspect is the policy entry;
// the rest are helpers reachable via call.
func (l *lowerer) lower() *Program {
	for _, a := range l.file.Aspects {
		if prev, dup := l.aspects[a.Name]; dup {
			l.errorf(a.Pos, "duplicate aspect %q (first defined at %s)", a.Name, prev.Pos)
			continue
		}
		l.aspects[a.Name] = a
	}
	entry := l.file.Aspects[0]
	l.prog.Entry = entryPrefix + entry.Name
	l.prog.AspectName = entry.Name
	l.prog.Inputs = append([]string(nil), entry.Inputs...)
	for _, a := range l.file.Aspects {
		if l.aspects[a.Name] != a {
			continue // duplicate, already reported
		}
		l.lowerAspect(a)
	}
	return l.prog
}

func (l *lowerer) lowerAspect(a *dsl.Aspect) {
	l.fn = &ir.Function{Name: entryPrefix + a.Name, NParams: len(a.Inputs)}
	l.cur = a.Name
	l.slots = make(map[string]int, len(a.Inputs)+len(a.Outputs))
	for _, in := range a.Inputs {
		if _, dup := l.slots[in]; dup {
			l.errorf(a.Pos, "aspect %s: duplicate input %q", a.Name, in)
			continue
		}
		l.slots[in] = len(l.slots)
	}
	// Outputs get zero-initialized local slots; the policy dialect has
	// no assignment, so they are only useful as named zeros, but
	// accepting them keeps paper examples compiling.
	for _, out := range a.Outputs {
		if _, dup := l.slots[out]; dup {
			l.errorf(a.Pos, "aspect %s: duplicate output %q", a.Name, out)
			continue
		}
		l.slots[out] = len(l.slots)
	}

	body := a.Body
	for i := 0; i < len(body); i++ {
		switch s := body[i].(type) {
		case *dsl.SelectStmt:
			l.errorf(s.Pos, "select targets source-code join points; a runtime policy has no program to select from")
		case *dsl.ConditionStmt:
			l.errorf(s.Pos, "condition must directly follow an apply block in a runtime policy")
		case *dsl.ApplyStmt:
			// Grammar: the condition physically follows the apply it
			// guards. Lower the guard first, jumping over the actions
			// when it is false.
			var cond dsl.Expr
			if i+1 < len(body) {
				if c, ok := body[i+1].(*dsl.ConditionStmt); ok {
					cond = c.Cond
					i++
				}
			}
			l.lowerApply(s, cond)
		case *dsl.CallStmt:
			l.lowerCall(s.Label, s.Aspect, s.Args, s.Pos)
		default:
			l.errorf(body[i].Position(), "unsupported statement in runtime policy")
		}
	}
	l.fn.NLocals = len(l.slots)
	if l.fn.NLocals < l.fn.NParams {
		l.fn.NLocals = l.fn.NParams
	}
	l.prog.Module.Add(l.fn)
}

func (l *lowerer) lowerApply(s *dsl.ApplyStmt, cond dsl.Expr) {
	if s.Dynamic {
		l.prog.dynamic[l.cur] = true
	}
	var patch int = -1
	if cond != nil {
		l.lowerExpr(cond)
		patch = l.emit(ir.Instr{Op: ir.OpJmpZero, A: -1})
	}
	for _, act := range s.Body {
		switch a := act.(type) {
		case *dsl.InsertAction:
			l.errorf(a.Pos, "insert templates weave source programs; not available in a runtime policy")
		case *dsl.CallAction:
			l.lowerCall(a.Label, a.Aspect, a.Args, a.Pos)
		case *dsl.DoAction:
			l.lowerDo(a)
		default:
			l.errorf(act.Position(), "unsupported action in runtime policy")
		}
	}
	if patch >= 0 {
		l.fn.Code[patch].A = len(l.fn.Code)
	}
}

// lowerDo compiles the built-in policy actions:
//
//	do Set('knob', expr)   — stage knob := expr
//	do Scale('knob', expr) — stage knob := current(knob) * expr
//	do Hold()              — discard staged writes, keep configuration
//	do Return(expr)        — return expr (helpers called via call label:)
func (l *lowerer) lowerDo(a *dsl.DoAction) {
	switch a.Name {
	case "Set", "Scale":
		ext := externSet
		if a.Name == "Scale" {
			ext = externScale
		}
		if len(a.Args) != 2 {
			l.errorf(a.Pos, "%s expects ('knob', expr), got %d args", a.Name, len(a.Args))
			return
		}
		lit, ok := a.Args[0].(*dsl.StringLit)
		if !ok {
			l.errorf(a.Args[0].Position(), "%s: first argument must be a string knob name", a.Name)
			return
		}
		l.noteKnob(lit.Value, true, a.Pos)
		l.emit(ir.Instr{Op: ir.OpConst, Val: ir.StrValue(lit.Value)})
		l.lowerExpr(a.Args[1])
		l.emit(ir.Instr{Op: ir.OpCall, Sym: ext, A: 2})
		l.emit(ir.Instr{Op: ir.OpPop})
	case "Hold":
		if len(a.Args) != 0 {
			l.errorf(a.Pos, "Hold takes no arguments")
			return
		}
		l.emit(ir.Instr{Op: ir.OpCall, Sym: externHold, A: 0})
		l.emit(ir.Instr{Op: ir.OpPop})
	case "Return":
		if len(a.Args) != 1 {
			l.errorf(a.Pos, "Return expects one expression")
			return
		}
		l.lowerExpr(a.Args[0])
		l.emit(ir.Instr{Op: ir.OpRet})
	default:
		if weaver.IsWeaveAction(a.Name) {
			l.errorf(a.Pos, "weaver action %q weaves source programs, not runtime policies", a.Name)
			return
		}
		l.errorf(a.Pos, "unknown action %q (runtime policies support Set, Scale, Hold, Return)", a.Name)
	}
}

func (l *lowerer) lowerCall(label, aspect string, args []dsl.Expr, pos dsl.Pos) {
	callee, ok := l.aspects[aspect]
	if !ok {
		l.errorf(pos, "call of unknown aspect %q", aspect)
		return
	}
	if len(args) != len(callee.Inputs) {
		l.errorf(pos, "aspect %s expects %d inputs, got %d args", aspect, len(callee.Inputs), len(args))
		return
	}
	for _, arg := range args {
		l.lowerExpr(arg)
	}
	l.prog.calls[l.cur] = append(l.prog.calls[l.cur], callEdge{callee: aspect, pos: pos})
	l.emit(ir.Instr{Op: ir.OpCall, Sym: entryPrefix + aspect, A: len(args)})
	if label == "" {
		l.emit(ir.Instr{Op: ir.OpPop})
		return
	}
	slot, exists := l.slots[label]
	if !exists {
		slot = len(l.slots)
		l.slots[label] = slot
	}
	l.emit(ir.Instr{Op: ir.OpStoreLocal, A: slot})
}

func (l *lowerer) lowerExpr(e dsl.Expr) {
	switch x := e.(type) {
	case *dsl.NumberLit:
		l.emit(ir.Instr{Op: ir.OpConst, Val: ir.NumValue(x.Value)})
	case *dsl.StringLit:
		l.errorf(x.Pos, "string literals are only valid as the knob name in Set/Scale")
		l.emit(ir.Instr{Op: ir.OpConst, Val: ir.NumValue(0)})
	case *dsl.VarRef:
		l.lowerVarRef(x)
	case *dsl.MemberExpr:
		l.lowerMember(x)
	case *dsl.UnaryExpr:
		l.lowerExpr(x.X)
		switch x.Op {
		case dsl.TNot:
			l.emit(ir.Instr{Op: ir.OpNot})
		case dsl.TMinus:
			l.emit(ir.Instr{Op: ir.OpNeg})
		default:
			l.errorf(x.Pos, "unsupported unary operator %s", x.Op)
		}
	case *dsl.BinaryExpr:
		l.lowerBinary(x)
	default:
		l.errorf(e.Position(), "unsupported expression in runtime policy")
		l.emit(ir.Instr{Op: ir.OpConst, Val: ir.NumValue(0)})
	}
}

func (l *lowerer) lowerVarRef(x *dsl.VarRef) {
	if slot, ok := l.slots[x.Name]; ok {
		l.emit(ir.Instr{Op: ir.OpLoadLocal, A: slot})
		return
	}
	if x.Name == "violation" {
		l.prog.ReadsViolation = true
		l.emit(ir.Instr{Op: ir.OpLoadGlobal, Sym: "in:violation"})
		return
	}
	// Any other bare identifier reads a knob's current value; the knob
	// set is app-defined, so existence is checked by CheckKnobs at
	// admission rather than here.
	l.noteKnob(x.Name, false, x.Pos)
	l.emit(ir.Instr{Op: ir.OpLoadGlobal, Sym: "k:" + x.Name})
}

var summaryStats = map[string]bool{
	"count": true, "mean": true, "stddev": true,
	"min": true, "max": true, "p95": true,
}

func (l *lowerer) lowerMember(x *dsl.MemberExpr) {
	base, ok := x.X.(*dsl.VarRef)
	if !ok {
		l.errorf(x.Pos, "nested attribute access is not supported; use <metric>.<stat>")
		l.emit(ir.Instr{Op: ir.OpConst, Val: ir.NumValue(0)})
		return
	}
	if _, bound := l.slots[base.Name]; bound {
		l.errorf(x.Pos, "%s is a scalar and has no attribute %q", base.Name, x.Name)
		l.emit(ir.Instr{Op: ir.OpConst, Val: ir.NumValue(0)})
		return
	}
	if !summaryStats[x.Name] {
		l.errorf(x.Pos, "unknown summary stat %q (have count, mean, stddev, min, max, p95)", x.Name)
		l.emit(ir.Instr{Op: ir.OpConst, Val: ir.NumValue(0)})
		return
	}
	ref := MetricRef{Metric: base.Name, Stat: x.Name}
	if !l.metricSeen[ref] {
		l.metricSeen[ref] = true
		l.prog.Refs = append(l.prog.Refs, ref)
	}
	l.emit(ir.Instr{Op: ir.OpLoadGlobal, Sym: ref.global()})
}

func (l *lowerer) lowerBinary(x *dsl.BinaryExpr) {
	switch x.Op {
	case dsl.TAnd:
		// a && b, short-circuit, normalized to 0/1. Forward jumps only,
		// so compiled policies stay structurally loop-free.
		l.lowerExpr(x.L)
		jf := l.emit(ir.Instr{Op: ir.OpJmpZero, A: -1})
		l.lowerExpr(x.R)
		l.emit(ir.Instr{Op: ir.OpNot})
		l.emit(ir.Instr{Op: ir.OpNot})
		jend := l.emit(ir.Instr{Op: ir.OpJmp, A: -1})
		l.fn.Code[jf].A = len(l.fn.Code)
		l.emit(ir.Instr{Op: ir.OpConst, Val: ir.NumValue(0)})
		l.fn.Code[jend].A = len(l.fn.Code)
		return
	case dsl.TOr:
		l.lowerExpr(x.L)
		jnext := l.emit(ir.Instr{Op: ir.OpJmpZero, A: -1})
		l.emit(ir.Instr{Op: ir.OpConst, Val: ir.NumValue(1)})
		jend := l.emit(ir.Instr{Op: ir.OpJmp, A: -1})
		l.fn.Code[jnext].A = len(l.fn.Code)
		l.lowerExpr(x.R)
		l.emit(ir.Instr{Op: ir.OpNot})
		l.emit(ir.Instr{Op: ir.OpNot})
		l.fn.Code[jend].A = len(l.fn.Code)
		return
	}
	l.lowerExpr(x.L)
	l.lowerExpr(x.R)
	var op ir.Opcode
	switch x.Op {
	case dsl.TPlus:
		op = ir.OpAdd
	case dsl.TMinus:
		op = ir.OpSub
	case dsl.TEq:
		op = ir.OpEq
	case dsl.TNe:
		op = ir.OpNe
	case dsl.TLt:
		op = ir.OpLt
	case dsl.TLe:
		op = ir.OpLe
	case dsl.TGt:
		op = ir.OpGt
	case dsl.TGe:
		op = ir.OpGe
	default:
		l.errorf(x.Pos, "unsupported binary operator %s", x.Op)
		l.emit(ir.Instr{Op: ir.OpPop})
		return
	}
	l.emit(ir.Instr{Op: op})
}

func (l *lowerer) noteKnob(name string, write bool, pos dsl.Pos) {
	key := "r:" + name
	if write {
		key = "w:" + name
	}
	if l.knobSeen[key] {
		return
	}
	l.knobSeen[key] = true
	l.prog.Knobs = append(l.prog.Knobs, KnobRef{Name: name, Write: write, Line: pos.Line, Col: pos.Col})
}

// emit appends an instruction and returns its index, for jump patching.
func (l *lowerer) emit(in ir.Instr) int {
	l.fn.Code = append(l.fn.Code, in)
	return len(l.fn.Code) - 1
}
