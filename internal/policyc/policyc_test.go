package policyc

import (
	"strings"
	"testing"
	"time"

	"repro/internal/monitor"
)

const steerSrc = `
aspectdef Steer
	input gain end
	apply
		do Set('level', 1 - violation + gain);
	end
	condition violation > 0 end
end
`

func compileOK(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Compile(src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return p
}

func TestCompileSteer(t *testing.T) {
	p := compileOK(t, steerSrc)
	if p.AspectName != "Steer" || p.Entry != "aspect:Steer" {
		t.Fatalf("entry = %s/%s", p.AspectName, p.Entry)
	}
	if p.Class != Inline {
		t.Fatalf("class = %v (%s), want inline", p.Class, p.ClassReason)
	}
	if !p.ReadsViolation {
		t.Fatal("ReadsViolation = false")
	}
	if len(p.Knobs) != 1 || p.Knobs[0].Name != "level" || !p.Knobs[0].Write {
		t.Fatalf("knobs = %+v", p.Knobs)
	}
	if !strings.HasPrefix(p.SourceHash, "sha256:") || len(p.SourceHash) != len("sha256:")+64 {
		t.Fatalf("source hash = %q", p.SourceHash)
	}
	if p.WorstCost <= 0 || p.Fuel <= p.WorstCost {
		t.Fatalf("cost/fuel = %d/%d", p.WorstCost, p.Fuel)
	}
}

func TestDecideGuardedSet(t *testing.T) {
	p := compileOK(t, steerSrc)
	pol, err := New(p, Options{Params: map[string]float64{"gain": 0.25}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer pol.Close()

	cfg, ok := pol.Decide(monitor.Decision{Adapt: true, Violation: 0.5}, nil)
	if !ok || cfg["level"] != 0.75 {
		t.Fatalf("violating decide = %v %v, want level=0.75", cfg, ok)
	}
	// Condition false: the guarded apply is skipped, no change.
	if cfg, ok := pol.Decide(monitor.Decision{}, nil); ok {
		t.Fatalf("non-violating decide fired: %v", cfg)
	}
}

func TestDecideMetricRefsAndHold(t *testing.T) {
	src := `
aspectdef Watch
	apply
		do Set('level', latency.p95 - latency.mean);
	end
	apply
		do Hold();
	end
	condition latency.count < 3 end
end
`
	p := compileOK(t, src)
	want := map[MetricRef]bool{
		{Metric: "latency", Stat: "p95"}:   true,
		{Metric: "latency", Stat: "mean"}:  true,
		{Metric: "latency", Stat: "count"}: true,
	}
	if len(p.Refs) != len(want) {
		t.Fatalf("refs = %+v", p.Refs)
	}
	for _, r := range p.Refs {
		if !want[r] {
			t.Fatalf("unexpected ref %+v", r)
		}
	}
	pol, err := New(p, Options{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer pol.Close()

	sums := map[string]monitor.Summary{"latency": {Count: 10, Mean: 0.2, P95: 0.9}}
	cfg, ok := pol.Decide(monitor.Decision{Adapt: true}, sums)
	if !ok || cfg["level"] != 0.9-0.2 {
		t.Fatalf("decide = %v %v", cfg, ok)
	}
	// Low count trips the guarded Hold, which discards the staged Set.
	sums["latency"] = monitor.Summary{Count: 2, Mean: 0.2, P95: 0.9}
	if cfg, ok := pol.Decide(monitor.Decision{Adapt: true}, sums); ok {
		t.Fatalf("hold still fired: %v", cfg)
	}
}

func TestDecideScaleReadsKnob(t *testing.T) {
	src := `
aspectdef Back
	apply
		do Scale('level', 0.5);
	end
end
`
	pol, err := New(compileOK(t, src), Options{
		KnobValue: func(name string) float64 {
			if name != "level" {
				t.Errorf("knob read %q", name)
			}
			return 2
		},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer pol.Close()
	cfg, ok := pol.Decide(monitor.Decision{Adapt: true}, nil)
	if !ok || cfg["level"] != 1 {
		t.Fatalf("decide = %v %v, want level=1", cfg, ok)
	}
}

func TestHelperCallAndReturn(t *testing.T) {
	src := `
aspectdef Main
	input bias end
	call r: Shift(bias);
	apply
		do Set('level', r);
	end
end
aspectdef Shift
	input x end
	apply
		do Return(x - 1);
	end
end
`
	p := compileOK(t, src)
	if p.Class != Inline {
		t.Fatalf("class = %v (%s)", p.Class, p.ClassReason)
	}
	pol, err := New(p, Options{Params: map[string]float64{"bias": 3}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer pol.Close()
	cfg, ok := pol.Decide(monitor.Decision{Adapt: true}, nil)
	if !ok || cfg["level"] != 2 {
		t.Fatalf("decide = %v %v, want level=2", cfg, ok)
	}
}

func TestShortCircuitOps(t *testing.T) {
	src := `
aspectdef Logic
	input a, b end
	apply
		do Set('and', a && b);
		do Set('or', a || b);
		do Set('not', !a);
	end
end
`
	p := compileOK(t, src)
	cases := []struct{ a, b, and, or, not float64 }{
		{0, 0, 0, 0, 1},
		{0, 7, 0, 1, 1},
		{5, 0, 0, 1, 0},
		{5, 7, 1, 1, 0},
	}
	for _, c := range cases {
		pol, err := New(p, Options{Params: map[string]float64{"a": c.a, "b": c.b}})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		cfg, ok := pol.Decide(monitor.Decision{Adapt: true}, nil)
		pol.Close()
		if !ok || cfg["and"] != c.and || cfg["or"] != c.or || cfg["not"] != c.not {
			t.Fatalf("a=%g b=%g: cfg=%v ok=%v want and=%g or=%g not=%g",
				c.a, c.b, cfg, ok, c.and, c.or, c.not)
		}
	}
}

func TestCompileDiagnostics(t *testing.T) {
	cases := []struct {
		name, src, want string
		line            int
	}{
		{"select", "aspectdef A\n\tselect fCall end\nend", "no program to select from", 2},
		{"insert", "aspectdef A\n\tapply\n\t\tinsert before %{x();}%;\n\tend\nend", "insert templates weave source programs", 3},
		{"weave action", "aspectdef A\n\tapply\n\t\tdo LoopUnroll('full');\n\tend\nend", "weaver action \"LoopUnroll\"", 3},
		{"unknown action", "aspectdef A\n\tapply\n\t\tdo Bump(1);\n\tend\nend", "unknown action \"Bump\"", 3},
		{"unknown aspect", "aspectdef A\n\tcall Nope();\nend", "unknown aspect \"Nope\"", 2},
		{"arity", "aspectdef A\n\tcall B(1, 2);\nend\naspectdef B\n\tinput x end\nend", "expects 1 inputs, got 2", 2},
		{"bad stat", "aspectdef A\n\tapply\n\t\tdo Set('level', latency.median);\n\tend\nend", "unknown summary stat", 3},
		{"scalar attr", "aspectdef A\n\tinput x end\n\tapply\n\t\tdo Set('level', x.mean);\n\tend\nend", "scalar", 4},
		{"stray condition", "aspectdef A\n\tcondition violation > 0 end\nend", "must directly follow an apply", 2},
		{"string expr", "aspectdef A\n\tapply\n\t\tdo Set('level', 'high');\n\tend\nend", "string literals are only valid", 3},
		{"dup aspect", "aspectdef A\nend\naspectdef A\nend", "duplicate aspect", 3},
		{"parse error", "aspectdef A\n\tapply do", "expected identifier", 2},
		{"empty", "   ", "no aspect definitions", 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Compile(c.src)
			ce, ok := err.(*CompileError)
			if !ok {
				t.Fatalf("err = %v, want *CompileError", err)
			}
			found := false
			for _, d := range ce.Diags {
				if strings.Contains(d.Msg, c.want) {
					found = true
					if d.Line != c.line {
						t.Fatalf("diag %q at line %d, want %d", d.Msg, d.Line, c.line)
					}
				}
			}
			if !found {
				t.Fatalf("diags %v lack %q", ce.Diags, c.want)
			}
		})
	}
}

func TestClassifyDynamicIsolated(t *testing.T) {
	src := `
aspectdef Dyn
	apply dynamic
		do Set('level', 1);
	end
end
`
	p := compileOK(t, src)
	if p.Class != Isolated || !strings.Contains(p.ClassReason, "dynamic") {
		t.Fatalf("class = %v (%s)", p.Class, p.ClassReason)
	}
	if p.Fuel != isolatedFuel {
		t.Fatalf("fuel = %d", p.Fuel)
	}
}

func TestClassifyRecursionIsolated(t *testing.T) {
	src := `
aspectdef Ping
	call Pong();
end
aspectdef Pong
	call Ping();
end
`
	p := compileOK(t, src)
	if p.Class != Isolated || !strings.Contains(p.ClassReason, "cycle") {
		t.Fatalf("class = %v (%s)", p.Class, p.ClassReason)
	}
	if p.WorstCost != 0 {
		t.Fatalf("worst cost = %d, want 0 (unbounded)", p.WorstCost)
	}
}

func TestClassifyCostIsolated(t *testing.T) {
	var b strings.Builder
	b.WriteString("aspectdef Big\n\tapply\n")
	for i := 0; i < 200; i++ {
		b.WriteString("\t\tdo Set('level', 1 + 2 + 3 + 4);\n")
	}
	b.WriteString("\tend\nend\n")
	p := compileOK(t, b.String())
	if p.Class != Isolated || !strings.Contains(p.ClassReason, "inline budget") {
		t.Fatalf("class = %v (%s), cost %d", p.Class, p.ClassReason, p.WorstCost)
	}
}

// TestIsolatedDecisionFlow drives an isolated policy to a decision:
// the first Decide only submits a snapshot, a later Decide picks up
// the completed result while it is fresh.
func TestIsolatedDecisionFlow(t *testing.T) {
	src := `
aspectdef Dyn
	apply dynamic
		do Set('level', 1 - violation);
	end
end
`
	pol, err := New(compileOK(t, src), Options{DecisionDeadline: 5 * time.Second})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer pol.Close()
	if _, ok := pol.Decide(monitor.Decision{Adapt: true, Violation: 0.5}, nil); ok {
		t.Fatal("first decide returned a decision before the worker could run")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		cfg, ok := pol.Decide(monitor.Decision{Adapt: true, Violation: 0.5}, nil)
		if ok {
			if cfg["level"] != 0.5 {
				t.Fatalf("cfg = %v", cfg)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("no decision arrived")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestIsolatedStaleDecisionDropped(t *testing.T) {
	src := `
aspectdef Dyn
	apply dynamic
		do Set('level', 1);
	end
end
`
	pol, err := New(compileOK(t, src), Options{DecisionDeadline: time.Nanosecond})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer pol.Close()
	for i := 0; i < 50; i++ {
		if cfg, ok := pol.Decide(monitor.Decision{Adapt: true}, nil); ok {
			t.Fatalf("stale decision honoured: %v", cfg)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRunawayPolicyPanics: a recursive policy burns its bound on the
// isolated worker; the failure is sticky and the next Decide panics,
// which is the tick path's quarantine signal.
func TestRunawayPolicyPanics(t *testing.T) {
	src := `
aspectdef Ping
	call Pong();
end
aspectdef Pong
	call Ping();
end
`
	pol, err := New(compileOK(t, src), Options{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer pol.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		panicked := func() (p bool) {
			defer func() {
				if r := recover(); r != nil {
					p = true
					if !strings.Contains(r.(string), "Ping") {
						t.Fatalf("panic = %v", r)
					}
				}
			}()
			pol.Decide(monitor.Decision{Adapt: true}, nil)
			return false
		}()
		if panicked {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("runaway policy never surfaced a panic")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCheckKnobs(t *testing.T) {
	src := `
aspectdef Steer
	apply
		do Set('levle', threads + 1);
	end
end
`
	p := compileOK(t, src)
	ce := p.CheckKnobs("level")
	if ce == nil || len(ce.Diags) != 2 {
		t.Fatalf("CheckKnobs = %v", ce)
	}
	for _, d := range ce.Diags {
		if d.Line == 0 || d.Col == 0 {
			t.Fatalf("diag missing position: %+v", d)
		}
	}
	if p.CheckKnobs("level", "levle", "threads") != nil {
		t.Fatal("allowed knobs still rejected")
	}
}

func TestProgramReuseAcrossInstances(t *testing.T) {
	p := compileOK(t, steerSrc)
	a, err := New(p, Options{Params: map[string]float64{"gain": 0}})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := New(p, Options{Params: map[string]float64{"gain": 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	ca, _ := a.Decide(monitor.Decision{Adapt: true, Violation: 0.5}, nil)
	cb, _ := b.Decide(monitor.Decision{Adapt: true, Violation: 0.5}, nil)
	if ca["level"] != 0.5 || cb["level"] != 1 {
		t.Fatalf("instances share state: %v %v", ca, cb)
	}
}
