// Package rtrm implements the Runtime Resource & Power Management layer
// of the ANTAREX stack (paper §V): DVFS governors (including the Linux
// default baseline and the optimal operating-point selection whose
// savings the paper quantifies at 18-50 %), a cluster power capper for
// the 20 MW Exascale envelope, a distributed thermal-safety controller,
// and an MS3-style seasonal scheduler ("do less when it's too hot").
//
// The RTRM closes the slow, system-side control loop of Fig. 1: it
// consumes node telemetry, decides operating points and resource
// allocations, and enforces SLAs and safe working conditions.
package rtrm

import (
	"math"

	"repro/internal/simhpc"
)

// Governor selects a device P-state for the next task.
type Governor interface {
	// Name identifies the policy.
	Name() string
	// PickPState returns the operating-point index d should use for t.
	PickPState(d *simhpc.Device, t *simhpc.Task) int
}

// PerformanceGovernor always runs at maximum frequency.
type PerformanceGovernor struct{}

// Name implements Governor.
func (PerformanceGovernor) Name() string { return "performance" }

// PickPState implements Governor.
func (PerformanceGovernor) PickPState(d *simhpc.Device, _ *simhpc.Task) int {
	return d.Spec.MaxPState()
}

// PowersaveGovernor always runs at minimum frequency.
type PowersaveGovernor struct{}

// Name implements Governor.
func (PowersaveGovernor) Name() string { return "powersave" }

// PickPState implements Governor.
func (PowersaveGovernor) PickPState(*simhpc.Device, *simhpc.Task) int { return 0 }

// OnDemandGovernor models the Linux default frequency selection the
// paper uses as its baseline (§V). Linux's ondemand/intel_pstate sees
// core *busyness*, not pipeline stalls: an HPC task keeps the core 100 %
// busy even while stalled on memory, so the governor ramps to maximum
// frequency regardless of the task's real frequency sensitivity. That
// blindness is exactly the head-room optimal selection recovers.
type OnDemandGovernor struct {
	// UpThreshold is the busyness above which the governor jumps to
	// maximum frequency (Linux default 0.80... expressed as fraction).
	UpThreshold float64
	// busyness is the exponentially-weighted observed load.
	busyness float64
}

// NewOnDemand returns the Linux-default-like governor.
func NewOnDemand() *OnDemandGovernor { return &OnDemandGovernor{UpThreshold: 0.80, busyness: 1} }

// Name implements Governor.
func (g *OnDemandGovernor) Name() string { return "ondemand" }

// Observe feeds the governor a busyness sample in [0,1] (wall-clock
// fraction the core was runnable — stalls count as busy).
func (g *OnDemandGovernor) Observe(busy float64) {
	g.busyness = 0.7*g.busyness + 0.3*busy
}

// PickPState implements Governor.
func (g *OnDemandGovernor) PickPState(d *simhpc.Device, _ *simhpc.Task) int {
	if g.busyness >= g.UpThreshold {
		return d.Spec.MaxPState()
	}
	// Proportional scaling below the threshold.
	idx := int(math.Round(g.busyness / g.UpThreshold * float64(d.Spec.MaxPState())))
	if idx > d.Spec.MaxPState() {
		idx = d.Spec.MaxPState()
	}
	return idx
}

// OptimalGovernor implements the paper's "optimal selection of operating
// points": per task, sweep the DVFS ladder and pick the point minimizing
// energy, optionally subject to a performance-degradation bound
// (MaxSlowdown ≥ 1; 0 means unconstrained).
//
// The sweep is memoized: under the roofline model both energy and
// slowdown scale linearly with the task's GFlop at fixed memory
// intensity (MemGB per GFlop), and an instance's power variability
// multiplies every P-state's energy uniformly, so the optimal point is
// fully determined by the device *model* (the shared immutable spec)
// and the intensity ratio. Workloads cluster on a handful of
// intensities, so the per-task cost collapses to one map lookup —
// this governor sits inside the kernel's per-epoch serial section.
// Like Manager, an OptimalGovernor must not be shared across
// goroutines without external serialization.
type OptimalGovernor struct {
	// MaxSlowdown bounds execution-time degradation relative to maximum
	// frequency (e.g. 1.5 = at most 50 % slower). 0 disables the bound.
	MaxSlowdown float64

	memo map[pstateKey]int
}

// pstateKey identifies an optimal-P-state decision: the device's
// immutable datasheet, the task's memory intensity, and the slowdown
// bound in force when the sweep ran (so retuning MaxSlowdown online
// never serves stale points).
type pstateKey struct {
	spec        *simhpc.DeviceSpec
	r           float64 // MemGB per GFlop (+Inf for pure-memory tasks)
	maxSlowdown float64
}

// Name implements Governor.
func (g *OptimalGovernor) Name() string { return "antarex-optimal" }

// PickPState implements Governor.
func (g *OptimalGovernor) PickPState(d *simhpc.Device, t *simhpc.Task) int {
	if t == nil {
		return d.Spec.MaxPState()
	}
	key := pstateKey{spec: d.Spec, r: math.Inf(1), maxSlowdown: g.MaxSlowdown}
	if t.GFlop > 0 {
		key.r = t.MemGB / t.GFlop
	}
	if ps, ok := g.memo[key]; ok {
		return ps
	}
	best := d.Spec.MaxPState()
	bestE := d.ExecEnergy(t, best)
	tMax := d.ExecTime(t, d.Spec.MaxPState())
	for i := 0; i < len(d.Spec.PStates); i++ {
		if g.MaxSlowdown > 0 && d.ExecTime(t, i) > g.MaxSlowdown*tMax {
			continue
		}
		if e := d.ExecEnergy(t, i); e < bestE {
			best, bestE = i, e
		}
	}
	if g.memo == nil {
		g.memo = make(map[pstateKey]int)
	} else if len(g.memo) >= 4096 {
		clear(g.memo) // pathological continuous intensities: stay bounded
	}
	g.memo[key] = best
	return best
}

// RunResult aggregates a governed execution.
type RunResult struct {
	Governor string
	EnergyJ  float64
	TimeS    float64
	Tasks    int
}

// EnergyPerTask returns average energy per task.
func (r RunResult) EnergyPerTask() float64 {
	if r.Tasks == 0 {
		return 0
	}
	return r.EnergyJ / float64(r.Tasks)
}

// RunTasks executes tasks sequentially on device d under gov, returning
// total energy and makespan. The device's counters are left untouched
// (a fresh accounting pass).
func RunTasks(d *simhpc.Device, gov Governor, tasks []*simhpc.Task) RunResult {
	res := RunResult{Governor: gov.Name()}
	for _, t := range tasks {
		ps := gov.PickPState(d, t)
		res.EnergyJ += d.ExecEnergy(t, ps)
		res.TimeS += d.ExecTime(t, ps)
		res.Tasks++
		if od, ok := gov.(*OnDemandGovernor); ok {
			// The core looks fully busy to the kernel during HPC tasks.
			od.Observe(1)
		}
	}
	return res
}

// GovernorSavings runs the same task list under the Linux-default
// baseline and the optimal governor and returns the fractional node
// energy saving — the §V claim of 18-50 % depending on the application.
func GovernorSavings(d *simhpc.Device, tasks []*simhpc.Task, maxSlowdown float64) (baseline, optimal RunResult, saving float64) {
	baseline = RunTasks(d, NewOnDemand(), tasks)
	optimal = RunTasks(d, &OptimalGovernor{MaxSlowdown: maxSlowdown}, tasks)
	if baseline.EnergyJ > 0 {
		saving = 1 - optimal.EnergyJ/baseline.EnergyJ
	}
	return baseline, optimal, saving
}
