package rtrm

import (
	"testing"

	"repro/internal/simhpc"
)

func dispatchCluster(n int, spread float64) *simhpc.Cluster {
	rng := simhpc.NewRNG(51)
	return simhpc.NewCluster(n, 20, func(i int) *simhpc.Node {
		return simhpc.HomogeneousNode("n", spread, rng)
	})
}

func TestDispatchFCFSBasics(t *testing.T) {
	c := dispatchCluster(4, 0)
	jobs := []BatchJob{
		{ID: 0, Nodes: 4, Runtime: 100, Submit: 0},
		{ID: 1, Nodes: 2, Runtime: 50, Submit: 10},
		{ID: 2, Nodes: 2, Runtime: 50, Submit: 10},
	}
	res := Dispatch(FCFS, c, jobs)
	// Job 0 occupies everything until 100; jobs 1 and 2 run side by side.
	if res.MakespanS != 150 {
		t.Errorf("makespan %v, want 150", res.MakespanS)
	}
	// Waits: 0, 90, 90.
	if res.MeanWaitS != 60 {
		t.Errorf("mean wait %v, want 60", res.MeanWaitS)
	}
	if res.EnergyJ <= 0 || res.Utilization <= 0 || res.Utilization > 1 {
		t.Errorf("metrics: %+v", res)
	}
}

func TestBackfillReducesWait(t *testing.T) {
	c := dispatchCluster(4, 0)
	// Head job needs the whole machine but can only start at t=100 (a
	// 2-node job holds half until then); a short narrow job can backfill.
	jobs := []BatchJob{
		{ID: 0, Nodes: 2, Runtime: 100, Submit: 0},
		{ID: 1, Nodes: 4, Runtime: 200, Submit: 1},
		{ID: 2, Nodes: 2, Runtime: 80, Submit: 2}, // fits before job 1 starts
	}
	fcfs := Dispatch(FCFS, c, jobs)
	easy := Dispatch(EASY, dispatchCluster(4, 0), jobs)
	if easy.Backfills == 0 {
		t.Fatal("EASY should backfill job 2")
	}
	if easy.MeanWaitS >= fcfs.MeanWaitS {
		t.Errorf("EASY wait %.1f should beat FCFS %.1f", easy.MeanWaitS, fcfs.MeanWaitS)
	}
	// Backfilling must not delay the head job: makespan equal or better.
	if easy.MakespanS > fcfs.MakespanS {
		t.Errorf("EASY makespan %.1f worse than FCFS %.1f", easy.MakespanS, fcfs.MakespanS)
	}
}

func TestEnergyAwarePlacementSavesEnergy(t *testing.T) {
	// With 15% instance variability, placing work on frugal nodes first
	// saves energy at equal schedule quality.
	mkJobs := func() []BatchJob {
		rng := simhpc.NewRNG(7)
		var jobs []BatchJob
		var t float64
		for i := 0; i < 60; i++ {
			jobs = append(jobs, BatchJob{ID: i, Nodes: 1 + rng.Intn(3), Runtime: 100 + rng.Exp(200), Submit: t})
			t += rng.Exp(150)
		}
		return jobs
	}
	easy := Dispatch(EASY, dispatchCluster(16, 0.15), mkJobs())
	aware := Dispatch(EnergyAwareEASY, dispatchCluster(16, 0.15), mkJobs())
	if aware.EnergyJ >= easy.EnergyJ {
		t.Errorf("energy-aware %.3e J should beat plain EASY %.3e J", aware.EnergyJ, easy.EnergyJ)
	}
	// Schedule quality stays comparable (within 10%).
	if aware.MeanWaitS > easy.MeanWaitS*1.1 {
		t.Errorf("energy-aware wait %.1f degraded vs %.1f", aware.MeanWaitS, easy.MeanWaitS)
	}
}

func TestDispatchEdgeCases(t *testing.T) {
	c := dispatchCluster(4, 0)
	// Empty queue.
	res := Dispatch(EASY, c, nil)
	if res.MakespanS != 0 || res.EnergyJ != 0 {
		t.Errorf("empty: %+v", res)
	}
	// Oversized job is dropped, others run.
	res = Dispatch(FCFS, dispatchCluster(4, 0), []BatchJob{
		{ID: 0, Nodes: 99, Runtime: 100, Submit: 0},
		{ID: 1, Nodes: 1, Runtime: 50, Submit: 0},
	})
	if res.MakespanS != 50 {
		t.Errorf("oversized-drop: %+v", res)
	}
}

func TestRandomJobMixAndPolicies(t *testing.T) {
	rng := simhpc.NewRNG(3)
	jobs := RandomJobMix(120, 16, rng)
	if len(jobs) != 120 {
		t.Fatalf("jobs: %d", len(jobs))
	}
	for i := 1; i < len(jobs); i++ {
		if jobs[i].Submit < jobs[i-1].Submit {
			t.Fatal("submit times must be non-decreasing")
		}
		if jobs[i].Nodes < 1 || jobs[i].Nodes > 16 || jobs[i].Runtime < 30 {
			t.Fatalf("job %d implausible: %+v", i, jobs[i])
		}
	}
	fcfs := Dispatch(FCFS, dispatchCluster(16, 0.15), jobs)
	easy := Dispatch(EASY, dispatchCluster(16, 0.15), jobs)
	if easy.Backfills == 0 {
		t.Error("a 120-job mix should yield backfills")
	}
	if easy.MeanWaitS > fcfs.MeanWaitS {
		t.Errorf("EASY wait %.0f should not exceed FCFS %.0f", easy.MeanWaitS, fcfs.MeanWaitS)
	}
	if fcfs.String() == "" || easy.String() == "" {
		t.Error("empty renders")
	}
}
