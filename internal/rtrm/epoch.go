package rtrm

import (
	"sync"

	"repro/internal/simhpc"
)

// This file splits the manager's control epoch into its three sub-stages
// so the kernel's epoch executor can pipeline them across backends and
// fan the dispatch loop out across workers:
//
//   BeginEpoch  — cluster-level decisions: MS3 admission + cooling, the
//                 power-cap fit (serial; mutates manager state);
//   SweepEpoch  — the governor sweep: resolve every admitted task's
//                 P-state, pre-clamped by the thermal ceiling and the
//                 cap plan (serial; the optimal governor's memo map is
//                 not goroutine-safe);
//   DispatchEpoch — run the admitted tasks on their nodes (the only
//                 parallel stage: nodes are partitioned into contiguous
//                 worker blocks, and every P-state was resolved by the
//                 sweep, so workers touch disjoint devices and disjoint
//                 scratch slots);
//   CommitEpoch — merge the per-node partials, advance thermals, fold
//                 the cumulative counters (serial).
//
// RunEpoch is the composition with one dispatch worker, so the classic
// entry point and the staged one are the same code path.
//
// Determinism: energy and done-work accumulate into per-node partial
// sums (each node's tasks in ascending submission order) merged in node
// index order at commit. That order is independent of the worker count,
// so DispatchEpoch(1) and DispatchEpoch(8) produce bit-identical
// reports — protocol-equivalence tests stay exact under any core
// budget. Workers accumulate a node's partials in locals and store once
// per node, so adjacent nodes sharing a cache line cost one write, not
// a ping-pong per task.

// epochScratch is the manager's in-flight epoch state between
// BeginEpoch and CommitEpoch. All slices are reused across epochs;
// admitted aliases the caller's offered slice only until commit.
type epochScratch struct {
	dt       float64
	rep      EpochReport
	cap      CapResult
	admitted []*simhpc.Task
	devs     []*simhpc.Device // per node, resolved once per epoch
	ceil     []int            // per node thermal ceiling, stable within the epoch
	ps       []int            // per admitted task, resolved by the sweep
	nodeE    []float64        // per node energy partials
	nodeG    []float64        // per node done-GFlop partials
}

// BeginEpoch opens a control epoch of length dt seconds: MS3 decides
// admission and cooling, the capper fits the envelope. Serial — it
// mutates cluster and manager state.
func (m *Manager) BeginEpoch(dt float64, offered []*simhpc.Task) {
	ep := &m.ep
	ep.dt = dt
	ep.rep = EpochReport{}
	plan := m.MS3.Decide(m.Cluster)
	m.Cluster.Cooling.CoolingBoost = plan.CoolingBoost
	ep.rep.Plan = plan

	admit := int(float64(len(offered)) * plan.AdmitFraction)
	ep.admitted = offered[:admit]
	for _, t := range offered[admit:] {
		ep.rep.DeferredGFlop += t.GFlop
	}

	cap := m.Capper.Apply(m.Cluster, 1)
	ep.rep.Cap = cap
	ep.cap = cap
	m.CapDemotions += cap.Demotions
}

// SweepEpoch resolves every admitted task's P-state: the governor's
// pick, clamped by the node's thermal ceiling and the cap plan. Serial
// — the optimal governor memoizes into a plain map. The per-node device
// and ceiling are resolved once here: both are stable within an epoch
// (Thermal.Update only runs at commit).
func (m *Manager) SweepEpoch() {
	ep := &m.ep
	nodes := m.Cluster.Nodes
	ep.devs = resizeSlice(ep.devs, len(nodes))
	ep.ceil = resizeSlice(ep.ceil, len(nodes))
	for n, node := range nodes {
		dev := node.CPUDevice()
		if dev == nil {
			dev = node.Devices[0]
		}
		ep.devs[n] = dev
		ceil := m.Thermal.Ceiling(node)
		if capPS, ok := capPState(ep.cap, n); ok && ceil > capPS {
			ceil = capPS
		}
		ep.ceil[n] = ceil
	}
	ep.ps = resizeSlice(ep.ps, len(ep.admitted))
	for i, t := range ep.admitted {
		n := i % len(nodes)
		ps := m.Gov.PickPState(ep.devs[n], t)
		if c := ep.ceil[n]; ps > c {
			ps = c
		}
		ep.ps[i] = ps
	}
}

// DispatchEpoch runs the admitted tasks on their round-robin nodes at
// the P-states the sweep resolved, fanned out across up to `workers`
// goroutines over contiguous node blocks. Worker w owns whole nodes, so
// device mutation (SetPState) and the partial-sum slots are disjoint;
// per-node task order is ascending submission order under any worker
// count. workers ≤ 1 dispatches inline with no goroutines.
func (m *Manager) DispatchEpoch(workers int) {
	ep := &m.ep
	nNodes := len(m.Cluster.Nodes)
	ep.nodeE = resizeSlice(ep.nodeE, nNodes)
	ep.nodeG = resizeSlice(ep.nodeG, nNodes)
	if workers > nNodes {
		workers = nNodes
	}
	// Goroutine spawn + join costs ~µs; below ~32 tasks per worker the
	// fan-out is pure overhead.
	if max := 1 + len(ep.admitted)/32; workers > max {
		workers = max
	}
	if workers <= 1 {
		m.dispatchNodes(0, nNodes)
		return
	}
	per := (nNodes + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * per
		hi := lo + per
		if hi > nNodes {
			hi = nNodes
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			m.dispatchNodes(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// dispatchNodes runs the admitted tasks of nodes [lo, hi): for node n
// those are tasks n, n+N, n+2N, ... in ascending order — the same
// per-node order and final P-state the serial loop produces. Partials
// accumulate in locals and store once per node.
func (m *Manager) dispatchNodes(lo, hi int) {
	ep := &m.ep
	nNodes := len(m.Cluster.Nodes)
	for n := lo; n < hi; n++ {
		dev := ep.devs[n]
		var e, g float64
		for i := n; i < len(ep.admitted); i += nNodes {
			t := ep.admitted[i]
			ps := ep.ps[i]
			dev.SetPState(ps)
			e += dev.ExecEnergy(t, ps)
			g += t.GFlop
		}
		ep.nodeE[n] = e
		ep.nodeG[n] = g
	}
}

// CommitEpoch closes the epoch: merge the per-node partials in node
// index order, advance thermal state, fold the cumulative counters.
// Serial. The report it returns matches what the classic RunEpoch
// returns for the same inputs.
func (m *Manager) CommitEpoch() EpochReport {
	ep := &m.ep
	for n := range m.Cluster.Nodes {
		ep.rep.EnergyJ += ep.nodeE[n]
		ep.rep.DoneGFlop += ep.nodeG[n]
	}

	hot := m.Cluster.StepThermals(ep.dt, 1)
	ep.rep.HotNodes = hot
	m.ThermalEvents += hot
	for _, n := range m.Cluster.Nodes {
		m.Thermal.Update(n)
	}

	m.EpochCount++
	m.EnergyJ += ep.rep.EnergyJ
	m.WorkGFlop += ep.rep.DoneGFlop
	m.DeferredGFlop += ep.rep.DeferredGFlop

	// The admitted view aliases the caller's offered slice; drop it so
	// a burst epoch's tasks are not pinned until the next epoch.
	ep.admitted = nil
	return ep.rep
}

// resizeSlice returns s resized to n, reusing capacity; numeric slots
// are reset to zero values.
func resizeSlice[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	clear(s)
	return s
}
