package rtrm

import (
	"testing"

	"repro/internal/simhpc"
)

func cpu() *simhpc.Device { return simhpc.NewDevice(simhpc.XeonCPUSpec(), "d", 0, nil) }

func TestGovernorBasics(t *testing.T) {
	d := cpu()
	task := simhpc.NewWorkloadGen(1).Balanced(100)
	if ps := (PerformanceGovernor{}).PickPState(d, task); ps != d.Spec.MaxPState() {
		t.Errorf("performance picked %d", ps)
	}
	if ps := (PowersaveGovernor{}).PickPState(d, task); ps != 0 {
		t.Errorf("powersave picked %d", ps)
	}
	od := NewOnDemand()
	od.Observe(1)
	if ps := od.PickPState(d, task); ps != d.Spec.MaxPState() {
		t.Errorf("ondemand under full busyness picked %d, want max", ps)
	}
	for i := 0; i < 20; i++ {
		od.Observe(0.1)
	}
	if ps := od.PickPState(d, task); ps >= d.Spec.MaxPState() {
		t.Errorf("ondemand under light load picked %d, want below max", ps)
	}
}

// TestGovernorSavingsClaim reproduces the §V claim: optimal operating
// point selection saves 18-50 % node energy vs the Linux default,
// depending on the application's frequency sensitivity.
func TestGovernorSavingsClaim(t *testing.T) {
	gen := simhpc.NewWorkloadGen(3)
	cases := []struct {
		name       string
		tasks      []*simhpc.Task
		minS, maxS float64
	}{
		{"memory-bound", []*simhpc.Task{gen.MemoryBound(100), gen.MemoryBound(80)}, 0.30, 0.60},
		{"balanced", []*simhpc.Task{gen.Balanced(100), gen.Balanced(80)}, 0.18, 0.50},
		{"compute-bound", []*simhpc.Task{gen.ComputeBound(100), gen.ComputeBound(80)}, 0.05, 0.40},
	}
	for _, c := range cases {
		_, _, saving := GovernorSavings(cpu(), c.tasks, 0)
		if saving < c.minS || saving > c.maxS {
			t.Errorf("%s: saving %.1f%%, want in [%.0f%%, %.0f%%]",
				c.name, saving*100, c.minS*100, c.maxS*100)
		}
	}
}

func TestOptimalGovernorRespectsSlowdownBound(t *testing.T) {
	d := cpu()
	task := simhpc.NewWorkloadGen(5).ComputeBound(100)
	unbounded := (&OptimalGovernor{}).PickPState(d, task)
	bounded := (&OptimalGovernor{MaxSlowdown: 1.1}).PickPState(d, task)
	tMax := d.ExecTime(task, d.Spec.MaxPState())
	if d.ExecTime(task, bounded) > 1.1*tMax*1.0001 {
		t.Errorf("bounded pick %d violates slowdown bound", bounded)
	}
	if bounded < unbounded {
		t.Errorf("tighter bound should not pick lower frequency (%d < %d)", bounded, unbounded)
	}
	// Unbounded optimal for compute-bound work is not the minimum
	// P-state (static energy accumulates over longer runtime).
	if eLow, eOpt := d.ExecEnergy(task, 0), d.ExecEnergy(task, unbounded); eOpt > eLow {
		t.Errorf("optimal %d (E=%.1f) worse than floor (E=%.1f)", unbounded, eOpt, eLow)
	}
}

func TestPowerCapper(t *testing.T) {
	rng := simhpc.NewRNG(17)
	c := simhpc.NewCluster(16, 20, func(i int) *simhpc.Node {
		return simhpc.HomogeneousNode("n", 0.15, rng)
	})
	uncapped := c.FacilityPowerW(1)
	pc := &PowerCapper{CapW: uncapped * 0.7}
	res := pc.Apply(c, 1)
	if res.FacilityW > pc.CapW*1.0001 {
		t.Errorf("cap violated: %.0f > %.0f", res.FacilityW, pc.CapW)
	}
	if res.Demotions == 0 {
		t.Error("a 30%% cut must demote someone")
	}
	if res.ThroughputGFLOPS <= 0 || res.ThroughputGFLOPS >= c.PeakGFLOPS() {
		t.Errorf("throughput %.0f implausible vs peak %.0f", res.ThroughputGFLOPS, c.PeakGFLOPS())
	}
	// Greedy beats uniform derating on throughput at the same cap.
	uni := pc.UniformCap(c, 1)
	if uni.FacilityW > pc.CapW*1.0001 {
		t.Errorf("uniform cap violated: %.0f", uni.FacilityW)
	}
	if res.ThroughputGFLOPS < uni.ThroughputGFLOPS*0.999 {
		t.Errorf("greedy (%.0f GFLOPS) should be at least uniform (%.0f)",
			res.ThroughputGFLOPS, uni.ThroughputGFLOPS)
	}
	// A generous cap demotes nothing.
	loose := &PowerCapper{CapW: uncapped * 2}
	if r := loose.Apply(c, 1); r.Demotions != 0 {
		t.Errorf("loose cap demoted %d", r.Demotions)
	}
	// An infeasible cap bottoms out without looping forever.
	tight := &PowerCapper{CapW: 1}
	r := tight.Apply(c, 1)
	for _, ps := range r.PStates {
		if ps != 0 {
			t.Errorf("infeasible cap should floor all P-states: %v", r.PStates)
			break
		}
	}
}

func TestThermalControllerHysteresis(t *testing.T) {
	tc := NewThermalController()
	n := simhpc.HomogeneousNode("n", 0, nil)
	maxPS := n.CPUDevice().Spec.MaxPState()

	n.TempC = 40
	if got := tc.Update(n); got != maxPS {
		t.Errorf("cool node capped to %d", got)
	}
	// Heat up past the guard band: caps tighten monotonically.
	n.TempC = n.TSafeC - 2
	first := tc.Update(n)
	if first != maxPS-1 {
		t.Errorf("first cap %d, want %d", first, maxPS-1)
	}
	second := tc.Update(n)
	if second >= first {
		t.Errorf("cap should tighten while hot: %d then %d", first, second)
	}
	if tc.CappedNodes() != 1 {
		t.Errorf("capped nodes: %d", tc.CappedNodes())
	}
	// Cooling inside the hysteresis band holds the cap.
	n.TempC = n.TSafeC - tc.MarginC - 1
	held := tc.Update(n)
	if held != second {
		t.Errorf("cap should hold in hysteresis band: %d -> %d", second, held)
	}
	// Cooling past the release band relaxes one step at a time.
	n.TempC = n.TSafeC - tc.MarginC - tc.ReleaseC - 5
	relaxed := tc.Update(n)
	if relaxed != held+1 {
		t.Errorf("cap should relax one step: %d -> %d", held, relaxed)
	}
	for i := 0; i < 20; i++ {
		tc.Update(n)
	}
	if tc.CappedNodes() != 0 {
		t.Error("cap should eventually be forgotten")
	}
	if got := tc.Ceiling(n); got != maxPS {
		t.Errorf("ceiling after release: %d", got)
	}
}

func TestMS3Scheduler(t *testing.T) {
	s := NewMS3()
	cool := simhpc.NewCluster(4, 12, func(i int) *simhpc.Node {
		return simhpc.HomogeneousNode("n", 0, nil)
	})
	hot := simhpc.NewCluster(4, 35, func(i int) *simhpc.Node {
		return simhpc.HomogeneousNode("n", 0, nil)
	})
	pCool := s.Decide(cool)
	pHot := s.Decide(hot)
	if pCool.AdmitFraction != 1 || pCool.CoolingBoost != 0 {
		t.Errorf("cool plan should be full throttle: %+v", pCool)
	}
	if pHot.AdmitFraction >= 1 {
		t.Errorf("hot plan should defer load: %+v", pHot)
	}
	if pHot.CoolingBoost <= 0 {
		t.Errorf("hot plan should boost cooling: %+v", pHot)
	}
	// MS3 energy-to-solution in summer beats the do-nothing plan.
	naive := Plan{AdmitFraction: 1, PUE: hot.Cooling.PUE(hot.AmbientC)}
	eMS3 := s.EnergyToSolution(hot, pHot, 1e6)
	eNaive := s.EnergyToSolution(hot, naive, 1e6)
	if eMS3 >= eNaive {
		t.Errorf("MS3 (%.0f J) should beat naive (%.0f J) in summer", eMS3, eNaive)
	}
}

func TestManagerEpochs(t *testing.T) {
	rng := simhpc.NewRNG(23)
	c := simhpc.NewCluster(8, 30, func(i int) *simhpc.Node {
		return simhpc.HomogeneousNode("n", 0.15, rng)
	})
	capW := c.FacilityPowerW(1) * 0.8
	m := NewManager(c, capW)
	gen := simhpc.NewWorkloadGen(29)
	var totalOffered float64
	for epoch := 0; epoch < 20; epoch++ {
		tasks := gen.Mix(32, 1, 1, 1, 20)
		for _, task := range tasks {
			totalOffered += task.GFlop
		}
		rep := m.RunEpoch(60, tasks)
		if rep.Cap.FacilityW > capW*1.001 {
			t.Fatalf("epoch %d: cap violated (%.0f > %.0f)", epoch, rep.Cap.FacilityW, capW)
		}
	}
	if m.EpochCount != 20 {
		t.Errorf("epochs: %d", m.EpochCount)
	}
	if m.WorkGFlop <= 0 || m.EnergyJ <= 0 {
		t.Error("no work accounted")
	}
	if m.WorkGFlop+m.DeferredGFlop < totalOffered*0.999 {
		t.Errorf("work leaked: done=%.0f deferred=%.0f offered=%.0f",
			m.WorkGFlop, m.DeferredGFlop, totalOffered)
	}
	if m.EfficiencyGFLOPSPerJ() <= 0 {
		t.Error("efficiency should be positive")
	}
	// At 30C ambient MS3 must have deferred something.
	if m.DeferredGFlop == 0 {
		t.Error("summer epochs should defer load")
	}
}

// TestCapPStateIndexing is the regression test for the cap plan being
// indexed by task instead of by node: a plan shorter than the cluster
// (or empty) must leave uncovered nodes uncapped, never wrap around to
// another node's P-state or panic.
func TestCapPStateIndexing(t *testing.T) {
	cap := CapResult{PStates: []int{3, 1}}
	if ps, ok := capPState(cap, 0); !ok || ps != 3 {
		t.Errorf("node 0: got (%d,%v), want (3,true)", ps, ok)
	}
	if ps, ok := capPState(cap, 1); !ok || ps != 1 {
		t.Errorf("node 1: got (%d,%v), want (1,true)", ps, ok)
	}
	// Node 2 is not covered by the plan: the old i%len wrap would have
	// silently handed it node 0's P-state.
	if _, ok := capPState(cap, 2); ok {
		t.Error("node beyond the plan must be uncapped, not wrapped")
	}
	if _, ok := capPState(CapResult{}, 0); ok {
		t.Error("an empty plan must cap nothing (old code panicked)")
	}
	if _, ok := capPState(cap, -1); ok {
		t.Error("negative node index must cap nothing")
	}
}

// TestManagerEpochShortCapPlan drives a full epoch where the cap plan
// covers fewer nodes than receive tasks and checks the epoch completes
// with the plan applied per node (no wraparound panic path).
func TestManagerEpochShortCapPlan(t *testing.T) {
	rng := simhpc.NewRNG(41)
	c := simhpc.NewCluster(4, 20, func(i int) *simhpc.Node {
		return simhpc.HomogeneousNode("n", 0.15, rng)
	})
	m := NewManager(c, c.FacilityPowerW(1)*2) // generous: no demotions
	gen := simhpc.NewWorkloadGen(43)
	// More tasks than nodes forces the round-robin to wrap the node
	// list several times, exercising every nodeIdx against the plan.
	rep := m.RunEpoch(60, gen.Mix(16, 1, 1, 1, 10))
	if len(rep.Cap.PStates) != len(c.Nodes) {
		t.Fatalf("plan covers %d of %d nodes", len(rep.Cap.PStates), len(c.Nodes))
	}
	if rep.DoneGFlop <= 0 {
		t.Error("epoch did no work")
	}
}

// TestPowerCapperApplyAllocs pins the fast-path property the kernel
// relies on: Apply allocates only the escaping result slice.
func TestPowerCapperApplyAllocs(t *testing.T) {
	rng := simhpc.NewRNG(59)
	c := simhpc.NewCluster(16, 20, func(i int) *simhpc.Node {
		return simhpc.HomogeneousNode("n", 0.15, rng)
	})
	pc := &PowerCapper{CapW: c.FacilityPowerW(1) * 0.8}
	allocs := testing.AllocsPerRun(100, func() {
		pc.Apply(c, 1)
	})
	if allocs > 1 {
		t.Errorf("Apply allocates %.0f objects per call, want <= 1 (the result slice)", allocs)
	}
}

// TestOptimalGovernorMemoTracksSlowdownBound: the memoized DVFS sweep
// must not serve a point cached under a different MaxSlowdown.
func TestOptimalGovernorMemoTracksSlowdownBound(t *testing.T) {
	d := cpu()
	task := simhpc.NewWorkloadGen(3).ComputeBound(100)
	g := &OptimalGovernor{} // unconstrained: free to pick a slow point
	free := g.PickPState(d, task)
	g.MaxSlowdown = 1.0000001 // effectively "no slowdown allowed"
	bound := g.PickPState(d, task)
	if bound != d.Spec.MaxPState() {
		t.Errorf("near-1.0 slowdown bound picked %d, want max %d (stale memo?)",
			bound, d.Spec.MaxPState())
	}
	if free == d.Spec.MaxPState() {
		t.Skip("unconstrained sweep already picked max; bound change not observable")
	}
}
