package rtrm

import (
	"repro/internal/simhpc"
)

// PowerCapper enforces a facility-level power envelope (the paper's
// 20-30 MW Exascale target, scaled to the simulated cluster) by lowering
// node operating points until projected facility power fits the cap.
//
// The policy is "greedy highest-power-first": repeatedly demote the
// P-state of the node drawing the most power. Greedy demotion sheds the
// most watts per step and, because each node's power is convex in
// frequency, approximates the throughput-maximal allocation under the
// cap far better than uniform derating.
type PowerCapper struct {
	// CapW is the facility power budget in watts (includes PUE).
	CapW float64
}

// CapResult reports a capping decision.
type CapResult struct {
	// PStates holds the chosen per-node CPU P-state (index by node).
	PStates []int
	// FacilityW is projected facility power after capping.
	FacilityW float64
	// ThroughputGFLOPS is the projected aggregate compute rate.
	ThroughputGFLOPS float64
	// Demotions counts P-state reductions applied.
	Demotions int
}

// nodePowerAt is node i's power with its CPUs pinned at ps (other
// devices at their current P-state).
func nodePowerAt(c *simhpc.Cluster, i, ps int, util float64) float64 {
	var p float64
	for _, d := range c.Nodes[i].Devices {
		if d.Spec.Kind == simhpc.CPU {
			p += d.PowerW(ps, util)
		} else {
			p += d.PowerW(d.PState(), util)
		}
	}
	return p
}

// nodeRateAt is node i's compute rate with its CPUs pinned at ps.
func nodeRateAt(c *simhpc.Cluster, i, ps int) float64 {
	var r float64
	for _, d := range c.Nodes[i].Devices {
		if d.Spec.Kind == simhpc.CPU {
			r += d.Spec.PeakGFLOPS * d.FreqRatio(ps)
		} else {
			r += d.Spec.PeakGFLOPS * d.FreqRatio(d.PState())
		}
	}
	return r
}

// Apply computes per-node P-states under the cap for a cluster running
// at the given utilization. It does not mutate the cluster; callers set
// the returned P-states if they accept the plan.
//
// This is on the kernel's per-epoch fast path, so it allocates only the
// escaping result slice: each demotion step is an O(n) max-scan for the
// hungriest node with headroom (the former sort per step bought nothing
// — only the maximum is consumed) and the projected facility power is
// updated incrementally with the demoted node's delta instead of being
// resummed over the cluster.
func (pc *PowerCapper) Apply(c *simhpc.Cluster, util float64) CapResult {
	n := len(c.Nodes)
	res := CapResult{PStates: make([]int, n)}
	ps := res.PStates // chosen per-node P-states, refined in place
	pue := c.PUE()
	var cur float64
	for i, node := range c.Nodes {
		dev := node.CPUDevice()
		if dev == nil {
			dev = node.Devices[0]
		}
		ps[i] = dev.Spec.MaxPState()
		cur += nodePowerAt(c, i, ps[i], util)
	}
	cur *= pue

	// capTol absorbs float summation-order noise so a cap equal to the
	// uncapped power demotes nothing.
	capLimit := pc.CapW * (1 + 1e-9)

	for cur > capLimit {
		// Demote the hungriest node that can still go lower.
		best, bestP := -1, 0.0
		for i := range ps {
			if ps[i] == 0 {
				continue
			}
			if p := nodePowerAt(c, i, ps[i], util); best < 0 || p > bestP {
				best, bestP = i, p
			}
		}
		if best < 0 {
			break // floor reached; cap infeasible
		}
		ps[best]--
		res.Demotions++
		cur += (nodePowerAt(c, best, ps[best], util) - bestP) * pue
	}
	var rate float64
	for i := range ps {
		rate += nodeRateAt(c, i, ps[i])
	}
	res.FacilityW = cur
	res.ThroughputGFLOPS = rate
	return res
}

// UniformCap is the naive alternative: derate every node to the same
// P-state, the first that fits the budget. Used as the ablation baseline
// for the capping benchmark.
func (pc *PowerCapper) UniformCap(c *simhpc.Cluster, util float64) CapResult {
	pue := c.PUE()
	maxPS := 0
	for _, n := range c.Nodes {
		if d := n.CPUDevice(); d != nil && d.Spec.MaxPState() > maxPS {
			maxPS = d.Spec.MaxPState()
		}
	}
	res := CapResult{PStates: make([]int, len(c.Nodes))}
	for ps := maxPS; ps >= 0; ps-- {
		var power, rate float64
		for _, n := range c.Nodes {
			for _, d := range n.Devices {
				if d.Spec.Kind == simhpc.CPU {
					power += d.PowerW(ps, util)
					rate += d.Spec.PeakGFLOPS * d.FreqRatio(ps)
				} else {
					power += d.PowerW(d.PState(), util)
					rate += d.Spec.PeakGFLOPS * d.FreqRatio(d.PState())
				}
			}
		}
		power *= pue
		if power <= pc.CapW*(1+1e-9) || ps == 0 {
			for i := range res.PStates {
				res.PStates[i] = ps
			}
			res.FacilityW = power
			res.ThroughputGFLOPS = rate
			res.Demotions = (maxPS - ps) * len(c.Nodes)
			return res
		}
	}
	return res
}
