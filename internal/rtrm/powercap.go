package rtrm

import (
	"sort"

	"repro/internal/simhpc"
)

// PowerCapper enforces a facility-level power envelope (the paper's
// 20-30 MW Exascale target, scaled to the simulated cluster) by lowering
// node operating points until projected facility power fits the cap.
//
// The policy is "greedy highest-power-first": repeatedly demote the
// P-state of the node drawing the most power. Greedy demotion sheds the
// most watts per step and, because each node's power is convex in
// frequency, approximates the throughput-maximal allocation under the
// cap far better than uniform derating.
type PowerCapper struct {
	// CapW is the facility power budget in watts (includes PUE).
	CapW float64
}

// CapResult reports a capping decision.
type CapResult struct {
	// PStates holds the chosen per-node CPU P-state (index by node).
	PStates []int
	// FacilityW is projected facility power after capping.
	FacilityW float64
	// ThroughputGFLOPS is the projected aggregate compute rate.
	ThroughputGFLOPS float64
	// Demotions counts P-state reductions applied.
	Demotions int
}

// Apply computes per-node P-states under the cap for a cluster running
// at the given utilization. It does not mutate the cluster; callers set
// the returned P-states if they accept the plan.
func (pc *PowerCapper) Apply(c *simhpc.Cluster, util float64) CapResult {
	type nodeState struct {
		idx int
		ps  int
	}
	states := make([]nodeState, len(c.Nodes))
	for i, n := range c.Nodes {
		dev := n.CPUDevice()
		if dev == nil {
			dev = n.Devices[0]
		}
		states[i] = nodeState{idx: i, ps: dev.Spec.MaxPState()}
	}
	pue := c.PUE()

	nodePower := func(i, ps int) float64 {
		n := c.Nodes[i]
		var p float64
		for _, d := range n.Devices {
			if d.Spec.Kind == simhpc.CPU {
				p += d.PowerW(ps, util)
			} else {
				p += d.PowerW(d.PState(), util)
			}
		}
		return p
	}
	nodeRate := func(i, ps int) float64 {
		n := c.Nodes[i]
		var r float64
		for _, d := range n.Devices {
			if d.Spec.Kind == simhpc.CPU {
				r += d.Spec.PeakGFLOPS * d.FreqRatio(ps)
			} else {
				r += d.Spec.PeakGFLOPS * d.FreqRatio(d.PState())
			}
		}
		return r
	}

	total := func() float64 {
		var s float64
		for _, st := range states {
			s += nodePower(st.idx, st.ps)
		}
		return s * pue
	}

	// capTol absorbs float summation-order noise so a cap equal to the
	// uncapped power demotes nothing.
	capLimit := pc.CapW * (1 + 1e-9)

	res := CapResult{PStates: make([]int, len(c.Nodes))}
	cur := total()
	for cur > capLimit {
		// Demote the hungriest node that can still go lower.
		sort.Slice(states, func(a, b int) bool {
			return nodePower(states[a].idx, states[a].ps) > nodePower(states[b].idx, states[b].ps)
		})
		demoted := false
		for k := range states {
			if states[k].ps > 0 {
				states[k].ps--
				res.Demotions++
				demoted = true
				break
			}
		}
		if !demoted {
			break // floor reached; cap infeasible
		}
		cur = total()
	}
	var rate float64
	for _, st := range states {
		res.PStates[st.idx] = st.ps
		rate += nodeRate(st.idx, st.ps)
	}
	res.FacilityW = cur
	res.ThroughputGFLOPS = rate
	return res
}

// UniformCap is the naive alternative: derate every node to the same
// P-state, the first that fits the budget. Used as the ablation baseline
// for the capping benchmark.
func (pc *PowerCapper) UniformCap(c *simhpc.Cluster, util float64) CapResult {
	pue := c.PUE()
	maxPS := 0
	for _, n := range c.Nodes {
		if d := n.CPUDevice(); d != nil && d.Spec.MaxPState() > maxPS {
			maxPS = d.Spec.MaxPState()
		}
	}
	res := CapResult{PStates: make([]int, len(c.Nodes))}
	for ps := maxPS; ps >= 0; ps-- {
		var power, rate float64
		for _, n := range c.Nodes {
			for _, d := range n.Devices {
				if d.Spec.Kind == simhpc.CPU {
					power += d.PowerW(ps, util)
					rate += d.Spec.PeakGFLOPS * d.FreqRatio(ps)
				} else {
					power += d.PowerW(d.PState(), util)
					rate += d.Spec.PeakGFLOPS * d.FreqRatio(d.PState())
				}
			}
		}
		power *= pue
		if power <= pc.CapW*(1+1e-9) || ps == 0 {
			for i := range res.PStates {
				res.PStates[i] = ps
			}
			res.FacilityW = power
			res.ThroughputGFLOPS = rate
			res.Demotions = (maxPS - ps) * len(c.Nodes)
			return res
		}
	}
	return res
}
