package rtrm

import (
	"fmt"
	"testing"

	"repro/internal/simhpc"
)

func epochTestManager(nodes int) *Manager {
	rng := simhpc.NewRNG(77)
	cluster := simhpc.NewCluster(nodes, 22, func(i int) *simhpc.Node {
		return simhpc.HomogeneousNode(fmt.Sprintf("n%d", i), 0.15, rng)
	})
	return NewManager(cluster, cluster.FacilityPowerW(1)*0.9)
}

// TestStagedEpochMatchesRunEpoch: the staged API with a parallel
// dispatch fan-out must produce bit-identical reports and cumulative
// stats to the classic serial RunEpoch — the determinism contract the
// kernel's protocol-equivalence tests lean on. Per-node partials merged
// in node order make the float accumulation order worker-count
// independent.
func TestStagedEpochMatchesRunEpoch(t *testing.T) {
	for _, workers := range []int{2, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			serial := epochTestManager(16)
			staged := epochTestManager(16)
			genA := simhpc.NewWorkloadGen(9)
			genB := simhpc.NewWorkloadGen(9)
			for epoch := 0; epoch < 25; epoch++ {
				tasksA := genA.Mix(40, 2, 1, 1, 8)
				tasksB := genB.Mix(40, 2, 1, 1, 8)

				repA := serial.RunEpoch(60, tasksA)

				staged.BeginEpoch(60, tasksB)
				staged.SweepEpoch()
				staged.DispatchEpoch(workers)
				repB := staged.CommitEpoch()

				// Bit-equality on every numeric field (the report also
				// carries the cap plan, whose slice makes == illegal).
				if repA.EnergyJ != repB.EnergyJ || repA.DoneGFlop != repB.DoneGFlop ||
					repA.DeferredGFlop != repB.DeferredGFlop || repA.HotNodes != repB.HotNodes {
					t.Fatalf("epoch %d: staged(workers=%d) report diverged:\nserial: %+v\nstaged: %+v",
						epoch, workers, repA, repB)
				}
			}
			if a, b := serial.Stats(), staged.Stats(); a != b {
				t.Errorf("cumulative stats diverged:\nserial: %+v\nstaged: %+v", a, b)
			}
		})
	}
}

// TestStagedEpochEmptyAndTiny: degenerate shapes — no offered work, and
// fewer tasks than nodes — must not panic or skew counters under a
// parallel dispatch.
func TestStagedEpochEmptyAndTiny(t *testing.T) {
	m := epochTestManager(8)
	m.BeginEpoch(60, nil)
	m.SweepEpoch()
	m.DispatchEpoch(4)
	rep := m.CommitEpoch()
	if rep.DoneGFlop != 0 || rep.DeferredGFlop != 0 {
		t.Errorf("empty epoch did work: %+v", rep)
	}
	gen := simhpc.NewWorkloadGen(3)
	m.BeginEpoch(60, gen.Mix(3, 1, 1, 1, 8))
	m.SweepEpoch()
	m.DispatchEpoch(8)
	rep = m.CommitEpoch()
	if rep.DoneGFlop <= 0 {
		t.Errorf("tiny epoch did no work: %+v", rep)
	}
	if m.EpochCount != 2 {
		t.Errorf("EpochCount = %d, want 2", m.EpochCount)
	}
}
