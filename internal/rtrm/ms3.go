package rtrm

import "repro/internal/simhpc"

// MS3Scheduler is the Mediterranean-style job scheduler of §V's citation
// [23] ("do less when it's too hot"): when the ambient temperature — and
// with it the cooling cost — rises, the scheduler trades peak throughput
// for facility efficiency by (a) deferring a fraction of low-priority
// load and (b) spending measured extra cooling effort, rather than
// letting PUE degrade unchecked through the summer.
type MS3Scheduler struct {
	// ComfortC is the ambient below which no mitigation is needed.
	ComfortC float64
	// MaxDeferral is the largest load fraction that may be deferred.
	MaxDeferral float64
	// DeferSlope is deferral per °C above comfort.
	DeferSlope float64
}

// NewMS3 returns the scheduler with the paper-calibrated knee at the
// free-cooling limit.
func NewMS3() *MS3Scheduler {
	return &MS3Scheduler{ComfortC: 18, MaxDeferral: 0.35, DeferSlope: 0.02}
}

// Plan is MS3's decision for one scheduling epoch.
type Plan struct {
	// AdmitFraction of offered load runs now; the rest is deferred to a
	// cooler epoch.
	AdmitFraction float64
	// CoolingBoost in [0,1] is the extra cooling effort to apply.
	CoolingBoost float64
	// PUE is the projected facility PUE under this plan.
	PUE float64
}

// Decide computes the epoch plan for the cluster at its current ambient.
// It is allocation-free (Plan and the cooling model are plain values),
// so it sits inside the kernel's per-epoch serial section at zero cost.
func (s *MS3Scheduler) Decide(c *simhpc.Cluster) Plan {
	over := c.AmbientC - s.ComfortC
	if over <= 0 {
		return Plan{AdmitFraction: 1, CoolingBoost: 0, PUE: c.Cooling.PUE(c.AmbientC)}
	}
	defer1 := over * s.DeferSlope
	if defer1 > s.MaxDeferral {
		defer1 = s.MaxDeferral
	}
	// Spend cooling boost proportional to excess heat, up to half effort:
	// enough to keep node inlet temperature near the free-cooling regime
	// without burning the PUE gain on the chillers themselves.
	boost := over / 34
	if boost > 0.5 {
		boost = 0.5
	}
	cool := c.Cooling
	cool.CoolingBoost = boost
	return Plan{
		AdmitFraction: 1 - defer1,
		CoolingBoost:  boost,
		PUE:           cool.PUE(c.AmbientC),
	}
}

// EnergyToSolution estimates facility energy (J) to complete the given
// compute volume under a plan: admitted load runs at full rate, deferred
// load runs later in a cool epoch at base PUE (night/winter pricing of
// the original MS3 policy).
func (s *MS3Scheduler) EnergyToSolution(c *simhpc.Cluster, plan Plan, gflopTotal float64) float64 {
	rate := c.PeakGFLOPS() // GFLOP per second at full tilt
	itPower := c.ITPowerW(1)
	admitted := gflopTotal * plan.AdmitFraction
	deferred := gflopTotal - admitted
	eNow := admitted / rate * itPower * plan.PUE
	eLater := deferred / rate * itPower * c.Cooling.PUEBase
	return eNow + eLater
}
