package rtrm

import "repro/internal/simhpc"

// ThermalController is the distributed optimal thermal-management
// controller of §V: per node, it caps the P-state when temperature
// approaches the safe ceiling and releases the cap with hysteresis once
// the node cools, guaranteeing thermally-safe operation.
type ThermalController struct {
	// MarginC is the guard band below TSafe at which capping starts.
	MarginC float64
	// ReleaseC is the additional cooling below the cap threshold
	// required before raising frequency again (hysteresis).
	ReleaseC float64
	// caps holds the current per-node P-state ceiling (-1 = uncapped).
	caps map[string]int
}

// NewThermalController returns a controller with sensible guard bands.
func NewThermalController() *ThermalController {
	return &ThermalController{MarginC: 5, ReleaseC: 4, caps: make(map[string]int)}
}

// Update inspects the node's temperature and adjusts its P-state cap.
// It returns the ceiling to enforce (a valid index) so callers can clamp
// governor decisions: pstate = min(governor, ceiling).
func (tc *ThermalController) Update(n *simhpc.Node) int {
	dev := n.CPUDevice()
	if dev == nil {
		dev = n.Devices[0]
	}
	maxPS := dev.Spec.MaxPState()
	cap, capped := tc.caps[n.ID]
	trip := n.TSafeC - tc.MarginC
	switch {
	case n.TempC >= trip:
		// Tighten: drop one more step each update while hot.
		if !capped {
			cap = maxPS - 1
		} else if cap > 0 {
			cap--
		}
		tc.caps[n.ID] = cap
	case capped && n.TempC < trip-tc.ReleaseC:
		// Relax one step; forget the cap at the top.
		cap++
		if cap >= maxPS {
			delete(tc.caps, n.ID)
			return maxPS
		}
		tc.caps[n.ID] = cap
	case !capped:
		return maxPS
	}
	return cap
}

// Ceiling returns the current cap for node id without updating.
func (tc *ThermalController) Ceiling(n *simhpc.Node) int {
	dev := n.CPUDevice()
	if dev == nil {
		dev = n.Devices[0]
	}
	if cap, ok := tc.caps[n.ID]; ok {
		return cap
	}
	return dev.Spec.MaxPState()
}

// CappedNodes returns how many nodes currently run under a thermal cap.
func (tc *ThermalController) CappedNodes() int { return len(tc.caps) }
