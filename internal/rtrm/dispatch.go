package rtrm

import (
	"fmt"
	"slices"

	"repro/internal/simhpc"
)

// Job dispatching is one of the classical control knobs §V lists
// alongside DVFS and resource management. This file implements a batch
// dispatcher over the simulated cluster with three policies:
//
//   - FCFS: strict submission order (baseline);
//   - EASY backfilling: later jobs may start early on idle nodes iff
//     they do not delay the queue head's reservation;
//   - energy-aware EASY: backfilling that additionally places jobs on
//     the most energy-efficient node instances first — exploiting the
//     §V observation that nominally identical nodes differ by ~15 % in
//     power, which worst-case-oblivious dispatchers waste.
type DispatchPolicy int

// Dispatch policies.
const (
	FCFS DispatchPolicy = iota
	EASY
	EnergyAwareEASY
)

// String names the policy.
func (p DispatchPolicy) String() string {
	switch p {
	case FCFS:
		return "fcfs"
	case EASY:
		return "easy-backfill"
	case EnergyAwareEASY:
		return "energy-aware"
	}
	return fmt.Sprintf("DispatchPolicy(%d)", int(p))
}

// BatchJob is one queued job.
type BatchJob struct {
	ID      int
	Nodes   int     // nodes required
	Runtime float64 // actual runtime, seconds (known to the simulator)
	Submit  float64 // submission time
}

// DispatchResult aggregates a schedule.
type DispatchResult struct {
	Policy      DispatchPolicy
	MakespanS   float64
	MeanWaitS   float64
	Utilization float64 // node-seconds busy / (nodes * makespan)
	EnergyJ     float64
	Backfills   int
}

// String renders the comparison row.
func (r DispatchResult) String() string {
	return fmt.Sprintf("%-13s makespan=%8.0fs wait=%7.1fs util=%5.1f%% energy=%12.3e J backfills=%d",
		r.Policy, r.MakespanS, r.MeanWaitS, r.Utilization*100, r.EnergyJ, r.Backfills)
}

type dispatchNode struct {
	idx    int
	freeAt float64
	busyW  float64
	idleW  float64
	busyS  float64
	mark   int // generation stamp for allocation-free disjointness checks
}

// Dispatch schedules jobs (sorted by submit time) on the cluster under
// the policy and returns the schedule metrics. Node power ratings come
// from the cluster's per-instance variability, so energy-aware placement
// has real head-room to exploit.
func Dispatch(policy DispatchPolicy, c *simhpc.Cluster, jobs []BatchJob) DispatchResult {
	nodes := make([]*dispatchNode, len(c.Nodes))
	for i, n := range c.Nodes {
		nodes[i] = &dispatchNode{idx: i, busyW: n.PowerW(1), idleW: n.IdlePowerW()}
	}
	queue := append([]BatchJob(nil), jobs...)
	slices.SortStableFunc(queue, func(a, b BatchJob) int {
		switch {
		case a.Submit < b.Submit:
			return -1
		case a.Submit > b.Submit:
			return 1
		}
		return 0
	})

	res := DispatchResult{Policy: policy}
	var totalWait float64
	var makespan float64

	// start runs job j on the chosen nodes at time t.
	start := func(j BatchJob, chosen []*dispatchNode, t float64) {
		end := t + j.Runtime
		for _, n := range chosen {
			// Idle energy between the node's previous free time and t.
			if gap := t - n.freeAt; gap > 0 {
				res.EnergyJ += n.idleW * gap
			}
			res.EnergyJ += n.busyW * j.Runtime
			n.busyS += j.Runtime
			n.freeAt = end
		}
		totalWait += t - j.Submit
		if end > makespan {
			makespan = end
		}
	}

	// Sort and candidate buffers, reused across every earliestStart call
	// instead of two fresh slices per candidate job (the dispatcher's
	// former dominant allocation). The returned slice aliases dst, so
	// the head reservation and a backfill probe use separate buffers.
	byFree := make([]*dispatchNode, len(nodes))
	byFreeCmp := func(a, b *dispatchNode) int {
		switch {
		case a.freeAt < b.freeAt:
			return -1
		case a.freeAt > b.freeAt:
			return 1
		}
		return a.idx - b.idx // deterministic tie order
	}

	// earliestStart returns the soonest time at which `want` nodes are
	// simultaneously free (not before minT), plus those nodes — written
	// into dst[:0] — ordered by the policy's placement preference.
	earliestStart := func(want int, minT float64, dst []*dispatchNode) (float64, []*dispatchNode) {
		if want > len(nodes) {
			return -1, nil
		}
		copy(byFree, nodes)
		slices.SortFunc(byFree, byFreeCmp)
		t := byFree[want-1].freeAt
		if t < minT {
			t = minT
		}
		// All nodes free at t are candidates; prefer efficient instances
		// under the energy-aware policy.
		candidates := dst[:0]
		for _, n := range byFree {
			if n.freeAt <= t {
				candidates = append(candidates, n)
			}
		}
		if policy == EnergyAwareEASY {
			slices.SortStableFunc(candidates, func(a, b *dispatchNode) int {
				switch {
				case a.busyW < b.busyW:
					return -1
				case a.busyW > b.busyW:
					return 1
				}
				return 0
			})
		}
		return t, candidates[:want]
	}
	headBuf := make([]*dispatchNode, 0, len(nodes))
	candBuf := make([]*dispatchNode, 0, len(nodes))

	generation := 0
	for len(queue) > 0 {
		head := queue[0]
		headStart, headNodes := earliestStart(head.Nodes, head.Submit, headBuf)
		if headNodes == nil {
			// Job requests more nodes than the cluster has: drop it.
			queue = queue[1:]
			continue
		}
		if policy == FCFS {
			start(head, headNodes, headStart)
			queue = queue[1:]
			continue
		}
		// EASY: try to backfill any later job that can finish before the
		// head's reserved start (or that doesn't need the reserved nodes).
		generation++
		for _, n := range headNodes {
			n.mark = generation
		}
		backfilled := -1
		for k := 1; k < len(queue); k++ {
			cand := queue[k]
			if cand.Nodes > len(nodes) {
				continue
			}
			t, cnodes := earliestStart(cand.Nodes, cand.Submit, candBuf)
			if cnodes == nil || t > headStart {
				continue
			}
			if t+cand.Runtime <= headStart || disjoint(cnodes, generation) {
				start(cand, cnodes, t)
				res.Backfills++
				backfilled = k
				break
			}
		}
		if backfilled >= 0 {
			queue = append(queue[:backfilled], queue[backfilled+1:]...)
			continue
		}
		start(head, headNodes, headStart)
		queue = queue[1:]
	}

	res.MakespanS = makespan
	if len(jobs) > 0 {
		res.MeanWaitS = totalWait / float64(len(jobs))
	}
	var busy float64
	for _, n := range nodes {
		busy += n.busyS
	}
	if makespan > 0 {
		res.Utilization = busy / (float64(len(nodes)) * makespan)
	}
	return res
}

// disjoint reports whether none of the nodes carry the current head
// reservation's generation mark (set just before the backfill scan).
func disjoint(nodes []*dispatchNode, generation int) bool {
	for _, n := range nodes {
		if n.mark == generation {
			return false
		}
	}
	return true
}

// RandomJobMix generates a batch-queue trace: mostly small short jobs
// with occasional wide long ones (the mix that makes backfilling pay).
func RandomJobMix(n int, maxNodes int, rng *simhpc.RNG) []BatchJob {
	jobs := make([]BatchJob, n)
	var t float64
	for i := range jobs {
		nodes := 1 + rng.Intn(maxNodes/4)
		runtime := rng.Exp(600)
		if rng.Float64() < 0.15 { // wide job
			nodes = maxNodes/2 + rng.Intn(maxNodes/2)
			runtime = rng.Exp(3600)
		}
		if runtime < 30 {
			runtime = 30
		}
		jobs[i] = BatchJob{ID: i, Nodes: nodes, Runtime: runtime, Submit: t}
		t += rng.Exp(120)
	}
	return jobs
}
