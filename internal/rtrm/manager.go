package rtrm

import "repro/internal/simhpc"

// Manager is the scalable multilayer resource-management infrastructure
// of §V: a cluster-level layer (power capping, seasonal scheduling) over
// per-node layers (governor + thermal safety). Each control epoch it
// fuses the three information flows the paper lists — application
// requirements (the task at hand), processing-element telemetry
// (temperature, power) and IT-infrastructure state (ambient, PUE) — into
// per-node operating points.
type Manager struct {
	Cluster *simhpc.Cluster
	Gov     Governor
	Thermal *ThermalController
	Capper  *PowerCapper
	MS3     *MS3Scheduler

	// Telemetry accumulated across epochs.
	EpochCount    int
	EnergyJ       float64
	WorkGFlop     float64
	DeferredGFlop float64
	ThermalEvents int
	CapDemotions  int

	// ep is the in-flight epoch scratch of the staged API (epoch.go),
	// reused across epochs.
	ep epochScratch
}

// NewManager wires the default control stack over a cluster with the
// given facility power cap (watts).
func NewManager(c *simhpc.Cluster, capW float64) *Manager {
	return &Manager{
		Cluster: c,
		Gov:     &OptimalGovernor{MaxSlowdown: 1.5},
		Thermal: NewThermalController(),
		Capper:  &PowerCapper{CapW: capW},
		MS3:     NewMS3(),
	}
}

// EpochReport summarizes one control epoch.
type EpochReport struct {
	Plan          Plan
	Cap           CapResult
	HotNodes      int
	EnergyJ       float64
	DoneGFlop     float64
	DeferredGFlop float64
}

// RunEpoch executes one control epoch of length dt seconds: MS3 decides
// admission and cooling, the capper fits the envelope, each node runs
// its share of offered under governor+thermal control, and thermal
// state advances. It is the staged API (epoch.go) composed with a
// single dispatch worker; callers wanting to pipeline the sub-stages or
// fan the dispatch out call the stages directly.
func (m *Manager) RunEpoch(dt float64, offered []*simhpc.Task) EpochReport {
	m.BeginEpoch(dt, offered)
	m.SweepEpoch()
	m.DispatchEpoch(1)
	return m.CommitEpoch()
}

// capPState returns the capped P-state for the node at nodeIdx. The
// cap plan indexes by node — never by task — and a plan shorter than
// the cluster (or empty) simply leaves the uncovered nodes uncapped
// instead of silently misaligning node and P-state or panicking.
func capPState(cap CapResult, nodeIdx int) (int, bool) {
	if nodeIdx < 0 || nodeIdx >= len(cap.PStates) {
		return 0, false
	}
	return cap.PStates[nodeIdx], true
}

// Stats is a copy of the manager's cumulative epoch telemetry. Taking
// one while RunEpoch may be running races; callers who share a manager
// with a running kernel should snapshot through the kernel
// (Kernel.BackendStats), which serializes against the epoch executor.
type Stats struct {
	Epochs        int
	WorkGFlop     float64
	DeferredGFlop float64
	EnergyJ       float64
	ThermalEvents int
	CapDemotions  int
}

// Stats snapshots the cumulative telemetry counters.
func (m *Manager) Stats() Stats {
	return Stats{
		Epochs:        m.EpochCount,
		WorkGFlop:     m.WorkGFlop,
		DeferredGFlop: m.DeferredGFlop,
		EnergyJ:       m.EnergyJ,
		ThermalEvents: m.ThermalEvents,
		CapDemotions:  m.CapDemotions,
	}
}

// EfficiencyGFLOPSPerJ returns work done per joule so far.
func (m *Manager) EfficiencyGFLOPSPerJ() float64 {
	if m.EnergyJ == 0 {
		return 0
	}
	return m.WorkGFlop / m.EnergyJ
}
