package durable

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// reopen closes nothing; it opens a fresh Log over dir and returns the
// recovered records.
func reopen(t *testing.T, dir string) *Log {
	t.Helper()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := reopen(t, dir)
	want := make([]Record, 0, 10)
	for i := 0; i < 10; i++ {
		data := []byte(fmt.Sprintf("record-%d", i))
		seq, err := l.Append(byte(i%3), data)
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("seq = %d, want %d", seq, i+1)
		}
		want = append(want, Record{Seq: seq, Op: byte(i % 3), Data: data})
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2 := reopen(t, dir)
	if seq, blob := l2.Snapshot(); seq != 0 || blob != nil {
		t.Fatalf("unexpected snapshot: seq=%d blob=%q", seq, blob)
	}
	got := l2.Entries()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Seq != want[i].Seq || got[i].Op != want[i].Op || !bytes.Equal(got[i].Data, want[i].Data) {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	// Continuation: appends pick up after the replayed tail.
	seq, err := l2.Append(9, []byte("more"))
	if err != nil || seq != 11 {
		t.Fatalf("continued Append = (%d, %v), want (11, nil)", seq, err)
	}
}

func TestSnapshotTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	l := reopen(t, dir)
	for i := 0; i < 5; i++ {
		if _, err := l.Append(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if n := l.SinceSnapshot(); n != 5 {
		t.Fatalf("SinceSnapshot = %d, want 5", n)
	}
	if err := l.WriteSnapshot([]byte("state-after-5")); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	if n := l.SinceSnapshot(); n != 0 {
		t.Fatalf("SinceSnapshot after snapshot = %d, want 0", n)
	}
	if fi, err := os.Stat(filepath.Join(dir, walName)); err != nil || fi.Size() != 0 {
		t.Fatalf("wal not truncated: %v size=%d", err, fi.Size())
	}
	// Post-snapshot appends land in the fresh WAL with continuing seqs.
	if seq, err := l.Append(2, []byte("post")); err != nil || seq != 6 {
		t.Fatalf("post-snapshot Append = (%d, %v)", seq, err)
	}
	l.Close()

	l2 := reopen(t, dir)
	seq, blob := l2.Snapshot()
	if seq != 5 || string(blob) != "state-after-5" {
		t.Fatalf("snapshot = (%d, %q), want (5, state-after-5)", seq, blob)
	}
	ents := l2.Entries()
	if len(ents) != 1 || ents[0].Seq != 6 || string(ents[0].Data) != "post" {
		t.Fatalf("entries = %+v, want the one post-snapshot record", ents)
	}
}

// A crash between the snapshot rename and the WAL truncation leaves
// the old records behind; replay must skip the ones the snapshot
// already covers.
func TestReplaySkipsRecordsCoveredBySnapshot(t *testing.T) {
	dir := t.TempDir()
	l := reopen(t, dir)
	for i := 0; i < 4; i++ {
		if _, err := l.Append(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	// Simulate the half-done snapshot: write it by hand, leave the WAL.
	frame := appendRecord(nil, 0, 3, []byte("covers-3"))
	if err := os.WriteFile(filepath.Join(dir, snapName), frame, 0o644); err != nil {
		t.Fatal(err)
	}
	l2 := reopen(t, dir)
	seq, blob := l2.Snapshot()
	if seq != 3 || string(blob) != "covers-3" {
		t.Fatalf("snapshot = (%d, %q)", seq, blob)
	}
	ents := l2.Entries()
	if len(ents) != 1 || ents[0].Seq != 4 {
		t.Fatalf("entries = %+v, want only seq 4", ents)
	}
	// Idempotence: a third replay sees the identical state.
	l2.Close()
	l3 := reopen(t, dir)
	if ents := l3.Entries(); len(ents) != 1 || ents[0].Seq != 4 {
		t.Fatalf("second replay entries = %+v", ents)
	}
}

func TestTornTailDiscarded(t *testing.T) {
	cut := func(t *testing.T, survivors int, trim func(wal []byte) []byte) {
		t.Helper()
		dir := t.TempDir()
		l := reopen(t, dir)
		for i := 0; i < 3; i++ {
			if _, err := l.Append(1, []byte(fmt.Sprintf("rec%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		l.Close()
		path := filepath.Join(dir, walName)
		wal, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, trim(wal), 0o644); err != nil {
			t.Fatal(err)
		}
		l2 := reopen(t, dir)
		ents := l2.Entries()
		if len(ents) != survivors {
			t.Fatalf("replayed %d records, want %d (torn tail discarded)", len(ents), survivors)
		}
		// The tail was truncated: appends restart cleanly.
		next := uint64(survivors + 1)
		if seq, err := l2.Append(7, []byte("fresh")); err != nil || seq != next {
			t.Fatalf("Append after torn tail = (%d, %v), want (%d, nil)", seq, err, next)
		}
		l2.Close()
		l3 := reopen(t, dir)
		if ents := l3.Entries(); len(ents) != survivors+1 || ents[survivors].Seq != next || string(ents[survivors].Data) != "fresh" {
			t.Fatalf("post-repair replay = %+v", ents)
		}
	}
	t.Run("mid-payload", func(t *testing.T) {
		cut(t, 2, func(wal []byte) []byte { return wal[:len(wal)-5] })
	})
	t.Run("mid-length-varint", func(t *testing.T) {
		// Append a lone continuation byte: a length varint that never
		// completes. The three whole records survive.
		cut(t, 3, func(wal []byte) []byte { return append(wal, 0x80) })
	})
	t.Run("payload-written-crc-garbage", func(t *testing.T) {
		// Flip a payload byte of the LAST record only: at EOF that is a
		// torn write, not corruption.
		cut(t, 2, func(wal []byte) []byte {
			wal[len(wal)-6] ^= 0xFF
			return wal
		})
	})
	t.Run("length-without-payload", func(t *testing.T) {
		cut(t, 3, func(wal []byte) []byte { return append(wal, 0x20) })
	})
}

func TestCorruptionIsTyped(t *testing.T) {
	corrupt := func(t *testing.T, mangle func(wal []byte) []byte) *CorruptError {
		t.Helper()
		dir := t.TempDir()
		l := reopen(t, dir)
		for i := 0; i < 3; i++ {
			if _, err := l.Append(1, []byte(fmt.Sprintf("rec%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		l.Close()
		path := filepath.Join(dir, walName)
		wal, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, mangle(wal), 0o644); err != nil {
			t.Fatal(err)
		}
		_, err = Open(dir, Options{})
		if err == nil {
			t.Fatal("Open succeeded on a corrupt journal")
		}
		if !errors.Is(err, ErrCorruptJournal) {
			t.Fatalf("error %v does not wrap ErrCorruptJournal", err)
		}
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("error %T is not *CorruptError", err)
		}
		return ce
	}
	t.Run("mid-file-bitflip", func(t *testing.T) {
		ce := corrupt(t, func(wal []byte) []byte {
			wal[3] ^= 0xFF // inside the first record's payload
			return wal
		})
		if ce.Offset != 0 {
			t.Fatalf("offset = %d, want 0", ce.Offset)
		}
	})
	t.Run("oversized-length", func(t *testing.T) {
		corrupt(t, func(wal []byte) []byte {
			huge := binary.AppendUvarint(nil, MaxRecord+1)
			huge = append(huge, make([]byte, 64)...)
			return append(wal, huge...)
		})
	})
	t.Run("sequence-gap", func(t *testing.T) {
		corrupt(t, func(wal []byte) []byte {
			return appendRecord(wal, 1, 9, []byte("gap")) // after seq 3
		})
	})
	t.Run("corrupt-snapshot", func(t *testing.T) {
		dir := t.TempDir()
		l := reopen(t, dir)
		if err := l.WriteSnapshot([]byte("blob")); err != nil {
			t.Fatal(err)
		}
		l.Close()
		path := filepath.Join(dir, snapName)
		snap, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		snap[len(snap)-1] ^= 0x01
		if err := os.WriteFile(path, snap, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorruptJournal) {
			t.Fatalf("corrupt snapshot: err = %v, want ErrCorruptJournal", err)
		}
	})
}

// Concurrent appends must serialize into a contiguous sequence and all
// survive a replay — the group-commit batching cannot drop or reorder.
func TestConcurrentAppendGroupCommit(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SyncWindow: 200 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	const G, per = 8, 25
	var wg sync.WaitGroup
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := l.Append(byte(g), []byte{byte(g), byte(i)}); err != nil {
					t.Errorf("Append: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2 := reopen(t, dir)
	ents := l2.Entries()
	if len(ents) != G*per {
		t.Fatalf("replayed %d records, want %d", len(ents), G*per)
	}
	for i, r := range ents {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	l := reopen(t, dir)
	l.Close()
	if _, err := l.Append(1, []byte("x")); err == nil {
		t.Fatal("Append after Close succeeded")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestOversizedRecordRejected(t *testing.T) {
	dir := t.TempDir()
	l := reopen(t, dir)
	if _, err := l.Append(1, make([]byte, MaxRecord)); err == nil {
		t.Fatal("oversized Append succeeded")
	}
	// The rejection is not sticky: the log still works.
	if _, err := l.Append(1, []byte("ok")); err != nil {
		t.Fatalf("Append after rejection: %v", err)
	}
}
