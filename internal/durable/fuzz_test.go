package durable

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// FuzzReplay throws arbitrary bytes at the journal decoder and the
// full recovery path, as both WAL and snapshot contents. Invariants:
//
//  1. Open never panics — every outcome is a recovered Log or a typed
//     error, and a corruption error wraps ErrCorruptJournal (so it
//     carries the offset via *CorruptError).
//  2. Recovery is idempotent: if Open succeeds (possibly truncating a
//     torn tail), a second Open over the same directory succeeds and
//     replays the identical records.
//  3. What recovery accepts, the writer could have produced: every
//     replayed record re-encodes to a frame the decoder parses back
//     identically.
func FuzzReplay(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add(appendRecord(nil, 1, 1, []byte("hello")), []byte{})
	f.Add(appendRecord(appendRecord(nil, 1, 1, []byte("a")), 2, 2, []byte("b")), appendRecord(nil, 0, 0, nil))
	// Torn tail: a record prefix cut mid-payload.
	whole := appendRecord(nil, 3, 1, []byte("torn-me"))
	f.Add(whole[:len(whole)-3], []byte{})
	// Snapshot covering seq 2 with stale WAL records below it.
	f.Add(appendRecord(appendRecord(nil, 1, 1, []byte("old")), 1, 2, []byte("old2")),
		appendRecord(nil, 0, 2, []byte("snapblob")))
	// CRC flip.
	flipped := appendRecord(nil, 1, 1, []byte("flip"))
	flipped[4] ^= 0x40
	f.Add(append(flipped, appendRecord(nil, 1, 2, []byte("after"))...), []byte{})
	// Oversized length prefix and varint overflow.
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x7F}, []byte{})
	f.Add(bytes.Repeat([]byte{0x80}, 11), []byte{})

	f.Fuzz(func(t *testing.T, wal, snap []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, walName), wal, 0o644); err != nil {
			t.Skip()
		}
		if len(snap) > 0 {
			if err := os.WriteFile(filepath.Join(dir, snapName), snap, 0o644); err != nil {
				t.Skip()
			}
		}
		l, err := Open(dir, Options{})
		if err != nil {
			if !errors.Is(err, ErrCorruptJournal) {
				t.Fatalf("Open error is not typed corruption: %v", err)
			}
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("corruption error %T carries no offset", err)
			}
			return
		}
		first := append([]Record(nil), l.Entries()...)
		firstSeq, firstBlob := l.Snapshot()
		for _, r := range first {
			frame := appendRecord(nil, r.Op, r.Seq, r.Data)
			rec, end, kind, _ := parseRecord(frame, 0)
			if kind != parseOK || end != len(frame) ||
				rec.Seq != r.Seq || rec.Op != r.Op || !bytes.Equal(rec.Data, r.Data) {
				t.Fatalf("accepted record %+v does not round-trip", r)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatalf("Close after recovery: %v", err)
		}

		l2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("second Open failed after first succeeded: %v", err)
		}
		defer l2.Close()
		secondSeq, secondBlob := l2.Snapshot()
		if secondSeq != firstSeq || !bytes.Equal(secondBlob, firstBlob) {
			t.Fatalf("snapshot changed across replays: (%d, %q) vs (%d, %q)", firstSeq, firstBlob, secondSeq, secondBlob)
		}
		second := l2.Entries()
		if len(second) != len(first) {
			t.Fatalf("replay not idempotent: %d then %d records", len(first), len(second))
		}
		for i := range first {
			if first[i].Seq != second[i].Seq || first[i].Op != second[i].Op ||
				!bytes.Equal(first[i].Data, second[i].Data) {
				t.Fatalf("record %d differs across replays", i)
			}
		}
	})
}
