// Package durable is the control plane's write-ahead log + snapshot
// store. It is deliberately op-agnostic: records are opaque
// (op byte, data) pairs under a monotonically increasing sequence
// number, so the package owns durability mechanics — framing, CRC,
// fsync batching, snapshot rotation, torn-tail recovery — while the
// caller (internal/controlplane) owns the state machine that the
// records replay into.
//
// The on-disk framing follows the wire codec's conventions
// (internal/controlplane/wire): a uvarint length prefix, every count
// bounds-checked before it allocates, and decode errors that are
// errors, never panics. Each record is
//
//	uvarint(len(payload)) | payload | crc32c(payload), little-endian
//	payload = version(1) | op(1) | uvarint(seq) | data
//
// Append is group-committed: concurrent appends that land while an
// fsync is in flight are batched into the next one, so the sync cost
// amortizes across however many mutations arrive together. An Append
// only returns once its record is fsync-durable — the caller may ack
// its client immediately after.
//
// Recovery (Open) is torn-tail tolerant and strict about everything
// else: a final record cut off mid-write (the crash the log exists
// for) is silently discarded and the file truncated back to the last
// durable record, while a mid-file CRC mismatch, an oversized length
// or a sequence break is a typed *CorruptError carrying the byte
// offset — corruption is reported, never replayed and never panics.
// Replaying the same log twice yields the same records (Open mutates
// nothing but the torn tail).
package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"time"
)

const (
	// MaxRecord bounds one record's payload, like wire.MaxFrame bounds
	// a frame: a corrupt length prefix must not become an allocation.
	MaxRecord = 1 << 20

	recordVersion = 1

	walName     = "wal.log"
	snapName    = "snapshot.db"
	snapTmpName = "snapshot.tmp"
)

// castagnoli is the CRC-32C table (hardware-accelerated on the
// platforms that matter).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorruptJournal is the sentinel every corruption failure wraps;
// errors.Is(err, ErrCorruptJournal) distinguishes "the journal is
// damaged, refuse to serve" from I/O errors.
var ErrCorruptJournal = errors.New("durable: corrupt journal")

// CorruptError reports unrecoverable journal damage: which file, the
// byte offset of the first bad record, and why it was rejected. A torn
// final record is NOT corruption — it is truncated away silently.
type CorruptError struct {
	File   string
	Offset int64
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("durable: corrupt journal: %s at offset %d: %s", e.File, e.Offset, e.Reason)
}

func (e *CorruptError) Unwrap() error { return ErrCorruptJournal }

// Record is one replayed journal entry. Data is owned by the caller
// (copied out of the file buffer at Open).
type Record struct {
	Seq  uint64
	Op   byte
	Data []byte
}

// Options configures Open.
type Options struct {
	// SyncWindow is an extra gather delay before each fsync: a commit
	// waits this long for more appends to join its group. 0 syncs
	// immediately — concurrent appends still batch behind an fsync
	// already in flight, which is the natural group commit.
	SyncWindow time.Duration
}

// commitGroup is one fsync batch: every Append that joined it blocks
// on done and shares err.
type commitGroup struct {
	done chan struct{}
	err  error
}

// Log is an open journal. Append/WriteSnapshot/Close may be called
// concurrently, except that WriteSnapshot requires the caller to
// quiesce Appends (the control plane holds its membership lock across
// both, so every mutation is either before the snapshot and in it, or
// after it and in the fresh WAL).
type Log struct {
	dir    string
	window time.Duration

	// Recovered state, immutable after Open.
	snapshot    []byte
	snapshotSeq uint64
	entries     []Record

	mu         sync.Mutex
	f          *os.File
	buf        []byte // encoded records awaiting the next commit
	scratch    []byte // recycled buf backing
	nextSeq    uint64
	group      *commitGroup // open for joining; nil when none pending
	committing bool         // a group's write+sync is in flight
	since      int          // records since the last snapshot
	err        error        // sticky: a failed sync poisons the log
	closed     bool

	groups chan *commitGroup
	done   chan struct{}
}

// Open opens (creating if absent) the journal in dir and recovers it:
// the latest snapshot blob plus every WAL record after it, with a torn
// final record truncated away. The recovered state is exposed via
// Snapshot and Entries; the caller folds it into its own state before
// appending new records.
func Open(dir string, opts Options) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	l := &Log{
		dir:    dir,
		window: opts.SyncWindow,
		groups: make(chan *commitGroup, 64),
		done:   make(chan struct{}),
	}
	var err error
	l.snapshotSeq, l.snapshot, err = readSnapshot(filepath.Join(dir, snapName))
	if err != nil {
		return nil, err
	}
	walPath := filepath.Join(dir, walName)
	raw, err := os.ReadFile(walPath)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("durable: %w", err)
	}
	entries, valid, perr := parseWAL(walName, raw, l.snapshotSeq)
	if perr != nil {
		return nil, perr
	}
	l.entries = entries
	l.nextSeq = l.snapshotSeq + 1
	if n := len(entries); n > 0 {
		l.nextSeq = entries[n-1].Seq + 1
	}
	l.since = len(entries)
	if int64(len(raw)) > valid {
		// Torn tail: a record cut off mid-write by the crash. Truncate
		// it away so the next append starts at a record boundary.
		if err := os.Truncate(walPath, valid); err != nil {
			return nil, fmt.Errorf("durable: truncate torn tail: %w", err)
		}
	}
	l.f, err = os.OpenFile(walPath, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	if err := syncDir(dir); err != nil {
		l.f.Close()
		return nil, err
	}
	go l.committer()
	return l, nil
}

// Snapshot returns the recovered snapshot blob (nil when none) and the
// sequence number it covers.
func (l *Log) Snapshot() (seq uint64, blob []byte) { return l.snapshotSeq, l.snapshot }

// Entries returns the recovered WAL records after the snapshot, in
// append order.
func (l *Log) Entries() []Record { return l.entries }

// SinceSnapshot reports how many records the current WAL holds —
// replayed plus appended — so the caller can pace snapshots.
func (l *Log) SinceSnapshot() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.since
}

// Append journals one record and returns once it is fsync-durable.
// Concurrent appends share fsyncs (group commit); the assigned
// sequence numbers are in file order.
func (l *Log) Append(op byte, data []byte) (uint64, error) {
	if len(data) > MaxRecord-16 {
		return 0, fmt.Errorf("durable: record %d bytes exceeds %d", len(data), MaxRecord-16)
	}
	l.mu.Lock()
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return 0, err
	}
	if l.closed {
		l.mu.Unlock()
		return 0, errors.New("durable: log is closed")
	}
	seq := l.nextSeq
	l.nextSeq++
	l.since++
	l.buf = appendRecord(l.buf, op, seq, data)
	g := l.group
	if g == nil {
		g = &commitGroup{done: make(chan struct{})}
		l.group = g
		l.groups <- g
	}
	l.mu.Unlock()
	<-g.done
	return seq, g.err
}

// committer serializes commits: one goroutine, FIFO over groups, so
// buffers reach the file in the order their records were sequenced.
func (l *Log) committer() {
	defer close(l.done)
	for g := range l.groups {
		if l.window > 0 {
			time.Sleep(l.window) // gather more appends into this group
		}
		l.mu.Lock()
		buf := l.buf
		l.buf = l.scratch[:0]
		l.scratch = nil
		l.group = nil // appends from here join the next group
		l.committing = true
		l.mu.Unlock()

		var err error
		if _, werr := l.f.Write(buf); werr != nil {
			err = werr
		} else if serr := l.f.Sync(); serr != nil {
			err = serr
		}

		l.mu.Lock()
		if err != nil && l.err == nil {
			l.err = err
		}
		l.scratch = buf[:0]
		l.committing = false
		l.mu.Unlock()
		g.err = err
		close(g.done)
	}
}

// quiesce waits until no append is buffered or mid-commit, returning
// with l.mu HELD (and the sticky error, if any, released).
func (l *Log) quiesce() error {
	for {
		l.mu.Lock()
		if l.err != nil {
			err := l.err
			l.mu.Unlock()
			return err
		}
		if l.group == nil && !l.committing && len(l.buf) == 0 {
			return nil // mu held
		}
		g := l.group
		l.mu.Unlock()
		if g != nil {
			<-g.done
		} else {
			time.Sleep(50 * time.Microsecond) // commit in flight, no channel to wait on
		}
	}
}

// WriteSnapshot makes blob the recovery baseline — it must describe
// the state after every record appended so far — and truncates the
// WAL. Crash-ordering safe: the snapshot is written to a temp file,
// fsynced, atomically renamed, and only then is the WAL truncated; a
// crash between the two leaves old records with seq <= the snapshot's,
// which replay skips. The caller must not Append concurrently.
func (l *Log) WriteSnapshot(blob []byte) error {
	if err := l.quiesce(); err != nil {
		return err
	}
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("durable: log is closed")
	}
	seq := l.nextSeq - 1
	frame := appendRecord(nil, 0, seq, blob)
	tmp := filepath.Join(l.dir, snapTmpName)
	if err := writeFileSync(tmp, frame); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, snapName)); err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		return err
	}
	// The snapshot is durable; every WAL record is now redundant.
	if err := l.f.Truncate(0); err != nil {
		l.err = fmt.Errorf("durable: truncate wal: %w", err)
		return l.err
	}
	if err := l.f.Sync(); err != nil {
		l.err = err
		return err
	}
	l.since = 0
	return nil
}

// Close flushes pending appends and closes the journal.
func (l *Log) Close() error {
	err := l.quiesce()
	if err != nil {
		l.mu.Lock()
	}
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	close(l.groups)
	l.mu.Unlock()
	<-l.done
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// appendRecord encodes one framed record onto buf.
func appendRecord(buf []byte, op byte, seq uint64, data []byte) []byte {
	var seqb [binary.MaxVarintLen64]byte
	sn := binary.PutUvarint(seqb[:], seq)
	plen := 2 + sn + len(data)
	buf = binary.AppendUvarint(buf, uint64(plen))
	start := len(buf)
	buf = append(buf, recordVersion, op)
	buf = append(buf, seqb[:sn]...)
	buf = append(buf, data...)
	crc := crc32.Checksum(buf[start:], castagnoli)
	return binary.LittleEndian.AppendUint32(buf, crc)
}

// parse outcome kinds for one record at an offset.
type parseKind int

const (
	parseOK   parseKind = iota
	parseTorn           // buffer ends inside the record — only valid at EOF
	parseBad            // structurally corrupt
)

// parseRecord decodes the record starting at pos. end is the offset
// one past the record when kind == parseOK; reason explains parseBad.
func parseRecord(buf []byte, pos int) (rec Record, end int, kind parseKind, reason string) {
	plen, n := binary.Uvarint(buf[pos:])
	if n == 0 {
		return rec, pos, parseTorn, ""
	}
	if n < 0 {
		return rec, pos, parseBad, "length varint overflows"
	}
	if plen > MaxRecord {
		return rec, pos, parseBad, fmt.Sprintf("record length %d exceeds %d", plen, MaxRecord)
	}
	body := pos + n
	rem := len(buf) - body
	if uint64(rem) < plen+4 {
		return rec, pos, parseTorn, ""
	}
	payload := buf[body : body+int(plen)]
	want := binary.LittleEndian.Uint32(buf[body+int(plen):])
	if crc32.Checksum(payload, castagnoli) != want {
		// A CRC break on the very last record of the file is the torn
		// tail (the length landed but the payload didn't); anywhere
		// else it is damage.
		if body+int(plen)+4 == len(buf) {
			return rec, pos, parseTorn, ""
		}
		return rec, pos, parseBad, "crc mismatch"
	}
	if plen < 3 {
		return rec, pos, parseBad, "payload too short"
	}
	if payload[0] != recordVersion {
		return rec, pos, parseBad, fmt.Sprintf("unknown record version %d", payload[0])
	}
	seq, sn := binary.Uvarint(payload[2:])
	if sn <= 0 {
		return rec, pos, parseBad, "bad sequence varint"
	}
	rec = Record{Seq: seq, Op: payload[1], Data: payload[2+sn:]}
	return rec, body + int(plen) + 4, parseOK, ""
}

// parseWAL scans the whole WAL: records with seq <= snapSeq are
// skipped (a crash between snapshot rename and WAL truncation leaves
// them behind, legitimately), sequence numbers must then advance by
// exactly one, and the scan classifies the first anomaly as either the
// torn tail (valid < len(buf), silently discarded by the caller) or
// corruption.
func parseWAL(name string, buf []byte, snapSeq uint64) (entries []Record, valid int64, err error) {
	pos := 0
	var last uint64 // last seq seen in this WAL; 0 = none yet
	for pos < len(buf) {
		rec, end, kind, reason := parseRecord(buf, pos)
		switch kind {
		case parseTorn:
			return entries, int64(pos), nil
		case parseBad:
			return nil, 0, &CorruptError{File: name, Offset: int64(pos), Reason: reason}
		}
		switch {
		case rec.Seq == 0:
			return nil, 0, &CorruptError{File: name, Offset: int64(pos), Reason: "sequence number 0"}
		case last != 0 && rec.Seq != last+1:
			return nil, 0, &CorruptError{File: name, Offset: int64(pos),
				Reason: fmt.Sprintf("sequence break: %d after %d", rec.Seq, last)}
		case last == 0 && rec.Seq > snapSeq+1:
			return nil, 0, &CorruptError{File: name, Offset: int64(pos),
				Reason: fmt.Sprintf("journal gap: first record seq %d, snapshot covers %d", rec.Seq, snapSeq)}
		}
		last = rec.Seq
		if rec.Seq > snapSeq {
			rec.Data = append([]byte(nil), rec.Data...)
			entries = append(entries, rec)
		}
		pos = end
	}
	return entries, int64(pos), nil
}

// readSnapshot loads and validates the snapshot file: exactly one
// framed record. Unlike the WAL there is no torn-tail allowance — the
// file only ever appears via atomic rename, so any damage is
// corruption.
func readSnapshot(path string) (seq uint64, blob []byte, err error) {
	buf, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, nil, nil
	}
	if err != nil {
		return 0, nil, fmt.Errorf("durable: %w", err)
	}
	rec, end, kind, reason := parseRecord(buf, 0)
	if kind != parseOK {
		if reason == "" {
			reason = "truncated snapshot record"
		}
		return 0, nil, &CorruptError{File: snapName, Offset: 0, Reason: reason}
	}
	if end != len(buf) {
		return 0, nil, &CorruptError{File: snapName, Offset: int64(end), Reason: "trailing bytes after snapshot record"}
	}
	return rec.Seq, rec.Data, nil
}

// writeFileSync writes data to path and fsyncs it before returning.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("durable: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("durable: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	return nil
}

// syncDir fsyncs a directory so renames and creations inside it are
// durable (no-op where directories cannot be opened, e.g. Windows).
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, os.ErrInvalid) {
		return fmt.Errorf("durable: sync dir: %w", err)
	}
	return nil
}
