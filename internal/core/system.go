package core

import (
	"fmt"

	"repro/internal/rtrm"
	"repro/internal/simhpc"
)

// System couples adaptive applications to the RTRM over the simulated
// cluster: the holistic, system-wide integration the paper positions as
// its distinguishing contribution. Each epoch, applications materialize
// their workloads under their autotuned configurations (fast loop) and
// the RTRM allocates and operates the machine (slow loop).
type System struct {
	Manager *rtrm.Manager
	Apps    []*App

	Epochs int
}

// NewSystem builds a system over a cluster with a facility power cap.
func NewSystem(cluster *simhpc.Cluster, capW float64) *System {
	return &System{Manager: rtrm.NewManager(cluster, capW)}
}

// AddApp registers an application (it must already be tuned).
func (s *System) AddApp(a *App) { s.Apps = append(s.Apps, a) }

// EpochResult summarizes one system epoch.
type EpochResult struct {
	Report rtrm.EpochReport
	PerApp map[string]float64 // GFlop contributed per app
}

// RunEpoch gathers every app's epoch workload and hands it to the RTRM.
func (s *System) RunEpoch(dt float64) (EpochResult, error) {
	var all []*simhpc.Task
	perApp := make(map[string]float64, len(s.Apps))
	for _, a := range s.Apps {
		tasks, err := a.EpochTasks()
		if err != nil {
			return EpochResult{}, fmt.Errorf("core: %s: %w", a.Name, err)
		}
		for _, t := range tasks {
			perApp[a.Name] += t.GFlop
		}
		all = append(all, tasks...)
	}
	rep := s.Manager.RunEpoch(dt, all)
	s.Epochs++
	return EpochResult{Report: rep, PerApp: perApp}, nil
}
