// Package core wires the ANTAREX tool flow of Fig. 1 end to end: C/C++
// functional descriptions (miniC) plus DSL specifications enter the
// weaver; the split compiler produces runnable code with runtime
// monitoring and dynamic-specialization hooks; at run time the
// application autotuning loop (monitor → tuner → software knobs) and the
// RTRM control loop (telemetry → governor/capper → operating points) run
// nested, exactly as drawn in the paper.
//
// The package owns the two integration seams:
//
//   - ToolFlow: design-time pipeline — weave aspects, compile, bind
//     runtime hooks, expose monitored execution;
//   - App: the application-side endpoint of the run-time coupling — an
//     AppSpec for the concurrent adaptation kernel (internal/runtime),
//     which multiplexes many apps' epoch workloads into the shared
//     rtrm.Manager.
package core

import (
	"fmt"

	"repro/internal/dsl/interp"
	"repro/internal/ir"
	"repro/internal/monitor"
	"repro/internal/weaver"
)

// ToolFlow is the design-time half of Fig. 1: functional source + aspect
// specifications → woven, compiled, hook-armed application.
type ToolFlow struct {
	Weaver *weaver.Weaver
	Split  *ir.SplitCompiler
	VM     *ir.VM
	// Metrics collects runtime monitor samples (cycles, calls, ...)
	// pushed by woven instrumentation and by Invoke.
	Metrics *monitor.Set

	aspects string
	woven   []string
}

// NewToolFlow parses the functional description (miniC) and the aspect
// file (DSL). Aspects are woven on demand with WeaveAspect, then Compile
// produces the runnable.
func NewToolFlow(file, cSource, aspectSource string) (*ToolFlow, error) {
	w, err := weaverFromSource(file, cSource)
	if err != nil {
		return nil, err
	}
	return &ToolFlow{
		Weaver:  w,
		Metrics: monitor.NewSet(256),
		aspects: aspectSource,
	}, nil
}

func weaverFromSource(file, src string) (*weaver.Weaver, error) {
	prog, err := parseMiniC(file, src)
	if err != nil {
		return nil, err
	}
	return weaver.New(prog), nil
}

// WeaveAspect applies one aspect from the aspect file with arguments.
func (tf *ToolFlow) WeaveAspect(name string, args ...interp.Value) error {
	if tf.VM != nil {
		return fmt.Errorf("core: weaving after Compile is not supported")
	}
	if _, err := tf.Weaver.Weave(tf.aspects, name, args...); err != nil {
		return err
	}
	tf.woven = append(tf.woven, name)
	return nil
}

// WovenAspects lists the aspects applied so far.
func (tf *ToolFlow) WovenAspects() []string { return append([]string(nil), tf.woven...) }

// Compile runs the split compiler over the woven program, creates the
// VM, arms dynamic applies, and installs the standard monitoring externs
// (profile_args, monitor_push).
func (tf *ToolFlow) Compile() error {
	sc, vm, err := tf.Weaver.CompileRuntime()
	if err != nil {
		return err
	}
	tf.Split, tf.VM = sc, vm
	// profile_args(name, location, args...) — Fig. 2's probe — feeds the
	// call-count monitor.
	vm.RegisterExtern("profile_args", func(_ *ir.VM, args []ir.Value) (ir.Value, error) {
		tf.Metrics.Push("calls", 1)
		return ir.NumValue(0), nil
	})
	// monitor_push(metric, value) lets woven code publish any metric.
	vm.RegisterExtern("monitor_push", func(_ *ir.VM, args []ir.Value) (ir.Value, error) {
		if len(args) == 2 && args[0].Kind == ir.KindStr {
			tf.Metrics.Push(args[0].Str, args[1].Num)
		}
		return ir.NumValue(0), nil
	})
	return nil
}

// Invoke calls a function in the compiled application, recording the
// simulated cycle cost under the "cycles" metric.
func (tf *ToolFlow) Invoke(fn string, args ...ir.Value) (ir.Value, error) {
	if tf.VM == nil {
		return ir.Value{}, fmt.Errorf("core: Compile before Invoke")
	}
	before := tf.VM.Cycles
	v, err := tf.VM.Call(fn, args...)
	if err != nil {
		return ir.Value{}, err
	}
	tf.Metrics.Push("cycles", float64(tf.VM.Cycles-before))
	return v, nil
}

// Source returns the current woven source text.
func (tf *ToolFlow) Source() string { return tf.Weaver.Source() }
