package core

import (
	"strings"
	"testing"

	"repro/internal/autotune"
	"repro/internal/dsl/interp"
	"repro/internal/ir"
	"repro/internal/monitor"
	"repro/internal/rtrm"
	"repro/internal/runtime"
	"repro/internal/simhpc"
)

const appSource = `
double kernel(double* data, int size) {
    double s = 0.0;
    for (int i = 0; i < size; i++) {
        s = s + data[i] * data[i];
    }
    return s;
}

double run(double* data, int size, int reps) {
    double acc = 0.0;
    for (int r = 0; r < reps; r++) {
        acc = acc + kernel(data, size);
    }
    return acc;
}
`

const appAspects = `
aspectdef ProfileArguments
	input funcName end
	select fCall end
	apply
		insert before %{profile_args('[[funcName]]',
			[[$fCall.location]],
			[[$fCall.argList]]);
		}%;
	end
	condition $fCall.name == funcName end
end

aspectdef UnrollInnermostLoops
	input $func, threshold end
	select $func.loop{type=='for'} end
	apply
		do LoopUnroll('full');
	end
	condition
		$loop.isInnermost && $loop.numIter <= threshold
	end
end

aspectdef SpecializeKernel
	input lowT, highT end
	call spCall: PrepareSpecialize('kernel','size');
	select fCall{'kernel'}.arg{'size'} end
	apply dynamic
		call spOut : Specialize($fCall, $arg.name, $arg.runtimeValue);
		call UnrollInnermostLoops(spOut.$func, $arg.runtimeValue);
		call AddVersion(spCall, spOut.$func, $arg.runtimeValue);
	end
	condition
		$arg.runtimeValue >= lowT && $arg.runtimeValue <= highT
	end
end
`

// TestFig1ToolFlowEndToEnd drives the whole Fig. 1 pipeline: DSL + C
// source → weaver → split compiler → monitored, dynamically-specializing
// runtime.
func TestFig1ToolFlowEndToEnd(t *testing.T) {
	tf, err := NewToolFlow("app.c", appSource, appAspects)
	if err != nil {
		t.Fatal(err)
	}
	if err := tf.WeaveAspect("ProfileArguments", interp.Str("kernel")); err != nil {
		t.Fatalf("weave profiling: %v", err)
	}
	if err := tf.WeaveAspect("SpecializeKernel", interp.Num(4), interp.Num(64)); err != nil {
		t.Fatalf("weave specialization: %v", err)
	}
	if got := tf.WovenAspects(); len(got) != 2 {
		t.Fatalf("woven: %v", got)
	}
	if !strings.Contains(tf.Source(), "profile_args") {
		t.Fatal("profiling not in woven source")
	}
	if err := tf.Compile(); err != nil {
		t.Fatalf("compile: %v", err)
	}
	if err := tf.WeaveAspect("ProfileArguments", interp.Str("run")); err == nil {
		t.Error("weaving after compile should fail")
	}

	buf := make([]float64, 32)
	for i := range buf {
		buf[i] = float64(i % 7)
	}
	var want float64
	for _, v := range buf {
		want += v * v
	}
	got, err := tf.Invoke("run", ir.PtrValue(buf), ir.NumValue(32), ir.NumValue(10))
	if err != nil {
		t.Fatal(err)
	}
	if got.Num != 10*want {
		t.Errorf("run = %v, want %v", got.Num, 10*want)
	}
	// Monitors saw the woven probes and the invocation cost.
	if calls := tf.Metrics.Window("calls"); calls == nil || calls.Total() != 10 {
		t.Errorf("call monitor: %+v", calls)
	}
	if cyc := tf.Metrics.Window("cycles"); cyc == nil || cyc.Mean() <= 0 {
		t.Error("cycle monitor empty")
	}
	// Dynamic weaving specialized kernel for size 32.
	spName := ir.SpecializedName("kernel", "size", 32)
	if _, ok := tf.Split.Mod.Funcs[spName]; !ok {
		t.Errorf("dynamic specialization %q missing", spName)
	}
	// The specialized pipeline beats an unwoven (generic) build of the
	// same program on the same work.
	c1 := tf.VM.Cycles
	if _, err := tf.Invoke("run", ir.PtrValue(buf), ir.NumValue(32), ir.NumValue(10)); err != nil {
		t.Fatal(err)
	}
	specialized := tf.VM.Cycles - c1

	plain, err := NewToolFlow("app.c", appSource, appAspects)
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.Compile(); err != nil {
		t.Fatal(err)
	}
	p1 := plain.VM.Cycles
	if _, err := plain.Invoke("run", ir.PtrValue(buf), ir.NumValue(32), ir.NumValue(10)); err != nil {
		t.Fatal(err)
	}
	generic := plain.VM.Cycles - p1
	if specialized >= generic {
		t.Errorf("specialized run (%d cycles) should beat generic (%d)", specialized, generic)
	}
}

func TestAppTuneAndDriftRetune(t *testing.T) {
	space := autotune.NewSpace(autotune.VariantKnob("variant", "A", "B"))
	phase := 0.0
	cost := func(cfg autotune.Config) autotune.Measurement {
		if cfg["variant"] == phase {
			return autotune.Measurement{Cost: 1}
		}
		return autotune.Measurement{Cost: 3}
	}
	sla := monitor.SLA{Goals: []monitor.Goal{
		{Metric: monitor.MetricLatency, Relation: monitor.AtMost, Target: 1.5},
	}}
	app := NewApp("demo", space, sla, &autotune.Exhaustive{}, cost)
	if _, err := app.EpochTasks(); err == nil {
		t.Error("untuned app should error")
	}
	if err := app.TuneInitial(0); err != nil {
		t.Fatal(err)
	}
	if app.Config()["variant"] != 0 {
		t.Fatalf("initial config: %v", app.Config())
	}
	// Drift: variant A degrades past B's known cost (B was measured at 3
	// during phase 0, A now costs 4; the knowledge base only sees A's
	// live samples, so feed it A's degraded cost until B's stale estimate
	// wins). The app runs under its kernel controller: Observe feeds the
	// inbox, Tick runs collect-analyse-decide-act.
	ctl := runtime.NewController(app.Spec())
	phase = 1
	for i := 0; i < 40; i++ {
		app.Observe(monitor.MetricLatency, 4.0)
		ctl.Tick()
	}
	if app.Retunes() == 0 {
		t.Fatal("app never retuned under drift")
	}
	if app.Config()["variant"] != 1 {
		t.Errorf("config after drift: %v", app.Config())
	}
}

// TestKernelEpochs is the old System test, restated over the adaptation
// kernel: apps attach their specs, the kernel multiplexes their epoch
// workloads into the shared manager.
func TestKernelEpochs(t *testing.T) {
	rng := simhpc.NewRNG(31)
	cluster := simhpc.NewCluster(4, 25, func(i int) *simhpc.Node {
		return simhpc.HomogeneousNode("n", 0.15, rng)
	})
	kern := runtime.NewKernel(rtrm.NewManager(cluster, cluster.FacilityPowerW(1)*0.9))

	space := autotune.NewSpace(autotune.IntKnob("batch", 1, 4, 1))
	cost := func(cfg autotune.Config) autotune.Measurement {
		return autotune.Measurement{Cost: 10 / cfg["batch"]} // bigger batch better
	}
	gen := simhpc.NewWorkloadGen(33)
	app := NewApp("batcher", space, monitor.SLA{}, &autotune.Exhaustive{}, cost)
	app.Workload = func(cfg autotune.Config) []*simhpc.Task {
		n := int(cfg["batch"]) * 4
		return gen.Mix(n, 1, 1, 1, 10)
	}
	if err := app.TuneInitial(0); err != nil {
		t.Fatal(err)
	}
	if app.Config()["batch"] != 4 {
		t.Errorf("tuned batch: %v", app.Config())
	}
	if _, err := kern.Attach(app.Spec()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		res, err := kern.RunEpoch(60)
		if err != nil {
			t.Fatal(err)
		}
		if res.PerApp["batcher"] <= 0 {
			t.Error("no per-app work recorded")
		}
	}
	if stats := kern.ManagerStats(); kern.Epochs() != 5 || stats.WorkGFlop <= 0 {
		t.Errorf("kernel counters: epochs=%d work=%v", kern.Epochs(), stats.WorkGFlop)
	}
}
