package core

import (
	"strings"
	"testing"

	"repro/internal/ir"
)

func TestToolFlowErrorPaths(t *testing.T) {
	// Bad functional source.
	if _, err := NewToolFlow("bad.c", "int f( {", appAspects); err == nil {
		t.Error("bad miniC should fail")
	}
	// Bad aspect source surfaces at weave time.
	tf, err := NewToolFlow("app.c", appSource, "not an aspect file")
	if err != nil {
		t.Fatal(err)
	}
	if err := tf.WeaveAspect("X"); err == nil {
		t.Error("unparseable aspects should fail at weave")
	}
	// Unknown aspect.
	tf2, _ := NewToolFlow("app.c", appSource, appAspects)
	if err := tf2.WeaveAspect("NoSuchAspect"); err == nil || !strings.Contains(err.Error(), "not defined") {
		t.Errorf("unknown aspect: %v", err)
	}
	// Invoke before compile.
	if _, err := tf2.Invoke("run"); err == nil || !strings.Contains(err.Error(), "Compile before Invoke") {
		t.Errorf("invoke before compile: %v", err)
	}
	// Unknown function after compile.
	if err := tf2.Compile(); err != nil {
		t.Fatal(err)
	}
	if _, err := tf2.Invoke("nosuch"); err == nil || !strings.Contains(err.Error(), "undefined function") {
		t.Errorf("unknown function: %v", err)
	}
}

func TestMonitorPushExtern(t *testing.T) {
	src := `
void work() {
    monitor_push('speed', 42);
    monitor_push('speed', 44);
}
`
	tf, err := NewToolFlow("m.c", src, appAspects)
	if err != nil {
		t.Fatal(err)
	}
	if err := tf.Compile(); err != nil {
		t.Fatal(err)
	}
	if _, err := tf.Invoke("work"); err != nil {
		t.Fatal(err)
	}
	w := tf.Metrics.Window("speed")
	if w == nil || w.Total() != 2 || w.Mean() != 43 {
		t.Errorf("monitor_push: %+v", w)
	}
	if _, err := ir.NewSplitCompiler("m.c", src); err != nil {
		t.Errorf("source should stand alone: %v", err)
	}
}
