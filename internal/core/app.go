package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/autotune"
	"repro/internal/monitor"
	"repro/internal/runtime"
	"repro/internal/simhpc"
	"repro/internal/srcmodel"
)

// parseMiniC isolates the srcmodel dependency for ToolFlow.
func parseMiniC(file, src string) (*srcmodel.Program, error) {
	return srcmodel.Parse(file, src)
}

// App is a managed adaptive application: a design space of software
// knobs, an SLA, an autotuner, plus a workload model that turns the
// current configuration into simulator tasks for the RTRM. It is the
// application-side endpoint of both Fig. 1 control loops, expressed as
// an AppSpec for the concurrent adaptation kernel (internal/runtime):
// its Sensor is a concurrent telemetry inbox, its Policy retunes from
// the autotuner's knowledge base, its Knob swaps the applied
// configuration. All methods are safe for concurrent use.
type App struct {
	Name  string
	Space *autotune.Space
	SLA   monitor.SLA
	Tuner *autotune.Tuner

	// Workload converts the applied configuration into this epoch's
	// tasks for the cluster.
	Workload func(cfg autotune.Config) []*simhpc.Task
	// CostFn measures a configuration (used during tuning).
	CostFn autotune.Objective

	inbox   runtime.Inbox
	mu      sync.Mutex
	applied autotune.Config
	retunes atomic.Int64
}

// NewApp assembles an adaptive application.
func NewApp(name string, space *autotune.Space, sla monitor.SLA, strat autotune.Strategy, cost autotune.Objective) *App {
	a := &App{Name: name, Space: space, SLA: sla, CostFn: cost}
	a.Tuner = autotune.NewTuner(space, strat, cost)
	return a
}

// Spec declares the app to the adaptation kernel: attach it with
// Kernel.Attach(app.Spec()) or run it standalone under a
// runtime.NewController(app.Spec()).
func (a *App) Spec() runtime.AppSpec {
	return runtime.AppSpec{
		Name:     a.Name,
		SLA:      a.SLA,
		Window:   32,
		Debounce: 2,
		Sensor:   &a.inbox,
		Policy:   &runtime.TunerPolicy{Tuner: a.Tuner, Margin: 0.05},
		Knob: runtime.KnobFunc(func(cfg autotune.Config) {
			a.mu.Lock()
			a.applied = cfg
			a.mu.Unlock()
			a.retunes.Add(1)
		}),
		Workload: a.EpochTasks,
	}
}

// TuneInitial runs the tuner's strategy to pick the deployment
// configuration (design-time DSE, the "offline" part of autotuning).
func (a *App) TuneInitial(maxEvals int) error {
	p, _, err := a.Tuner.Run(maxEvals)
	if err != nil {
		return err
	}
	a.mu.Lock()
	a.applied = a.Space.At(p)
	a.mu.Unlock()
	return nil
}

// Config returns the currently applied configuration.
func (a *App) Config() autotune.Config {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.applied
}

// Retunes counts adaptation events (kernel-applied configuration
// switches).
func (a *App) Retunes() int64 { return a.retunes.Load() }

// Observe feeds a production cost sample into both the knowledge base
// and the kernel-facing telemetry inbox. Safe from any serving
// goroutine; the kernel's control loop collects and decides on its next
// epoch.
func (a *App) Observe(metric string, value float64) {
	a.Tuner.Observe(value)
	a.inbox.Push(metric, value)
}

// EpochTasks materializes this epoch's workload under the applied
// configuration (the kernel's Workload stage).
func (a *App) EpochTasks() ([]*simhpc.Task, error) {
	a.mu.Lock()
	cfg := a.applied
	a.mu.Unlock()
	if cfg == nil {
		return nil, fmt.Errorf("core: app %q not tuned (call TuneInitial)", a.Name)
	}
	if a.Workload == nil {
		return nil, nil
	}
	return a.Workload(cfg), nil
}
