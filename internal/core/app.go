package core

import (
	"fmt"

	"repro/internal/autotune"
	"repro/internal/monitor"
	"repro/internal/simhpc"
	"repro/internal/srcmodel"
)

// parseMiniC isolates the srcmodel dependency for ToolFlow.
func parseMiniC(file, src string) (*srcmodel.Program, error) {
	return srcmodel.Parse(file, src)
}

// App is a managed adaptive application: a design space of software
// knobs, an SLA, a monitor loop and an autotuner, plus a workload model
// that turns the current configuration into simulator tasks for the
// RTRM. It is the application-side endpoint of both Fig. 1 control
// loops.
type App struct {
	Name  string
	Space *autotune.Space
	SLA   monitor.SLA
	Tuner *autotune.Tuner
	Loop  *monitor.Loop

	// Workload converts the applied configuration into this epoch's
	// tasks for the cluster.
	Workload func(cfg autotune.Config) []*simhpc.Task
	// CostFn measures a configuration (used during tuning).
	CostFn autotune.Objective

	applied autotune.Config
	// Retunes counts adaptation events.
	Retunes int
}

// NewApp assembles an adaptive application.
func NewApp(name string, space *autotune.Space, sla monitor.SLA, strat autotune.Strategy, cost autotune.Objective) *App {
	a := &App{Name: name, Space: space, SLA: sla, CostFn: cost}
	a.Tuner = autotune.NewTuner(space, strat, cost)
	a.Loop = monitor.NewLoop(sla, 32, 2, func(d monitor.Decision, _ map[string]monitor.Summary) {
		if a.Tuner.Retune(0.05) {
			a.Retunes++
			a.applied = a.Space.At(a.Tuner.Applied())
		}
	})
	return a
}

// TuneInitial runs the tuner's strategy to pick the deployment
// configuration (design-time DSE, the "offline" part of autotuning).
func (a *App) TuneInitial(maxEvals int) error {
	p, _, err := a.Tuner.Run(maxEvals)
	if err != nil {
		return err
	}
	a.applied = a.Space.At(p)
	return nil
}

// Config returns the currently applied configuration.
func (a *App) Config() autotune.Config { return a.applied }

// ObserveAndTick feeds a production cost sample into both the knowledge
// base and the monitor loop, then runs one decide cycle.
func (a *App) ObserveAndTick(metric string, value float64) {
	a.Tuner.Observe(value)
	a.Loop.Metrics.Push(metric, value)
	a.Loop.Tick()
}

// EpochTasks materializes this epoch's workload under the applied
// configuration.
func (a *App) EpochTasks() ([]*simhpc.Task, error) {
	if a.applied == nil {
		return nil, fmt.Errorf("core: app %q not tuned (call TuneInitial)", a.Name)
	}
	if a.Workload == nil {
		return nil, nil
	}
	return a.Workload(a.applied), nil
}
