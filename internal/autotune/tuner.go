package autotune

import (
	"fmt"

	"repro/internal/monitor"
)

// Objective evaluates a configuration and returns its measurement.
// In the live system this runs the application slice under the
// configuration and reads the monitors; in benchmarks it queries the
// simulator.
type Objective func(Config) Measurement

// Tuner drives a strategy against an objective and maintains the online
// knowledge base of §IV: per-configuration EWMA cost estimates that
// continuous learning keeps current as operating conditions drift.
type Tuner struct {
	Space    *Space
	Strategy Strategy
	Obj      Objective

	History   *History
	Knowledge map[string]*monitor.EWMA
	// Alpha is the knowledge EWMA smoothing factor.
	Alpha float64

	applied Point
}

// NewTuner assembles a tuner.
func NewTuner(space *Space, strat Strategy, obj Objective) *Tuner {
	return &Tuner{
		Space:     space,
		Strategy:  strat,
		Obj:       obj,
		History:   NewHistory(space),
		Knowledge: make(map[string]*monitor.EWMA),
		Alpha:     0.3,
	}
}

// Run drives the strategy to exhaustion (or at most maxEvals when > 0)
// and returns the best point found.
func (t *Tuner) Run(maxEvals int) (Point, Measurement, error) {
	evals := 0
	for {
		if maxEvals > 0 && evals >= maxEvals {
			break
		}
		p, ok := t.Strategy.Next(t.History)
		if !ok {
			break
		}
		m := t.Obj(t.Space.At(p))
		t.record(p, m)
		evals++
	}
	best, ok := t.History.Best()
	if !ok {
		return nil, Measurement{}, fmt.Errorf("autotune: strategy %q proposed no points", t.Strategy.Name())
	}
	t.applied = best.Point
	return best.Point, best.M, nil
}

func (t *Tuner) record(p Point, m Measurement) {
	t.History.Record(p, m)
	key := p.Key()
	e, ok := t.Knowledge[key]
	if !ok {
		e = monitor.NewEWMA(t.Alpha)
		t.Knowledge[key] = e
	}
	e.Push(m.Cost)
}

// Applied returns the currently deployed configuration point (nil before
// the first Run).
func (t *Tuner) Applied() Point { return t.applied }

// Observe feeds a production measurement of the applied configuration
// into the knowledge base (continuous on-line learning): the autotuner
// keeps learning after deployment, so Retune can react when the deployed
// point's live cost drifts away from the best known alternative.
func (t *Tuner) Observe(cost float64) {
	if t.applied == nil {
		return
	}
	key := t.applied.Key()
	e, ok := t.Knowledge[key]
	if !ok {
		e = monitor.NewEWMA(t.Alpha)
		t.Knowledge[key] = e
	}
	e.Push(cost)
}

// KnownBest returns the point with the lowest current knowledge-base
// estimate (which, unlike History.Best, tracks drift via Observe).
func (t *Tuner) KnownBest() (Point, float64, bool) {
	var bestKey string
	best := 0.0
	found := false
	for key, e := range t.Knowledge {
		if !e.Initialized() {
			continue
		}
		if !found || e.Value() < best {
			best, bestKey, found = e.Value(), key, true
		}
	}
	if !found {
		return nil, 0, false
	}
	return parseKey(bestKey), best, true
}

func parseKey(key string) Point {
	var p Point
	cur := 0
	has := false
	for i := 0; i <= len(key); i++ {
		if i == len(key) || key[i] == ',' {
			if has {
				p = append(p, cur)
			}
			cur, has = 0, false
			continue
		}
		c := key[i]
		if c >= '0' && c <= '9' {
			cur = cur*10 + int(c-'0')
			has = true
		}
	}
	return p
}

// Retune switches to the knowledge-base best if it beats the applied
// configuration by more than margin (fractional), returning whether a
// switch happened. This is the "decide" step the monitor loop invokes on
// SLA violations.
func (t *Tuner) Retune(margin float64) bool {
	bestP, bestCost, ok := t.KnownBest()
	if !ok || t.applied == nil {
		return false
	}
	curE, ok := t.Knowledge[t.applied.Key()]
	if !ok || !curE.Initialized() {
		return false
	}
	if bestCost < curE.Value()*(1-margin) && bestP.Key() != t.applied.Key() {
		t.applied = bestP
		return true
	}
	return false
}
