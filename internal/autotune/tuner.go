package autotune

import (
	"fmt"
	"sync"

	"repro/internal/monitor"
)

// Objective evaluates a configuration and returns its measurement.
// In the live system this runs the application slice under the
// configuration and reads the monitors; in benchmarks it queries the
// simulator.
type Objective func(Config) Measurement

// Tuner drives a strategy against an objective and maintains the online
// knowledge base of §IV: per-configuration EWMA cost estimates that
// continuous learning keeps current as operating conditions drift.
//
// The knowledge base and applied-point state are safe for concurrent
// use: serving goroutines Observe production costs while the adaptation
// kernel's control loop calls Retune. Run itself is a design-time
// operation and must not race with other Runs on the same Tuner.
type Tuner struct {
	Space    *Space
	Strategy Strategy
	Obj      Objective

	History *History
	// Alpha is the knowledge EWMA smoothing factor.
	Alpha float64

	mu        sync.Mutex
	knowledge map[string]*monitor.EWMA
	applied   Point
}

// NewTuner assembles a tuner.
func NewTuner(space *Space, strat Strategy, obj Objective) *Tuner {
	return &Tuner{
		Space:     space,
		Strategy:  strat,
		Obj:       obj,
		History:   NewHistory(space),
		knowledge: make(map[string]*monitor.EWMA),
		Alpha:     0.3,
	}
}

// Run drives the strategy to exhaustion (or at most maxEvals when > 0)
// and returns the best point found.
func (t *Tuner) Run(maxEvals int) (Point, Measurement, error) {
	evals := 0
	for {
		if maxEvals > 0 && evals >= maxEvals {
			break
		}
		p, ok := t.Strategy.Next(t.History)
		if !ok {
			break
		}
		m := t.Obj(t.Space.At(p))
		t.record(p, m)
		evals++
	}
	best, ok := t.History.Best()
	if !ok {
		return nil, Measurement{}, fmt.Errorf("autotune: strategy %q proposed no points", t.Strategy.Name())
	}
	t.mu.Lock()
	t.applied = best.Point
	t.mu.Unlock()
	return best.Point, best.M, nil
}

func (t *Tuner) record(p Point, m Measurement) {
	t.History.Record(p, m)
	t.estimator(p.Key()).Push(m.Cost)
}

// estimator returns (creating on demand) the knowledge EWMA for key.
func (t *Tuner) estimator(key string) *monitor.EWMA {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.knowledge[key]
	if !ok {
		e = monitor.NewEWMA(t.Alpha)
		t.knowledge[key] = e
	}
	return e
}

// Applied returns the currently deployed configuration point (nil before
// the first Run).
func (t *Tuner) Applied() Point {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.applied
}

// Knowledge returns the current EWMA estimate for point p (ok=false if
// the knowledge base has never seen it).
func (t *Tuner) Knowledge(p Point) (float64, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.knowledge[p.Key()]
	if !ok || !e.Initialized() {
		return 0, false
	}
	return e.Value(), true
}

// Observe feeds a production measurement of the applied configuration
// into the knowledge base (continuous on-line learning): the autotuner
// keeps learning after deployment, so Retune can react when the deployed
// point's live cost drifts away from the best known alternative. Safe to
// call from many serving goroutines.
func (t *Tuner) Observe(cost float64) {
	t.mu.Lock()
	if t.applied == nil {
		t.mu.Unlock()
		return
	}
	key := t.applied.Key()
	e, ok := t.knowledge[key]
	if !ok {
		e = monitor.NewEWMA(t.Alpha)
		t.knowledge[key] = e
	}
	t.mu.Unlock()
	e.Push(cost)
}

// KnownBest returns the point with the lowest current knowledge-base
// estimate (which, unlike History.Best, tracks drift via Observe).
func (t *Tuner) KnownBest() (Point, float64, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.knownBest()
}

func (t *Tuner) knownBest() (Point, float64, bool) {
	var bestKey string
	best := 0.0
	found := false
	for key, e := range t.knowledge {
		if !e.Initialized() {
			continue
		}
		if !found || e.Value() < best {
			best, bestKey, found = e.Value(), key, true
		}
	}
	if !found {
		return nil, 0, false
	}
	return parseKey(bestKey), best, true
}

func parseKey(key string) Point {
	var p Point
	cur := 0
	has := false
	for i := 0; i <= len(key); i++ {
		if i == len(key) || key[i] == ',' {
			if has {
				p = append(p, cur)
			}
			cur, has = 0, false
			continue
		}
		c := key[i]
		if c >= '0' && c <= '9' {
			cur = cur*10 + int(c-'0')
			has = true
		}
	}
	return p
}

// Retune switches to the knowledge-base best if it beats the applied
// configuration by more than margin (fractional), returning whether a
// switch happened. This is the "decide" step the adaptation kernel
// invokes on SLA violations.
func (t *Tuner) Retune(margin float64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	bestP, bestCost, ok := t.knownBest()
	if !ok || t.applied == nil {
		return false
	}
	curE, ok := t.knowledge[t.applied.Key()]
	if !ok || !curE.Initialized() {
		return false
	}
	if bestCost < curE.Value()*(1-margin) && bestP.Key() != t.applied.Key() {
		t.applied = bestP
		return true
	}
	return false
}
