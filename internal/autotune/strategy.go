package autotune

import (
	"math"

	"repro/internal/simhpc"
)

// Measurement is one observation of a configuration: the scalar cost to
// minimize plus any auxiliary metrics for SLA checking.
type Measurement struct {
	Cost    float64
	Metrics map[string]float64
}

// Eval is a (point, measurement) pair in the tuning history.
type Eval struct {
	Point Point
	M     Measurement
}

// History accumulates evaluations and answers best-so-far queries.
type History struct {
	Space *Space
	Evals []Eval
	seen  map[string]int // point key -> index of first eval
}

// NewHistory returns an empty history over space.
func NewHistory(space *Space) *History {
	return &History{Space: space, seen: make(map[string]int)}
}

// Record appends an evaluation.
func (h *History) Record(p Point, m Measurement) {
	if _, ok := h.seen[p.Key()]; !ok {
		h.seen[p.Key()] = len(h.Evals)
	}
	h.Evals = append(h.Evals, Eval{Point: p.Clone(), M: m})
}

// Seen reports whether p was ever evaluated.
func (h *History) Seen(p Point) bool {
	_, ok := h.seen[p.Key()]
	return ok
}

// Best returns the lowest-cost evaluation (ok=false when empty).
func (h *History) Best() (Eval, bool) {
	if len(h.Evals) == 0 {
		return Eval{}, false
	}
	best := h.Evals[0]
	for _, e := range h.Evals[1:] {
		if e.M.Cost < best.M.Cost {
			best = e
		}
	}
	return best, true
}

// EvalsToWithin returns how many evaluations were needed before the
// running best came within frac of the final best cost (convergence
// speed metric for the grey-box benchmark).
func (h *History) EvalsToWithin(frac float64) int {
	best, ok := h.Best()
	if !ok {
		return 0
	}
	threshold := best.M.Cost * (1 + frac)
	running := math.Inf(1)
	for i, e := range h.Evals {
		if e.M.Cost < running {
			running = e.M.Cost
		}
		if running <= threshold {
			return i + 1
		}
	}
	return len(h.Evals)
}

// Strategy proposes the next point to evaluate (ask-tell interface).
// Next returns ok=false when the strategy has nothing more to propose.
type Strategy interface {
	Name() string
	Next(h *History) (Point, bool)
}

// Exhaustive enumerates the whole (annotated) space once.
type Exhaustive struct {
	points []Point
	idx    int
	init   bool
}

// Name implements Strategy.
func (e *Exhaustive) Name() string { return "exhaustive" }

// Next implements Strategy.
func (e *Exhaustive) Next(h *History) (Point, bool) {
	if !e.init {
		h.Space.Enumerate(func(p Point) bool {
			e.points = append(e.points, p)
			return true
		})
		e.init = true
	}
	if e.idx >= len(e.points) {
		return nil, false
	}
	p := e.points[e.idx]
	e.idx++
	return p, true
}

// RandomSearch samples valid points uniformly (with replacement) up to a
// budget.
type RandomSearch struct {
	Budget int
	Rng    *simhpc.RNG
	n      int
}

// Name implements Strategy.
func (r *RandomSearch) Name() string { return "random" }

// Next implements Strategy.
func (r *RandomSearch) Next(h *History) (Point, bool) {
	if r.n >= r.Budget {
		return nil, false
	}
	for tries := 0; tries < 1000; tries++ {
		p := make(Point, len(h.Space.Knobs))
		for i, k := range h.Space.Knobs {
			p[i] = r.Rng.Intn(len(k.Values))
		}
		if h.Space.Valid(p) {
			r.n++
			return p, true
		}
	}
	return nil, false
}

// HillClimb is steepest-descent local search with random restarts.
type HillClimb struct {
	Budget   int
	Restarts int
	Rng      *simhpc.RNG

	n        int
	cur      Point
	curCost  float64
	pending  []Point // unevaluated neighbors of cur
	restarts int
	started  bool
}

// Name implements Strategy.
func (hc *HillClimb) Name() string { return "hillclimb" }

// Next implements Strategy.
func (hc *HillClimb) Next(h *History) (Point, bool) {
	if hc.n >= hc.Budget {
		return nil, false
	}
	if !hc.started {
		hc.started = true
		hc.cur = hc.randomPoint(h)
		hc.n++
		return hc.cur, true
	}
	// Refresh cur's cost from history.
	hc.curCost = costOf(h, hc.cur)
	if hc.pending == nil {
		hc.pending = h.Space.Neighbors(hc.cur)
	}
	for len(hc.pending) > 0 {
		p := hc.pending[0]
		hc.pending = hc.pending[1:]
		if h.Seen(p) {
			// Already measured: move if better without spending budget.
			if c := costOf(h, p); c < hc.curCost {
				hc.cur, hc.curCost, hc.pending = p, c, nil
				return hc.Next(h)
			}
			continue
		}
		hc.n++
		return p, true
	}
	// All neighbors seen: move to the best improving one, else restart.
	moved := false
	for _, p := range h.Space.Neighbors(hc.cur) {
		if c := costOf(h, p); c < hc.curCost {
			hc.cur, hc.curCost, moved = p, c, true
		}
	}
	hc.pending = nil
	if moved {
		return hc.Next(h)
	}
	if hc.restarts < hc.Restarts {
		hc.restarts++
		hc.cur = hc.randomPoint(h)
		if !h.Seen(hc.cur) {
			hc.n++
			return hc.cur, true
		}
		return hc.Next(h)
	}
	return nil, false
}

func (hc *HillClimb) randomPoint(h *History) Point {
	for tries := 0; tries < 1000; tries++ {
		p := make(Point, len(h.Space.Knobs))
		for i, k := range h.Space.Knobs {
			p[i] = hc.Rng.Intn(len(k.Values))
		}
		if h.Space.Valid(p) {
			return p
		}
	}
	return h.Space.Center()
}

func costOf(h *History, p Point) float64 {
	if i, ok := h.seen[p.Key()]; ok {
		return h.Evals[i].M.Cost
	}
	return math.Inf(1)
}

// Annealing is simulated annealing over the lattice with a geometric
// cooling schedule.
type Annealing struct {
	Budget int
	T0     float64 // initial temperature (relative to cost scale)
	Alpha  float64 // cooling factor per step, e.g. 0.95
	Rng    *simhpc.RNG

	n       int
	cur     Point
	curCost float64
	temp    float64
	prop    Point
	started bool
}

// Name implements Strategy.
func (a *Annealing) Name() string { return "annealing" }

// Next implements Strategy.
func (a *Annealing) Next(h *History) (Point, bool) {
	if a.n >= a.Budget {
		return nil, false
	}
	if !a.started {
		a.started = true
		a.temp = a.T0
		a.cur = h.Space.Center()
		a.n++
		return a.cur, true
	}
	// Accept/reject the previous proposal.
	if a.prop != nil {
		pc := costOf(h, a.prop)
		a.curCost = costOf(h, a.cur)
		accept := pc < a.curCost
		if !accept && a.temp > 0 {
			delta := (pc - a.curCost) / math.Max(math.Abs(a.curCost), 1e-12)
			accept = a.Rng.Float64() < math.Exp(-delta/a.temp)
		}
		if accept {
			a.cur = a.prop
		}
		a.prop = nil
		a.temp *= a.Alpha
	}
	nbrs := h.Space.Neighbors(a.cur)
	if len(nbrs) == 0 {
		return nil, false
	}
	a.prop = nbrs[a.Rng.Intn(len(nbrs))]
	a.n++
	return a.prop, true
}

// UCB is an upper-confidence-bound bandit over the enumerated space:
// suitable for small annotated spaces under noisy measurements, it is
// the machine-learning decision engine of §IV ("predicting the most
// promising set of parameter settings").
type UCB struct {
	Budget int
	C      float64 // exploration weight

	arms  []Point
	stats []struct {
		n    int
		mean float64
	}
	n    int
	init bool
}

// Name implements Strategy.
func (u *UCB) Name() string { return "ucb" }

// Next implements Strategy.
func (u *UCB) Next(h *History) (Point, bool) {
	if !u.init {
		h.Space.Enumerate(func(p Point) bool {
			u.arms = append(u.arms, p)
			return true
		})
		u.stats = make([]struct {
			n    int
			mean float64
		}, len(u.arms))
		u.init = true
	}
	if u.n >= u.Budget || len(u.arms) == 0 {
		return nil, false
	}
	// Fold in the latest observation.
	if len(h.Evals) > 0 {
		last := h.Evals[len(h.Evals)-1]
		for i, p := range u.arms {
			if p.Key() == last.Point.Key() {
				s := &u.stats[i]
				s.n++
				s.mean += (last.M.Cost - s.mean) / float64(s.n)
				break
			}
		}
	}
	// Play any unplayed arm first.
	for i, s := range u.stats {
		if s.n == 0 {
			u.n++
			return u.arms[i], true
		}
	}
	// UCB on negated cost (we minimize).
	total := 0
	for _, s := range u.stats {
		total += s.n
	}
	bestIdx, bestScore := 0, math.Inf(-1)
	for i, s := range u.stats {
		score := -s.mean + u.C*math.Sqrt(2*math.Log(float64(total))/float64(s.n))
		if score > bestScore {
			bestScore, bestIdx = score, i
		}
	}
	u.n++
	return u.arms[bestIdx], true
}
