package autotune

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/simhpc"
)

func testSpace() *Space {
	return NewSpace(
		IntKnob("block", 1, 8, 1),                                  // 8 levels
		IntKnob("threads", 1, 16, 1),                               // 16 levels
		VariantKnob("variant", "scalar", "vectorized", "unrolled"), // 3
	)
}

// quadratic cost with optimum at block=4, threads=8, variant=vectorized.
func testObjective(cfg Config) Measurement {
	b := cfg["block"] - 4
	th := cfg["threads"] - 8
	v := 0.0
	if cfg["variant"] != 1 {
		v = 5
	}
	return Measurement{Cost: b*b + th*th/4 + v}
}

func TestSpaceBasics(t *testing.T) {
	s := testSpace()
	if s.RawSize() != 8*16*3 {
		t.Errorf("raw size %d", s.RawSize())
	}
	if s.Size() != s.RawSize() {
		t.Errorf("unconstrained size %d != raw %d", s.Size(), s.RawSize())
	}
	p := Point{3, 7, 1}
	cfg := s.At(p)
	if cfg["block"] != 4 || cfg["threads"] != 8 || cfg["variant"] != 1 {
		t.Errorf("At: %v", cfg)
	}
	if s.Describe(p) == "" || p.Key() != "3,7,1" {
		t.Errorf("describe/key: %q %q", s.Describe(p), p.Key())
	}
	n := s.Neighbors(Point{0, 0, 0})
	if len(n) != 3 {
		t.Errorf("corner neighbors: %d, want 3", len(n))
	}
	n = s.Neighbors(Point{3, 7, 1})
	if len(n) != 6 {
		t.Errorf("interior neighbors: %d, want 6", len(n))
	}
}

func TestGreyBoxConstraintShrinksSpace(t *testing.T) {
	s := testSpace()
	raw := s.Size()
	// Annotation: power-of-two thread counts only, vectorized variants
	// need block >= 2.
	s.Constrain(func(p Point) bool {
		th := int(s.Knobs[1].Level(p[1]))
		return th&(th-1) == 0
	}).Constrain(func(p Point) bool {
		return !(p[2] == 1 && s.Knobs[0].Level(p[0]) < 2)
	})
	shrunk := s.Size()
	if shrunk >= raw {
		t.Fatalf("constraints did not shrink: %d >= %d", shrunk, raw)
	}
	// 5 power-of-two thread levels (1,2,4,8,16) -> 8*5*3 minus vectorized
	// with block 1 (1*5*1 = 5) = 120-5=115.
	if shrunk != 115 {
		t.Errorf("shrunk size %d, want 115", shrunk)
	}
	s.Enumerate(func(p Point) bool {
		if !s.Valid(p) {
			t.Fatalf("enumerate yielded invalid point %v", p)
		}
		return true
	})
}

func TestExhaustiveFindsOptimum(t *testing.T) {
	s := testSpace()
	tu := NewTuner(s, &Exhaustive{}, testObjective)
	best, m, err := tu.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Cost != 0 {
		t.Errorf("best cost %v at %s", m.Cost, s.Describe(best))
	}
	if len(tu.History.Evals) != s.Size() {
		t.Errorf("evals %d != size %d", len(tu.History.Evals), s.Size())
	}
}

func TestRandomSearchRespectsBudgetAndConstraints(t *testing.T) {
	s := testSpace()
	s.Constrain(func(p Point) bool { return p[0] != 0 })
	rs := &RandomSearch{Budget: 50, Rng: simhpc.NewRNG(1)}
	tu := NewTuner(s, rs, testObjective)
	_, _, err := tu.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tu.History.Evals) != 50 {
		t.Errorf("evals: %d", len(tu.History.Evals))
	}
	for _, e := range tu.History.Evals {
		if e.Point[0] == 0 {
			t.Fatalf("constraint violated: %v", e.Point)
		}
	}
}

func TestHillClimbConverges(t *testing.T) {
	s := testSpace()
	hc := &HillClimb{Budget: 200, Restarts: 4, Rng: simhpc.NewRNG(3)}
	tu := NewTuner(s, hc, testObjective)
	best, m, err := tu.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Cost > 1.0 {
		t.Errorf("hill climb best %v at %s", m.Cost, s.Describe(best))
	}
	if len(tu.History.Evals) > 200 {
		t.Errorf("budget exceeded: %d", len(tu.History.Evals))
	}
}

func TestAnnealingConverges(t *testing.T) {
	s := testSpace()
	an := &Annealing{Budget: 300, T0: 1.0, Alpha: 0.97, Rng: simhpc.NewRNG(7)}
	tu := NewTuner(s, an, testObjective)
	_, m, err := tu.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Cost > 2.0 {
		t.Errorf("annealing best %v", m.Cost)
	}
}

func TestUCBFocusesOnGoodArms(t *testing.T) {
	// Small space so the bandit can sweep all arms.
	s := NewSpace(IntKnob("x", 0, 4, 1), IntKnob("y", 0, 4, 1))
	rng := simhpc.NewRNG(11)
	noisy := func(cfg Config) Measurement {
		d := math.Abs(cfg["x"]-2) + math.Abs(cfg["y"]-2)
		return Measurement{Cost: d + rng.Uniform(-0.2, 0.2)}
	}
	ucb := &UCB{Budget: 300, C: 0.5}
	tu := NewTuner(s, ucb, noisy)
	best, _, err := tu.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if best.Key() != "2,2" {
		// Allow one step of noise-induced error.
		d := math.Abs(float64(best[0])-2) + math.Abs(float64(best[1])-2)
		if d > 1 {
			t.Errorf("UCB best %v, want near (2,2)", best)
		}
	}
	// Pulls concentrate: the optimum arm is played far more than corners.
	plays := map[string]int{}
	for _, e := range tu.History.Evals {
		plays[e.Point.Key()]++
	}
	if plays["2,2"] <= plays["0,0"] {
		t.Errorf("UCB did not focus: center=%d corner=%d", plays["2,2"], plays["0,0"])
	}
}

// TestGreyBoxConvergesFaster reproduces the §IV grey-box argument: code
// annotations shrink the space, so the same strategy converges in fewer
// evaluations than on the raw black-box space.
func TestGreyBoxConvergesFaster(t *testing.T) {
	mk := func() *Space {
		return NewSpace(
			IntKnob("block", 1, 16, 1),
			IntKnob("threads", 1, 32, 1),
			VariantKnob("variant", "scalar", "vectorized", "unrolled", "tiled"),
		)
	}
	obj := func(cfg Config) Measurement {
		b := cfg["block"] - 8
		th := cfg["threads"] - 16
		v := 0.0
		if cfg["variant"] != 1 {
			v = 10
		}
		return Measurement{Cost: b*b + th*th/4 + v}
	}
	runOnce := func(space *Space, seed uint64) int {
		tu := NewTuner(space, &RandomSearch{Budget: 400, Rng: simhpc.NewRNG(seed)}, obj)
		if _, _, err := tu.Run(0); err != nil {
			t.Fatal(err)
		}
		return tu.History.EvalsToWithin(0.05)
	}
	var blackSum, greySum int
	for seed := uint64(1); seed <= 5; seed++ {
		blackSum += runOnce(mk(), seed)
		grey := mk()
		// Annotations: domain expert knows threads is a power of two and
		// the vectorized variant dominates.
		grey.Constrain(func(p Point) bool {
			th := int(grey.Knobs[1].Level(p[1]))
			return th&(th-1) == 0
		}).Constrain(func(p Point) bool { return p[2] == 1 })
		greySum += runOnce(grey, seed)
	}
	if greySum >= blackSum {
		t.Errorf("grey-box (%d evals avg) should converge faster than black-box (%d)",
			greySum/5, blackSum/5)
	}
}

func TestTunerOnlineLearningAndRetune(t *testing.T) {
	s := NewSpace(VariantKnob("path", "A", "B"))
	phase := 0
	obj := func(cfg Config) Measurement {
		// Phase 0: A (idx 0) is better. Phase 1: B is better.
		if cfg["path"] == float64(phase) {
			return Measurement{Cost: 1}
		}
		return Measurement{Cost: 2}
	}
	tu := NewTuner(s, &Exhaustive{}, obj)
	best, _, err := tu.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if best.Key() != "0" {
		t.Fatalf("phase-0 best: %v", best)
	}
	// Conditions drift: the deployed config A degrades. Observe feeds the
	// drift into the knowledge base until B's estimate wins.
	phase = 1
	for i := 0; i < 20; i++ {
		tu.Observe(3.0) // live cost of A now worse than B's recorded 2.0
	}
	if !tu.Retune(0.1) {
		t.Fatal("retune should fire after drift")
	}
	if tu.Applied().Key() != "1" {
		t.Errorf("applied after retune: %v", tu.Applied())
	}
	// No further switch when already on the best.
	if tu.Retune(0.1) {
		t.Error("retune should be stable")
	}
}

func TestHistoryEvalsToWithin(t *testing.T) {
	s := NewSpace(IntKnob("x", 0, 9, 1))
	h := NewHistory(s)
	costs := []float64{10, 8, 8, 3, 3, 2.9}
	for i, c := range costs {
		h.Record(Point{i}, Measurement{Cost: c})
	}
	// Final best 2.9; within 5% → ≤3.045, first reached at eval 4 (cost 3).
	if got := h.EvalsToWithin(0.05); got != 4 {
		t.Errorf("EvalsToWithin = %d, want 4", got)
	}
	best, ok := h.Best()
	if !ok || best.M.Cost != 2.9 {
		t.Errorf("best: %+v", best)
	}
}

func TestParseKeyRoundTrip(t *testing.T) {
	f := func(a, b, c uint8) bool {
		p := Point{int(a), int(b), int(c)}
		return parseKey(p.Key()).Key() == p.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEmptyStrategyErrors(t *testing.T) {
	s := NewSpace(IntKnob("x", 0, 1, 1))
	s.Constrain(func(Point) bool { return false }) // empty space
	tu := NewTuner(s, &Exhaustive{}, func(Config) Measurement { return Measurement{} })
	if _, _, err := tu.Run(0); err == nil {
		t.Error("empty space should error")
	}
}
