package autotune

import "sort"

// The paper frames autotuning as navigating performance/energy
// trade-offs ("identify the best compiler optimizations ... by
// considering possible trade-offs", §III-B; operating points trading
// time for energy, §V). This file adds the multi-objective view: each
// configuration is measured on several objectives and the tuner exposes
// the Pareto-optimal frontier, from which an SLA picks the operating
// point — the mARGOt-style operating-point list.

// MultiMeasurement is one observation across named objectives (all
// minimized; negate maximization metrics before recording).
type MultiMeasurement struct {
	Objectives map[string]float64
}

// MultiEval pairs a point with its multi-objective measurement.
type MultiEval struct {
	Point Point
	M     MultiMeasurement
}

// Dominates reports whether a is no worse than b on every objective and
// strictly better on at least one (both must cover the same objectives;
// missing keys count as +inf for the side missing them).
func Dominates(a, b MultiMeasurement) bool {
	strictlyBetter := false
	for k, av := range a.Objectives {
		bv, ok := b.Objectives[k]
		if !ok {
			strictlyBetter = true
			continue
		}
		if av > bv {
			return false
		}
		if av < bv {
			strictlyBetter = true
		}
	}
	for k := range b.Objectives {
		if _, ok := a.Objectives[k]; !ok {
			return false // a missing an objective b has: not comparable in a's favor
		}
	}
	return strictlyBetter
}

// ParetoFront maintains the set of non-dominated evaluations.
type ParetoFront struct {
	evals []MultiEval
}

// Add inserts an evaluation, dropping any now-dominated members, and
// reports whether the new evaluation survived (is non-dominated).
func (pf *ParetoFront) Add(p Point, m MultiMeasurement) bool {
	for _, e := range pf.evals {
		if Dominates(e.M, m) {
			return false
		}
	}
	kept := pf.evals[:0]
	for _, e := range pf.evals {
		if !Dominates(m, e.M) {
			kept = append(kept, e)
		}
	}
	pf.evals = append(kept, MultiEval{Point: p.Clone(), M: m})
	return true
}

// Size returns the frontier cardinality.
func (pf *ParetoFront) Size() int { return len(pf.evals) }

// Members returns the frontier sorted by the given objective ascending.
func (pf *ParetoFront) Members(sortBy string) []MultiEval {
	out := append([]MultiEval(nil), pf.evals...)
	sort.Slice(out, func(i, j int) bool {
		return out[i].M.Objectives[sortBy] < out[j].M.Objectives[sortBy]
	})
	return out
}

// PickUnder returns the frontier member minimizing objective `minimize`
// among those whose `bounded` objective is at most limit — the SLA-driven
// operating-point selection (e.g. min energy s.t. time ≤ deadline).
// ok=false when no member satisfies the bound.
func (pf *ParetoFront) PickUnder(minimize, bounded string, limit float64) (MultiEval, bool) {
	var best MultiEval
	found := false
	for _, e := range pf.evals {
		if e.M.Objectives[bounded] > limit {
			continue
		}
		if !found || e.M.Objectives[minimize] < best.M.Objectives[minimize] {
			best, found = e, true
		}
	}
	return best, found
}

// MultiObjective evaluates a configuration on several objectives.
type MultiObjective func(Config) MultiMeasurement

// ExploreFront enumerates the (annotated) space, evaluates every point,
// and returns the Pareto frontier. Intended for the modest spaces that
// grey-box annotations produce; larger spaces can feed Add from any
// search strategy instead.
func ExploreFront(space *Space, obj MultiObjective) *ParetoFront {
	pf := &ParetoFront{}
	space.Enumerate(func(p Point) bool {
		pf.Add(p, obj(space.At(p)))
		return true
	})
	return pf
}
