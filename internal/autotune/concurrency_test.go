package autotune

import (
	"sync"
	"testing"
)

// TestTunerConcurrentObserveRetune exercises the production-side tuner
// API from many goroutines (run under -race in CI): serving goroutines
// Observe live costs while a control loop calls Retune and KnownBest.
func TestTunerConcurrentObserveRetune(t *testing.T) {
	space := NewSpace(VariantKnob("variant", "A", "B"))
	cost := func(cfg Config) Measurement {
		if cfg["variant"] == 0 {
			return Measurement{Cost: 1}
		}
		return Measurement{Cost: 2}
	}
	tu := NewTuner(space, &Exhaustive{}, cost)
	if _, _, err := tu.Run(0); err != nil {
		t.Fatal(err)
	}
	if tu.Applied().Key() != "0" {
		t.Fatalf("applied %v", tu.Applied())
	}

	var wg sync.WaitGroup
	for p := 0; p < 8; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Variant A degrades in production: B's stale estimate wins.
			for i := 0; i < 200; i++ {
				tu.Observe(5)
			}
		}()
	}
	retuned := false
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			if tu.Retune(0.05) {
				retuned = true
			}
			tu.KnownBest()
		}
	}()
	wg.Wait()
	if !tu.Retune(0.05) && !retuned {
		t.Error("tuner never retuned away from the degraded variant")
	}
	if tu.Applied().Key() != "1" {
		t.Errorf("applied after drift: %v", tu.Applied())
	}
	if est, ok := tu.Knowledge(Point{0}); !ok || est < 2 {
		t.Errorf("degraded estimate: %v %v", est, ok)
	}
}
