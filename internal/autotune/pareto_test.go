package autotune

import (
	"testing"
	"testing/quick"
)

func mm(time, energy float64) MultiMeasurement {
	return MultiMeasurement{Objectives: map[string]float64{"time": time, "energy": energy}}
}

func TestDominates(t *testing.T) {
	cases := []struct {
		a, b MultiMeasurement
		want bool
	}{
		{mm(1, 1), mm(2, 2), true},
		{mm(1, 2), mm(2, 1), false},
		{mm(2, 1), mm(1, 2), false},
		{mm(1, 1), mm(1, 1), false}, // equal: no strict improvement
		{mm(1, 1), mm(1, 2), true},
	}
	for i, c := range cases {
		if got := Dominates(c.a, c.b); got != c.want {
			t.Errorf("case %d: Dominates=%v, want %v", i, got, c.want)
		}
	}
}

func TestParetoFrontMaintenance(t *testing.T) {
	pf := &ParetoFront{}
	if !pf.Add(Point{0}, mm(5, 5)) {
		t.Error("first add must survive")
	}
	if pf.Add(Point{1}, mm(6, 6)) {
		t.Error("dominated add must be rejected")
	}
	if !pf.Add(Point{2}, mm(3, 7)) || !pf.Add(Point{3}, mm(7, 3)) {
		t.Error("trade-off points must survive")
	}
	if pf.Size() != 3 {
		t.Fatalf("size %d, want 3", pf.Size())
	}
	// A dominating point evicts what it dominates.
	if !pf.Add(Point{4}, mm(2, 4)) {
		t.Error("dominating add must survive")
	}
	// (2,4) dominates (3,7)? 2<3 and 4<7 → yes, and (5,5)? 2<5,4<5 → yes.
	if pf.Size() != 2 { // survivors: (2,4) and (7,3)
		t.Fatalf("size after eviction %d, want 2", pf.Size())
	}
	members := pf.Members("time")
	if members[0].M.Objectives["time"] != 2 || members[1].M.Objectives["time"] != 7 {
		t.Errorf("members: %+v", members)
	}
}

func TestPickUnder(t *testing.T) {
	pf := &ParetoFront{}
	pf.Add(Point{0}, mm(1, 10)) // fast, hungry
	pf.Add(Point{1}, mm(4, 4))
	pf.Add(Point{2}, mm(9, 1)) // slow, frugal
	// Min energy subject to time <= 5: picks (4,4).
	e, ok := pf.PickUnder("energy", "time", 5)
	if !ok || e.M.Objectives["energy"] != 4 {
		t.Errorf("PickUnder: %+v ok=%v", e, ok)
	}
	// Infeasible bound.
	if _, ok := pf.PickUnder("energy", "time", 0.5); ok {
		t.Error("infeasible bound should fail")
	}
	// Loose bound: min energy overall.
	e, ok = pf.PickUnder("energy", "time", 100)
	if !ok || e.M.Objectives["energy"] != 1 {
		t.Errorf("loose bound: %+v", e)
	}
}

// Property: no frontier member dominates another.
func TestFrontInternallyNonDominatedProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		pf := &ParetoFront{}
		for i := 0; i+1 < len(raw); i += 2 {
			pf.Add(Point{i}, mm(float64(raw[i]%100), float64(raw[i+1]%100)))
		}
		ms := pf.Members("time")
		for i := range ms {
			for j := range ms {
				if i != j && Dominates(ms[i].M, ms[j].M) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestExploreFrontDVFSLike mimics the RTRM operating-point list: a
// frequency knob trading time for energy produces a full-ladder
// frontier, and the SLA picks interior points.
func TestExploreFrontDVFSLike(t *testing.T) {
	space := NewSpace(IntKnob("pstate", 0, 7, 1))
	obj := func(cfg Config) MultiMeasurement {
		f := 1.2 + 0.2*cfg["pstate"] // GHz
		time := 100 / f
		energy := (30 + 25*f*f) * time / 100
		return mm(time, energy)
	}
	pf := ExploreFront(space, obj)
	if pf.Size() < 2 {
		t.Fatalf("frontier size %d; DVFS ladder should expose a trade-off", pf.Size())
	}
	fast, ok := pf.PickUnder("energy", "time", 45)
	if !ok {
		t.Fatal("no point meets time<=45")
	}
	frugal, ok := pf.PickUnder("energy", "time", 100)
	if !ok {
		t.Fatal("no point meets time<=100")
	}
	if fast.M.Objectives["energy"] <= frugal.M.Objectives["energy"] {
		t.Errorf("tighter deadline should cost energy: %v vs %v",
			fast.M.Objectives["energy"], frugal.M.Objectives["energy"])
	}
}
