// Package autotune implements the ANTAREX application autotuning
// framework of §IV — a grey-box autotuner in the mARGOt tradition:
//
//   - software knobs (application parameters, code variants, precision)
//     span a discrete design space;
//   - grey-box annotations shrink the search space using code knowledge
//     ("it can rely on code annotations to shrink the search space by
//     focusing the autotuner on a certain sub-space");
//   - several search strategies (exhaustive, random, hill-climbing,
//     simulated annealing, UCB bandit) share one ask-tell interface;
//   - an online knowledge base updated by continuous learning supports
//     re-tuning "according to the most recent operating conditions".
package autotune

import (
	"fmt"
	"strings"
)

// Knob is one tunable software control: a named, ordered set of discrete
// values. Values carry float64 payloads; Labels (optional) name code
// variants or categorical settings.
type Knob struct {
	Name   string
	Values []float64
	Labels []string // optional, parallel to Values
}

// Level returns the value at index i.
func (k *Knob) Level(i int) float64 { return k.Values[i] }

// Label returns the label at index i (or the value rendered).
func (k *Knob) Label(i int) string {
	if i < len(k.Labels) {
		return k.Labels[i]
	}
	return fmt.Sprintf("%g", k.Values[i])
}

// Space is a discrete design space: the cartesian product of knob
// levels, optionally filtered by constraints (the grey-box annotations).
type Space struct {
	Knobs       []Knob
	constraints []func(Point) bool
}

// NewSpace builds a space over the given knobs.
func NewSpace(knobs ...Knob) *Space { return &Space{Knobs: knobs} }

// Point is one configuration: a level index per knob.
type Point []int

// Key renders a point as a stable map key.
func (p Point) Key() string {
	parts := make([]string, len(p))
	for i, v := range p {
		parts[i] = fmt.Sprintf("%d", v)
	}
	return strings.Join(parts, ",")
}

// Clone copies the point.
func (p Point) Clone() Point { return append(Point(nil), p...) }

// Config resolves a point into named knob values.
type Config map[string]float64

// At resolves point p into a Config.
func (s *Space) At(p Point) Config {
	cfg := make(Config, len(s.Knobs))
	for i, k := range s.Knobs {
		cfg[k.Name] = k.Level(p[i])
	}
	return cfg
}

// Describe renders a point with knob names and labels.
func (s *Space) Describe(p Point) string {
	parts := make([]string, len(s.Knobs))
	for i, k := range s.Knobs {
		parts[i] = fmt.Sprintf("%s=%s", k.Name, k.Label(p[i]))
	}
	return strings.Join(parts, " ")
}

// Constrain adds a grey-box annotation: only points satisfying pred are
// part of the space. Returns the space for chaining.
func (s *Space) Constrain(pred func(Point) bool) *Space {
	s.constraints = append(s.constraints, pred)
	return s
}

// Valid reports whether p satisfies all annotations.
func (s *Space) Valid(p Point) bool {
	for _, c := range s.constraints {
		if !c(p) {
			return false
		}
	}
	return true
}

// RawSize is the unconstrained cartesian size.
func (s *Space) RawSize() int {
	n := 1
	for _, k := range s.Knobs {
		n *= len(k.Values)
	}
	return n
}

// Size counts valid points (enumerates; intended for modest spaces).
func (s *Space) Size() int {
	n := 0
	s.Enumerate(func(Point) bool { n++; return true })
	return n
}

// Enumerate visits every valid point in lexicographic order; the visitor
// returns false to stop early.
func (s *Space) Enumerate(visit func(Point) bool) {
	p := make(Point, len(s.Knobs))
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(s.Knobs) {
			if s.Valid(p) {
				return visit(p.Clone())
			}
			return true
		}
		for v := 0; v < len(s.Knobs[i].Values); v++ {
			p[i] = v
			if !rec(i + 1) {
				return false
			}
		}
		return true
	}
	rec(0)
}

// Neighbors returns the valid one-step neighbors of p (±1 on a single
// knob) — the move set of local search strategies.
func (s *Space) Neighbors(p Point) []Point {
	var out []Point
	for i := range p {
		for _, d := range []int{-1, 1} {
			v := p[i] + d
			if v < 0 || v >= len(s.Knobs[i].Values) {
				continue
			}
			q := p.Clone()
			q[i] = v
			if s.Valid(q) {
				out = append(out, q)
			}
		}
	}
	return out
}

// Center returns the mid-level point (clamped into validity by scanning
// forward when constrained).
func (s *Space) Center() Point {
	p := make(Point, len(s.Knobs))
	for i, k := range s.Knobs {
		p[i] = len(k.Values) / 2
	}
	if s.Valid(p) {
		return p
	}
	var first Point
	s.Enumerate(func(q Point) bool { first = q; return false })
	return first
}

// IntKnob builds a knob over the integers [lo, hi] with the given step.
func IntKnob(name string, lo, hi, step int) Knob {
	var vals []float64
	for v := lo; v <= hi; v += step {
		vals = append(vals, float64(v))
	}
	return Knob{Name: name, Values: vals}
}

// VariantKnob builds a categorical knob over labeled code variants.
func VariantKnob(name string, labels ...string) Knob {
	vals := make([]float64, len(labels))
	for i := range labels {
		vals[i] = float64(i)
	}
	return Knob{Name: name, Values: vals, Labels: labels}
}
