// Package weaver implements the "S2S Compiler and Weaver" box of the
// ANTAREX tool flow (Fig. 1): it binds the DSL interpreter's join-point
// model to miniC source, carries out weaving actions (code insertion,
// loop unrolling, function specialization, variant registration), and
// arms dynamic applies as runtime hooks on the IR virtual machine.
//
// The weaver realizes the paper's separation of concerns: the miniC
// program is the functional description; aspects are the extra-functional
// strategies; Weave merges them into the "intended program".
package weaver

import (
	"fmt"

	"repro/internal/dsl"
	"repro/internal/dsl/interp"
	"repro/internal/ir"
	"repro/internal/srcmodel"
)

// Weaver weaves DSL aspects into a miniC program.
type Weaver struct {
	Prog *srcmodel.Program

	// Dynamics holds dynamic applies registered while running aspects;
	// BindRuntime arms them on a VM.
	Dynamics []*interp.DynamicApply

	// PendingVersions collects AddVersion requests made before a runtime
	// binding exists (static weaving of Fig. 4's variant registration).
	PendingVersions []VersionRequest

	// split/vm are set by BindRuntime.
	split *ir.SplitCompiler
	vm    *ir.VM

	// prepared records PrepareSpecialize declarations: function → param.
	prepared map[string]string
}

// VersionRequest is a recorded AddVersion(spCall, func, value) builtin
// call awaiting a runtime binding.
type VersionRequest struct {
	Generic  string // generic function name
	Param    string // specialized-away parameter
	Target   string // specialized function name
	Match    float64
	ArgIndex int
}

// New returns a weaver over prog. Loop/if bodies are normalized to blocks
// so every join point has a replacement context.
func New(prog *srcmodel.Program) *Weaver {
	srcmodel.NormalizeBodies(prog)
	return &Weaver{Prog: prog, prepared: make(map[string]string)}
}

// Weave parses the aspect source and runs the named aspect with args.
// It returns the aspect's outputs.
func (w *Weaver) Weave(aspectSrc, aspectName string, args ...interp.Value) (interp.Value, error) {
	file, err := dsl.Parse(aspectSrc)
	if err != nil {
		return interp.Null(), err
	}
	return w.WeaveFile(file, aspectName, args...)
}

// WeaveFile runs the named aspect from an already-parsed DSL file.
func (w *Weaver) WeaveFile(file *dsl.File, aspectName string, args ...interp.Value) (interp.Value, error) {
	in := interp.New(file, w)
	return in.Run(aspectName, args...)
}

// Roots implements interp.Actions: top-level join points by kind.
func (w *Weaver) Roots(kind string) []interp.JoinPoint {
	switch kind {
	case "function":
		jps := make([]interp.JoinPoint, 0, len(w.Prog.Funcs))
		for _, f := range w.Prog.Funcs {
			jps = append(jps, &FunctionJP{w: w, Fn: f})
		}
		return jps
	case "fCall", "call":
		var jps []interp.JoinPoint
		for _, f := range w.Prog.Funcs {
			for _, ci := range srcmodel.Calls(f, "") {
				jps = append(jps, &CallJP{w: w, CI: ci})
			}
		}
		return jps
	case "loop":
		var jps []interp.JoinPoint
		for _, f := range w.Prog.Funcs {
			for _, li := range srcmodel.Loops(f) {
				jps = append(jps, &LoopJP{w: w, Fn: f, Loop: li.Stmt})
			}
		}
		return jps
	}
	return nil
}

// RegisterDynamic implements interp.Actions.
func (w *Weaver) RegisterDynamic(d *interp.DynamicApply) error {
	w.Dynamics = append(w.Dynamics, d)
	return nil
}

// Source renders the current (woven) program text.
func (w *Weaver) Source() string { return srcmodel.Print(w.Prog) }

// findStmtByPred locates the block and index of the first statement in f
// satisfying pred, searching the current AST (robust against earlier
// insertions shifting indices).
func findStmtByPred(f *srcmodel.FuncDecl, pred func(srcmodel.Stmt) bool) (*srcmodel.BlockStmt, int) {
	var find func(b *srcmodel.BlockStmt) (*srcmodel.BlockStmt, int)
	find = func(b *srcmodel.BlockStmt) (*srcmodel.BlockStmt, int) {
		for i, s := range b.Stmts {
			if pred(s) {
				return b, i
			}
			for _, nested := range nestedBlocks(s) {
				if blk, idx := find(nested); blk != nil {
					return blk, idx
				}
			}
		}
		return nil, -1
	}
	return find(f.Body)
}

func nestedBlocks(s srcmodel.Stmt) []*srcmodel.BlockStmt {
	var out []*srcmodel.BlockStmt
	add := func(st srcmodel.Stmt) {
		if b, ok := st.(*srcmodel.BlockStmt); ok {
			out = append(out, b)
		}
	}
	switch x := s.(type) {
	case *srcmodel.BlockStmt:
		out = append(out, x)
	case *srcmodel.IfStmt:
		add(x.Then)
		add(x.Else)
	case *srcmodel.ForStmt:
		add(x.Body)
	case *srcmodel.WhileStmt:
		add(x.Body)
	}
	return out
}

// stmtContainsExpr reports whether statement s contains the exact
// expression node e (pointer identity).
func stmtContainsExpr(s srcmodel.Stmt, target srcmodel.Expr) bool {
	found := false
	var visitExpr func(e srcmodel.Expr)
	visitExpr = func(e srcmodel.Expr) {
		if e == nil || found {
			return
		}
		if e == target {
			found = true
			return
		}
		switch x := e.(type) {
		case *srcmodel.BinaryExpr:
			visitExpr(x.L)
			visitExpr(x.R)
		case *srcmodel.UnaryExpr:
			visitExpr(x.X)
		case *srcmodel.AssignExpr:
			visitExpr(x.LHS)
			visitExpr(x.RHS)
		case *srcmodel.IncDecExpr:
			visitExpr(x.X)
		case *srcmodel.CallExpr:
			for _, a := range x.Args {
				visitExpr(a)
			}
		case *srcmodel.IndexExpr:
			visitExpr(x.Array)
			visitExpr(x.Index)
		}
	}
	switch x := s.(type) {
	case *srcmodel.VarDecl:
		visitExpr(x.Init)
	case *srcmodel.ExprStmt:
		visitExpr(x.X)
	case *srcmodel.ReturnStmt:
		visitExpr(x.Value)
	case *srcmodel.IfStmt:
		visitExpr(x.Cond)
	case *srcmodel.ForStmt:
		if x.Init != nil {
			if stmtContainsExpr(x.Init, target) {
				return true
			}
		}
		visitExpr(x.Cond)
		if x.Post != nil && !found {
			if stmtContainsExpr(x.Post, target) {
				return true
			}
		}
	case *srcmodel.WhileStmt:
		visitExpr(x.Cond)
	}
	return found
}

// insertRelative splices stmts into f before/after the statement
// identified by pred.
func insertRelative(f *srcmodel.FuncDecl, pred func(srcmodel.Stmt) bool, where string, stmts []srcmodel.Stmt) error {
	blk, idx := findStmtByPred(f, pred)
	if blk == nil {
		return fmt.Errorf("weaver: join point statement not found in %s (already removed?)", f.Name)
	}
	at := idx
	if where == "after" {
		at = idx + 1
	}
	out := make([]srcmodel.Stmt, 0, len(blk.Stmts)+len(stmts))
	out = append(out, blk.Stmts[:at]...)
	out = append(out, stmts...)
	out = append(out, blk.Stmts[at:]...)
	blk.Stmts = out
	return nil
}
