package weaver

import (
	"strings"
	"testing"

	"repro/internal/ir"
)

// TestSelectChainFromRoots covers `select function{'f'}.loop{...}`:
// a two-part chain rooted at the program rather than an input variable.
func TestSelectChainFromRoots(t *testing.T) {
	src := `
void a(double* p) { for (int i = 0; i < 4; i++) { p[i] = 0.0; } }
void b(double* p) { for (int j = 0; j < 4; j++) { p[j] = 1.0; } }
`
	aspect := `
aspectdef OnlyA
	select function{'a'}.loop{type=='for'} end
	apply
		do LoopUnroll('full');
	end
end
`
	w := newWeaver(t, src)
	if _, err := w.Weave(aspect, "OnlyA"); err != nil {
		t.Fatalf("Weave: %v", err)
	}
	out := w.Source()
	if strings.Contains(out, "i < 4") {
		t.Errorf("a's loop should be unrolled:\n%s", out)
	}
	if !strings.Contains(out, "j < 4") {
		t.Errorf("b's loop must be untouched:\n%s", out)
	}
}

// TestMultipleSelectApplyPairs: each apply binds to its nearest
// preceding select, as in multi-concern aspects.
func TestMultipleSelectApplyPairs(t *testing.T) {
	src := `
void f(double* p) {
    step1(p);
    step2(p);
}
`
	aspect := `
aspectdef TwoConcerns
	select fCall{'step1'} end
	apply
		insert before %{ pre1(); }%;
	end
	select fCall{'step2'} end
	apply
		insert after %{ post2(); }%;
	end
end
`
	w := newWeaver(t, src)
	if _, err := w.Weave(aspect, "TwoConcerns"); err != nil {
		t.Fatalf("Weave: %v", err)
	}
	out := w.Source()
	i1 := strings.Index(out, "pre1()")
	is1 := strings.Index(out, "step1(p)")
	is2 := strings.Index(out, "step2(p)")
	i2 := strings.Index(out, "post2()")
	if !(i1 >= 0 && i1 < is1 && is2 < i2) {
		t.Errorf("insert placement wrong:\n%s", out)
	}
}

// TestLoopShorthandByName covers loop{'for'} / loop{'while'} name
// matching.
func TestLoopShorthandByName(t *testing.T) {
	src := `
void f(int n) {
    for (int i = 0; i < 4; i++) { g(i); }
    while (n > 0) { n--; }
}
`
	aspect := `
aspectdef MarkWhile
	select loop{'while'} end
	apply
		insert before %{ mark(); }%;
	end
end
`
	w := newWeaver(t, src)
	if _, err := w.Weave(aspect, "MarkWhile"); err != nil {
		t.Fatalf("Weave: %v", err)
	}
	out := w.Source()
	iMark := strings.Index(out, "mark()")
	iWhile := strings.Index(out, "while")
	iFor := strings.Index(out, "for ")
	if iMark < 0 || iMark > iWhile || iMark < iFor {
		t.Errorf("mark() should sit between the for and the while:\n%s", out)
	}
}

// TestLoopUnrollByAction covers the partial-unroll weaver action through
// the DSL, including semantics preservation at runtime.
func TestLoopUnrollByAction(t *testing.T) {
	src := `
double f(double* a) {
    double s = 0.0;
    for (int i = 0; i < 16; i++) {
        s = s + a[i];
    }
    return s;
}
`
	aspect := `
aspectdef Partial
	select loop{type=='for'} end
	apply
		do LoopUnrollBy(4);
	end
end
`
	w := newWeaver(t, src)
	if _, err := w.Weave(aspect, "Partial"); err != nil {
		t.Fatalf("Weave: %v", err)
	}
	out := w.Source()
	if !strings.Contains(out, "i += 4") {
		t.Fatalf("step not widened:\n%s", out)
	}
	sc, vm, err := w.CompileRuntime()
	if err != nil {
		t.Fatal(err)
	}
	_ = sc
	buf := make([]float64, 16)
	var want float64
	for i := range buf {
		buf[i] = float64(i)
		want += float64(i)
	}
	got, err := vm.Call("f", ir.PtrValue(buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.Num != want {
		t.Errorf("partially unrolled f = %v, want %v", got.Num, want)
	}
}

// TestAspectComposition: one aspect calls another user aspect which
// performs the actual weaving (the Fig. 4 pattern, statically).
func TestAspectComposition(t *testing.T) {
	src := `void f(double* a) { for (int i = 0; i < 4; i++) { a[i] = 0.0; } }`
	aspects := `
aspectdef Inner
	input $func, threshold end
	select $func.loop{type=='for'} end
	apply
		do LoopUnroll('full');
	end
	condition $loop.numIter <= threshold end
end

aspectdef Outer
	select function{'f'} end
	apply
		call Inner($function, 8);
	end
end
`
	w := newWeaver(t, src)
	if _, err := w.Weave(aspects, "Outer"); err != nil {
		t.Fatalf("Weave: %v", err)
	}
	if strings.Contains(w.Source(), "for ") {
		t.Errorf("nested aspect did not unroll:\n%s", w.Source())
	}
}

// TestFunctionAttrsInConditions exercises function attributes in
// conditions ($function.numParams).
func TestFunctionAttrsInConditions(t *testing.T) {
	src := `
void one(int a) { g(a); }
void two(int a, int b) { g(a + b); }
`
	aspect := `
aspectdef MarkBinary
	select function end
	apply
		insert before %{ is_binary(); }%;
	end
	condition $function.numParams == 2 end
end
`
	w := newWeaver(t, src)
	if _, err := w.Weave(aspect, "MarkBinary"); err != nil {
		t.Fatalf("Weave: %v", err)
	}
	out := w.Source()
	if strings.Count(out, "is_binary()") != 1 {
		t.Errorf("exactly one function has two params:\n%s", out)
	}
	if strings.Index(out, "is_binary()") < strings.Index(out, "void two") {
		t.Errorf("marker should be inside two():\n%s", out)
	}
}

// TestArgValueAttr covers the static `value` attribute of argument join
// points (source text of the argument expression).
func TestArgValueAttr(t *testing.T) {
	src := `
void kernel(double* data, int size) { g(size); }
void main2(double* d) { kernel(d, 32 + 4); }
`
	aspect := `
aspectdef Inspect
	output expr end
	select fCall{'kernel'}.arg{'size'} end
	apply
		call r: Echo($arg.value);
	end
end
`
	w := newWeaver(t, src)
	// Provide Echo as a builtin via a tiny embedding check: Echo is not
	// defined, so the weave must fail loudly — covering the undefined-
	// callable path through a real weaver (not the fake).
	if _, err := w.Weave(aspect, "Inspect"); err == nil || !strings.Contains(err.Error(), "undefined aspect") {
		t.Errorf("expected undefined aspect error, got %v", err)
	}

	// Now check the attribute value directly through the join point API.
	w2 := newWeaver(t, src)
	var argJP *ArgJP
	for _, jp := range w2.Roots("fCall") {
		cj := jp.(*CallJP)
		if cj.Name() != "kernel" {
			continue
		}
		for _, a := range cj.Children("arg") {
			if a.Name() == "size" {
				argJP = a.(*ArgJP)
			}
		}
	}
	if argJP == nil {
		t.Fatal("size arg join point not found")
	}
	v, ok := argJP.Attr("value")
	if !ok || v.Str != "32 + 4" {
		t.Errorf("arg value attr: %v %v", v, ok)
	}
	if idx, ok := argJP.Attr("index"); !ok || idx.Num != 1 {
		t.Errorf("arg index attr: %v", idx)
	}
}
