package weaver

import (
	"strings"
	"testing"

	"repro/internal/dsl/interp"
	"repro/internal/ir"
	"repro/internal/srcmodel"
)

// Fig2Aspect, Fig3Aspect, Fig4Aspect are the paper's Figs. 2-4.
const Fig2Aspect = `
aspectdef ProfileArguments
	input funcName end
	select fCall end
	apply
		insert before %{profile_args('[[funcName]]',
			[[$fCall.location]],
			[[$fCall.argList]]);
		}%;
	end
	condition $fCall.name == funcName end
end
`

const Fig3Aspect = `
aspectdef UnrollInnermostLoops
	input $func, threshold end
	select $func.loop{type=='for'} end
	apply
		do LoopUnroll('full');
	end
	condition
		$loop.isInnermost && $loop.numIter <= threshold
	end
end
`

const Fig4Aspect = `
aspectdef SpecializeKernel
	input lowT, highT end

	call spCall: PrepareSpecialize('kernel','size');

	select fCall{'kernel'}.arg{'size'} end
	apply dynamic
		call spOut : Specialize($fCall, $arg.name,
			$arg.runtimeValue);
		call UnrollInnermostLoops(spOut.$func,
			$arg.runtimeValue);
		call AddVersion(spCall, spOut.$func,
			$arg.runtimeValue);
	end
	condition
		$arg.runtimeValue >= lowT &&
		$arg.runtimeValue <= highT
	end
end
`

const targetSrc = `
double kernel(double* data, int size) {
    double s = 0.0;
    for (int i = 0; i < size; i++) {
        s = s + data[i] * data[i];
    }
    return s;
}

double run(double* data, int size, int reps) {
    double acc = 0.0;
    for (int r = 0; r < reps; r++) {
        acc = acc + kernel(data, size);
    }
    return acc;
}
`

func newWeaver(t *testing.T, src string) *Weaver {
	t.Helper()
	prog, err := srcmodel.Parse("test.c", src)
	if err != nil {
		t.Fatalf("parse target: %v", err)
	}
	return New(prog)
}

func TestFig2ProfileArgumentsWeavesAndRuns(t *testing.T) {
	w := newWeaver(t, targetSrc)
	if _, err := w.Weave(Fig2Aspect, "ProfileArguments", interp.Str("kernel")); err != nil {
		t.Fatalf("Weave: %v", err)
	}
	out := w.Source()
	if !strings.Contains(out, `profile_args("kernel"`) {
		t.Fatalf("profiling call not woven:\n%s", out)
	}
	// The woven program still compiles and runs; the profiling extern
	// observes the call site's argument list.
	sc, vm, err := w.CompileRuntime()
	if err != nil {
		t.Fatalf("CompileRuntime: %v", err)
	}
	_ = sc
	type rec struct {
		fn, loc string
		args    []float64
	}
	var records []rec
	vm.RegisterExtern("profile_args", func(_ *ir.VM, args []ir.Value) (ir.Value, error) {
		r := rec{fn: args[0].Str, loc: args[1].Str}
		for _, a := range args[2:] {
			if a.Kind == ir.KindNum {
				r.args = append(r.args, a.Num)
			}
		}
		records = append(records, r)
		return ir.NumValue(0), nil
	})
	buf := []float64{1, 2, 3, 4}
	got, err := vm.Call("run", ir.PtrValue(buf), ir.NumValue(4), ir.NumValue(3))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if got.Num != 3*(1+4+9+16) {
		t.Errorf("run = %v, want 90", got.Num)
	}
	if len(records) != 3 {
		t.Fatalf("profile records: %d, want 3 (one per rep)", len(records))
	}
	if records[0].fn != "kernel" || !strings.Contains(records[0].loc, "test.c:") {
		t.Errorf("record: %+v", records[0])
	}
}

func TestFig3UnrollInnermostLoops(t *testing.T) {
	src := `
void init(double* a) {
    for (int i = 0; i < 64; i++) {
        for (int j = 0; j < 4; j++) {
            a[i * 4 + j] = 1.0;
        }
    }
}
`
	w := newWeaver(t, src)
	fn := w.Prog.Func("init")
	fnJP := interp.JP(&FunctionJP{w: w, Fn: fn})
	if _, err := w.Weave(Fig3Aspect, "UnrollInnermostLoops", fnJP, interp.Num(8)); err != nil {
		t.Fatalf("Weave: %v", err)
	}
	out := w.Source()
	// The j loop (4 <= 8) is unrolled; the i loop (64 > 8) stays.
	if strings.Contains(out, "j < 4") {
		t.Errorf("inner loop not unrolled:\n%s", out)
	}
	if !strings.Contains(out, "i < 64") {
		t.Errorf("outer loop should remain:\n%s", out)
	}
	for _, want := range []string{"a[(i * 4) + 0] = 1.0", "a[(i * 4) + 3] = 1.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing unrolled statement %q:\n%s", want, out)
		}
	}
	// Woven program still computes the right thing.
	sc, err := ir.NewSplitCompilerAST(w.Prog)
	if err != nil {
		t.Fatal(err)
	}
	vm := ir.NewVM(sc.Mod)
	buf := make([]float64, 256)
	if _, err := vm.Call("init", ir.PtrValue(buf)); err != nil {
		t.Fatal(err)
	}
	for i, v := range buf {
		if v != 1.0 {
			t.Fatalf("buf[%d] = %v after unrolled init", i, v)
		}
	}
}

func TestFig4DynamicSpecializeEndToEnd(t *testing.T) {
	w := newWeaver(t, targetSrc)
	// Weave both Fig. 3 (called by Fig. 4) and Fig. 4 from one file.
	if _, err := w.Weave(Fig3Aspect+Fig4Aspect, "SpecializeKernel",
		interp.Num(4), interp.Num(64)); err != nil {
		t.Fatalf("Weave: %v", err)
	}
	if len(w.Dynamics) != 1 {
		t.Fatalf("dynamics registered: %d", len(w.Dynamics))
	}
	sc, vm, err := w.CompileRuntime()
	if err != nil {
		t.Fatalf("CompileRuntime: %v", err)
	}
	buf := make([]float64, 16)
	for i := range buf {
		buf[i] = float64(i)
	}
	var want float64
	for _, v := range buf {
		want += v * v
	}
	// First call: hook fires, specializes kernel for size=16, registers
	// the variant.
	got, err := vm.Call("run", ir.PtrValue(buf), ir.NumValue(16), ir.NumValue(5))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if got.Num != 5*want {
		t.Errorf("run = %v, want %v", got.Num, 5*want)
	}
	spName := ir.SpecializedName("kernel", "size", 16)
	if w.Prog.Func(spName) == nil {
		t.Fatalf("specialized source function %q not created", spName)
	}
	if _, ok := sc.Mod.Funcs[spName]; !ok {
		t.Fatalf("specialized IR function %q not installed", spName)
	}
	vt := sc.Mod.Variants["kernel"]
	if vt == nil || len(vt.Entries) != 1 || vt.Entries[0].Match != 16 {
		t.Fatalf("variant table: %+v", vt)
	}
	if vt.Entries[0].Hits == 0 {
		t.Error("specialized variant never dispatched")
	}
	// The specialized body is unrolled: no loop remains.
	if loops := srcmodel.Loops(w.Prog.Func(spName)); len(loops) != 0 {
		t.Errorf("specialized function still has %d loops", len(loops))
	}

	// Out-of-range size (100 > highT=64): no new specialization.
	big := make([]float64, 100)
	if _, err := vm.Call("run", ir.PtrValue(big), ir.NumValue(100), ir.NumValue(2)); err != nil {
		t.Fatal(err)
	}
	if len(vt.Entries) != 1 {
		t.Errorf("out-of-range size was specialized: %+v", vt.Entries)
	}

	// Specialized execution is cheaper than generic for the same work.
	vmGeneric := ir.NewVM(func() *ir.Module {
		prog, _ := srcmodel.Parse("g.c", targetSrc)
		srcmodel.NormalizeBodies(prog)
		m, _ := ir.Compile(prog)
		return m
	}())
	if _, err := vmGeneric.Call("run", ir.PtrValue(buf), ir.NumValue(16), ir.NumValue(50)); err != nil {
		t.Fatal(err)
	}
	vmSpec := ir.NewVM(sc.Mod)
	if _, err := vmSpec.Call("run", ir.PtrValue(buf), ir.NumValue(16), ir.NumValue(50)); err != nil {
		t.Fatal(err)
	}
	if vmSpec.Cycles >= vmGeneric.Cycles {
		t.Errorf("specialized run (%d cycles) not cheaper than generic (%d)", vmSpec.Cycles, vmGeneric.Cycles)
	}
}

func TestInsertAfterAndAround(t *testing.T) {
	src := `
void work(double* a) {
    step(a);
}
`
	w := newWeaver(t, src)
	aspect := `
aspectdef Wrap
	select fCall{'step'} end
	apply
		insert around %{
			timer_start();
			proceed();
			timer_stop();
		}%;
		insert after %{ flush(); }%;
	end
end
`
	if _, err := w.Weave(aspect, "Wrap"); err != nil {
		t.Fatalf("Weave: %v", err)
	}
	out := w.Source()
	iStart := strings.Index(out, "timer_start")
	iStep := strings.Index(out, "step(a)")
	iStop := strings.Index(out, "timer_stop")
	iFlush := strings.Index(out, "flush()")
	if iStart < 0 || iStep < 0 || iStop < 0 || iFlush < 0 {
		t.Fatalf("woven output missing pieces:\n%s", out)
	}
	if !(iStart < iStep && iStep < iStop) {
		t.Errorf("around ordering wrong:\n%s", out)
	}
	// "after" anchors after the statement containing the call, which now
	// sits inside the around block.
	if iFlush < iStep {
		t.Errorf("after-insert should follow the call:\n%s", out)
	}
}

func TestInsertIntoFunctionPrologue(t *testing.T) {
	w := newWeaver(t, `int f(int x) { return x + 1; }`)
	aspect := `
aspectdef Prologue
	select function{'f'} end
	apply
		insert before %{ log_enter('enter:f'); }%;
	end
end
`
	if _, err := w.Weave(aspect, "Prologue"); err != nil {
		t.Fatalf("Weave: %v", err)
	}
	out := w.Source()
	if !strings.Contains(out, `log_enter("enter:f")`) {
		t.Errorf("prologue not woven:\n%s", out)
	}
	if strings.Index(out, "log_enter") > strings.Index(out, "return") {
		t.Errorf("prologue after return:\n%s", out)
	}
}

func TestWeaveErrors(t *testing.T) {
	w := newWeaver(t, targetSrc)
	cases := []struct {
		name   string
		aspect string
		want   string
	}{
		{"bad template", `
aspectdef A
	select fCall end
	apply insert before %{ not valid c ((( }%; end
end`, "does not parse"},
		{"unroll on call", `
aspectdef A
	select fCall end
	apply do LoopUnroll('full'); end
end`, "applies to loops"},
		{"unknown action", `
aspectdef A
	select fCall end
	apply do Nope(); end
end`, "unknown action"},
		{"prepare unknown fn", `
aspectdef A
	call PrepareSpecialize('nosuch', 'x');
end`, "no function"},
		{"prepare unknown param", `
aspectdef A
	call PrepareSpecialize('kernel', 'nosuch');
end`, "no parameter"},
		{"around without proceed", `
aspectdef A
	select fCall{'kernel'} end
	apply insert around %{ x = 1; }%; end
end`, "proceed"},
	}
	for _, c := range cases {
		w := newWeaver(t, targetSrc)
		_, err := w.Weave(c.aspect, "A")
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.want)
		}
	}
	_ = w
}

func TestLoopUnrollThresholdForm(t *testing.T) {
	src := `
void f(double* a) {
    for (int i = 0; i < 100; i++) { a[i] = 0.0; }
    for (int j = 0; j < 4; j++) { a[j] = 1.0; }
}
`
	w := newWeaver(t, src)
	aspect := `
aspectdef A
	select loop{type=='for'} end
	apply do LoopUnroll(8); end
end
`
	if _, err := w.Weave(aspect, "A"); err != nil {
		t.Fatalf("Weave: %v", err)
	}
	out := w.Source()
	if !strings.Contains(out, "i < 100") {
		t.Errorf("big loop should remain:\n%s", out)
	}
	if strings.Contains(out, "j < 4") {
		t.Errorf("small loop should be unrolled:\n%s", out)
	}
}

func TestRenameAction(t *testing.T) {
	w := newWeaver(t, `int f(int x) { return x; }`)
	aspect := `
aspectdef R
	select function{'f'} end
	apply do Rename('g'); end
end
`
	if _, err := w.Weave(aspect, "R"); err != nil {
		t.Fatal(err)
	}
	if w.Prog.Func("g") == nil || w.Prog.Func("f") != nil {
		t.Errorf("rename failed:\n%s", w.Source())
	}
}
