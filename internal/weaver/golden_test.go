package weaver

import (
	"testing"

	"repro/internal/dsl/interp"
)

// TestFig2GoldenOutput locks the exact woven text for the Fig. 2 aspect:
// any printer or weaver drift shows up as a diff here.
func TestFig2GoldenOutput(t *testing.T) {
	src := `double run(double* data, int size) {
    return kernel(data, size);
}
`
	w := newWeaver(t, src)
	if _, err := w.Weave(Fig2Aspect, "ProfileArguments", interp.Str("kernel")); err != nil {
		t.Fatal(err)
	}
	want := `double run(double* data, int size) {
    profile_args("kernel", "test.c:2:12", data, size);
    return kernel(data, size);
}
`
	if got := w.Source(); got != want {
		t.Errorf("golden mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestFig3GoldenOutput locks the unrolled text for the Fig. 3 aspect.
func TestFig3GoldenOutput(t *testing.T) {
	src := `void init(double* a) {
    for (int i = 0; i < 3; i++) {
        a[i] = 1.0;
    }
}
`
	w := newWeaver(t, src)
	fn := interp.JP(&FunctionJP{w: w, Fn: w.Prog.Func("init")})
	if _, err := w.Weave(Fig3Aspect, "UnrollInnermostLoops", fn, interp.Num(4)); err != nil {
		t.Fatal(err)
	}
	want := `void init(double* a) {
    a[0] = 1.0;
    a[1] = 1.0;
    a[2] = 1.0;
}
`
	if got := w.Source(); got != want {
		t.Errorf("golden mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
