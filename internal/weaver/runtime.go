package weaver

import (
	"fmt"

	"repro/internal/dsl/interp"
	"repro/internal/ir"
)

// CompileRuntime compiles the woven program with the split compiler,
// creates a VM, arms every registered dynamic apply as a call hook, and
// applies pending AddVersion requests. This is the hand-off from
// design-time weaving to the runtime phase of Fig. 1.
func (w *Weaver) CompileRuntime() (*ir.SplitCompiler, *ir.VM, error) {
	sc, err := ir.NewSplitCompilerAST(w.Prog)
	if err != nil {
		return nil, nil, err
	}
	vm := ir.NewVM(sc.Mod)
	if err := w.BindRuntime(sc, vm); err != nil {
		return nil, nil, err
	}
	return sc, vm, nil
}

// BindRuntime attaches the weaver to a compiled module: pending variant
// registrations are applied, and dynamic applies become VM call hooks
// that fire with runtime argument values (dynamic weaving).
func (w *Weaver) BindRuntime(sc *ir.SplitCompiler, vm *ir.VM) error {
	w.split = sc
	w.vm = vm

	// Flush statically accumulated AddVersion requests.
	for _, req := range w.PendingVersions {
		fn := w.Prog.Func(req.Target)
		if fn == nil {
			return fmt.Errorf("weaver: pending version target %q missing", req.Target)
		}
		if err := w.applyVersion(req, fn); err != nil {
			return err
		}
	}
	w.PendingVersions = nil

	for _, d := range w.Dynamics {
		if err := w.armDynamic(d, vm); err != nil {
			return err
		}
	}
	return nil
}

// armDynamic installs one dynamic apply as a VM call hook. The static
// prefix of the select chain is evaluated now (weave time); the runtime
// part — argument values — is bound per call.
func (w *Weaver) armDynamic(d *interp.DynamicApply, vm *ir.VM) error {
	tuples, err := d.StaticTuples()
	if err != nil {
		return err
	}
	type target struct {
		callee   string
		argIdx   int
		arg      *ArgJP
		bindings interp.Binding
	}
	var targets []target
	for _, tup := range tuples {
		aj, ok := tup.Last.(*ArgJP)
		if !ok {
			return fmt.Errorf("weaver: dynamic apply in %s must select a call argument, got %s", d.AspectName, tup.Last.Kind())
		}
		targets = append(targets, target{
			callee:   aj.Call.Name(),
			argIdx:   aj.Index,
			arg:      aj,
			bindings: tup.Bind,
		})
	}
	if len(targets) == 0 {
		return nil // nothing matched statically; hook would never fire
	}
	// One value fires the body once per (callee, value): dynamic weaving
	// installs a variant, after which re-firing is redundant work.
	fired := make(map[string]map[float64]bool)
	vm.AddHook(func(_ *ir.VM, callee string, args []ir.Value) {
		for _, t := range targets {
			if t.callee != callee || t.argIdx >= len(args) {
				continue
			}
			av := args[t.argIdx]
			if av.Kind != ir.KindNum {
				continue
			}
			seen := fired[callee]
			if seen == nil {
				seen = make(map[float64]bool)
				fired[callee] = seen
			}
			if seen[av.Num] {
				continue
			}
			rt := t.arg.WithRuntime(av.Num)
			bind := interp.Binding{}
			for k, v := range t.bindings {
				bind[k] = v
			}
			bind["arg"] = interp.JP(rt)
			ran, err := d.Fire(rt, bind)
			if err != nil {
				// Dynamic weaving must not crash the application: the
				// generic code path keeps serving the call.
				seen[av.Num] = true
				continue
			}
			if ran {
				seen[av.Num] = true
			}
		}
	})
	return nil
}
