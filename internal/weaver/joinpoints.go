package weaver

import (
	"fmt"
	"strings"

	"repro/internal/dsl/interp"
	"repro/internal/srcmodel"
)

// FunctionJP is a function join point.
//
// Attributes: name, numParams, file.
// Children: loop, fCall/call, arg (parameters).
type FunctionJP struct {
	w  *Weaver
	Fn *srcmodel.FuncDecl
}

// Kind implements interp.JoinPoint.
func (j *FunctionJP) Kind() string { return "function" }

// Name implements interp.JoinPoint.
func (j *FunctionJP) Name() string { return j.Fn.Name }

// Attr implements interp.JoinPoint.
func (j *FunctionJP) Attr(name string) (interp.Value, bool) {
	switch name {
	case "name":
		return interp.Str(j.Fn.Name), true
	case "numParams":
		return interp.Num(float64(len(j.Fn.Params))), true
	case "file":
		return interp.Str(j.w.Prog.File), true
	}
	return interp.Null(), false
}

// Children implements interp.JoinPoint.
func (j *FunctionJP) Children(kind string) []interp.JoinPoint {
	switch kind {
	case "loop":
		var jps []interp.JoinPoint
		for _, li := range srcmodel.Loops(j.Fn) {
			jps = append(jps, &LoopJP{w: j.w, Fn: j.Fn, Loop: li.Stmt})
		}
		return jps
	case "fCall", "call":
		var jps []interp.JoinPoint
		for _, ci := range srcmodel.Calls(j.Fn, "") {
			jps = append(jps, &CallJP{w: j.w, CI: ci})
		}
		return jps
	}
	return nil
}

// LoopJP is a loop join point. The underlying LoopInfo is re-derived on
// every attribute access because weaving rewrites the AST; only the loop
// statement's identity is stable.
//
// Attributes: type, isInnermost, numIter, depth, indexVar.
type LoopJP struct {
	w    *Weaver
	Fn   *srcmodel.FuncDecl
	Loop srcmodel.Stmt
}

// info re-resolves the loop's analysis record in the current AST.
func (j *LoopJP) info() *srcmodel.LoopInfo {
	for _, li := range srcmodel.Loops(j.Fn) {
		if li.Stmt == j.Loop {
			return li
		}
	}
	return nil
}

// Kind implements interp.JoinPoint.
func (j *LoopJP) Kind() string { return "loop" }

// Name implements interp.JoinPoint. A loop's primary name is its kind
// ("for"/"while"), enabling the select shorthand loop{'for'}.
func (j *LoopJP) Name() string {
	if li := j.info(); li != nil {
		return li.Kind
	}
	return ""
}

// Attr implements interp.JoinPoint.
func (j *LoopJP) Attr(name string) (interp.Value, bool) {
	li := j.info()
	if li == nil {
		return interp.Null(), false
	}
	switch name {
	case "type":
		return interp.Str(li.Kind), true
	case "isInnermost":
		return interp.Bool(li.IsInnermost), true
	case "numIter":
		return interp.Num(float64(li.NumIter)), true
	case "depth":
		return interp.Num(float64(li.Depth)), true
	case "indexVar":
		return interp.Str(li.IndexVar), true
	}
	return interp.Null(), false
}

// Children implements interp.JoinPoint: nested loops.
func (j *LoopJP) Children(kind string) []interp.JoinPoint {
	if kind != "loop" {
		return nil
	}
	li := j.info()
	if li == nil {
		return nil
	}
	var jps []interp.JoinPoint
	for _, nested := range srcmodel.Loops(j.Fn) {
		if nested.Stmt != j.Loop && loopContains(j.Loop, nested.Stmt) {
			jps = append(jps, &LoopJP{w: j.w, Fn: j.Fn, Loop: nested.Stmt})
		}
	}
	return jps
}

func loopContains(outer, inner srcmodel.Stmt) bool {
	body := loopBodyOf(outer)
	if body == nil {
		return false
	}
	found := false
	var visit func(s srcmodel.Stmt)
	visit = func(s srcmodel.Stmt) {
		if s == inner {
			found = true
		}
		if found {
			return
		}
		switch x := s.(type) {
		case *srcmodel.BlockStmt:
			for _, st := range x.Stmts {
				visit(st)
			}
		case *srcmodel.IfStmt:
			visit(x.Then)
			if x.Else != nil {
				visit(x.Else)
			}
		case *srcmodel.ForStmt:
			visit(x.Body)
		case *srcmodel.WhileStmt:
			visit(x.Body)
		}
	}
	visit(body)
	return found
}

func loopBodyOf(s srcmodel.Stmt) srcmodel.Stmt {
	switch x := s.(type) {
	case *srcmodel.ForStmt:
		return x.Body
	case *srcmodel.WhileStmt:
		return x.Body
	}
	return nil
}

// CallJP is a function-call join point.
//
// Attributes: name, location (as a quoted C string, ready to weave into
// source), argList (the argument expressions' source text), numArgs,
// func (enclosing function name).
// Children: arg (one per call argument, named after the callee's
// parameters when the callee is defined in the same program).
type CallJP struct {
	w  *Weaver
	CI *srcmodel.CallInfo
}

// Kind implements interp.JoinPoint.
func (j *CallJP) Kind() string { return "fCall" }

// Name implements interp.JoinPoint.
func (j *CallJP) Name() string { return j.CI.Call.Callee }

// Attr implements interp.JoinPoint.
func (j *CallJP) Attr(name string) (interp.Value, bool) {
	switch name {
	case "name":
		return interp.Str(j.CI.Call.Callee), true
	case "location":
		// Quoted so `[[$fCall.location]]` weaves directly into C source
		// as a string literal, as the Fig. 2 template expects.
		return interp.Str(fmt.Sprintf("%q", j.CI.Location(j.w.Prog.File))), true
	case "argList":
		parts := make([]string, len(j.CI.Call.Args))
		for i, a := range j.CI.Call.Args {
			parts[i] = srcmodel.ExprString(a)
		}
		return interp.Str(strings.Join(parts, ", ")), true
	case "numArgs":
		return interp.Num(float64(len(j.CI.Call.Args))), true
	case "func":
		return interp.Str(j.CI.Func.Name), true
	}
	return interp.Null(), false
}

// Children implements interp.JoinPoint: the call's arguments.
func (j *CallJP) Children(kind string) []interp.JoinPoint {
	if kind != "arg" {
		return nil
	}
	callee := j.w.Prog.Func(j.CI.Call.Callee)
	var jps []interp.JoinPoint
	for i := range j.CI.Call.Args {
		paramName := fmt.Sprintf("arg%d", i)
		if callee != nil && i < len(callee.Params) {
			paramName = callee.Params[i].Name
		}
		jps = append(jps, &ArgJP{w: j.w, Call: j, Index: i, ParamName: paramName})
	}
	return jps
}

// ArgJP is a call-argument join point.
//
// Attributes: name (the callee's parameter name), index, value (source
// text of the argument expression), and — during dynamic weaving only —
// runtimeValue (the argument's numeric value observed at run time).
type ArgJP struct {
	w         *Weaver
	Call      *CallJP
	Index     int
	ParamName string
	// Runtime holds the observed value during dynamic weaving; nil
	// statically.
	Runtime *float64
}

// Kind implements interp.JoinPoint.
func (j *ArgJP) Kind() string { return "arg" }

// Name implements interp.JoinPoint. Matching `arg{'size'}` selects the
// argument bound to the callee parameter named size.
func (j *ArgJP) Name() string { return j.ParamName }

// Attr implements interp.JoinPoint.
func (j *ArgJP) Attr(name string) (interp.Value, bool) {
	switch name {
	case "name":
		return interp.Str(j.ParamName), true
	case "index":
		return interp.Num(float64(j.Index)), true
	case "value":
		if j.Index < len(j.Call.CI.Call.Args) {
			return interp.Str(srcmodel.ExprString(j.Call.CI.Call.Args[j.Index])), true
		}
		return interp.Null(), false
	case "runtimeValue":
		if j.Runtime == nil {
			return interp.Null(), false
		}
		return interp.Num(*j.Runtime), true
	}
	return interp.Null(), false
}

// Children implements interp.JoinPoint: arguments have no children.
func (j *ArgJP) Children(string) []interp.JoinPoint { return nil }

// WithRuntime returns a copy of the argument join point carrying the
// observed runtime value.
func (j *ArgJP) WithRuntime(v float64) *ArgJP {
	c := *j
	c.Runtime = &v
	return &c
}
