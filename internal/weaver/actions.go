package weaver

import (
	"fmt"
	"strings"

	"repro/internal/dsl/interp"
	"repro/internal/ir"
	"repro/internal/srcmodel"
)

// Insert implements interp.Actions: weave a code fragment before, after,
// or around a join point. The fragment is parsed as miniC statements.
// For "around", the fragment must contain a `proceed();` statement that
// is replaced by the original join-point statement.
func (w *Weaver) Insert(jp interp.JoinPoint, where, code string) error {
	stmts, err := srcmodel.ParseStmts(code)
	if err != nil {
		return fmt.Errorf("weaver: insert template does not parse: %w", err)
	}
	fn, pred, err := anchorOf(jp)
	if err != nil {
		return err
	}
	switch where {
	case "before", "after":
		return insertRelative(fn, pred, where, stmts)
	case "around":
		return insertAround(fn, pred, stmts)
	default:
		return fmt.Errorf("weaver: unknown insert position %q", where)
	}
}

// anchorOf resolves the statement anchor for a join point: the statement
// containing a call, or the loop statement itself.
func anchorOf(jp interp.JoinPoint) (*srcmodel.FuncDecl, func(srcmodel.Stmt) bool, error) {
	switch x := jp.(type) {
	case *CallJP:
		target := x.CI.Call
		return x.CI.Func, func(s srcmodel.Stmt) bool {
			return stmtContainsExpr(s, callAsExpr(target))
		}, nil
	case *LoopJP:
		return x.Fn, func(s srcmodel.Stmt) bool { return s == x.Loop }, nil
	case *ArgJP:
		target := x.Call.CI.Call
		return x.Call.CI.Func, func(s srcmodel.Stmt) bool {
			return stmtContainsExpr(s, callAsExpr(target))
		}, nil
	case *FunctionJP:
		// Anchor at the first statement of the body: before = prologue.
		return x.Fn, func(s srcmodel.Stmt) bool {
			return len(x.Fn.Body.Stmts) > 0 && s == x.Fn.Body.Stmts[0]
		}, nil
	}
	return nil, nil, fmt.Errorf("weaver: cannot insert at %s join point", jp.Kind())
}

func callAsExpr(c *srcmodel.CallExpr) srcmodel.Expr { return c }

func insertAround(fn *srcmodel.FuncDecl, pred func(srcmodel.Stmt) bool, stmts []srcmodel.Stmt) error {
	blk, idx := findStmtByPred(fn, pred)
	if blk == nil {
		return fmt.Errorf("weaver: join point statement not found in %s", fn.Name)
	}
	original := blk.Stmts[idx]
	// Find the proceed(); placeholder in the template.
	var replaced []srcmodel.Stmt
	found := false
	for _, s := range stmts {
		if es, ok := s.(*srcmodel.ExprStmt); ok {
			if call, ok := es.X.(*srcmodel.CallExpr); ok && call.Callee == "proceed" {
				replaced = append(replaced, original)
				found = true
				continue
			}
		}
		replaced = append(replaced, s)
	}
	if !found {
		return fmt.Errorf("weaver: around template must contain proceed();")
	}
	out := make([]srcmodel.Stmt, 0, len(blk.Stmts)-1+len(replaced))
	out = append(out, blk.Stmts[:idx]...)
	out = append(out, replaced...)
	out = append(out, blk.Stmts[idx+1:]...)
	blk.Stmts = out
	return nil
}

// Do implements interp.Actions: named weaver actions on join points.
//
// Supported actions:
//
//	LoopUnroll('full')      — fully unroll a constant-trip-count loop
//	LoopUnroll(n)           — unroll only if trip count <= n, fully
//	Rename('newName')       — rename a function
func (w *Weaver) Do(jp interp.JoinPoint, action string, args []interp.Value) error {
	switch action {
	case "LoopUnroll":
		lj, ok := jp.(*LoopJP)
		if !ok {
			return fmt.Errorf("weaver: LoopUnroll applies to loops, got %s", jp.Kind())
		}
		li := lj.info()
		if li == nil {
			return fmt.Errorf("weaver: loop no longer present (already unrolled?)")
		}
		if len(args) == 1 && args[0].Kind == interp.KNum {
			if li.NumIter < 0 || li.NumIter > int64(args[0].Num) {
				return nil // threshold form: silently skip
			}
		} else if len(args) != 1 || args[0].Kind != interp.KStr || args[0].Str != "full" {
			return fmt.Errorf("weaver: LoopUnroll expects 'full' or a numeric threshold")
		}
		return srcmodel.UnrollLoop(li)
	case "LoopUnrollBy":
		lj, ok := jp.(*LoopJP)
		if !ok {
			return fmt.Errorf("weaver: LoopUnrollBy applies to loops, got %s", jp.Kind())
		}
		li := lj.info()
		if li == nil {
			return fmt.Errorf("weaver: loop no longer present")
		}
		if len(args) != 1 || args[0].Kind != interp.KNum {
			return fmt.Errorf("weaver: LoopUnrollBy expects a numeric factor")
		}
		factor := int64(args[0].Num)
		if li.NumIter > 0 && li.NumIter%factor != 0 {
			return nil // non-dividing factor: skip rather than fail the weave
		}
		return srcmodel.UnrollLoopBy(li, factor)
	case "Rename":
		fj, ok := jp.(*FunctionJP)
		if !ok {
			return fmt.Errorf("weaver: Rename applies to functions, got %s", jp.Kind())
		}
		if len(args) != 1 || args[0].Kind != interp.KStr {
			return fmt.Errorf("weaver: Rename expects a string")
		}
		fj.Fn.Name = args[0].Str
		return nil
	}
	return fmt.Errorf("weaver: unknown action %q", action)
}

// CallBuiltin implements interp.Actions: the weaver-provided callable
// "aspects" of Fig. 4.
//
//	PrepareSpecialize(funcName, paramName)            → handle object
//	Specialize(fn, paramName, value)                  → {func: <jp>, name}
//	AddVersion(handle, funcJP, value)                 → {}
func (w *Weaver) CallBuiltin(name string, args []interp.Value) (interp.Value, bool, error) {
	switch name {
	case "PrepareSpecialize":
		if len(args) != 2 || args[0].Kind != interp.KStr || args[1].Kind != interp.KStr {
			return interp.Null(), true, fmt.Errorf("weaver: PrepareSpecialize(funcName, paramName)")
		}
		fn, param := args[0].Str, args[1].Str
		f := w.Prog.Func(fn)
		if f == nil {
			return interp.Null(), true, fmt.Errorf("weaver: PrepareSpecialize: no function %q", fn)
		}
		idx := -1
		for i, prm := range f.Params {
			if prm.Name == param {
				idx = i
			}
		}
		if idx < 0 {
			return interp.Null(), true, fmt.Errorf("weaver: PrepareSpecialize: %s has no parameter %q", fn, param)
		}
		w.prepared[fn] = param
		return interp.Object(map[string]interp.Value{
			"func":     interp.Str(fn),
			"param":    interp.Str(param),
			"argIndex": interp.Num(float64(idx)),
		}), true, nil

	case "Specialize":
		if len(args) != 3 {
			return interp.Null(), true, fmt.Errorf("weaver: Specialize(fn, paramName, value)")
		}
		fnName, err := functionNameOf(args[0])
		if err != nil {
			return interp.Null(), true, err
		}
		if args[1].Kind != interp.KStr || args[2].Kind != interp.KNum {
			return interp.Null(), true, fmt.Errorf("weaver: Specialize: bad argument types")
		}
		param, val := args[1].Str, int64(args[2].Num)
		f := w.Prog.Func(fnName)
		if f == nil {
			return interp.Null(), true, fmt.Errorf("weaver: Specialize: no function %q", fnName)
		}
		spName := ir.SpecializedName(fnName, param, val)
		sp := w.Prog.Func(spName)
		if sp == nil {
			sp, err = srcmodel.SpecializeFunc(f, spName, param, val)
			if err != nil {
				return interp.Null(), true, err
			}
			srcmodel.NormalizeBodies(&srcmodel.Program{Funcs: []*srcmodel.FuncDecl{sp}})
			w.Prog.Funcs = append(w.Prog.Funcs, sp)
		}
		return interp.Object(map[string]interp.Value{
			"func": interp.JP(&FunctionJP{w: w, Fn: sp}),
			"name": interp.Str(spName),
		}), true, nil

	case "AddVersion":
		if len(args) != 3 {
			return interp.Null(), true, fmt.Errorf("weaver: AddVersion(handle, funcJP, value)")
		}
		handle := args[0]
		if handle.Kind != interp.KObject {
			return interp.Null(), true, fmt.Errorf("weaver: AddVersion: first argument must be a PrepareSpecialize handle")
		}
		fj, ok := args[1].JP.(*FunctionJP)
		if args[1].Kind != interp.KJoinPoint || !ok {
			return interp.Null(), true, fmt.Errorf("weaver: AddVersion: second argument must be a function join point")
		}
		if args[2].Kind != interp.KNum {
			return interp.Null(), true, fmt.Errorf("weaver: AddVersion: third argument must be a number")
		}
		req := VersionRequest{
			Generic:  handle.Obj["func"].Str,
			Param:    handle.Obj["param"].Str,
			Target:   fj.Fn.Name,
			Match:    args[2].Num,
			ArgIndex: int(handle.Obj["argIndex"].Num),
		}
		if err := w.applyVersion(req, fj.Fn); err != nil {
			return interp.Null(), true, err
		}
		return interp.Object(nil), true, nil
	}
	return interp.Null(), false, nil
}

// functionNameOf accepts a function name string, a function join point,
// or a call join point (resolving to its callee).
func functionNameOf(v interp.Value) (string, error) {
	switch v.Kind {
	case interp.KStr:
		return v.Str, nil
	case interp.KJoinPoint:
		switch jp := v.JP.(type) {
		case *FunctionJP:
			return jp.Fn.Name, nil
		case *CallJP:
			return jp.CI.Call.Callee, nil
		}
	}
	return "", fmt.Errorf("weaver: cannot resolve a function from %v", v.Kind)
}

// applyVersion registers a specialization either directly in the bound
// runtime module or as a pending request.
func (w *Weaver) applyVersion(req VersionRequest, fn *srcmodel.FuncDecl) error {
	if w.split == nil {
		w.PendingVersions = append(w.PendingVersions, req)
		return nil
	}
	compiled, err := ir.CompileFunc(fn, moduleGlobals(w.Prog))
	if err != nil {
		return err
	}
	w.split.Mod.Add(compiled)
	w.split.Mod.AddVersion(req.Generic, req.ArgIndex, req.Match, req.Target)
	return nil
}

func moduleGlobals(p *srcmodel.Program) map[string]bool {
	g := make(map[string]bool, len(p.Globals))
	for _, v := range p.Globals {
		g[v.Name] = true
	}
	return g
}

// joinNames is a debugging helper rendering join-point names.
func joinNames(jps []interp.JoinPoint) string {
	names := make([]string, len(jps))
	for i, jp := range jps {
		names[i] = jp.Name()
	}
	return strings.Join(names, ",")
}

// IsWeaveAction reports whether name is a source-weaving action or
// builtin handled by this package (do-actions like LoopUnroll, call
// builtins like Specialize). Compilers targeting the runtime — which
// has no source program to weave — use this to emit a pointed
// diagnostic instead of a generic "unknown action".
func IsWeaveAction(name string) bool {
	switch name {
	case "LoopUnroll", "LoopUnrollBy", "Rename",
		"PrepareSpecialize", "Specialize", "AddVersion":
		return true
	}
	return false
}
