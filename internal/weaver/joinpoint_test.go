package weaver

import (
	"testing"

	"repro/internal/dsl/interp"
	"repro/internal/ir"
)

// TestJoinPointMetadata exercises the join-point API surface directly:
// kinds, names, attributes, children — the contract dsl/interp relies on.
func TestJoinPointMetadata(t *testing.T) {
	src := `
double kernel(double* data, int size) {
    double s = 0.0;
    for (int i = 0; i < size; i++) {
        for (int j = 0; j < 2; j++) {
            s = s + data[i] * data[i];
        }
    }
    return s;
}
`
	w := newWeaver(t, src)
	fns := w.Roots("function")
	if len(fns) != 1 {
		t.Fatalf("function roots: %d", len(fns))
	}
	fj := fns[0].(*FunctionJP)
	if fj.Kind() != "function" || fj.Name() != "kernel" {
		t.Errorf("function jp: %s %s", fj.Kind(), fj.Name())
	}
	if v, ok := fj.Attr("numParams"); !ok || v.Num != 2 {
		t.Errorf("numParams: %v", v)
	}
	if v, ok := fj.Attr("file"); !ok || v.Str != "test.c" {
		t.Errorf("file: %v", v)
	}
	if _, ok := fj.Attr("nosuch"); ok {
		t.Error("unknown attr should miss")
	}
	if got := fj.Children("nosuchkind"); got != nil {
		t.Errorf("unknown child kind: %v", got)
	}

	loops := fj.Children("loop")
	if len(loops) != 2 {
		t.Fatalf("loops: %d", len(loops))
	}
	outer := loops[0].(*LoopJP)
	if outer.Kind() != "loop" || outer.Name() != "for" {
		t.Errorf("loop jp: %s %s", outer.Kind(), outer.Name())
	}
	if v, ok := outer.Attr("depth"); !ok || v.Num != 0 {
		t.Errorf("depth: %v", v)
	}
	if v, ok := outer.Attr("indexVar"); !ok || v.Str != "i" {
		t.Errorf("indexVar: %v", v)
	}
	// Nested loops via Children("loop").
	nested := outer.Children("loop")
	if len(nested) != 1 {
		t.Fatalf("nested loops of outer: %d", len(nested))
	}
	if v, ok := nested[0].Attr("numIter"); !ok || v.Num != 2 {
		t.Errorf("nested numIter: %v", v)
	}
	inner := nested[0].(*LoopJP)
	if got := inner.Children("loop"); len(got) != 0 {
		t.Errorf("innermost loop has children: %v", got)
	}
	if got := inner.Children("fCall"); got != nil {
		t.Errorf("loops have no call children in this model: %v", got)
	}

	// Calls and args.
	calls := w.Roots("fCall")
	if len(calls) != 0 {
		t.Fatalf("kernel has no calls, got %d", len(calls))
	}
	w2 := newWeaver(t, `
void callee(int size) { g(size); }
void caller() { callee(7); }
`)
	calls = w2.Roots("fCall")
	// g(size) and callee(7).
	if len(calls) != 2 {
		t.Fatalf("calls: %d", len(calls))
	}
	var cj *CallJP
	for _, c := range calls {
		if c.Name() == "callee" {
			cj = c.(*CallJP)
		}
	}
	if cj == nil {
		t.Fatal("callee call not found")
	}
	if v, ok := cj.Attr("numArgs"); !ok || v.Num != 1 {
		t.Errorf("numArgs: %v", v)
	}
	if v, ok := cj.Attr("func"); !ok || v.Str != "caller" {
		t.Errorf("enclosing func: %v", v)
	}
	args := cj.Children("arg")
	if len(args) != 1 {
		t.Fatalf("args: %d", len(args))
	}
	aj := args[0].(*ArgJP)
	if aj.Kind() != "arg" || aj.Name() != "size" {
		t.Errorf("arg jp: %s %s", aj.Kind(), aj.Name())
	}
	if _, ok := aj.Attr("runtimeValue"); ok {
		t.Error("static arg must not expose runtimeValue")
	}
	rt := aj.WithRuntime(42)
	if v, ok := rt.Attr("runtimeValue"); !ok || v.Num != 42 {
		t.Errorf("runtime value: %v", v)
	}
	if aj.Children("anything") != nil {
		t.Error("args have no children")
	}
	// Calls to functions not defined in the program name args by index.
	var gj *CallJP
	for _, c := range calls {
		if c.Name() == "g" {
			gj = c.(*CallJP)
		}
	}
	gargs := gj.Children("arg")
	if len(gargs) != 1 || gargs[0].Name() != "arg0" {
		t.Errorf("extern call arg naming: %v", joinNames(gargs))
	}
}

// TestFunctionNameResolution covers functionNameOf's accepted shapes via
// the Specialize builtin.
func TestFunctionNameResolution(t *testing.T) {
	src := `
double kernel(double* d, int size) {
    double s = 0.0;
    for (int i = 0; i < size; i++) { s = s + d[i]; }
    return s;
}
void main2(double* d) { kernel(d, 8); }
`
	// Specialize by name string.
	w := newWeaver(t, src)
	out, ok, err := w.CallBuiltin("Specialize", []interp.Value{
		interp.Str("kernel"), interp.Str("size"), interp.Num(8),
	})
	if err != nil || !ok {
		t.Fatalf("Specialize by name: %v %v", ok, err)
	}
	if out.Obj["name"].Str != "kernel__size_8" {
		t.Errorf("specialized name: %v", out.Obj["name"])
	}
	// Specialize by function join point.
	w = newWeaver(t, src)
	fj := w.Roots("function")[0]
	if _, _, err := w.CallBuiltin("Specialize", []interp.Value{
		interp.JP(fj), interp.Str("size"), interp.Num(8),
	}); err != nil {
		t.Fatalf("Specialize by function jp: %v", err)
	}
	// Specialize by call join point (resolves callee).
	w = newWeaver(t, src)
	var cj interp.JoinPoint
	for _, c := range w.Roots("fCall") {
		if c.Name() == "kernel" {
			cj = c
		}
	}
	if _, _, err := w.CallBuiltin("Specialize", []interp.Value{
		interp.JP(cj), interp.Str("size"), interp.Num(8),
	}); err != nil {
		t.Fatalf("Specialize by call jp: %v", err)
	}
	// Bad shapes.
	if _, _, err := w.CallBuiltin("Specialize", []interp.Value{
		interp.Num(3), interp.Str("size"), interp.Num(8),
	}); err == nil {
		t.Error("number as function should fail")
	}
	if _, _, err := w.CallBuiltin("Specialize", []interp.Value{
		interp.Str("nosuch"), interp.Str("size"), interp.Num(8),
	}); err == nil {
		t.Error("unknown function should fail")
	}
	// AddVersion argument validation.
	if _, _, err := w.CallBuiltin("AddVersion", []interp.Value{
		interp.Str("not-a-handle"), interp.Num(1), interp.Num(2),
	}); err == nil {
		t.Error("AddVersion with bad handle should fail")
	}
	// Unknown builtin reports ok=false without error.
	if _, ok, err := w.CallBuiltin("NoSuchBuiltin", nil); ok || err != nil {
		t.Errorf("unknown builtin: ok=%v err=%v", ok, err)
	}
}

// TestPendingVersionsFlushOnBind covers the static AddVersion path: the
// version request parks in PendingVersions until BindRuntime.
func TestPendingVersionsFlushOnBind(t *testing.T) {
	src := `
double kernel(double* d, int size) {
    double s = 0.0;
    for (int i = 0; i < size; i++) { s = s + d[i]; }
    return s;
}
`
	aspect := `
aspectdef StaticVersion
	call spCall: PrepareSpecialize('kernel', 'size');
	select function{'kernel'} end
	apply
		call spOut: Specialize($function, 'size', 16);
		call AddVersion(spCall, spOut.$func, 16);
	end
end
`
	w := newWeaver(t, src)
	if _, err := w.Weave(aspect, "StaticVersion"); err != nil {
		t.Fatalf("Weave: %v", err)
	}
	if len(w.PendingVersions) != 1 {
		t.Fatalf("pending versions: %d", len(w.PendingVersions))
	}
	sc, vm, err := w.CompileRuntime()
	if err != nil {
		t.Fatal(err)
	}
	if len(w.PendingVersions) != 0 {
		t.Error("pending versions not flushed")
	}
	vt := sc.Mod.Variants["kernel"]
	if vt == nil || len(vt.Entries) != 1 || vt.Entries[0].Match != 16 {
		t.Fatalf("variant table: %+v", vt)
	}
	buf := make([]float64, 16)
	for i := range buf {
		buf[i] = 1
	}
	got, err := vm.Call("kernel", ir.PtrValue(buf), ir.NumValue(16))
	if err != nil {
		t.Fatal(err)
	}
	if got.Num != 16 {
		t.Errorf("kernel via static variant = %v, want 16", got.Num)
	}
	if vt.Entries[0].Hits != 1 {
		t.Errorf("variant hits: %d", vt.Entries[0].Hits)
	}
}
