package dsl

import "testing"

// The three aspects of the paper's Figs. 2-4, verbatim (modulo layout).
const Fig2Src = `
aspectdef ProfileArguments
	input funcName end
	select fCall end
	apply
		insert before %{profile_args('[[funcName]]',
			[[$fCall.location]],
			[[$fCall.argList]]);
		}%;
	end
	condition $fCall.name == funcName end
end
`

const Fig3Src = `
aspectdef UnrollInnermostLoops
	input $func, threshold end
	select $func.loop{type=='for'} end
	apply
		do LoopUnroll('full');
	end
	condition
		$loop.isInnermost && $loop.numIter <= threshold
	end
end
`

const Fig4Src = `
aspectdef SpecializeKernel
	input lowT, highT end

	call spCall: PrepareSpecialize('kernel','size');

	select fCall{'kernel'}.arg{'size'} end
	apply dynamic
		call spOut : Specialize($fCall, $arg.name,
			$arg.runtimeValue);
		call UnrollInnermostLoops(spOut.$func,
			$arg.runtimeValue);
		call AddVersion(spCall, spOut.$func,
			$arg.runtimeValue);
	end
	condition
		$arg.runtimeValue >= lowT &&
		$arg.runtimeValue <= highT
	end
end
`

func TestParseFig2(t *testing.T) {
	f, err := Parse(Fig2Src)
	if err != nil {
		t.Fatalf("Parse(Fig2): %v", err)
	}
	a := f.Aspect("ProfileArguments")
	if a == nil {
		t.Fatal("aspect not found")
	}
	if len(a.Inputs) != 1 || a.Inputs[0] != "funcName" {
		t.Errorf("inputs: %v", a.Inputs)
	}
	if len(a.Body) != 3 {
		t.Fatalf("body has %d statements, want 3", len(a.Body))
	}
	sel, ok := a.Body[0].(*SelectStmt)
	if !ok || len(sel.Chain) != 1 || sel.Chain[0].Kind != "fCall" || sel.Root != "" {
		t.Fatalf("select: %+v", a.Body[0])
	}
	app, ok := a.Body[1].(*ApplyStmt)
	if !ok || app.Dynamic || len(app.Body) != 1 {
		t.Fatalf("apply: %+v", a.Body[1])
	}
	ins, ok := app.Body[0].(*InsertAction)
	if !ok || ins.Where != "before" {
		t.Fatalf("insert: %+v", app.Body[0])
	}
	if want := "profile_args('[[funcName]]'"; len(ins.Template) < len(want) || ins.Template[:len(want)] != want {
		t.Errorf("template: %q", ins.Template)
	}
	cond, ok := a.Body[2].(*ConditionStmt)
	if !ok {
		t.Fatalf("condition: %+v", a.Body[2])
	}
	be, ok := cond.Cond.(*BinaryExpr)
	if !ok || be.Op != TEq {
		t.Fatalf("condition expr: %+v", cond.Cond)
	}
	mem, ok := be.L.(*MemberExpr)
	if !ok || mem.Name != "name" {
		t.Fatalf("condition lhs: %+v", be.L)
	}
	root, ok := mem.X.(*VarRef)
	if !ok || root.Name != "fCall" || !root.Dollar {
		t.Fatalf("condition root: %+v", mem.X)
	}
}

func TestParseFig3(t *testing.T) {
	f, err := Parse(Fig3Src)
	if err != nil {
		t.Fatalf("Parse(Fig3): %v", err)
	}
	a := f.Aspect("UnrollInnermostLoops")
	if a == nil {
		t.Fatal("aspect not found")
	}
	if len(a.Inputs) != 2 || a.Inputs[0] != "func" || a.Inputs[1] != "threshold" {
		t.Errorf("inputs: %v", a.Inputs)
	}
	sel := a.Body[0].(*SelectStmt)
	if sel.Root != "func" {
		t.Errorf("select root: %q", sel.Root)
	}
	if len(sel.Chain) != 1 || sel.Chain[0].Kind != "loop" || sel.Chain[0].Filter == nil {
		t.Fatalf("select chain: %+v", sel.Chain)
	}
	filt, ok := sel.Chain[0].Filter.(*BinaryExpr)
	if !ok || filt.Op != TEq {
		t.Fatalf("filter: %+v", sel.Chain[0].Filter)
	}
	app := a.Body[1].(*ApplyStmt)
	da, ok := app.Body[0].(*DoAction)
	if !ok || da.Name != "LoopUnroll" || len(da.Args) != 1 {
		t.Fatalf("do action: %+v", app.Body[0])
	}
	if lit, ok := da.Args[0].(*StringLit); !ok || lit.Value != "full" {
		t.Fatalf("do arg: %+v", da.Args[0])
	}
	cond := a.Body[2].(*ConditionStmt)
	and, ok := cond.Cond.(*BinaryExpr)
	if !ok || and.Op != TAnd {
		t.Fatalf("condition: %+v", cond.Cond)
	}
}

func TestParseFig4(t *testing.T) {
	f, err := Parse(Fig4Src)
	if err != nil {
		t.Fatalf("Parse(Fig4): %v", err)
	}
	a := f.Aspect("SpecializeKernel")
	if a == nil {
		t.Fatal("aspect not found")
	}
	if len(a.Body) != 4 {
		t.Fatalf("body has %d statements, want 4", len(a.Body))
	}
	cs, ok := a.Body[0].(*CallStmt)
	if !ok || cs.Label != "spCall" || cs.Aspect != "PrepareSpecialize" || len(cs.Args) != 2 {
		t.Fatalf("top-level call: %+v", a.Body[0])
	}
	sel := a.Body[1].(*SelectStmt)
	if len(sel.Chain) != 2 {
		t.Fatalf("select chain: %+v", sel.Chain)
	}
	if sel.Chain[0].Kind != "fCall" || sel.Chain[0].NameLit != "kernel" {
		t.Errorf("chain[0]: %+v", sel.Chain[0])
	}
	if sel.Chain[1].Kind != "arg" || sel.Chain[1].NameLit != "size" {
		t.Errorf("chain[1]: %+v", sel.Chain[1])
	}
	app := a.Body[2].(*ApplyStmt)
	if !app.Dynamic {
		t.Error("apply should be dynamic")
	}
	if len(app.Body) != 3 {
		t.Fatalf("apply body: %d actions", len(app.Body))
	}
	c0 := app.Body[0].(*CallAction)
	if c0.Label != "spOut" || c0.Aspect != "Specialize" || len(c0.Args) != 3 {
		t.Fatalf("call 0: %+v", c0)
	}
	c1 := app.Body[1].(*CallAction)
	if c1.Aspect != "UnrollInnermostLoops" || c1.Label != "" {
		t.Fatalf("call 1: %+v", c1)
	}
	// spOut.$func — member access with $-prefixed attribute.
	mem, ok := c1.Args[0].(*MemberExpr)
	if !ok || mem.Name != "func" || !mem.Dollar {
		t.Fatalf("call 1 arg 0: %+v", c1.Args[0])
	}
	if root, ok := mem.X.(*VarRef); !ok || root.Name != "spOut" || root.Dollar {
		t.Fatalf("call 1 arg 0 root: %+v", mem.X)
	}
	c2 := app.Body[2].(*CallAction)
	if c2.Aspect != "AddVersion" || len(c2.Args) != 3 {
		t.Fatalf("call 2: %+v", c2)
	}
}

func TestParseMultipleAspects(t *testing.T) {
	f, err := Parse(Fig2Src + Fig3Src + Fig4Src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(f.Aspects) != 3 {
		t.Fatalf("got %d aspects", len(f.Aspects))
	}
	for _, name := range []string{"ProfileArguments", "UnrollInnermostLoops", "SpecializeKernel"} {
		if f.Aspect(name) == nil {
			t.Errorf("aspect %s missing", name)
		}
	}
}

func TestParseOutputsAndAround(t *testing.T) {
	src := `
aspectdef Wrap
	input x end
	output result end
	select loop end
	apply
		insert around %{ timer_start(); }%;
		insert after %{ timer_stop(); }%;
	end
end
`
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	a := f.Aspect("Wrap")
	if len(a.Outputs) != 1 || a.Outputs[0] != "result" {
		t.Errorf("outputs: %v", a.Outputs)
	}
	app := a.Body[1].(*ApplyStmt)
	if app.Body[0].(*InsertAction).Where != "around" {
		t.Error("first insert should be around")
	}
	if app.Body[1].(*InsertAction).Where != "after" {
		t.Error("second insert should be after")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,
		`aspectdef`,
		`aspectdef A`,
		`aspectdef A select end end`,
		`aspectdef A apply insert nowhere %{x}%; end end`,
		`aspectdef A apply do (); end end`,
		`aspectdef A condition end end`,
		`aspectdef A input end end`,
		`aspectdef A select fCall{ end end`,
		`aspectdef A call X( end`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestLexErrors(t *testing.T) {
	cases := []string{
		`$`,
		`'unterminated`,
		`%{ unterminated`,
		"#",
		`a & b`,
		`a | b`,
	}
	for _, src := range cases {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q): expected error", src)
		}
	}
}

func TestLexTemplateAndComments(t *testing.T) {
	toks, err := Lex(`
// a comment
insert before %{ code(1); // not a comment inside }%;
`)
	if err != nil {
		t.Fatalf("Lex: %v", err)
	}
	var kinds []TokenKind
	for _, tk := range toks {
		kinds = append(kinds, tk.Kind)
	}
	want := []TokenKind{TInsert, TBefore, TTemplate, TSemi}
	if len(kinds) != len(want) {
		t.Fatalf("kinds: %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("token %d: %s, want %s", i, kinds[i], want[i])
		}
	}
}
