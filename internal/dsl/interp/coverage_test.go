package interp

import (
	"strings"
	"testing"

	"repro/internal/dsl"
)

func TestValueStringForms(t *testing.T) {
	jp := &fakeJP{kind: "loop", name: "for"}
	cases := []struct {
		v    Value
		want string
	}{
		{Null(), ""},
		{Str("x"), "x"},
		{Num(2.5), "2.5"},
		{Num(-3), "-3"},
		{Bool(false), "false"},
		{JP(jp), "<loop for>"},
		{Object(map[string]Value{"a": Num(1)}), "<object 1 fields>"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.v.Kind, got, c.want)
		}
	}
}

func TestValueTruthyAllKinds(t *testing.T) {
	jp := &fakeJP{kind: "x"}
	cases := []struct {
		v    Value
		want bool
	}{
		{Null(), false},
		{Str(""), false},
		{Str("a"), true},
		{Num(0), false},
		{Num(-1), true},
		{Bool(true), true},
		{JP(jp), true},
		{JP(nil), false},
		{Object(nil), false},
		{Object(map[string]Value{"k": Null()}), true},
	}
	for i, c := range cases {
		if got := c.v.Truthy(); got != c.want {
			t.Errorf("case %d: Truthy = %v, want %v", i, got, c.want)
		}
	}
}

func TestValueEqualsAllKinds(t *testing.T) {
	jp1 := &fakeJP{kind: "a"}
	jp2 := &fakeJP{kind: "a"}
	if !Null().Equals(Null()) {
		t.Error("null == null")
	}
	if !JP(jp1).Equals(JP(jp1)) || JP(jp1).Equals(JP(jp2)) {
		t.Error("join-point identity equality")
	}
	if Object(nil).Equals(Object(nil)) {
		t.Error("objects are never equal (no structural equality)")
	}
	if Str("a").Equals(Bool(true)) {
		t.Error("string vs bool")
	}
}

// TestEvalErrorPaths walks evaluator failure modes through real aspects.
func TestEvalErrorPaths(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"member on number", `aspectdef A input x end call B(x.name); end aspectdef B input y end end`, "cannot access"},
		{"minus on string", `aspectdef A input x end call B(-x); end aspectdef B input y end end`, "unary minus"},
		{"plus on objects", `aspectdef A input x end call B(x - x); end aspectdef B input y end end`, "invalid - operands"},
		{"compare string num", `aspectdef A input x end call B(x < 3); end aspectdef B input y end end`, "comparison on non-numbers"},
	}
	for _, c := range cases {
		f, err := dsl.Parse(c.src)
		if err != nil {
			t.Fatalf("%s: parse: %v", c.name, err)
		}
		in := New(f, &fakeActions{})
		arg := Str("s")
		if c.name == "plus on objects" {
			arg = Object(nil)
		}
		_, err = in.Run("A", arg)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.want)
		}
	}
}

func TestMissingObjectFieldAndJPAttr(t *testing.T) {
	src := `
aspectdef A
	call r: Mk();
	call B(r.nosuch);
end
aspectdef B input y end end
`
	f, _ := dsl.Parse(src)
	act := &fakeActions{builtins: map[string]func([]Value) (Value, error){
		"Mk": func([]Value) (Value, error) {
			return Object(map[string]Value{"field": Num(1)}), nil
		},
	}}
	in := New(f, act)
	if _, err := in.Run("A"); err == nil || !strings.Contains(err.Error(), "no output field") {
		t.Errorf("missing field: %v", err)
	}

	src2 := `
aspectdef C
	select fCall end
	apply
		do X($fCall.nosuchattr);
	end
end
`
	f2, _ := dsl.Parse(src2)
	act2 := &fakeActions{roots: map[string][]JoinPoint{"fCall": {call("k", "l", "a")}}}
	in2 := New(f2, act2)
	if _, err := in2.Run("C"); err == nil || !strings.Contains(err.Error(), "no attribute") {
		t.Errorf("missing attr: %v", err)
	}
}

func TestApplyWithoutSelectRunsOnce(t *testing.T) {
	src := `
aspectdef A
	apply
		call Mark();
	end
end
`
	f, _ := dsl.Parse(src)
	count := 0
	act := &fakeActions{builtins: map[string]func([]Value) (Value, error){
		"Mark": func([]Value) (Value, error) { count++; return Null(), nil },
	}}
	in := New(f, act)
	if _, err := in.Run("A"); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Errorf("apply without select ran %d times, want 1", count)
	}
	// insert/do without a selected join point are errors.
	src2 := `aspectdef B apply insert before %{x();}%; end end`
	f2, _ := dsl.Parse(src2)
	in2 := New(f2, &fakeActions{})
	if _, err := in2.Run("B"); err == nil || !strings.Contains(err.Error(), "without a selected join point") {
		t.Errorf("insert without select: %v", err)
	}
}

func TestTooManyArgsAndDepthGuard(t *testing.T) {
	f, _ := dsl.Parse(`aspectdef A input x end end`)
	in := New(f, &fakeActions{})
	if _, err := in.Run("A", Num(1), Num(2)); err == nil {
		t.Error("excess args should error")
	}
	// Mutual recursion trips the depth guard.
	f2, _ := dsl.Parse(`
aspectdef A call B(); end
aspectdef B call A(); end
`)
	in2 := New(f2, &fakeActions{})
	if _, err := in2.Run("A"); err == nil || !strings.Contains(err.Error(), "depth") {
		t.Errorf("recursion: %v", err)
	}
}

func TestOutputsDefaultNull(t *testing.T) {
	f, _ := dsl.Parse(`aspectdef A output a, b end end`)
	in := New(f, &fakeActions{})
	out, err := in.Run("A")
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind != KObject || len(out.Obj) != 2 {
		t.Fatalf("outputs: %+v", out)
	}
	if out.Obj["a"].Kind != KNull {
		t.Errorf("unset output should be null: %+v", out.Obj["a"])
	}
}

func TestDynamicInterpAccessor(t *testing.T) {
	src := `
aspectdef D
	select fCall end
	apply dynamic
		do X();
	end
end
`
	f, _ := dsl.Parse(src)
	act := &fakeActions{roots: map[string][]JoinPoint{"fCall": {call("k", "l", "")}}}
	in := New(f, act)
	if _, err := in.Run("D"); err != nil {
		t.Fatal(err)
	}
	if len(act.dynamics) != 1 || act.dynamics[0].Interp() != in {
		t.Error("dynamic apply should carry its interpreter")
	}
	if act.dynamics[0].AspectName != "D" {
		t.Errorf("aspect name: %q", act.dynamics[0].AspectName)
	}
}

// TestFilterUsesEnvFallback: select filters resolve bare identifiers
// against the candidate join point first, then the aspect environment —
// so thresholds can parameterize filters directly.
func TestFilterUsesEnvFallback(t *testing.T) {
	loop := func(n float64) *fakeJP {
		return &fakeJP{kind: "loop", name: "for", attrs: map[string]Value{
			"type": Str("for"), "numIter": Num(n),
		}}
	}
	act := &fakeActions{roots: map[string][]JoinPoint{
		"loop": {loop(2), loop(10), loop(50)},
	}}
	src := `
aspectdef Small
	input limit end
	select loop{numIter <= limit} end
	apply
		do Touch();
	end
end
`
	f, err := dsl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	in := New(f, act)
	if _, err := in.Run("Small", Num(10)); err != nil {
		t.Fatal(err)
	}
	if len(act.dos) != 2 {
		t.Errorf("filtered selects: %v", act.dos)
	}
}
