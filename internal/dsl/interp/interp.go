package interp

import (
	"fmt"
	"strings"

	"repro/internal/dsl"
)

// Interp executes aspects from a parsed DSL file against an Actions
// target.
type Interp struct {
	File *dsl.File
	Act  Actions

	// depth guards against runaway mutual aspect recursion.
	depth int
}

// maxAspectDepth bounds aspect call nesting.
const maxAspectDepth = 64

// New returns an interpreter over file targeting act.
func New(file *dsl.File, act Actions) *Interp {
	return &Interp{File: file, Act: act}
}

// Run executes the named aspect with positional arguments and returns its
// outputs as a KObject value (possibly empty).
func (in *Interp) Run(name string, args ...Value) (Value, error) {
	a := in.File.Aspect(name)
	if a == nil {
		return Null(), fmt.Errorf("interp: aspect %q not defined", name)
	}
	return in.runAspect(a, args)
}

func (in *Interp) runAspect(a *dsl.Aspect, args []Value) (Value, error) {
	if in.depth >= maxAspectDepth {
		return Null(), fmt.Errorf("interp: aspect call depth exceeded at %q", a.Name)
	}
	in.depth++
	defer func() { in.depth-- }()

	if len(args) > len(a.Inputs) {
		return Null(), fmt.Errorf("interp: aspect %q takes %d inputs, got %d args", a.Name, len(a.Inputs), len(args))
	}
	env := Binding{}
	for i, inp := range a.Inputs {
		if i < len(args) {
			env[inp] = args[i]
		} else {
			env[inp] = Null()
		}
	}

	// Pair each apply with the nearest preceding select and the nearest
	// following condition, per the structure of Figs. 2-4.
	var lastSelect *dsl.SelectStmt
	for i := 0; i < len(a.Body); i++ {
		switch st := a.Body[i].(type) {
		case *dsl.SelectStmt:
			lastSelect = st
		case *dsl.ApplyStmt:
			var cond dsl.Expr
			if i+1 < len(a.Body) {
				if c, ok := a.Body[i+1].(*dsl.ConditionStmt); ok {
					cond = c.Cond
					i++
				}
			}
			if st.Dynamic {
				d := &DynamicApply{
					AspectName: a.Name,
					Select:     lastSelect,
					Apply:      st,
					Cond:       cond,
					Env:        env.clone(),
					in:         in,
				}
				if err := in.Act.RegisterDynamic(d); err != nil {
					return Null(), err
				}
				continue
			}
			if err := in.applyStatic(lastSelect, st, cond, env); err != nil {
				return Null(), err
			}
		case *dsl.ConditionStmt:
			return Null(), fmt.Errorf("interp: %s: condition without preceding apply in aspect %q", st.Pos, a.Name)
		case *dsl.CallStmt:
			out, err := in.callAspect(st.Aspect, st.Args, env)
			if err != nil {
				return Null(), err
			}
			if st.Label != "" {
				env[st.Label] = out
			}
		}
	}

	outs := map[string]Value{}
	for _, o := range a.Outputs {
		if v, ok := env[o]; ok {
			outs[o] = v
		} else {
			outs[o] = Null()
		}
	}
	return Object(outs), nil
}

// applyStatic runs an apply over every tuple the select produces.
func (in *Interp) applyStatic(sel *dsl.SelectStmt, app *dsl.ApplyStmt, cond dsl.Expr, env Binding) error {
	if sel == nil {
		// Apply without select runs once with no join-point bindings.
		return in.runActions(app, nil, env)
	}
	tuples, err := in.EvalSelect(sel, env)
	if err != nil {
		return err
	}
	for _, tup := range tuples {
		scope := env.clone()
		for k, v := range tup.Bind {
			scope[k] = v
		}
		if cond != nil {
			ok, err := in.evalCond(cond, scope)
			if err != nil {
				return err
			}
			if !ok {
				continue
			}
		}
		if err := in.runActions(app, tup.Last, scope); err != nil {
			return err
		}
	}
	return nil
}

// Tuple is one match of a select chain: the bindings it introduces and
// the last (innermost) join point, which actions operate on.
type Tuple struct {
	Bind Binding
	Last JoinPoint
}

// EvalSelect resolves a select chain to its match tuples. Exported for
// the weaver's dynamic-weaving path, which evaluates the static prefix of
// a chain at weave time.
func (in *Interp) EvalSelect(sel *dsl.SelectStmt, env Binding) ([]Tuple, error) {
	if len(sel.Chain) == 0 {
		return nil, fmt.Errorf("interp: %s: empty select", sel.Pos)
	}
	var current []Tuple
	first := sel.Chain[0]
	if sel.Root != "" {
		rv, ok := env[sel.Root]
		if !ok || rv.Kind != KJoinPoint {
			return nil, fmt.Errorf("interp: %s: select root $%s is not a join point", sel.Pos, sel.Root)
		}
		for _, child := range rv.JP.Children(first.Kind) {
			current = append(current, Tuple{Bind: Binding{}, Last: child})
		}
	} else {
		for _, jp := range in.Act.Roots(first.Kind) {
			current = append(current, Tuple{Bind: Binding{}, Last: jp})
		}
	}
	current, err := in.filterAndBind(current, first, env)
	if err != nil {
		return nil, err
	}
	for _, part := range sel.Chain[1:] {
		var next []Tuple
		for _, tup := range current {
			for _, child := range tup.Last.Children(part.Kind) {
				nb := tup.Bind.clone()
				next = append(next, Tuple{Bind: nb, Last: child})
			}
		}
		next, err = in.filterAndBind(next, part, env)
		if err != nil {
			return nil, err
		}
		current = next
	}
	return current, nil
}

func (in *Interp) filterAndBind(tuples []Tuple, part dsl.SelectPart, env Binding) ([]Tuple, error) {
	var out []Tuple
	for _, tup := range tuples {
		jp := tup.Last
		if part.NameLit != "" && jp.Name() != part.NameLit {
			continue
		}
		if part.Filter != nil {
			// Bare identifiers in filters resolve against the candidate
			// join point's attributes first ({type=='for'}).
			scope := env.clone()
			ok, err := in.evalFilter(part.Filter, jp, scope)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		tup.Bind[part.Kind] = JP(jp)
		out = append(out, tup)
	}
	return out, nil
}

func (in *Interp) runActions(app *dsl.ApplyStmt, cur JoinPoint, env Binding) error {
	for _, act := range app.Body {
		switch a := act.(type) {
		case *dsl.InsertAction:
			if cur == nil {
				return fmt.Errorf("interp: %s: insert without a selected join point", a.Pos)
			}
			code, err := in.ExpandTemplate(a.Template, env)
			if err != nil {
				return err
			}
			if err := in.Act.Insert(cur, a.Where, code); err != nil {
				return err
			}
		case *dsl.DoAction:
			if cur == nil {
				return fmt.Errorf("interp: %s: do without a selected join point", a.Pos)
			}
			args, err := in.evalArgs(a.Args, env)
			if err != nil {
				return err
			}
			if err := in.Act.Do(cur, a.Name, args); err != nil {
				return err
			}
		case *dsl.CallAction:
			out, err := in.callAspect(a.Aspect, a.Args, env)
			if err != nil {
				return err
			}
			if a.Label != "" {
				env[a.Label] = out
			}
		}
	}
	return nil
}

// callAspect resolves a `call`: user-defined aspects take precedence,
// then weaver builtins.
func (in *Interp) callAspect(name string, argExprs []dsl.Expr, env Binding) (Value, error) {
	args, err := in.evalArgs(argExprs, env)
	if err != nil {
		return Null(), err
	}
	if a := in.File.Aspect(name); a != nil {
		return in.runAspect(a, args)
	}
	out, ok, err := in.Act.CallBuiltin(name, args)
	if err != nil {
		return Null(), err
	}
	if !ok {
		return Null(), fmt.Errorf("interp: call to undefined aspect %q", name)
	}
	return out, nil
}

func (in *Interp) evalArgs(exprs []dsl.Expr, env Binding) ([]Value, error) {
	args := make([]Value, len(exprs))
	for i, e := range exprs {
		v, err := in.Eval(e, env)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	return args, nil
}

func (in *Interp) evalCond(e dsl.Expr, env Binding) (bool, error) {
	v, err := in.Eval(e, env)
	if err != nil {
		return false, err
	}
	return v.Truthy(), nil
}

// evalFilter evaluates a select filter where bare identifiers resolve to
// attributes of jp before falling back to the environment.
func (in *Interp) evalFilter(e dsl.Expr, jp JoinPoint, env Binding) (bool, error) {
	v, err := in.evalWith(e, env, jp)
	if err != nil {
		return false, err
	}
	return v.Truthy(), nil
}

// Eval evaluates a DSL expression in env.
func (in *Interp) Eval(e dsl.Expr, env Binding) (Value, error) {
	return in.evalWith(e, env, nil)
}

func (in *Interp) evalWith(e dsl.Expr, env Binding, attrScope JoinPoint) (Value, error) {
	switch x := e.(type) {
	case *dsl.StringLit:
		return Str(x.Value), nil
	case *dsl.NumberLit:
		return Num(x.Value), nil
	case *dsl.VarRef:
		if attrScope != nil && !x.Dollar {
			if v, ok := attrScope.Attr(x.Name); ok {
				return v, nil
			}
		}
		if v, ok := env[x.Name]; ok {
			return v, nil
		}
		return Null(), fmt.Errorf("interp: %s: undefined variable %q", x.Pos, x.Name)
	case *dsl.MemberExpr:
		base, err := in.evalWith(x.X, env, attrScope)
		if err != nil {
			return Null(), err
		}
		switch base.Kind {
		case KJoinPoint:
			if v, ok := base.JP.Attr(x.Name); ok {
				return v, nil
			}
			return Null(), fmt.Errorf("interp: %s: join point %s has no attribute %q", x.Pos, base.JP.Kind(), x.Name)
		case KObject:
			if v, ok := base.Obj[x.Name]; ok {
				return v, nil
			}
			return Null(), fmt.Errorf("interp: %s: no output field %q", x.Pos, x.Name)
		}
		return Null(), fmt.Errorf("interp: %s: cannot access .%s on %v", x.Pos, x.Name, base.Kind)
	case *dsl.UnaryExpr:
		v, err := in.evalWith(x.X, env, attrScope)
		if err != nil {
			return Null(), err
		}
		switch x.Op {
		case dsl.TNot:
			return Bool(!v.Truthy()), nil
		case dsl.TMinus:
			if v.Kind != KNum {
				return Null(), fmt.Errorf("interp: %s: unary minus on non-number", x.Pos)
			}
			return Num(-v.Num), nil
		}
		return Null(), fmt.Errorf("interp: %s: unknown unary op", x.Pos)
	case *dsl.BinaryExpr:
		// Short-circuit for && and ||.
		if x.Op == dsl.TAnd || x.Op == dsl.TOr {
			l, err := in.evalWith(x.L, env, attrScope)
			if err != nil {
				return Null(), err
			}
			if x.Op == dsl.TAnd && !l.Truthy() {
				return Bool(false), nil
			}
			if x.Op == dsl.TOr && l.Truthy() {
				return Bool(true), nil
			}
			r, err := in.evalWith(x.R, env, attrScope)
			if err != nil {
				return Null(), err
			}
			return Bool(r.Truthy()), nil
		}
		l, err := in.evalWith(x.L, env, attrScope)
		if err != nil {
			return Null(), err
		}
		r, err := in.evalWith(x.R, env, attrScope)
		if err != nil {
			return Null(), err
		}
		switch x.Op {
		case dsl.TEq:
			return Bool(l.Equals(r)), nil
		case dsl.TNe:
			return Bool(!l.Equals(r)), nil
		case dsl.TPlus:
			if l.Kind == KStr || r.Kind == KStr {
				return Str(l.String() + r.String()), nil
			}
			if l.Kind == KNum && r.Kind == KNum {
				return Num(l.Num + r.Num), nil
			}
			return Null(), fmt.Errorf("interp: %s: invalid + operands", x.Pos)
		case dsl.TMinus:
			if l.Kind == KNum && r.Kind == KNum {
				return Num(l.Num - r.Num), nil
			}
			return Null(), fmt.Errorf("interp: %s: invalid - operands", x.Pos)
		case dsl.TLt, dsl.TLe, dsl.TGt, dsl.TGe:
			if l.Kind != KNum || r.Kind != KNum {
				return Null(), fmt.Errorf("interp: %s: comparison on non-numbers (%v vs %v)", x.Pos, l.Kind, r.Kind)
			}
			switch x.Op {
			case dsl.TLt:
				return Bool(l.Num < r.Num), nil
			case dsl.TLe:
				return Bool(l.Num <= r.Num), nil
			case dsl.TGt:
				return Bool(l.Num > r.Num), nil
			default:
				return Bool(l.Num >= r.Num), nil
			}
		}
		return Null(), fmt.Errorf("interp: %s: unknown binary op %v", x.Pos, x.Op)
	}
	return Null(), fmt.Errorf("interp: unknown expression %T", e)
}

// ExpandTemplate interpolates [[expr]] holes in a code template.
func (in *Interp) ExpandTemplate(tpl string, env Binding) (string, error) {
	var b strings.Builder
	for {
		i := strings.Index(tpl, "[[")
		if i < 0 {
			b.WriteString(tpl)
			return b.String(), nil
		}
		b.WriteString(tpl[:i])
		rest := tpl[i+2:]
		j := strings.Index(rest, "]]")
		if j < 0 {
			return "", fmt.Errorf("interp: unterminated [[ in template")
		}
		exprSrc := rest[:j]
		e, err := parseTemplateExpr(exprSrc)
		if err != nil {
			return "", fmt.Errorf("interp: template hole %q: %w", exprSrc, err)
		}
		v, err := in.Eval(e, env)
		if err != nil {
			return "", err
		}
		b.WriteString(v.String())
		tpl = rest[j+2:]
	}
}

// parseTemplateExpr parses the expression inside a [[...]] hole by
// wrapping it in a throwaway aspect condition.
func parseTemplateExpr(src string) (dsl.Expr, error) {
	f, err := dsl.Parse("aspectdef __tpl condition " + src + " end end")
	if err != nil {
		return nil, err
	}
	cond := f.Aspects[0].Body[0].(*dsl.ConditionStmt)
	return cond.Cond, nil
}

// DynamicApply is a dynamic weaving registration: an `apply dynamic`
// block captured with its select, condition and environment. The weaver
// arms it at runtime (e.g. as a VM call hook) and calls Fire with the
// runtime join-point bindings.
type DynamicApply struct {
	AspectName string
	Select     *dsl.SelectStmt
	Apply      *dsl.ApplyStmt
	Cond       dsl.Expr
	Env        Binding
	in         *Interp
}

// StaticTuples evaluates the static prefix of the dynamic select (all
// chain parts except trailing runtime-only ones are still meaningful at
// weave time). The weaver uses this to find the join points to arm.
func (d *DynamicApply) StaticTuples() ([]Tuple, error) {
	return d.in.EvalSelect(d.Select, d.Env)
}

// Interp returns the owning interpreter (for evaluating runtime selects).
func (d *DynamicApply) Interp() *Interp { return d.in }

// Fire evaluates the condition with the runtime bindings merged over the
// captured environment and, if it holds, runs the apply actions against
// cur. It returns whether the body ran.
func (d *DynamicApply) Fire(cur JoinPoint, runtime Binding) (bool, error) {
	scope := d.Env.clone()
	for k, v := range runtime {
		scope[k] = v
	}
	if d.Cond != nil {
		ok, err := d.in.evalCond(d.Cond, scope)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	if err := d.in.runActions(d.Apply, cur, scope); err != nil {
		return false, err
	}
	return true, nil
}
