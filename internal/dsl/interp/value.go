// Package interp executes ANTAREX DSL aspects: it evaluates select
// chains against a join-point model, checks conditions, and dispatches
// apply actions (insert / do / call). The join-point model and the
// actions' effects are supplied by an Actions implementation (the weaver),
// keeping the interpreter target-independent.
package interp

import (
	"fmt"
	"strconv"
)

// Kind tags a DSL runtime value.
type Kind int

// Value kinds.
const (
	KNull Kind = iota
	KStr
	KNum
	KBool
	KJoinPoint
	KObject
)

// Value is a DSL runtime value: string, number, boolean, join point, or
// an object of named fields (aspect call outputs).
type Value struct {
	Kind Kind
	Str  string
	Num  float64
	Bool bool
	JP   JoinPoint
	Obj  map[string]Value
}

// Constructors.
func Null() Value           { return Value{Kind: KNull} }
func Str(s string) Value    { return Value{Kind: KStr, Str: s} }
func Num(f float64) Value   { return Value{Kind: KNum, Num: f} }
func Bool(b bool) Value     { return Value{Kind: KBool, Bool: b} }
func JP(jp JoinPoint) Value { return Value{Kind: KJoinPoint, JP: jp} }
func Object(m map[string]Value) Value {
	return Value{Kind: KObject, Obj: m}
}

// Truthy converts to a boolean: non-empty strings, non-zero numbers, true
// booleans, and any join point or object are truthy.
func (v Value) Truthy() bool {
	switch v.Kind {
	case KNull:
		return false
	case KStr:
		return v.Str != ""
	case KNum:
		return v.Num != 0
	case KBool:
		return v.Bool
	case KJoinPoint:
		return v.JP != nil
	case KObject:
		return len(v.Obj) > 0
	}
	return false
}

// String renders the value for template interpolation: strings are raw,
// numbers drop trailing zeros, booleans are true/false.
func (v Value) String() string {
	switch v.Kind {
	case KNull:
		return ""
	case KStr:
		return v.Str
	case KNum:
		return strconv.FormatFloat(v.Num, 'g', -1, 64)
	case KBool:
		if v.Bool {
			return "true"
		}
		return "false"
	case KJoinPoint:
		return fmt.Sprintf("<%s %s>", v.JP.Kind(), v.JP.Name())
	case KObject:
		return fmt.Sprintf("<object %d fields>", len(v.Obj))
	}
	return "<?>"
}

// Equals implements the DSL == operator.
func (v Value) Equals(o Value) bool {
	if v.Kind != o.Kind {
		// Permit number/bool cross comparison (LARA inherits JS laxity).
		if v.Kind == KNum && o.Kind == KBool {
			return (v.Num != 0) == o.Bool
		}
		if v.Kind == KBool && o.Kind == KNum {
			return v.Bool == (o.Num != 0)
		}
		return false
	}
	switch v.Kind {
	case KNull:
		return true
	case KStr:
		return v.Str == o.Str
	case KNum:
		return v.Num == o.Num
	case KBool:
		return v.Bool == o.Bool
	case KJoinPoint:
		return v.JP == o.JP
	}
	return false
}

// JoinPoint is one selectable program point. Implementations live in the
// weaver package (function, loop, call, arg join points over miniC).
type JoinPoint interface {
	// Kind is the join-point type name used in select chains ("fCall",
	// "loop", "arg", "function", ...).
	Kind() string
	// Name is the primary name matched by the {'name'} select shorthand.
	Name() string
	// Attr resolves a named attribute ($loop.numIter, $fCall.location...).
	Attr(name string) (Value, bool)
	// Children returns nested join points of the given kind.
	Children(kind string) []JoinPoint
}

// Actions is the weaver-side interface the interpreter drives.
type Actions interface {
	// Roots returns the top-level join points of the given kind for
	// unrooted selects (e.g. `select fCall end` walks all functions).
	Roots(kind string) []JoinPoint
	// Insert weaves a code fragment before/after/around jp.
	Insert(jp JoinPoint, where, code string) error
	// Do performs a named weaver action (LoopUnroll, ...) on jp.
	Do(jp JoinPoint, action string, args []Value) error
	// CallBuiltin invokes a weaver builtin callable via `call` (e.g.
	// PrepareSpecialize, Specialize, AddVersion). ok=false means the name
	// is not a builtin and should resolve as a user aspect.
	CallBuiltin(name string, args []Value) (out Value, ok bool, err error)
	// RegisterDynamic records a dynamic apply for runtime weaving.
	RegisterDynamic(d *DynamicApply) error
}

// Binding is a variable environment: aspect inputs, call labels, and
// join-point bindings introduced by select chains ($fCall, $loop, $arg).
type Binding map[string]Value

// clone copies the binding so nested scopes do not leak outward.
func (b Binding) clone() Binding {
	c := make(Binding, len(b))
	for k, v := range b {
		c[k] = v
	}
	return c
}
