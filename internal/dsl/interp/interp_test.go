package interp

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/dsl"
)

// fakeJP is a join point backed by maps, for interpreter tests that do
// not need the real weaver.
type fakeJP struct {
	kind     string
	name     string
	attrs    map[string]Value
	children map[string][]JoinPoint
}

func (j *fakeJP) Kind() string { return j.kind }
func (j *fakeJP) Name() string { return j.name }
func (j *fakeJP) Attr(name string) (Value, bool) {
	v, ok := j.attrs[name]
	return v, ok
}
func (j *fakeJP) Children(kind string) []JoinPoint { return j.children[kind] }

// fakeActions records what the interpreter asked for.
type fakeActions struct {
	roots    map[string][]JoinPoint
	inserts  []string
	dos      []string
	builtins map[string]func(args []Value) (Value, error)
	dynamics []*DynamicApply
}

func (a *fakeActions) Roots(kind string) []JoinPoint { return a.roots[kind] }
func (a *fakeActions) Insert(jp JoinPoint, where, code string) error {
	a.inserts = append(a.inserts, fmt.Sprintf("%s@%s:%s", where, jp.Name(), code))
	return nil
}
func (a *fakeActions) Do(jp JoinPoint, action string, args []Value) error {
	parts := []string{action, jp.Name()}
	for _, v := range args {
		parts = append(parts, v.String())
	}
	a.dos = append(a.dos, strings.Join(parts, "/"))
	return nil
}
func (a *fakeActions) CallBuiltin(name string, args []Value) (Value, bool, error) {
	fn, ok := a.builtins[name]
	if !ok {
		return Null(), false, nil
	}
	v, err := fn(args)
	return v, true, err
}
func (a *fakeActions) RegisterDynamic(d *DynamicApply) error {
	a.dynamics = append(a.dynamics, d)
	return nil
}

func call(name, loc, argList string) *fakeJP {
	return &fakeJP{
		kind: "fCall", name: name,
		attrs: map[string]Value{
			"name":     Str(name),
			"location": Str(loc),
			"argList":  Str(argList),
		},
	}
}

func TestProfileArgumentsAspect(t *testing.T) {
	src := `
aspectdef ProfileArguments
	input funcName end
	select fCall end
	apply
		insert before %{profile_args('[[funcName]]', [[$fCall.location]], [[$fCall.argList]]);}%;
	end
	condition $fCall.name == funcName end
end
`
	f, err := dsl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	act := &fakeActions{roots: map[string][]JoinPoint{
		"fCall": {
			call("kernel", "f.c:3:5", "buf, 16"),
			call("other", "f.c:4:5", "x"),
			call("kernel", "f.c:9:5", "buf, 32"),
		},
	}}
	in := New(f, act)
	if _, err := in.Run("ProfileArguments", Str("kernel")); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(act.inserts) != 2 {
		t.Fatalf("inserts: %v", act.inserts)
	}
	want := "before@kernel:profile_args('kernel', f.c:3:5, buf, 16);"
	if act.inserts[0] != want {
		t.Errorf("insert[0] = %q, want %q", act.inserts[0], want)
	}
}

func TestSelectChainWithFilterAndShorthand(t *testing.T) {
	loop := func(typ string, inner bool, n float64) *fakeJP {
		return &fakeJP{kind: "loop", name: typ, attrs: map[string]Value{
			"type": Str(typ), "isInnermost": Bool(inner), "numIter": Num(n),
		}}
	}
	fn := &fakeJP{
		kind: "function", name: "kernel",
		attrs: map[string]Value{"name": Str("kernel")},
		children: map[string][]JoinPoint{
			"loop": {loop("for", true, 4), loop("for", false, 100), loop("while", true, -1)},
		},
	}
	src := `
aspectdef U
	input $func, threshold end
	select $func.loop{type=='for'} end
	apply
		do LoopUnroll('full');
	end
	condition $loop.isInnermost && $loop.numIter <= threshold end
end
`
	f, err := dsl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	act := &fakeActions{roots: map[string][]JoinPoint{}}
	in := New(f, act)
	if _, err := in.Run("U", JP(fn), Num(8)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Only the innermost for loop with numIter 4 <= 8 qualifies.
	if len(act.dos) != 1 || act.dos[0] != "LoopUnroll/for/full" {
		t.Errorf("dos: %v", act.dos)
	}
}

func TestAspectCallsAndOutputs(t *testing.T) {
	src := `
aspectdef Leaf
	input x end
	output y end
end

aspectdef Root
	input v end
	call r: Leaf(v);
	call b: Builtin(v, 'lit');
end
`
	f, err := dsl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	var builtinArgs []Value
	act := &fakeActions{
		roots: map[string][]JoinPoint{},
		builtins: map[string]func([]Value) (Value, error){
			"Builtin": func(args []Value) (Value, error) {
				builtinArgs = args
				return Object(map[string]Value{"out": Num(42)}), nil
			},
		},
	}
	in := New(f, act)
	if _, err := in.Run("Root", Num(7)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(builtinArgs) != 2 || builtinArgs[0].Num != 7 || builtinArgs[1].Str != "lit" {
		t.Errorf("builtin args: %v", builtinArgs)
	}
}

func TestUndefinedAspectAndVariableErrors(t *testing.T) {
	f, err := dsl.Parse(`
aspectdef A
	call Nope();
end
aspectdef B
	select fCall end
	apply
		do X(missing);
	end
end
`)
	if err != nil {
		t.Fatal(err)
	}
	act := &fakeActions{roots: map[string][]JoinPoint{
		"fCall": {call("k", "l", "a")},
	}}
	in := New(f, act)
	if _, err := in.Run("A"); err == nil || !strings.Contains(err.Error(), "undefined aspect") {
		t.Errorf("A: %v", err)
	}
	if _, err := in.Run("B"); err == nil || !strings.Contains(err.Error(), "undefined variable") {
		t.Errorf("B: %v", err)
	}
	if _, err := in.Run("NoSuch"); err == nil {
		t.Error("NoSuch: expected error")
	}
}

func TestDynamicApplyRegistersAndFires(t *testing.T) {
	src := `
aspectdef Dyn
	input lowT, highT end
	select fCall{'kernel'}.arg{'size'} end
	apply dynamic
		do Specialize($arg.runtimeValue);
	end
	condition $arg.runtimeValue >= lowT && $arg.runtimeValue <= highT end
end
`
	f, err := dsl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	argJP := &fakeJP{kind: "arg", name: "size", attrs: map[string]Value{"name": Str("size")}}
	callJP := call("kernel", "f.c:1:1", "buf, n")
	callJP.children = map[string][]JoinPoint{"arg": {argJP}}
	act := &fakeActions{roots: map[string][]JoinPoint{"fCall": {callJP}}}
	in := New(f, act)
	if _, err := in.Run("Dyn", Num(4), Num(64)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Static execution registers, does not act.
	if len(act.dos) != 0 {
		t.Fatalf("static run performed actions: %v", act.dos)
	}
	if len(act.dynamics) != 1 {
		t.Fatalf("dynamics: %d", len(act.dynamics))
	}
	d := act.dynamics[0]

	// Static prefix finds the kernel call-site arg.
	tuples, err := d.StaticTuples()
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 1 || tuples[0].Last.Kind() != "arg" {
		t.Fatalf("static tuples: %+v", tuples)
	}

	// Fire with runtime value inside range: body runs.
	rt := &fakeJP{kind: "arg", name: "size", attrs: map[string]Value{
		"name": Str("size"), "runtimeValue": Num(16),
	}}
	ran, err := d.Fire(rt, Binding{"arg": JP(rt)})
	if err != nil {
		t.Fatal(err)
	}
	if !ran || len(act.dos) != 1 || act.dos[0] != "Specialize/size/16" {
		t.Errorf("fire in range: ran=%v dos=%v", ran, act.dos)
	}

	// Fire outside range: condition blocks.
	rt2 := &fakeJP{kind: "arg", name: "size", attrs: map[string]Value{
		"name": Str("size"), "runtimeValue": Num(1000),
	}}
	ran, err = d.Fire(rt2, Binding{"arg": JP(rt2)})
	if err != nil {
		t.Fatal(err)
	}
	if ran || len(act.dos) != 1 {
		t.Errorf("fire out of range: ran=%v dos=%v", ran, act.dos)
	}
}

func TestTemplateExpansion(t *testing.T) {
	in := New(&dsl.File{Aspects: []*dsl.Aspect{{Name: "x"}}}, &fakeActions{})
	env := Binding{"a": Str("hello"), "n": Num(4.5), "b": Bool(true)}
	got, err := in.ExpandTemplate("f([[a]], [[n]], [[b]], [[n + 1]]);", env)
	if err != nil {
		t.Fatal(err)
	}
	want := "f(hello, 4.5, true, 5.5);"
	if got != want {
		t.Errorf("got %q, want %q", got, want)
	}
	if _, err := in.ExpandTemplate("bad [[unclosed", env); err == nil {
		t.Error("expected error for unterminated hole")
	}
	if _, err := in.ExpandTemplate("[[nosuchvar]]", env); err == nil {
		t.Error("expected error for undefined variable in hole")
	}
}

func TestValueSemantics(t *testing.T) {
	if !Str("x").Truthy() || Str("").Truthy() {
		t.Error("string truthiness")
	}
	if !Num(1).Truthy() || Num(0).Truthy() {
		t.Error("number truthiness")
	}
	if !Num(1).Equals(Bool(true)) || !Bool(false).Equals(Num(0)) {
		t.Error("cross-kind equality")
	}
	if Str("1").Equals(Num(1)) {
		t.Error("string/number must not be equal")
	}
	if Num(2.5).String() != "2.5" || Bool(true).String() != "true" {
		t.Error("string rendering")
	}
}

func TestConditionWithoutApplyIsError(t *testing.T) {
	f, err := dsl.Parse(`
aspectdef C
	condition 1 == 1 end
end
`)
	if err != nil {
		t.Fatal(err)
	}
	in := New(f, &fakeActions{})
	if _, err := in.Run("C"); err == nil {
		t.Error("expected error for condition without apply")
	}
}

func TestStringConcatAndArith(t *testing.T) {
	f, _ := dsl.Parse(`aspectdef T condition 1 end end`)
	in := New(f, &fakeActions{})
	env := Binding{"s": Str("ab"), "n": Num(3)}
	cases := []struct {
		src  string
		want string
	}{
		{"s + 'c'", "abc"},
		{"n + 2", "5"},
		{"n - 1", "2"},
		{"-n", "-3"},
		{"!(n == 3)", "false"},
	}
	for _, c := range cases {
		e, err := parseTemplateExpr(c.src)
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		v, err := in.Eval(e, env)
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		if v.String() != c.want {
			t.Errorf("%s = %q, want %q", c.src, v.String(), c.want)
		}
	}
}
