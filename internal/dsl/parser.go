package dsl

import (
	"strconv"
)

// Parse parses DSL source into a File of aspect definitions.
func Parse(src string) (*File, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	f := &File{}
	for !p.atEOF() {
		a, err := p.aspect()
		if err != nil {
			return nil, err
		}
		f.Aspects = append(f.Aspects, a)
	}
	if len(f.Aspects) == 0 {
		return nil, &Error{Pos: Pos{Line: 1, Col: 1}, Msg: "no aspect definitions found"}
	}
	return f, nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) atEOF() bool { return p.pos >= len(p.toks) }

func (p *parser) cur() Token {
	if p.atEOF() {
		last := Pos{1, 1}
		if len(p.toks) > 0 {
			last = p.toks[len(p.toks)-1].Pos
		}
		return Token{Kind: TEOF, Pos: last}
	}
	return p.toks[p.pos]
}

func (p *parser) next() Token {
	t := p.cur()
	p.pos++
	return t
}

func (p *parser) accept(kind TokenKind) bool {
	if p.cur().Kind == kind {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind TokenKind) (Token, error) {
	t := p.cur()
	if t.Kind != kind {
		return Token{}, p.errorf("expected %s, found %s %q", kind, t.Kind, t.Text)
	}
	p.pos++
	return t, nil
}

func (p *parser) errorf(format string, args ...any) error {
	return Errorf(p.cur().Pos, format, args...)
}

// aspect := 'aspectdef' IDENT body* 'end'
func (p *parser) aspect() (*Aspect, error) {
	kw, err := p.expect(TAspectdef)
	if err != nil {
		return nil, err
	}
	name, err := p.expect(TIdent)
	if err != nil {
		return nil, err
	}
	a := &Aspect{Name: name.Text, Pos: kw.Pos}
	for {
		switch p.cur().Kind {
		case TEnd:
			p.pos++
			return a, nil
		case TEOF:
			return nil, p.errorf("unterminated aspectdef %s", a.Name)
		case TInput:
			p.pos++
			names, err := p.nameList()
			if err != nil {
				return nil, err
			}
			a.Inputs = append(a.Inputs, names...)
		case TOutput:
			p.pos++
			names, err := p.nameList()
			if err != nil {
				return nil, err
			}
			a.Outputs = append(a.Outputs, names...)
		case TSelect:
			s, err := p.selectStmt()
			if err != nil {
				return nil, err
			}
			a.Body = append(a.Body, s)
		case TApply:
			s, err := p.applyStmt()
			if err != nil {
				return nil, err
			}
			a.Body = append(a.Body, s)
		case TCondition:
			s, err := p.conditionStmt()
			if err != nil {
				return nil, err
			}
			a.Body = append(a.Body, s)
		case TCall:
			c, err := p.callClause()
			if err != nil {
				return nil, err
			}
			a.Body = append(a.Body, &CallStmt{Label: c.Label, Aspect: c.Aspect, Args: c.Args, Pos: c.Pos})
		default:
			return nil, p.errorf("unexpected %s %q in aspectdef %s", p.cur().Kind, p.cur().Text, a.Name)
		}
	}
}

// nameList := name (',' name)* 'end'   where name is IDENT or $VAR.
func (p *parser) nameList() ([]string, error) {
	var names []string
	for {
		t := p.cur()
		if t.Kind != TIdent && t.Kind != TVar {
			return nil, p.errorf("expected parameter name, found %s %q", t.Kind, t.Text)
		}
		p.pos++
		names = append(names, t.Text)
		if p.accept(TComma) {
			continue
		}
		if _, err := p.expect(TEnd); err != nil {
			return nil, err
		}
		return names, nil
	}
}

// selectStmt := 'select' [ $VAR '.' ] part ('.' part)* 'end'
func (p *parser) selectStmt() (*SelectStmt, error) {
	kw, _ := p.expect(TSelect)
	s := &SelectStmt{Pos: kw.Pos}
	if p.cur().Kind == TVar {
		s.Root = p.next().Text
		if _, err := p.expect(TDot); err != nil {
			return nil, err
		}
	}
	for {
		part, err := p.selectPart()
		if err != nil {
			return nil, err
		}
		s.Chain = append(s.Chain, part)
		if p.accept(TDot) {
			continue
		}
		if _, err := p.expect(TEnd); err != nil {
			return nil, err
		}
		return s, nil
	}
}

// selectPart := IDENT [ '{' (STRING | expr) '}' ]
func (p *parser) selectPart() (SelectPart, error) {
	kind, err := p.expect(TIdent)
	if err != nil {
		return SelectPart{}, err
	}
	part := SelectPart{Kind: kind.Text}
	if p.accept(TLBrace) {
		// Disambiguate the {'name'} shorthand from filter expressions:
		// a lone string literal is the shorthand.
		if p.cur().Kind == TString && p.pos+1 < len(p.toks) && p.toks[p.pos+1].Kind == TRBrace {
			part.NameLit = p.next().Text
		} else {
			e, err := p.expr()
			if err != nil {
				return SelectPart{}, err
			}
			part.Filter = e
		}
		if _, err := p.expect(TRBrace); err != nil {
			return SelectPart{}, err
		}
	}
	return part, nil
}

// applyStmt := 'apply' ['dynamic'] action* 'end'
func (p *parser) applyStmt() (*ApplyStmt, error) {
	kw, _ := p.expect(TApply)
	s := &ApplyStmt{Pos: kw.Pos}
	if p.accept(TDynamic) {
		s.Dynamic = true
	}
	for {
		switch p.cur().Kind {
		case TEnd:
			p.pos++
			return s, nil
		case TEOF:
			return nil, p.errorf("unterminated apply")
		case TInsert:
			a, err := p.insertAction()
			if err != nil {
				return nil, err
			}
			s.Body = append(s.Body, a)
		case TDo:
			a, err := p.doAction()
			if err != nil {
				return nil, err
			}
			s.Body = append(s.Body, a)
		case TCall:
			a, err := p.callClause()
			if err != nil {
				return nil, err
			}
			s.Body = append(s.Body, a)
		default:
			return nil, p.errorf("unexpected %s %q in apply", p.cur().Kind, p.cur().Text)
		}
	}
}

// insertAction := 'insert' ('before'|'after'|'around') TEMPLATE [';']
func (p *parser) insertAction() (*InsertAction, error) {
	kw, _ := p.expect(TInsert)
	var where string
	switch p.cur().Kind {
	case TBefore:
		where = "before"
	case TAfter:
		where = "after"
	case TAround:
		where = "around"
	default:
		return nil, p.errorf("expected before/after/around, found %q", p.cur().Text)
	}
	p.pos++
	tpl, err := p.expect(TTemplate)
	if err != nil {
		return nil, err
	}
	p.accept(TSemi)
	return &InsertAction{Where: where, Template: tpl.Text, Pos: kw.Pos}, nil
}

// doAction := 'do' IDENT '(' args ')' [';']
func (p *parser) doAction() (*DoAction, error) {
	kw, _ := p.expect(TDo)
	name, err := p.expect(TIdent)
	if err != nil {
		return nil, err
	}
	args, err := p.argList()
	if err != nil {
		return nil, err
	}
	p.accept(TSemi)
	return &DoAction{Name: name.Text, Args: args, Pos: kw.Pos}, nil
}

// callClause := 'call' [label ':'] IDENT '(' args ')' [';']
func (p *parser) callClause() (*CallAction, error) {
	kw, _ := p.expect(TCall)
	first, err := p.expect(TIdent)
	if err != nil {
		return nil, err
	}
	c := &CallAction{Pos: kw.Pos}
	if p.accept(TColon) {
		c.Label = first.Text
		name, err := p.expect(TIdent)
		if err != nil {
			return nil, err
		}
		c.Aspect = name.Text
	} else {
		c.Aspect = first.Text
	}
	args, err := p.argList()
	if err != nil {
		return nil, err
	}
	c.Args = args
	p.accept(TSemi)
	return c, nil
}

func (p *parser) argList() ([]Expr, error) {
	if _, err := p.expect(TLParen); err != nil {
		return nil, err
	}
	var args []Expr
	if p.accept(TRParen) {
		return args, nil
	}
	for {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		args = append(args, e)
		if p.accept(TComma) {
			continue
		}
		if _, err := p.expect(TRParen); err != nil {
			return nil, err
		}
		return args, nil
	}
}

// conditionStmt := 'condition' expr 'end'
func (p *parser) conditionStmt() (*ConditionStmt, error) {
	kw, _ := p.expect(TCondition)
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TEnd); err != nil {
		return nil, err
	}
	return &ConditionStmt{Cond: e, Pos: kw.Pos}, nil
}

// Expression precedence: || < && < comparison < additive < unary < member.
func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	return p.binLevel(p.andExpr, TOr)
}

func (p *parser) andExpr() (Expr, error) {
	return p.binLevel(p.cmpExpr, TAnd)
}

func (p *parser) cmpExpr() (Expr, error) {
	return p.binLevel(p.addExpr, TEq, TNe, TLt, TLe, TGt, TGe)
}

func (p *parser) addExpr() (Expr, error) {
	return p.binLevel(p.unaryExpr, TPlus, TMinus)
}

func (p *parser) binLevel(sub func() (Expr, error), kinds ...TokenKind) (Expr, error) {
	lhs, err := sub()
	if err != nil {
		return nil, err
	}
	for {
		k := p.cur().Kind
		match := false
		for _, want := range kinds {
			if k == want {
				match = true
				break
			}
		}
		if !match {
			return lhs, nil
		}
		op := p.next()
		rhs, err := sub()
		if err != nil {
			return nil, err
		}
		lhs = &BinaryExpr{Op: op.Kind, L: lhs, R: rhs, Pos: op.Pos}
	}
}

func (p *parser) unaryExpr() (Expr, error) {
	t := p.cur()
	if t.Kind == TNot || t.Kind == TMinus {
		p.pos++
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: t.Kind, X: x, Pos: t.Pos}, nil
	}
	return p.memberExpr()
}

func (p *parser) memberExpr() (Expr, error) {
	e, err := p.primaryExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(TDot) {
		t := p.cur()
		switch t.Kind {
		case TIdent:
			p.pos++
			e = &MemberExpr{X: e, Name: t.Text, Pos: t.Pos}
		case TVar:
			p.pos++
			e = &MemberExpr{X: e, Name: t.Text, Dollar: true, Pos: t.Pos}
		default:
			return nil, p.errorf("expected attribute name after '.', found %s %q", t.Kind, t.Text)
		}
	}
	return e, nil
}

func (p *parser) primaryExpr() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TVar:
		p.pos++
		return &VarRef{Name: t.Text, Dollar: true, Pos: t.Pos}, nil
	case TIdent:
		p.pos++
		return &VarRef{Name: t.Text, Pos: t.Pos}, nil
	case TString:
		p.pos++
		return &StringLit{Value: t.Text, Pos: t.Pos}, nil
	case TNumber:
		p.pos++
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, p.errorf("invalid number %q", t.Text)
		}
		return &NumberLit{Value: v, Pos: t.Pos}, nil
	case TLParen:
		p.pos++
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TRParen); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, p.errorf("unexpected %s %q in expression", t.Kind, t.Text)
}
