package dsl

// File is a parsed DSL source file: a set of aspect definitions.
type File struct {
	Aspects []*Aspect
}

// Aspect returns the aspect named name, or nil.
func (f *File) Aspect(name string) *Aspect {
	for _, a := range f.Aspects {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Aspect is one aspectdef: the basic modular unit of the DSL.
type Aspect struct {
	Name    string
	Inputs  []string // input parameter names ($ prefix stripped)
	Outputs []string
	Body    []Stmt
	Pos     Pos
}

// Stmt is an aspect body statement.
type Stmt interface {
	Position() Pos
	stmt()
}

// SelectStmt captures join points: a chain of parts, optionally rooted at
// an input variable (e.g. `select $func.loop{type=='for'} end`).
type SelectStmt struct {
	// Root is the variable name the chain starts from ("" when the chain
	// is rooted at the whole target program, e.g. `select fCall end`).
	Root  string
	Chain []SelectPart
	Pos   Pos
}

// SelectPart is one step of a select chain: a join-point kind plus an
// optional filter: `{type=='for'}` (attribute expression) or `{'kernel'}`
// (shorthand matching the join point's primary name).
type SelectPart struct {
	Kind    string
	NameLit string // non-empty for the {'name'} shorthand
	Filter  Expr   // non-nil for {expr} filters
}

// ApplyStmt acts over the join points selected by the preceding select,
// constrained by the aspect's condition. Dynamic applies are deferred to
// run time (dynamic weaving).
type ApplyStmt struct {
	Dynamic bool
	Body    []Action
	Pos     Pos
}

// ConditionStmt constrains the apply to join-point tuples for which the
// expression is true.
type ConditionStmt struct {
	Cond Expr
	Pos  Pos
}

// CallStmt invokes another aspect (or a weaver builtin) at the aspect's
// top level, optionally binding its outputs to a label:
// `call spCall: PrepareSpecialize('kernel','size');`.
type CallStmt struct {
	Label  string
	Aspect string
	Args   []Expr
	Pos    Pos
}

func (s *SelectStmt) Position() Pos    { return s.Pos }
func (s *ApplyStmt) Position() Pos     { return s.Pos }
func (s *ConditionStmt) Position() Pos { return s.Pos }
func (s *CallStmt) Position() Pos      { return s.Pos }

func (*SelectStmt) stmt()    {}
func (*ApplyStmt) stmt()     {}
func (*ConditionStmt) stmt() {}
func (*CallStmt) stmt()      {}

// Action is a statement allowed inside apply blocks.
type Action interface {
	Position() Pos
	action()
}

// InsertAction injects a code template before/after/around the selected
// join point: `insert before %{...}%;`. Templates may interpolate DSL
// expressions with [[expr]].
type InsertAction struct {
	Where    string // "before", "after", "around"
	Template string
	Pos      Pos
}

// DoAction invokes a weaver action on the selected join point:
// `do LoopUnroll('full');`.
type DoAction struct {
	Name string
	Args []Expr
	Pos  Pos
}

// CallAction invokes an aspect from inside an apply:
// `call spOut : Specialize($fCall, $arg.name, $arg.runtimeValue);`.
type CallAction struct {
	Label  string
	Aspect string
	Args   []Expr
	Pos    Pos
}

func (a *InsertAction) Position() Pos { return a.Pos }
func (a *DoAction) Position() Pos     { return a.Pos }
func (a *CallAction) Position() Pos   { return a.Pos }

func (*InsertAction) action() {}
func (*DoAction) action()     {}
func (*CallAction) action()   {}

// Expr is a DSL expression node.
type Expr interface {
	Position() Pos
	expr()
}

// VarRef references a join-point binding or aspect input: $loop, $fCall,
// or a plain input name like threshold, or a call label like spOut.
type VarRef struct {
	Name   string
	Dollar bool // written with $ prefix
	Pos    Pos
}

// MemberExpr accesses an attribute: $fCall.name, spOut.$func.
type MemberExpr struct {
	X      Expr
	Name   string
	Dollar bool // attribute written with $ prefix (spOut.$func)
	Pos    Pos
}

// StringLit is a '...' literal.
type StringLit struct {
	Value string
	Pos   Pos
}

// NumberLit is a numeric literal.
type NumberLit struct {
	Value float64
	Pos   Pos
}

// BinaryExpr is a binary operation; Op is the operator token kind.
type BinaryExpr struct {
	Op   TokenKind
	L, R Expr
	Pos  Pos
}

// UnaryExpr is !x or -x.
type UnaryExpr struct {
	Op  TokenKind
	X   Expr
	Pos Pos
}

func (e *VarRef) Position() Pos     { return e.Pos }
func (e *MemberExpr) Position() Pos { return e.Pos }
func (e *StringLit) Position() Pos  { return e.Pos }
func (e *NumberLit) Position() Pos  { return e.Pos }
func (e *BinaryExpr) Position() Pos { return e.Pos }
func (e *UnaryExpr) Position() Pos  { return e.Pos }

func (*VarRef) expr()     {}
func (*MemberExpr) expr() {}
func (*StringLit) expr()  {}
func (*NumberLit) expr()  {}
func (*BinaryExpr) expr() {}
func (*UnaryExpr) expr()  {}
