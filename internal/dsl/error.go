package dsl

import "fmt"

// Error is a structured DSL front-end error: a source position plus a
// message. Lex and Parse return *Error so downstream compilers — the
// policy pipeline that turns tenant-POSTed aspect source into 400
// responses with line/col diagnostics — can surface the position
// without parsing strings. The rendered form stays "dsl: line:col: msg".
type Error struct {
	Pos Pos
	Msg string
}

// Errorf builds a positioned DSL error.
func Errorf(pos Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// Error implements error.
func (e *Error) Error() string { return fmt.Sprintf("dsl: %s: %s", e.Pos, e.Msg) }
