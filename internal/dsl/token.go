// Package dsl implements the ANTAREX aspect DSL of the paper's Section
// III: a LARA-inspired aspect-oriented language whose grammar accepts the
// three aspect programs of Figs. 2–4 verbatim.
//
// An aspect (aspectdef) bundles select / apply / condition statements:
// select captures join points in the target program (function calls,
// loops, arguments), apply acts over them (inserting code, unrolling
// loops, calling other aspects), and condition constrains which selected
// join points the apply runs on. `apply dynamic` defers the body to run
// time, driven by runtime values — the paper's dynamic weaving.
//
// This package covers the front end (tokens, grammar, AST); execution
// lives in dsl/interp and join-point binding in the weaver package,
// preserving the separation between language, semantics and target.
package dsl

import "fmt"

// TokenKind enumerates DSL token classes.
type TokenKind int

// Token kinds.
const (
	TEOF TokenKind = iota
	TIdent
	TVar // $identifier
	TString
	TNumber
	TTemplate // %{ ... }% code template

	// Keywords.
	TAspectdef
	TInput
	TOutput
	TEnd
	TSelect
	TApply
	TCondition
	TCall
	TInsert
	TBefore
	TAfter
	TAround
	TDo
	TDynamic

	// Punctuation.
	TLParen
	TRParen
	TLBrace
	TRBrace
	TDot
	TComma
	TColon
	TSemi
	TEq     // ==
	TNe     // !=
	TLt     // <
	TLe     // <=
	TGt     // >
	TGe     // >=
	TAnd    // &&
	TOr     // ||
	TNot    // !
	TPlus   // +
	TMinus  // -
	TAssign // =
)

var dslTokenNames = map[TokenKind]string{
	TEOF: "EOF", TIdent: "identifier", TVar: "$variable",
	TString: "string", TNumber: "number", TTemplate: "code template",
	TAspectdef: "aspectdef", TInput: "input", TOutput: "output",
	TEnd: "end", TSelect: "select", TApply: "apply",
	TCondition: "condition", TCall: "call", TInsert: "insert",
	TBefore: "before", TAfter: "after", TAround: "around", TDo: "do",
	TDynamic: "dynamic",
	TLParen:  "(", TRParen: ")", TLBrace: "{", TRBrace: "}", TDot: ".",
	TComma: ",", TColon: ":", TSemi: ";", TEq: "==", TNe: "!=",
	TLt: "<", TLe: "<=", TGt: ">", TGe: ">=", TAnd: "&&", TOr: "||",
	TNot: "!", TPlus: "+", TMinus: "-", TAssign: "=",
}

// String returns the token kind's display name.
func (k TokenKind) String() string {
	if s, ok := dslTokenNames[k]; ok {
		return s
	}
	return fmt.Sprintf("TokenKind(%d)", int(k))
}

var dslKeywords = map[string]TokenKind{
	"aspectdef": TAspectdef, "input": TInput, "output": TOutput,
	"end": TEnd, "select": TSelect, "apply": TApply,
	"condition": TCondition, "call": TCall, "insert": TInsert,
	"before": TBefore, "after": TAfter, "around": TAround, "do": TDo,
	"dynamic": TDynamic,
}

// Pos is a 1-based source position.
type Pos struct {
	Line, Col int
}

// String formats as line:col.
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one DSL lexical unit.
type Token struct {
	Kind TokenKind
	Text string
	Pos  Pos
}

type lexer struct {
	src  string
	off  int
	line int
	col  int
}

func (l *lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

// Lex scans the whole source into tokens (EOF excluded).
func Lex(src string) ([]Token, error) {
	l := &lexer{src: src, line: 1, col: 1}
	var toks []Token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		if t.Kind == TEOF {
			return toks, nil
		}
		toks = append(toks, t)
	}
}

func (l *lexer) next() (Token, error) {
	// Skip whitespace and // comments.
	for l.off < len(l.src) {
		c := l.peek()
		if c == ' ' || c == '\t' || c == '\r' || c == '\n' {
			l.advance()
			continue
		}
		if c == '/' && l.peek2() == '/' {
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
			continue
		}
		break
	}
	pos := Pos{l.line, l.col}
	if l.off >= len(l.src) {
		return Token{Kind: TEOF, Pos: pos}, nil
	}
	c := l.peek()
	switch {
	case c == '$':
		l.advance()
		start := l.off
		for l.off < len(l.src) && isWord(l.peek()) {
			l.advance()
		}
		if l.off == start {
			return Token{}, Errorf(pos, "bare '$'")
		}
		return Token{Kind: TVar, Text: l.src[start:l.off], Pos: pos}, nil
	case isWordStart(c):
		start := l.off
		for l.off < len(l.src) && isWord(l.peek()) {
			l.advance()
		}
		text := l.src[start:l.off]
		if kw, ok := dslKeywords[text]; ok {
			return Token{Kind: kw, Text: text, Pos: pos}, nil
		}
		return Token{Kind: TIdent, Text: text, Pos: pos}, nil
	case c >= '0' && c <= '9':
		start := l.off
		for l.off < len(l.src) && (isDigitB(l.peek()) || l.peek() == '.') {
			l.advance()
		}
		return Token{Kind: TNumber, Text: l.src[start:l.off], Pos: pos}, nil
	case c == '\'':
		l.advance()
		var buf []byte
		for {
			if l.off >= len(l.src) {
				return Token{}, Errorf(pos, "unterminated string")
			}
			ch := l.advance()
			if ch == '\'' {
				break
			}
			if ch == '\\' && l.off < len(l.src) {
				buf = append(buf, l.advance())
				continue
			}
			buf = append(buf, ch)
		}
		return Token{Kind: TString, Text: string(buf), Pos: pos}, nil
	case c == '%' && l.peek2() == '{':
		l.advance()
		l.advance()
		start := l.off
		for {
			if l.off+1 >= len(l.src) {
				return Token{}, Errorf(pos, "unterminated %%{ template")
			}
			if l.peek() == '}' && l.peek2() == '%' {
				text := l.src[start:l.off]
				l.advance()
				l.advance()
				return Token{Kind: TTemplate, Text: text, Pos: pos}, nil
			}
			l.advance()
		}
	}
	two := func(kind TokenKind, text string) (Token, error) {
		l.advance()
		l.advance()
		return Token{Kind: kind, Text: text, Pos: pos}, nil
	}
	one := func(kind TokenKind) (Token, error) {
		l.advance()
		return Token{Kind: kind, Text: string(c), Pos: pos}, nil
	}
	d := l.peek2()
	switch c {
	case '(':
		return one(TLParen)
	case ')':
		return one(TRParen)
	case '{':
		return one(TLBrace)
	case '}':
		return one(TRBrace)
	case '.':
		return one(TDot)
	case ',':
		return one(TComma)
	case ':':
		return one(TColon)
	case ';':
		return one(TSemi)
	case '=':
		if d == '=' {
			return two(TEq, "==")
		}
		return one(TAssign)
	case '!':
		if d == '=' {
			return two(TNe, "!=")
		}
		return one(TNot)
	case '<':
		if d == '=' {
			return two(TLe, "<=")
		}
		return one(TLt)
	case '>':
		if d == '=' {
			return two(TGe, ">=")
		}
		return one(TGt)
	case '&':
		if d == '&' {
			return two(TAnd, "&&")
		}
	case '|':
		if d == '|' {
			return two(TOr, "||")
		}
	case '+':
		return one(TPlus)
	case '-':
		return one(TMinus)
	}
	return Token{}, Errorf(pos, "unexpected character %q", c)
}

func isWordStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isWord(c byte) bool { return isWordStart(c) || isDigitB(c) }

func isDigitB(c byte) bool { return c >= '0' && c <= '9' }
