package monitor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWindowBasics(t *testing.T) {
	w := NewWindow(4)
	if w.Len() != 0 || w.Mean() != 0 || w.Min() != 0 || w.Max() != 0 {
		t.Error("empty window should report zeros")
	}
	for _, v := range []float64{1, 2, 3, 4} {
		w.Push(v)
	}
	if w.Mean() != 2.5 || w.Min() != 1 || w.Max() != 4 || w.Len() != 4 {
		t.Errorf("stats: mean=%v min=%v max=%v", w.Mean(), w.Min(), w.Max())
	}
	// Eviction: pushing 5 evicts 1.
	w.Push(5)
	if w.Mean() != 3.5 || w.Min() != 2 || w.Len() != 4 {
		t.Errorf("after eviction: mean=%v min=%v len=%d", w.Mean(), w.Min(), w.Len())
	}
	if w.Total() != 5 {
		t.Errorf("total: %d", w.Total())
	}
	w.Reset()
	if w.Len() != 0 || w.Total() != 5 {
		t.Error("reset should clear live samples but keep lifetime count")
	}
}

func TestWindowVarianceMatchesDirect(t *testing.T) {
	w := NewWindow(8)
	vals := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, v := range vals {
		w.Push(v)
	}
	if math.Abs(w.Variance()-4) > 1e-9 {
		t.Errorf("variance %v, want 4", w.Variance())
	}
	if math.Abs(w.StdDev()-2) > 1e-9 {
		t.Errorf("stddev %v, want 2", w.StdDev())
	}
}

func TestPercentile(t *testing.T) {
	w := NewWindow(100)
	for i := 1; i <= 100; i++ {
		w.Push(float64(i))
	}
	if p := w.Percentile(0); p != 1 {
		t.Errorf("p0 = %v", p)
	}
	if p := w.Percentile(100); p != 100 {
		t.Errorf("p100 = %v", p)
	}
	if p := w.Percentile(50); math.Abs(p-50.5) > 1 {
		t.Errorf("p50 = %v", p)
	}
	if p := w.Percentile(95); p < 94 || p > 97 {
		t.Errorf("p95 = %v", p)
	}
}

// Property: windowed mean equals direct mean of the last `size` samples.
func TestWindowMeanProperty(t *testing.T) {
	f := func(raw []float64, szRaw uint8) bool {
		size := int(szRaw%16) + 1
		w := NewWindow(size)
		var clean []float64
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e9 {
				continue
			}
			clean = append(clean, v)
			w.Push(v)
		}
		if len(clean) == 0 {
			return w.Len() == 0
		}
		start := len(clean) - size
		if start < 0 {
			start = 0
		}
		var sum float64
		for _, v := range clean[start:] {
			sum += v
		}
		want := sum / float64(len(clean)-start)
		return math.Abs(w.Mean()-want) < 1e-6*(1+math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Initialized() {
		t.Error("fresh EWMA should be uninitialized")
	}
	e.Push(10)
	if e.Value() != 10 {
		t.Errorf("first sample: %v", e.Value())
	}
	e.Push(20)
	if e.Value() != 15 {
		t.Errorf("after 20: %v", e.Value())
	}
	// Converges toward a steady input.
	for i := 0; i < 50; i++ {
		e.Push(100)
	}
	if math.Abs(e.Value()-100) > 0.01 {
		t.Errorf("convergence: %v", e.Value())
	}
}

func TestGoalCheck(t *testing.T) {
	s := Summary{Count: 10, Mean: 2.0, P95: 3.0, Max: 5.0}
	cases := []struct {
		g    Goal
		ok   bool
		vMin float64
	}{
		{Goal{Metric: MetricLatency, Relation: AtMost, Target: 2.5}, true, 0},
		{Goal{Metric: MetricLatency, Relation: AtMost, Target: 1.0}, false, 0.9},
		{Goal{Metric: MetricThroughput, Relation: AtLeast, Target: 1.0}, true, 0},
		{Goal{Metric: MetricThroughput, Relation: AtLeast, Target: 4.0}, false, 0.4},
		{Goal{Metric: MetricLatency, Stat: "p95", Relation: AtMost, Target: 2.9}, false, 0.01},
		{Goal{Metric: MetricLatency, Stat: "max", Relation: AtMost, Target: 5.0}, true, 0},
	}
	for _, c := range cases {
		ok, v := c.g.Check(s)
		if ok != c.ok {
			t.Errorf("%s: ok=%v want %v", c.g, ok, c.ok)
		}
		if !ok && v < c.vMin {
			t.Errorf("%s: violation=%v want >= %v", c.g, v, c.vMin)
		}
	}
}

func TestSLACheckWorstViolation(t *testing.T) {
	sla := SLA{Name: "nav", Goals: []Goal{
		{Metric: MetricLatency, Relation: AtMost, Target: 1.0},
		{Metric: MetricThroughput, Relation: AtLeast, Target: 100},
	}}
	sums := map[string]Summary{
		MetricLatency:    {Count: 5, Mean: 1.2}, // 20% over
		MetricThroughput: {Count: 5, Mean: 40},  // 60% under
	}
	ok, worstGoal, worst := sla.Check(sums)
	if ok {
		t.Fatal("should violate")
	}
	if worstGoal != 1 {
		t.Errorf("worst goal %d, want 1 (throughput)", worstGoal)
	}
	if math.Abs(worst-0.6) > 1e-9 {
		t.Errorf("worst violation %v, want 0.6", worst)
	}
	// Missing metrics are not violations.
	ok, _, _ = sla.Check(map[string]Summary{})
	if !ok {
		t.Error("no data should not violate")
	}
}

func TestTriggerDebounce(t *testing.T) {
	tr := NewTrigger(3)
	seq := []bool{true, true, false, true, true, true, true}
	var fires []int
	for i, v := range seq {
		if tr.Observe(v) {
			fires = append(fires, i)
		}
	}
	// The run of 4 trues after the false fires once at index 5 (third
	// consecutive), then restarts its count.
	if len(fires) != 1 || fires[0] != 5 {
		t.Errorf("fires at %v, want [5]", fires)
	}
	if tr.Fires() != 1 {
		t.Errorf("lifetime fires: %d", tr.Fires())
	}
}

func TestSetSummaries(t *testing.T) {
	s := NewSet(8)
	s.Push("a", 1)
	s.Push("a", 3)
	s.Push("b", 10)
	sums := s.Summaries()
	if sums["a"].Mean != 2 || sums["b"].Mean != 10 {
		t.Errorf("summaries: %+v", sums)
	}
	if s.Window("nosuch") != nil {
		t.Error("unknown metric should be nil")
	}
	if sums["a"].String() == "" {
		t.Error("summary string empty")
	}
}
