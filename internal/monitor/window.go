// Package monitor implements the application-level runtime monitoring
// layer of the ANTAREX flow (paper §II and §IV): windowed statistics over
// metric streams, Service-Level-Agreement goals, debounced violation
// triggers, and the concurrent metric sets that feed the adaptation
// kernel in internal/runtime. "The monitoring, together with application
// properties/features, represents the main support to the
// decision-making during the application autotuning phase."
//
// All exported types in this package are safe for concurrent use: the
// kernel runs one control loop per application while serving goroutines
// push production samples into the same windows.
package monitor

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Window is a fixed-capacity sliding window of float64 samples with O(1)
// push and O(1) mean/variance queries (incremental sums) plus
// percentile queries on demand. It is safe for concurrent use: many
// producer goroutines may Push while the control loop snapshots.
type Window struct {
	mu    sync.Mutex
	buf   []float64
	size  int
	head  int
	count int
	sum   float64
	sumSq float64
	total int64 // lifetime samples

	scratch []float64 // percentile sort buffer, reused under mu
}

// NewWindow returns a window holding the last size samples.
func NewWindow(size int) *Window {
	if size <= 0 {
		size = 1
	}
	return &Window{buf: make([]float64, size), size: size}
}

// Push adds a sample, evicting the oldest when full.
func (w *Window) Push(v float64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.count == w.size {
		old := w.buf[w.head]
		w.sum -= old
		w.sumSq -= old * old
	} else {
		w.count++
	}
	w.buf[w.head] = v
	w.head = (w.head + 1) % w.size
	w.sum += v
	w.sumSq += v * v
	w.total++
}

// Len returns the number of live samples.
func (w *Window) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.count
}

// Total returns the lifetime sample count.
func (w *Window) Total() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.total
}

// Mean returns the window mean (0 when empty).
func (w *Window) Mean() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.mean()
}

func (w *Window) mean() float64 {
	if w.count == 0 {
		return 0
	}
	return w.sum / float64(w.count)
}

// Variance returns the (population) variance over the window.
func (w *Window) Variance() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.variance()
}

func (w *Window) variance() float64 {
	if w.count == 0 {
		return 0
	}
	m := w.mean()
	v := w.sumSq/float64(w.count) - m*m
	if v < 0 {
		return 0 // numerical floor
	}
	return v
}

// StdDev returns the standard deviation over the window.
func (w *Window) StdDev() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return math.Sqrt(w.variance())
}

// Min returns the window minimum (0 when empty).
func (w *Window) Min() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.min()
}

func (w *Window) min() float64 {
	if w.count == 0 {
		return 0
	}
	m := math.Inf(1)
	for _, v := range w.live() {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the window maximum (0 when empty).
func (w *Window) Max() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.max()
}

func (w *Window) max() float64 {
	if w.count == 0 {
		return 0
	}
	m := math.Inf(-1)
	for _, v := range w.live() {
		if v > m {
			m = v
		}
	}
	return m
}

// Percentile returns the p-th percentile (p in [0,100]) of the window.
func (w *Window) Percentile(p float64) float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.percentile(p)
}

func (w *Window) percentile(p float64) float64 {
	if w.count == 0 {
		return 0
	}
	vals := append(w.scratch[:0], w.live()...)
	w.scratch = vals
	sort.Float64s(vals)
	if p <= 0 {
		return vals[0]
	}
	if p >= 100 {
		return vals[len(vals)-1]
	}
	rank := p / 100 * float64(len(vals)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(vals) {
		return vals[len(vals)-1]
	}
	return vals[lo]*(1-frac) + vals[lo+1]*frac
}

func (w *Window) live() []float64 {
	if w.count < w.size {
		return w.buf[:w.count]
	}
	return w.buf
}

// Reset clears all samples but keeps the lifetime count.
func (w *Window) Reset() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.head, w.count, w.sum, w.sumSq = 0, 0, 0, 0
}

// Summary is a point-in-time statistical snapshot.
type Summary struct {
	Count  int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	P95    float64
}

// Snapshot computes a Summary of the window under one lock acquisition,
// so the statistics are mutually consistent even under concurrent Push.
func (w *Window) Snapshot() Summary {
	w.mu.Lock()
	defer w.mu.Unlock()
	return Summary{
		Count:  w.count,
		Mean:   w.mean(),
		StdDev: math.Sqrt(w.variance()),
		Min:    w.min(),
		Max:    w.max(),
		P95:    w.percentile(95),
	}
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.3g min=%.4g max=%.4g p95=%.4g",
		s.Count, s.Mean, s.StdDev, s.Min, s.Max, s.P95)
}

// EWMA is an exponentially weighted moving average, the continuous
// online-learning primitive used to track drifting operating conditions.
// Safe for concurrent use.
type EWMA struct {
	Alpha float64

	mu    sync.Mutex
	value float64
	init  bool
}

// NewEWMA returns an EWMA with smoothing factor alpha in (0,1].
func NewEWMA(alpha float64) *EWMA { return &EWMA{Alpha: alpha} }

// Push folds in a sample.
func (e *EWMA) Push(v float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.init {
		e.value, e.init = v, true
		return
	}
	e.value = e.Alpha*v + (1-e.Alpha)*e.value
}

// Value returns the current average.
func (e *EWMA) Value() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.value
}

// Initialized reports whether any sample has been pushed.
func (e *EWMA) Initialized() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.init
}
