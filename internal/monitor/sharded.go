package monitor

// ShardedSet is the lock-striped alternative to Set considered for the
// concurrent adaptation kernel (cf. CCBench, arXiv:2009.11558: the right
// concurrency-control scheme depends on contention). Metric names hash
// onto independent shards so pushes to different metrics never contend
// on a shared map lock.
//
// Benchmarks (see BenchmarkSetPushParallel/BenchmarkShardedSetPushParallel)
// show the plain mutexed Set within a few percent of the sharded variant
// at the kernel's actual contention level — one Set per application, a
// handful of metrics, producers ≪ GOMAPROCS — because steady-state
// pushes only take the Set's read lock and the per-Window mutex. The
// kernel therefore uses Set; ShardedSet is kept for workloads that
// funnel many hot metrics through a single shared set (e.g. a future
// global telemetry sink).
//
// Re-run for the epoch fast path (PR 2), after the kernel moved its
// ingress to the lock-free runtime.Inbox and its control loops to
// cached window handles: Set.Push 47 ns vs ShardedSet.Push 52-60 ns at
// 1-16 hot metrics, and the cached-handle path
// (BenchmarkHandlePushParallel, Set.Acquire once + Window.Push per
// sample) at 21 ns beats both. The decision stands — simple mutexed
// windows behind a resolve-once handle; sharding still only pays at
// contention levels the kernel does not generate.
type ShardedSet struct {
	shards []*Set
}

// NewShardedSet returns a sharded set with the given per-metric window
// size and shard count (rounded up to at least 1).
func NewShardedSet(size, shards int) *ShardedSet {
	if shards < 1 {
		shards = 1
	}
	ss := &ShardedSet{shards: make([]*Set, shards)}
	for i := range ss.shards {
		ss.shards[i] = NewSet(size)
	}
	return ss
}

// shard maps a metric name to its shard (FNV-1a).
func (ss *ShardedSet) shard(metric string) *Set {
	h := uint32(2166136261)
	for i := 0; i < len(metric); i++ {
		h ^= uint32(metric[i])
		h *= 16777619
	}
	return ss.shards[h%uint32(len(ss.shards))]
}

// Push records a sample for metric.
func (ss *ShardedSet) Push(metric string, v float64) { ss.shard(metric).Push(metric, v) }

// Window returns the window for metric (nil if never pushed).
func (ss *ShardedSet) Window(metric string) *Window { return ss.shard(metric).Window(metric) }

// Summaries snapshots every metric across all shards.
func (ss *ShardedSet) Summaries() map[string]Summary {
	out := make(map[string]Summary)
	for _, s := range ss.shards {
		for k, v := range s.Summaries() {
			out[k] = v
		}
	}
	return out
}

// Reset clears every shard.
func (ss *ShardedSet) Reset() {
	for _, s := range ss.shards {
		s.Reset()
	}
}
