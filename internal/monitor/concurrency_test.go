package monitor

import (
	"fmt"
	"sync"
	"testing"
)

// TestWindowConcurrentPush hammers one window from many goroutines and
// checks no samples are lost (run under -race in CI).
func TestWindowConcurrentPush(t *testing.T) {
	w := NewWindow(128)
	const producers, per = 8, 1000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				w.Push(1)
			}
		}()
	}
	wg.Wait()
	if w.Total() != producers*per {
		t.Errorf("total %d, want %d", w.Total(), producers*per)
	}
	if w.Len() != 128 || w.Mean() != 1 {
		t.Errorf("len=%d mean=%v", w.Len(), w.Mean())
	}
}

// TestSetConcurrentPushSnapshot mixes pushers, snapshotters and resets
// across distinct and shared metrics.
func TestSetConcurrentPushSnapshot(t *testing.T) {
	for _, impl := range []struct {
		name string
		push func(string, float64)
		sums func() map[string]Summary
	}{
		{"set", nil, nil},
		{"sharded", nil, nil},
	} {
		t.Run(impl.name, func(t *testing.T) {
			var push func(string, float64)
			var sums func() map[string]Summary
			var window func(string) *Window
			if impl.name == "set" {
				s := NewSet(64)
				push, sums, window = s.Push, s.Summaries, s.Window
			} else {
				s := NewShardedSet(64, 8)
				push, sums, window = s.Push, s.Summaries, s.Window
			}
			const producers, per = 8, 500
			var wg sync.WaitGroup
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					metric := fmt.Sprintf("m%d", p%4)
					for i := 0; i < per; i++ {
						push(metric, float64(i))
						if i%100 == 0 {
							_ = sums()
						}
					}
				}(p)
			}
			wg.Wait()
			var total int64
			for i := 0; i < 4; i++ {
				w := window(fmt.Sprintf("m%d", i))
				if w == nil {
					t.Fatalf("metric m%d missing", i)
				}
				total += w.Total()
			}
			if total != producers*per {
				t.Errorf("total %d, want %d", total, producers*per)
			}
		})
	}
}

// The CCBench-style contention study behind the kernel's choice of a
// mutexed Set over lock-striped shards: run with
//
//	go test ./internal/monitor -bench 'PushParallel' -cpu 1,4,16
//
// At the kernel's contention level (one Set per app, a few metrics) the
// two are within noise of each other, so the simpler Set wins.

func benchmarkPushParallel(b *testing.B, push func(string, float64), metrics int) {
	names := make([]string, metrics)
	for i := range names {
		names[i] = fmt.Sprintf("metric-%d", i)
	}
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			push(names[i%metrics], float64(i))
			i++
		}
	})
}

func BenchmarkSetPushParallel(b *testing.B) {
	for _, metrics := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("metrics=%d", metrics), func(b *testing.B) {
			s := NewSet(128)
			benchmarkPushParallel(b, s.Push, metrics)
		})
	}
}

func BenchmarkShardedSetPushParallel(b *testing.B) {
	for _, metrics := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("metrics=%d", metrics), func(b *testing.B) {
			s := NewShardedSet(128, 16)
			benchmarkPushParallel(b, s.Push, metrics)
		})
	}
}

// The run-shaped variants model the binary streaming ingest's load at
// a hypothetical global sink: decoded wire frames deliver 64-sample
// runs of one metric, so a sink sees long same-metric bursts rather
// than interleaved single pushes. One op = one 64-sample run.

const runShape = 64

func benchmarkPushRunParallel(b *testing.B, push func(string, float64), metrics int) {
	names := make([]string, metrics)
	for i := range names {
		names[i] = fmt.Sprintf("metric-%d", i)
	}
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			name := names[i%metrics]
			for s := 0; s < runShape; s++ {
				push(name, float64(s))
			}
			i++
		}
	})
}

func BenchmarkSetPushRunParallel(b *testing.B) {
	for _, metrics := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("metrics=%d", metrics), func(b *testing.B) {
			s := NewSet(128)
			benchmarkPushRunParallel(b, s.Push, metrics)
		})
	}
}

func BenchmarkShardedSetPushRunParallel(b *testing.B) {
	for _, metrics := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("metrics=%d", metrics), func(b *testing.B) {
			s := NewShardedSet(128, 16)
			benchmarkPushRunParallel(b, s.Push, metrics)
		})
	}
}

// BenchmarkHandlePushParallel measures the cached-handle fast path the
// adaptation kernel's control loop uses: Acquire the window once, then
// push on it directly, skipping the set's lock and map lookup per
// sample.
func BenchmarkHandlePushParallel(b *testing.B) {
	for _, metrics := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("metrics=%d", metrics), func(b *testing.B) {
			s := NewSet(128)
			handles := make([]*Window, metrics)
			for i := range handles {
				handles[i] = s.Acquire(fmt.Sprintf("metric-%d", i))
			}
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					handles[i%metrics].Push(float64(i))
					i++
				}
			})
		})
	}
}
