package monitor

import "sync"

// Set is a collection of named metric windows — the "collect" stage.
// It is safe for concurrent use: serving goroutines Push while the
// adaptation kernel snapshots and resets. The window map is guarded by
// an RWMutex; per-sample mutual exclusion lives inside Window, so
// steady-state pushes to existing metrics only take the read lock here.
type Set struct {
	mu      sync.RWMutex
	windows map[string]*Window
	size    int
}

// NewSet returns a monitor set whose windows hold size samples each.
func NewSet(size int) *Set {
	return &Set{windows: make(map[string]*Window), size: size}
}

// Push records a sample for metric.
func (s *Set) Push(metric string, v float64) {
	s.mu.RLock()
	w, ok := s.windows[metric]
	s.mu.RUnlock()
	if !ok {
		s.mu.Lock()
		w, ok = s.windows[metric]
		if !ok {
			w = NewWindow(s.size)
			s.windows[metric] = w
		}
		s.mu.Unlock()
	}
	w.Push(v)
}

// Window returns the window for metric (nil if never pushed).
func (s *Set) Window(metric string) *Window {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.windows[metric]
}

// Summaries snapshots every metric — the "analyse" stage.
func (s *Set) Summaries() map[string]Summary {
	s.mu.RLock()
	ws := make(map[string]*Window, len(s.windows))
	for name, w := range s.windows {
		ws[name] = w
	}
	s.mu.RUnlock()
	out := make(map[string]Summary, len(ws))
	for name, w := range ws {
		out[name] = w.Snapshot()
	}
	return out
}

// Reset clears all windows (used after an adaptation so stale samples
// from the previous configuration do not pollute the next decision).
func (s *Set) Reset() {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, w := range s.windows {
		w.Reset()
	}
}

// Decision is what the decide stage tells the act stage.
type Decision struct {
	// Adapt requests a configuration change.
	Adapt bool
	// Reason is the violated goal (or "" for proactive adaptations).
	Reason string
	// Violation is the normalized magnitude.
	Violation float64
}
