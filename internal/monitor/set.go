package monitor

import "sync"

// Set is a collection of named metric windows — the "collect" stage.
// It is safe for concurrent use: serving goroutines Push while the
// adaptation kernel snapshots and resets. The window map is guarded by
// an RWMutex; per-sample mutual exclusion lives inside Window, so
// steady-state pushes to existing metrics only take the read lock here.
type Set struct {
	mu      sync.RWMutex
	windows map[string]*Window
	size    int
}

// NewSet returns a monitor set whose windows hold size samples each.
func NewSet(size int) *Set {
	return &Set{windows: make(map[string]*Window), size: size}
}

// Push records a sample for metric.
func (s *Set) Push(metric string, v float64) {
	s.Acquire(metric).Push(v)
}

// Acquire returns the window for metric, creating it if absent. It is
// the cached-handle fast path for hot producers: resolve the handle
// once, then call Window.Push directly, skipping this set's lock and
// map lookup on every sample. The returned window stays valid for the
// life of the set (Reset clears samples but keeps windows).
func (s *Set) Acquire(metric string) *Window {
	s.mu.RLock()
	w, ok := s.windows[metric]
	s.mu.RUnlock()
	if ok {
		return w
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if w, ok = s.windows[metric]; ok {
		return w
	}
	w = NewWindow(s.size)
	s.windows[metric] = w
	return w
}

// Window returns the window for metric (nil if never pushed).
func (s *Set) Window(metric string) *Window {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.windows[metric]
}

// Summaries snapshots every metric — the "analyse" stage.
func (s *Set) Summaries() map[string]Summary {
	s.mu.RLock()
	out := make(map[string]Summary, len(s.windows))
	s.mu.RUnlock()
	s.SummariesInto(out)
	return out
}

// SummariesInto clears dst and fills it with a snapshot of every
// metric, reusing dst's storage — the allocation-free analyse path for
// hot control loops. The per-window snapshots are taken under the
// set's read lock, so Push with a brand-new metric briefly waits, but
// steady-state pushes to existing windows never touch this lock.
func (s *Set) SummariesInto(dst map[string]Summary) {
	clear(dst)
	s.mu.RLock()
	defer s.mu.RUnlock()
	for name, w := range s.windows {
		dst[name] = w.Snapshot()
	}
}

// Reset clears all windows (used after an adaptation so stale samples
// from the previous configuration do not pollute the next decision).
func (s *Set) Reset() {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, w := range s.windows {
		w.Reset()
	}
}

// Decision is what the decide stage tells the act stage.
type Decision struct {
	// Adapt requests a configuration change.
	Adapt bool
	// Reason is the violated goal (or "" for proactive adaptations).
	Reason string
	// Violation is the normalized magnitude.
	Violation float64
}
