package monitor

// Set is a collection of named metric windows — the "collect" stage.
type Set struct {
	windows map[string]*Window
	size    int
}

// NewSet returns a monitor set whose windows hold size samples each.
func NewSet(size int) *Set {
	return &Set{windows: make(map[string]*Window), size: size}
}

// Push records a sample for metric.
func (s *Set) Push(metric string, v float64) {
	w, ok := s.windows[metric]
	if !ok {
		w = NewWindow(s.size)
		s.windows[metric] = w
	}
	w.Push(v)
}

// Window returns the window for metric (nil if never pushed).
func (s *Set) Window(metric string) *Window { return s.windows[metric] }

// Summaries snapshots every metric — the "analyse" stage.
func (s *Set) Summaries() map[string]Summary {
	out := make(map[string]Summary, len(s.windows))
	for name, w := range s.windows {
		out[name] = w.Snapshot()
	}
	return out
}

// Reset clears all windows (used after an adaptation so stale samples
// from the previous configuration do not pollute the next decision).
func (s *Set) Reset() {
	for _, w := range s.windows {
		w.Reset()
	}
}

// Decision is what the decide stage tells the act stage.
type Decision struct {
	// Adapt requests a configuration change.
	Adapt bool
	// Reason is the violated goal (or "" for proactive adaptations).
	Reason string
	// Violation is the normalized magnitude.
	Violation float64
}

// Loop is the application-level collect–analyse–decide–act loop of §II.
// Collect by pushing samples into Metrics; each Tick analyses the
// windows against the SLA, debounces via the trigger, and invokes the
// act callback on a firing decision.
type Loop struct {
	Metrics *Set
	SLA     SLA
	Trigger *Trigger
	// Act is invoked when adaptation is decided. It receives the current
	// summaries so the actuator (autotuner) can pick a new configuration.
	Act func(Decision, map[string]Summary)

	ticks       int64
	adaptations int64
}

// NewLoop assembles a loop with a window of windowSize samples per
// metric and a debounce of debounce consecutive violations.
func NewLoop(sla SLA, windowSize, debounce int, act func(Decision, map[string]Summary)) *Loop {
	return &Loop{
		Metrics: NewSet(windowSize),
		SLA:     sla,
		Trigger: NewTrigger(debounce),
		Act:     act,
	}
}

// Tick runs one analyse-decide-act cycle and returns the decision.
func (l *Loop) Tick() Decision {
	l.ticks++
	sums := l.Metrics.Summaries()
	ok, goalIdx, violation := l.SLA.Check(sums)
	fire := l.Trigger.Observe(!ok)
	d := Decision{}
	if fire {
		d.Adapt = true
		d.Violation = violation
		if goalIdx >= 0 {
			d.Reason = l.SLA.Goals[goalIdx].String()
		}
		l.adaptations++
		if l.Act != nil {
			l.Act(d, sums)
		}
		// Fresh windows for the new configuration.
		l.Metrics.Reset()
	}
	return d
}

// Ticks returns the number of cycles run.
func (l *Loop) Ticks() int64 { return l.ticks }

// Adaptations returns how many times the loop fired the actuator.
func (l *Loop) Adaptations() int64 { return l.adaptations }
