package monitor

import "fmt"

// Metric names used across the stack.
const (
	MetricThroughput = "throughput" // work units per second (higher better)
	MetricLatency    = "latency"    // seconds per request (lower better)
	MetricEnergy     = "energy"     // joules per work unit (lower better)
	MetricPower      = "power"      // watts (lower better)
	MetricQuality    = "quality"    // application-defined quality (higher better)
)

// Relation is the comparison direction of a goal.
type Relation int

// Relations.
const (
	AtMost  Relation = iota // observed <= target
	AtLeast                 // observed >= target
)

// String renders the relation.
func (r Relation) String() string {
	if r == AtMost {
		return "<="
	}
	return ">="
}

// Goal is one SLA clause: a bound on a windowed statistic of a metric.
type Goal struct {
	Metric string
	// Stat selects which statistic the bound applies to: "mean" (default),
	// "p95", or "max".
	Stat     string
	Relation Relation
	Target   float64
}

// Check evaluates the goal against a summary, returning whether it holds
// and the normalized violation magnitude (0 when satisfied; 0.5 means
// 50 % beyond target).
func (g Goal) Check(s Summary) (ok bool, violation float64) {
	var observed float64
	switch g.Stat {
	case "", "mean":
		observed = s.Mean
	case "p95":
		observed = s.P95
	case "max":
		observed = s.Max
	default:
		observed = s.Mean
	}
	switch g.Relation {
	case AtMost:
		if observed <= g.Target {
			return true, 0
		}
		if g.Target == 0 {
			return false, 1
		}
		return false, observed/g.Target - 1
	default: // AtLeast
		if observed >= g.Target {
			return true, 0
		}
		if g.Target == 0 {
			return false, 1
		}
		return false, 1 - observed/g.Target
	}
}

// String renders the goal.
func (g Goal) String() string {
	stat := g.Stat
	if stat == "" {
		stat = "mean"
	}
	return fmt.Sprintf("%s(%s) %s %g", stat, g.Metric, g.Relation, g.Target)
}

// SLA is a conjunction of goals.
type SLA struct {
	Name  string
	Goals []Goal
}

// Check evaluates all goals against per-metric summaries, returning
// overall satisfaction and the worst violation (goal index, magnitude).
func (s SLA) Check(summaries map[string]Summary) (ok bool, worstGoal int, worst float64) {
	ok = true
	worstGoal = -1
	for i, g := range s.Goals {
		sum, have := summaries[g.Metric]
		if !have || sum.Count == 0 {
			continue // no data yet: not a violation
		}
		gok, v := g.Check(sum)
		if !gok {
			ok = false
			if v > worst {
				worst, worstGoal = v, i
			}
		}
	}
	return ok, worstGoal, worst
}

// Trigger debounces SLA violations: it fires only after K consecutive
// violating checks, and re-arms after a satisfied check, preventing the
// autotuner from thrashing on noise.
type Trigger struct {
	// After is the number of consecutive violations required to fire.
	After int
	run   int
	fires int64
}

// NewTrigger returns a trigger firing after k consecutive violations.
func NewTrigger(k int) *Trigger {
	if k < 1 {
		k = 1
	}
	return &Trigger{After: k}
}

// Observe feeds one check outcome and reports whether the trigger fires.
func (t *Trigger) Observe(violated bool) bool {
	if !violated {
		t.run = 0
		return false
	}
	t.run++
	if t.run >= t.After {
		t.run = 0
		t.fires++
		return true
	}
	return false
}

// Fires returns the lifetime fire count.
func (t *Trigger) Fires() int64 { return t.fires }
