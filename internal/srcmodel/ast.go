package srcmodel

import "fmt"

// Type is a miniC type: a base type plus pointer depth and optional array
// length (fixed-size arrays only, as in HPC kernel signatures).
type Type struct {
	Base     BaseType
	Pointers int // number of '*'
	ArrayLen int // 0 if not an array
}

// BaseType enumerates the scalar base types of miniC.
type BaseType int

// Base types.
const (
	TypeVoid BaseType = iota
	TypeInt
	TypeFloat
	TypeDouble
	TypeChar
)

// String renders the type in C syntax (without the array suffix, which
// attaches to the declarator).
func (t Type) String() string {
	s := t.Base.String()
	for i := 0; i < t.Pointers; i++ {
		s += "*"
	}
	return s
}

// IsFloat reports whether the base type is a floating-point type.
func (t Type) IsFloat() bool { return t.Base == TypeFloat || t.Base == TypeDouble }

// String returns the C keyword for the base type.
func (b BaseType) String() string {
	switch b {
	case TypeVoid:
		return "void"
	case TypeInt:
		return "int"
	case TypeFloat:
		return "float"
	case TypeDouble:
		return "double"
	case TypeChar:
		return "char"
	}
	return fmt.Sprintf("BaseType(%d)", int(b))
}

// Node is the common interface of all AST nodes.
type Node interface {
	Position() Pos
}

// Program is a parsed translation unit.
type Program struct {
	Funcs   []*FuncDecl
	Globals []*VarDecl
	// File is an optional label used in join-point locations.
	File string
}

// Position implements Node; a program starts at 1:1.
func (p *Program) Position() Pos { return Pos{1, 1} }

// Func returns the function with the given name, or nil.
func (p *Program) Func(name string) *FuncDecl {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Param is one formal parameter of a function.
type Param struct {
	Type Type
	Name string
	Pos  Pos
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Ret    Type
	Name   string
	Params []Param
	Body   *BlockStmt
	Pos    Pos
}

// Position implements Node.
func (f *FuncDecl) Position() Pos { return f.Pos }

// Stmt is implemented by all statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

// BlockStmt is a `{ ... }` statement list.
type BlockStmt struct {
	Stmts []Stmt
	Pos   Pos
}

// VarDecl declares a local or global variable, optionally initialized.
type VarDecl struct {
	Type Type
	Name string
	Init Expr // may be nil
	Pos  Pos
}

// IfStmt is an if/else statement. Else may be nil.
type IfStmt struct {
	Cond Expr
	Then Stmt
	Else Stmt
	Pos  Pos
}

// ForStmt is a C for loop. Init and Post are simple statements (or nil);
// Cond may be nil (infinite loop).
type ForStmt struct {
	Init Stmt // *VarDecl or *ExprStmt, may be nil
	Cond Expr
	Post Stmt // *ExprStmt, may be nil
	Body Stmt
	Pos  Pos
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond Expr
	Body Stmt
	Pos  Pos
}

// ReturnStmt returns from a function; Value may be nil.
type ReturnStmt struct {
	Value Expr
	Pos   Pos
}

// BreakStmt breaks the innermost loop.
type BreakStmt struct{ Pos Pos }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ Pos Pos }

// ExprStmt evaluates an expression for its side effects.
type ExprStmt struct {
	X   Expr
	Pos Pos
}

// Position implementations for statements.
func (s *BlockStmt) Position() Pos    { return s.Pos }
func (s *VarDecl) Position() Pos      { return s.Pos }
func (s *IfStmt) Position() Pos       { return s.Pos }
func (s *ForStmt) Position() Pos      { return s.Pos }
func (s *WhileStmt) Position() Pos    { return s.Pos }
func (s *ReturnStmt) Position() Pos   { return s.Pos }
func (s *BreakStmt) Position() Pos    { return s.Pos }
func (s *ContinueStmt) Position() Pos { return s.Pos }
func (s *ExprStmt) Position() Pos     { return s.Pos }

func (*BlockStmt) stmtNode()    {}
func (*VarDecl) stmtNode()      {}
func (*IfStmt) stmtNode()       {}
func (*ForStmt) stmtNode()      {}
func (*WhileStmt) stmtNode()    {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*ExprStmt) stmtNode()     {}

// Expr is implemented by all expression nodes.
type Expr interface {
	Node
	exprNode()
}

// Ident is a variable reference.
type Ident struct {
	Name string
	Pos  Pos
}

// IntLit is an integer literal.
type IntLit struct {
	Value int64
	Pos   Pos
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	Value float64
	Pos   Pos
}

// StringLit is a string literal (used as arguments to runtime calls such
// as profiling hooks).
type StringLit struct {
	Value string
	Pos   Pos
}

// BinaryExpr is a binary operation; Op is the operator token kind.
type BinaryExpr struct {
	Op   TokenKind
	L, R Expr
	Pos  Pos
}

// UnaryExpr is a prefix unary operation (-x, !x, &x, *x).
type UnaryExpr struct {
	Op  TokenKind
	X   Expr
	Pos Pos
}

// AssignExpr assigns to an lvalue. Op is TokAssign or a compound
// assignment kind (TokPlusEq etc.).
type AssignExpr struct {
	Op  TokenKind
	LHS Expr // Ident or IndexExpr or UnaryExpr(*p)
	RHS Expr
	Pos Pos
}

// IncDecExpr is x++ or x-- (postfix).
type IncDecExpr struct {
	Op  TokenKind // TokInc or TokDec
	X   Expr
	Pos Pos
}

// CallExpr is a function call.
type CallExpr struct {
	Callee string
	Args   []Expr
	Pos    Pos
}

// IndexExpr is array indexing a[i].
type IndexExpr struct {
	Array Expr
	Index Expr
	Pos   Pos
}

// Position implementations for expressions.
func (e *Ident) Position() Pos      { return e.Pos }
func (e *IntLit) Position() Pos     { return e.Pos }
func (e *FloatLit) Position() Pos   { return e.Pos }
func (e *StringLit) Position() Pos  { return e.Pos }
func (e *BinaryExpr) Position() Pos { return e.Pos }
func (e *UnaryExpr) Position() Pos  { return e.Pos }
func (e *AssignExpr) Position() Pos { return e.Pos }
func (e *IncDecExpr) Position() Pos { return e.Pos }
func (e *CallExpr) Position() Pos   { return e.Pos }
func (e *IndexExpr) Position() Pos  { return e.Pos }

func (*Ident) exprNode()      {}
func (*IntLit) exprNode()     {}
func (*FloatLit) exprNode()   {}
func (*StringLit) exprNode()  {}
func (*BinaryExpr) exprNode() {}
func (*UnaryExpr) exprNode()  {}
func (*AssignExpr) exprNode() {}
func (*IncDecExpr) exprNode() {}
func (*CallExpr) exprNode()   {}
func (*IndexExpr) exprNode()  {}

// CloneExpr returns a deep copy of e.
func CloneExpr(e Expr) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *Ident:
		c := *x
		return &c
	case *IntLit:
		c := *x
		return &c
	case *FloatLit:
		c := *x
		return &c
	case *StringLit:
		c := *x
		return &c
	case *BinaryExpr:
		return &BinaryExpr{Op: x.Op, L: CloneExpr(x.L), R: CloneExpr(x.R), Pos: x.Pos}
	case *UnaryExpr:
		return &UnaryExpr{Op: x.Op, X: CloneExpr(x.X), Pos: x.Pos}
	case *AssignExpr:
		return &AssignExpr{Op: x.Op, LHS: CloneExpr(x.LHS), RHS: CloneExpr(x.RHS), Pos: x.Pos}
	case *IncDecExpr:
		return &IncDecExpr{Op: x.Op, X: CloneExpr(x.X), Pos: x.Pos}
	case *CallExpr:
		c := &CallExpr{Callee: x.Callee, Pos: x.Pos}
		for _, a := range x.Args {
			c.Args = append(c.Args, CloneExpr(a))
		}
		return c
	case *IndexExpr:
		return &IndexExpr{Array: CloneExpr(x.Array), Index: CloneExpr(x.Index), Pos: x.Pos}
	}
	panic(fmt.Sprintf("srcmodel: CloneExpr: unknown node %T", e))
}

// CloneStmt returns a deep copy of s.
func CloneStmt(s Stmt) Stmt {
	switch x := s.(type) {
	case nil:
		return nil
	case *BlockStmt:
		c := &BlockStmt{Pos: x.Pos}
		for _, st := range x.Stmts {
			c.Stmts = append(c.Stmts, CloneStmt(st))
		}
		return c
	case *VarDecl:
		return &VarDecl{Type: x.Type, Name: x.Name, Init: CloneExpr(x.Init), Pos: x.Pos}
	case *IfStmt:
		return &IfStmt{Cond: CloneExpr(x.Cond), Then: CloneStmt(x.Then), Else: CloneStmt(x.Else), Pos: x.Pos}
	case *ForStmt:
		return &ForStmt{Init: CloneStmt(x.Init), Cond: CloneExpr(x.Cond), Post: CloneStmt(x.Post), Body: CloneStmt(x.Body), Pos: x.Pos}
	case *WhileStmt:
		return &WhileStmt{Cond: CloneExpr(x.Cond), Body: CloneStmt(x.Body), Pos: x.Pos}
	case *ReturnStmt:
		return &ReturnStmt{Value: CloneExpr(x.Value), Pos: x.Pos}
	case *BreakStmt:
		c := *x
		return &c
	case *ContinueStmt:
		c := *x
		return &c
	case *ExprStmt:
		return &ExprStmt{X: CloneExpr(x.X), Pos: x.Pos}
	}
	panic(fmt.Sprintf("srcmodel: CloneStmt: unknown node %T", s))
}

// CloneFunc returns a deep copy of f.
func CloneFunc(f *FuncDecl) *FuncDecl {
	c := &FuncDecl{Ret: f.Ret, Name: f.Name, Pos: f.Pos}
	c.Params = append(c.Params, f.Params...)
	c.Body = CloneStmt(f.Body).(*BlockStmt)
	return c
}

// CloneProgram returns a deep copy of p.
func CloneProgram(p *Program) *Program {
	c := &Program{File: p.File}
	for _, g := range p.Globals {
		c.Globals = append(c.Globals, CloneStmt(g).(*VarDecl))
	}
	for _, f := range p.Funcs {
		c.Funcs = append(c.Funcs, CloneFunc(f))
	}
	return c
}
