package srcmodel

import (
	"strings"
	"testing"
	"testing/quick"
)

const kernelSrc = `
double acc = 0.0;

void kernel(double* data, int size) {
    for (int i = 0; i < size; i++) {
        data[i] = data[i] * 2.0 + 1.0;
    }
}

double sum(double* data, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) {
        s += data[i];
    }
    return s;
}

int main() {
    double buf[16];
    for (int i = 0; i < 16; i++) {
        buf[i] = i;
    }
    kernel(buf, 16);
    acc = sum(buf, 16);
    return 0;
}
`

func mustParse(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Parse("test.c", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return p
}

func TestParseProgramShape(t *testing.T) {
	p := mustParse(t, kernelSrc)
	if len(p.Funcs) != 3 {
		t.Fatalf("got %d funcs, want 3", len(p.Funcs))
	}
	if len(p.Globals) != 1 || p.Globals[0].Name != "acc" {
		t.Fatalf("globals: %+v", p.Globals)
	}
	k := p.Func("kernel")
	if k == nil {
		t.Fatal("kernel not found")
	}
	if len(k.Params) != 2 || k.Params[0].Name != "data" || k.Params[1].Name != "size" {
		t.Fatalf("kernel params: %+v", k.Params)
	}
	if k.Params[0].Type.Pointers != 1 || k.Params[0].Type.Base != TypeDouble {
		t.Fatalf("param 0 type: %v", k.Params[0].Type)
	}
	if p.Func("nosuch") != nil {
		t.Error("Func(nosuch) should be nil")
	}
}

func TestParseControlFlow(t *testing.T) {
	src := `
int f(int n) {
    int r = 0;
    while (n > 0) {
        if (n % 2 == 0) {
            r += n;
        } else {
            r -= 1;
        }
        n--;
        if (r > 100) break;
        if (r < -100) continue;
    }
    return r;
}
`
	p := mustParse(t, src)
	f := p.Func("f")
	if f == nil {
		t.Fatal("f not found")
	}
	loops := Loops(f)
	if len(loops) != 1 || loops[0].Kind != "while" {
		t.Fatalf("loops: %+v", loops)
	}
}

func TestParseArrayParamDecays(t *testing.T) {
	p := mustParse(t, `void g(double a[128], int n) { a[0] = n; }`)
	g := p.Func("g")
	if g.Params[0].Type.Pointers != 1 {
		t.Errorf("array param should decay to pointer, got %v", g.Params[0].Type)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"int f( { }",
		"int f() { return }",
		"int f() { 1 + ; }",
		"int f() { for (;; }",
		"int",
		"int f() { x = ; }",
		"int f() { if (x }",
		"3;",
		"int f() { 1 = 2; }",
		"int f() { 3++; }",
	}
	for _, src := range cases {
		if _, err := Parse("bad.c", src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestParseStmtsForInsert(t *testing.T) {
	stmts, err := ParseStmts(`profile_args("kernel", "test.c:5:5", size);`)
	if err != nil {
		t.Fatalf("ParseStmts: %v", err)
	}
	if len(stmts) != 1 {
		t.Fatalf("got %d stmts", len(stmts))
	}
	es, ok := stmts[0].(*ExprStmt)
	if !ok {
		t.Fatalf("got %T", stmts[0])
	}
	call, ok := es.X.(*CallExpr)
	if !ok || call.Callee != "profile_args" || len(call.Args) != 3 {
		t.Fatalf("got %+v", es.X)
	}
}

func TestParseExprPrecedence(t *testing.T) {
	e, err := ParseExpr("1 + 2 * 3 == 7 && 4 < 5")
	if err != nil {
		t.Fatalf("ParseExpr: %v", err)
	}
	top, ok := e.(*BinaryExpr)
	if !ok || top.Op != TokAndAnd {
		t.Fatalf("top: %+v", e)
	}
	eq, ok := top.L.(*BinaryExpr)
	if !ok || eq.Op != TokEq {
		t.Fatalf("left of &&: %+v", top.L)
	}
	folded := FoldExpr(e)
	lit, ok := folded.(*IntLit)
	if !ok || lit.Value != 1 {
		t.Fatalf("folded: %+v", folded)
	}
}

func TestRoundTrip(t *testing.T) {
	p := mustParse(t, kernelSrc)
	text1 := Print(p)
	p2, err := Parse("rt.c", text1)
	if err != nil {
		t.Fatalf("re-parse failed: %v\nsource:\n%s", err, text1)
	}
	text2 := Print(p2)
	if text1 != text2 {
		t.Fatalf("round trip not stable:\n--- first ---\n%s\n--- second ---\n%s", text1, text2)
	}
}

func TestRoundTripControlHeavy(t *testing.T) {
	src := `
int collatz(int n) {
    int steps = 0;
    while (n != 1) {
        if (n % 2 == 0) n = n / 2;
        else n = 3 * n + 1;
        steps++;
    }
    return steps;
}

void nest(int a, int b) {
    for (int i = 0; i < a; i++)
        for (int j = 0; j < b; j += 2)
            collatz(i * b + j);
}
`
	p := mustParse(t, src)
	text1 := Print(p)
	p2, err := Parse("rt2.c", text1)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, text1)
	}
	if text2 := Print(p2); text1 != text2 {
		t.Fatalf("round trip not stable:\n%s\nvs\n%s", text1, text2)
	}
}

// TestCloneIndependence checks CloneProgram yields a deep copy: mutating
// the clone leaves the original untouched.
func TestCloneIndependence(t *testing.T) {
	p := mustParse(t, kernelSrc)
	orig := Print(p)
	c := CloneProgram(p)
	c.Func("kernel").Name = "renamed"
	c.Func("sum").Body.Stmts = nil
	SubstIdent(c.Func("main").Body, "buf", &Ident{Name: "zzz"})
	if Print(p) != orig {
		t.Fatal("mutating clone changed the original")
	}
}

// Property: FoldExpr of a random int expression equals direct evaluation.
func TestFoldExprMatchesEval(t *testing.T) {
	eval := func(a, b, c int16) int64 {
		// (a + b) * 2 - c with int64 semantics
		return (int64(a)+int64(b))*2 - int64(c)
	}
	f := func(a, b, c int16) bool {
		e := &BinaryExpr{
			Op: TokMinus,
			L: &BinaryExpr{
				Op: TokStar,
				L:  &BinaryExpr{Op: TokPlus, L: &IntLit{Value: int64(a)}, R: &IntLit{Value: int64(b)}},
				R:  &IntLit{Value: 2},
			},
			R: &IntLit{Value: int64(c)},
		}
		folded := FoldExpr(e)
		lit, ok := folded.(*IntLit)
		return ok && lit.Value == eval(a, b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the printer's output for random canonical loops re-parses and
// preserves the trip count analysis.
func TestTripCountRoundTripProperty(t *testing.T) {
	f := func(n uint8, step uint8) bool {
		st := int64(step%7) + 1
		limit := int64(n)
		src := "void f() { for (int i = 0; i < " + itoa(limit) + "; i += " + itoa(st) + ") { g(i); } }"
		p, err := Parse("prop.c", src)
		if err != nil {
			return false
		}
		loops := Loops(p.Func("f"))
		if len(loops) != 1 {
			return false
		}
		want := (limit + st - 1) / st
		if limit <= 0 {
			want = 0
		}
		return loops[0].NumIter == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b [32]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

func TestPrintExprForms(t *testing.T) {
	cases := map[string]string{
		"a + b * c":    "a + (b * c)",
		"-x":           "-x",
		"!(a && b)":    "!(a && b)",
		"p[i + 1]":     "p[i + 1]",
		"f(a, b, 1.5)": "f(a, b, 1.5)",
		"x += 2":       "x += 2",
		"i++":          "i++",
	}
	for src, want := range cases {
		e, err := ParseExpr(src)
		if err != nil {
			t.Fatalf("ParseExpr(%q): %v", src, err)
		}
		got := ExprString(e)
		// Normalize: re-parse both and compare printed forms.
		e2, err := ParseExpr(got)
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v", got, err)
		}
		if ExprString(e2) != got {
			t.Errorf("%q: print not stable: %q vs %q", src, got, ExprString(e2))
		}
		if !strings.Contains(got, strings.Split(want, " ")[0]) {
			t.Errorf("%q printed as %q", src, got)
		}
	}
}
