// Package srcmodel implements a source-level model of a C-like language
// ("miniC") used as the weaving substrate of the ANTAREX tool flow.
//
// The ANTAREX DSL (package dsl) selects join points — functions, loops,
// calls, statements, arguments — and acts on them (insert code, unroll
// loops, specialize functions). miniC provides those join points backed by
// a real lexer, recursive-descent parser, typed AST and pretty-printer, so
// weaving is exercised end-to-end on genuine source text rather than on a
// mock. The subset covers what HPC kernels in the paper's examples need:
// functions, scalar and pointer/array variables, for/while/if control
// flow, calls, and arithmetic expressions.
package srcmodel

import "fmt"

// TokenKind enumerates the lexical classes of miniC.
type TokenKind int

// Token kinds. Keywords are distinguished from identifiers during
// scanning; operators each get their own kind so the parser can switch
// directly on the kind.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokIntLit
	TokFloatLit
	TokStringLit
	TokCharLit

	// Keywords.
	TokKwInt
	TokKwFloat
	TokKwDouble
	TokKwChar
	TokKwVoid
	TokKwIf
	TokKwElse
	TokKwFor
	TokKwWhile
	TokKwReturn
	TokKwBreak
	TokKwContinue

	// Punctuation and operators.
	TokLParen   // (
	TokRParen   // )
	TokLBrace   // {
	TokRBrace   // }
	TokLBracket // [
	TokRBracket // ]
	TokSemi     // ;
	TokComma    // ,
	TokAssign   // =
	TokPlus     // +
	TokMinus    // -
	TokStar     // *
	TokSlash    // /
	TokPercent  // %
	TokAmp      // &
	TokEq       // ==
	TokNe       // !=
	TokLt       // <
	TokLe       // <=
	TokGt       // >
	TokGe       // >=
	TokAndAnd   // &&
	TokOrOr     // ||
	TokNot      // !
	TokInc      // ++
	TokDec      // --
	TokPlusEq   // +=
	TokMinusEq  // -=
	TokStarEq   // *=
	TokSlashEq  // /=
)

var tokenNames = map[TokenKind]string{
	TokEOF: "EOF", TokIdent: "identifier", TokIntLit: "int literal",
	TokFloatLit: "float literal", TokStringLit: "string literal",
	TokCharLit: "char literal",
	TokKwInt:   "int", TokKwFloat: "float", TokKwDouble: "double",
	TokKwChar: "char", TokKwVoid: "void", TokKwIf: "if", TokKwElse: "else",
	TokKwFor: "for", TokKwWhile: "while", TokKwReturn: "return",
	TokKwBreak: "break", TokKwContinue: "continue",
	TokLParen: "(", TokRParen: ")", TokLBrace: "{", TokRBrace: "}",
	TokLBracket: "[", TokRBracket: "]", TokSemi: ";", TokComma: ",",
	TokAssign: "=", TokPlus: "+", TokMinus: "-", TokStar: "*",
	TokSlash: "/", TokPercent: "%", TokAmp: "&", TokEq: "==", TokNe: "!=",
	TokLt: "<", TokLe: "<=", TokGt: ">", TokGe: ">=", TokAndAnd: "&&",
	TokOrOr: "||", TokNot: "!", TokInc: "++", TokDec: "--",
	TokPlusEq: "+=", TokMinusEq: "-=", TokStarEq: "*=", TokSlashEq: "/=",
}

// String returns a human-readable name for the token kind.
func (k TokenKind) String() string {
	if s, ok := tokenNames[k]; ok {
		return s
	}
	return fmt.Sprintf("TokenKind(%d)", int(k))
}

var keywords = map[string]TokenKind{
	"int": TokKwInt, "float": TokKwFloat, "double": TokKwDouble,
	"char": TokKwChar, "void": TokKwVoid, "if": TokKwIf, "else": TokKwElse,
	"for": TokKwFor, "while": TokKwWhile, "return": TokKwReturn,
	"break": TokKwBreak, "continue": TokKwContinue,
}

// Pos is a source position (1-based line and column).
type Pos struct {
	Line int
	Col  int
}

// String formats the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical unit with its source position and raw text.
type Token struct {
	Kind TokenKind
	Text string
	Pos  Pos
}

// Lexer scans miniC source text into tokens.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() error {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := Pos{l.line, l.col}
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return fmt.Errorf("srcmodel: %s: unterminated block comment", start)
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool { return isIdentStart(c) || isDigit(c) }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next returns the next token, or an error on malformed input. At end of
// input it returns a TokEOF token with a nil error.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := Pos{l.line, l.col}
	if l.off >= len(l.src) {
		return Token{Kind: TokEOF, Pos: pos}, nil
	}
	c := l.peek()
	switch {
	case isIdentStart(c):
		start := l.off
		for l.off < len(l.src) && isIdentCont(l.peek()) {
			l.advance()
		}
		text := l.src[start:l.off]
		if kw, ok := keywords[text]; ok {
			return Token{Kind: kw, Text: text, Pos: pos}, nil
		}
		return Token{Kind: TokIdent, Text: text, Pos: pos}, nil
	case isDigit(c) || (c == '.' && isDigit(l.peek2())):
		return l.scanNumber(pos)
	case c == '"':
		return l.scanString(pos)
	case c == '\'':
		return l.scanChar(pos)
	}
	// Operators and punctuation.
	two := func(kind TokenKind, text string) (Token, error) {
		l.advance()
		l.advance()
		return Token{Kind: kind, Text: text, Pos: pos}, nil
	}
	one := func(kind TokenKind) (Token, error) {
		l.advance()
		return Token{Kind: kind, Text: string(c), Pos: pos}, nil
	}
	d := l.peek2()
	switch c {
	case '(':
		return one(TokLParen)
	case ')':
		return one(TokRParen)
	case '{':
		return one(TokLBrace)
	case '}':
		return one(TokRBrace)
	case '[':
		return one(TokLBracket)
	case ']':
		return one(TokRBracket)
	case ';':
		return one(TokSemi)
	case ',':
		return one(TokComma)
	case '=':
		if d == '=' {
			return two(TokEq, "==")
		}
		return one(TokAssign)
	case '+':
		if d == '+' {
			return two(TokInc, "++")
		}
		if d == '=' {
			return two(TokPlusEq, "+=")
		}
		return one(TokPlus)
	case '-':
		if d == '-' {
			return two(TokDec, "--")
		}
		if d == '=' {
			return two(TokMinusEq, "-=")
		}
		return one(TokMinus)
	case '*':
		if d == '=' {
			return two(TokStarEq, "*=")
		}
		return one(TokStar)
	case '/':
		if d == '=' {
			return two(TokSlashEq, "/=")
		}
		return one(TokSlash)
	case '%':
		return one(TokPercent)
	case '&':
		if d == '&' {
			return two(TokAndAnd, "&&")
		}
		return one(TokAmp)
	case '|':
		if d == '|' {
			return two(TokOrOr, "||")
		}
	case '!':
		if d == '=' {
			return two(TokNe, "!=")
		}
		return one(TokNot)
	case '<':
		if d == '=' {
			return two(TokLe, "<=")
		}
		return one(TokLt)
	case '>':
		if d == '=' {
			return two(TokGe, ">=")
		}
		return one(TokGt)
	}
	return Token{}, fmt.Errorf("srcmodel: %s: unexpected character %q", pos, c)
}

func (l *Lexer) scanNumber(pos Pos) (Token, error) {
	start := l.off
	isFloat := false
	for l.off < len(l.src) && isDigit(l.peek()) {
		l.advance()
	}
	if l.peek() == '.' {
		isFloat = true
		l.advance()
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
	}
	if l.peek() == 'e' || l.peek() == 'E' {
		isFloat = true
		l.advance()
		if l.peek() == '+' || l.peek() == '-' {
			l.advance()
		}
		if !isDigit(l.peek()) {
			return Token{}, fmt.Errorf("srcmodel: %s: malformed exponent", pos)
		}
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
	}
	// Trailing float suffix (e.g. 1.0f) is accepted and dropped.
	if isFloat && (l.peek() == 'f' || l.peek() == 'F') {
		l.advance()
		return Token{Kind: TokFloatLit, Text: l.src[start : l.off-1], Pos: pos}, nil
	}
	kind := TokIntLit
	if isFloat {
		kind = TokFloatLit
	}
	return Token{Kind: kind, Text: l.src[start:l.off], Pos: pos}, nil
}

func (l *Lexer) scanString(pos Pos) (Token, error) {
	l.advance() // opening quote
	var buf []byte
	for {
		if l.off >= len(l.src) {
			return Token{}, fmt.Errorf("srcmodel: %s: unterminated string literal", pos)
		}
		c := l.advance()
		if c == '"' {
			break
		}
		if c == '\\' {
			if l.off >= len(l.src) {
				return Token{}, fmt.Errorf("srcmodel: %s: unterminated escape", pos)
			}
			e := l.advance()
			switch e {
			case 'n':
				buf = append(buf, '\n')
			case 't':
				buf = append(buf, '\t')
			case '\\', '"', '\'':
				buf = append(buf, e)
			case '0':
				buf = append(buf, 0)
			default:
				return Token{}, fmt.Errorf("srcmodel: %s: unknown escape \\%c", pos, e)
			}
			continue
		}
		buf = append(buf, c)
	}
	return Token{Kind: TokStringLit, Text: string(buf), Pos: pos}, nil
}

// scanChar scans a single-quoted literal. One character yields a char
// literal; longer contents yield a string literal, so LARA-style
// single-quoted strings woven into the source ('kernel') are accepted.
func (l *Lexer) scanChar(pos Pos) (Token, error) {
	l.advance() // opening quote
	var buf []byte
	for {
		if l.off >= len(l.src) {
			return Token{}, fmt.Errorf("srcmodel: %s: unterminated char literal", pos)
		}
		c := l.advance()
		if c == '\'' {
			break
		}
		if c == '\\' {
			if l.off >= len(l.src) {
				return Token{}, fmt.Errorf("srcmodel: %s: unterminated escape", pos)
			}
			e := l.advance()
			switch e {
			case 'n':
				c = '\n'
			case 't':
				c = '\t'
			case '\\', '\'', '"':
				c = e
			case '0':
				c = 0
			default:
				return Token{}, fmt.Errorf("srcmodel: %s: unknown escape \\%c", pos, e)
			}
		}
		buf = append(buf, c)
	}
	if len(buf) == 1 {
		return Token{Kind: TokCharLit, Text: string(buf), Pos: pos}, nil
	}
	return Token{Kind: TokStringLit, Text: string(buf), Pos: pos}, nil
}

// Tokenize scans all tokens in src, excluding the trailing EOF token.
func Tokenize(src string) ([]Token, error) {
	l := NewLexer(src)
	var toks []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		if t.Kind == TokEOF {
			return toks, nil
		}
		toks = append(toks, t)
	}
}
