package srcmodel

import (
	"fmt"
	"strconv"
)

// Parser is a recursive-descent parser for miniC.
type Parser struct {
	toks []Token
	pos  int
	file string
}

// Parse parses a miniC translation unit. file is a label used in
// diagnostics and join-point locations.
func Parse(file, src string) (*Program, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks, file: file}
	prog := &Program{File: file}
	for !p.atEOF() {
		typ, err := p.parseType()
		if err != nil {
			return nil, err
		}
		name, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		if p.cur().Kind == TokLParen {
			fn, err := p.parseFuncRest(typ, name)
			if err != nil {
				return nil, err
			}
			prog.Funcs = append(prog.Funcs, fn)
			continue
		}
		vd, err := p.parseVarDeclRest(typ, name)
		if err != nil {
			return nil, err
		}
		prog.Globals = append(prog.Globals, vd)
	}
	return prog, nil
}

// ParseStmts parses a sequence of statements (used by the weaver to turn
// `insert` code templates into AST nodes).
func ParseStmts(src string) ([]Stmt, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks, file: "<insert>"}
	var stmts []Stmt
	for !p.atEOF() {
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	return stmts, nil
}

// ParseExpr parses a single expression.
func ParseExpr(src string) (Expr, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks, file: "<expr>"}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errorf("trailing tokens after expression")
	}
	return e, nil
}

func (p *Parser) atEOF() bool { return p.pos >= len(p.toks) }

func (p *Parser) cur() Token {
	if p.atEOF() {
		last := Pos{1, 1}
		if len(p.toks) > 0 {
			last = p.toks[len(p.toks)-1].Pos
		}
		return Token{Kind: TokEOF, Pos: last}
	}
	return p.toks[p.pos]
}

func (p *Parser) next() Token {
	t := p.cur()
	p.pos++
	return t
}

func (p *Parser) accept(kind TokenKind) bool {
	if p.cur().Kind == kind {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(kind TokenKind) (Token, error) {
	t := p.cur()
	if t.Kind != kind {
		return Token{}, p.errorf("expected %s, found %s %q", kind, t.Kind, t.Text)
	}
	p.pos++
	return t, nil
}

func (p *Parser) errorf(format string, args ...any) error {
	return fmt.Errorf("srcmodel: %s:%s: %s", p.file, p.cur().Pos, fmt.Sprintf(format, args...))
}

func (p *Parser) isTypeStart() bool {
	switch p.cur().Kind {
	case TokKwInt, TokKwFloat, TokKwDouble, TokKwChar, TokKwVoid:
		return true
	}
	return false
}

func (p *Parser) parseType() (Type, error) {
	var t Type
	switch p.cur().Kind {
	case TokKwInt:
		t.Base = TypeInt
	case TokKwFloat:
		t.Base = TypeFloat
	case TokKwDouble:
		t.Base = TypeDouble
	case TokKwChar:
		t.Base = TypeChar
	case TokKwVoid:
		t.Base = TypeVoid
	default:
		return t, p.errorf("expected type, found %s %q", p.cur().Kind, p.cur().Text)
	}
	p.pos++
	for p.accept(TokStar) {
		t.Pointers++
	}
	return t, nil
}

func (p *Parser) parseFuncRest(ret Type, name Token) (*FuncDecl, error) {
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	fn := &FuncDecl{Ret: ret, Name: name.Text, Pos: name.Pos}
	if !p.accept(TokRParen) {
		for {
			pt, err := p.parseType()
			if err != nil {
				return nil, err
			}
			pn, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			if p.accept(TokLBracket) {
				// Array parameter: decays to pointer.
				if p.cur().Kind == TokIntLit {
					p.pos++
				}
				if _, err := p.expect(TokRBracket); err != nil {
					return nil, err
				}
				pt.Pointers++
			}
			fn.Params = append(fn.Params, Param{Type: pt, Name: pn.Text, Pos: pn.Pos})
			if p.accept(TokComma) {
				continue
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
			break
		}
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *Parser) parseVarDeclRest(typ Type, name Token) (*VarDecl, error) {
	vd := &VarDecl{Type: typ, Name: name.Text, Pos: name.Pos}
	if p.accept(TokLBracket) {
		lenTok, err := p.expect(TokIntLit)
		if err != nil {
			return nil, err
		}
		n, err := strconv.ParseInt(lenTok.Text, 10, 64)
		if err != nil || n <= 0 {
			return nil, p.errorf("invalid array length %q", lenTok.Text)
		}
		vd.Type.ArrayLen = int(n)
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
	}
	if p.accept(TokAssign) {
		init, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		vd.Init = init
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return vd, nil
}

func (p *Parser) parseBlock() (*BlockStmt, error) {
	lb, err := p.expect(TokLBrace)
	if err != nil {
		return nil, err
	}
	blk := &BlockStmt{Pos: lb.Pos}
	for !p.accept(TokRBrace) {
		if p.atEOF() {
			return nil, p.errorf("unexpected end of input in block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		blk.Stmts = append(blk.Stmts, s)
	}
	return blk, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch t.Kind {
	case TokLBrace:
		return p.parseBlock()
	case TokKwIf:
		return p.parseIf()
	case TokKwFor:
		return p.parseFor()
	case TokKwWhile:
		return p.parseWhile()
	case TokKwReturn:
		p.pos++
		rs := &ReturnStmt{Pos: t.Pos}
		if p.cur().Kind != TokSemi {
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			rs.Value = v
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return rs, nil
	case TokKwBreak:
		p.pos++
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &BreakStmt{Pos: t.Pos}, nil
	case TokKwContinue:
		p.pos++
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &ContinueStmt{Pos: t.Pos}, nil
	}
	if p.isTypeStart() {
		typ, err := p.parseType()
		if err != nil {
			return nil, err
		}
		name, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		return p.parseVarDeclRest(typ, name)
	}
	// Expression statement.
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return &ExprStmt{X: e, Pos: t.Pos}, nil
}

func (p *Parser) parseIf() (Stmt, error) {
	t, _ := p.expect(TokKwIf)
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	then, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	st := &IfStmt{Cond: cond, Then: then, Pos: t.Pos}
	if p.accept(TokKwElse) {
		els, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		st.Else = els
	}
	return st, nil
}

func (p *Parser) parseFor() (Stmt, error) {
	t, _ := p.expect(TokKwFor)
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	st := &ForStmt{Pos: t.Pos}
	if !p.accept(TokSemi) {
		if p.isTypeStart() {
			typ, err := p.parseType()
			if err != nil {
				return nil, err
			}
			name, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			vd, err := p.parseVarDeclRest(typ, name) // consumes the ';'
			if err != nil {
				return nil, err
			}
			st.Init = vd
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Init = &ExprStmt{X: e, Pos: e.Position()}
			if _, err := p.expect(TokSemi); err != nil {
				return nil, err
			}
		}
	}
	if !p.accept(TokSemi) {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Cond = cond
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
	}
	if p.cur().Kind != TokRParen {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Post = &ExprStmt{X: e, Pos: e.Position()}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	st.Body = body
	return st, nil
}

func (p *Parser) parseWhile() (Stmt, error) {
	t, _ := p.expect(TokKwWhile)
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Cond: cond, Body: body, Pos: t.Pos}, nil
}

// Expression parsing: precedence climbing.
//
//	assign:   lvalue (= | += | -= | *= | /=) assign
//	or:       and (|| and)*
//	and:      cmp (&& cmp)*
//	cmp:      add ((==|!=|<|<=|>|>=) add)*
//	add:      mul ((+|-) mul)*
//	mul:      unary ((*|/|%) unary)*
//	unary:    (-|!|&|*) unary | postfix
//	postfix:  primary ([expr] | ++ | --)*
//	primary:  literal | ident | call | (expr)
func (p *Parser) parseExpr() (Expr, error) { return p.parseAssign() }

func isLValue(e Expr) bool {
	switch x := e.(type) {
	case *Ident:
		return true
	case *IndexExpr:
		return true
	case *UnaryExpr:
		return x.Op == TokStar
	}
	return false
}

func (p *Parser) parseAssign() (Expr, error) {
	lhs, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	switch k := p.cur().Kind; k {
	case TokAssign, TokPlusEq, TokMinusEq, TokStarEq, TokSlashEq:
		if !isLValue(lhs) {
			return nil, p.errorf("left side of assignment is not assignable")
		}
		opTok := p.next()
		rhs, err := p.parseAssign()
		if err != nil {
			return nil, err
		}
		return &AssignExpr{Op: opTok.Kind, LHS: lhs, RHS: rhs, Pos: opTok.Pos}, nil
	}
	return lhs, nil
}

func (p *Parser) parseBinaryLevel(sub func() (Expr, error), kinds ...TokenKind) (Expr, error) {
	lhs, err := sub()
	if err != nil {
		return nil, err
	}
	for {
		k := p.cur().Kind
		match := false
		for _, want := range kinds {
			if k == want {
				match = true
				break
			}
		}
		if !match {
			return lhs, nil
		}
		opTok := p.next()
		rhs, err := sub()
		if err != nil {
			return nil, err
		}
		lhs = &BinaryExpr{Op: opTok.Kind, L: lhs, R: rhs, Pos: opTok.Pos}
	}
}

func (p *Parser) parseOr() (Expr, error) {
	return p.parseBinaryLevel(p.parseAnd, TokOrOr)
}

func (p *Parser) parseAnd() (Expr, error) {
	return p.parseBinaryLevel(p.parseCmp, TokAndAnd)
}

func (p *Parser) parseCmp() (Expr, error) {
	return p.parseBinaryLevel(p.parseAdd, TokEq, TokNe, TokLt, TokLe, TokGt, TokGe)
}

func (p *Parser) parseAdd() (Expr, error) {
	return p.parseBinaryLevel(p.parseMul, TokPlus, TokMinus)
}

func (p *Parser) parseMul() (Expr, error) {
	return p.parseBinaryLevel(p.parseUnary, TokStar, TokSlash, TokPercent)
}

func (p *Parser) parseUnary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokMinus, TokNot, TokAmp, TokStar:
		p.pos++
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold unary minus on literals into negative literals so that
		// printing a negative literal round-trips to the same AST.
		if t.Kind == TokMinus {
			switch lit := x.(type) {
			case *IntLit:
				return &IntLit{Value: -lit.Value, Pos: t.Pos}, nil
			case *FloatLit:
				return &FloatLit{Value: -lit.Value, Pos: t.Pos}, nil
			}
		}
		return &UnaryExpr{Op: t.Kind, X: x, Pos: t.Pos}, nil
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.cur().Kind {
		case TokLBracket:
			lb := p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			e = &IndexExpr{Array: e, Index: idx, Pos: lb.Pos}
		case TokInc, TokDec:
			opTok := p.next()
			if !isLValue(e) {
				return nil, p.errorf("%s operand is not assignable", opTok.Kind)
			}
			e = &IncDecExpr{Op: opTok.Kind, X: e, Pos: opTok.Pos}
		default:
			return e, nil
		}
	}
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokIntLit:
		p.pos++
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errorf("invalid integer literal %q", t.Text)
		}
		return &IntLit{Value: v, Pos: t.Pos}, nil
	case TokFloatLit:
		p.pos++
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, p.errorf("invalid float literal %q", t.Text)
		}
		return &FloatLit{Value: v, Pos: t.Pos}, nil
	case TokStringLit:
		p.pos++
		return &StringLit{Value: t.Text, Pos: t.Pos}, nil
	case TokCharLit:
		p.pos++
		return &IntLit{Value: int64(t.Text[0]), Pos: t.Pos}, nil
	case TokIdent:
		p.pos++
		if p.cur().Kind == TokLParen {
			p.pos++
			call := &CallExpr{Callee: t.Text, Pos: t.Pos}
			if !p.accept(TokRParen) {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if p.accept(TokComma) {
						continue
					}
					if _, err := p.expect(TokRParen); err != nil {
						return nil, err
					}
					break
				}
			}
			return call, nil
		}
		return &Ident{Name: t.Text, Pos: t.Pos}, nil
	case TokLParen:
		p.pos++
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, p.errorf("unexpected token %s %q in expression", t.Kind, t.Text)
}
