package srcmodel

import (
	"testing"
	"testing/quick"
)

// progGen builds random miniC programs from a seed, covering every
// statement and expression form the printer emits.
type progGen struct {
	seed  uint64
	depth int
}

func (g *progGen) next() uint64 {
	g.seed += 0x9e3779b97f4a7c15
	z := g.seed
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (g *progGen) intn(n int) int { return int(g.next() % uint64(n)) }

var genNames = []string{"a", "b", "c", "x", "y", "n"}

func (g *progGen) expr() Expr {
	if g.depth > 4 {
		return &IntLit{Value: int64(g.intn(100))}
	}
	g.depth++
	defer func() { g.depth-- }()
	switch g.intn(8) {
	case 0:
		return &IntLit{Value: int64(g.intn(1000)) - 500}
	case 1:
		return &FloatLit{Value: float64(g.intn(100)) / 4}
	case 2:
		return &Ident{Name: genNames[g.intn(len(genNames))]}
	case 3:
		ops := []TokenKind{TokPlus, TokMinus, TokStar, TokSlash, TokLt, TokEq, TokAndAnd, TokOrOr}
		return &BinaryExpr{Op: ops[g.intn(len(ops))], L: g.expr(), R: g.expr()}
	case 4:
		ops := []TokenKind{TokMinus, TokNot}
		op := ops[g.intn(len(ops))]
		x := g.expr()
		// The parser canonicalizes -literal into a negative literal;
		// generate the canonical form directly.
		if op == TokMinus {
			switch lit := x.(type) {
			case *IntLit:
				return &IntLit{Value: -lit.Value}
			case *FloatLit:
				return &FloatLit{Value: -lit.Value}
			}
		}
		return &UnaryExpr{Op: op, X: x}
	case 5:
		return &CallExpr{Callee: "f" + genNames[g.intn(len(genNames))], Args: []Expr{g.expr()}}
	case 6:
		return &IndexExpr{Array: &Ident{Name: "arr"}, Index: g.expr()}
	default:
		return &StringLit{Value: "s"}
	}
}

func (g *progGen) stmt() Stmt {
	if g.depth > 3 {
		return &ExprStmt{X: &CallExpr{Callee: "leaf"}}
	}
	g.depth++
	defer func() { g.depth-- }()
	switch g.intn(8) {
	case 0:
		return &VarDecl{Type: Type{Base: TypeInt}, Name: genNames[g.intn(len(genNames))], Init: g.expr()}
	case 1:
		return &IfStmt{Cond: g.expr(), Then: g.block(), Else: g.block()}
	case 2:
		return &ForStmt{
			Init: &VarDecl{Type: Type{Base: TypeInt}, Name: "i", Init: &IntLit{Value: 0}},
			Cond: &BinaryExpr{Op: TokLt, L: &Ident{Name: "i"}, R: &IntLit{Value: int64(g.intn(16))}},
			Post: &ExprStmt{X: &IncDecExpr{Op: TokInc, X: &Ident{Name: "i"}}},
			Body: g.block(),
		}
	case 3:
		return &WhileStmt{Cond: g.expr(), Body: g.block()}
	case 4:
		return &ReturnStmt{Value: g.expr()}
	case 5:
		return &ExprStmt{X: &AssignExpr{Op: TokAssign, LHS: &Ident{Name: genNames[g.intn(len(genNames))]}, RHS: g.expr()}}
	case 6:
		return &ExprStmt{X: &AssignExpr{Op: TokPlusEq, LHS: &IndexExpr{Array: &Ident{Name: "arr"}, Index: g.expr()}, RHS: g.expr()}}
	default:
		return g.block()
	}
}

func (g *progGen) block() *BlockStmt {
	n := g.intn(3) + 1
	b := &BlockStmt{}
	for i := 0; i < n; i++ {
		b.Stmts = append(b.Stmts, g.stmt())
	}
	return b
}

func (g *progGen) program() *Program {
	p := &Program{File: "gen.c"}
	nf := g.intn(3) + 1
	for i := 0; i < nf; i++ {
		p.Funcs = append(p.Funcs, &FuncDecl{
			Ret:  Type{Base: TypeDouble},
			Name: "gen" + string(rune('a'+i)),
			Params: []Param{
				{Type: Type{Base: TypeDouble, Pointers: 1}, Name: "arr"},
				{Type: Type{Base: TypeInt}, Name: "n"},
			},
			Body: g.block(),
		})
	}
	return p
}

// TestRandomProgramRoundTrip: for random ASTs, print → parse → print is
// a fixed point, and the re-parsed AST prints identically. This is the
// weaver's core safety property: any AST it builds can be serialized and
// re-ingested.
func TestRandomProgramRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		g := &progGen{seed: seed}
		p := g.program()
		text1 := Print(p)
		p2, err := Parse("rt.c", text1)
		if err != nil {
			t.Logf("seed %d: re-parse failed: %v\n%s", seed, err, text1)
			return false
		}
		text2 := Print(p2)
		if text1 != text2 {
			t.Logf("seed %d: not a fixed point:\n--- 1 ---\n%s\n--- 2 ---\n%s", seed, text1, text2)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestRandomProgramCloneStable: cloning any random program yields an
// identical print, and mutating the clone never touches the original.
func TestRandomProgramCloneStable(t *testing.T) {
	f := func(seed uint64) bool {
		g := &progGen{seed: seed}
		p := g.program()
		orig := Print(p)
		c := CloneProgram(p)
		if Print(c) != orig {
			return false
		}
		for _, fn := range c.Funcs {
			fn.Body.Stmts = nil
			fn.Name = "gone"
		}
		return Print(p) == orig
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
