package srcmodel

import (
	"fmt"
	"strings"
)

// Print renders the program back to C source text. The output re-parses to
// an equivalent AST (round-trip property, checked by tests).
func Print(p *Program) string {
	var b strings.Builder
	for _, g := range p.Globals {
		printVarDecl(&b, g, 0)
	}
	if len(p.Globals) > 0 && len(p.Funcs) > 0 {
		b.WriteByte('\n')
	}
	for i, f := range p.Funcs {
		if i > 0 {
			b.WriteByte('\n')
		}
		PrintFunc(&b, f)
	}
	return b.String()
}

// PrintFunc renders a single function definition to b.
func PrintFunc(b *strings.Builder, f *FuncDecl) {
	fmt.Fprintf(b, "%s %s(", f.Ret, f.Name)
	for i, prm := range f.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(b, "%s %s", prm.Type, prm.Name)
	}
	b.WriteString(") ")
	printBlock(b, f.Body, 0)
	b.WriteByte('\n')
}

func indent(b *strings.Builder, n int) {
	for i := 0; i < n; i++ {
		b.WriteString("    ")
	}
}

func printBlock(b *strings.Builder, blk *BlockStmt, depth int) {
	b.WriteString("{\n")
	for _, s := range blk.Stmts {
		printStmt(b, s, depth+1)
	}
	indent(b, depth)
	b.WriteString("}")
}

func printVarDecl(b *strings.Builder, v *VarDecl, depth int) {
	indent(b, depth)
	fmt.Fprintf(b, "%s %s", v.Type, v.Name)
	if v.Type.ArrayLen > 0 {
		fmt.Fprintf(b, "[%d]", v.Type.ArrayLen)
	}
	if v.Init != nil {
		b.WriteString(" = ")
		b.WriteString(ExprString(v.Init))
	}
	b.WriteString(";\n")
}

func printStmt(b *strings.Builder, s Stmt, depth int) {
	switch x := s.(type) {
	case *BlockStmt:
		indent(b, depth)
		printBlock(b, x, depth)
		b.WriteByte('\n')
	case *VarDecl:
		printVarDecl(b, x, depth)
	case *IfStmt:
		indent(b, depth)
		fmt.Fprintf(b, "if (%s) ", ExprString(x.Cond))
		printStmtInline(b, x.Then, depth)
		if x.Else != nil {
			indent(b, depth)
			b.WriteString("else ")
			printStmtInline(b, x.Else, depth)
		}
	case *ForStmt:
		indent(b, depth)
		b.WriteString("for (")
		switch init := x.Init.(type) {
		case nil:
		case *VarDecl:
			fmt.Fprintf(b, "%s %s", init.Type, init.Name)
			if init.Init != nil {
				b.WriteString(" = ")
				b.WriteString(ExprString(init.Init))
			}
		case *ExprStmt:
			b.WriteString(ExprString(init.X))
		}
		b.WriteString("; ")
		if x.Cond != nil {
			b.WriteString(ExprString(x.Cond))
		}
		b.WriteString("; ")
		if post, ok := x.Post.(*ExprStmt); ok {
			b.WriteString(ExprString(post.X))
		}
		b.WriteString(") ")
		printStmtInline(b, x.Body, depth)
	case *WhileStmt:
		indent(b, depth)
		fmt.Fprintf(b, "while (%s) ", ExprString(x.Cond))
		printStmtInline(b, x.Body, depth)
	case *ReturnStmt:
		indent(b, depth)
		if x.Value != nil {
			fmt.Fprintf(b, "return %s;\n", ExprString(x.Value))
		} else {
			b.WriteString("return;\n")
		}
	case *BreakStmt:
		indent(b, depth)
		b.WriteString("break;\n")
	case *ContinueStmt:
		indent(b, depth)
		b.WriteString("continue;\n")
	case *ExprStmt:
		indent(b, depth)
		b.WriteString(ExprString(x.X))
		b.WriteString(";\n")
	default:
		panic(fmt.Sprintf("srcmodel: printStmt: unknown node %T", s))
	}
}

// printStmtInline prints a statement that follows a control-flow header
// (if/for/while): blocks stay on the same line, other statements go on the
// next line indented.
func printStmtInline(b *strings.Builder, s Stmt, depth int) {
	if blk, ok := s.(*BlockStmt); ok {
		printBlock(b, blk, depth)
		b.WriteByte('\n')
		return
	}
	b.WriteByte('\n')
	printStmt(b, s, depth+1)
}

var binOpText = map[TokenKind]string{
	TokPlus: "+", TokMinus: "-", TokStar: "*", TokSlash: "/",
	TokPercent: "%", TokEq: "==", TokNe: "!=", TokLt: "<", TokLe: "<=",
	TokGt: ">", TokGe: ">=", TokAndAnd: "&&", TokOrOr: "||",
}

var assignOpText = map[TokenKind]string{
	TokAssign: "=", TokPlusEq: "+=", TokMinusEq: "-=", TokStarEq: "*=",
	TokSlashEq: "/=",
}

// ExprString renders an expression in C syntax. Sub-expressions are
// parenthesized conservatively so the output re-parses with the same
// structure.
func ExprString(e Expr) string {
	switch x := e.(type) {
	case *Ident:
		return x.Name
	case *IntLit:
		return fmt.Sprintf("%d", x.Value)
	case *FloatLit:
		s := fmt.Sprintf("%g", x.Value)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s
	case *StringLit:
		return quoteC(x.Value)
	case *BinaryExpr:
		return fmt.Sprintf("%s %s %s", parenOperand(x.L), binOpText[x.Op], parenOperand(x.R))
	case *UnaryExpr:
		op := tokenNames[x.Op]
		operand := parenOperand(x.X)
		// Avoid token fusion: "-(-194)" must not print as "--194"
		// (decrement), nor "&(&x)" as "&&x".
		if len(operand) > 0 && (op == "-" || op == "&") && operand[0] == op[0] {
			operand = "(" + operand + ")"
		}
		return op + operand
	case *AssignExpr:
		return fmt.Sprintf("%s %s %s", ExprString(x.LHS), assignOpText[x.Op], ExprString(x.RHS))
	case *IncDecExpr:
		return ExprString(x.X) + tokenNames[x.Op]
	case *CallExpr:
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = ExprString(a)
		}
		return fmt.Sprintf("%s(%s)", x.Callee, strings.Join(args, ", "))
	case *IndexExpr:
		return fmt.Sprintf("%s[%s]", parenOperand(x.Array), ExprString(x.Index))
	}
	panic(fmt.Sprintf("srcmodel: ExprString: unknown node %T", e))
}

// parenOperand parenthesizes compound operands so precedence survives the
// round trip without tracking operator binding strength.
func parenOperand(e Expr) string {
	switch e.(type) {
	case *BinaryExpr, *AssignExpr, *UnaryExpr:
		return "(" + ExprString(e) + ")"
	}
	return ExprString(e)
}

func quoteC(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
	return b.String()
}
