package srcmodel

import (
	"strings"
	"testing"
)

func TestUnrollLoopFull(t *testing.T) {
	src := `void f(double* a) { for (int i = 0; i < 4; i++) { a[i] = a[i] * 2.0; } }`
	p := mustParse(t, src)
	NormalizeBodies(p)
	f := p.Func("f")
	loops := Loops(f)
	if err := UnrollLoop(loops[0]); err != nil {
		t.Fatalf("UnrollLoop: %v", err)
	}
	out := Print(p)
	for _, want := range []string{"a[0] = a[0] * 2.0", "a[1]", "a[2]", "a[3]"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in unrolled output:\n%s", want, out)
		}
	}
	if strings.Contains(out, "for") {
		t.Errorf("loop still present:\n%s", out)
	}
	if len(Loops(f)) != 0 {
		t.Error("loop analysis still finds loops")
	}
}

func TestUnrollLoopStep(t *testing.T) {
	src := `void f(double* a) { for (int i = 1; i <= 7; i += 3) { g(i); } }`
	p := mustParse(t, src)
	NormalizeBodies(p)
	loops := Loops(p.Func("f"))
	if loops[0].NumIter != 3 {
		t.Fatalf("NumIter=%d", loops[0].NumIter)
	}
	if err := UnrollLoop(loops[0]); err != nil {
		t.Fatalf("UnrollLoop: %v", err)
	}
	out := Print(p)
	for _, want := range []string{"g(1)", "g(4)", "g(7)"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestUnrollRejectsUnknownTripCount(t *testing.T) {
	src := `void f(int n) { for (int i = 0; i < n; i++) { g(i); } }`
	p := mustParse(t, src)
	NormalizeBodies(p)
	loops := Loops(p.Func("f"))
	if err := UnrollLoop(loops[0]); err == nil {
		t.Error("expected error for symbolic trip count")
	}
}

func TestUnrollRejectsInductionWrite(t *testing.T) {
	src := `void f() { for (int i = 0; i < 4; i++) { i = i + 1; } }`
	p := mustParse(t, src)
	NormalizeBodies(p)
	loops := Loops(p.Func("f"))
	if err := UnrollLoop(loops[0]); err == nil {
		t.Error("expected error when body writes induction variable")
	}
}

func TestUnrollRejectsWhile(t *testing.T) {
	src := `void f(int n) { while (n > 0) { n--; } }`
	p := mustParse(t, src)
	NormalizeBodies(p)
	loops := Loops(p.Func("f"))
	if err := UnrollLoop(loops[0]); err == nil {
		t.Error("expected error for while loop")
	}
}

func TestUnrollInnermostThreshold(t *testing.T) {
	src := `
void f(double* a) {
    for (int i = 0; i < 100; i++) {
        for (int j = 0; j < 4; j++) {
            a[i * 4 + j] = 0.0;
        }
    }
    for (int k = 0; k < 32; k++) {
        a[k] = 1.0;
    }
}
`
	p := mustParse(t, src)
	NormalizeBodies(p)
	f := p.Func("f")
	n, err := UnrollInnermost(f, 8)
	if err != nil {
		t.Fatalf("UnrollInnermost: %v", err)
	}
	if n != 1 {
		t.Fatalf("unrolled %d loops, want 1 (only j, under threshold)", n)
	}
	loops := Loops(f)
	if len(loops) != 2 {
		t.Fatalf("got %d remaining loops, want 2 (i and k)", len(loops))
	}
	// The i loop is now innermost and still symbolic in size 100 > 8.
	for _, li := range loops {
		if li.NumIter <= 8 {
			t.Errorf("loop with NumIter=%d should have been unrolled", li.NumIter)
		}
	}
}

func TestSpecializeFunc(t *testing.T) {
	src := `
double kernel(double* data, int size) {
    double s = 0.0;
    for (int i = 0; i < size; i++) {
        s += data[i];
    }
    return s;
}
`
	p := mustParse(t, src)
	f := p.Func("kernel")
	sp, err := SpecializeFunc(f, "kernel__64", "size", 64)
	if err != nil {
		t.Fatalf("SpecializeFunc: %v", err)
	}
	if sp.Name != "kernel__64" || len(sp.Params) != 1 || sp.Params[0].Name != "data" {
		t.Fatalf("specialized signature wrong: %+v", sp)
	}
	loops := Loops(sp)
	if len(loops) != 1 || loops[0].NumIter != 64 {
		t.Fatalf("specialized loop bound: %+v", loops)
	}
	// Original untouched.
	if len(f.Params) != 2 {
		t.Error("original function was mutated")
	}
	if got := Loops(f)[0].NumIter; got != -1 {
		t.Errorf("original loop bound changed: %d", got)
	}
}

func TestSpecializeFuncErrors(t *testing.T) {
	src := `
void w(int size) { size = 1; }
void ptr(double* p) { p[0] = 1.0; }
`
	p := mustParse(t, src)
	if _, err := SpecializeFunc(p.Func("w"), "w2", "size", 1); err == nil {
		t.Error("expected error: parameter is written")
	}
	if _, err := SpecializeFunc(p.Func("ptr"), "p2", "p", 1); err == nil {
		t.Error("expected error: pointer parameter")
	}
	if _, err := SpecializeFunc(p.Func("w"), "w2", "nosuch", 1); err == nil {
		t.Error("expected error: unknown parameter")
	}
}

func TestSpecializeThenUnroll(t *testing.T) {
	src := `
double kernel(double* data, int size) {
    double s = 0.0;
    for (int i = 0; i < size; i++) {
        s += data[i] * data[i];
    }
    return s;
}
`
	p := mustParse(t, src)
	NormalizeBodies(p)
	sp, err := SpecializeFunc(p.Func("kernel"), "kernel__4", "size", 4)
	if err != nil {
		t.Fatalf("SpecializeFunc: %v", err)
	}
	n, err := UnrollInnermost(sp, 8)
	if err != nil {
		t.Fatalf("UnrollInnermost: %v", err)
	}
	if n != 1 {
		t.Fatalf("unrolled %d, want 1", n)
	}
	var b strings.Builder
	PrintFunc(&b, sp)
	out := b.String()
	for _, want := range []string{"data[0]", "data[1]", "data[2]", "data[3]"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}
