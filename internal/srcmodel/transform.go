package srcmodel

import "fmt"

// UnrollLoop fully unrolls the canonical for loop described by li,
// replacing it in its parent block with the unrolled statement sequence.
// It requires a known trip count (li.NumIter >= 0) and a valid replacement
// context (li.Parent != nil, li.Index >= 0; run NormalizeBodies first).
//
// Each iteration clones the body with the induction variable substituted
// by its literal value, reproducing the effect of the LARA
// `do LoopUnroll('full')` action of Fig. 3.
func UnrollLoop(li *LoopInfo) error {
	if li.Kind != "for" {
		return fmt.Errorf("srcmodel: UnrollLoop: only for loops can be unrolled (got %s)", li.Kind)
	}
	if li.NumIter < 0 {
		return fmt.Errorf("srcmodel: UnrollLoop: trip count unknown for loop at %s", li.Stmt.Position())
	}
	if li.Parent == nil || li.Index < 0 || li.Index >= len(li.Parent.Stmts) || li.Parent.Stmts[li.Index] != li.Stmt {
		return fmt.Errorf("srcmodel: UnrollLoop: loop at %s has no replacement context (run NormalizeBodies)", li.Stmt.Position())
	}
	fs := li.Stmt.(*ForStmt)
	if WritesTo(fs.Body, li.IndexVar) {
		return fmt.Errorf("srcmodel: UnrollLoop: body writes induction variable %q", li.IndexVar)
	}

	start, step, err := loopStartStep(fs, li.IndexVar)
	if err != nil {
		return err
	}

	var unrolled []Stmt
	v := start
	for it := int64(0); it < li.NumIter; it++ {
		body := CloneStmt(fs.Body)
		SubstIdent(body, li.IndexVar, &IntLit{Value: v, Pos: fs.Pos})
		if blk, ok := body.(*BlockStmt); ok {
			unrolled = append(unrolled, blk.Stmts...)
		} else {
			unrolled = append(unrolled, body)
		}
		v += step
	}

	// Splice the unrolled statements over the loop.
	out := make([]Stmt, 0, len(li.Parent.Stmts)-1+len(unrolled))
	out = append(out, li.Parent.Stmts[:li.Index]...)
	out = append(out, unrolled...)
	out = append(out, li.Parent.Stmts[li.Index+1:]...)
	li.Parent.Stmts = out
	return nil
}

// UnrollInnermost fully unrolls every innermost for loop of f whose trip
// count is statically known and at most threshold. It returns the number
// of loops unrolled. Loops are re-analysed after each unroll because
// unrolling changes positions.
func UnrollInnermost(f *FuncDecl, threshold int64) (int, error) {
	count := 0
	for {
		loops := Loops(f)
		done := true
		for _, li := range loops {
			if li.Kind != "for" || !li.IsInnermost || li.NumIter < 0 || li.NumIter > threshold {
				continue
			}
			if li.Parent == nil || li.Index < 0 {
				continue
			}
			if WritesTo(loopBody(li.Stmt), li.IndexVar) {
				continue
			}
			if err := UnrollLoop(li); err != nil {
				return count, err
			}
			count++
			done = false
			break // re-analyse from scratch
		}
		if done {
			return count, nil
		}
	}
}

func loopStartStep(fs *ForStmt, ivar string) (start, step int64, err error) {
	switch init := fs.Init.(type) {
	case *VarDecl:
		lit, ok := init.Init.(*IntLit)
		if !ok {
			return 0, 0, fmt.Errorf("srcmodel: loop init not a literal")
		}
		start = lit.Value
	case *ExprStmt:
		asn, ok := init.X.(*AssignExpr)
		if !ok {
			return 0, 0, fmt.Errorf("srcmodel: loop init not an assignment")
		}
		lit, ok := asn.RHS.(*IntLit)
		if !ok {
			return 0, 0, fmt.Errorf("srcmodel: loop init not a literal")
		}
		start = lit.Value
	default:
		return 0, 0, fmt.Errorf("srcmodel: loop has no init")
	}
	post, ok := fs.Post.(*ExprStmt)
	if !ok {
		return 0, 0, fmt.Errorf("srcmodel: loop has no post")
	}
	switch px := post.X.(type) {
	case *IncDecExpr:
		if px.Op == TokInc {
			step = 1
		} else {
			step = -1
		}
	case *AssignExpr:
		lit, ok := px.RHS.(*IntLit)
		if !ok {
			return 0, 0, fmt.Errorf("srcmodel: loop step not a literal")
		}
		if px.Op == TokPlusEq {
			step = lit.Value
		} else {
			step = -lit.Value
		}
	default:
		return 0, 0, fmt.Errorf("srcmodel: unsupported loop post %T", post.X)
	}
	_ = ivar
	return start, step, nil
}

// UnrollLoopBy partially unrolls the canonical for loop described by li
// by the given factor: the body is replicated factor times per iteration
// with the induction variable offset by k·step, and the loop step is
// multiplied by factor. It requires the trip count to be known and
// divisible by factor (remainder loops are not generated; callers pick a
// dividing factor — the weaver's LoopUnroll action checks this).
func UnrollLoopBy(li *LoopInfo, factor int64) error {
	if factor <= 1 {
		return fmt.Errorf("srcmodel: UnrollLoopBy: factor must be > 1")
	}
	if li.Kind != "for" {
		return fmt.Errorf("srcmodel: UnrollLoopBy: only for loops can be unrolled")
	}
	if li.NumIter < 0 {
		return fmt.Errorf("srcmodel: UnrollLoopBy: trip count unknown for loop at %s", li.Stmt.Position())
	}
	if li.NumIter%factor != 0 {
		return fmt.Errorf("srcmodel: UnrollLoopBy: trip count %d not divisible by factor %d", li.NumIter, factor)
	}
	fs := li.Stmt.(*ForStmt)
	if WritesTo(fs.Body, li.IndexVar) {
		return fmt.Errorf("srcmodel: UnrollLoopBy: body writes induction variable %q", li.IndexVar)
	}
	_, step, err := loopStartStep(fs, li.IndexVar)
	if err != nil {
		return err
	}
	body, ok := fs.Body.(*BlockStmt)
	if !ok {
		return fmt.Errorf("srcmodel: UnrollLoopBy: body is not a block (run NormalizeBodies)")
	}
	var widened []Stmt
	for k := int64(0); k < factor; k++ {
		clone := CloneStmt(body).(*BlockStmt)
		if k > 0 {
			// i -> (i + k*step) in the k-th replica.
			offset := &BinaryExpr{
				Op:  TokPlus,
				L:   &Ident{Name: li.IndexVar, Pos: fs.Pos},
				R:   &IntLit{Value: k * step, Pos: fs.Pos},
				Pos: fs.Pos,
			}
			SubstIdent(clone, li.IndexVar, offset)
		}
		widened = append(widened, clone.Stmts...)
	}
	fs.Body = &BlockStmt{Stmts: widened, Pos: body.Pos}
	// Widen the step.
	post := fs.Post.(*ExprStmt)
	newStep := step * factor
	var postExpr Expr
	if newStep >= 0 {
		postExpr = &AssignExpr{Op: TokPlusEq, LHS: &Ident{Name: li.IndexVar, Pos: fs.Pos},
			RHS: &IntLit{Value: newStep, Pos: fs.Pos}, Pos: fs.Pos}
	} else {
		postExpr = &AssignExpr{Op: TokMinusEq, LHS: &Ident{Name: li.IndexVar, Pos: fs.Pos},
			RHS: &IntLit{Value: -newStep, Pos: fs.Pos}, Pos: fs.Pos}
	}
	post.X = postExpr
	return nil
}

// SpecializeFunc clones f, renames it to newName, removes parameter
// paramName and substitutes the integer constant value for every read of
// it, then folds constants so downstream loop analysis sees literal
// bounds. It implements the LARA `Specialize` action of Fig. 4.
func SpecializeFunc(f *FuncDecl, newName, paramName string, value int64) (*FuncDecl, error) {
	idx := -1
	for i, prm := range f.Params {
		if prm.Name == paramName {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("srcmodel: SpecializeFunc: %s has no parameter %q", f.Name, paramName)
	}
	if f.Params[idx].Type.Pointers > 0 {
		return nil, fmt.Errorf("srcmodel: SpecializeFunc: parameter %q is a pointer", paramName)
	}
	if WritesTo(f.Body, paramName) {
		return nil, fmt.Errorf("srcmodel: SpecializeFunc: %s writes to parameter %q", f.Name, paramName)
	}
	c := CloneFunc(f)
	c.Name = newName
	c.Params = append(c.Params[:idx:idx], c.Params[idx+1:]...)
	SubstIdent(c.Body, paramName, &IntLit{Value: value})
	FoldConstants(c)
	return c, nil
}
