package srcmodel

import (
	"strings"
	"testing"
)

func TestUnrollLoopByFactor(t *testing.T) {
	src := `void f(double* a) { for (int i = 0; i < 8; i++) { a[i] = a[i] + 1.0; } }`
	p := mustParse(t, src)
	NormalizeBodies(p)
	loops := Loops(p.Func("f"))
	if err := UnrollLoopBy(loops[0], 4); err != nil {
		t.Fatalf("UnrollLoopBy: %v", err)
	}
	out := Print(p)
	// Step widened to 4, body replicated with offsets 0..3.
	if !strings.Contains(out, "i += 4") {
		t.Errorf("step not widened:\n%s", out)
	}
	for _, want := range []string{"a[i] = a[i] + 1.0", "a[i + 1]", "a[i + 2]", "a[i + 3]"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing replica %q:\n%s", want, out)
		}
	}
	// New trip count is 2.
	loops = Loops(p.Func("f"))
	if len(loops) != 1 || loops[0].NumIter != 2 {
		t.Errorf("after partial unroll: %+v", loops)
	}
}

func TestUnrollLoopByErrors(t *testing.T) {
	mk := func(src string) *LoopInfo {
		p := mustParse(t, src)
		NormalizeBodies(p)
		return Loops(p.Funcs[0])[0]
	}
	if err := UnrollLoopBy(mk(`void f() { for (int i = 0; i < 8; i++) { g(i); } }`), 1); err == nil {
		t.Error("factor 1 should error")
	}
	if err := UnrollLoopBy(mk(`void f() { for (int i = 0; i < 7; i++) { g(i); } }`), 2); err == nil {
		t.Error("non-dividing factor should error")
	}
	if err := UnrollLoopBy(mk(`void f(int n) { for (int i = 0; i < n; i++) { g(i); } }`), 2); err == nil {
		t.Error("symbolic trip count should error")
	}
	if err := UnrollLoopBy(mk(`void f() { while (1) { g(0); } }`), 2); err == nil {
		t.Error("while loop should error")
	}
	if err := UnrollLoopBy(mk(`void f() { for (int i = 0; i < 8; i++) { i = i + 1; } }`), 2); err == nil {
		t.Error("induction-writing body should error")
	}
}

func TestUnrollLoopByNegativeStep(t *testing.T) {
	src := `void f(double* a) { for (int i = 7; i >= 0; i--) { a[i] = 0.0; } }`
	p := mustParse(t, src)
	NormalizeBodies(p)
	loops := Loops(p.Func("f"))
	if loops[0].NumIter != 8 {
		t.Fatalf("trip count %d", loops[0].NumIter)
	}
	if err := UnrollLoopBy(loops[0], 2); err != nil {
		t.Fatalf("UnrollLoopBy: %v", err)
	}
	out := Print(p)
	if !strings.Contains(out, "i -= 2") {
		t.Errorf("negative step not widened:\n%s", out)
	}
	if !strings.Contains(out, "a[i + -1]") && !strings.Contains(out, "a[i - 1]") {
		t.Errorf("replica offset missing:\n%s", out)
	}
}
