package srcmodel

import "testing"

func TestTokenizeBasics(t *testing.T) {
	toks, err := Tokenize(`int x = 42; // comment
double f(float* a) { return a[0] + 1.5e3; }`)
	if err != nil {
		t.Fatalf("Tokenize: %v", err)
	}
	kinds := []TokenKind{
		TokKwInt, TokIdent, TokAssign, TokIntLit, TokSemi,
		TokKwDouble, TokIdent, TokLParen, TokKwFloat, TokStar, TokIdent,
		TokRParen, TokLBrace, TokKwReturn, TokIdent, TokLBracket, TokIntLit,
		TokRBracket, TokPlus, TokFloatLit, TokSemi, TokRBrace,
	}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("token %d: got %s %q, want %s", i, toks[i].Kind, toks[i].Text, k)
		}
	}
}

func TestTokenizeOperators(t *testing.T) {
	toks, err := Tokenize(`== != <= >= && || ++ -- += -= *= /= ! % &`)
	if err != nil {
		t.Fatalf("Tokenize: %v", err)
	}
	want := []TokenKind{TokEq, TokNe, TokLe, TokGe, TokAndAnd, TokOrOr,
		TokInc, TokDec, TokPlusEq, TokMinusEq, TokStarEq, TokSlashEq,
		TokNot, TokPercent, TokAmp}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d", len(toks), len(want))
	}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d: got %s, want %s", i, toks[i].Kind, k)
		}
	}
}

func TestTokenizePositions(t *testing.T) {
	toks, err := Tokenize("int\n  x;")
	if err != nil {
		t.Fatalf("Tokenize: %v", err)
	}
	if toks[0].Pos != (Pos{1, 1}) {
		t.Errorf("int at %v, want 1:1", toks[0].Pos)
	}
	if toks[1].Pos != (Pos{2, 3}) {
		t.Errorf("x at %v, want 2:3", toks[1].Pos)
	}
}

func TestTokenizeStringEscapes(t *testing.T) {
	toks, err := Tokenize(`"a\nb\t\"q\""`)
	if err != nil {
		t.Fatalf("Tokenize: %v", err)
	}
	if toks[0].Kind != TokStringLit || toks[0].Text != "a\nb\t\"q\"" {
		t.Errorf("got %q", toks[0].Text)
	}
}

func TestTokenizeCharLit(t *testing.T) {
	toks, err := Tokenize(`'a' '\n'`)
	if err != nil {
		t.Fatalf("Tokenize: %v", err)
	}
	if toks[0].Text != "a" || toks[1].Text != "\n" {
		t.Errorf("got %q %q", toks[0].Text, toks[1].Text)
	}
}

func TestTokenizeBlockComment(t *testing.T) {
	toks, err := Tokenize("a /* mid \n comment */ b")
	if err != nil {
		t.Fatalf("Tokenize: %v", err)
	}
	if len(toks) != 2 || toks[0].Text != "a" || toks[1].Text != "b" {
		t.Errorf("got %v", toks)
	}
}

func TestTokenizeErrors(t *testing.T) {
	cases := []string{
		"\"unterminated",
		"/* unterminated",
		"'x",
		"@",
		"1e",
	}
	for _, src := range cases {
		if _, err := Tokenize(src); err == nil {
			t.Errorf("Tokenize(%q): expected error", src)
		}
	}
}

func TestTokenizeFloatForms(t *testing.T) {
	toks, err := Tokenize("1.5 2e3 0.5f 7")
	if err != nil {
		t.Fatalf("Tokenize: %v", err)
	}
	want := []TokenKind{TokFloatLit, TokFloatLit, TokFloatLit, TokIntLit}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d %q: got %s, want %s", i, toks[i].Text, toks[i].Kind, k)
		}
	}
}

func TestSingleQuoteMultiCharIsString(t *testing.T) {
	toks, err := Tokenize(`'kernel' 'a' '\n' 'a\tb'`)
	if err != nil {
		t.Fatalf("Tokenize: %v", err)
	}
	want := []struct {
		kind TokenKind
		text string
	}{
		{TokStringLit, "kernel"},
		{TokCharLit, "a"},
		{TokCharLit, "\n"},
		{TokStringLit, "a\tb"},
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens", len(toks))
	}
	for i, w := range want {
		if toks[i].Kind != w.kind || toks[i].Text != w.text {
			t.Errorf("token %d: %v %q, want %v %q", i, toks[i].Kind, toks[i].Text, w.kind, w.text)
		}
	}
}
